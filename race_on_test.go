//go:build race

package distwalk_test

// raceEnabled reports that this binary was built with -race; wall-clock
// speedup assertions are meaningless under the detector's overhead.
const raceEnabled = true
