package distwalk

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distwalk/internal/cache"
	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/mixing"
	"distwalk/internal/rng"
	"distwalk/internal/sched"
	"distwalk/internal/spanning"
	"distwalk/internal/wire"
)

// Service is the concurrent entry point to the paper's algorithms: a
// long-lived pool that multiplexes many simultaneous requests — single
// walks, walk batches, spanning trees, mixing estimates — over one shared
// topology. This is the shape the paper itself motivates: walk sampling as
// a reusable network primitive serving higher-level applications (token
// management, load balancing, search), many of which are in flight at
// once.
//
// Each of the pool's workers owns an independent simulated CONGEST
// network and one long-lived walker on it. A request is identified by a
// caller-chosen request key; before executing, the worker reseeds its
// network with a seed derived from (service seed, key) and Resets its warm
// walker — coupon shelves, hop logs, flow ledgers and tree slabs keep
// their capacity across requests, so steady-state requests allocate
// nothing for protocol state. Determinism is per request key, not per
// call order or worker history: Reset restores the exact observable state
// of a fresh walker, so the result of (graph, service seed, key, request)
// is bit-identical no matter how many requests run concurrently, which
// worker serves it, or what ran before — the property the golden stress
// tests pin.
//
// All entry points take a context.Context; cancellation and deadlines are
// checked inside the engine's round loop, so even a multi-million-round
// simulated run aborts promptly. Failures wrap the exported sentinel
// errors (see errors.go).
//
// A Service is safe for concurrent use. The graph must never be mutated
// directly while the service is alive; topology changes go through
// ApplyMutations, which publishes a copy-on-write successor under the
// next generation.
type Service struct {
	seed uint64
	cfg  config

	// topo is the current topology epoch: the graph served, its
	// generation, and the stale channel closed when it is superseded.
	// Requests capture the pointer at admission (epoch pinning); mutMu
	// serializes the publishers (ApplyMutations, InvalidateCache).
	topo  atomic.Pointer[topology]
	mutMu sync.Mutex

	// clusterPlan pins the graph/bounds the remote engines currently
	// serve (nil unless WithCluster); rotated by ApplyMutations before
	// the supervisors' handshakes, never after (see executeCluster).
	clusterPlan atomic.Pointer[clusterPlan]

	jobs chan func(*poolWorker)
	quit chan struct{}
	wg   sync.WaitGroup

	// batch is the request-coalescing scheduler (nil unless WithBatching
	// was given): SubmitWalk/SubmitWalkTrace requests queue here and
	// execute as shared MANY-RANDOM-WALKS batches on the same pool.
	batch *sched.Scheduler

	// cache is the deterministic result cache (nil unless WithResultCache
	// was given). Every cache digest folds the topology generation, so a
	// published mutation makes all prior keys unreachable. See
	// internal/cache.
	cache *cache.Cache

	// mutation counters (see MutationStats).
	mutApplied      atomic.Int64
	mutEdgesAdded   atomic.Int64
	mutEdgesRemoved atomic.Int64
	mutStaleAborts  atomic.Int64
	mutReshardsInc  atomic.Int64
	mutReshardsFull atomic.Int64

	// shardMu guards shardAgg, the per-shard occupancy and barrier-wait
	// counters aggregated across all workers' sharded networks (each worker
	// folds its network's delta in after every request it serves).
	shardMu  sync.Mutex
	shardAgg ShardStats

	// Cluster mode (empty unless WithCluster): one supervisor per engine
	// address (dial policy, reconnect backoff, circuit breaker, health),
	// the per-engine traffic aggregate (guarded by clusterMu, folded in
	// by workers like shardAgg), and the failover counter. workers is
	// kept for Close teardown of per-worker engine sessions. The shard
	// bounds live in clusterPlan (they rotate with mutations).
	clusterSup       []*wire.Supervisor
	clusterMu        sync.Mutex
	clusterAgg       []ClusterEngineStats
	clusterFailovers atomic.Int64
	workers          []*poolWorker

	// retry counters (see RetryStats); updated lock-free on every attempt.
	retryAttempts  atomic.Int64
	retryRetries   atomic.Int64
	retryRecovered atomic.Int64
	retryExhausted atomic.Int64
	retryFaults    atomic.Int64

	closeOnce sync.Once
}

// poolWorker is one worker's warm state: its private simulated network and
// the walker reused (via Reset) across every request the worker serves.
type poolWorker struct {
	net *congest.Network
	wkr *core.Walker
	// lastShard is the network's shard-stat snapshot after the previous
	// request, for computing per-request deltas to fold into the service
	// aggregate.
	lastShard ShardStats
	// conns are this worker's cluster-mode engine sessions (nil when
	// in-process; individual entries go nil when a session is lost until
	// the supervisor re-dials it), lastCluster their stat snapshots after
	// the previous request (reset per entry when a session is replaced,
	// since a fresh session restarts its counters). attached reports
	// whether the worker network currently executes through conns.
	conns       []*wire.EngineConn
	lastCluster []ClusterEngineStats
	attached    bool
	// clusterTopo is the graph the worker's current engine sessions were
	// handshaken for; when it trails the cluster plan the sessions hold
	// engines built from a dead topology and must be re-dialed.
	clusterTopo *Graph
}

// NewService builds a service over g. seed drives all randomness: together
// with a request key it fully determines every result. Options set the
// service-wide defaults; request methods accept per-request overrides.
func NewService(g *Graph, seed uint64, opts ...Option) (*Service, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("%w: service needs a non-empty graph", ErrGraphTooSmall)
	}
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := cfg.params.Validate(); err != nil {
		return nil, err
	}
	if cfg.shards < 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	if cfg.shards > g.N() {
		cfg.shards = g.N() // the engine clamps the same way
	}
	if len(cfg.cluster) > 0 {
		// Remote engines own the transport; the in-process shard layout
		// is moot (ConnectRemote forces it off anyway).
		cfg.shards = 1
		if len(cfg.cluster) > g.N() {
			return nil, fmt.Errorf("%w: %d cluster engines for a %d-node graph",
				ErrClusterConfig, len(cfg.cluster), g.N())
		}
	}
	s := &Service{
		seed: seed,
		cfg:  cfg,
		jobs: make(chan func(*poolWorker)),
		quit: make(chan struct{}),
	}
	s.topo.Store(&topology{gen: 1, g: g, stale: make(chan struct{})})
	if cfg.cacheBytes > 0 {
		cc, err := cache.New(cache.Config{MaxBytes: cfg.cacheBytes, Admit: cfg.cacheAdmit})
		if err != nil {
			return nil, err
		}
		s.cache = cc
	}
	// Build and validate every worker network before spawning anything: an
	// invalid fault plan fails construction with ErrBadFault instead of
	// leaving a half-started pool behind.
	nets := make([]*congest.Network, cfg.workers)
	for i := range nets {
		n := congest.NewNetwork(g, seed, congest.WithShards(cfg.shards))
		n.SetGeneration(1)
		if cfg.fplan != nil {
			if err := n.SetFaultPlan(cfg.fplan); err != nil {
				return nil, err
			}
		}
		nets[i] = n
	}
	workers := make([]*poolWorker, cfg.workers)
	for i, n := range nets {
		workers[i] = &poolWorker{net: n}
	}
	s.workers = workers
	if len(cfg.cluster) > 0 {
		if err := s.initCluster(workers); err != nil {
			// A later dial failing must not leak the sessions (and
			// heartbeat goroutines) already established.
			closeWorkerConns(workers)
			return nil, err
		}
	}
	for _, pw := range workers {
		s.wg.Add(1)
		go s.worker(pw)
	}
	if cfg.batchOn {
		bc := cfg.batch
		if bc.MaxInFlight < 1 {
			bc.MaxInFlight = cfg.workers
		}
		s.batch = sched.New(seed, bc, s.runBatch)
	}
	return s, nil
}

// worker serves requests on its own warm state until the service closes.
func (s *Service) worker(pw *poolWorker) {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.jobs:
			job(pw)
		}
	}
}

// Cluster resilience defaults (see WithClusterRoundTimeout and
// WithClusterHeartbeat).
const (
	defaultClusterRoundTimeout = 30 * time.Second
	clusterRoundFloor          = 100 * time.Millisecond
	defaultClusterHeartbeat    = 10 * time.Second
)

// clusterRoundTimeout resolves the configured per-exchange deadline.
func (c *config) clusterRoundTimeout() time.Duration {
	if c.clusterRound > 0 {
		return c.clusterRound
	}
	return defaultClusterRoundTimeout
}

// clusterHeartbeatInterval resolves the idle heartbeat interval
// (0 = disabled).
func (c *config) clusterHeartbeatInterval() time.Duration {
	if c.clusterHeartbeat < 0 {
		return 0
	}
	if c.clusterHeartbeat == 0 {
		return defaultClusterHeartbeat
	}
	return c.clusterHeartbeat
}

// initCluster builds the per-address engine supervisors and dials every
// worker's initial sessions. The handshake (graph generation, shard plan,
// edge capacity, fault plan) is built once and re-sent per session with
// only the shard index varying; each supervisor keeps its copy and
// re-sends it verbatim on every reconnect, which is what pins
// reconnected sessions to the same graph digest.
func (s *Service) initCluster(workers []*poolWorker) error {
	engines := len(s.cfg.cluster)
	g := s.topo.Load().g
	base := wire.HelloFor(g, engines, 0, 1, s.seed, s.cfg.fplan)
	base.Gen = s.topo.Load().gen
	if len(base.Bounds) != engines+1 {
		return fmt.Errorf("%w: shard plan has %d ranges for %d engines",
			ErrClusterConfig, len(base.Bounds)-1, engines)
	}
	s.clusterPlan.Store(&clusterPlan{g: g, bounds: base.Bounds})
	dial := wire.DialConfig{
		HandshakeTimeout:  s.cfg.clusterHandshake,
		RoundTimeout:      s.cfg.clusterRoundTimeout(),
		HeartbeatInterval: s.cfg.clusterHeartbeatInterval(),
	}
	s.clusterSup = make([]*wire.Supervisor, engines)
	for i := range s.clusterSup {
		h := base
		h.Shard = i
		s.clusterSup[i] = wire.NewSupervisor(wire.SupervisorConfig{
			Addr:        s.cfg.cluster[i],
			Hello:       h,
			Dial:        dial,
			BackoffBase: s.cfg.clusterBackoff,
			BackoffMax:  s.cfg.clusterBackoffMax,
		})
	}
	plan := s.clusterPlan.Load()
	for _, pw := range workers {
		if err := s.ensureCluster(context.Background(), pw, plan); err != nil {
			return err
		}
	}
	return nil
}

// ensureCluster repairs a worker's engine sessions before a cluster run:
// broken sessions are closed (dropping their stat baselines), missing
// ones are re-acquired from their supervisors (fail-fast inside a backoff
// or quarantine window), and the worker network is re-attached to the
// session group under plan's shard bounds. With every session healthy it
// is a no-op. Callers that loaded plan before acquiring must re-check it
// afterwards: a mutation rotating the handshake mid-ensure can hand out
// sessions for a newer topology (see executeCluster).
func (s *Service) ensureCluster(ctx context.Context, pw *poolWorker, plan *clusterPlan) error {
	if pw.conns == nil {
		pw.conns = make([]*wire.EngineConn, len(s.clusterSup))
	}
	for i, c := range pw.conns {
		if c != nil && c.Broken() {
			c.Close()
			pw.conns[i] = nil
			s.resetClusterBaseline(pw, i)
		}
		if pw.conns[i] == nil && pw.attached {
			// The network must never run against a group with holes.
			pw.attached = false
			pw.net.ConnectRemote(nil, nil)
		}
	}
	for i := range pw.conns {
		if pw.conns[i] != nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("distwalk: cluster engine %d (%s) not redialed: %w",
				i, s.cfg.cluster[i], err)
		}
		c, err := s.clusterSup[i].Acquire()
		if err != nil {
			return fmt.Errorf("distwalk: cluster engine %d (%s): %w: %w",
				i, s.cfg.cluster[i], ErrClusterEngine, err)
		}
		pw.conns[i] = c
		s.resetClusterBaseline(pw, i)
	}
	if !pw.attached {
		group := make([]congest.RemoteShard, len(pw.conns))
		for i, c := range pw.conns {
			group[i] = c
		}
		if err := pw.net.ConnectRemote(group, plan.bounds); err != nil {
			return err
		}
		pw.attached = true
	}
	pw.clusterTopo = plan.g
	return nil
}

// dropClusterConns tears down every session of the worker after a loss.
// The protocol is strictly synchronous per session, but the round loop
// writes to all engines before reading any reply — once one engine fails
// mid-run, the surviving sessions may hold half-exchanged frames and
// cannot be trusted with another run, so the whole group goes. The
// failing engine's supervisor is notified (errors.As digs the shard out
// of cause) and the network detaches until ensureCluster re-attaches.
func (s *Service) dropClusterConns(pw *poolWorker, cause error) {
	var le *wire.EngineLostError
	if errors.As(cause, &le) && le.Shard >= 0 && le.Shard < len(s.clusterSup) {
		s.clusterSup[le.Shard].NoteLoss(cause)
	}
	for i, c := range pw.conns {
		if c == nil {
			continue
		}
		c.Close()
		pw.conns[i] = nil
		s.resetClusterBaseline(pw, i)
	}
	pw.attached = false
	pw.net.ConnectRemote(nil, nil)
}

// resetClusterBaseline zeroes the worker's stat snapshot for engine i so
// the next collect does not subtract a discarded session's totals from a
// fresh session's counters.
func (s *Service) resetClusterBaseline(pw *poolWorker, i int) {
	if pw.lastCluster != nil {
		pw.lastCluster[i] = ClusterEngineStats{Addr: s.cfg.cluster[i], Shard: i}
	}
}

// clusterBroken reports whether any of the worker's sessions failed.
func clusterBroken(pw *poolWorker) bool {
	for _, c := range pw.conns {
		if c != nil && c.Broken() {
			return true
		}
	}
	return false
}

// armCluster installs this request's per-exchange deadline on every
// session: the configured round timeout, tightened to the request
// context's remaining budget when that is shorter, floored at 100ms so a
// nearly-expired context still gets one meaningful exchange (the round
// loop's own context check handles actual expiry).
func (s *Service) armCluster(ctx context.Context, pw *poolWorker, cfg config) {
	t := cfg.clusterRoundTimeout()
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < t {
			t = rem
		}
	}
	if t < clusterRoundFloor {
		t = clusterRoundFloor
	}
	for _, c := range pw.conns {
		if c != nil {
			c.SetRoundTimeout(t)
		}
	}
}

// reserveConns/releaseConns bracket a cluster run: holding every
// session's lock keeps the idle heartbeats out of the byte stream while
// the round loop owns it. The release set is captured before the run —
// a mid-run loss nils pw.conns entries.
func reserveConns(conns []*wire.EngineConn) {
	for _, c := range conns {
		if c != nil {
			c.Reserve()
		}
	}
}

func releaseConns(conns []*wire.EngineConn) {
	for _, c := range conns {
		if c != nil {
			c.Release()
		}
	}
}

// closeWorkerConns tears down every worker's engine sessions and their
// heartbeat goroutines (nil-safe: dial failures and dropped sessions
// leave holes). Used by the construction failure path and by Close.
func closeWorkerConns(workers []*poolWorker) {
	for _, pw := range workers {
		for i, c := range pw.conns {
			if c != nil {
				c.Close()
				pw.conns[i] = nil
			}
		}
	}
}

// Workers returns the size of the worker pool.
func (s *Service) Workers() int { return s.cfg.workers }

// Cluster returns the number of remote shard engines serving this
// service (0 = in-process execution; see WithCluster).
func (s *Service) Cluster() int { return len(s.cfg.cluster) }

// Shards returns the per-worker network shard count (1 = sequential).
func (s *Service) Shards() int { return s.cfg.shards }

// Graph returns the currently served topology (the current generation's
// graph; see ApplyMutations). The returned graph is immutable.
func (s *Service) Graph() *Graph { return s.topo.Load().g }

// Close shuts the pool down. The batching scheduler (if any) closes
// first: members still queued fail with ErrBatchAborted, and in-flight
// batches finish on the pool. Then in-flight requests finish; requests
// not yet picked up by a worker (and all later ones) fail with
// ErrServiceClosed. Close is idempotent and safe to call concurrently
// with requests.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		if s.batch != nil {
			s.batch.Close()
		}
		close(s.quit)
		s.wg.Wait()
		// Workers are gone; their engine sessions are safe to tear down.
		closeWorkerConns(s.workers)
	})
	return nil
}

// ServiceStats is the service's counter snapshot: the batching
// scheduler's counters (embedded — zero when the service was built
// without WithBatching) plus the sharded engines' per-shard occupancy and
// barrier-wait totals, aggregated across all workers (zero when built
// without WithShards).
type ServiceStats struct {
	SchedStats
	// Shards reports how much per-round work each network shard carried
	// (protocol steps executed, messages merged) and how long each shard
	// spent waiting at round barriers, summed over every request served so
	// far. Shards.Occupancy() is the per-shard work share.
	Shards ShardStats
	// Retry reports the service's recovery activity (see WithRetry).
	Retry RetryStats
	// Cluster reports cluster-mode traffic and resilience activity (zero
	// value when built without WithCluster).
	Cluster ClusterStats
	// Cache reports the result cache's activity — hits, misses, coalesced
	// waiters, evictions, byte footprint (zero value when built without
	// WithResultCache).
	Cache CacheStats
	// Mutation reports the dynamic-topology activity (see ApplyMutations).
	Mutation MutationStats
}

// MutationStats counts the service's dynamic-topology activity.
type MutationStats struct {
	// Generation is the current topology generation (starts at 1; every
	// ApplyMutations and InvalidateCache advances it).
	Generation uint64
	// Applied counts published mutation batches; EdgesAdded/EdgesRemoved
	// the edits they carried.
	Applied      int64
	EdgesAdded   int64
	EdgesRemoved int64
	// StaleAborts counts requests failed with ErrStaleGeneration —
	// queued batch members evicted at publish plus abort-mode executions
	// cancelled or fast-failed.
	StaleAborts int64
	// ReshardsIncremental/ReshardsFull count worker-network reshapes by
	// kind: incremental kept the existing shard partition (the mutation
	// left the per-shard edge balance within tolerance), full re-planned
	// it (or the network was unsharded).
	ReshardsIncremental int64
	ReshardsFull        int64
}

// ClusterStats is the cluster-mode slice of a service's counters:
// per-engine traffic plus the resilience layer's activity.
type ClusterStats struct {
	// Engines reports, per remote shard engine, the traffic carried
	// (runs, rounds, messages, raw bytes), summed over every worker's
	// session with that engine. Nil when built without WithCluster.
	Engines []ClusterEngineStats
	// Health reports each engine's supervisor state ("healthy",
	// "reconnecting", "quarantined"), indexed like Engines.
	Health []string
	// Reconnects counts sessions re-established after a loss;
	// HeartbeatMisses idle heartbeats that found an engine dead;
	// Failovers requests re-executed on in-process shards after losing
	// their cluster run (see WithClusterFallback).
	Reconnects      int64
	HeartbeatMisses int64
	Failovers       int64
}

// RetryStats counts request attempts and their outcomes across the
// service's lifetime.
type RetryStats struct {
	// Attempts is the total number of request executions, first attempts
	// included.
	Attempts int64
	// Retries counts re-executions after a retryable failure.
	Retries int64
	// Recovered counts requests that succeeded on a retry.
	Recovered int64
	// Exhausted counts requests that still failed after their last retry.
	Exhausted int64
	// Faults counts attempts that failed with a typed fault error
	// (ErrNodeCrashed / ErrMessageLost).
	Faults int64
}

// Stats returns the service's counters: batch admissions, rejections
// (ErrQueueFull), pre-flush cancellations, flush reasons, the batch
// occupancy histogram and the amortized simulated cost per batched walk,
// plus per-shard occupancy and barrier wait time when sharded execution
// is on.
func (s *Service) Stats() ServiceStats {
	var out ServiceStats
	if s.batch != nil {
		out.SchedStats = s.batch.Stats()
	}
	s.shardMu.Lock()
	out.Shards.Add(s.shardAgg)
	s.shardMu.Unlock()
	s.clusterMu.Lock()
	if s.clusterAgg != nil {
		out.Cluster.Engines = make([]ClusterEngineStats, len(s.clusterAgg))
		copy(out.Cluster.Engines, s.clusterAgg)
	}
	s.clusterMu.Unlock()
	if len(s.clusterSup) > 0 {
		out.Cluster.Health = make([]string, len(s.clusterSup))
		for i, sv := range s.clusterSup {
			out.Cluster.Health[i] = sv.State().String()
			out.Cluster.Reconnects += sv.Reconnects()
			out.Cluster.HeartbeatMisses += sv.HeartbeatMisses()
		}
		out.Cluster.Failovers = s.clusterFailovers.Load()
	}
	if s.cache != nil {
		out.Cache = s.cache.Stats()
	}
	out.Retry = RetryStats{
		Attempts:  s.retryAttempts.Load(),
		Retries:   s.retryRetries.Load(),
		Recovered: s.retryRecovered.Load(),
		Exhausted: s.retryExhausted.Load(),
		Faults:    s.retryFaults.Load(),
	}
	out.Mutation = MutationStats{
		Generation:          s.topo.Load().gen,
		Applied:             s.mutApplied.Load(),
		EdgesAdded:          s.mutEdgesAdded.Load(),
		EdgesRemoved:        s.mutEdgesRemoved.Load(),
		StaleAborts:         s.mutStaleAborts.Load(),
		ReshardsIncremental: s.mutReshardsInc.Load(),
		ReshardsFull:        s.mutReshardsFull.Load(),
	}
	return out
}

// collectShardStats folds the worker network's shard-counter delta since
// the previous request into the service aggregate. Called by the worker
// goroutine after each request, when the network is idle.
func (s *Service) collectShardStats(pw *poolWorker) {
	if s.cfg.shards <= 1 {
		return
	}
	cur := pw.net.ShardStats()
	delta := ShardStats{
		Shards:      cur.Shards,
		Stepped:     make([]int64, len(cur.Stepped)),
		Delivered:   make([]int64, len(cur.Delivered)),
		BarrierWait: make([]time.Duration, len(cur.BarrierWait)),
	}
	for i := range cur.Stepped {
		delta.Stepped[i] = cur.Stepped[i]
		delta.Delivered[i] = cur.Delivered[i]
		delta.BarrierWait[i] = cur.BarrierWait[i]
		if pw.lastShard.Stepped != nil {
			delta.Stepped[i] -= pw.lastShard.Stepped[i]
			delta.Delivered[i] -= pw.lastShard.Delivered[i]
			delta.BarrierWait[i] -= pw.lastShard.BarrierWait[i]
		}
	}
	pw.lastShard = cur
	s.shardMu.Lock()
	s.shardAgg.Add(delta)
	s.shardMu.Unlock()
}

// collectStats folds the worker's post-request counter deltas into the
// service aggregates (shards in-process, engine traffic in cluster mode).
func (s *Service) collectStats(pw *poolWorker) {
	s.collectShardStats(pw)
	s.collectClusterStats(pw)
}

// collectClusterStats folds the worker's per-engine traffic deltas since
// the previous request into the service aggregate. Like
// collectShardStats, it runs on the worker goroutine while its sessions
// are idle.
func (s *Service) collectClusterStats(pw *poolWorker) {
	if len(pw.conns) == 0 {
		return
	}
	cur := make([]ClusterEngineStats, len(pw.conns))
	for i, c := range pw.conns {
		if c == nil {
			// Session lost and not yet replaced: carry the old snapshot
			// forward (zero delta) rather than underflowing against it.
			if pw.lastCluster != nil {
				cur[i] = pw.lastCluster[i]
			} else {
				cur[i] = ClusterEngineStats{Addr: s.cfg.cluster[i], Shard: i}
			}
			continue
		}
		cur[i] = c.Stats()
	}
	s.clusterMu.Lock()
	if s.clusterAgg == nil {
		s.clusterAgg = make([]ClusterEngineStats, len(pw.conns))
	}
	for i := range cur {
		delta := cur[i]
		if pw.lastCluster != nil {
			last := pw.lastCluster[i]
			delta.Runs -= last.Runs
			delta.Rounds -= last.Rounds
			delta.MsgsOut -= last.MsgsOut
			delta.MsgsIn -= last.MsgsIn
			delta.BytesOut -= last.BytesOut
			delta.BytesIn -= last.BytesIn
		}
		s.clusterAgg[i].Add(delta)
	}
	s.clusterMu.Unlock()
	pw.lastCluster = cur
}

// deriveSeed maps (service seed, request key) to the seed of the
// request's private simulated network, using the rng package's splittable
// stream construction so distinct keys give statistically independent
// executions.
func deriveSeed(seed, key uint64) uint64 {
	return rng.New(seed).Stream(key).Uint64()
}

// attemptSeed salts the request seed with the retry attempt number:
// attempt 0 is deriveSeed unchanged (so retry-enabled services stay
// bit-identical to retry-free ones until something actually fails), and
// each retry splits a fresh, reproducible stream — the result of
// (service seed, key, attempt) is deterministic, which is what makes the
// recovery path testable at all.
func attemptSeed(seed, key uint64, attempt int) uint64 {
	d := deriveSeed(seed, key)
	if attempt > 0 {
		d = rng.New(d).Stream(uint64(attempt)).Uint64()
	}
	return d
}

// submit runs fn on a pool worker and waits for it (or for ctx/closure),
// re-executing up to cfg.retries times on retryable failures (see
// Retryable) with attempt-salted seeds and exponential backoff. The
// topology snapshot is captured once at admission and kept across fault
// retries (pin semantics); a stale-generation failure instead refreshes
// the snapshot without consuming attempt salting, so the retry is
// bit-identical to a request freshly admitted after the mutation.
func (s *Service) submit(ctx context.Context, key uint64, opts []Option, fn func(w *core.Walker, cfg config) error) error {
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("distwalk: request %d not started: %w", key, err)
	}
	snap := s.topo.Load()
	attempt, tries := 0, 0
	for {
		err := s.submitOnce(ctx, key, cfg, attempt, snap, fn)
		s.retryAttempts.Add(1)
		if err == nil {
			if tries > 0 {
				s.retryRecovered.Add(1)
			}
			return nil
		}
		if isFaultErr(err) {
			s.retryFaults.Add(1)
		}
		if !Retryable(err) {
			return err
		}
		if tries >= cfg.retries {
			if cfg.retries > 0 {
				s.retryExhausted.Add(1)
				return fmt.Errorf("distwalk: request %d failed after %d attempts: %w", key, tries+1, err)
			}
			return err
		}
		if werr := s.backoffWait(ctx, cfg.backoff, tries); werr != nil {
			return fmt.Errorf("distwalk: request %d retry abandoned: %w (last attempt: %w)", key, werr, err)
		}
		tries++
		s.retryRetries.Add(1)
		if errors.Is(err, ErrStaleGeneration) {
			snap = s.topo.Load()
		} else {
			attempt++
		}
	}
}

// isFaultErr reports a typed fault loss (as opposed to a transient
// scheduling rejection).
func isFaultErr(err error) bool {
	return errors.Is(err, ErrNodeCrashed) || errors.Is(err, ErrMessageLost)
}

// backoffWait sleeps base << attempt before the next retry, honoring the
// request context and service shutdown. attempt is the zero-based index
// of the attempt that just failed, so the first retry waits base.
func (s *Service) backoffWait(ctx context.Context, base time.Duration, attempt int) error {
	if base <= 0 {
		return ctx.Err()
	}
	if attempt > 16 {
		attempt = 16 // cap the shift; minutes of simulated patience is plenty
	}
	t := time.NewTimer(base << uint(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.quit:
		return ErrServiceClosed
	}
}

// submitOnce runs one attempt of fn on a pool worker and waits for it.
func (s *Service) submitOnce(ctx context.Context, key uint64, cfg config, attempt int, snap *topology, fn func(w *core.Walker, cfg config) error) error {
	done := make(chan error, 1)
	job := func(pw *poolWorker) {
		done <- s.execute(ctx, key, cfg, attempt, snap, pw, fn)
	}
	select {
	case s.jobs <- job:
	case <-s.quit:
		return fmt.Errorf("%w (request %d)", ErrServiceClosed, key)
	case <-ctx.Done():
		return fmt.Errorf("distwalk: request %d not started: %w", key, ctx.Err())
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// The worker aborts on its own via the network's context check;
		// its late write lands in the buffered channel and is dropped.
		return fmt.Errorf("distwalk: request %d canceled: %w", key, ctx.Err())
	}
}

// execute prepares the worker's warm state for this request and runs fn:
// reseed the network from (service seed, key, attempt), reshape it when
// its warm topology trails the request's snapshot, Reset the pooled
// walker (first request builds it), and apply per-request knobs. Nothing
// here depends on what the worker served before — that is the per-key
// determinism contract. On failure the error is faultized: if the run
// lost a token to an injected fault, the typed fault error replaces
// protocol-level detection noise even for drivers (spanning, mixing)
// that run congest primitives outside the Walker methods.
//
// In abort mode (WithStaleAbort) execution races the snapshot's stale
// channel: a mutation published before the run starts fails fast, one
// published mid-run cancels the engine at its next round check; both
// surface as a *StaleGenerationError. A caller-initiated cancellation is
// never translated — context.Cause distinguishes the two.
func (s *Service) execute(ctx context.Context, key uint64, cfg config, attempt int, snap *topology, pw *poolWorker, fn func(w *core.Walker, cfg config) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("distwalk: request %d not started: %w", key, err)
	}
	if !cfg.staleAbort {
		return s.executeOn(ctx, key, cfg, attempt, snap, pw, fn)
	}
	select {
	case <-snap.stale:
		s.mutStaleAborts.Add(1)
		return s.staleErr(key, snap)
	default:
	}
	cctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-snap.stale:
			cancel(s.staleErr(key, snap))
		case <-done:
		case <-cctx.Done():
		}
	}()
	err := s.executeOn(cctx, key, cfg, attempt, snap, pw, fn)
	if err != nil {
		if cause := context.Cause(cctx); cause != nil && errors.Is(cause, ErrStaleGeneration) {
			s.mutStaleAborts.Add(1)
			return cause
		}
	}
	return err
}

// staleErr builds the typed stale-generation failure for a request
// admitted under snap.
func (s *Service) staleErr(key uint64, snap *topology) error {
	return fmt.Errorf("distwalk: request %d: %w", key,
		&StaleGenerationError{Old: Generation(snap.gen), New: Generation(s.topo.Load().gen)})
}

// executeOn is execute's epoch-resolved body.
func (s *Service) executeOn(ctx context.Context, key uint64, cfg config, attempt int, snap *topology, pw *poolWorker, fn func(w *core.Walker, cfg config) error) error {
	seed := attemptSeed(s.seed, key, attempt)
	if len(s.clusterSup) > 0 {
		return s.executeCluster(ctx, key, cfg, seed, snap, pw, fn)
	}
	w, err := s.prepare(pw, seed, cfg.params, cfg.maxRounds, snap)
	if err != nil {
		return err
	}
	pw.net.SetContext(ctx)
	defer pw.net.SetContext(nil)
	defer s.collectStats(pw)
	return core.Faultize(w, fn(w, cfg))
}

// executeCluster is execute's cluster-mode body: repair the worker's
// sessions, arm the round deadlines, run fn over the remote engines —
// and, when the cluster run is lost and WithClusterFallback is on,
// re-execute on in-process shards with the same seed. Sharded execution
// is bit-identical to cluster execution per (graph, seed, request), so
// the failed-over result is exactly what the fault-free cluster run
// would have produced.
//
// Topology epochs interact with the cluster in three ways. A request
// pinned to a graph the remote engines no longer serve runs in-process
// on equivalent shards (same bit-identity argument, no failover
// counted). A worker whose sessions were handshaken for a superseded
// graph drops them so the supervisors re-dial with the rotated Hello —
// the server re-pins to the strictly newer generation. And a mutation
// racing the re-dial is detected by re-loading the plan after
// ensureCluster: ApplyMutations stores the successor plan before
// rotating any handshake, so sessions dialed with the rotated Hello
// imply a visible plan change.
func (s *Service) executeCluster(ctx context.Context, key uint64, cfg config, seed uint64, snap *topology, pw *poolWorker, fn func(w *core.Walker, cfg config) error) error {
	plan := s.clusterPlan.Load()
	if plan.g != snap.g {
		// Pinned to a topology the cluster does not serve: run
		// in-process, keeping any healthy sessions for later requests.
		return s.executeLocalShards(ctx, cfg, seed, snap, pw, fn)
	}
	if pw.clusterTopo != nil && pw.clusterTopo != plan.g {
		// The sessions hold per-session engines built from a dead
		// topology; drop them so ensureCluster re-dials fresh.
		s.dropClusterConns(pw, nil)
		pw.clusterTopo = nil
	}
	if err := s.syncWarm(pw, snap); err != nil {
		return err
	}
	runErr := s.ensureCluster(ctx, pw, plan)
	if runErr == nil && s.clusterPlan.Load() != plan {
		// The cluster rotated while we dialed: freshly acquired sessions
		// may already serve the successor topology. Drop them and run
		// this request in-process against its own snapshot.
		s.dropClusterConns(pw, nil)
		pw.clusterTopo = nil
		return s.executeLocalShards(ctx, cfg, seed, snap, pw, fn)
	}
	if runErr == nil {
		runErr = func() error {
			s.armCluster(ctx, pw, cfg)
			reserved := append([]*wire.EngineConn(nil), pw.conns...)
			reserveConns(reserved)
			defer releaseConns(reserved)
			w, err := s.prepare(pw, seed, cfg.params, cfg.maxRounds, snap)
			if err != nil {
				return err
			}
			pw.net.SetContext(ctx)
			err = core.Faultize(w, fn(w, cfg))
			pw.net.SetContext(nil)
			s.collectStats(pw)
			if clusterBroken(pw) {
				s.dropClusterConns(pw, err)
			}
			return err
		}()
	}
	if runErr == nil || !errors.Is(runErr, ErrClusterEngine) || !cfg.clusterFallback {
		return runErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("distwalk: request %d lost its cluster run and cannot fail over: %w", key, err)
	}
	if pw.attached {
		// Defensive: a cluster-typed failure with no broken session still
		// means the group cannot be trusted with another run.
		s.dropClusterConns(pw, runErr)
	}
	s.clusterFailovers.Add(1)
	return s.executeLocalShards(ctx, cfg, seed, snap, pw, fn)
}

// executeLocalShards runs a cluster-mode request on in-process shards —
// the WithShards(len(cluster)) path, bit-identical to the cluster run by
// the identity contract. Serves both failover after a lost cluster run
// and requests pinned to a topology generation the remote engines have
// rotated past; in the pinned case healthy sessions are kept (detached)
// for the next current-generation request.
func (s *Service) executeLocalShards(ctx context.Context, cfg config, seed uint64, snap *topology, pw *poolWorker, fn func(w *core.Walker, cfg config) error) error {
	if pw.attached {
		pw.attached = false
		pw.net.ConnectRemote(nil, nil)
	}
	if err := s.syncWarm(pw, snap); err != nil {
		return err
	}
	pw.net.SetShards(len(s.cfg.cluster))
	defer pw.net.SetShards(1)
	w, err := s.prepare(pw, seed, cfg.params, cfg.maxRounds, snap)
	if err != nil {
		return err
	}
	pw.net.SetContext(ctx)
	defer pw.net.SetContext(nil)
	defer s.collectStats(pw)
	return core.Faultize(w, fn(w, cfg))
}

// syncWarm reshapes a worker network whose warm state trails the
// request's topology snapshot, restamping it and discarding the pooled
// walker when the graph actually changed (the walker's degree-sized
// slabs describe the dead topology). A pure generation bump over the
// same graph (InvalidateCache) restamps without rebuilding anything.
// The network must be detached unless the graph is unchanged.
func (s *Service) syncWarm(pw *poolWorker, snap *topology) error {
	if pw.net.Generation() == snap.gen {
		return nil
	}
	kind, err := pw.net.Reshape(snap.g)
	if err != nil {
		return err
	}
	switch kind {
	case congest.ReshapeIncremental:
		s.mutReshardsInc.Add(1)
		pw.wkr = nil
	case congest.ReshapeFull:
		s.mutReshardsFull.Add(1)
		pw.wkr = nil
	}
	pw.net.SetGeneration(snap.gen)
	return nil
}

// prepare readies a worker's warm state for a run under the given seed
// and knobs: sync the warm topology to the request's snapshot, reseed
// the private network, restore the round budget, and Reset the pooled
// walker (the first request builds it; a reshaped graph forces a
// rebuild). Shared by the per-key path (seed derived from the request
// key) and the batched path (seed derived from the batch composition).
func (s *Service) prepare(pw *poolWorker, seed uint64, params Params, maxRounds int, snap *topology) (*core.Walker, error) {
	if err := s.syncWarm(pw, snap); err != nil {
		return nil, err
	}
	pw.net.Reseed(seed)
	if maxRounds > 0 {
		pw.net.SetMaxRounds(maxRounds)
	} else {
		pw.net.SetMaxRounds(congest.DefaultMaxRounds)
	}
	if pw.wkr == nil {
		w, err := core.NewWalkerOn(pw.net, params)
		if err != nil {
			return nil, err
		}
		pw.wkr = w
	} else if err := pw.wkr.Reset(params); err != nil {
		return nil, err
	}
	return pw.wkr, nil
}

// runBatch is the scheduler's executor: hand the flushed batch to a pool
// worker (reseeded with the batch seed — batch determinism is per
// composition, not per worker) and block until it has run. The batch
// executes without a member context installed: one member's cancellation
// must not abort its batchmates, so post-flush cancellation is not
// observed (see internal/sched's determinism notes).
func (s *Service) runBatch(b *sched.Batch) {
	snap, ok := b.Topo.(*topology)
	if !ok || snap == nil {
		snap = s.topo.Load()
	}
	done := make(chan struct{})
	job := func(pw *poolWorker) {
		defer close(done)
		if len(s.clusterSup) > 0 {
			// Same session discipline as executeCluster. Batch.Execute
			// reports failures to its members (ErrBatchAborted, a
			// retryable error, so the unbatched retry path recovers and
			// can fall over in-process), but a loss must still drop the
			// desynced session group here.
			plan := s.clusterPlan.Load()
			if plan.g != snap.g {
				// The batch is pinned to a topology the cluster does not
				// serve: abort retryably; members re-execute unbatched
				// against their own snapshots.
				b.Abort(fmt.Errorf("batch pinned to topology generation %d, cluster serves another", snap.gen))
				return
			}
			if pw.clusterTopo != nil && pw.clusterTopo != plan.g {
				s.dropClusterConns(pw, nil)
				pw.clusterTopo = nil
			}
			if err := s.syncWarm(pw, snap); err != nil {
				b.Abort(err)
				return
			}
			if err := s.ensureCluster(context.Background(), pw, plan); err != nil {
				b.Abort(err)
				return
			}
			if s.clusterPlan.Load() != plan {
				s.dropClusterConns(pw, nil)
				pw.clusterTopo = nil
				b.Abort(fmt.Errorf("cluster rotated to a new topology generation mid-dial"))
				return
			}
			s.armCluster(context.Background(), pw, s.cfg)
			reserved := append([]*wire.EngineConn(nil), pw.conns...)
			reserveConns(reserved)
			defer releaseConns(reserved)
			defer func() {
				if clusterBroken(pw) {
					s.dropClusterConns(pw, nil)
				}
			}()
		}
		defer s.collectStats(pw)
		w, err := s.prepare(pw, b.Seed, b.Params, b.MaxRounds, snap)
		if err != nil {
			b.Abort(err)
			return
		}
		b.Execute(w)
	}
	select {
	case s.jobs <- job:
		<-done
	case <-s.quit:
		b.Abort(ErrServiceClosed)
	}
}

// SingleRandomWalk samples the endpoint of an ℓ-step random walk from
// source in Õ(√(ℓD)) simulated rounds (Theorem 2.5). key identifies the
// request: same key, same result, regardless of concurrency. With
// WithResultCache, repeated and concurrent identical requests are served
// from the cache or coalesced onto one execution — bit-identically.
func (s *Service) SingleRandomWalk(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkResult, error) {
	if s.cache == nil {
		return s.singleRandomWalk(ctx, key, source, ell, opts)
	}
	return s.cachedSingle(ctx, cacheKindSingle, key, source, ell, opts, func() (*WalkResult, error) {
		return s.singleRandomWalk(ctx, key, source, ell, opts)
	})
}

// singleRandomWalk is the uncached per-key execution body.
func (s *Service) singleRandomWalk(ctx context.Context, key uint64, source NodeID, ell int, opts []Option) (*WalkResult, error) {
	var out *WalkResult
	err := s.submit(ctx, key, opts, func(w *core.Walker, _ config) error {
		res, err := w.SingleRandomWalk(source, ell)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NaiveWalk runs the O(ℓ)-round token-forwarding baseline.
func (s *Service) NaiveWalk(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkResult, error) {
	if s.cache == nil {
		return s.naiveWalk(ctx, key, source, ell, opts)
	}
	return s.cachedSingle(ctx, cacheKindNaive, key, source, ell, opts, func() (*WalkResult, error) {
		return s.naiveWalk(ctx, key, source, ell, opts)
	})
}

func (s *Service) naiveWalk(ctx context.Context, key uint64, source NodeID, ell int, opts []Option) (*WalkResult, error) {
	var out *WalkResult
	err := s.submit(ctx, key, opts, func(w *core.Walker, _ config) error {
		res, err := w.NaiveWalk(source, ell)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ManyRandomWalks samples k independent ℓ-step walks from the given (not
// necessarily distinct) sources in Õ(min(√(kℓD)+k, k+ℓ)) simulated rounds
// (Theorem 2.8), as one request. It runs on the same group-execution
// path (sched.ExecGroup) that serves coalesced SubmitWalk batches — one
// explicit batch under the caller's key instead of a scheduled one.
func (s *Service) ManyRandomWalks(ctx context.Context, key uint64, sources []NodeID, ell int, opts ...Option) (*ManyResult, error) {
	if s.cache == nil {
		return s.manyRandomWalks(ctx, key, sources, ell, opts)
	}
	return s.cachedMany(ctx, key, sources, ell, opts)
}

func (s *Service) manyRandomWalks(ctx context.Context, key uint64, sources []NodeID, ell int, opts []Option) (*ManyResult, error) {
	var out *ManyResult
	err := s.submit(ctx, key, opts, func(w *core.Walker, cfg config) error {
		res, _, err := sched.ExecGroup(w, sources, ell, nil, cfg.partial)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WalkTrace samples an ℓ-step walk from source and then regenerates it
// (Section 2.2, "Regenerating the entire random walk") so every simulated
// node learns its position(s) in the walk, as one request. The returned
// Trace carries per-node positions and first-visit edges — the primitive
// the spanning-tree application builds on — plus the regeneration cost;
// the WalkResult carries the walk itself.
func (s *Service) WalkTrace(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkResult, *Trace, error) {
	if s.cache == nil {
		return s.walkTrace(ctx, key, source, ell, opts)
	}
	return s.cachedTrace(ctx, key, source, ell, opts)
}

func (s *Service) walkTrace(ctx context.Context, key uint64, source NodeID, ell int, opts []Option) (*WalkResult, *Trace, error) {
	var (
		walk  *WalkResult
		trace *Trace
	)
	err := s.submit(ctx, key, opts, func(w *core.Walker, _ config) error {
		res, err := w.SingleRandomWalk(source, ell)
		if err != nil {
			return err
		}
		tr, err := w.Regenerate(res)
		if err != nil {
			return err
		}
		walk, trace = res, tr
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return walk, trace, nil
}

// RandomSpanningTree samples a uniformly random spanning tree rooted at
// root in Õ(√(mD)) simulated rounds (Theorem 4.1).
func (s *Service) RandomSpanningTree(ctx context.Context, key uint64, root NodeID, opts ...Option) (*RSTResult, error) {
	if s.cache == nil {
		return s.randomSpanningTree(ctx, key, root, opts)
	}
	return s.cachedRST(ctx, key, root, opts)
}

func (s *Service) randomSpanningTree(ctx context.Context, key uint64, root NodeID, opts []Option) (*RSTResult, error) {
	var out *RSTResult
	err := s.submit(ctx, key, opts, func(w *core.Walker, cfg config) error {
		res, err := spanning.RandomSpanningTree(w, root, cfg.rst)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateMixingTime estimates τ^x_mix decentralized, in
// Õ(n^{1/2} + n^{1/4}√(Dτ)) simulated rounds (Theorem 4.6).
func (s *Service) EstimateMixingTime(ctx context.Context, key uint64, x NodeID, opts ...Option) (*MixingEstimate, error) {
	if s.cache == nil {
		return s.estimateMixingTime(ctx, key, x, opts)
	}
	return s.cachedMixing(ctx, key, x, opts)
}

func (s *Service) estimateMixingTime(ctx context.Context, key uint64, x NodeID, opts []Option) (*MixingEstimate, error) {
	var out *MixingEstimate
	err := s.submit(ctx, key, opts, func(w *core.Walker, cfg config) error {
		res, err := mixing.EstimateTau(w, x, cfg.mix)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
