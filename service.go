package distwalk

import (
	"context"
	"fmt"
	"sync"

	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/mixing"
	"distwalk/internal/rng"
	"distwalk/internal/spanning"
)

// Service is the concurrent entry point to the paper's algorithms: a
// long-lived pool that multiplexes many simultaneous requests — single
// walks, walk batches, spanning trees, mixing estimates — over one shared
// topology. This is the shape the paper itself motivates: walk sampling as
// a reusable network primitive serving higher-level applications (token
// management, load balancing, search), many of which are in flight at
// once.
//
// Each of the pool's workers owns an independent simulated CONGEST
// network and one long-lived walker on it. A request is identified by a
// caller-chosen request key; before executing, the worker reseeds its
// network with a seed derived from (service seed, key) and Resets its warm
// walker — coupon shelves, hop logs, flow ledgers and tree slabs keep
// their capacity across requests, so steady-state requests allocate
// nothing for protocol state. Determinism is per request key, not per
// call order or worker history: Reset restores the exact observable state
// of a fresh walker, so the result of (graph, service seed, key, request)
// is bit-identical no matter how many requests run concurrently, which
// worker serves it, or what ran before — the property the golden stress
// tests pin.
//
// All entry points take a context.Context; cancellation and deadlines are
// checked inside the engine's round loop, so even a multi-million-round
// simulated run aborts promptly. Failures wrap the exported sentinel
// errors (see errors.go).
//
// A Service is safe for concurrent use. The graph must not be mutated
// while the service is alive.
type Service struct {
	g    *Graph
	seed uint64
	cfg  config

	jobs chan func(*poolWorker)
	quit chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

// poolWorker is one worker's warm state: its private simulated network and
// the walker reused (via Reset) across every request the worker serves.
type poolWorker struct {
	net *congest.Network
	wkr *Walker
}

// NewService builds a service over g. seed drives all randomness: together
// with a request key it fully determines every result. Options set the
// service-wide defaults; request methods accept per-request overrides.
func NewService(g *Graph, seed uint64, opts ...Option) (*Service, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("%w: service needs a non-empty graph", ErrGraphTooSmall)
	}
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := cfg.params.Validate(); err != nil {
		return nil, err
	}
	s := &Service{
		g:    g,
		seed: seed,
		cfg:  cfg,
		jobs: make(chan func(*poolWorker)),
		quit: make(chan struct{}),
	}
	for i := 0; i < cfg.workers; i++ {
		s.wg.Add(1)
		go s.worker(&poolWorker{net: congest.NewNetwork(g, seed)})
	}
	return s, nil
}

// worker serves requests on its own warm state until the service closes.
func (s *Service) worker(pw *poolWorker) {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.jobs:
			job(pw)
		}
	}
}

// Workers returns the size of the worker pool.
func (s *Service) Workers() int { return s.cfg.workers }

// Graph returns the served topology.
func (s *Service) Graph() *Graph { return s.g }

// Close shuts the pool down. In-flight requests finish; requests not yet
// picked up by a worker (and all later ones) fail with ErrServiceClosed.
// Close is idempotent and safe to call concurrently with requests.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.wg.Wait()
	})
	return nil
}

// deriveSeed maps (service seed, request key) to the seed of the
// request's private simulated network, using the rng package's splittable
// stream construction so distinct keys give statistically independent
// executions.
func deriveSeed(seed, key uint64) uint64 {
	return rng.New(seed).Stream(key).Uint64()
}

// submit runs fn on a pool worker and waits for it (or for ctx/closure).
func (s *Service) submit(ctx context.Context, key uint64, opts []Option, fn func(w *Walker, cfg config) error) error {
	cfg := s.cfg
	cfg.apply(opts)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("distwalk: request %d not started: %w", key, err)
	}
	done := make(chan error, 1)
	job := func(pw *poolWorker) {
		done <- s.execute(ctx, key, cfg, pw, fn)
	}
	select {
	case s.jobs <- job:
	case <-s.quit:
		return fmt.Errorf("%w (request %d)", ErrServiceClosed, key)
	case <-ctx.Done():
		return fmt.Errorf("distwalk: request %d not started: %w", key, ctx.Err())
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// The worker aborts on its own via the network's context check;
		// its late write lands in the buffered channel and is dropped.
		return fmt.Errorf("distwalk: request %d canceled: %w", key, ctx.Err())
	}
}

// execute prepares the worker's warm state for this request and runs fn:
// reseed the network from (service seed, key), Reset the pooled walker
// (first request builds it), and apply per-request knobs. Nothing here
// depends on what the worker served before — that is the per-key
// determinism contract.
func (s *Service) execute(ctx context.Context, key uint64, cfg config, pw *poolWorker, fn func(w *Walker, cfg config) error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("distwalk: request %d not started: %w", key, err)
	}
	pw.net.Reseed(deriveSeed(s.seed, key))
	pw.net.SetContext(ctx)
	defer pw.net.SetContext(nil)
	if cfg.maxRounds > 0 {
		pw.net.SetMaxRounds(cfg.maxRounds)
	} else {
		pw.net.SetMaxRounds(congest.DefaultMaxRounds)
	}
	if pw.wkr == nil {
		w, err := core.NewWalkerOn(pw.net, cfg.params)
		if err != nil {
			return err
		}
		pw.wkr = w
	} else if err := pw.wkr.Reset(cfg.params); err != nil {
		return err
	}
	return fn(pw.wkr, cfg)
}

// SingleRandomWalk samples the endpoint of an ℓ-step random walk from
// source in Õ(√(ℓD)) simulated rounds (Theorem 2.5). key identifies the
// request: same key, same result, regardless of concurrency.
func (s *Service) SingleRandomWalk(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkResult, error) {
	var out *WalkResult
	err := s.submit(ctx, key, opts, func(w *Walker, _ config) error {
		res, err := w.SingleRandomWalk(source, ell)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NaiveWalk runs the O(ℓ)-round token-forwarding baseline.
func (s *Service) NaiveWalk(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkResult, error) {
	var out *WalkResult
	err := s.submit(ctx, key, opts, func(w *Walker, _ config) error {
		res, err := w.NaiveWalk(source, ell)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ManyRandomWalks samples k independent ℓ-step walks from the given (not
// necessarily distinct) sources in Õ(min(√(kℓD)+k, k+ℓ)) simulated rounds
// (Theorem 2.8), as one request.
func (s *Service) ManyRandomWalks(ctx context.Context, key uint64, sources []NodeID, ell int, opts ...Option) (*ManyResult, error) {
	var out *ManyResult
	err := s.submit(ctx, key, opts, func(w *Walker, _ config) error {
		res, err := w.ManyRandomWalks(sources, ell)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WalkTrace samples an ℓ-step walk from source and then regenerates it
// (Section 2.2, "Regenerating the entire random walk") so every simulated
// node learns its position(s) in the walk, as one request. The returned
// Trace carries per-node positions and first-visit edges — the primitive
// the spanning-tree application builds on — plus the regeneration cost;
// the WalkResult carries the walk itself.
func (s *Service) WalkTrace(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkResult, *Trace, error) {
	var (
		walk  *WalkResult
		trace *Trace
	)
	err := s.submit(ctx, key, opts, func(w *Walker, _ config) error {
		res, err := w.SingleRandomWalk(source, ell)
		if err != nil {
			return err
		}
		tr, err := w.Regenerate(res)
		if err != nil {
			return err
		}
		walk, trace = res, tr
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return walk, trace, nil
}

// RandomSpanningTree samples a uniformly random spanning tree rooted at
// root in Õ(√(mD)) simulated rounds (Theorem 4.1).
func (s *Service) RandomSpanningTree(ctx context.Context, key uint64, root NodeID, opts ...Option) (*RSTResult, error) {
	var out *RSTResult
	err := s.submit(ctx, key, opts, func(w *Walker, cfg config) error {
		res, err := spanning.RandomSpanningTree(w, root, cfg.rst)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateMixingTime estimates τ^x_mix decentralized, in
// Õ(n^{1/2} + n^{1/4}√(Dτ)) simulated rounds (Theorem 4.6).
func (s *Service) EstimateMixingTime(ctx context.Context, key uint64, x NodeID, opts ...Option) (*MixingEstimate, error) {
	var out *MixingEstimate
	err := s.submit(ctx, key, opts, func(w *Walker, cfg config) error {
		res, err := mixing.EstimateTau(w, x, cfg.mix)
		out = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
