package distwalk

// Dynamic topology: batched edge mutation under live traffic.
//
// A Service's topology is versioned by a Generation. Every request
// captures the current generation's snapshot when it admits; a mutation
// (ApplyMutations) builds a copy-on-write successor graph, publishes it
// as generation+1, and retires the old epoch. What happens to requests
// in flight across the boundary is the caller's choice per request:
//
//   - Epoch pinning (default, WithEpochPinning): the request completes
//     against the immutable snapshot it admitted under — the result is
//     exactly what a never-mutated service would return. Pinned results
//     are not stored in the result cache (they would be stale on
//     arrival).
//
//   - Stale abort (WithStaleAbort): the request fails fast with a
//     *StaleGenerationError (errors.Is ErrStaleGeneration) carrying the
//     old and new generations. Queued batch members are evicted at
//     publish; in-flight executions cancel at the next engine round.
//     With WithRetry the failure re-admits transparently on the new
//     topology, bit-identical to a fresh post-mutation request (stale
//     retries do not consume attempt-seed salting).
//
// Determinism contract: for a fixed (graph, mutation sequence, seed,
// key), results are bit-identical regardless of shard count, worker
// pool size, or cluster vs in-process execution — the same identity
// argument the shard and cluster suites pin, extended to the mutation
// axis.

import (
	"context"
	"fmt"
	"strconv"

	"distwalk/internal/graph"
	"distwalk/internal/sched"
	"distwalk/internal/wire"
)

// Generation is a topology epoch ordinal. A service starts at
// generation 1; every ApplyMutations and InvalidateCache advances it by
// one. Generations are totally ordered and never reused.
type Generation uint64

// String formats the generation for logs and error messages.
func (g Generation) String() string { return strconv.FormatUint(uint64(g), 10) }

// EdgeMutation names one undirected edge to add or remove. For
// additions, W is the edge weight (0 means 1; negative is an error).
// For removals, W is ignored and the earliest-inserted surviving edge
// joining U and V (either orientation) is removed.
type EdgeMutation = graph.EdgeEdit

// Mutations is one atomic batch of topology edits: RemoveEdges apply
// first (in order), then AddEdges (in order). The batch is
// all-or-nothing — any invalid edit rejects the whole batch with an
// ErrBadMutation-matching error and the topology is unchanged.
type Mutations struct {
	AddEdges    []EdgeMutation
	RemoveEdges []EdgeMutation
}

// topology is one immutable epoch: the graph served, its generation
// ordinal, and a channel closed when a successor is published (the
// stale-abort signal). Requests capture the pointer at admission; the
// pointer is also the batch-compatibility token (sched.Request.Topo).
type topology struct {
	gen   uint64
	g     *Graph
	stale chan struct{}
}

// clusterPlan pins the graph and shard bounds the cluster's remote
// engines are currently built for. ApplyMutations stores the successor
// plan before rotating the supervisors' handshakes, so a worker that
// attaches sessions and then re-reads the plan can detect a rotation
// that raced its dials.
type clusterPlan struct {
	g      *Graph
	bounds []int32
}

// Generation returns the current topology generation. Requests admitted
// now execute against (or, in abort mode, are validated against) this
// epoch.
func (s *Service) Generation() Generation { return Generation(s.topo.Load().gen) }

// ApplyMutations atomically applies a batch of edge edits and publishes
// the result as the next topology generation, returning the new
// generation. The previous graph is never modified — the successor is
// copy-on-write, sharing the adjacency of every untouched node — so
// epoch-pinned requests in flight keep executing against an immutable
// snapshot while new requests admit under the new generation.
//
// Publishing a generation invalidates the result cache exactly like
// InvalidateCache (the generation is folded into every cache digest),
// evicts queued abort-mode batch members, cancels in-flight abort-mode
// executions, and — in cluster mode — rotates the engine handshake so
// supervisors re-pin the remote processes to the new graph digest on
// their next dial instead of being rejected forever.
//
// An empty batch returns the current generation without bumping it.
// Invalid edits (ErrBadMutation), edits that would strand the installed
// fault plan (a WithFaultPlan link no longer present), and mutations
// after Close are rejected whole; concurrent ApplyMutations calls
// serialize. ctx bounds only the admission (the apply itself is pure
// in-memory work); a done context rejects the batch.
func (s *Service) ApplyMutations(ctx context.Context, m Mutations) (Generation, error) {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	cur := s.topo.Load()
	if err := ctx.Err(); err != nil {
		return Generation(cur.gen), fmt.Errorf("distwalk: mutation not applied: %w", err)
	}
	select {
	case <-s.quit:
		return Generation(cur.gen), fmt.Errorf("distwalk: mutation not applied: %w", ErrServiceClosed)
	default:
	}
	if len(m.AddEdges) == 0 && len(m.RemoveEdges) == 0 {
		return Generation(cur.gen), nil
	}
	g2, err := cur.g.ApplyEdits(m.RemoveEdges, m.AddEdges)
	if err != nil {
		return Generation(cur.gen), fmt.Errorf("distwalk: mutation rejected: %w", err)
	}
	// The installed fault plan compiles against per-edge state on every
	// worker reshape; validate its links against the new topology now so
	// the batch fails here, atomically, instead of on some worker later.
	if p := s.cfg.fplan; p != nil {
		for _, l := range p.LinkDrops {
			if !hasEdge(g2, l.From, l.To) {
				return Generation(cur.gen), fmt.Errorf(
					"distwalk: mutation rejected: %w: installed fault plan drops link (%d,%d), absent from the new topology (%w)",
					ErrBadMutation, l.From, l.To, ErrBadFault)
			}
		}
		for _, l := range p.LinkDelays {
			if !hasEdge(g2, l.From, l.To) {
				return Generation(cur.gen), fmt.Errorf(
					"distwalk: mutation rejected: %w: installed fault plan delays link (%d,%d), absent from the new topology (%w)",
					ErrBadMutation, l.From, l.To, ErrBadFault)
			}
		}
	}
	next := &topology{gen: cur.gen + 1, g: g2, stale: make(chan struct{})}
	if len(s.clusterSup) > 0 {
		engines := len(s.cfg.cluster)
		h := wire.HelloFor(g2, engines, 0, 1, s.seed, s.cfg.fplan)
		if len(h.Bounds) != engines+1 {
			return Generation(cur.gen), fmt.Errorf("%w: mutated shard plan has %d ranges for %d engines",
				ErrClusterConfig, len(h.Bounds)-1, engines)
		}
		h.Gen = next.gen
		// Store the plan before rotating any handshake: a worker that
		// dialed with the rotated Hello is then guaranteed to observe the
		// new plan when it re-checks after attaching (see executeCluster).
		s.clusterPlan.Store(&clusterPlan{g: g2, bounds: h.Bounds})
		for i, sv := range s.clusterSup {
			hi := h
			hi.Shard = i
			sv.UpdateHello(hi)
		}
	}
	s.publishTopology(next)
	s.mutApplied.Add(1)
	s.mutEdgesAdded.Add(int64(len(m.AddEdges)))
	s.mutEdgesRemoved.Add(int64(len(m.RemoveEdges)))
	return Generation(next.gen), nil
}

// publishTopology installs next as the current epoch: the old epoch's
// stale channel closes (cancelling in-flight abort-mode executions),
// the result cache purges (its digests fold the generation, so old
// entries are unreachable anyway; purging frees the bytes), and queued
// abort-mode batch members of dead epochs are evicted with a
// stale-generation error. Callers hold mutMu.
func (s *Service) publishTopology(next *topology) {
	old := s.topo.Load()
	s.topo.Store(next)
	close(old.stale)
	if s.cache != nil {
		s.cache.Purge()
	}
	if s.batch != nil {
		cause := &StaleGenerationError{Old: Generation(old.gen), New: Generation(next.gen)}
		n := s.batch.AbortPending(func(r sched.Request) bool {
			return r.StaleAbort && r.Topo != any(next)
		}, cause)
		s.mutStaleAborts.Add(int64(n))
	}
}

// hasEdge reports whether g has an edge u-v in the given orientation's
// adjacency (undirected edges appear in both).
func hasEdge(g *Graph, u, v NodeID) bool {
	if u < 0 || int(u) >= g.N() {
		return false
	}
	for _, h := range g.Neighbors(u) {
		if h.To == v {
			return true
		}
	}
	return false
}
