package distwalk_test

// Cluster-mode integration tests against real distwalkd processes: the
// test binary builds cmd/distwalkd once, spawns engines on loopback
// ports, and drives the full public surface (NewService + WithCluster)
// against them. The headline contract is the acceptance criterion of the
// cluster PR: for 2 and 4 out-of-process engines, every workload's
// results, cost counters, fault census and retry counters are
// bit-identical to the same-S in-process sharded run — cluster mode is a
// deployment choice with no observable footprint. The suite also covers
// the operational surface: graceful drain on SIGTERM, typed handshake
// rejections, flag-validation exit codes, and the debug/stats endpoints
// on both sides of the wire.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"distwalk"
)

// --- distwalkd process harness ---

// distwalkdBin builds cmd/distwalkd once per test binary. Under -race the
// daemon is race-instrumented too, so the CI cluster job's detector
// coverage spans both sides of every TCP session.
var distwalkdBin struct {
	once sync.Once
	path string
	err  error
}

func buildDistwalkd(t *testing.T) string {
	t.Helper()
	distwalkdBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "distwalkd-bin-")
		if err != nil {
			distwalkdBin.err = err
			return
		}
		bin := filepath.Join(dir, "distwalkd")
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", bin, "distwalk/cmd/distwalkd")
		cmd := exec.Command("go", args...)
		if out, err := cmd.CombinedOutput(); err != nil {
			distwalkdBin.err = fmt.Errorf("go build distwalkd: %v\n%s", err, out)
			return
		}
		distwalkdBin.path = bin
	})
	if distwalkdBin.err != nil {
		t.Fatal(distwalkdBin.err)
	}
	return distwalkdBin.path
}

// syncBuffer collects the daemon's interleaved stdout/stderr; the
// process writes concurrently with the test's polling reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// engineProc is one running distwalkd under test control.
type engineProc struct {
	cmd     *exec.Cmd
	addr    string // resolved engine listen address
	debug   string // resolved -debug-addr address ("" without the flag)
	out     *syncBuffer
	done    chan struct{} // closed when the process exits
	exitErr error         // cmd.Wait result; read after <-done
}

// startEngine spawns distwalkd on a fresh loopback port (plus extra
// flags) and blocks until its "listening on" line reports the address.
func startEngine(t *testing.T, extra ...string) *engineProc {
	t.Helper()
	return startEngineAt(t, "127.0.0.1:0", extra...)
}

// startEngineAt is startEngine with an explicit -listen address — the
// chaos suite restarts killed engines on their old port so supervisors
// can reconnect.
func startEngineAt(t *testing.T, listen string, extra ...string) *engineProc {
	t.Helper()
	bin := buildDistwalkd(t)
	args := append([]string{"-listen", listen}, extra...)
	e := &engineProc{
		cmd:  exec.Command(bin, args...),
		out:  &syncBuffer{},
		done: make(chan struct{}),
	}
	e.cmd.Stdout = e.out
	e.cmd.Stderr = e.out
	if err := e.cmd.Start(); err != nil {
		t.Fatalf("start distwalkd: %v", err)
	}
	go func() {
		e.exitErr = e.cmd.Wait()
		close(e.done)
	}()
	t.Cleanup(func() {
		select {
		case <-e.done:
		default:
			e.cmd.Process.Kill()
			<-e.done
		}
	})
	e.addr = e.waitLine(t, "distwalkd listening on ")
	for _, a := range extra {
		if a == "-debug-addr" {
			e.debug = e.waitLine(t, "distwalkd debug on ")
		}
	}
	return e
}

// waitLine polls the daemon's output for a line with the given prefix
// and returns the remainder (the resolved address lines).
func (e *engineProc) waitLine(t *testing.T, prefix string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		for _, ln := range strings.Split(e.out.String(), "\n") {
			if rest, ok := strings.CutPrefix(ln, prefix); ok {
				return strings.TrimSpace(rest)
			}
		}
		select {
		case <-e.done:
			t.Fatalf("distwalkd exited before printing %q: %v\n%s", prefix, e.exitErr, e.out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("distwalkd never printed %q\n%s", prefix, e.out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitExit blocks until the process exits and returns its Wait error.
func (e *engineProc) waitExit(t *testing.T, timeout time.Duration) error {
	t.Helper()
	select {
	case <-e.done:
		return e.exitErr
	case <-time.After(timeout):
		t.Fatalf("distwalkd did not exit within %v\n%s", timeout, e.out.String())
		return nil
	}
}

// startEngines spawns n plain engines and returns their addresses.
func startEngines(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = startEngine(t).addr
	}
	return addrs
}

// fetchEngineVars GETs a daemon's /debug/vars and returns the
// "distwalkd" expvar object (the wire.Metrics snapshot).
func fetchEngineVars(t *testing.T, debugAddr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + debugAddr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var all map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	var m map[string]int64
	if err := json.Unmarshal(all["distwalkd"], &m); err != nil {
		t.Fatalf("decode distwalkd expvar: %v", err)
	}
	return m
}

// waitGoroutines polls for the goroutine count to fall back to the
// pre-test baseline — the goleak-style check that Service.Close in
// cluster mode leaks no reader/worker goroutines. The small allowance
// absorbs runtime background goroutines (finalizers, netpoll).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after Close: %d, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// --- bit-identity: cluster vs in-process sharded ---

func testClusterIdentity(t *testing.T, engines int) {
	if testing.Short() {
		t.Skip("cluster identity over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startEngines(t, engines)
	// Baseline after the daemons are up: their exec plumbing (Wait and
	// pipe-copy goroutines) lives until test cleanup and is not the
	// service's to clean.
	base := runtime.NumGoroutine()
	shd, err := distwalk.NewService(g, 42, distwalk.WithWorkers(2), distwalk.WithShards(engines))
	if err != nil {
		t.Fatal(err)
	}
	defer shd.Close()
	clu, err := distwalk.NewService(g, 42, distwalk.WithWorkers(2), distwalk.WithCluster(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	if got := clu.Cluster(); got != engines {
		t.Fatalf("Cluster() = %d, want %d", got, engines)
	}

	// Same concurrent matrix as the in-process shard identity suite:
	// every (workload, key) pair fires against both services at once, so
	// per-key determinism must survive worker scheduling on the client
	// AND session multiplexing on the engines.
	type outcome struct {
		name     string
		key      uint64
		shd, clu string
	}
	var (
		mu   sync.Mutex
		outs []outcome
		wg   sync.WaitGroup
	)
	for _, wl := range shardWorkloads() {
		for key := uint64(1); key <= 2; key++ {
			wg.Add(1)
			go func(wl shardWorkload, key uint64) {
				defer wg.Done()
				a, errA := wl.run(shd, key)
				b, errB := wl.run(clu, key)
				if errA != nil || errB != nil {
					t.Errorf("%s key %d: sharded err %v, cluster err %v", wl.name, key, errA, errB)
					return
				}
				mu.Lock()
				outs = append(outs, outcome{wl.name, key, a, b})
				mu.Unlock()
			}(wl, key)
		}
	}
	wg.Wait()
	for _, o := range outs {
		if o.shd != o.clu {
			t.Errorf("%s key %d diverged:\n  sharded(%d): %s\n  cluster(%d): %s",
				o.name, o.key, engines, o.shd, engines, o.clu)
		}
	}

	// The cluster service accounted its per-engine traffic, and a
	// fault-free run reports every engine healthy with zero resilience
	// activity.
	st := clu.Stats()
	if len(st.Cluster.Engines) != engines {
		t.Fatalf("Stats().Cluster.Engines has %d entries, want %d", len(st.Cluster.Engines), engines)
	}
	for i, es := range st.Cluster.Engines {
		if es.Addr != addrs[i] || es.Shard != i {
			t.Errorf("Stats().Cluster.Engines[%d] = %q shard %d, want %q shard %d", i, es.Addr, es.Shard, addrs[i], i)
		}
		if es.Runs == 0 || es.Rounds == 0 || es.BytesOut == 0 || es.BytesIn == 0 {
			t.Errorf("Stats().Cluster.Engines[%d] recorded no traffic: %+v", i, es)
		}
	}
	for i, h := range st.Cluster.Health {
		if h != "healthy" {
			t.Errorf("Stats().Cluster.Health[%d] = %q, want healthy", i, h)
		}
	}
	if st.Cluster.Reconnects != 0 || st.Cluster.HeartbeatMisses != 0 || st.Cluster.Failovers != 0 {
		t.Errorf("fault-free cluster reported resilience activity: %+v", st.Cluster)
	}
	if shdSt := shd.Stats(); len(shdSt.Cluster.Engines) != 0 {
		t.Fatalf("in-process Stats().Cluster = %+v, want empty", shdSt.Cluster)
	}

	// Close both services: every worker, reader and engine session must
	// be gone (the goleak-style part of the shutdown satellite).
	shd.Close()
	clu.Close()
	waitGoroutines(t, base)
}

func TestClusterIdentity2(t *testing.T) { testClusterIdentity(t, 2) }
func TestClusterIdentity4(t *testing.T) { testClusterIdentity(t, 4) }

// testClusterIdentityFaulty reruns the faulty shard-identity scenario
// with the shards living in distwalkd processes: identical results,
// identical FaultStats and loss errors, identical retry counters. Fault
// charging happens inside the remote engines here, so this pins that the
// delay -> crash -> loss charging order and the fault RNG stream survive
// the wire boundary bit for bit.
func testClusterIdentityFaulty(t *testing.T, engines int) {
	if testing.Short() {
		t.Skip("cluster identity over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	plan := &distwalk.FaultPlan{
		Seed:    77,
		Crashes: []distwalk.FaultCrash{{Node: 100, Round: 260}},
		Churn: []distwalk.FaultChurn{
			{Node: 37, From: 40, To: 160},
			{Node: 88, From: 90, To: 140},
		},
		LinkDrops: []distwalk.FaultLinkDrop{
			{From: 0, To: g.Neighbors(0)[0].To, Prob: 0.05},
			{From: 70, To: g.Neighbors(70)[1].To, Prob: 0.1},
		},
		LinkDelays: []distwalk.FaultLinkDelay{
			{From: 30, To: g.Neighbors(30)[0].To, Rounds: 1},
		},
	}
	build := func(opts ...distwalk.Option) *distwalk.Service {
		svc, err := distwalk.NewService(g, 42, append([]distwalk.Option{
			distwalk.WithWorkers(2),
			distwalk.WithFaultPlan(plan),
			distwalk.WithRetry(2),
			distwalk.WithBackoff(0),
			distwalk.WithPartialResults(),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	shd := build(distwalk.WithShards(engines))
	defer shd.Close()
	clu := build(distwalk.WithCluster(startEngines(t, engines)...))
	defer clu.Close()

	ctx := context.Background()
	workloads := []shardWorkload{
		{"SingleRandomWalk", func(svc *distwalk.Service, key uint64) (string, error) {
			res, err := svc.SingleRandomWalk(ctx, key, 0, 768)
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("dest=%d len=%d cost=%+v", res.Destination, res.Length, res.Cost), nil
		}},
		{"ManyRandomWalks", func(svc *distwalk.Service, key uint64) (string, error) {
			sources := make([]distwalk.NodeID, 6)
			for i := range sources {
				sources[i] = distwalk.NodeID(i * 19 % svc.Graph().N())
			}
			res, err := svc.ManyRandomWalks(ctx, key, sources, 512)
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("dests=%v failed=%d errs=%v cost=%+v", res.Destinations, res.Failed, res.Errs, res.Cost), nil
		}},
		{"RandomSpanningTree", func(svc *distwalk.Service, key uint64) (string, error) {
			res, err := svc.RandomSpanningTree(ctx, key, 0)
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("parents=%v cost=%+v", res.Parent, res.Cost), nil
		}},
		{"EstimateMixingTime", func(svc *distwalk.Service, key uint64) (string, error) {
			est, err := svc.EstimateMixingTime(ctx, key, 0, distwalk.WithTrials(16), distwalk.WithMaxEll(128))
			if err != nil {
				return "err=" + err.Error(), nil
			}
			return fmt.Sprintf("tau=%d cost=%+v", est.Tau, est.Cost), nil
		}},
	}

	sawFault := false
	for _, wl := range workloads {
		for key := uint64(1); key <= 3; key++ {
			a, _ := wl.run(shd, key)
			b, _ := wl.run(clu, key)
			if a != b {
				t.Errorf("%s key %d diverged under faults:\n  sharded(%d): %s\n  cluster(%d): %s",
					wl.name, key, engines, a, engines, b)
			}
			if strings.Contains(a, "err=") || strings.Contains(a, "LinkDropped:") && !strings.Contains(a, "LinkDropped:0") {
				sawFault = true
			}
		}
	}
	// Retry counters are per-key deterministic, so the totals must be
	// transport-invariant too — in-process barrier or TCP sessions.
	if a, b := shd.Stats().Retry, clu.Stats().Retry; a != b {
		t.Errorf("retry counters diverged: sharded %+v, cluster %+v", a, b)
	}
	if shd.Stats().Retry.Faults == 0 && !sawFault {
		t.Error("fault plan left no observable trace; the scenario needs retuning")
	}
}

func TestClusterIdentityFaulty2(t *testing.T) { testClusterIdentityFaulty(t, 2) }
func TestClusterIdentityFaulty4(t *testing.T) { testClusterIdentityFaulty(t, 4) }

// --- graceful shutdown ---

// TestClusterDrainOnSignal covers the SIGTERM drain end to end: an
// engine serving a request mid-run gets the signal, finishes the
// in-flight run (the client keeps receiving rounds during the drain),
// refuses further runs, and exits 0 with the drain lines on stdout.
// Requests span multiple engine runs, so the caught request either
// completes or fails with the typed cluster error — never hangs, never
// sees a torn run.
func TestClusterDrainOnSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster drain over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	eng := startEngine(t, "-debug-addr", "127.0.0.1:0")
	svc, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1), distwalk.WithCluster(eng.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := svc.SingleRandomWalk(context.Background(), 1, 0, 300_000)
		errCh <- err
	}()

	// Wait until the engine is demonstrably mid-run, then signal.
	deadline := time.Now().Add(15 * time.Second)
	for {
		m := fetchEngineVars(t, eng.debug)
		if m["runs"] >= 1 && m["rounds"] >= 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never reached mid-run: %v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := eng.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The caught request drains its current run and then either finishes
	// or fails typed on its next run's first frame.
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, distwalk.ErrClusterEngine) {
			t.Fatalf("request failed untyped during drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("request hung through the drain")
	}

	// The daemon drained and exited cleanly: exit code 0, drain lines
	// printed, no force-close.
	if err := eng.waitExit(t, 30*time.Second); err != nil {
		t.Fatalf("distwalkd exited non-zero after drain: %v\n%s", err, eng.out.String())
	}
	out := eng.out.String()
	for _, want := range []string{"distwalkd draining", "distwalkd stopped"} {
		if !strings.Contains(out, want) {
			t.Errorf("daemon output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "force close") {
		t.Errorf("drain escalated to force close:\n%s", out)
	}

	// The engine is gone; fresh requests fail with the typed error.
	if _, err := svc.SingleRandomWalk(context.Background(), 2, 0, 64); !errors.Is(err, distwalk.ErrClusterEngine) {
		t.Fatalf("request after engine shutdown = %v, want ErrClusterEngine", err)
	}
	// And Close still tears everything down without leaking.
	base := runtime.NumGoroutine()
	svc.Close()
	waitGoroutines(t, base)
}

// --- handshake and configuration failures ---

func TestClusterHandshakeErrors(t *testing.T) {
	g, err := distwalk.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	other, err := distwalk.RandomRegular(48, 4, 9)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("PinnedShardMismatch", func(t *testing.T) {
		// An engine pinned to shard 1 refuses the single-engine plan's
		// shard 0 handshake with a typed rejection.
		eng := startEngine(t, "-shard", "1")
		_, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1), distwalk.WithCluster(eng.addr))
		if !errors.Is(err, distwalk.ErrClusterRejected) {
			t.Fatalf("NewService against pinned engine = %v, want ErrClusterRejected", err)
		}
	})

	t.Run("GenerationMismatch", func(t *testing.T) {
		// The first session pins the engine to its graph generation; a
		// later service over a different graph is refused.
		eng := startEngine(t)
		svc, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1), distwalk.WithCluster(eng.addr))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.SingleRandomWalk(context.Background(), 1, 0, 64); err != nil {
			t.Fatalf("warm-up request: %v", err)
		}
		svc.Close()
		_, err = distwalk.NewService(other, 42, distwalk.WithWorkers(1), distwalk.WithCluster(eng.addr))
		if !errors.Is(err, distwalk.ErrClusterRejected) {
			t.Fatalf("NewService with mismatched graph = %v, want ErrClusterRejected", err)
		}
	})

	t.Run("TooManyEngines", func(t *testing.T) {
		// Plan validation precedes dialing: more engines than nodes is a
		// config error even with unreachable addresses.
		small, err := distwalk.Cycle(4)
		if err != nil {
			t.Fatal(err)
		}
		fake := []string{"a:1", "b:1", "c:1", "d:1", "e:1"}
		_, err = distwalk.NewService(small, 1, distwalk.WithCluster(fake...))
		if !errors.Is(err, distwalk.ErrClusterConfig) {
			t.Fatalf("NewService with 5 engines for 4 nodes = %v, want ErrClusterConfig", err)
		}
	})

	t.Run("DialFailure", func(t *testing.T) {
		_, err := distwalk.NewService(g, 42, distwalk.WithCluster("127.0.0.1:1"))
		if err == nil {
			t.Fatal("NewService against a dead address succeeded")
		}
		if !strings.Contains(err.Error(), "cluster engine 0") {
			t.Fatalf("dial error does not name the engine: %v", err)
		}
	})
}

// TestDistwalkdExitCodes pins the daemon's flag-validation contract:
// usage errors exit 2, listen failures exit 1, both with a typed
// "distwalkd:" line on stderr.
func TestDistwalkdExitCodes(t *testing.T) {
	bin := buildDistwalkd(t)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"ShardOutOfRange", []string{"-shard", "-2"}, 2},
		{"PositionalArgs", []string{"stray"}, 2},
		{"UnknownFlag", []string{"-nope"}, 2},
		{"BadListenAddr", []string{"-listen", "256.256.256.256:0"}, 1},
		{"BadDebugAddr", []string{"-listen", "127.0.0.1:0", "-debug-addr", "256.256.256.256:0"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			var ee *exec.ExitError
			if !errors.As(err, &ee) {
				t.Fatalf("distwalkd %v: err %v, want exit error\n%s", tc.args, err, out)
			}
			if got := ee.ExitCode(); got != tc.code {
				t.Fatalf("distwalkd %v exited %d, want %d\n%s", tc.args, got, tc.code, out)
			}
			if !strings.Contains(string(out), "distwalkd:") {
				t.Fatalf("distwalkd %v stderr missing typed prefix:\n%s", tc.args, out)
			}
		})
	}
}

// --- observability: Stats().Cluster, StatsHandler, expvar on both ends ---

func TestClusterStatsAndDebug(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster debug endpoints over TCP skipped in -short mode")
	}
	g, err := distwalk.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	eng := startEngine(t, "-debug-addr", "127.0.0.1:0")
	svc, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1), distwalk.WithCluster(eng.addr))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.SingleRandomWalk(context.Background(), 1, 0, 512); err != nil {
		t.Fatal(err)
	}

	// Client side: per-engine traffic in Stats().Cluster.
	st := svc.Stats()
	if len(st.Cluster.Engines) != 1 {
		t.Fatalf("Stats().Cluster = %+v, want one engine", st.Cluster)
	}
	es := st.Cluster.Engines[0]
	if es.Addr != eng.addr || es.Runs == 0 || es.Rounds == 0 || es.MsgsOut == 0 || es.BytesIn == 0 {
		t.Fatalf("engine stats incomplete: %+v", es)
	}

	// Client side over HTTP: StatsHandler serves the same snapshot.
	req := httptest.NewRequest("GET", "/debug/distwalk", nil)
	rr := httptest.NewRecorder()
	svc.StatsHandler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("StatsHandler status %d", rr.Code)
	}
	var decoded struct {
		Cluster struct {
			Engines []struct {
				Addr string
				Runs int64
			}
			Health []string
		}
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("StatsHandler body is not JSON: %v\n%s", err, rr.Body)
	}
	if len(decoded.Cluster.Engines) != 1 || decoded.Cluster.Engines[0].Addr != eng.addr || decoded.Cluster.Engines[0].Runs == 0 {
		t.Fatalf("StatsHandler cluster section = %+v", decoded.Cluster)
	}
	if len(decoded.Cluster.Health) != 1 || decoded.Cluster.Health[0] != "healthy" {
		t.Fatalf("StatsHandler cluster health = %+v", decoded.Cluster.Health)
	}

	// Client side via expvar: publish succeeds once, duplicate is a typed
	// error instead of expvar's panic.
	const name = "distwalk-cluster-test"
	if err := svc.PublishExpvar(name); err != nil {
		t.Fatalf("PublishExpvar: %v", err)
	}
	if err := svc.PublishExpvar(name); err == nil {
		t.Fatal("duplicate PublishExpvar succeeded, want error")
	}

	// Server side: the daemon's -debug-addr exports wire.Metrics under
	// the "distwalkd" expvar.
	m := fetchEngineVars(t, eng.debug)
	for _, key := range []string{"sessions", "runs", "rounds", "msgs_in", "msgs_out", "bytes_in", "bytes_out"} {
		if m[key] == 0 {
			t.Errorf("engine expvar %q is zero: %v", key, m)
		}
	}
	if m["active_sessions"] != 1 {
		t.Errorf("engine active_sessions = %d, want 1 (one worker)", m["active_sessions"])
	}
}
