package distwalk_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"distwalk"
)

// The service's core contract: per-request-key determinism under
// concurrency. A request's result depends only on (graph, service seed,
// request key), never on which worker served it, what ran before on that
// worker, or how many requests were in flight.

// fingerprint compresses a request result for equality checks.
type fingerprint struct {
	kind string
	dest distwalk.NodeID
	cost distwalk.Cost
	tau  int
}

// mixedRequests fires one of each request kind per key group and returns
// key -> fingerprint. When concurrent, all requests run simultaneously.
func mixedRequests(t *testing.T, svc *distwalk.Service, concurrent bool) map[uint64]fingerprint {
	t.Helper()
	ctx := context.Background()
	type task struct {
		key uint64
		run func(key uint64) (fingerprint, error)
	}
	var tasks []task
	for i := 0; i < 8; i++ {
		src := distwalk.NodeID((i * 17) % 81)
		ell := 400 + 150*i
		tasks = append(tasks, task{uint64(i), func(key uint64) (fingerprint, error) {
			res, err := svc.SingleRandomWalk(ctx, key, src, ell)
			if err != nil {
				return fingerprint{}, err
			}
			return fingerprint{kind: "single", dest: res.Destination, cost: res.Cost}, nil
		}})
	}
	tasks = append(tasks, task{100, func(key uint64) (fingerprint, error) {
		res, err := svc.ManyRandomWalks(ctx, key, []distwalk.NodeID{0, 11, 22, 33}, 600)
		if err != nil {
			return fingerprint{}, err
		}
		return fingerprint{kind: "many", dest: res.Destinations[3], cost: res.Cost}, nil
	}})
	tasks = append(tasks, task{200, func(key uint64) (fingerprint, error) {
		res, err := svc.RandomSpanningTree(ctx, key, 0)
		if err != nil {
			return fingerprint{}, err
		}
		if err := distwalk.ValidateSpanningTree(svc.Graph(), res.Root, res.Parent); err != nil {
			return fingerprint{}, err
		}
		return fingerprint{kind: "rst", dest: res.Parent[80], cost: res.Cost}, nil
	}})
	tasks = append(tasks, task{300, func(key uint64) (fingerprint, error) {
		est, err := svc.EstimateMixingTime(ctx, key, 0, distwalk.WithTrials(24))
		if err != nil {
			return fingerprint{}, err
		}
		return fingerprint{kind: "mix", cost: est.Cost, tau: est.Tau}, nil
	}})

	out := make(map[uint64]fingerprint, len(tasks))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, tk := range tasks {
		run := func(tk task) {
			fp, err := tk.run(tk.key)
			if err != nil {
				t.Errorf("request %d (%s): %v", tk.key, fp.kind, err)
				return
			}
			mu.Lock()
			out[tk.key] = fp
			mu.Unlock()
		}
		if concurrent {
			wg.Add(1)
			go func(tk task) { defer wg.Done(); run(tk) }(tk)
		} else {
			run(tk)
		}
	}
	wg.Wait()
	return out
}

func TestServiceDeterministicPerKeyUnderConcurrency(t *testing.T) {
	g, err := distwalk.Torus(9, 9) // odd torus: non-bipartite, mixing works
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := distwalk.NewService(g, 42, distwalk.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pooled.Close()
	serial, err := distwalk.NewService(g, 42, distwalk.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()

	first := mixedRequests(t, pooled, true)
	second := mixedRequests(t, pooled, true) // same pool, new interleaving
	reference := mixedRequests(t, serial, false)
	if t.Failed() {
		t.FailNow()
	}
	for key, want := range reference {
		if got := first[key]; got != want {
			t.Errorf("key %d: concurrent run 1 %+v != serial %+v", key, got, want)
		}
		if got := second[key]; got != want {
			t.Errorf("key %d: concurrent run 2 %+v != serial %+v", key, got, want)
		}
	}
}

func TestServiceContextCancellation(t *testing.T) {
	g, err := distwalk.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 7, distwalk.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Already-canceled context: rejected before any work.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.SingleRandomWalk(canceled, 1, 0, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v, want context.Canceled", err)
	}

	// Deadline mid-run: a 40M-step naive walk costs ~40M simulated rounds;
	// the engine's round-loop check must abort it almost immediately.
	ctx, cancelT := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancelT()
	start := time.Now()
	_, err = svc.NaiveWalk(ctx, 2, 0, 40_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — round loop is not checking the context", elapsed)
	}
}

func TestServiceRoundBudget(t *testing.T) {
	g, err := distwalk.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, err = svc.NaiveWalk(context.Background(), 1, 0, 100_000, distwalk.WithMaxRounds(500))
	if !errors.Is(err, distwalk.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// The per-request budget must not stick to the pooled worker.
	if _, err := svc.NaiveWalk(context.Background(), 2, 0, 2000); err != nil {
		t.Fatalf("default-budget request after a capped one: %v", err)
	}
}

func TestServiceTypedErrors(t *testing.T) {
	g, err := distwalk.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.SingleRandomWalk(ctx, 1, -1, 10); !errors.Is(err, distwalk.ErrBadNode) {
		t.Fatalf("bad node: err = %v, want ErrBadNode", err)
	}
	if _, err := svc.SingleRandomWalk(ctx, 2, 0, -5); !errors.Is(err, distwalk.ErrBadLength) {
		t.Fatalf("bad length: err = %v, want ErrBadLength", err)
	}
	if _, err := svc.RandomSpanningTree(ctx, 3, 99); !errors.Is(err, distwalk.ErrBadNode) {
		t.Fatalf("bad root: err = %v, want ErrBadNode", err)
	}
	// Bipartite graph: the mixing estimator can never pass; cap the search
	// so the failure is quick.
	if _, err := svc.EstimateMixingTime(ctx, 4, 0, distwalk.WithTrials(48), distwalk.WithMaxEll(64)); !errors.Is(err, distwalk.ErrNoMixing) {
		t.Fatalf("bipartite mixing: err = %v, want ErrNoMixing", err)
	}
	svc.Close()
	if _, err := svc.SingleRandomWalk(ctx, 5, 0, 10); !errors.Is(err, distwalk.ErrServiceClosed) {
		t.Fatalf("closed service: err = %v, want ErrServiceClosed", err)
	}
	// Generator retry exhaustion through the facade.
	_, err = distwalk.ErdosRenyi(3, 0, 1)
	var retry *distwalk.GenRetryError
	if !errors.Is(err, distwalk.ErrRetryExhausted) || !errors.As(err, &retry) {
		t.Fatalf("ErdosRenyi(p=0): err = %v, want ErrRetryExhausted via *GenRetryError", err)
	}
}

// TestServiceParallelSpeedup pins the acceptance criterion: 8 concurrent
// SingleRandomWalk requests must beat the same 8 requests issued serially
// on the same pool by >1.5x wall clock.
func TestServiceParallelSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock speedup is not meaningful under the race detector's overhead")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup, have %d", runtime.GOMAXPROCS(0))
	}
	g, err := distwalk.Torus(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 42, distwalk.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	const requests = 8
	const ell = 4096

	run := func(key uint64) {
		if _, err := svc.SingleRandomWalk(ctx, key, 0, ell); err != nil {
			t.Error(err)
		}
	}
	// Warm-up: let every worker fault in its slabs once.
	var wg sync.WaitGroup
	for k := uint64(0); k < requests; k++ {
		wg.Add(1)
		go func(k uint64) { defer wg.Done(); run(k) }(k)
	}
	wg.Wait()

	serialStart := time.Now()
	for k := uint64(0); k < requests; k++ {
		run(100 + k)
	}
	serial := time.Since(serialStart)

	concStart := time.Now()
	for k := uint64(0); k < requests; k++ {
		wg.Add(1)
		go func(k uint64) { defer wg.Done(); run(100 + k) }(k)
	}
	wg.Wait()
	concurrent := time.Since(concStart)

	speedup := float64(serial) / float64(concurrent)
	t.Logf("serial %v, concurrent %v, speedup %.2fx", serial, concurrent, speedup)
	if speedup < 1.5 {
		t.Fatalf("8 concurrent requests only %.2fx faster than serial (want > 1.5x)", speedup)
	}
}

// Example-style smoke: the quickstart from the package docs.
func ExampleService() {
	g, _ := distwalk.Torus(12, 12)
	svc, _ := distwalk.NewService(g, 42, distwalk.WithWorkers(2))
	defer svc.Close()
	res, _ := svc.SingleRandomWalk(context.Background(), 1, 0, 10_000)
	fmt.Println(res.Cost.Rounds < 10_000)
	// Output: true
}
