// Golden determinism regression tests: every headline algorithm is run
// twice on a fixed seed and must (a) produce identical Result counters on
// both runs and (b) match the hard-coded golden counters below.
//
// The goldens pin the *simulated* cost model — rounds, messages, words,
// queueing — so that engine refactors (scheduling, queueing, message
// encoding) cannot silently change what the simulator measures. They were
// captured from the original sort-and-box engine; the rewritten engine
// (see internal/congest/doc.go) reproduces them bit for bit.
//
// If an intentional semantic change shifts these numbers, re-capture with:
//
//	go test -run TestGolden -v -capture-golden
package distwalk_test

import (
	"flag"
	"fmt"
	"testing"

	"distwalk"
	"distwalk/internal/core"
	"distwalk/internal/mixing"
	"distwalk/internal/spanning"
)

var captureGolden = flag.Bool("capture-golden", false, "print actual golden counters instead of failing")

type goldenCase struct {
	name string
	run  func(t *testing.T) distwalk.Cost
	want distwalk.Cost
}

func torus16(t *testing.T) *distwalk.Graph {
	t.Helper()
	g, err := distwalk.Torus(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newWalker builds the low-level single-threaded engine the goldens were
// captured on. The public NewWalker shim is gone; the goldens reach the
// identical engine through internal/core (same module, same bits).
func newWalker(t *testing.T, g *distwalk.Graph, seed uint64, p distwalk.Params) *core.Walker {
	t.Helper()
	w, err := core.NewWalker(g, seed, p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "SingleRandomWalk/torus16x16/ell4096/seed42",
			run: func(t *testing.T) distwalk.Cost {
				w := newWalker(t, torus16(t), 42, distwalk.DefaultParams())
				res, err := w.SingleRandomWalk(0, 4096)
				if err != nil {
					t.Fatal(err)
				}
				return res.Cost
			},
			want: distwalk.Cost{Rounds: 1655, Messages: 401151, Words: 1201261, MaxQueue: 13},
		},
		{
			name: "SingleRandomWalk/torus16x16/ell256/seed7",
			run: func(t *testing.T) distwalk.Cost {
				w := newWalker(t, torus16(t), 7, distwalk.DefaultParams())
				res, err := w.SingleRandomWalk(0, 256)
				if err != nil {
					t.Fatal(err)
				}
				return res.Cost
			},
			want: distwalk.Cost{Rounds: 419, Messages: 101759, Words: 303203, MaxQueue: 11},
		},
		{
			name: "ManyRandomWalks/torus16x16/k8/ell1024/seed9",
			run: func(t *testing.T) distwalk.Cost {
				w := newWalker(t, torus16(t), 9, distwalk.DefaultParams())
				sources := make([]distwalk.NodeID, 8)
				for i := range sources {
					sources[i] = distwalk.NodeID(i * 13)
				}
				res, err := w.ManyRandomWalks(sources, 1024)
				if err != nil {
					t.Fatal(err)
				}
				return res.Cost
			},
			want: distwalk.Cost{Rounds: 2244, Messages: 584684, Words: 1751910, MaxQueue: 12},
		},
		{
			name: "NaiveWalk/torus16x16/ell2048/seed3",
			run: func(t *testing.T) distwalk.Cost {
				w := newWalker(t, torus16(t), 3, distwalk.DefaultParams())
				res, err := w.NaiveWalk(0, 2048)
				if err != nil {
					t.Fatal(err)
				}
				return res.Cost
			},
			want: distwalk.Cost{Rounds: 2067, Messages: 3074, Words: 7174, MaxQueue: 1},
		},
		{
			name: "MetropolisSingleWalk/torus16x16/ell512/seed5",
			run: func(t *testing.T) distwalk.Cost {
				p := distwalk.DefaultParams()
				p.Metropolis = true
				w := newWalker(t, torus16(t), 5, p)
				res, err := w.SingleRandomWalk(0, 512)
				if err != nil {
					t.Fatal(err)
				}
				return res.Cost
			},
			want: distwalk.Cost{Rounds: 569, Messages: 141340, Words: 421934, MaxQueue: 13},
		},
		{
			name: "RandomSpanningTree/torus8x8/seed11",
			run: func(t *testing.T) distwalk.Cost {
				g, err := distwalk.Torus(8, 8)
				if err != nil {
					t.Fatal(err)
				}
				w := newWalker(t, g, 11, distwalk.DefaultParams())
				res, err := spanning.RandomSpanningTree(w, 0, distwalk.RSTOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return res.Cost
			},
			want: distwalk.Cost{Rounds: 3238, Messages: 171776, Words: 505324, MaxQueue: 13},
		},
		{
			name: "EstimateMixingTime/regular64x4/seed13",
			run: func(t *testing.T) distwalk.Cost {
				g, err := distwalk.RandomRegular(64, 4, 9)
				if err != nil {
					t.Fatal(err)
				}
				w := newWalker(t, g, 13, distwalk.DefaultParams())
				est, err := mixing.EstimateTau(w, 0, distwalk.MixingOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return est.Cost
			},
			want: distwalk.Cost{Rounds: 600, Messages: 21114, Words: 63964, MaxQueue: 48},
		},
	}
}

func TestGoldenCounters(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t)
			if *captureGolden {
				fmt.Printf("%s:\n\twant: distwalk.Cost{Rounds: %d, Messages: %d, Words: %d, MaxQueue: %d},\n",
					tc.name, got.Rounds, got.Messages, got.Words, got.MaxQueue)
				return
			}
			if got != tc.want {
				t.Errorf("golden counters changed:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestGoldenReplay runs each case twice and demands bit-identical counters —
// the engine must be deterministic independent of goldens being up to date.
func TestGoldenReplay(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.run(t)
			b := tc.run(t)
			if a != b {
				t.Errorf("replay diverged:\nfirst  %+v\nsecond %+v", a, b)
			}
		})
	}
}
