package distwalk_test

import (
	"context"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"distwalk"
)

// TestMetricsHandler drives the Prometheus text endpoint over real
// traffic: a hit/miss pair, a mutation, and a stale abort, then asserts
// the exposition carries the matching series with the matching values.
func TestMetricsHandler(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 42, distwalk.WithResultCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	if _, err := svc.SingleRandomWalk(ctx, 1, 0, 512); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := svc.SingleRandomWalk(ctx, 1, 0, 512); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := svc.ApplyMutations(ctx, distwalk.Mutations{
		AddEdges: []distwalk.EdgeMutation{{U: 0, V: 20}},
	}); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	svc.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("MetricsHandler status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rr.Body.String()

	wantLines := []string{
		"distwalk_topology_generation 2",
		"distwalk_mutations_applied_total 1",
		`distwalk_mutation_edges_total{op="add"} 1`,
		`distwalk_mutation_edges_total{op="remove"} 0`,
		`distwalk_cache_lookups_total{outcome="hit"} 1`,
		`distwalk_cache_lookups_total{outcome="miss"} 1`,
	}
	for _, want := range wantLines {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing line %q", want)
		}
	}

	// Every sample line must parse as the text format: name{labels} value.
	sampleRE := regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
	families := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			families[strings.Fields(line)[2]] = true
			continue
		}
		if !sampleRE.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !families[name] {
			t.Errorf("sample %q precedes its # HELP/# TYPE header", name)
		}
	}
	if families["distwalk_cluster_engine_healthy"] {
		t.Error("cluster families present on a clusterless service")
	}
}
