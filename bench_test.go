// Benchmarks, one per reproduction experiment (see DESIGN.md section 3):
// each BenchmarkE* regenerates the corresponding table/series at small
// scale, and the micro-benchmarks below report simulated rounds/op for the
// individual algorithms so regressions in round complexity (not just wall
// time) are visible.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...
package distwalk_test

import (
	"io"
	"strconv"
	"testing"

	"distwalk"
	"distwalk/internal/core"
	"distwalk/internal/experiments"
	"distwalk/internal/mixing"
	"distwalk/internal/spanning"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Seed: 42, Scale: experiments.Small, Out: io.Discard}
		if err := experiments.Run(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1SingleWalkScaling(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkE2DiameterDependence(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3VisitBound(b *testing.B)                  { benchExperiment(b, "E3") }
func BenchmarkE4ConnectorBound(b *testing.B)              { benchExperiment(b, "E4") }
func BenchmarkE5ManyWalks(b *testing.B)                   { benchExperiment(b, "E5") }
func BenchmarkE6PathVerification(b *testing.B)            { benchExperiment(b, "E6") }
func BenchmarkE7RandomSpanningTree(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8MixingTime(b *testing.B)                  { benchExperiment(b, "E8") }
func BenchmarkE9EndpointDistribution(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10RandomLengthAblation(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11DegreeProportionalAblation(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12MetropolisHastings(b *testing.B)         { benchExperiment(b, "E12") }

// Micro-benchmarks: simulated rounds per operation are the quantity the
// paper bounds, so they are reported as a custom metric alongside wall
// time.

func benchGraph(b *testing.B) *distwalk.Graph {
	b.Helper()
	g, err := distwalk.Torus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSingleRandomWalk(b *testing.B) {
	for _, ell := range []int{1 << 12, 1 << 14} {
		b.Run(benchName("ell", ell), func(b *testing.B) {
			g := benchGraph(b)
			rounds := 0
			for i := 0; i < b.N; i++ {
				w, err := core.NewWalker(g, uint64(i), distwalk.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				res, err := w.SingleRandomWalk(0, ell)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Cost.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

func BenchmarkNaiveWalk(b *testing.B) {
	g := benchGraph(b)
	const ell = 1 << 12
	rounds := 0
	for i := 0; i < b.N; i++ {
		w, err := core.NewWalker(g, uint64(i), distwalk.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		res, err := w.NaiveWalk(0, ell)
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Cost.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func BenchmarkManyRandomWalks(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(benchName("k", k), func(b *testing.B) {
			g := benchGraph(b)
			sources := make([]distwalk.NodeID, k)
			rounds := 0
			for i := 0; i < b.N; i++ {
				w, err := core.NewWalker(g, uint64(i), distwalk.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				res, err := w.ManyRandomWalks(sources, 1<<12)
				if err != nil {
					b.Fatal(err)
				}
				rounds += res.Cost.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

func BenchmarkRandomSpanningTree(b *testing.B) {
	g := benchGraph(b)
	rounds := 0
	for i := 0; i < b.N; i++ {
		w, err := core.NewWalker(g, uint64(i), distwalk.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		res, err := spanning.RandomSpanningTree(w, 0, distwalk.RSTOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Cost.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func BenchmarkEstimateMixingTime(b *testing.B) {
	g, err := distwalk.RandomRegular(64, 4, 9)
	if err != nil {
		b.Fatal(err)
	}
	rounds := 0
	for i := 0; i < b.N; i++ {
		w, err := core.NewWalker(g, uint64(i), distwalk.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		est, err := mixing.EstimateTau(w, 0, distwalk.MixingOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += est.Cost.Rounds
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func benchName(key string, v int) string {
	return key + "=" + strconv.Itoa(v)
}
