package distwalk

import (
	"errors"

	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/mixing"
	"distwalk/internal/sched"
	"distwalk/internal/spanning"
)

// Exported failure taxonomy. Every error returned through the public
// surface wraps one of these sentinels, so callers dispatch with
// errors.Is/errors.As instead of string matching:
//
//	_, err := svc.SingleRandomWalk(ctx, key, src, ell)
//	switch {
//	case errors.Is(err, distwalk.ErrBadNode):         // caller bug
//	case errors.Is(err, distwalk.ErrBudgetExceeded):  // raise WithMaxRounds
//	case errors.Is(err, context.DeadlineExceeded):    // request timed out
//	}
//
// Context cancellation surfaces as the standard context.Canceled /
// context.DeadlineExceeded (wrapped, errors.Is-able); there is no separate
// sentinel for it.
var (
	// ErrBadNode reports a node ID outside [0, n).
	ErrBadNode = core.ErrBadNode
	// ErrBadLength reports a negative walk length.
	ErrBadLength = core.ErrBadLength
	// ErrGraphTooSmall reports an operation that needs more nodes than the
	// graph has (walks need n >= 2).
	ErrGraphTooSmall = core.ErrGraphTooSmall
	// ErrBadParams reports an invalid parameterization.
	ErrBadParams = core.ErrBadParams
	// ErrConcurrentUse reports overlapping calls into one (deprecated,
	// single-threaded) Walker. The Service never returns it.
	ErrConcurrentUse = core.ErrConcurrentUse
	// ErrBudgetExceeded reports a simulated run that exceeded its round
	// budget (see WithMaxRounds).
	ErrBudgetExceeded = congest.ErrRoundLimit
	// ErrDisconnected reports a disconnected input graph.
	ErrDisconnected = graph.ErrDisconnected
	// ErrRetryExhausted reports a randomized graph generator that ran out
	// of attempts; errors.As against *GenRetryError exposes the budget.
	ErrRetryExhausted = graph.ErrRetryExhausted
	// ErrNoMixing reports that the mixing estimator found no passing walk
	// length (bipartite graphs never mix).
	ErrNoMixing = mixing.ErrNoMixing
	// ErrNoCover reports that the spanning-tree driver found no covering
	// walk within its length budget.
	ErrNoCover = spanning.ErrNoCover
	// ErrServiceClosed reports a request submitted to a closed Service.
	ErrServiceClosed = errors.New("distwalk: service closed")
	// ErrNoRegen reports a walk that cannot be regenerated
	// (Metropolis-Hastings walks leave no hop trail).
	ErrNoRegen = core.ErrNoRegen
	// ErrQueueFull reports a SubmitWalk rejected because the batching
	// scheduler's admission queue for that request's config is full —
	// backpressure, not failure; shed load or retry (see
	// WithBatchQueueLimit).
	ErrQueueFull = sched.ErrQueueFull
	// ErrBatchAborted reports a submitted walk whose batch never
	// executed: the shared run failed as a whole, or the service closed
	// while the request was pending. The wrapped cause is also
	// errors.Is-able.
	ErrBatchAborted = sched.ErrBatchAborted
)

// GenRetryError is the typed generator retry-exhaustion error; it carries
// the generator name and attempt count, and matches ErrRetryExhausted
// (plus ErrDisconnected when connectivity was the failing check) under
// errors.Is.
type GenRetryError = graph.RetryError
