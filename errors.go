package distwalk

import (
	"errors"

	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/mixing"
	"distwalk/internal/sched"
	"distwalk/internal/spanning"
	"distwalk/internal/wire"
)

// Exported failure taxonomy. Every error returned through the public
// surface wraps one of these sentinels, so callers dispatch with
// errors.Is/errors.As instead of string matching:
//
//	_, err := svc.SingleRandomWalk(ctx, key, src, ell)
//	switch {
//	case errors.Is(err, distwalk.ErrBadNode):         // caller bug
//	case errors.Is(err, distwalk.ErrBudgetExceeded):  // raise WithMaxRounds
//	case errors.Is(err, context.DeadlineExceeded):    // request timed out
//	}
//
// Context cancellation surfaces as the standard context.Canceled /
// context.DeadlineExceeded (wrapped, errors.Is-able); there is no separate
// sentinel for it.
var (
	// ErrBadNode reports a node ID outside [0, n).
	ErrBadNode = core.ErrBadNode
	// ErrBadLength reports a negative walk length.
	ErrBadLength = core.ErrBadLength
	// ErrGraphTooSmall reports an operation that needs more nodes than the
	// graph has (walks need n >= 2).
	ErrGraphTooSmall = core.ErrGraphTooSmall
	// ErrBadParams reports an invalid parameterization.
	ErrBadParams = core.ErrBadParams
	// ErrBudgetExceeded reports a simulated run that exceeded its round
	// budget (see WithMaxRounds).
	ErrBudgetExceeded = congest.ErrRoundLimit
	// ErrDisconnected reports a disconnected input graph.
	ErrDisconnected = graph.ErrDisconnected
	// ErrRetryExhausted reports a randomized graph generator that ran out
	// of attempts; errors.As against *GenRetryError exposes the budget.
	ErrRetryExhausted = graph.ErrRetryExhausted
	// ErrNoMixing reports that the mixing estimator found no passing walk
	// length (bipartite graphs never mix).
	ErrNoMixing = mixing.ErrNoMixing
	// ErrNoCover reports that the spanning-tree driver found no covering
	// walk within its length budget.
	ErrNoCover = spanning.ErrNoCover
	// ErrServiceClosed reports a request submitted to a closed Service.
	ErrServiceClosed = errors.New("distwalk: service closed")
	// ErrCacheDisabled reports a cache operation (InvalidateCache) on a
	// service built without WithResultCache.
	ErrCacheDisabled = errors.New("distwalk: service has no result cache (see WithResultCache)")
	// ErrNoRegen reports a walk that cannot be regenerated
	// (Metropolis-Hastings walks leave no hop trail).
	ErrNoRegen = core.ErrNoRegen
	// ErrQueueFull reports a SubmitWalk rejected because the batching
	// scheduler's admission queue for that request's config is full —
	// backpressure, not failure; shed load or retry (see
	// WithBatchQueueLimit).
	ErrQueueFull = sched.ErrQueueFull
	// ErrBatchAborted reports a submitted walk whose batch never
	// executed: the shared run failed as a whole, or the service closed
	// while the request was pending. The wrapped cause is also
	// errors.Is-able.
	ErrBatchAborted = sched.ErrBatchAborted
	// ErrNodeCrashed reports a request that lost a protocol token to a
	// crashed (or churned-down) node; errors.As against *NodeCrashedError
	// exposes which node died and the simulated round of the loss. A walk
	// through a dead node fails fast with this sentinel — not
	// ErrBudgetExceeded — and is retryable (see WithRetry).
	ErrNodeCrashed = congest.ErrNodeCrashed
	// ErrMessageLost reports a request that lost a protocol token to a
	// lossy link; errors.As against *MessageLostError exposes the link and
	// round. Retryable.
	ErrMessageLost = congest.ErrMessageLost
	// ErrBadFault reports an invalid fault specification: a WithFaultPlan
	// plan naming nodes or links outside the graph, out-of-range
	// probabilities, or an out-of-range WithCrash. Surfaced by NewService
	// and by every engine run on a misconfigured network.
	ErrBadFault = congest.ErrBadFault
	// ErrClusterConfig reports a WithCluster engine list the shard planner
	// or the engine group rejected (more engines than nodes, bounds that
	// do not cover the graph, unsupported per-edge capacities).
	ErrClusterConfig = congest.ErrShardPlan
	// ErrClusterEngine reports a remote shard engine failing mid-request
	// in cluster mode (connection lost, engine crashed, protocol
	// violation). The wrapped transport cause is also errors.Is-able, e.g.
	// ErrClusterRejected for typed server rejections.
	ErrClusterEngine = congest.ErrRemoteShard
	// ErrClusterRejected reports a distwalkd server refusing a session or
	// request with a typed wire error: graph generation mismatch, shard
	// index out of range, draining server, protocol violation. Surfaced by
	// NewService (handshake) and mid-request (wrapped in
	// ErrClusterEngine); errors.As against *wire.RemoteError exposes the
	// code — but the wire package is internal, so match this sentinel.
	ErrClusterRejected = wire.ErrEngine
	// ErrEngineLost reports a cluster engine session that died in use —
	// connection reset, SIGKILL'd daemon, missed heartbeat, protocol
	// desync — or an engine whose reconnect is failing/backing off.
	// Always wrapped in ErrClusterEngine; with WithClusterFallback the
	// request recovers in-process instead of surfacing this.
	ErrEngineLost = wire.ErrEngineLost
	// ErrEngineTimeout reports a cluster engine that failed to answer
	// within the per-exchange deadline (see WithClusterRoundTimeout) —
	// hung process, network partition. Also matches ErrEngineLost.
	ErrEngineTimeout = wire.ErrEngineTimeout
	// ErrBadMutation reports an invalid ApplyMutations batch: endpoints
	// out of range, a self-loop, a negative weight, a removal naming a
	// missing edge, or an edit that would isolate a node. The batch is
	// rejected whole; the service's topology is unchanged.
	ErrBadMutation = graph.ErrEdit
	// ErrStaleGeneration reports a request that admitted under a topology
	// generation a mutation (or InvalidateCache) then retired, on a
	// service configured with WithStaleAbort. errors.As against
	// *StaleGenerationError exposes the old and new generations.
	// Retryable: a retry re-admits under the current generation.
	ErrStaleGeneration = errors.New("distwalk: topology generation superseded")
)

// StaleGenerationError carries the generation a stale-aborted request
// admitted under (Old) and the one current when it failed (New); matches
// ErrStaleGeneration under errors.Is.
type StaleGenerationError struct {
	Old, New Generation
}

func (e *StaleGenerationError) Error() string {
	return "distwalk: topology generation superseded (admitted under " +
		e.Old.String() + ", now " + e.New.String() + ")"
}

// Unwrap makes the error match ErrStaleGeneration.
func (e *StaleGenerationError) Unwrap() error { return ErrStaleGeneration }

// OptionScopeError reports a construction-only option passed to a
// per-request call; Option names the offender. Matches ErrOptionScope
// under errors.Is.
type OptionScopeError struct {
	Option string
}

func (e *OptionScopeError) Error() string {
	return "distwalk: option " + e.Option + " is construction-only (pass it to NewService)"
}

// Unwrap makes the error match ErrOptionScope.
func (e *OptionScopeError) Unwrap() error { return ErrOptionScope }

// ErrOptionScope reports a construction-only option (pool and cluster
// shape, batching, cache, fault plan) passed to a per-request call.
// Before the mutation API these were silently ignored per request; they
// are now rejected so a caller cannot believe a request ran with e.g. a
// different shard count than it did.
var ErrOptionScope = errors.New("distwalk: construction-only option in per-request call")

// NodeCrashedError carries which node was down and the simulated round at
// which the first token was lost to it; matches ErrNodeCrashed under
// errors.Is.
type NodeCrashedError = congest.NodeCrashedError

// MessageLostError carries the lossy link (From -> To) and the simulated
// round of the first loss; matches ErrMessageLost under errors.Is.
type MessageLostError = congest.MessageLostError

// Retryable reports whether err is worth re-executing with a fresh
// attempt seed: typed fault losses (ErrNodeCrashed, ErrMessageLost),
// transient scheduling rejections (ErrQueueFull, ErrBatchAborted — unless
// the abort was the service closing), and stale-generation aborts
// (ErrStaleGeneration — the retry re-admits on the new topology).
// WithRetry uses exactly this predicate; callers running their own retry
// loops should too.
func Retryable(err error) bool {
	if errors.Is(err, ErrServiceClosed) {
		return false
	}
	return errors.Is(err, ErrNodeCrashed) || errors.Is(err, ErrMessageLost) ||
		errors.Is(err, ErrQueueFull) || errors.Is(err, ErrBatchAborted) ||
		errors.Is(err, ErrStaleGeneration)
}

// GenRetryError is the typed generator retry-exhaustion error; it carries
// the generator name and attempt count, and matches ErrRetryExhausted
// (plus ErrDisconnected when connectivity was the failing check) under
// errors.Is.
type GenRetryError = graph.RetryError
