package distwalk

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// MetricsHandler returns an http.Handler that serves the service's
// counters in the Prometheus text exposition format (version 0.0.4),
// the scrape-ready counterpart of the JSON StatsHandler:
//
//	mux.Handle("/metrics", svc.MetricsHandler())
//
// The exposition is hand-written — no client library — and covers the
// topology generation and mutation activity, the result cache, retry
// recovery, the batching scheduler, and (in cluster mode) per-engine
// health and traffic. Counters are cumulative since service start;
// gauges (generation, cache bytes, engine health) are instantaneous.
func (s *Service) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		writeMetrics(&b, s.Stats())
		_, _ = w.Write([]byte(b.String()))
	})
}

func writeMetrics(b *strings.Builder, st ServiceStats) {
	// Topology / mutation.
	gauge(b, "distwalk_topology_generation", "Current topology generation (starts at 1; ApplyMutations and InvalidateCache advance it).",
		sample{v: float64(st.Mutation.Generation)})
	counter(b, "distwalk_mutations_applied_total", "Mutation batches published.",
		sample{v: float64(st.Mutation.Applied)})
	counter(b, "distwalk_mutation_edges_total", "Edge edits carried by published mutation batches, by operation.",
		sample{l: `op="add"`, v: float64(st.Mutation.EdgesAdded)},
		sample{l: `op="remove"`, v: float64(st.Mutation.EdgesRemoved)})
	counter(b, "distwalk_stale_aborts_total", "Requests failed with ErrStaleGeneration (abort-mode requests overtaken by a mutation).",
		sample{v: float64(st.Mutation.StaleAborts)})
	counter(b, "distwalk_reshards_total", "Worker-network reshapes after a mutation, by kind.",
		sample{l: `kind="incremental"`, v: float64(st.Mutation.ReshardsIncremental)},
		sample{l: `kind="full"`, v: float64(st.Mutation.ReshardsFull)})

	// Result cache.
	counter(b, "distwalk_cache_lookups_total", "Result-cache lookups, by outcome.",
		sample{l: `outcome="hit"`, v: float64(st.Cache.Hits)},
		sample{l: `outcome="miss"`, v: float64(st.Cache.Misses)},
		sample{l: `outcome="coalesced"`, v: float64(st.Cache.CoalescedWaiters)})
	counter(b, "distwalk_cache_evictions_total", "Result-cache entries dropped (LRU pressure plus purges).",
		sample{v: float64(st.Cache.Evictions)})
	gauge(b, "distwalk_cache_bytes", "Current charged result-cache footprint in bytes.",
		sample{v: float64(st.Cache.BytesUsed)})
	counter(b, "distwalk_cache_hit_bytes_total", "Payload bytes served from the result-cache store.",
		sample{v: float64(st.Cache.HitBytes)})

	// Retry recovery.
	counter(b, "distwalk_request_attempts_total", "Request executions, first attempts included.",
		sample{v: float64(st.Retry.Attempts)})
	counter(b, "distwalk_request_retries_total", "Re-executions after a retryable failure.",
		sample{v: float64(st.Retry.Retries)})
	counter(b, "distwalk_request_recovered_total", "Requests that succeeded on a retry.",
		sample{v: float64(st.Retry.Recovered)})
	counter(b, "distwalk_request_exhausted_total", "Requests that still failed after their last retry.",
		sample{v: float64(st.Retry.Exhausted)})
	counter(b, "distwalk_fault_attempts_total", "Attempts failed with a typed fault error.",
		sample{v: float64(st.Retry.Faults)})

	// Batching scheduler.
	counter(b, "distwalk_batch_submitted_total", "Requests admitted to a batch queue.",
		sample{v: float64(st.Submitted)})
	counter(b, "distwalk_batch_rejected_total", "Submissions refused with ErrQueueFull.",
		sample{v: float64(st.Rejected)})
	counter(b, "distwalk_batch_cancelled_total", "Members dropped from a pending batch before flush.",
		sample{v: float64(st.Cancelled)})
	counter(b, "distwalk_batch_aborted_total", "Members completed with ErrBatchAborted.",
		sample{v: float64(st.Aborted)})
	counter(b, "distwalk_batch_flushes_total", "Flushed batch executions, by trigger.",
		sample{l: `trigger="size"`, v: float64(st.FlushBySize)},
		sample{l: `trigger="delay"`, v: float64(st.FlushByDelay)})

	// Cluster health and traffic (absent without WithCluster).
	if len(st.Cluster.Engines) > 0 {
		hs := make([]sample, 0, len(st.Cluster.Engines))
		runs := make([]sample, 0, len(st.Cluster.Engines))
		bytes := make([]sample, 0, 2*len(st.Cluster.Engines))
		for i, e := range st.Cluster.Engines {
			l := `engine="` + strconv.Itoa(i) + `",addr="` + labelEscape(e.Addr) + `"`
			up := 0.0
			if i < len(st.Cluster.Health) && st.Cluster.Health[i] == "healthy" {
				up = 1
			}
			hs = append(hs, sample{l: l, v: up})
			runs = append(runs, sample{l: l, v: float64(e.Runs)})
			bytes = append(bytes,
				sample{l: l + `,direction="out"`, v: float64(e.BytesOut)},
				sample{l: l + `,direction="in"`, v: float64(e.BytesIn)})
		}
		gauge(b, "distwalk_cluster_engine_healthy", "1 when the engine's supervisor reports it healthy, else 0.", hs...)
		counter(b, "distwalk_cluster_engine_runs_total", "Runs begun on each remote shard engine.", runs...)
		counter(b, "distwalk_cluster_engine_bytes_total", "Raw wire traffic per engine, by direction.", bytes...)
		counter(b, "distwalk_cluster_reconnects_total", "Engine sessions re-established after a loss.",
			sample{v: float64(st.Cluster.Reconnects)})
		counter(b, "distwalk_cluster_heartbeat_misses_total", "Idle heartbeats that found an engine dead.",
			sample{v: float64(st.Cluster.HeartbeatMisses)})
		counter(b, "distwalk_cluster_failovers_total", "Requests re-executed in-process after losing their cluster run.",
			sample{v: float64(st.Cluster.Failovers)})
	}
}

// sample is one exposition line: an optional label set and a value.
type sample struct {
	l string
	v float64
}

func counter(b *strings.Builder, name, help string, ss ...sample) {
	family(b, name, "counter", help, ss)
}
func gauge(b *strings.Builder, name, help string, ss ...sample) { family(b, name, "gauge", help, ss) }

func family(b *strings.Builder, name, typ, help string, ss []sample) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range ss {
		if s.l != "" {
			fmt.Fprintf(b, "%s{%s} %s\n", name, s.l, formatValue(s.v))
		} else {
			fmt.Fprintf(b, "%s %s\n", name, formatValue(s.v))
		}
	}
}

// formatValue renders a sample value the way the exposition format wants:
// integers without an exponent, everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelEscape escapes a label value per the exposition format: backslash,
// double quote and newline.
func labelEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
