package distwalk_test

// Chaos suite: randomized-but-seeded fault plans driven through the whole
// stack (Service -> retry layer -> core walk algorithms -> sharded CONGEST
// engine), asserting the robustness contract of ISSUE 6:
//
//   - no deadlock: every request completes promptly (a hang would surface
//     as the deadline context aborting the request, which the suite treats
//     as a failure);
//   - typed errors only: every failure matches one of the documented
//     sentinels, and a request that recorded a message loss is never
//     reported as a bare budget overrun;
//   - plan determinism: the same (plan seed, graph, request key) produces
//     bit-identical results, costs and FaultStats at 1, 2, 4 and 8 shards,
//     and on a fresh service re-running the same plan.
//
// CI runs this file under -race -count=2 as a dedicated chaos job. When
// CHAOS_SUMMARY names a file (the job points it at GITHUB_STEP_SUMMARY), a
// per-seed markdown table of retry/fault counters is appended to it.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"distwalk"
)

// chaosSeeds are fixed: the suite is deterministic, not flaky — these
// seeds were tuned once so every plan exercises drops, delays and churn.
var chaosSeeds = []uint64{101, 202, 303}

func chaosPlan(t *testing.T, g *distwalk.Graph, seed uint64) *distwalk.FaultPlan {
	t.Helper()
	plan := distwalk.RandomFaultPlan(seed, g, distwalk.ChaosSpec{
		Crashes:    1,
		Churns:     2,
		MaxRound:   500,
		DropProb:   0.0008,
		LossyLinks: 3,
		SlowLinks:  3,
	})
	if plan.Empty() {
		t.Fatalf("seed %d produced an empty chaos plan", seed)
	}
	return plan
}

// chaosTypedErr reports whether err is one of the failure modes the chaos
// contract allows a faulty run to surface.
func chaosTypedErr(err error) bool {
	for _, s := range []error{
		distwalk.ErrNodeCrashed,
		distwalk.ErrMessageLost,
		distwalk.ErrBudgetExceeded, // slow links can burn the budget without losing anything
		distwalk.ErrNoCover,
		distwalk.ErrNoMixing,
	} {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// chaosRun fires a fixed concurrent request mix at a service built with
// the given plan and shard count and returns (digest, retry stats). The
// digest covers every observable: destinations, costs (which embed
// FaultStats), per-walk partial errors, and full error texts — so two
// equal digests mean bit-identical fault charging and recovery.
func chaosRun(t *testing.T, g *distwalk.Graph, plan *distwalk.FaultPlan, shards int) (string, distwalk.RetryStats) {
	t.Helper()
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(2),
		distwalk.WithShards(shards),
		distwalk.WithFaultPlan(plan),
		distwalk.WithRetry(2),
		distwalk.WithBackoff(0),
		distwalk.WithPartialResults(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// The deadline is the no-deadlock assertion: a stalled request aborts
	// with a context error, which is not a chaos-typed error and fails the
	// suite.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type req struct {
		name string
		run  func(key uint64) (string, error)
	}
	reqs := []req{
		{"single", func(key uint64) (string, error) {
			res, err := svc.SingleRandomWalk(ctx, key, 0, 384)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dest=%d len=%d cost=%+v", res.Destination, res.Length, res.Cost), nil
		}},
		{"naive", func(key uint64) (string, error) {
			res, err := svc.NaiveWalk(ctx, key, 5, 256)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dest=%d cost=%+v", res.Destination, res.Cost), nil
		}},
		{"many", func(key uint64) (string, error) {
			sources := make([]distwalk.NodeID, 6)
			for i := range sources {
				sources[i] = distwalk.NodeID(i * 13 % g.N())
			}
			res, err := svc.ManyRandomWalks(ctx, key, sources, 384)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("dests=%v failed=%d errs=%v cost=%+v", res.Destinations, res.Failed, res.Errs, res.Cost), nil
		}},
		{"spanning", func(key uint64) (string, error) {
			res, err := svc.RandomSpanningTree(ctx, key, 0)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("parents=%v cost=%+v", res.Parent, res.Cost), nil
		}},
		{"mixing", func(key uint64) (string, error) {
			est, err := svc.EstimateMixingTime(ctx, key, 0, distwalk.WithTrials(12), distwalk.WithMaxEll(128))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("tau=%d cost=%+v", est.Tau, est.Cost), nil
		}},
	}

	const keysPerReq = 2
	lines := make([]string, len(reqs)*keysPerReq)
	var wg sync.WaitGroup
	for ri, r := range reqs {
		for k := 0; k < keysPerReq; k++ {
			wg.Add(1)
			go func(slot int, r req, key uint64) {
				defer wg.Done()
				out, err := r.run(key)
				if err != nil {
					if !chaosTypedErr(err) {
						t.Errorf("%s key %d: untyped chaos error: %v", r.name, key, err)
					}
					if errors.Is(err, distwalk.ErrBudgetExceeded) &&
						(errors.Is(err, distwalk.ErrNodeCrashed) || errors.Is(err, distwalk.ErrMessageLost)) {
						t.Errorf("%s key %d: error wraps both a fault and the budget sentinel: %v", r.name, key, err)
					}
					out = "err=" + err.Error()
				}
				lines[slot] = fmt.Sprintf("%s/%d: %s", r.name, key, out)
			}(ri*keysPerReq+k, r, uint64(key0+k))
		}
	}
	wg.Wait()
	return strings.Join(lines, "\n"), svc.Stats().Retry
}

const key0 = 1 // first request key of each chaos service

func TestChaosSuite(t *testing.T) {
	g, err := distwalk.Torus(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	var summary strings.Builder
	summary.WriteString("| plan seed | shards | attempts | retries | recovered | exhausted | faults |\n|---|---|---|---|---|---|---|\n")
	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := chaosPlan(t, g, seed)
			want, wantRetry := chaosRun(t, g, plan, 1)
			if !strings.Contains(want, "err=") && wantRetry.Faults == 0 {
				t.Logf("seed %d: plan caused no observable fault — chaos coverage is weak", seed)
			}
			for _, shards := range []int{2, 4, 8} {
				got, gotRetry := chaosRun(t, g, plan, shards)
				if got != want {
					t.Errorf("digest diverged at %d shards:\n--- sequential ---\n%s\n--- sharded ---\n%s", shards, want, got)
				}
				if gotRetry != wantRetry {
					t.Errorf("retry counters diverged at %d shards: %+v vs %+v", shards, gotRetry, wantRetry)
				}
				summary.WriteString(fmt.Sprintf("| %d | %d | %d | %d | %d | %d | %d |\n",
					seed, shards, gotRetry.Attempts, gotRetry.Retries, gotRetry.Recovered, gotRetry.Exhausted, gotRetry.Faults))
			}
			// Plan determinism on a fresh service: the same plan re-runs to
			// the same digest, retries included.
			again, againRetry := chaosRun(t, g, plan, 1)
			if again != want || againRetry != wantRetry {
				t.Errorf("same plan re-ran differently:\n--- first ---\n%s\n--- second ---\n%s", want, again)
			}
			summary.WriteString(fmt.Sprintf("| %d | 1 | %d | %d | %d | %d | %d |\n",
				seed, wantRetry.Attempts, wantRetry.Retries, wantRetry.Recovered, wantRetry.Exhausted, wantRetry.Faults))
		})
	}
	if path := os.Getenv("CHAOS_SUMMARY"); path != "" && !t.Failed() {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatalf("CHAOS_SUMMARY: %v", err)
		}
		defer f.Close()
		fmt.Fprintf(f, "### Chaos suite fault/retry counters\n\n%s\n", summary.String())
	}
}
