module distwalk

go 1.24
