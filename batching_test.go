package distwalk_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"distwalk"
	"distwalk/internal/core"
)

// Batching subsystem tests: coalesced SubmitWalk requests must execute as
// shared MANY-RANDOM-WALKS batches whose results are deterministic per
// batch composition, with cancellation, backpressure and shutdown
// behaving as errors.go documents.

// submitBurst fires the given keyed walks concurrently on svc and returns
// the collected results indexed like keys. MaxBatch is expected to equal
// len(keys), so all submissions coalesce into exactly one batch
// regardless of goroutine interleaving.
func submitBurst(t *testing.T, svc *distwalk.Service, keys []uint64, sources []distwalk.NodeID, ell int) []*distwalk.WalkResult {
	t.Helper()
	handles := make([]*distwalk.WalkHandle, len(keys))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := svc.SubmitWalk(context.Background(), keys[i], sources[i], ell)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			handles[i] = h
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	out := make([]*distwalk.WalkResult, len(handles))
	for i, h := range handles {
		res, err := h.Result()
		if err != nil {
			t.Fatalf("walk %d: %v", keys[i], err)
		}
		if info := h.Batch(); info.Size != len(keys) {
			t.Fatalf("walk %d rode a batch of %d, want %d (burst split)", keys[i], info.Size, len(keys))
		}
		out[i] = res
	}
	return out
}

// TestBatchedDeterminismStress is the -race stress pin: the same batch
// composition must produce bit-identical member results across repeated
// rounds, across independent services, and regardless of submission
// interleaving or pool concurrency.
func TestBatchedDeterminismStress(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const ell = 500
	newSvc := func() *distwalk.Service {
		svc, err := distwalk.NewService(g, 4242,
			distwalk.WithWorkers(2), distwalk.WithBatching(8, time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	svcA := newSvc()
	defer svcA.Close()
	svcB := newSvc()
	defer svcB.Close()

	keys := []uint64{3, 1, 4, 1_000_000, 59, 26, 535, 89} // deliberately unsorted
	sources := make([]distwalk.NodeID, len(keys))
	for i := range sources {
		sources[i] = distwalk.NodeID((i * 23) % g.N())
	}
	reference := submitBurst(t, svcA, keys, sources, ell)
	for round := 0; round < 5; round++ {
		svc := svcA
		if round%2 == 1 {
			svc = svcB
		}
		got := submitBurst(t, svc, keys, sources, ell)
		if !reflect.DeepEqual(got, reference) {
			t.Fatalf("round %d diverged from the first execution of the same composition", round)
		}
	}

	// The batch is also reproducible outside the service: a legacy walker
	// on the batch seed running the sorted composition directly.
	h, err := svcA.SubmitWalk(context.Background(), keys[0], sources[0], ell)
	if err != nil {
		t.Fatal(err)
	}
	// Lone request: flushes by... nothing yet; give it batchmates so the
	// composition matches keys again.
	rest := make([]*distwalk.WalkHandle, 0, len(keys)-1)
	for i := 1; i < len(keys); i++ {
		hi, err := svcA.SubmitWalk(context.Background(), keys[i], sources[i], ell)
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, hi)
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, hi := range rest {
		if _, err := hi.Result(); err != nil {
			t.Fatal(err)
		}
	}
	w, err := core.NewWalker(g, h.Batch().Seed, distwalk.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by key: 1, 3, 4, 26, 59, 89, 535, 1000000.
	sorted := []distwalk.NodeID{sources[1], sources[0], sources[2], sources[5], sources[4], sources[7], sources[6], sources[3]}
	ref, err := w.ManyRandomWalks(sorted, ell)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination != ref.Walks[1].Destination || res.Cost != ref.Walks[1].Cost {
		t.Fatalf("batched member diverged from batch-seed walker reference:\n got %+v\nwant %+v",
			res, ref.Walks[1])
	}
	if total := h.Batch().Cost; total != ref.Cost {
		t.Fatalf("batch total cost %+v, reference %+v", total, ref.Cost)
	}
}

// TestBatchedCancelIsolation pins the cancellation half of the contract:
// a member cancelled before flush is dropped from the batch, and the
// surviving members execute exactly as if it had never been submitted.
func TestBatchedCancelIsolation(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const ell = 400
	mk := func() *distwalk.Service {
		svc, err := distwalk.NewService(g, 99,
			distwalk.WithWorkers(1), distwalk.WithBatching(8, 120*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	ctx := context.Background()

	// Service 1: submit walks 10, 20 and 30, then cancel 30 before the
	// 120ms flush window closes.
	svc1 := mk()
	defer svc1.Close()
	h10, err := svc1.SubmitWalk(ctx, 10, 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	h20, err := svc1.SubmitWalk(ctx, 20, 5, ell)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	h30, err := svc1.SubmitWalk(cctx, 30, 9, ell)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := h30.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled member: err = %v, want context.Canceled", err)
	}
	r10, err := h10.Result()
	if err != nil {
		t.Fatal(err)
	}
	r20, err := h20.Result()
	if err != nil {
		t.Fatal(err)
	}
	if h10.Batch().Size != 2 {
		t.Fatalf("surviving batch size %d, want 2", h10.Batch().Size)
	}

	// Service 2: the composition that never contained walk 30.
	svc2 := mk()
	defer svc2.Close()
	g10, err := svc2.SubmitWalk(ctx, 10, 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	g20, err := svc2.SubmitWalk(ctx, 20, 5, ell)
	if err != nil {
		t.Fatal(err)
	}
	w10, err := g10.Result()
	if err != nil {
		t.Fatal(err)
	}
	w20, err := g20.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r10, w10) || !reflect.DeepEqual(r20, w20) {
		t.Fatal("cancelling member 30 perturbed its batchmates' outputs")
	}
	if svc1.Stats().Cancelled != 1 {
		t.Fatalf("stats.Cancelled = %d, want 1", svc1.Stats().Cancelled)
	}
}

// TestSubmitWalkUnbatchedIsPerKeyPath pins the default mode: without
// WithBatching, SubmitWalk is the per-key deterministic path run async —
// bit-identical to SingleRandomWalk, and SubmitWalkTrace to WalkTrace.
func TestSubmitWalkUnbatchedIsPerKeyPath(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 7, distwalk.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	h, err := svc.SubmitWalk(ctx, 12, 3, 600)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.SingleRandomWalk(ctx, 12, 3, 600)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("unbatched SubmitWalk diverged from SingleRandomWalk on the same key")
	}
	if info := h.Batch(); info.Size != 1 || info.Reason != distwalk.FlushUnbatched {
		t.Fatalf("unbatched batch info = %+v, want size 1, reason unbatched", info)
	}

	ht, err := svc.SubmitWalkTrace(ctx, 13, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	gotWalk, err := ht.Result()
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, err := ht.Trace()
	if err != nil {
		t.Fatal(err)
	}
	wantWalk, wantTrace, err := svc.WalkTrace(ctx, 13, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotWalk, wantWalk) || !reflect.DeepEqual(gotTrace, wantTrace) {
		t.Fatal("unbatched SubmitWalkTrace diverged from WalkTrace on the same key")
	}
}

// TestBatchedTraceDeterminism: traced members inside a batch get a replay
// of their own walk, deterministic per composition like everything else.
func TestBatchedTraceDeterminism(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*distwalk.WalkResult, *distwalk.Trace) {
		svc, err := distwalk.NewService(g, 21,
			distwalk.WithWorkers(1), distwalk.WithBatching(2, time.Second))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		ctx := context.Background()
		ht, err := svc.SubmitWalkTrace(ctx, 1, 0, 300)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := svc.SubmitWalk(ctx, 2, 9, 300)
		if err != nil {
			t.Fatal(err)
		}
		walk, err := ht.Result()
		if err != nil {
			t.Fatal(err)
		}
		trace, err := ht.Trace()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h2.Result(); err != nil {
			t.Fatal(err)
		}
		return walk, trace
	}
	walkA, traceA := run()
	walkB, traceB := run()
	if !reflect.DeepEqual(walkA, walkB) || !reflect.DeepEqual(traceA, traceB) {
		t.Fatal("batched trace not deterministic across identical compositions")
	}
	if traceA.FirstVisitTime[walkA.Source] != 0 {
		t.Fatal("trace does not start at the source")
	}
	positions := traceA.Positions[walkA.Destination]
	if len(positions) == 0 || positions[len(positions)-1] != 300 {
		t.Fatal("trace does not end at the walk's destination")
	}
}

// TestBatchedGoldenCounters pins the batched cost model bit for bit, the
// way golden_test.go pins the per-key algorithms: the canonical batch —
// 8 walks of ℓ=4096 from node 0, keys 8..15, service seed 42, the
// BatchedWalks bench workload's first measured composition — must
// reproduce these exact simulated counters, and its amortized per-walk
// rounds must land strictly below a SingleRandomWalk of the same length
// on the same service (the acceptance bar for batching at k ≥ 8).
func TestBatchedGoldenCounters(t *testing.T) {
	g, err := distwalk.Torus(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 42,
		distwalk.WithWorkers(1), distwalk.WithBatching(8, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	handles := make([]*distwalk.WalkHandle, 8)
	for i := range handles {
		h, err := svc.SubmitWalk(ctx, 8+uint64(i), 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles {
		if _, err := h.Result(); err != nil {
			t.Fatal(err)
		}
	}
	info := handles[0].Batch()
	wantCost := distwalk.Cost{Rounds: 5005, Messages: 1163101, Words: 3486999, MaxQueue: 17}
	if info.Cost != wantCost {
		t.Errorf("golden batch cost changed:\n got %+v\nwant %+v", info.Cost, wantCost)
	}
	wantAm := distwalk.Cost{Rounds: 625, Messages: 145387, Words: 435874, MaxQueue: 17}
	if info.Amortized != wantAm {
		t.Errorf("golden amortized cost changed:\n got %+v\nwant %+v", info.Amortized, wantAm)
	}
	member, err := handles[3].Result()
	if err != nil {
		t.Fatal(err)
	}
	if member.Destination != 255 {
		t.Errorf("golden member destination changed: got %d, want 255", member.Destination)
	}
	single, err := svc.SingleRandomWalk(ctx, 1, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if info.Amortized.Rounds >= single.Cost.Rounds {
		t.Errorf("amortized batched rounds %d not strictly below single-walk rounds %d",
			info.Amortized.Rounds, single.Cost.Rounds)
	}
}

// TestBatchingBackpressureAndShutdown exercises the bounded queue
// (ErrQueueFull), abort-on-close (ErrBatchAborted) and closed-service
// (ErrServiceClosed) paths of the scheduler through the public surface.
func TestBatchingBackpressureAndShutdown(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One worker, batch size 1 (every submit flushes), queue limit 2. A
	// long synchronous request occupies the lone worker, so flushed
	// batches park and the admission queue fills.
	svc, err := distwalk.NewService(g, 5, distwalk.WithWorkers(1),
		distwalk.WithBatching(1, time.Hour), distwalk.WithBatchQueueLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	longCtx, stopLong := context.WithCancel(ctx)
	longDone := make(chan struct{})
	go func() {
		defer close(longDone)
		// 40M naive steps can only end via cancellation.
		_, _ = svc.NaiveWalk(longCtx, 1, 0, 40_000_000)
	}()
	time.Sleep(50 * time.Millisecond) // let the long walk claim the worker

	var handles []*distwalk.WalkHandle
	for key := uint64(2); ; key++ {
		h, err := svc.SubmitWalk(ctx, key, 0, 200)
		if err != nil {
			if !errors.Is(err, distwalk.ErrQueueFull) {
				t.Fatalf("submit %d: err = %v, want ErrQueueFull once the queue fills", key, err)
			}
			if len(handles) < 2 {
				t.Fatalf("queue rejected after only %d pending, limit is 2", len(handles))
			}
			break
		}
		handles = append(handles, h)
		if key > 64 {
			t.Fatal("queue never filled: backpressure is not engaging")
		}
	}
	if svc.Stats().Rejected == 0 {
		t.Fatal("stats did not count the rejection")
	}
	stopLong() // free the worker; parked and queued batches drain
	<-longDone
	for i, h := range handles {
		if _, err := h.Result(); err != nil {
			t.Fatalf("queued walk %d after drain: %v", i, err)
		}
	}

	// Abort on close: pending members (batch threshold not reached, flush
	// window far away) fail with ErrBatchAborted.
	svc2, err := distwalk.NewService(g, 6, distwalk.WithWorkers(1),
		distwalk.WithBatching(8, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	hp, err := svc2.SubmitWalk(ctx, 1, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	svc2.Close()
	if _, err := hp.Result(); !errors.Is(err, distwalk.ErrBatchAborted) {
		t.Fatalf("pending at close: err = %v, want ErrBatchAborted", err)
	}
	if _, err := svc2.SubmitWalk(ctx, 2, 0, 200); !errors.Is(err, distwalk.ErrServiceClosed) {
		t.Fatalf("submit after close: err = %v, want ErrServiceClosed", err)
	}
}

// TestBatchingStats sanity-checks the scheduler counters the service
// surfaces: occupancy histogram, flush reasons and amortized cost.
func TestBatchingStats(t *testing.T) {
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := distwalk.NewService(g, 17,
		distwalk.WithWorkers(1), distwalk.WithBatching(4, 40*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// One full batch of 4 (size flush) ...
	four := submitBurst(t, svc, []uint64{1, 2, 3, 4}, []distwalk.NodeID{0, 1, 2, 3}, 300)
	_ = four
	// ... and one lone walk that flushes by delay.
	h, err := svc.SubmitWalk(ctx, 9, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(); err != nil {
		t.Fatal(err)
	}
	if got := h.Batch().Reason; got != distwalk.FlushDelay {
		t.Fatalf("lone walk flush reason %v, want delay", got)
	}

	st := svc.Stats()
	if st.Submitted != 5 || st.BatchedWalks != 5 || st.Batches != 2 {
		t.Fatalf("submitted/walks/batches = %d/%d/%d, want 5/5/2", st.Submitted, st.BatchedWalks, st.Batches)
	}
	if st.FlushBySize != 1 || st.FlushByDelay != 1 {
		t.Fatalf("flush reasons size/delay = %d/%d, want 1/1", st.FlushBySize, st.FlushByDelay)
	}
	if st.Occupancy[3] != 1 || st.Occupancy[0] != 1 {
		t.Fatalf("occupancy = %v, want one size-4 and one size-1 batch", st.Occupancy)
	}
	if st.AmortizedRounds() <= 0 || st.AmortizedMessages() <= 0 {
		t.Fatalf("amortized rounds/messages = %v/%v, want positive",
			st.AmortizedRounds(), st.AmortizedMessages())
	}
	// A service without batching reports zeros.
	plain, err := distwalk.NewService(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if s := plain.Stats(); s.Submitted != 0 || s.Batches != 0 {
		t.Fatalf("unbatched service stats = %+v, want zero", s)
	}
}
