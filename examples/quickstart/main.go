// Quickstart: sample the endpoint of a long random walk on a torus with
// the Õ(√(ℓD))-round algorithm of Das Sarma et al. (PODC 2010) and compare
// against the naive ℓ-round token walk.
package main

import (
	"fmt"
	"log"

	"distwalk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := distwalk.Torus(24, 24)
	if err != nil {
		return err
	}
	const (
		source = distwalk.NodeID(0)
		ell    = 50_000
	)

	fast, err := distwalk.NewWalker(g, 42, distwalk.DefaultParams())
	if err != nil {
		return err
	}
	res, err := fast.SingleRandomWalk(source, ell)
	if err != nil {
		return err
	}
	fmt.Printf("fast walk:  ℓ=%d from node %d landed on node %d\n", ell, source, res.Destination)
	fmt.Printf("            %d rounds (λ=%d, %d stitched segments)\n",
		res.Cost.Rounds, res.Lambda, len(res.Segments))

	slow, err := distwalk.NewWalker(g, 42, distwalk.DefaultParams())
	if err != nil {
		return err
	}
	naive, err := slow.NaiveWalk(source, ell)
	if err != nil {
		return err
	}
	fmt.Printf("naive walk: %d rounds (one hop per round)\n", naive.Cost.Rounds)
	fmt.Printf("speedup:    %.1fx\n", float64(naive.Cost.Rounds)/float64(res.Cost.Rounds))
	return nil
}
