// Quickstart: sample the endpoint of a long random walk on a torus with
// the Õ(√(ℓD))-round algorithm of Das Sarma et al. (PODC 2010) and compare
// against the naive ℓ-round token walk. Both requests go through the
// Service — the concurrent, context-aware entry point — and run in
// parallel on the pool.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"distwalk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := distwalk.Torus(24, 24)
	if err != nil {
		return err
	}
	const (
		source = distwalk.NodeID(0)
		ell    = 50_000
	)
	svc, err := distwalk.NewService(g, 42)
	if err != nil {
		return err
	}
	defer svc.Close()

	// Every request gets a deadline and a key; the key alone determines
	// the result, so re-running this program reproduces it exactly.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	type walkOut struct {
		res *distwalk.WalkResult
		err error
	}
	fastCh := make(chan walkOut, 1)
	slowCh := make(chan walkOut, 1)
	go func() {
		res, err := svc.SingleRandomWalk(ctx, 1, source, ell)
		fastCh <- walkOut{res, err}
	}()
	go func() {
		res, err := svc.NaiveWalk(ctx, 2, source, ell)
		slowCh <- walkOut{res, err}
	}()
	fast, slow := <-fastCh, <-slowCh
	if fast.err != nil {
		return fast.err
	}
	if slow.err != nil {
		return slow.err
	}

	fmt.Printf("fast walk:  ℓ=%d from node %d landed on node %d\n", ell, source, fast.res.Destination)
	fmt.Printf("            %d rounds (λ=%d, %d stitched segments)\n",
		fast.res.Cost.Rounds, fast.res.Lambda, len(fast.res.Segments))
	fmt.Printf("naive walk: %d rounds (one hop per round)\n", slow.res.Cost.Rounds)
	fmt.Printf("speedup:    %.1fx\n", float64(slow.res.Cost.Rounds)/float64(fast.res.Cost.Rounds))
	return nil
}
