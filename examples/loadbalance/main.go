// Load-balancing example: the paper's motivating network application —
// random walks as a lightweight node-sampling service (Section 1:
// "token management and load balancing ... search, routing"). A
// coordinator picks servers by running independent random walks past the
// mixing time; the samples follow the stationary (degree-proportional)
// distribution, so better-connected servers receive proportionally more
// load without any global state. The batches are independent requests, so
// the Service runs them concurrently across its worker pool — this is
// exactly the "walk sampling as a shared primitive under concurrent
// demand" shape the service API exists for.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"distwalk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An overlay network: random geometric graph with n=128 peers.
	g, err := distwalk.GeometricRandom(128, 0, 5)
	if err != nil {
		return err
	}
	svc, err := distwalk.NewService(g, 5)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()

	// Walk length: past the (estimated) mixing time so samples are
	// stationary.
	est, err := svc.EstimateMixingTime(ctx, 0, 0)
	if err != nil {
		return err
	}
	ell := 4 * est.Tau
	fmt.Printf("overlay: n=%d, m=%d; estimated τ̃=%d, sampling with ℓ=%d\n",
		g.N(), g.M(), est.Tau, ell)

	// Assign 500 jobs by stationary node sampling, 50 walks per batch,
	// all batches in flight at once.
	const jobs, batch = 500, 50
	coordinator := distwalk.NodeID(0)
	load := make([]int, g.N())
	totalRounds := 0
	amortized, shared := 0, 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for assigned := 0; assigned < jobs; assigned += batch {
		k := batch
		if jobs-assigned < k {
			k = jobs - assigned
		}
		sources := make([]distwalk.NodeID, k)
		for i := range sources {
			sources[i] = coordinator
		}
		wg.Add(1)
		go func(key uint64) {
			defer wg.Done()
			res, err := svc.ManyRandomWalks(ctx, key, sources, ell)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for _, dest := range res.Destinations {
				load[dest]++
			}
			totalRounds += res.Cost.Rounds
			// Cost demux: each job's share of its batch, and the batch
			// infrastructure (BFS tree, Phase 1, tails) no single job owns.
			amortized += res.AmortizedCost().Rounds * len(res.Destinations)
			shared += res.SharedCost().Rounds
		}(1 + uint64(assigned/batch))
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Stationary sampling loads nodes proportionally to degree: report the
	// correlation-ish summary by degree class.
	byDegree := make(map[int][]int)
	for v, l := range load {
		byDegree[g.Degree(distwalk.NodeID(v))] = append(byDegree[g.Degree(distwalk.NodeID(v))], l)
	}
	fmt.Printf("assigned %d jobs in %d simulated rounds (≈%.1f amortized rounds/job; %d rounds of shared batch infrastructure)\n",
		jobs, totalRounds, float64(amortized)/float64(jobs), shared)
	fmt.Println("average load by node degree (stationary sampling → proportional):")
	for d := 1; d <= g.MaxDegree(); d++ {
		ls := byDegree[d]
		if len(ls) == 0 {
			continue
		}
		sum := 0
		for _, l := range ls {
			sum += l
		}
		fmt.Printf("  degree %2d: %d nodes, avg load %.2f (ideal %.2f)\n",
			d, len(ls), float64(sum)/float64(len(ls)),
			float64(jobs)*float64(d)/float64(2*g.M()))
	}
	return nil
}
