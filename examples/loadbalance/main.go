// Load-balancing example: the paper's motivating network application —
// random walks as a lightweight node-sampling service (Section 1:
// "token management and load balancing ... search, routing"). A
// coordinator picks k servers by running k independent random walks past
// the mixing time with MANY-RANDOM-WALKS; the samples follow the
// stationary (degree-proportional) distribution, so better-connected
// servers receive proportionally more load without any global state.
package main

import (
	"fmt"
	"log"

	"distwalk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An overlay network: random geometric graph with n=128 peers.
	g, err := distwalk.GeometricRandom(128, 0, 5)
	if err != nil {
		return err
	}
	w, err := distwalk.NewWalker(g, 5, distwalk.DefaultParams())
	if err != nil {
		return err
	}

	// Walk length: past the (estimated) mixing time so samples are
	// stationary.
	est, err := distwalk.EstimateMixingTime(w, 0, distwalk.MixingOptions{})
	if err != nil {
		return err
	}
	ell := 4 * est.Tau
	fmt.Printf("overlay: n=%d, m=%d; estimated τ̃=%d, sampling with ℓ=%d\n",
		g.N(), g.M(), est.Tau, ell)

	// Assign 500 jobs by stationary node sampling, 50 walks at a time.
	const jobs = 500
	coordinator := distwalk.NodeID(0)
	load := make([]int, g.N())
	totalRounds := 0
	for assigned := 0; assigned < jobs; {
		batch := 50
		if jobs-assigned < batch {
			batch = jobs - assigned
		}
		sources := make([]distwalk.NodeID, batch)
		for i := range sources {
			sources[i] = coordinator
		}
		res, err := w.ManyRandomWalks(sources, ell)
		if err != nil {
			return err
		}
		for _, dest := range res.Destinations {
			load[dest]++
		}
		totalRounds += res.Cost.Rounds
		assigned += batch
	}

	// Stationary sampling loads nodes proportionally to degree: report the
	// correlation-ish summary by degree class.
	byDegree := make(map[int][]int)
	for v, l := range load {
		byDegree[g.Degree(distwalk.NodeID(v))] = append(byDegree[g.Degree(distwalk.NodeID(v))], l)
	}
	fmt.Printf("assigned %d jobs in %d simulated rounds\n", jobs, totalRounds)
	fmt.Println("average load by node degree (stationary sampling → proportional):")
	for d := 1; d <= g.MaxDegree(); d++ {
		ls := byDegree[d]
		if len(ls) == 0 {
			continue
		}
		sum := 0
		for _, l := range ls {
			sum += l
		}
		fmt.Printf("  degree %2d: %d nodes, avg load %.2f (ideal %.2f)\n",
			d, len(ls), float64(sum)/float64(len(ls)),
			float64(jobs)*float64(d)/float64(2*g.M()))
	}
	return nil
}
