// Mixing-time example: the decentralized estimator of Section 4.2 lets a
// network measure its own mixing time — a building block for
// topologically-aware networks. A slow-mixing ring and a fast-mixing
// expander of the same size are told apart without any global computation.
package main

import (
	"context"
	"fmt"
	"log"

	"distwalk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	families := []struct {
		name string
		make func() (*distwalk.Graph, error)
	}{
		{"ring (cycle 65)", func() (*distwalk.Graph, error) { return distwalk.Cycle(65) }},
		{"expander (4-regular, 64)", func() (*distwalk.Graph, error) { return distwalk.RandomRegular(64, 4, 3) }},
	}
	ctx := context.Background()
	for _, fam := range families {
		g, err := fam.make()
		if err != nil {
			return err
		}
		svc, err := distwalk.NewService(g, 11)
		if err != nil {
			return err
		}
		est, err := svc.EstimateMixingTime(ctx, 1, 0)
		svc.Close()
		if err != nil {
			return err
		}
		exact, err := distwalk.ExactMixingTime(g, 0, distwalk.EpsMix, 10_000_000)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", fam.name)
		fmt.Printf("  decentralized τ̃ = %d   (exact τ^x(1/2e) = %d)\n", est.Tau, exact)
		fmt.Printf("  spectral gap bracket [%.4f, %.4f], conductance bracket [%.4f, %.4f]\n",
			est.GapLo, est.GapHi, est.CondLo, est.CondHi)
		fmt.Printf("  cost: %d rounds with K=%d walks per test\n\n", est.Cost.Rounds, est.Samples)
	}
	fmt.Println("the ring's estimate is an order of magnitude above the expander's —")
	fmt.Println("the network can observe its own poor expansion and react.")
	return nil
}
