// Spanning tree example: sample a uniformly random spanning tree of a
// random geometric graph (the paper's ad-hoc-network model) with the
// distributed Aldous-Broder driver of Section 4.1, validate it, and show
// how the round cost compares to the O(mD)-scale cover time a naive
// simulation would pay.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"distwalk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 256
	g, err := distwalk.GeometricRandom(n, 0, 7)
	if err != nil {
		return err
	}
	fmt.Printf("random geometric graph: n=%d, m=%d\n", g.N(), g.M())

	svc, err := distwalk.NewService(g, 7)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := svc.RandomSpanningTree(ctx, 1, 0)
	if err != nil {
		return err
	}
	if err := distwalk.ValidateSpanningTree(g, res.Root, res.Parent); err != nil {
		return fmt.Errorf("tree validation: %w", err)
	}

	depth := treeDepth(res.Parent, res.Root)
	fmt.Printf("sampled a valid spanning tree rooted at %d (depth %d)\n", res.Root, depth)
	fmt.Printf("covering walk length: %d (found in %d phases, %d walks)\n",
		res.WalkLength, res.Phases, res.Attempts)
	// The naive implementation token-walks the same schedule: every
	// attempted walk costs its full length in rounds.
	naive := 0
	perPhase := res.Attempts / res.Phases
	for p, ell := 0, g.N(); p < res.Phases; p, ell = p+1, ell*2 {
		naive += perPhase * ell
	}
	fmt.Printf("cost: %d rounds vs %d rounds for the naive token schedule (%.1fx)\n",
		res.Cost.Rounds, naive, float64(naive)/float64(res.Cost.Rounds))
	fmt.Printf("Õ(√(mD)) scale for reference: √(m·D) ≈ %.0f\n",
		math.Sqrt(float64(g.M())*20))
	return nil
}

// treeDepth computes the deepest node of the parent forest.
func treeDepth(parent []distwalk.NodeID, root distwalk.NodeID) int {
	depth := 0
	for v := range parent {
		d := 0
		for u := distwalk.NodeID(v); u != root && u != distwalk.None; u = parent[u] {
			d++
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}
