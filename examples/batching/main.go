// Batching: N concurrent clients each want the endpoint of one long
// random walk. Without batching every request pays the full Õ(√(ℓD))
// price; with WithBatching the scheduler coalesces concurrent requests
// into shared MANY-RANDOM-WALKS executions, so the k walks of a batch
// split one Õ(min(√(kℓD)+k, k+ℓ)) run between them (Theorem 2.8). The
// program fires the same workload both ways and prints the amortized
// simulated rounds per walk.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"distwalk"
)

const (
	clients = 24
	ell     = 20_000
	source  = distwalk.NodeID(0)
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// fire launches one goroutine per client, submits every walk through the
// async API, and returns the summed and per-walk simulated rounds.
func fire(svc *distwalk.Service) (total int64, perWalk float64, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	handles := make([]*distwalk.WalkHandle, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			handles[i], errs[i] = svc.SubmitWalk(ctx, uint64(i+1), source, ell)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		if _, err := handles[i].Result(); err != nil {
			return 0, 0, err
		}
		// Each walk's share of its execution: the full cost when it ran
		// alone, a 1/k slice when it rode a batch of k.
		total += int64(handles[i].Batch().Amortized.Rounds)
	}
	return total, float64(total) / clients, nil
}

func run() error {
	g, err := distwalk.Torus(24, 24)
	if err != nil {
		return err
	}

	// Baseline: no batching — SubmitWalk runs each request alone on the
	// per-key deterministic path.
	plain, err := distwalk.NewService(g, 42)
	if err != nil {
		return err
	}
	defer plain.Close()
	plainTotal, plainPer, err := fire(plain)
	if err != nil {
		return err
	}

	// Batched: concurrent submissions coalesce (up to 8 per batch, 5ms
	// admission window) into shared executions.
	batched, err := distwalk.NewService(g, 42, distwalk.WithBatching(8, 5*time.Millisecond))
	if err != nil {
		return err
	}
	defer batched.Close()
	batchTotal, batchPer, err := fire(batched)
	if err != nil {
		return err
	}

	fmt.Printf("%d clients, ℓ=%d on a 24x24 torus\n", clients, ell)
	fmt.Printf("batching off: %7d simulated rounds total, %8.1f amortized rounds/walk\n", plainTotal, plainPer)
	fmt.Printf("batching on:  %7d simulated rounds total, %8.1f amortized rounds/walk\n", batchTotal, batchPer)
	fmt.Printf("amortization: %.2fx fewer rounds per walk\n", plainPer/batchPer)

	st := batched.Stats()
	fmt.Printf("\nscheduler: %d walks in %d batches (%d by size, %d by delay)\n",
		st.BatchedWalks, st.Batches, st.FlushBySize, st.FlushByDelay)
	fmt.Print("occupancy:")
	for i, n := range st.Occupancy {
		if n > 0 {
			fmt.Printf("  %dx size-%d", n, i+1)
		}
	}
	fmt.Printf("\namortized per batched walk: %.1f rounds, %.0f messages\n",
		st.AmortizedRounds(), st.AmortizedMessages())
	return nil
}
