package distwalk

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"distwalk/internal/cache"
	"distwalk/internal/sched"
)

// Batching types re-exported from the scheduler subsystem.
type (
	// SchedStats is the batching scheduler's counter snapshot; see
	// Service.Stats.
	SchedStats = sched.Stats
	// BatchInfo describes the batch that served a submitted walk: size,
	// batch seed, flush reason, and total plus amortized simulated cost.
	BatchInfo = sched.BatchInfo
)

// Flush reasons reported in BatchInfo.Reason.
const (
	// FlushUnbatched marks a request that ran alone on the per-key
	// deterministic path (service built without WithBatching).
	FlushUnbatched = sched.ReasonUnbatched
	// FlushSize marks a batch flushed by reaching its size threshold.
	FlushSize = sched.ReasonSize
	// FlushDelay marks a batch flushed by its max-delay window expiring.
	FlushDelay = sched.ReasonDelay
	// FlushCached marks a request served from the result cache — a stored
	// entry, or another request's in-flight execution the handle attached
	// to — without an execution of its own (see WithResultCache).
	FlushCached = sched.ReasonCached
)

// WalkHandle is the future of a submitted walk. Exactly one result is
// always delivered — success, pre-flush cancellation, or batch abort —
// so the accessors never block forever on a live service.
type WalkHandle struct {
	ch       <-chan sched.Result
	recvOnce sync.Once
	doneOnce sync.Once
	done     chan struct{}
	res      sched.Result
}

func newWalkHandle(ch <-chan sched.Result) *WalkHandle { return &WalkHandle{ch: ch} }

// wait receives the handle's single result; concurrent callers block on
// the once until the first receive completes.
func (h *WalkHandle) wait() {
	h.recvOnce.Do(func() { h.res = <-h.ch })
}

// Done returns a channel closed when the result is available, for
// select-based callers. Blocking accessors receive directly; the
// forwarding goroutine exists only once Done has been asked for.
func (h *WalkHandle) Done() <-chan struct{} {
	h.doneOnce.Do(func() {
		h.done = make(chan struct{})
		go func() {
			h.wait()
			close(h.done)
		}()
	})
	return h.done
}

// Result blocks until the walk has executed and returns it. On failure
// the error wraps the usual sentinels: a context error if the request
// was cancelled while pending, ErrBatchAborted if its batch could not
// run, ErrQueueFull never (that is rejected at submit time).
func (h *WalkHandle) Result() (*WalkResult, error) {
	h.wait()
	return h.res.Walk, h.res.Err
}

// Trace blocks like Result and returns the regenerated trace (nil unless
// the request was submitted via SubmitWalkTrace).
func (h *WalkHandle) Trace() (*Trace, error) {
	h.wait()
	return h.res.Trace, h.res.Err
}

// Batch blocks like Result and describes the execution that served the
// request — how many walks shared it and at what amortized cost.
func (h *WalkHandle) Batch() BatchInfo {
	h.wait()
	return h.res.Batch
}

// SubmitWalk submits an ℓ-step walk from source asynchronously and
// returns its future. On a service built with WithBatching, concurrent
// submissions with compatible config (same walk parameterization, round
// budget and ℓ) coalesce into one shared MANY-RANDOM-WALKS execution;
// the result is then deterministic per batch composition (see
// internal/sched). Without WithBatching the request runs alone on the
// per-key deterministic path, exactly like SingleRandomWalk.
//
// ctx cancellation is observed while the request is pending: it is
// dropped from its batch before flush and fails with the context error.
// After flush the shared execution runs to completion regardless.
// SubmitWalk itself fails fast on invalid arguments, a full admission
// queue (ErrQueueFull) or a closed service (ErrServiceClosed).
func (s *Service) SubmitWalk(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkHandle, error) {
	return s.submitAsync(ctx, key, source, ell, false, opts)
}

// SubmitWalkTrace is SubmitWalk plus regeneration: the walk's trace
// (per-node positions and first-visit edges) is computed in the batch's
// shared RegenerateMany pass and returned via WalkHandle.Trace.
func (s *Service) SubmitWalkTrace(ctx context.Context, key uint64, source NodeID, ell int, opts ...Option) (*WalkHandle, error) {
	return s.submitAsync(ctx, key, source, ell, true, opts)
}

func (s *Service) submitAsync(ctx context.Context, key uint64, source NodeID, ell int, trace bool, opts []Option) (*WalkHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return nil, fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	if err := cfg.params.Validate(); err != nil {
		return nil, err
	}
	g := s.topo.Load().g
	if source < 0 || int(source) >= g.N() {
		return nil, fmt.Errorf("%w: node %d not in [0,%d)", ErrBadNode, source, g.N())
	}
	if ell < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, ell)
	}
	if trace && cfg.params.Metropolis {
		return nil, fmt.Errorf("%w: Metropolis-Hastings walks cannot be traced", ErrNoRegen)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("distwalk: request %d not started: %w", key, err)
	}
	if s.batch == nil {
		// Unbatched default: the per-key deterministic path, run async —
		// through the cache when the service has one, so submitted walks
		// hit, lead, and coalesce exactly like the synchronous entry
		// points.
		ch := make(chan sched.Result, 1)
		if s.cache != nil {
			gen := s.topo.Load().gen
			k := s.submitDigest(gen, key, source, ell, trace, cfg)
			go func() { ch <- s.cachedSubmit(ctx, k, gen, key, source, ell, trace, opts) }()
		} else {
			go func() { ch <- s.unbatchedWalk(ctx, key, source, ell, trace, opts) }()
		}
		return newWalkHandle(ch), nil
	}
	if s.cache != nil {
		// Batched service: a submission still serves from the cache or
		// attaches to an in-flight per-key leader instead of queueing —
		// but a batch execution never leads a flight, because its result
		// is deterministic per batch composition, not per key, and must
		// not be published to per-key waiters (or the store).
		k := s.submitDigest(s.topo.Load().gen, key, source, ell, trace, cfg)
		if v, f, o := s.cache.Attach(k); o != cache.Miss {
			ch := make(chan sched.Result, 1)
			if o == cache.Hit {
				ch <- s.cachedSchedResult(v, key, trace)
				return newWalkHandle(ch), nil
			}
			go func() {
				wv, err := s.cache.Wait(ctx, f)
				switch {
				case err == nil:
					ch <- s.cachedSchedResult(wv, key, trace)
				case ctx.Err() != nil:
					ch <- sched.Result{Err: fmt.Errorf("distwalk: request %d canceled while coalesced: %w", key, ctx.Err())}
				default:
					// The leader failed with an error that may be private
					// to it; fall back to this request's own batched
					// submission.
					h, err := s.submitBatched(ctx, key, source, ell, trace, cfg, opts)
					if err != nil {
						ch <- sched.Result{Err: err}
						return
					}
					h.wait()
					ch <- h.res
				}
			}()
			return newWalkHandle(ch), nil
		}
	}
	return s.submitBatched(ctx, key, source, ell, trace, cfg, opts)
}

// submitBatched queues one submission to the batching scheduler: the
// pre-cache submitAsync body, kept fail-fast (ErrQueueFull at submit
// time) and wrapped with the abort-fallback when retries are on.
func (s *Service) submitBatched(ctx context.Context, key uint64, source NodeID, ell int, trace bool, cfg config, opts []Option) (*WalkHandle, error) {
	// The admission epoch is captured here, at queue time: it joins the
	// batch-compatibility group (no batch ever mixes generations) and, in
	// abort mode, marks the member for eviction should a mutation publish
	// while it is still queued.
	snap := s.topo.Load()
	req := sched.Request{
		Key:        key,
		Source:     source,
		Ell:        ell,
		Trace:      trace,
		Params:     cfg.params,
		MaxRounds:  cfg.maxRounds,
		Topo:       snap,
		StaleAbort: cfg.staleAbort,
	}
	ch, err := s.batch.Submit(ctx, req)
	// Backpressure retry: a full admission queue drains as batches flush,
	// so with WithRetry we wait out the backoff and re-admit instead of
	// failing fast.
	for attempt := 0; err != nil && errors.Is(err, sched.ErrQueueFull) && attempt < cfg.retries; attempt++ {
		if werr := s.backoffWait(ctx, cfg.backoff, attempt); werr != nil {
			break
		}
		s.retryRetries.Add(1)
		ch, err = s.batch.Submit(ctx, req)
	}
	if err != nil {
		if errors.Is(err, sched.ErrSchedulerClosed) {
			return nil, fmt.Errorf("%w (request %d)", ErrServiceClosed, key)
		}
		return nil, err
	}
	if cfg.retries == 0 {
		return newWalkHandle(ch), nil
	}
	// Abort fallback: a batch that failed as a whole (a batchmate's fault,
	// a poisoned shared run) completes its members with ErrBatchAborted.
	// With WithRetry the member re-executes alone on the per-key
	// deterministic path, which carries its own retry budget.
	out := make(chan sched.Result, 1)
	go func() {
		r := <-ch
		if r.Err != nil && Retryable(r.Err) {
			s.retryRetries.Add(1)
			fb := s.unbatchedWalk(ctx, key, source, ell, trace, opts)
			if fb.Err == nil {
				s.retryRecovered.Add(1)
			}
			r = fb
		}
		out <- r
	}()
	return newWalkHandle(out), nil
}

// unbatchedWalk serves one submitted request on the per-key path — the
// same execution SingleRandomWalk/WalkTrace perform — and wraps it in a
// size-one BatchInfo so callers can treat both modes uniformly. It runs
// the uncached bodies: the cached submit paths call it as their leader
// execution, and the abort-fallback must not dogpile the cache either.
func (s *Service) unbatchedWalk(ctx context.Context, key uint64, source NodeID, ell int, trace bool, opts []Option) sched.Result {
	if trace {
		walk, tr, err := s.walkTrace(ctx, key, source, ell, opts)
		if err != nil {
			return sched.Result{Err: err}
		}
		cost := walk.Cost
		cost.Add(tr.Cost)
		return sched.Result{Walk: walk, Trace: tr, Batch: BatchInfo{
			Size: 1, Seed: deriveSeed(s.seed, key), Reason: FlushUnbatched,
			Cost: cost, Amortized: cost,
		}}
	}
	walk, err := s.singleRandomWalk(ctx, key, source, ell, opts)
	if err != nil {
		return sched.Result{Err: err}
	}
	return sched.Result{Walk: walk, Batch: BatchInfo{
		Size: 1, Seed: deriveSeed(s.seed, key), Reason: FlushUnbatched,
		Cost: walk.Cost, Amortized: walk.Cost,
	}}
}

// submitDigest is the cache key of a submitted walk. trace=false shares
// the SingleRandomWalk digest space and trace=true the WalkTrace one —
// they are the same pure functions, so a submitted walk hits entries the
// synchronous entry points stored and vice versa.
func (s *Service) submitDigest(gen, key uint64, source NodeID, ell int, trace bool, cfg config) cache.Key {
	kind := cacheKindSingle
	if trace {
		kind = cacheKindTrace
	}
	return s.requestDigest(gen, kind, key, cfg, func(d *cache.Digest) {
		d.I64(int64(source))
		d.I64(int64(ell))
	})
}

// cachedSchedResult wraps a frozen cache master (stored entry or a
// leader's published value) as one submitted walk's outcome: a deep copy
// of the result under a size-one FlushCached BatchInfo whose cost is the
// saved execution's — bit-equal to what a fresh unbatched run would have
// reported.
func (s *Service) cachedSchedResult(v any, key uint64, trace bool) sched.Result {
	if trace {
		p := v.(tracedWalk)
		walk, tr := copyWalkResult(p.walk), copyTrace(p.trace)
		cost := walk.Cost
		cost.Add(tr.Cost)
		return sched.Result{Walk: walk, Trace: tr, Batch: BatchInfo{
			Size: 1, Seed: deriveSeed(s.seed, key), Reason: FlushCached,
			Cost: cost, Amortized: cost,
		}}
	}
	walk := copyWalkResult(v.(*WalkResult))
	return sched.Result{Walk: walk, Batch: BatchInfo{
		Size: 1, Seed: deriveSeed(s.seed, key), Reason: FlushCached,
		Cost: walk.Cost, Amortized: walk.Cost,
	}}
}

// cachedSubmit resolves one submitted walk through the cache on an
// unbatched service: serve a stored result, attach to an in-flight
// leader (sync or async), or lead the per-key execution and publish it.
// Mirrors cache.Do, with the leader path returning the execution's real
// BatchInfo instead of a synthesized one.
func (s *Service) cachedSubmit(ctx context.Context, k cache.Key, gen, key uint64, source NodeID, ell int, trace bool, opts []Option) sched.Result {
	for {
		v, f, o := s.cache.Begin(k)
		switch o {
		case cache.Hit:
			return s.cachedSchedResult(v, key, trace)
		case cache.Coalesced:
			wv, err := s.cache.Wait(ctx, f)
			if err == nil {
				return s.cachedSchedResult(wv, key, trace)
			}
			if cerr := ctx.Err(); cerr != nil {
				return sched.Result{Err: fmt.Errorf("distwalk: request %d canceled while coalesced: %w", key, cerr)}
			}
			continue // leader failed; contend to lead the next attempt
		default:
			r := s.unbatchedWalk(ctx, key, source, ell, trace, opts)
			if r.Err != nil {
				s.cache.Finish(k, f, cache.Execution{}, r.Err)
				return r
			}
			var ex cache.Execution
			if trace {
				ex = cache.Execution{
					Value:  tracedWalk{walk: r.Walk, trace: r.Trace},
					Bytes:  sizeWalkResult(r.Walk) + sizeTrace(r.Trace),
					Rounds: int64(r.Walk.Cost.Rounds + r.Trace.Cost.Rounds),
				}
			} else {
				ex = cache.Execution{
					Value:  r.Walk,
					Bytes:  sizeWalkResult(r.Walk),
					Rounds: int64(r.Walk.Cost.Rounds),
				}
			}
			// Epoch-pinned results of retired generations are shared with
			// waiters but never stored (see the cached bodies).
			ex.NoStore = s.topo.Load().gen != gen
			s.cache.Finish(k, f, ex, nil)
			// The masters are frozen now; the leader's own return is a
			// copy too (uniform copy-on-return), under its real BatchInfo.
			out := sched.Result{Batch: r.Batch, Walk: copyWalkResult(r.Walk)}
			if trace {
				out.Trace = copyTrace(r.Trace)
			}
			return out
		}
	}
}
