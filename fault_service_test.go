package distwalk_test

// Service-level fault tolerance acceptance tests: a walk that loses its
// token to an injected fault fails FAST with the typed ErrNodeCrashed /
// ErrMessageLost (never by burning its round budget into
// ErrBudgetExceeded), and a service built with WithRetry recovers it on a
// re-seeded attempt — deterministically, because attempt seeds are a pure
// function of (service seed, key, attempt).

import (
	"context"
	"errors"
	"testing"

	"distwalk"
)

// faultyTorus returns a service over an 8x8 torus whose node 27 is down
// for rounds [30, 400) of every simulated run — late enough that the BFS
// tree build (~diameter rounds) succeeds, long enough that Phase 1 and
// stitching traffic through it dies.
func faultyTorus(t *testing.T, opts ...distwalk.Option) *distwalk.Service {
	t.Helper()
	g, err := distwalk.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := &distwalk.FaultPlan{
		Churn: []distwalk.FaultChurn{{Node: 27, From: 30, To: 400}},
	}
	svc, err := distwalk.NewService(g, 42, append([]distwalk.Option{distwalk.WithFaultPlan(plan)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestCrashedWalkFailsFastThenRecoversWithRetry(t *testing.T) {
	ctx := context.Background()
	const ell = 600
	noRetry := faultyTorus(t)

	// Scan keys for walks the fault kills. Everything is deterministic, so
	// the set of failing keys is fixed; the table below asserts the typed
	// fail-fast contract on every one of them.
	var failing, passing []uint64
	for key := uint64(1); key <= 30; key++ {
		_, err := noRetry.SingleRandomWalk(ctx, key, 0, ell)
		if err == nil {
			passing = append(passing, key)
			continue
		}
		failing = append(failing, key)
		if !errors.Is(err, distwalk.ErrNodeCrashed) {
			t.Fatalf("key %d: error %v does not wrap ErrNodeCrashed", key, err)
		}
		if errors.Is(err, distwalk.ErrBudgetExceeded) {
			t.Fatalf("key %d: fault surfaced as a budget overrun: %v", key, err)
		}
		var nce *distwalk.NodeCrashedError
		if !errors.As(err, &nce) || nce.Node != 27 {
			t.Fatalf("key %d: error %v does not identify the churned node 27", key, err)
		}
	}
	if len(failing) == 0 {
		t.Fatal("fault plan killed no walk in 30 keys; the scenario needs retuning")
	}
	if len(passing) == 0 {
		t.Fatal("fault plan killed every walk; the scenario needs retuning")
	}

	retry := faultyTorus(t, distwalk.WithRetry(6))

	// Attempt 0 is the unsalted request seed: keys that pass without
	// retries must return bit-identical results on the retrying service.
	ref, err := noRetry.SingleRandomWalk(ctx, passing[0], 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	got, err := retry.SingleRandomWalk(ctx, passing[0], 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	if got.Destination != ref.Destination || got.Cost != ref.Cost {
		t.Fatalf("retry-enabled service diverged on a fault-free key:\n got %+v\nwant %+v", got, ref)
	}

	recovered := 0
	for _, key := range failing {
		res, err := retry.SingleRandomWalk(ctx, key, 0, ell)
		if err != nil {
			// Exhausted retries must still surface the typed fault.
			if !errors.Is(err, distwalk.ErrNodeCrashed) {
				t.Errorf("key %d: exhausted error %v does not wrap ErrNodeCrashed", key, err)
			}
			continue
		}
		recovered++
		// Recovery is deterministic: the same key recovers to the same
		// destination, because the salted attempt seeds are fixed.
		again, err := retry.SingleRandomWalk(ctx, key, 0, ell)
		if err != nil || again.Destination != res.Destination {
			t.Errorf("key %d: recovered result not reproducible: %v / %v", key, err, again)
		}
	}
	if recovered == 0 {
		t.Fatal("no killed walk recovered within 6 retries")
	}
	st := retry.Stats()
	if st.Retry.Retries == 0 || st.Retry.Recovered == 0 || st.Retry.Faults == 0 {
		t.Fatalf("retry counters did not move: %+v", st.Retry)
	}
	if noSt := noRetry.Stats(); noSt.Retry.Retries != 0 || noSt.Retry.Recovered != 0 {
		t.Fatalf("retry-free service recorded retries: %+v", noSt.Retry)
	}
}

// TestPartialResultsIsolatesWalkFailures pins WithPartialResults: a batch
// where the fault kills some walks still returns the survivors, with the
// casualties reported per walk as typed errors.
func TestPartialResultsIsolatesWalkFailures(t *testing.T) {
	ctx := context.Background()
	const ell = 600
	svc := faultyTorus(t, distwalk.WithPartialResults())
	strict := faultyTorus(t)

	sources := make([]distwalk.NodeID, 8)
	for i := range sources {
		sources[i] = distwalk.NodeID(i * 9)
	}
	for key := uint64(1); key <= 20; key++ {
		res, err := svc.ManyRandomWalks(ctx, key, sources, ell)
		if err != nil {
			// Shared-phase failure: allowed, but must be typed.
			if !errors.Is(err, distwalk.ErrNodeCrashed) {
				t.Fatalf("key %d: batch error %v not typed", key, err)
			}
			continue
		}
		if res.Failed == 0 {
			continue
		}
		// Strict mode fails the same batch outright.
		if _, serr := strict.ManyRandomWalks(ctx, key, sources, ell); serr == nil {
			t.Errorf("key %d: strict service succeeded where partial recorded %d failures", key, res.Failed)
		}
		fails := 0
		for i := range sources {
			if res.Errs[i] == nil {
				if res.Destinations[i] == distwalk.None {
					t.Errorf("key %d walk %d: no error but no destination", key, i)
				}
				continue
			}
			fails++
			if !errors.Is(res.Errs[i], distwalk.ErrNodeCrashed) {
				t.Errorf("key %d walk %d: per-walk error %v not typed", key, i, res.Errs[i])
			}
			if res.Destinations[i] != distwalk.None {
				t.Errorf("key %d walk %d: failed walk has destination %d", key, i, res.Destinations[i])
			}
		}
		if fails != res.Failed {
			t.Errorf("key %d: Failed = %d but %d non-nil Errs", key, res.Failed, fails)
		}
		if fails == len(sources) {
			continue
		}
		return // saw a genuinely partial batch with survivors: done
	}
	t.Fatal("no partial batch observed in 20 keys; the scenario needs retuning")
}

// TestFaultPlanRejectedAtConstruction pins NewService's validation: an
// invalid plan fails with ErrBadFault before any worker runs.
func TestFaultPlanRejectedAtConstruction(t *testing.T) {
	g, err := distwalk.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]*distwalk.FaultPlan{
		"node out of range": {Crashes: []distwalk.FaultCrash{{Node: 99, Round: 0}}},
		"bad probability":   {DropProb: 1.5},
		"non-edge link":     {LinkDrops: []distwalk.FaultLinkDrop{{From: 0, To: 5, Prob: 0.5}}},
	} {
		if _, err := distwalk.NewService(g, 1, distwalk.WithFaultPlan(plan)); !errors.Is(err, distwalk.ErrBadFault) {
			t.Errorf("%s: NewService = %v, want ErrBadFault", name, err)
		}
	}
}
