package distwalk

import (
	"context"
	"fmt"

	"distwalk/internal/cache"
	"distwalk/internal/core"
)

// Result-cache types re-exported from the cache subsystem.
type (
	// CacheStats is the result cache's counter snapshot; see
	// Service.Stats and the WithResultCache option.
	CacheStats = cache.Stats
	// CacheAdmission decides whether a successful result is worth a cache
	// slot; see WithCacheAdmission.
	CacheAdmission = cache.Admission
	// CacheEntryInfo is what a CacheAdmission policy sees about a
	// candidate result: its deep size estimate and the simulated rounds
	// its execution cost.
	CacheEntryInfo = cache.EntryInfo
)

// CacheMinRounds returns the cost-aware admission policy that only caches
// results whose execution cost at least r simulated rounds — a hit on an
// expensive result saves the most re-execution work.
func CacheMinRounds(r int64) CacheAdmission { return cache.MinRounds(r) }

// Request kinds folded into every cache digest, so requests of different
// entry points can never share a key even with identical operands.
const (
	cacheKindSingle uint64 = iota + 1
	cacheKindNaive
	cacheKindMany
	cacheKindTrace
	cacheKindRST
	cacheKindMix
)

// tracedWalk is the stored master of a WalkTrace/SubmitWalkTrace request:
// the walk and its regenerated trace travel as one cache entry.
type tracedWalk struct {
	walk  *WalkResult
	trace *Trace
}

// InvalidateCache invalidates every cached result by publishing a new
// topology generation over the unchanged graph and purging the store —
// the same epoch source ApplyMutations uses, minus the graph change: the
// generation is folded into every cache digest, so all prior keys become
// unreachable. Requests already in flight complete under the generation
// they admitted with (epoch-pinned) and are not stored; abort-mode
// requests (WithStaleAbort) fail with ErrStaleGeneration and, retried,
// re-execute bit-identically (the graph is unchanged and stale retries
// are unsalted). Workers only restamp their warm state — no network is
// rebuilt, and in cluster mode no session is re-dialed (the graph digest
// is unchanged). Returns ErrCacheDisabled when the service was built
// without WithResultCache.
func (s *Service) InvalidateCache() error {
	if s.cache == nil {
		return ErrCacheDisabled
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	cur := s.topo.Load()
	s.publishTopology(&topology{gen: cur.gen + 1, g: cur.g, stale: make(chan struct{})})
	return nil
}

// requestDigest folds every result-determining input of a request into a
// canonical cache key: topology generation, request kind, request key,
// the full walk parameterization, the round budget, the retry budget
// (under a fault plan, which attempt succeeds — and therefore which
// attempt-salted seed produced the result — depends on it), the
// partial-results mode, and the kind-specific operands. Fields that
// cannot change a result (workers, shards, cluster transport, backoff,
// batching windows) are deliberately absent; see internal/cache/doc.go.
// gen is the generation the caller admitted under — passed in, not
// re-loaded, so the digest and the caller's NoStore staleness check
// agree on one epoch.
func (s *Service) requestDigest(gen, kind, key uint64, cfg config, operands func(*cache.Digest)) cache.Key {
	d := cache.NewDigest()
	d.U64(gen)
	d.U64(kind)
	d.U64(key)
	p := cfg.params
	d.F64(p.LambdaC)
	d.I64(int64(p.Lambda))
	d.I64(int64(p.Eta))
	d.Bool(p.Theory)
	d.Bool(p.FixedLength)
	d.Bool(p.UniformCounts)
	d.Bool(p.PerCallBFS)
	d.Bool(p.Metropolis)
	d.I64(int64(cfg.maxRounds))
	d.I64(int64(cfg.retries))
	d.Bool(cfg.partial)
	if operands != nil {
		operands(d)
	}
	return d.Key()
}

// doCached resolves a request through the cache: hit, attach, or lead the
// execution. The only error Do can surface unwrapped is a coalesced
// waiter's own context expiry, which gets the request-id wrapping every
// other failure path carries.
func (s *Service) doCached(ctx context.Context, key uint64, k cache.Key, exec func() (cache.Execution, error)) (any, error) {
	v, o, err := s.cache.Do(ctx, k, exec)
	if err != nil {
		if o == cache.Coalesced {
			return nil, fmt.Errorf("distwalk: request %d canceled while coalesced: %w", key, err)
		}
		return nil, err
	}
	return v, nil
}

// --- Cached entry-point bodies (the public methods in service.go
// dispatch here when WithResultCache is on) ---

func (s *Service) cachedSingle(ctx context.Context, kind, key uint64, source NodeID, ell int, opts []Option, run func() (*WalkResult, error)) (*WalkResult, error) {
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return nil, fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	gen := s.topo.Load().gen
	k := s.requestDigest(gen, kind, key, cfg, func(d *cache.Digest) {
		d.I64(int64(source))
		d.I64(int64(ell))
	})
	v, err := s.doCached(ctx, key, k, func() (cache.Execution, error) {
		res, err := run()
		if err != nil {
			return cache.Execution{}, err
		}
		return cache.Execution{
			Value:  res,
			Bytes:  sizeWalkResult(res),
			Rounds: int64(res.Cost.Rounds),
			// An epoch-pinned result that outlived its generation would be
			// stale on arrival under this digest's successor keys — and its
			// own key is already unreachable. Never store it.
			NoStore: s.topo.Load().gen != gen,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return copyWalkResult(v.(*WalkResult)), nil
}

func (s *Service) cachedMany(ctx context.Context, key uint64, sources []NodeID, ell int, opts []Option) (*ManyResult, error) {
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return nil, fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	gen := s.topo.Load().gen
	k := s.requestDigest(gen, cacheKindMany, key, cfg, func(d *cache.Digest) {
		d.I64(int64(len(sources)))
		for _, src := range sources {
			d.I64(int64(src))
		}
		d.I64(int64(ell))
	})
	v, err := s.doCached(ctx, key, k, func() (cache.Execution, error) {
		res, err := s.manyRandomWalks(ctx, key, sources, ell, opts)
		if err != nil {
			return cache.Execution{}, err
		}
		// Partial results (some walks lost to faults) are shared with
		// coalesced waiters but never stored: a retry deserves a chance to
		// do better than a cached casualty list. Likewise results pinned to
		// a generation a mutation retired mid-flight.
		return cache.Execution{
			Value:   res,
			Bytes:   sizeManyResult(res),
			Rounds:  int64(res.Cost.Rounds),
			NoStore: res.Failed > 0 || s.topo.Load().gen != gen,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return copyManyResult(v.(*ManyResult)), nil
}

func (s *Service) cachedTrace(ctx context.Context, key uint64, source NodeID, ell int, opts []Option) (*WalkResult, *Trace, error) {
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return nil, nil, fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	gen := s.topo.Load().gen
	k := s.requestDigest(gen, cacheKindTrace, key, cfg, func(d *cache.Digest) {
		d.I64(int64(source))
		d.I64(int64(ell))
	})
	v, err := s.doCached(ctx, key, k, func() (cache.Execution, error) {
		walk, tr, err := s.walkTrace(ctx, key, source, ell, opts)
		if err != nil {
			return cache.Execution{}, err
		}
		return cache.Execution{
			Value:   tracedWalk{walk: walk, trace: tr},
			Bytes:   sizeWalkResult(walk) + sizeTrace(tr),
			Rounds:  int64(walk.Cost.Rounds + tr.Cost.Rounds),
			NoStore: s.topo.Load().gen != gen,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	p := v.(tracedWalk)
	return copyWalkResult(p.walk), copyTrace(p.trace), nil
}

func (s *Service) cachedRST(ctx context.Context, key uint64, root NodeID, opts []Option) (*RSTResult, error) {
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return nil, fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	gen := s.topo.Load().gen
	k := s.requestDigest(gen, cacheKindRST, key, cfg, func(d *cache.Digest) {
		d.I64(int64(root))
		d.I64(int64(cfg.rst.StartLength))
		d.I64(int64(cfg.rst.WalksPerPhase))
		d.I64(int64(cfg.rst.MaxLength))
		d.Bool(cfg.rst.Deliver)
	})
	v, err := s.doCached(ctx, key, k, func() (cache.Execution, error) {
		res, err := s.randomSpanningTree(ctx, key, root, opts)
		if err != nil {
			return cache.Execution{}, err
		}
		return cache.Execution{
			Value:   res,
			Bytes:   sizeRST(res),
			Rounds:  int64(res.Cost.Rounds),
			NoStore: s.topo.Load().gen != gen,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return copyRST(v.(*RSTResult)), nil
}

func (s *Service) cachedMixing(ctx context.Context, key uint64, x NodeID, opts []Option) (*MixingEstimate, error) {
	cfg := s.cfg
	if err := cfg.applyRequest(opts); err != nil {
		return nil, fmt.Errorf("distwalk: request %d: %w", key, err)
	}
	gen := s.topo.Load().gen
	k := s.requestDigest(gen, cacheKindMix, key, cfg, func(d *cache.Digest) {
		d.I64(int64(x))
		d.I64(int64(cfg.mix.Samples))
		d.F64(cfg.mix.Eps)
		d.F64(cfg.mix.BucketRatio)
		d.I64(int64(cfg.mix.MaxEll))
		// Options.Debug only prints; it cannot change the estimate.
	})
	v, err := s.doCached(ctx, key, k, func() (cache.Execution, error) {
		res, err := s.estimateMixingTime(ctx, key, x, opts)
		if err != nil {
			return cache.Execution{}, err
		}
		return cache.Execution{
			Value:   res,
			Bytes:   sizeMixing(res),
			Rounds:  int64(res.Cost.Rounds),
			NoStore: s.topo.Load().gen != gen,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	e := *(v.(*MixingEstimate))
	return &e, nil
}

// --- Copy-on-return ---
//
// Stored results are frozen masters; every return through the cached path
// (hit, miss and coalesced alike) is a deep copy, so callers can mutate
// what they get without corrupting future hits. See the design notes in
// internal/cache/doc.go for why the copy is uniform.

func copyWalkResult(r *WalkResult) *WalkResult {
	out := *r
	if r.Segments != nil {
		out.Segments = append([]core.Segment(nil), r.Segments...)
	}
	return &out
}

func copyManyResult(r *ManyResult) *ManyResult {
	out := *r
	if r.Destinations != nil {
		out.Destinations = append([]NodeID(nil), r.Destinations...)
	}
	if r.Walks != nil {
		out.Walks = make([]*WalkResult, len(r.Walks))
		for i, w := range r.Walks {
			if w != nil {
				out.Walks[i] = copyWalkResult(w)
			}
		}
	}
	if r.Errs != nil {
		// Errors are immutable values; the slice itself is copied.
		out.Errs = append([]error(nil), r.Errs...)
	}
	return &out
}

func copyTrace(t *Trace) *Trace {
	out := *t
	if t.Positions != nil {
		out.Positions = make([][]int32, len(t.Positions))
		for i, p := range t.Positions {
			if p != nil {
				out.Positions[i] = append([]int32(nil), p...)
			}
		}
	}
	if t.FirstVisitTime != nil {
		out.FirstVisitTime = append([]int32(nil), t.FirstVisitTime...)
	}
	if t.FirstVisitFrom != nil {
		out.FirstVisitFrom = append([]NodeID(nil), t.FirstVisitFrom...)
	}
	return &out
}

func copyRST(r *RSTResult) *RSTResult {
	out := *r
	if r.Parent != nil {
		out.Parent = append([]NodeID(nil), r.Parent...)
	}
	return &out
}

// --- Deep size estimates, charged against the cache's byte budget ---
//
// Struct headers are rounded constants (exactness buys nothing — the
// budget is a pressure valve, not an allocator); the slice payloads, which
// dominate for real results, are counted element-exact.

func sizeWalkResult(r *WalkResult) int64 {
	return int64(96 + 40*len(r.Segments))
}

func sizeManyResult(r *ManyResult) int64 {
	sz := int64(112 + 4*len(r.Destinations) + 16*len(r.Errs) + 8*len(r.Walks))
	for _, w := range r.Walks {
		if w != nil {
			sz += sizeWalkResult(w)
		}
	}
	return sz
}

func sizeTrace(t *Trace) int64 {
	sz := int64(96 + 24*len(t.Positions) + 4*len(t.FirstVisitTime) + 4*len(t.FirstVisitFrom))
	for _, p := range t.Positions {
		sz += int64(4 * len(p))
	}
	return sz
}

func sizeRST(r *RSTResult) int64 {
	return int64(80 + 4*len(r.Parent))
}

func sizeMixing(*MixingEstimate) int64 {
	return 128 // flat struct, no slices
}
