// Command walkbench runs the reproduction experiments (E1-E11; see
// DESIGN.md for the index) and prints the paper-shaped tables.
//
// Usage:
//
//	walkbench                      # run everything at small scale
//	walkbench -e E1,E7             # run selected experiments
//	walkbench -scale medium -seed 7
//	walkbench -list
//	walkbench -bench-json out/     # write BENCH_*.json perf snapshots
//	walkbench -bench-diff bench/baseline,out  # fail on perf/cost regression
//	walkbench -bench-diff ... -bench-summary "$GITHUB_STEP_SUMMARY"
//
// Measurement rule: in -bench-json mode every workload runs one warm-up
// op plus -bench-reps measured ops of the SAME request key, and the
// snapshot records the minimum-ns/op rep — the least-noisy estimate of
// the workload's true cost on the machine (the mean smears scheduler and
// GC noise across reps). The simulated counters (rounds/messages/words)
// are asserted identical across reps — per-key determinism makes any
// drift a bug — so the recorded counters are exact, not averaged.
//
// Exit codes in -bench-diff mode: 0 clean, 3 when only ns/op regressed
// (wall-time noise; CI retries the measurement once), 1 for everything
// deterministic (simulated-counter drift, allocation regressions, missing
// workloads, config mismatches) — those fail immediately.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distwalk/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "walkbench:", err)
		if errors.Is(err, errSoftRegression) {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("walkbench", flag.ContinueOnError)
	var (
		ids       = fs.String("e", "all", "comma-separated experiment IDs (e.g. E1,E7) or 'all'")
		seed      = fs.Uint64("seed", 42, "master random seed")
		scaleStr  = fs.String("scale", "small", "workload scale: small|medium|large")
		list      = fs.Bool("list", false, "list experiments and exit")
		benchDir  = fs.String("bench-json", "", "run the headline workloads and write BENCH_*.json into this directory, then exit")
		benchReps = fs.Int("bench-reps", 5, "repetitions per workload in -bench-json mode; the min-ns/op rep is recorded (simulated counters asserted equal across reps)")
		benchDiff = fs.String("bench-diff", "", "compare two BENCH_*.json dirs given as 'baseline,candidate'; exit 3 on ns/op-only regression, 1 on deterministic regression")
		benchTol  = fs.Float64("bench-tol", 0.20, "allowed fractional ns/op growth in -bench-diff mode")
		benchSum  = fs.String("bench-summary", "", "append a markdown delta table to this file in -bench-diff mode (e.g. $GITHUB_STEP_SUMMARY)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchDiff != "" {
		base, cand, ok := strings.Cut(*benchDiff, ",")
		if !ok || base == "" || cand == "" {
			return fmt.Errorf("-bench-diff wants 'baselineDir,candidateDir', got %q", *benchDiff)
		}
		return runBenchDiff(base, cand, *benchTol, *benchSum)
	}
	if *benchDir != "" {
		return runBenchJSON(*benchDir, *seed, *benchReps)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	scale, err := experiments.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	var selected []experiments.Experiment
	if *ids == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}
	cfg := experiments.Config{Seed: *seed, Scale: scale, Out: os.Stdout}
	for _, e := range selected {
		start := time.Now()
		if err := experiments.Run(e, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("   [%s finished in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
