package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Cluster-bench plumbing: the ClusterManyWalks workload measures the
// internal/wire protocol against REAL distwalkd processes — not an
// in-process loopback — so the recorded ns/op includes framing, TCP and
// the two round trips per simulated round. The engines are built from
// the module with the local toolchain (walkbench already runs via `go
// run`, so `go` is present wherever the bench runs).

// engineOut collects a daemon's output; the process writes concurrently
// with the polling reads below.
type engineOut struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *engineOut) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *engineOut) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitListenAddr polls the daemon's output for its "listening on" line
// and returns the resolved address.
func waitListenAddr(out *engineOut, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		for _, ln := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(ln, "distwalkd listening on "); ok {
				return strings.TrimSpace(rest), nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("distwalkd never reported its address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startClusterEngines builds cmd/distwalkd once and spawns n engine
// processes on fresh loopback ports. The returned cleanup kills the
// daemons and removes the build directory; callers must run it (orphaned
// engines would outlive the bench).
func startClusterEngines(n int) ([]string, func(), error) {
	dir, err := os.MkdirTemp("", "walkbench-distwalkd-")
	if err != nil {
		return nil, nil, err
	}
	bin := filepath.Join(dir, "distwalkd")
	if out, err := exec.Command("go", "build", "-o", bin, "distwalk/cmd/distwalkd").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return nil, nil, fmt.Errorf("build distwalkd: %v\n%s", err, out)
	}
	var procs []*exec.Cmd
	cleanup := func() {
		for _, c := range procs {
			c.Process.Kill()
			c.Wait()
		}
		os.RemoveAll(dir)
	}
	addrs := make([]string, n)
	for i := range addrs {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		out := &engineOut{}
		cmd.Stdout = out
		cmd.Stderr = out
		if err := cmd.Start(); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("start distwalkd: %w", err)
		}
		procs = append(procs, cmd)
		addr, err := waitListenAddr(out, 15*time.Second)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		addrs[i] = addr
	}
	return addrs, cleanup, nil
}
