package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir string, rec benchRecord) {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+rec.Name+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func baseRecord(name string) benchRecord {
	return benchRecord{
		Name: name, Graph: "torus", Seed: 42, Reps: 3,
		NsPerOp: 1_000_000, AllocsPerOp: 1000,
		RoundsPerOp: 500, MessagesPerOp: 9000, WordsPerOp: 27000,
	}
}

func TestBenchDiffClean(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	rec := baseRecord("A")
	rec.NsPerOp = 1_150_000 // +15%: within the 20% tolerance
	writeSnapshot(t, cand, rec)
	if err := runBenchDiff(base, cand, 0.20, ""); err != nil {
		t.Fatalf("clean diff failed: %v", err)
	}
}

func TestBenchDiffNsRegression(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	rec := baseRecord("A")
	rec.NsPerOp = 1_300_000 // +30%: over tolerance
	writeSnapshot(t, cand, rec)
	err := runBenchDiff(base, cand, 0.20, "")
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("ns/op regression not flagged: %v", err)
	}
}

func TestBenchDiffCounterDrift(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	rec := baseRecord("A")
	rec.MessagesPerOp++ // deterministic counters may not drift at all
	writeSnapshot(t, cand, rec)
	if err := runBenchDiff(base, cand, 0.20, ""); err == nil {
		t.Fatal("counter drift not flagged")
	}
}

func TestBenchDiffAllocsRegression(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	rec := baseRecord("A")
	rec.AllocsPerOp = 1500 // +50%: far over tolerance + slack
	writeSnapshot(t, cand, rec)
	err := runBenchDiff(base, cand, 0.20, "")
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("allocs/op regression not flagged: %v", err)
	}
}

func TestBenchDiffAllocsSlack(t *testing.T) {
	// Near-zero-alloc workloads may jitter by runtime noise: the absolute
	// slack keeps the gate from flapping, while growth beyond it fails.
	base, cand := t.TempDir(), t.TempDir()
	rec := baseRecord("A")
	rec.AllocsPerOp = 2
	writeSnapshot(t, base, rec)
	rec.AllocsPerOp = 40 // within the +64 absolute slack
	writeSnapshot(t, cand, rec)
	if err := runBenchDiff(base, cand, 0.20, ""); err != nil {
		t.Fatalf("allocs jitter within slack flagged: %v", err)
	}
	rec.AllocsPerOp = 200 // beyond slack: a real reintroduction
	writeSnapshot(t, cand, rec)
	if err := runBenchDiff(base, cand, 0.20, ""); err == nil {
		t.Fatal("allocs growth beyond slack not flagged")
	}
}

func TestBenchDiffMissingWorkload(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	writeSnapshot(t, base, baseRecord("B"))
	writeSnapshot(t, cand, baseRecord("A"))
	if err := runBenchDiff(base, cand, 0.20, ""); err == nil {
		t.Fatal("missing workload not flagged")
	}
}

func TestBenchDiffFlagParsing(t *testing.T) {
	if err := run([]string{"-bench-diff", "only-one-dir"}); err == nil {
		t.Fatal("malformed -bench-diff accepted")
	}
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	writeSnapshot(t, cand, baseRecord("A"))
	if err := run([]string{"-bench-diff", base + "," + cand}); err != nil {
		t.Fatalf("identical snapshots flagged: %v", err)
	}
}

func TestBenchDiffRunConfigMismatch(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	rec := baseRecord("A")
	rec.Reps = 5 // counters averaged over a different key set: not comparable
	writeSnapshot(t, cand, rec)
	err := runBenchDiff(base, cand, 0.20, "")
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("reps mismatch not refused: %v", err)
	}
}

func TestBenchDiffSoftVsHardClassification(t *testing.T) {
	// ns/op-only regressions are soft (errSoftRegression, exit code 3 in
	// main): CI re-measures once before failing. Anything deterministic is
	// hard and must NOT match the soft sentinel.
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	rec := baseRecord("A")
	rec.NsPerOp = 2_000_000 // +100%: ns-only
	writeSnapshot(t, cand, rec)
	err := runBenchDiff(base, cand, 0.20, "")
	if !errors.Is(err, errSoftRegression) {
		t.Fatalf("ns/op-only regression not classified soft: %v", err)
	}

	rec.MessagesPerOp++ // add counter drift: now hard, even with the ns hit
	writeSnapshot(t, cand, rec)
	err = runBenchDiff(base, cand, 0.20, "")
	if err == nil || errors.Is(err, errSoftRegression) {
		t.Fatalf("counter drift classified soft (retryable): %v", err)
	}

	rec = baseRecord("A")
	rec.AllocsPerOp = 5000 // allocation discipline: hard
	writeSnapshot(t, cand, rec)
	err = runBenchDiff(base, cand, 0.20, "")
	if err == nil || errors.Is(err, errSoftRegression) {
		t.Fatalf("allocs regression classified soft (retryable): %v", err)
	}
}

func TestBenchDiffSummaryMarkdown(t *testing.T) {
	base, cand := t.TempDir(), t.TempDir()
	writeSnapshot(t, base, baseRecord("A"))
	writeSnapshot(t, base, baseRecord("B"))
	recA := baseRecord("A")
	recA.NsPerOp = 900_000 // improvement
	writeSnapshot(t, cand, recA)
	recB := baseRecord("B")
	recB.MessagesPerOp += 7 // drift
	writeSnapshot(t, cand, recB)
	sum := filepath.Join(t.TempDir(), "summary.md")
	if err := runBenchDiff(base, cand, 0.20, sum); err == nil {
		t.Fatal("drift not flagged")
	}
	data, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{"| workload |", "| A |", "| B |", "✅", "simulated counters drifted", "-10.0%"} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary markdown missing %q:\n%s", want, md)
		}
	}
	// Appends, like $GITHUB_STEP_SUMMARY expects.
	if err := runBenchDiff(base, cand, 0.20, sum); err == nil {
		t.Fatal("drift not flagged on rerun")
	}
	data2, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(data2) <= len(data) {
		t.Fatal("summary file did not append on second run")
	}
}
