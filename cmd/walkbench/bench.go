package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"distwalk"
)

// The -bench-json mode runs the headline walk workloads and writes one
// machine-readable BENCH_<name>.json per workload, so the perf trajectory
// (wall time, allocation discipline, and the paper's simulated round/
// message costs) is tracked across PRs by diffing checked-in or archived
// snapshots (see -bench-diff). Workloads run through the Service API on a
// single-worker pool: per-request determinism makes the simulated counters
// a pure function of (seed, request key), while ns/op and allocs/op
// measure the engine itself without scheduler noise.
//
// Every rep runs the SAME request key and the snapshot records the
// minimum-ns/op rep (see the measurement rule in the package comment):
// minimum, not mean, so transient scheduler/GC noise in one rep cannot
// manufacture a regression, and the simulated counters are asserted
// bit-identical across reps rather than averaged over distinct keys.

// benchRecord is the schema of a BENCH_*.json file.
type benchRecord struct {
	Name          string `json:"name"`
	Graph         string `json:"graph"`
	Seed          uint64 `json:"seed"`
	Reps          int    `json:"reps"`
	NsPerOp       int64  `json:"ns_per_op"`
	AllocsPerOp   int64  `json:"allocs_per_op"`
	BytesPerOp    int64  `json:"bytes_per_op"`
	RoundsPerOp   int64  `json:"rounds_per_op"`
	MessagesPerOp int64  `json:"messages_per_op"`
	WordsPerOp    int64  `json:"words_per_op"`
	// DroppedPerOp counts messages lost to the workload's fault plan
	// (receiver down + lossy links). Zero for fault-free workloads; the
	// key is absent from pre-fault baselines and decodes to 0, so old
	// snapshots stay comparable.
	DroppedPerOp int64 `json:"dropped_per_op,omitempty"`
	// CacheHitsPerOp / CacheMissesPerOp are the result-cache lookups one
	// op performs, for workloads running against a caching service. The
	// workload resets the cache at op start, so both are deterministic —
	// the diff gates them exactly, like the simulated counters: a changed
	// hit ratio means the digest or admission policy changed semantics.
	// Absent (0) for uncached workloads, so old snapshots stay comparable.
	CacheHitsPerOp   int64 `json:"cache_hits_per_op,omitempty"`
	CacheMissesPerOp int64 `json:"cache_misses_per_op,omitempty"`
}

// benchWorkload is one measured workload: run executes a single request
// against the shared service and returns its simulated cost.
type benchWorkload struct {
	name  string
	graph string
	svc   *distwalk.Service
	run   func(svc *distwalk.Service, key uint64) (distwalk.Cost, error)
	// cacheStats marks a workload whose service runs a result cache:
	// measure records the per-op hit/miss deltas and asserts they are
	// identical across reps, same as the simulated counters.
	cacheStats bool
}

func benchWorkloads(seed uint64) ([]benchWorkload, func(), error) {
	torus, err := distwalk.Torus(16, 16)
	if err != nil {
		return nil, nil, err
	}
	regular, err := distwalk.RandomRegular(64, 4, 9)
	if err != nil {
		return nil, nil, err
	}
	// One single-worker service per graph: requests stay serial (clean
	// ns/op) and every request key maps to a deterministic execution.
	torusSvc, err := distwalk.NewService(torus, seed, distwalk.WithWorkers(1))
	if err != nil {
		return nil, nil, err
	}
	regularSvc, err := distwalk.NewService(regular, seed, distwalk.WithWorkers(1))
	if err != nil {
		return nil, nil, err
	}
	// Batching service: a generous delay window so every 8-submission
	// burst coalesces by hitting the size threshold, keeping the batch
	// composition — and the simulated counters — deterministic per key.
	batchedSvc, err := distwalk.NewService(torus, seed, distwalk.WithWorkers(1),
		distwalk.WithBatching(8, time.Second))
	if err != nil {
		return nil, nil, err
	}
	// Sharded service: the ~10x larger torus where parallel per-round node
	// processing pays; 4 shards pinned (not GOMAXPROCS) so the workload is
	// the same on every machine — the simulated counters are bit-identical
	// to sequential execution regardless, which the shard identity tests
	// pin and this baseline's counters double-check against drift.
	bigTorus, err := distwalk.Torus(48, 48)
	if err != nil {
		return nil, nil, err
	}
	shardedSvc, err := distwalk.NewService(bigTorus, seed, distwalk.WithWorkers(1),
		distwalk.WithShards(4))
	if err != nil {
		return nil, nil, err
	}
	// Faulty service: the same torus with a fixed deterministic fault plan
	// (a churn window, two lossy links, one slow link) and retries enabled.
	// The workload measures what robustness costs: the recorded counters are
	// the surviving attempt's, so rounds/messages track the fault-handling
	// overhead and dropped_per_op the injected loss — all still bit-exact
	// per key, because the plan, the drop ordinals and the attempt salting
	// are deterministic.
	faultPlan := &distwalk.FaultPlan{
		Seed:  7,
		Churn: []distwalk.FaultChurn{{Node: 37, From: 60, To: 90}},
		LinkDrops: []distwalk.FaultLinkDrop{
			{From: 10, To: torus.Neighbors(10)[0].To, Prob: 0.02},
			{From: 200, To: torus.Neighbors(200)[1].To, Prob: 0.02},
		},
		LinkDelays: []distwalk.FaultLinkDelay{
			{From: 100, To: torus.Neighbors(100)[0].To, Rounds: 1},
		},
	}
	faultySvc, err := distwalk.NewService(torus, seed, distwalk.WithWorkers(1),
		distwalk.WithFaultPlan(faultPlan), distwalk.WithRetry(3), distwalk.WithBackoff(0),
		distwalk.WithPartialResults())
	if err != nil {
		return nil, nil, err
	}
	// Caching service: the same torus fronted by the result cache. The
	// workload below resets the cache at the top of every op, so each op
	// pays the same 4 cold executions and serves the same 12 repeats from
	// the store — the amortization, not cache residency across ops, is
	// what the snapshot measures.
	cachedSvc, err := distwalk.NewService(torus, seed, distwalk.WithWorkers(1),
		distwalk.WithResultCache(8<<20))
	if err != nil {
		return nil, nil, err
	}
	// Cluster service: two real distwalkd processes on loopback ports.
	// Same graph and request shape as ManyRandomWalks, so the cluster
	// snapshot's counters must match that baseline's bit for bit (the
	// wire protocol is invisible to the simulation) and the ns/op delta
	// IS the protocol cost: framing, TCP, two round trips per round.
	addrs, stopEngines, err := startClusterEngines(2)
	if err != nil {
		return nil, nil, err
	}
	clusterSvc, err := distwalk.NewService(torus, seed, distwalk.WithWorkers(1),
		distwalk.WithCluster(addrs...))
	if err != nil {
		stopEngines()
		return nil, nil, err
	}
	cleanup := func() {
		clusterSvc.Close()
		stopEngines()
	}
	ctx := context.Background()
	return []benchWorkload{
		{
			name: "SingleRandomWalk", graph: "torus16x16", svc: torusSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				res, err := svc.SingleRandomWalk(ctx, key, 0, 4096)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			name: "ManyRandomWalks", graph: "torus16x16", svc: torusSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				sources := make([]distwalk.NodeID, 8)
				res, err := svc.ManyRandomWalks(ctx, key, sources, 1024)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			// Batching scheduler headline: 8 concurrent SubmitWalk requests
			// with the same shape as the SingleRandomWalk workload (source
			// 0, ℓ=4096) coalesce into one MANY-RANDOM-WALKS execution. The
			// recorded cost is the amortized per-walk share of the batch —
			// directly comparable against BENCH_SingleRandomWalk.json's
			// rounds/messages per op, which is what batching amortizes.
			name: "BatchedWalks", graph: "torus16x16", svc: batchedSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				const k = 8
				handles := make([]*distwalk.WalkHandle, k)
				for i := range handles {
					h, err := svc.SubmitWalk(ctx, key*k+uint64(i), 0, 4096)
					if err != nil {
						return distwalk.Cost{}, err
					}
					handles[i] = h
				}
				for _, h := range handles {
					if _, err := h.Result(); err != nil {
						return distwalk.Cost{}, err
					}
				}
				return handles[0].Batch().Amortized, nil
			},
		},
		{
			// Sharded engine headline: MANY-RANDOM-WALKS on the 2304-node
			// torus with per-round processing split across 4 shard workers.
			// Counters must exactly match what a sequential run would cost;
			// ns/op tracks how well sharding converts cores into wall-clock.
			name: "ShardedManyWalks", graph: "torus48x48/4shards", svc: shardedSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				sources := make([]distwalk.NodeID, 8)
				for i := range sources {
					sources[i] = distwalk.NodeID(i * 288)
				}
				res, err := svc.ManyRandomWalks(ctx, key, sources, 2048)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			// Cluster headline: the ManyRandomWalks request with the shard
			// transport living in two distwalkd processes. rounds_per_op
			// must equal BENCH_ManyRandomWalks.json's exactly; the summary
			// line's rounds/s is the protocol's sustained round rate over
			// real loopback TCP.
			name: "ClusterManyWalks", graph: "torus16x16/2engines", svc: clusterSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				sources := make([]distwalk.NodeID, 8)
				res, err := svc.ManyRandomWalks(ctx, key, sources, 1024)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			// Serving-tier headline: repeated-key traffic through the result
			// cache. Each op starts cold (InvalidateCache) and issues 16
			// ManyRandomWalks requests over 4 distinct keys: 4 misses execute,
			// 12 hits come back as deep copies with the stored execution's
			// bit-identical cost. The recorded counters are the 16-request
			// sum, so rounds_per_op is exactly 4x one execution's — the other
			// 12 requests' rounds are what caching saved — and ns/op divided
			// by 16 is the amortized per-request latency the summary line
			// prints. The 4/12 split is pinned by the diff's cache-counter
			// gate.
			name: "CachedManyWalks", graph: "torus16x16/cache", svc: cachedSvc,
			cacheStats: true,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				if err := svc.InvalidateCache(); err != nil {
					return distwalk.Cost{}, err
				}
				var total distwalk.Cost
				sources := make([]distwalk.NodeID, 8)
				for i := 0; i < 16; i++ {
					res, err := svc.ManyRandomWalks(ctx, key*4+uint64(i%4), sources, 1024)
					if err != nil {
						return distwalk.Cost{}, err
					}
					total.Add(res.Cost)
				}
				return total, nil
			},
		},
		{
			// Robustness headline: MANY-RANDOM-WALKS through the fault plan
			// above, with up to 3 retry attempts re-seeding killed requests.
			name: "FaultyManyWalks", graph: "torus16x16/faults", svc: faultySvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				sources := make([]distwalk.NodeID, 8)
				res, err := svc.ManyRandomWalks(ctx, key, sources, 1024)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			name: "NaiveWalk", graph: "torus16x16", svc: torusSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				res, err := svc.NaiveWalk(ctx, key, 0, 2048)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			name: "RandomSpanningTree", graph: "torus16x16", svc: torusSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				res, err := svc.RandomSpanningTree(ctx, key, 0)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			// Regeneration hot path (Section 2.2): one walk plus the full
			// parallel replay so every node learns its positions.
			name: "WalkTrace", graph: "torus16x16", svc: torusSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				walk, trace, err := svc.WalkTrace(ctx, key, 0, 2048)
				if err != nil {
					return distwalk.Cost{}, err
				}
				cost := walk.Cost
				cost.Add(trace.Cost)
				return cost, nil
			},
		},
		{
			// GET-MORE-WALKS hot path: a deliberately under-provisioned
			// Phase 1 (one coupon per node, pinned short λ) forces dozens of
			// refills per batch, measuring Algorithm 2's token aggregation
			// and the flow-ledger writes.
			name: "RefillWalks", graph: "torus16x16", svc: torusSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				p := distwalk.DefaultParams()
				p.UniformCounts = true
				p.Lambda = 64
				sources := make([]distwalk.NodeID, 16)
				res, err := svc.ManyRandomWalks(ctx, key, sources, 1024, distwalk.WithParams(p))
				if err != nil {
					return distwalk.Cost{}, err
				}
				return res.Cost, nil
			},
		},
		{
			name: "EstimateMixingTime", graph: "regular64x4", svc: regularSvc,
			run: func(svc *distwalk.Service, key uint64) (distwalk.Cost, error) {
				est, err := svc.EstimateMixingTime(ctx, key, 0)
				if err != nil {
					return distwalk.Cost{}, err
				}
				return est.Cost, nil
			},
		},
	}, cleanup, nil
}

// runBenchJSON measures every workload and writes BENCH_<name>.json into
// dir, printing a one-line summary per workload.
func runBenchJSON(dir string, seed uint64, reps int) error {
	if reps < 1 {
		reps = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	workloads, cleanup, err := benchWorkloads(seed)
	if err != nil {
		return err
	}
	defer cleanup()
	for _, wl := range workloads {
		rec, err := measure(wl, seed, reps)
		if err != nil {
			return fmt.Errorf("%s: %w", wl.name, err)
		}
		path := filepath.Join(dir, "BENCH_"+wl.name+".json")
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-20s %12d ns/op %10d allocs/op %8d rounds/op %10d msgs/op %9.0f rounds/s  -> %s\n",
			wl.name, rec.NsPerOp, rec.AllocsPerOp, rec.RoundsPerOp, rec.MessagesPerOp,
			float64(rec.RoundsPerOp)/(float64(rec.NsPerOp)/1e9), path)
		if reqs := rec.CacheHitsPerOp + rec.CacheMissesPerOp; reqs > 0 {
			fmt.Printf("%-20s %12.1f%% hit ratio (%d hits / %d requests), %d ns/request amortized\n",
				"", float64(rec.CacheHitsPerOp)*100/float64(reqs),
				rec.CacheHitsPerOp, reqs, rec.NsPerOp/reqs)
		}
	}
	return nil
}

func measure(wl benchWorkload, seed uint64, reps int) (*benchRecord, error) {
	// The measured request key. Every rep re-runs it: per-key determinism
	// makes the simulated cost a constant, so reps only sample wall-clock
	// and allocation noise — and the min-ns rep is the cleanest sample.
	const key = 1
	// Warm-up op with the measured key: pull one-time lazy work (tree
	// slabs, ring growth) out of the measured window so allocs/op reflects
	// steady state.
	if _, err := wl.run(wl.svc, key); err != nil {
		return nil, err
	}
	var (
		refCost            distwalk.Cost
		refHits, refMisses int64
		best               *benchRecord
	)
	for i := 0; i < reps; i++ {
		var cacheBefore distwalk.CacheStats
		if wl.cacheStats {
			cacheBefore = wl.svc.Stats().Cache
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		cost, err := wl.run(wl.svc, key)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, err
		}
		var hits, misses int64
		if wl.cacheStats {
			cacheAfter := wl.svc.Stats().Cache
			hits = cacheAfter.Hits - cacheBefore.Hits
			misses = cacheAfter.Misses - cacheBefore.Misses
		}
		if i == 0 {
			refCost, refHits, refMisses = cost, hits, misses
		} else if cost != refCost {
			return nil, fmt.Errorf(
				"simulated counters drifted across reps of key %d (rep %d: %+v, rep 1: %+v): per-key determinism is broken",
				key, i+1, cost, refCost)
		} else if hits != refHits || misses != refMisses {
			// The workload resets the cache at op start, so every rep must
			// replay the same hit/miss sequence.
			return nil, fmt.Errorf(
				"cache counters drifted across reps of key %d (rep %d: %d hits %d misses, rep 1: %d hits %d misses)",
				key, i+1, hits, misses, refHits, refMisses)
		}
		rec := &benchRecord{
			Name:             wl.name,
			Graph:            wl.graph,
			Seed:             seed,
			Reps:             reps,
			NsPerOp:          elapsed.Nanoseconds(),
			AllocsPerOp:      int64(after.Mallocs - before.Mallocs),
			BytesPerOp:       int64(after.TotalAlloc - before.TotalAlloc),
			RoundsPerOp:      int64(cost.Rounds),
			MessagesPerOp:    cost.Messages,
			WordsPerOp:       cost.Words,
			DroppedPerOp:     cost.Faults.Dropped + cost.Faults.LinkDropped,
			CacheHitsPerOp:   hits,
			CacheMissesPerOp: misses,
		}
		if best == nil || rec.NsPerOp < best.NsPerOp {
			best = rec
		}
	}
	return best, nil
}
