package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E3 is the fastest experiment (~20ms): a full end-to-end exercise of
	// flag parsing, selection and execution.
	if err := run([]string{"-e", "E3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentList(t *testing.T) {
	if err := run([]string{"-e", "E3, E4"}); err != nil {
		t.Fatal(err)
	}
}
