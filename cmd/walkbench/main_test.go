package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E3 is the fastest experiment (~20ms): a full end-to-end exercise of
	// flag parsing, selection and execution.
	if err := run([]string{"-e", "E3", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentList(t *testing.T) {
	if err := run([]string{"-e", "E3, E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-bench-json", dir, "-bench-reps", "1", "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"SingleRandomWalk", "ManyRandomWalks", "BatchedWalks", "NaiveWalk",
		"RandomSpanningTree", "EstimateMixingTime", "ClusterManyWalks",
	} {
		path := filepath.Join(dir, "BENCH_"+name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing snapshot: %v", err)
		}
		var rec benchRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if rec.Name != name || rec.Reps != 1 {
			t.Fatalf("%s: wrong record %+v", path, rec)
		}
		if rec.RoundsPerOp <= 0 || rec.MessagesPerOp <= 0 || rec.NsPerOp <= 0 {
			t.Fatalf("%s: empty metrics %+v", path, rec)
		}
	}
}
