package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The -bench-diff mode compares two BENCH_*.json snapshot directories —
// typically the committed baseline (bench/baseline) against a fresh
// -bench-json run — and fails when the candidate regresses. Three checks:
//
//   - ns/op may not regress by more than the tolerance (default 20%);
//     improvements and missing-in-baseline workloads only warn.
//   - allocs/op may not regress by more than the same tolerance, plus a
//     small absolute slack (allocAbsSlack) so that near-zero-alloc
//     workloads do not flap on runtime noise. Allocation discipline is a
//     ratchet: once a workload goes flat, a change that quietly
//     reintroduces per-op allocation fails here before it shows up as a
//     wall-time regression.
//   - The simulated counters (rounds/messages/words per op) are
//     deterministic in (seed, key), so any drift at all is a semantic
//     change to the cost model and fails the diff; regenerate the
//     baseline deliberately when the change is intended.

// loadSnapshots reads every BENCH_*.json in dir, keyed by workload name.
func loadSnapshots(dir string) (map[string]*benchRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	out := make(map[string]*benchRecord, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		rec := &benchRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("%s: snapshot has no name", p)
		}
		out[rec.Name] = rec
	}
	return out, nil
}

// allocAbsSlack is the absolute allocs/op headroom granted on top of the
// fractional tolerance: runtime-internal allocations (GC metadata, map
// growth in the harness, channel ops of the service pool) jitter by a few
// dozen per op, which would otherwise dominate the ratio on workloads
// whose own allocations are near zero.
const allocAbsSlack = 64

// diffSnapshots compares candidate against baseline and returns the list
// of human-readable regressions (empty = pass). tol is the allowed
// fractional growth of ns/op and allocs/op, e.g. 0.20 for +20%.
func diffSnapshots(baseline, candidate map[string]*benchRecord, tol float64) (regressions, notes []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cand, ok := candidate[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from candidate", name))
			continue
		}
		if base.Seed != cand.Seed || base.Reps != cand.Reps {
			// The simulated counters are averages over request keys
			// 1..reps derived from the seed — comparable only when both
			// match. Refuse rather than misreport a cost-model drift.
			regressions = append(regressions, fmt.Sprintf(
				"%s: run configs differ (seed %d reps %d vs seed %d reps %d); re-run -bench-json with the baseline's -seed/-bench-reps",
				name, base.Seed, base.Reps, cand.Seed, cand.Reps))
			continue
		}
		if base.NsPerOp > 0 {
			ratio := float64(cand.NsPerOp) / float64(base.NsPerOp)
			line := fmt.Sprintf("%s: ns/op %d -> %d (%.2fx)", name, base.NsPerOp, cand.NsPerOp, ratio)
			if ratio > 1+tol {
				regressions = append(regressions, line+fmt.Sprintf(" exceeds +%.0f%% tolerance", tol*100))
			} else {
				notes = append(notes, line)
			}
		}
		// Unlike ns/op, an allocs/op baseline of 0 is meaningful (a fully
		// warm workload), so the gate always applies; the absolute slack
		// keeps a zero baseline from flagging runtime noise.
		allowed := int64(float64(base.AllocsPerOp)*(1+tol)) + allocAbsSlack
		line := fmt.Sprintf("%s: allocs/op %d -> %d", name, base.AllocsPerOp, cand.AllocsPerOp)
		if cand.AllocsPerOp > allowed {
			regressions = append(regressions, line+fmt.Sprintf(
				" exceeds +%.0f%%+%d tolerance (allocation discipline regressed)", tol*100, allocAbsSlack))
		} else {
			notes = append(notes, line)
		}
		if cand.RoundsPerOp != base.RoundsPerOp || cand.MessagesPerOp != base.MessagesPerOp ||
			cand.WordsPerOp != base.WordsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s: simulated counters drifted: rounds %d -> %d, messages %d -> %d, words %d -> %d (cost model changed; regenerate the baseline if intended)",
				name, base.RoundsPerOp, cand.RoundsPerOp, base.MessagesPerOp, cand.MessagesPerOp,
				base.WordsPerOp, cand.WordsPerOp))
		}
	}
	for name := range candidate {
		if _, ok := baseline[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: new workload (not in baseline)", name))
		}
	}
	return regressions, notes
}

// runBenchDiff loads both directories, prints the comparison, and returns
// an error when the candidate regressed.
func runBenchDiff(baselineDir, candidateDir string, tol float64) error {
	baseline, err := loadSnapshots(baselineDir)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	candidate, err := loadSnapshots(candidateDir)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	regressions, notes := diffSnapshots(baseline, candidate, tol)
	for _, n := range notes {
		fmt.Println("ok:", n)
	}
	for _, r := range regressions {
		fmt.Println("REGRESSION:", r)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) against %s", len(regressions), baselineDir)
	}
	fmt.Printf("bench diff clean: %d workloads within +%.0f%% of %s\n", len(baseline), tol*100, baselineDir)
	return nil
}
