package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The -bench-diff mode compares two BENCH_*.json snapshot directories —
// typically the committed baseline (bench/baseline) against a fresh
// -bench-json run — and fails when the candidate regresses. Three checks:
//
//   - ns/op may not regress by more than the tolerance (default 20%);
//     improvements and missing-in-baseline workloads only warn.
//   - allocs/op may not regress by more than the same tolerance, plus a
//     small absolute slack (allocAbsSlack) so that near-zero-alloc
//     workloads do not flap on runtime noise. Allocation discipline is a
//     ratchet: once a workload goes flat, a change that quietly
//     reintroduces per-op allocation fails here before it shows up as a
//     wall-time regression.
//   - The simulated counters (rounds/messages/words per op) are
//     deterministic in (seed, key), so any drift at all is a semantic
//     change to the cost model and fails the diff; regenerate the
//     baseline deliberately when the change is intended.
//
// Failures are classified for CI: ns/op-only regressions are *soft*
// (wall-time is machine-noise-prone, so walkbench exits with code 3 and CI
// retries the measurement once), while counter drift, allocation
// regressions, missing workloads and config mismatches are *hard*
// (deterministic; exit code 1, no retry). With -bench-summary FILE a
// markdown table of the per-workload deltas is appended to FILE
// (pointed at $GITHUB_STEP_SUMMARY in CI).

// errSoftRegression marks a diff failure caused only by ns/op growth —
// re-measuring may clear it; nothing semantic changed.
var errSoftRegression = errors.New("ns/op-only regression (wall-time noise candidate)")

// loadSnapshots reads every BENCH_*.json in dir, keyed by workload name.
func loadSnapshots(dir string) (map[string]*benchRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	out := make(map[string]*benchRecord, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		rec := &benchRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if rec.Name == "" {
			return nil, fmt.Errorf("%s: snapshot has no name", p)
		}
		out[rec.Name] = rec
	}
	return out, nil
}

// allocAbsSlack is the absolute allocs/op headroom granted on top of the
// fractional tolerance: runtime-internal allocations (GC metadata, map
// growth in the harness, channel ops of the service pool) jitter by a few
// dozen per op, which would otherwise dominate the ratio on workloads
// whose own allocations are near zero.
const allocAbsSlack = 64

// diffRow is one workload's comparison, for the report and the markdown
// summary.
type diffRow struct {
	name       string
	base, cand *benchRecord
	problems   []string // human-readable regressions (empty = ok)
	soft       bool     // true when ALL problems are ns/op-only
}

// diffSnapshots compares candidate against baseline. hard collects the
// deterministic regressions (counter drift, allocation discipline, missing
// workloads, config mismatches), soft the ns/op-only ones, notes the
// passing lines.
func diffSnapshots(baseline, candidate map[string]*benchRecord, tol float64) (rows []diffRow, hard, soft, notes []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		row := diffRow{name: name, base: base, cand: candidate[name], soft: true}
		cand, ok := candidate[name]
		if !ok {
			msg := fmt.Sprintf("%s: missing from candidate", name)
			hard = append(hard, msg)
			row.problems = append(row.problems, "missing from candidate")
			row.soft = false
			rows = append(rows, row)
			continue
		}
		if base.Seed != cand.Seed || base.Reps != cand.Reps {
			// The simulated counters are pinned to the request keys derived
			// from the seed — comparable only when both configs match.
			// Refuse rather than misreport a cost-model drift.
			msg := fmt.Sprintf(
				"%s: run configs differ (seed %d reps %d vs seed %d reps %d); re-run -bench-json with the baseline's -seed/-bench-reps",
				name, base.Seed, base.Reps, cand.Seed, cand.Reps)
			hard = append(hard, msg)
			row.problems = append(row.problems, "run config mismatch")
			row.soft = false
			rows = append(rows, row)
			continue
		}
		if base.NsPerOp > 0 {
			ratio := float64(cand.NsPerOp) / float64(base.NsPerOp)
			line := fmt.Sprintf("%s: ns/op %d -> %d (%.2fx)", name, base.NsPerOp, cand.NsPerOp, ratio)
			if ratio > 1+tol {
				soft = append(soft, line+fmt.Sprintf(" exceeds +%.0f%% tolerance", tol*100))
				row.problems = append(row.problems, fmt.Sprintf("ns/op +%.0f%%", (ratio-1)*100))
			} else {
				notes = append(notes, line)
			}
		}
		// Unlike ns/op, an allocs/op baseline of 0 is meaningful (a fully
		// warm workload), so the gate always applies; the absolute slack
		// keeps a zero baseline from flagging runtime noise.
		allowed := int64(float64(base.AllocsPerOp)*(1+tol)) + allocAbsSlack
		line := fmt.Sprintf("%s: allocs/op %d -> %d", name, base.AllocsPerOp, cand.AllocsPerOp)
		if cand.AllocsPerOp > allowed {
			hard = append(hard, line+fmt.Sprintf(
				" exceeds +%.0f%%+%d tolerance (allocation discipline regressed)", tol*100, allocAbsSlack))
			row.problems = append(row.problems, "allocs/op regressed")
			row.soft = false
		} else {
			notes = append(notes, line)
		}
		if cand.RoundsPerOp != base.RoundsPerOp || cand.MessagesPerOp != base.MessagesPerOp ||
			cand.WordsPerOp != base.WordsPerOp || cand.DroppedPerOp != base.DroppedPerOp {
			hard = append(hard, fmt.Sprintf(
				"%s: simulated counters drifted: rounds %d -> %d, messages %d -> %d, words %d -> %d, dropped %d -> %d (cost model changed; regenerate the baseline if intended)",
				name, base.RoundsPerOp, cand.RoundsPerOp, base.MessagesPerOp, cand.MessagesPerOp,
				base.WordsPerOp, cand.WordsPerOp, base.DroppedPerOp, cand.DroppedPerOp))
			row.problems = append(row.problems, "simulated counters drifted")
			row.soft = false
		}
		// The cache hit/miss split is deterministic the same way (the
		// workload replays fixed repeated-key traffic from a cold cache),
		// so any drift means the request digest or the admission policy
		// changed semantics — a hard failure, like the counters above.
		if cand.CacheHitsPerOp != base.CacheHitsPerOp || cand.CacheMissesPerOp != base.CacheMissesPerOp {
			hard = append(hard, fmt.Sprintf(
				"%s: cache counters drifted: hits %d -> %d, misses %d -> %d (digest or admission semantics changed; regenerate the baseline if intended)",
				name, base.CacheHitsPerOp, cand.CacheHitsPerOp,
				base.CacheMissesPerOp, cand.CacheMissesPerOp))
			row.problems = append(row.problems, "cache counters drifted")
			row.soft = false
		}
		rows = append(rows, row)
	}
	for name := range candidate {
		if _, ok := baseline[name]; !ok {
			notes = append(notes, fmt.Sprintf("%s: new workload (not in baseline)", name))
		}
	}
	return rows, hard, soft, notes
}

// writeSummaryMD appends a markdown table of the per-workload deltas to
// path ($GITHUB_STEP_SUMMARY in CI renders it on the run page).
func writeSummaryMD(path string, rows []diffRow, tol float64) error {
	var b strings.Builder
	b.WriteString("### Bench diff vs committed baseline\n\n")
	b.WriteString("| workload | ns/op (base → cand) | Δns | allocs/op | rounds/op | messages/op | hit % | status |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		status := "✅ ok"
		if len(r.problems) > 0 {
			status = "❌ " + strings.Join(r.problems, "; ")
			if r.soft {
				status = "⚠️ " + strings.Join(r.problems, "; ")
			}
		}
		if r.cand == nil {
			fmt.Fprintf(&b, "| %s | %d → — | — | — | — | — | — | %s |\n", r.name, r.base.NsPerOp, status)
			continue
		}
		delta := "—"
		if r.base.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(r.cand.NsPerOp)/float64(r.base.NsPerOp)-1)*100)
		}
		// Hit ratio only applies to caching workloads; everything else has
		// no cache lookups at all and shows a dash.
		hitRatio := "—"
		if reqs := r.cand.CacheHitsPerOp + r.cand.CacheMissesPerOp; reqs > 0 {
			hitRatio = fmt.Sprintf("%.0f%%", float64(r.cand.CacheHitsPerOp)*100/float64(reqs))
		}
		fmt.Fprintf(&b, "| %s | %d → %d | %s | %d → %d | %d | %d | %s | %s |\n",
			r.name, r.base.NsPerOp, r.cand.NsPerOp, delta,
			r.base.AllocsPerOp, r.cand.AllocsPerOp,
			r.cand.RoundsPerOp, r.cand.MessagesPerOp, hitRatio, status)
	}
	fmt.Fprintf(&b, "\nns/op tolerance ±%.0f%%; simulated counters must match exactly.\n\n", tol*100)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(b.String())
	return err
}

// runBenchDiff loads both directories, prints the comparison (and appends
// the markdown summary when summaryPath is non-empty), and returns an
// error when the candidate regressed: one wrapping errSoftRegression
// (exit code 3) when only ns/op grew, a plain error (exit code 1) on any
// deterministic regression.
func runBenchDiff(baselineDir, candidateDir string, tol float64, summaryPath string) error {
	baseline, err := loadSnapshots(baselineDir)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	candidate, err := loadSnapshots(candidateDir)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	rows, hard, soft, notes := diffSnapshots(baseline, candidate, tol)
	if summaryPath != "" {
		if err := writeSummaryMD(summaryPath, rows, tol); err != nil {
			return fmt.Errorf("writing summary: %w", err)
		}
	}
	for _, n := range notes {
		fmt.Println("ok:", n)
	}
	for _, r := range soft {
		fmt.Println("REGRESSION (ns/op):", r)
	}
	for _, r := range hard {
		fmt.Println("REGRESSION:", r)
	}
	switch {
	case len(hard) > 0:
		return fmt.Errorf("%d regression(s) against %s", len(hard)+len(soft), baselineDir)
	case len(soft) > 0:
		return fmt.Errorf("%d %w against %s", len(soft), errSoftRegression, baselineDir)
	}
	fmt.Printf("bench diff clean: %d workloads within +%.0f%% of %s\n", len(baseline), tol*100, baselineDir)
	return nil
}
