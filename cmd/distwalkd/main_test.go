package main

import (
	"errors"
	"io"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	cases := map[string]struct {
		args []string
		want error
	}{
		"bad shard":       {[]string{"-shard", "-2"}, errUsage},
		"positional args": {[]string{"extra"}, errUsage},
		"unknown flag":    {[]string{"-bogus"}, errUsage},
		"bad listen":      {[]string{"-listen", "256.0.0.1:bad"}, errListen},
		"bad debug addr":  {[]string{"-listen", "127.0.0.1:0", "-debug-addr", "256.0.0.1:bad"}, errListen},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if !errors.Is(err, tc.want) {
				t.Fatalf("run(%v) = %v, want %v", tc.args, err, tc.want)
			}
		})
	}
}
