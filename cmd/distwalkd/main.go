// Command distwalkd is a shard-engine server for cluster mode: it hosts
// the transport layer (edge queues, fault charging, delivery) of one or
// more CONGEST shards and serves them to distwalk clients over the
// internal/wire protocol. A cluster of S distwalkd processes plus a
// client using WithCluster executes runs bit-identically to the same
// client using WithShards(S) in-process.
//
// Usage:
//
//	distwalkd -listen 127.0.0.1:7070
//	distwalkd -listen 127.0.0.1:0 -shard 1 -debug-addr 127.0.0.1:8080
//
// The process prints "distwalkd listening on <addr>" once the listener is
// up (with -listen :0, that line is how supervisors learn the port). A
// first SIGINT/SIGTERM starts a graceful drain — in-flight runs finish,
// new sessions are refused — and a second one force-closes everything.
// With -debug-addr, the server's counters are published as the expvar
// "distwalkd" at http://<debug-addr>/debug/vars.
//
// -handshake-timeout bounds the Hello/Welcome exchange of each new
// session; -idle-timeout (off by default) reaps sessions that go silent —
// clients with heartbeats enabled keep their idle sessions alive, so set
// the reaper above the clients' heartbeat interval.
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"distwalk/internal/wire"
)

// Typed top-level failures, mapped to distinct exit codes so supervisors
// and the cluster tests can tell misuse from runtime failure: 2 for flag
// or usage errors, 1 for everything else.
var (
	errUsage  = errors.New("distwalkd: invalid usage")
	errListen = errors.New("distwalkd: cannot listen")
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distwalkd:", err)
		if errors.Is(err, errUsage) || errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// publishOnce guards the process-global expvar name (expvar.Publish
// panics on duplicates; tests call run more than once per process).
var publishOnce sync.Once

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("distwalkd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7070", "TCP address to serve engine sessions on (host:0 picks a free port)")
		debugAddr = fs.String("debug-addr", "", "optional HTTP address exposing the server counters at /debug/vars")
		shard     = fs.Int("shard", -1, "pin this server to one shard index of the cluster plan (-1 serves any shard)")
		hsTO      = fs.Duration("handshake-timeout", wire.DefaultHandshakeTimeout, "bound on the Hello/Welcome exchange of a new session")
		idleTO    = fs.Duration("idle-timeout", 0, "reap sessions that send no frame (heartbeats included) for this long; 0 never reaps — set it above the clients' heartbeat interval")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %w", errUsage, err)
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("%w: unexpected arguments %q", errUsage, fs.Args())
	}
	if *shard < -1 {
		return fmt.Errorf("%w: -shard %d out of range (want -1 for any shard, or a plan index >= 0)", errUsage, *shard)
	}
	if *hsTO <= 0 {
		return fmt.Errorf("%w: -handshake-timeout %v must be positive", errUsage, *hsTO)
	}
	if *idleTO < 0 {
		return fmt.Errorf("%w: -idle-timeout %v must be >= 0 (0 disables reaping)", errUsage, *idleTO)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("%w: %w", errListen, err)
	}
	srv := wire.NewServer(wire.ServerConfig{
		PinShard:         *shard,
		HandshakeTimeout: *hsTO,
		IdleTimeout:      *idleTO,
	})

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("%w: -debug-addr: %w", errListen, err)
		}
		publishOnce.Do(func() {
			expvar.Publish("distwalkd", expvar.Func(func() any { return srv.Metrics().Snapshot() }))
		})
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		debugSrv = &http.Server{Handler: mux}
		go debugSrv.Serve(dln)
		fmt.Fprintf(stdout, "distwalkd debug on %s\n", dln.Addr())
	}

	// First signal: drain (in-flight runs finish, new sessions refused).
	// Second signal: force-close.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(stdout, "distwalkd draining")
		go srv.Shutdown()
		<-sig
		fmt.Fprintln(stdout, "distwalkd force close")
		srv.Close()
	}()

	fmt.Fprintf(stdout, "distwalkd listening on %s\n", ln.Addr())
	err = srv.Serve(ln)
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err != nil {
		return fmt.Errorf("distwalkd: serve: %w", err)
	}
	fmt.Fprintln(stdout, "distwalkd stopped")
	return nil
}
