// Command rstgen samples a uniformly random spanning tree of a generated
// graph with the distributed Aldous-Broder driver (Section 4.1 of the
// paper) and prints the tree edges plus the simulated round cost.
//
// Usage:
//
//	rstgen -family torus -n 64 -seed 1
//	rstgen -family rgg -n 200 -edges
//	rstgen -family candy -n 128 -timeout 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"distwalk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rstgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rstgen", flag.ContinueOnError)
	var (
		family  = fs.String("family", "torus", "graph family: torus|grid|cycle|complete|candy|regular|er|rgg|hypercube")
		n       = fs.Int("n", 64, "approximate node count")
		seed    = fs.Uint64("seed", 1, "random seed")
		key     = fs.Uint64("key", 1, "request key (same key, same tree)")
		root    = fs.Int("root", 0, "tree root")
		edges   = fs.Bool("edges", false, "print every tree edge")
		timeout = fs.Duration("timeout", 0, "abort the sampling after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, desc, err := makeGraph(*family, *n, *seed)
	if err != nil {
		if errors.Is(err, distwalk.ErrRetryExhausted) {
			return fmt.Errorf("%w (raise -n or pick denser parameters)", err)
		}
		return err
	}
	svc, err := distwalk.NewService(g, *seed)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := svc.RandomSpanningTree(ctx, *key, distwalk.NodeID(*root))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("sampling exceeded %v: %w", *timeout, err)
		}
		return err
	}
	if err := distwalk.ValidateSpanningTree(g, res.Root, res.Parent); err != nil {
		return fmt.Errorf("sampled tree failed validation: %w", err)
	}
	fmt.Printf("graph: %s (n=%d, m=%d)\n", desc, g.N(), g.M())
	fmt.Printf("root: %d\n", res.Root)
	fmt.Printf("covering walk length: %d (phases=%d, attempts=%d)\n",
		res.WalkLength, res.Phases, res.Attempts)
	fmt.Printf("simulated cost: %d rounds, %d messages\n",
		res.Cost.Rounds, res.Cost.Messages)
	if *edges {
		for v, p := range res.Parent {
			if p != distwalk.None {
				fmt.Printf("edge %d - %d\n", p, v)
			}
		}
	}
	return nil
}

func makeGraph(family string, n int, seed uint64) (*distwalk.Graph, string, error) {
	side := intSqrt(n)
	switch family {
	case "torus":
		g, err := distwalk.Torus(side, side)
		return g, fmt.Sprintf("torus %dx%d", side, side), err
	case "grid":
		g, err := distwalk.Grid(side, side)
		return g, fmt.Sprintf("grid %dx%d", side, side), err
	case "cycle":
		g, err := distwalk.Cycle(n)
		return g, fmt.Sprintf("cycle(%d)", n), err
	case "complete":
		g, err := distwalk.Complete(n)
		return g, fmt.Sprintf("K%d", n), err
	case "candy":
		g, err := distwalk.Candy(n/2, n/2)
		return g, fmt.Sprintf("candy(%d,%d)", n/2, n/2), err
	case "regular":
		g, err := distwalk.RandomRegular(n-n%2, 4, seed)
		return g, fmt.Sprintf("4-regular(%d)", n-n%2), err
	case "er":
		g, err := distwalk.ErdosRenyi(n, 8/float64(n), seed)
		return g, fmt.Sprintf("G(%d, 8/n)", n), err
	case "rgg":
		g, err := distwalk.GeometricRandom(n, 0, seed)
		return g, fmt.Sprintf("RGG(%d)", n), err
	case "hypercube":
		d := 1
		for 1<<(d+1) <= n {
			d++
		}
		g, err := distwalk.Hypercube(d)
		return g, fmt.Sprintf("hypercube(%d)", d), err
	}
	return nil, "", fmt.Errorf("unknown family %q", family)
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	if s < 3 {
		s = 3
	}
	return s
}
