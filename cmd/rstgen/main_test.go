package main

import "testing"

func TestMakeGraphFamilies(t *testing.T) {
	for _, fam := range []string{
		"torus", "grid", "cycle", "complete", "candy", "regular", "er", "rgg", "hypercube",
	} {
		g, desc, err := makeGraph(fam, 36, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() < 2 || desc == "" {
			t.Fatalf("%s: n=%d desc=%q", fam, g.N(), desc)
		}
		if !g.Connected() {
			t.Fatalf("%s produced a disconnected graph", fam)
		}
	}
	if _, _, err := makeGraph("moebius", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-family", "complete", "-n", "8", "-edges"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFamily(t *testing.T) {
	if err := run([]string{"-family", "moebius"}); err == nil {
		t.Fatal("bad family accepted")
	}
}

func TestIntSqrt(t *testing.T) {
	cases := map[int]int{0: 3, 9: 3, 35: 5, 36: 6, 100: 10}
	for in, want := range cases {
		if got := intSqrt(in); got != want {
			t.Fatalf("intSqrt(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRunWithTimeoutFlag(t *testing.T) {
	// A generous timeout must not interfere with a small sample.
	if err := run([]string{"-family", "complete", "-n", "8", "-timeout", "1m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeoutAborts(t *testing.T) {
	// A 1ns deadline trips inside the simulated run and must surface as an
	// error, not a bad tree.
	if err := run([]string{"-family", "torus", "-n", "64", "-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline produced a tree")
	}
}
