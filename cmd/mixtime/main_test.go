package main

import "testing"

func TestMakeGraphFamilies(t *testing.T) {
	for _, fam := range []string{"cycle", "torus", "complete", "candy", "regular", "er", "rgg"} {
		g, desc, err := makeGraph(fam, 26, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() < 2 || desc == "" {
			t.Fatalf("%s: n=%d desc=%q", fam, g.N(), desc)
		}
	}
	if _, _, err := makeGraph("moebius", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestCycleForcedOdd(t *testing.T) {
	// Even n must be bumped: bipartite cycles have no mixing time.
	g, _, err := makeGraph("cycle", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N()%2 == 0 {
		t.Fatalf("cycle family produced even n=%d", g.N())
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-family", "regular", "-n", "24"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoExact(t *testing.T) {
	if err := run([]string{"-family", "complete", "-n", "10", "-exact=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFamily(t *testing.T) {
	if err := run([]string{"-family", "moebius"}); err == nil {
		t.Fatal("bad family accepted")
	}
}

func TestRunTrialsAndTimeoutFlags(t *testing.T) {
	if err := run([]string{"-family", "regular", "-n", "16", "-trials", "12", "-exact=false", "-timeout", "1m"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "regular", "-n", "24", "-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline produced an estimate")
	}
}
