// Command mixtime estimates the mixing time of a generated graph with the
// fully decentralized estimator of Section 4.2 and, for graphs small
// enough for exact computation, prints the paper's bracket
// τ_mix ≤ τ̃ ≤ τ^x(ε) alongside the spectral-gap and conductance bounds.
//
// Usage:
//
//	mixtime -family regular -n 64
//	mixtime -family cycle -n 101 -source 5
//	mixtime -family rgg -n 256 -trials 80 -timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"distwalk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixtime:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mixtime", flag.ContinueOnError)
	var (
		family  = fs.String("family", "regular", "graph family: cycle|torus|complete|candy|regular|er|rgg")
		n       = fs.Int("n", 64, "approximate node count")
		seed    = fs.Uint64("seed", 1, "random seed")
		key     = fs.Uint64("key", 1, "request key (same key, same estimate)")
		source  = fs.Int("source", 0, "source node x for τ^x")
		trials  = fs.Int("trials", 0, "walks per tested length K (0 = the default ⌈6√n⌉)")
		exact   = fs.Bool("exact", true, "also compute the exact τ^x by matrix iteration")
		timeout = fs.Duration("timeout", 0, "abort the estimation after this long (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, desc, err := makeGraph(*family, *n, *seed)
	if err != nil {
		return err
	}
	svc, err := distwalk.NewService(g, *seed)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	x := distwalk.NodeID(*source)
	var opts []distwalk.Option
	if *trials > 0 {
		opts = append(opts, distwalk.WithTrials(*trials))
	}
	est, err := svc.EstimateMixingTime(ctx, *key, x, opts...)
	if err != nil {
		if errors.Is(err, distwalk.ErrNoMixing) {
			return fmt.Errorf("%w — bipartite families (even cycles/tori) never mix; pick odd sizes", err)
		}
		return err
	}
	fmt.Printf("graph: %s (n=%d, m=%d)\n", desc, g.N(), g.M())
	fmt.Printf("decentralized estimate: τ̃ = %d  (last failing ℓ = %d, K = %d samples, %d tests)\n",
		est.Tau, est.LastFail, est.Samples, est.Tests)
	fmt.Printf("simulated cost: %d rounds, %d messages (naive K·τ̃ would walk %d token-rounds)\n",
		est.Cost.Rounds, est.Cost.Messages, est.Samples*est.Tau)
	fmt.Printf("spectral gap bracket from τ̃: [%.4f, %.4f]\n", est.GapLo, est.GapHi)
	fmt.Printf("conductance bracket from τ̃:  [%.4f, %.4f]\n", est.CondLo, est.CondHi)
	if *exact {
		loose, err := distwalk.ExactMixingTime(g, x, 0.7, 10_000_000)
		if err != nil {
			return err
		}
		tight, err := distwalk.ExactMixingTime(g, x, 0.05, 10_000_000)
		if err != nil {
			return err
		}
		fmt.Printf("exact (centralized) reference: τ^x(0.7) = %d, τ^x(1/2e) = ", loose)
		mid, err := distwalk.ExactMixingTime(g, x, distwalk.EpsMix, 10_000_000)
		if err != nil {
			return err
		}
		fmt.Printf("%d, τ^x(0.05) = %d\n", mid, tight)
		gap, err := distwalk.SpectralGap(g)
		if err == nil {
			fmt.Printf("exact spectral gap: %.4f\n", gap)
		}
	}
	return nil
}

func makeGraph(family string, n int, seed uint64) (*distwalk.Graph, string, error) {
	switch family {
	case "cycle":
		if n%2 == 0 {
			n++ // odd cycles are non-bipartite
		}
		g, err := distwalk.Cycle(n)
		return g, fmt.Sprintf("cycle(%d)", n), err
	case "torus":
		side := intSqrt(n)
		if side%2 == 0 {
			side++ // odd sides keep the torus non-bipartite
		}
		g, err := distwalk.Torus(side, side)
		return g, fmt.Sprintf("torus %dx%d", side, side), err
	case "complete":
		g, err := distwalk.Complete(n)
		return g, fmt.Sprintf("K%d", n), err
	case "candy":
		g, err := distwalk.Candy(n/2, n/2)
		return g, fmt.Sprintf("candy(%d,%d)", n/2, n/2), err
	case "regular":
		g, err := distwalk.RandomRegular(n-n%2, 4, seed)
		return g, fmt.Sprintf("4-regular(%d)", n-n%2), err
	case "er":
		g, err := distwalk.ErdosRenyi(n, 8/float64(n), seed)
		return g, fmt.Sprintf("G(%d, 8/n)", n), err
	case "rgg":
		g, err := distwalk.GeometricRandom(n, 0, seed)
		return g, fmt.Sprintf("RGG(%d)", n), err
	}
	return nil, "", fmt.Errorf("unknown family %q", family)
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	if s < 3 {
		s = 3
	}
	return s
}
