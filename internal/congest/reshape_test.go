package congest

import (
	"errors"
	"reflect"
	"testing"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

func reshapeGraph(t *testing.T) *graph.G {
	t.Helper()
	g, err := graph.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReshapeNoneOnSameGraph(t *testing.T) {
	g := reshapeGraph(t)
	net := NewNetwork(g, 7)
	kind, err := net.Reshape(g)
	if err != nil || kind != ReshapeNone {
		t.Fatalf("Reshape(same graph) = %v, %v; want ReshapeNone, nil", kind, err)
	}
}

// TestReshapeMatchesFreshNetwork pins the structural contract: after
// Reshape(g2)+Reseed(s), the unsharded network's directed-edge index is
// byte-identical to NewNetwork(g2, s)'s — buildIndex is shared, so the
// layout cannot drift between construction and re-shaping.
func TestReshapeMatchesFreshNetwork(t *testing.T) {
	g := reshapeGraph(t)
	g2, err := g.ApplyEdits(
		[]graph.EdgeEdit{{U: 0, V: 1}},
		[]graph.EdgeEdit{{U: 0, V: 77, W: 2}, {U: 5, V: 130}},
	)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 7)
	kind, err := net.Reshape(g2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ReshapeFull {
		t.Fatalf("unsharded Reshape = %v, want ReshapeFull", kind)
	}
	net.Reseed(7)

	fresh := NewNetwork(g2, 7)
	if net.Graph() != g2 {
		t.Fatal("reshaped network does not serve the new graph")
	}
	if !reflect.DeepEqual(net.off, fresh.off) ||
		!reflect.DeepEqual(net.nbrTo, fresh.nbrTo) ||
		!reflect.DeepEqual(net.nbrEdge, fresh.nbrEdge) {
		t.Fatal("reshaped directed-edge index differs from a freshly built network")
	}
	if len(net.queues) != len(fresh.queues) {
		t.Fatalf("reshaped queue slab has %d rings, fresh %d", len(net.queues), len(fresh.queues))
	}
}

func TestReshapeShardedKinds(t *testing.T) {
	g := reshapeGraph(t)
	net := NewNetwork(g, 7, WithShards(4))
	preBounds := make([]int32, 5)
	for i, sh := range net.sh {
		preBounds[i] = sh.nodeLo
	}
	preBounds[4] = net.sh[3].nodeHi

	// One removed and one added edge leave the per-shard edge balance
	// essentially untouched: the old partition must be kept.
	g2, err := g.ApplyEdits([]graph.EdgeEdit{{U: 0, V: 1}}, []graph.EdgeEdit{{U: 0, V: 77}})
	if err != nil {
		t.Fatal(err)
	}
	kind, err := net.Reshape(g2)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ReshapeIncremental {
		t.Fatalf("balanced mutation reshaped as %v, want ReshapeIncremental", kind)
	}
	for i, sh := range net.sh {
		if sh.nodeLo != preBounds[i] {
			t.Fatalf("incremental reshape moved shard %d lower bound %d -> %d", i, preBounds[i], sh.nodeLo)
		}
	}

	// Piling parallel edges onto one node blows the first shard's edge
	// share past the slack: the partition must be re-planned.
	var heavy []graph.EdgeEdit
	for i := 0; i < 300; i++ {
		heavy = append(heavy, graph.EdgeEdit{U: 0, V: 1})
	}
	g3, err := g2.ApplyEdits(nil, heavy)
	if err != nil {
		t.Fatal(err)
	}
	kind, err = net.Reshape(g3)
	if err != nil {
		t.Fatal(err)
	}
	if kind != ReshapeFull {
		t.Fatalf("skewed mutation reshaped as %v, want ReshapeFull", kind)
	}
	moved := false
	for i, sh := range net.sh {
		if sh.nodeLo != preBounds[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("full reshape kept the old (now unbalanced) shard bounds")
	}
}

func TestReshapeErrors(t *testing.T) {
	g := reshapeGraph(t)

	t.Run("nil graph", func(t *testing.T) {
		net := NewNetwork(g, 7)
		if _, err := net.Reshape(nil); err == nil {
			t.Fatal("Reshape(nil) succeeded")
		}
	})
	t.Run("changed node count", func(t *testing.T) {
		small, err := graph.Torus(6, 6)
		if err != nil {
			t.Fatal(err)
		}
		net := NewNetwork(g, 7)
		if _, err := net.Reshape(small); err == nil {
			t.Fatal("Reshape to a different node count succeeded")
		}
	})
	t.Run("per-edge capacities", func(t *testing.T) {
		net := NewNetwork(g, 7, WithEdgeCapFunc(func(from, to graph.NodeID) int { return 2 }))
		g2, err := g.ApplyEdits(nil, []graph.EdgeEdit{{U: 0, V: 20}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Reshape(g2); err == nil {
			t.Fatal("Reshape with per-edge capacities succeeded")
		}
	})
}

// TestReshapeFaultPlanRecompile: the installed plan is recompiled against
// the new topology; a plan referencing a removed link fails the reshape
// (callers validate before mutating, so this is the defensive backstop).
func TestReshapeFaultPlanRecompile(t *testing.T) {
	g := reshapeGraph(t)
	net := NewNetwork(g, 7)
	plan := &fault.Plan{LinkDrops: []fault.LinkDrop{{From: 0, To: 1, Prob: 0.5}}}
	if err := net.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}

	// A mutation keeping the dropped link recompiles cleanly.
	g2, err := g.ApplyEdits(nil, []graph.EdgeEdit{{U: 0, V: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Reshape(g2); err != nil {
		t.Fatalf("reshape with intact fault link: %v", err)
	}
	if net.FaultPlan() != plan {
		t.Fatal("installed fault plan lost across reshape")
	}

	// Removing the dropped link orphans the plan: typed failure.
	g3, err := g2.ApplyEdits([]graph.EdgeEdit{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Reshape(g3); !errors.Is(err, ErrBadFault) {
		t.Fatalf("reshape with orphaned fault link: err = %v, want ErrBadFault", err)
	}
}

func TestGenerationStamp(t *testing.T) {
	g := reshapeGraph(t)
	net := NewNetwork(g, 7)
	if got := net.Generation(); got != 0 {
		t.Fatalf("fresh network Generation() = %d, want 0 (unstamped)", got)
	}
	net.SetGeneration(5)
	if got := net.Generation(); got != 5 {
		t.Fatalf("Generation() = %d after SetGeneration(5)", got)
	}
	// The stamp is owner state: reshaping does not touch it.
	g2, err := g.ApplyEdits(nil, []graph.EdgeEdit{{U: 0, V: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Reshape(g2); err != nil {
		t.Fatal(err)
	}
	if got := net.Generation(); got != 5 {
		t.Fatalf("Reshape changed the generation stamp to %d", got)
	}
}
