package congest

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// halfIndex sorts one node's neighbor segment by (To, directed index).
// The key is total (directed indices are distinct), so the sorted order
// is unique regardless of sort stability.
type halfIndex struct {
	to, edge []int32
}

func (s *halfIndex) Len() int { return len(s.to) }
func (s *halfIndex) Less(i, j int) bool {
	if s.to[i] != s.to[j] {
		return s.to[i] < s.to[j]
	}
	return s.edge[i] < s.edge[j]
}
func (s *halfIndex) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.edge[i], s.edge[j] = s.edge[j], s.edge[i]
}

// PayloadWords is the inline payload capacity of a Message in engine words.
// Every payload in this module fits (the CONGEST model only allows O(log n)
// bits per message anyway).
const PayloadWords = 4

// Payload is the content of a message, packed into at most PayloadWords
// engine words. Words reports its size in O(log n)-bit units and must be
// >= 1; the engine uses it for traffic metrics. Kind is a protocol-defined
// tag distinguishing payload types within one run (types used in the same
// run must have distinct kinds). Encode packs the payload; messages carry
// the words inline, so sending never boxes or heap-allocates.
type Payload interface {
	Words() int
	Kind() uint16
	Encode() [PayloadWords]uint64
}

// WirePayload is a Payload that can decode itself; Decode is called on the
// zero value of V and must return the payload encoded in w. The generic
// tree primitives (Broadcast, Convergecast, ...) require it.
type WirePayload[V any] interface {
	Payload
	Decode(w [PayloadWords]uint64) V
}

// Message is a payload in flight on a directed edge: the payload's words
// inline plus the routing metadata. It is pointer-free, so per-edge queues
// are flat slabs the garbage collector never scans.
type Message struct {
	From, To graph.NodeID
	Kind     uint16
	words    uint16
	W        [PayloadWords]uint64
}

// Words reports the payload size in O(log n)-bit units (as declared by the
// sender's Payload.Words).
func (m Message) Words() int { return int(m.words) }

// As decodes a message's payload as type V. The caller must have checked
// m.Kind (or be in a run with a single payload type).
func As[V WirePayload[V]](m Message) V {
	var z V
	return z.Decode(m.W)
}

// Pack2 packs two 32-bit values into one engine word (little end first);
// Unpack2 reverses it. Payload Encode/Decode implementations share these.
func Pack2(a, b int32) uint64 { return uint64(uint32(a)) | uint64(uint32(b))<<32 }

// Unpack2 splits a word packed by Pack2.
func Unpack2(w uint64) (int32, int32) { return int32(uint32(w)), int32(uint32(w >> 32)) }

// Proto is a distributed protocol: per-node logic invoked by the engine.
// Init runs once for every node before round 1 (it may send and set
// activity); Step runs each round for every node that received messages or
// marked itself active.
type Proto interface {
	Init(ctx *Ctx)
	Step(ctx *Ctx)
}

// Halter is an optional interface for protocols whose goal is observable
// before quiescence (e.g. "some node verified the whole path"). The engine
// checks Halted after every round and stops the run when it returns true.
// This is a simulation-level observer: it consumes no rounds or messages.
type Halter interface {
	Halted() bool
}

// Result aggregates the cost of one or more protocol runs.
type Result struct {
	// Rounds is the number of synchronous rounds consumed.
	Rounds int
	// Messages is the number of messages delivered.
	Messages int64
	// Words is the total size of delivered messages in O(log n)-bit units.
	Words int64
	// MaxQueue is the deepest any directed-edge queue got.
	MaxQueue int
	// Faults aggregates the injected-fault footprint (WithCrash,
	// WithFaultPlan): messages dropped at down receivers or lossy links,
	// deliveries deferred by link delays, nodes down during the run. The
	// zero value means a fault-free run.
	Faults FaultStats
}

// Add accumulates other into r (for summing across sequential phases).
func (r *Result) Add(other Result) {
	r.Rounds += other.Rounds
	r.Messages += other.Messages
	r.Words += other.Words
	r.Faults.add(other.Faults)
	if other.MaxQueue > r.MaxQueue {
		r.MaxQueue = other.MaxQueue
	}
}

// ErrRoundLimit is returned when a protocol does not reach quiescence
// within the configured round budget.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// DefaultMaxRounds is the per-run round budget applied when no
// WithMaxRounds/SetMaxRounds override is in effect.
const DefaultMaxRounds = 50_000_000

// Network is a simulated CONGEST network over a fixed graph.
type Network struct {
	g       *graph.G
	cap     int
	capOf   []int32 // optional per-directed-edge capacity (overrides cap)
	nodeRNG []*rng.RNG

	// Directed-edge machinery: the j-th half-edge of node u has directed
	// index off[u]+j and carries messages u -> adj[u][j].To. For Send
	// lookups, nbrTo[off[u]:off[u+1]] lists u's neighbor IDs in ascending
	// order and nbrEdge the matching directed indices (parallel edges form
	// a contiguous run, in adjacency order).
	off     []int32
	nbrTo   []int32
	nbrEdge []int32

	queues  []ring // per directed edge, reused across rounds and runs
	active  *sched // directed edges with queued messages
	stepSet *sched // nodes scheduled for Step this round

	inbox      [][]Message
	crashAt    []int          // per node: round from which it is crashed (-1 = never)
	awake      []bool         // nodes that requested Step without messages
	awakeNodes []graph.NodeID // lazily-compacted list of awake nodes
	awakeCount int

	// Fault injection (nil/zero on the fault-free path): the compiled
	// fault plan, whether any WithCrash is armed (downCount guard), the
	// first-loss record since Reseed, and any invalid fault configuration
	// recorded at construction and returned by Run. See fault.go.
	flt      *faultState
	hasCrash bool
	loss     lossInfo
	optErr   error

	round    int
	res      Result
	runErr   error
	maxRound int
	ctx      context.Context // optional; checked periodically by Run

	// topoGen is the topology generation stamp for warm-state coherence:
	// the service layer stamps every network with the generation of the
	// graph it was last (re)shaped for, and compares it against the
	// current epoch on prepare. See reshape.go.
	topoGen uint64

	// Sharded execution (nil/empty = sequential): the shard workers and
	// the node -> shard index; see shard.go.
	sh      []*shard
	shardOf []int32

	// Cluster execution (nil = in-process): the remote shard engines, the
	// node -> engine index, the per-engine send buffers and the reusable
	// receive buffer; see remote.go.
	remote   []RemoteShard
	remoteOf []int32
	pushBuf  [][]Message
	recvBuf  []Message

	ns nodeScratch // reusable per-node scratch for tree protocols
}

// nodeScratch is per-node working memory the tree protocols (BFS build,
// Convergecast) borrow instead of allocating O(n) arrays per call. It is
// sized once, on first use, and "cleared" by bumping the epoch: a slot is
// meaningful only when its stamp matches the current epoch, so starting a
// fresh protocol run costs one increment, not a sweep. acc/pending carry
// convergecast state as encoded payload words — runs execute one at a
// time, so a single scratch serves every protocol on the network.
type nodeScratch struct {
	epoch   uint32
	stamp   []uint32
	acc     [][PayloadWords]uint64
	pending []int32
}

// scratch hands out the node scratch for one protocol run, advancing the
// epoch (and sweeping stamps on the rare uint32 wrap so stale stamps can
// never collide).
func (n *Network) scratch() *nodeScratch {
	s := &n.ns
	if s.stamp == nil {
		nn := n.g.N()
		s.stamp = make([]uint32, nn)
		s.acc = make([][PayloadWords]uint64, nn)
		s.pending = make([]int32, nn)
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

// ctxCheckMask controls how often Run polls the context: every
// (ctxCheckMask+1) rounds. Rounds are microseconds, so cancellation
// latency stays negligible while the common case pays one nil check.
const ctxCheckMask = 63

// Option configures a Network.
type Option func(*Network)

// WithEdgeCap sets the number of messages each directed edge delivers per
// round (default 1, the CONGEST bound). Values > 1 model the large-capacity
// variant used in Theorem 3.8.
func WithEdgeCap(c int) Option {
	return func(n *Network) {
		if c >= 1 {
			n.cap = c
		}
	}
}

// WithEdgeCapFunc sets a per-edge capacity: capOf(from, to) messages per
// round on the directed edge from→to (minimum 1). This models Theorem
// 3.8's hard instance exactly: the path edges of G'_n get (arbitrarily)
// large capacity while the tree edges keep the CONGEST budget — and the
// lower bound still holds because the tree is the bottleneck.
func WithEdgeCapFunc(capOf func(from, to graph.NodeID) int) Option {
	return func(n *Network) {
		if capOf == nil {
			return
		}
		n.capOf = make([]int32, len(n.queues))
		for v := 0; v < n.g.N(); v++ {
			for j, h := range n.g.Neighbors(graph.NodeID(v)) {
				c := capOf(graph.NodeID(v), h.To)
				if c < 1 {
					c = 1
				}
				n.capOf[n.off[v]+int32(j)] = int32(c)
			}
		}
	}
}

// WithMaxRounds sets the per-run round budget (default 50,000,000).
func WithMaxRounds(r int) Option {
	return func(n *Network) {
		if r >= 1 {
			n.maxRound = r
		}
	}
}

// WithCrash schedules a crash-stop fault: from the given round of every
// run onward, node v neither executes nor receives — messages addressed
// to it are dropped (counted in Result.Faults.Dropped). The paper lists
// failure robustness as future work (Section 5); this hook provides the
// fault model for experimenting with it (see the failure-injection
// tests: the Las Vegas drivers detect token loss rather than returning a
// wrong sample). An out-of-range node or negative round is recorded as a
// configuration error (wrapping ErrBadFault) that every subsequent Run
// returns, matching the package's typed-error discipline. For scripted
// multi-fault scenarios see WithFaultPlan.
func WithCrash(v graph.NodeID, round int) Option {
	return func(n *Network) {
		if v < 0 || int(v) >= len(n.crashAt) || round < 0 {
			if n.optErr == nil {
				n.optErr = fmt.Errorf("%w: WithCrash(%d, %d): node outside [0,%d) or negative round",
					ErrBadFault, v, round, len(n.crashAt))
			}
			return
		}
		n.crashAt[v] = round
		n.hasCrash = true
	}
}

// NewNetwork builds a simulator over g, with per-node RNG streams derived
// from seed.
func NewNetwork(g *graph.G, seed uint64, opts ...Option) *Network {
	n := g.N()
	net := &Network{
		g:        g,
		cap:      1,
		maxRound: DefaultMaxRounds,
		nodeRNG:  make([]*rng.RNG, n),
		off:      make([]int32, n+1),
		inbox:    make([][]Message, n),
		awake:    make([]bool, n),
		crashAt:  make([]int, n),
	}
	for v := range net.crashAt {
		net.crashAt[v] = -1
	}
	base := rng.New(seed)
	for v := 0; v < n; v++ {
		net.nodeRNG[v] = base.Stream(uint64(v))
	}
	net.buildIndex()
	net.stepSet = newSched(n)
	for _, opt := range opts {
		opt(net)
	}
	return net
}

// buildIndex (re)builds the directed-edge machinery — off, nbrTo,
// nbrEdge, queues and the edge scheduler — from the current n.g. Shared
// by NewNetwork and Reshape so the index layout cannot drift between
// construction and re-shaping.
func (n *Network) buildIndex() {
	nn := n.g.N()
	n.off[0] = 0
	for v := 0; v < nn; v++ {
		n.off[v+1] = n.off[v] + int32(n.g.Degree(graph.NodeID(v)))
	}
	total := n.off[nn]
	n.queues = make([]ring, total)
	n.nbrTo = make([]int32, total)
	n.nbrEdge = make([]int32, total)
	for v := 0; v < nn; v++ {
		lo, hi := n.off[v], n.off[v+1]
		for j, h := range n.g.Neighbors(graph.NodeID(v)) {
			n.nbrTo[lo+int32(j)] = int32(h.To)
			n.nbrEdge[lo+int32(j)] = lo + int32(j)
		}
		// Sort by (To, directed index): the directed-index tie-break keeps
		// parallel edges in adjacency order, so Send's least-loaded
		// tie-break matches the old map index exactly.
		sort.Sort(&halfIndex{to: n.nbrTo[lo:hi], edge: n.nbrEdge[lo:hi]})
	}
	n.active = newSched(int(total))
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.G { return n.g }

// SetContext installs ctx for subsequent runs: Run polls it periodically
// and aborts with an error wrapping ctx.Err() (errors.Is-able against
// context.Canceled / context.DeadlineExceeded) once it is done. Pass nil
// to clear. The check is amortized to one nil comparison per round, so
// uncancellable runs pay nothing.
func (n *Network) SetContext(ctx context.Context) { n.ctx = ctx }

// SetMaxRounds adjusts the per-run round budget after construction (the
// service layer re-applies a per-request budget on pooled networks).
// Values < 1 are ignored.
func (n *Network) SetMaxRounds(r int) {
	if r >= 1 {
		n.maxRound = r
	}
}

// Reseed re-derives every per-node RNG stream from seed, exactly as
// NewNetwork does, so a pooled network can be reused for a fresh
// deterministic execution: after Reseed(s) the network behaves bit for bit
// like a newly built NewNetwork(g, s). Ring and inbox slabs carry no
// protocol state, only capacity, and any in-flight messages left by an
// aborted run are dropped by the next Run's reset. The first-loss record
// (LossError) is request-scoped and clears here too; the installed fault
// plan and crash schedule persist — they are topology configuration.
func (n *Network) Reseed(seed uint64) {
	base := rng.New(seed)
	for v := range n.nodeRNG {
		n.nodeRNG[v] = base.Stream(uint64(v))
	}
	n.loss = lossInfo{}
}

// NodeRNG returns node v's persistent random stream. Protocol code uses it
// through Ctx; tests may use it directly.
func (n *Network) NodeRNG(v graph.NodeID) *rng.RNG { return n.nodeRNG[v] }

// Run executes p until quiescence, a Halter stop, the round budget, or —
// when a context is installed with SetContext — cancellation. It returns
// the cost of this run; the Result is also retained so drivers can sum
// sequential phases. An invalid fault configuration recorded at
// construction (WithCrash/WithFaultPlan) fails every Run with that error.
func (n *Network) Run(p Proto) (Result, error) {
	if n.optErr != nil {
		return Result{}, n.optErr
	}
	var (
		res Result
		err error
	)
	switch {
	case len(n.remote) > 0:
		res, err = n.runRemote(p)
	case len(n.sh) > 1:
		res, err = n.runSharded(p)
	default:
		res, err = n.runSeq(p)
	}
	if n.hasCrash || n.flt != nil {
		// Crashed is a post-run census (nodes down by the final round), not
		// a delivery-path counter, so it is charged once here for both
		// engines — identical by construction at any shard count.
		n.res.Faults.Crashed = n.downCount()
		res.Faults.Crashed = n.res.Faults.Crashed
	}
	return res, err
}

// runSeq is the sequential engine's round loop; see Run.
func (n *Network) runSeq(p Proto) (Result, error) {
	n.reset()
	if n.ctx != nil {
		if err := n.ctx.Err(); err != nil {
			return n.res, fmt.Errorf("congest: run aborted before round 1: %w", err)
		}
	}
	ctx := &Ctx{net: n}
	for v := 0; v < n.g.N(); v++ {
		ctx.node = graph.NodeID(v)
		ctx.inbox = nil
		p.Init(ctx)
		if n.runErr != nil {
			return n.res, n.runErr
		}
	}
	halter, _ := p.(Halter)
	if halter != nil && halter.Halted() {
		return n.res, nil
	}
	for !n.quiescent() {
		if n.round >= n.maxRound {
			return n.res, fmt.Errorf("%w after %d rounds", ErrRoundLimit, n.round)
		}
		if n.ctx != nil && n.round&ctxCheckMask == 0 {
			if err := n.ctx.Err(); err != nil {
				return n.res, fmt.Errorf("congest: run aborted at round %d: %w", n.round, err)
			}
		}
		n.round++
		n.res.Rounds = n.round
		n.deliver()
		n.step(p, ctx)
		if n.runErr != nil {
			return n.res, n.runErr
		}
		if halter != nil && halter.Halted() {
			break
		}
	}
	return n.res, nil
}

// reset clears transient run state (queues are empty between runs by
// construction: a run only ends at quiescence, halt, error, budget or
// cancellation; on the non-quiescent ends we still drop leftovers so the
// next run starts clean).
// Ring buffers and inbox slices keep their capacity: the steady state of
// repeated runs allocates nothing.
func (n *Network) reset() {
	n.active.drain(func(e int32) { n.queues[e].clear() })
	n.stepSet.drain(func(int32) {})
	for v := range n.awake {
		n.awake[v] = false
		n.inbox[v] = n.inbox[v][:0]
	}
	n.awakeNodes = n.awakeNodes[:0]
	n.awakeCount = 0
	n.round = 0
	n.res = Result{}
	n.runErr = nil
	if n.flt != nil {
		n.flt.resetRun()
	}
}

func (n *Network) quiescent() bool {
	return n.active.count == 0 && n.awakeCount == 0
}

// deliver moves up to cap messages per active directed edge into inboxes
// and builds the step set. Draining the scheduler visits edges in
// ascending directed-index order — the deterministic ID order the old
// engine obtained by sorting — and edges with leftover queue re-mark
// themselves for the next round (their scheduler word has already been
// consumed, so the re-add cannot be visited twice in one round).
//
// KEEP IN LOCKSTEP with shard.deliverOut (shard.go): the sharded engine
// runs this same per-edge drain — delay gate, MaxQueue sampling, capacity
// clamp, crash drop, lossy-link roll, counter charging, leftover re-add —
// split per shard, and the bit-identity contract depends on the two
// bodies computing the same values at the same points. Any semantic
// change here must be mirrored there (the shard-identity stress tests
// catch divergence). Fault-charging order per message: the crash check
// precedes the lossy-link roll, so a message to a down receiver never
// consumes a drop-decision ordinal.
func (n *Network) deliver() {
	n.active.drain(func(e int32) {
		q := &n.queues[e]
		if f := n.flt; f != nil && f.delay != nil && f.delay[e] > 0 {
			if int32(n.round) < f.release[e] {
				// The link is still "in transit": skip this round, keep the
				// edge scheduled (its word is consumed, the re-add cannot be
				// visited twice this round).
				n.res.Faults.Delayed++
				n.active.add(e)
				return
			}
		}
		depth := int(q.size)
		if depth > n.res.MaxQueue {
			n.res.MaxQueue = depth
		}
		k := n.cap
		if n.capOf != nil {
			k = int(n.capOf[e])
		}
		if k > depth {
			k = depth
		}
		for i := 0; i < k; i++ {
			m := q.at(int32(i))
			to := m.To
			if n.crashed(to) {
				n.res.Faults.Dropped++
				n.noteLoss(e, m, false)
				continue
			}
			if f := n.flt; f != nil && f.drop != nil {
				if th := f.drop[e]; th != 0 {
					f.seq[e]++
					if fault.Roll(f.key, uint64(e), f.seq[e]) < th {
						n.res.Faults.LinkDropped++
						n.noteLoss(e, m, true)
						continue
					}
				}
			}
			n.inbox[to] = append(n.inbox[to], *m)
			n.res.Messages++
			n.res.Words += int64(m.words)
			n.stepSet.add(int32(to))
		}
		q.popN(int32(k))
		if q.size > 0 {
			n.active.add(e)
		}
		if f := n.flt; f != nil && f.delay != nil && f.delay[e] > 0 {
			// Serialize the slow link: next delivery no earlier than
			// 1+delay rounds from now.
			f.release[e] = int32(n.round) + 1 + f.delay[e]
		}
	})
	// Compact the awake list (SetActive(false) leaves stale entries) and
	// schedule the remaining awake nodes.
	live := n.awakeNodes[:0]
	for _, v := range n.awakeNodes {
		if !n.awake[v] {
			continue
		}
		if n.crashed(v) {
			// Crash-stop: the node can no longer keep itself awake, or the
			// run would never reach quiescence.
			n.awake[v] = false
			n.awakeCount--
			continue
		}
		live = append(live, v)
		n.stepSet.add(int32(v))
	}
	n.awakeNodes = live
}

// step invokes the protocol on every scheduled node in ascending ID order
// (the drain order of the node scheduler).
func (n *Network) step(p Proto, ctx *Ctx) {
	n.stepSet.drain(func(v int32) {
		node := graph.NodeID(v)
		if n.runErr != nil || n.crashed(node) {
			n.inbox[v] = n.inbox[v][:0]
			return
		}
		ctx.node = node
		ctx.inbox = n.inbox[v]
		p.Step(ctx)
		n.inbox[v] = n.inbox[v][:0]
	})
}

// crashed reports whether v is down at the current round: crash-stopped
// via WithCrash, or scheduled down (crash or churn window) by the
// installed fault plan.
func (n *Network) crashed(v graph.NodeID) bool {
	if n.crashAt[v] >= 0 && n.round >= n.crashAt[v] {
		return true
	}
	if f := n.flt; f != nil {
		return f.down(v, n.round)
	}
	return false
}

// send validates and enqueues a message from the executing node to a
// neighbor. With parallel edges the least-loaded one is used (ties to the
// first in adjacency order, as before the flat index). A node only ever
// writes its own outgoing edge queues, so under sharded execution the push
// is shard-local; only the activity mark and the error sink route through
// the caller's shard.
func (n *Network) send(c *Ctx, to graph.NodeID, kind uint16, words int, w [PayloadWords]uint64) {
	if n.remote != nil && c.sh == nil {
		// Cluster mode: the owning engine resolves the edge; see remote.go.
		n.sendRemote(c, to, kind, words, w)
		return
	}
	from := c.node
	errp := &n.runErr
	if c.sh != nil {
		errp = &c.sh.runErr
	}
	if *errp != nil {
		return
	}
	if words < 1 {
		*errp = fmt.Errorf("congest: node %d sent an invalid payload", from)
		return
	}
	// Binary search the smallest index with nbrTo >= to in from's segment.
	lo, hi := n.off[from], n.off[from+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if n.nbrTo[mid] < int32(to) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == n.off[from+1] || n.nbrTo[lo] != int32(to) {
		*errp = fmt.Errorf("congest: node %d sent to non-neighbor %d", from, to)
		return
	}
	best := n.nbrEdge[lo]
	for j := lo + 1; j < n.off[from+1] && n.nbrTo[j] == int32(to); j++ {
		e := n.nbrEdge[j]
		if n.queues[e].size < n.queues[best].size {
			best = e
		}
	}
	n.queues[best].push(Message{From: from, To: to, Kind: kind, words: uint16(words), W: w})
	if f := n.flt; f != nil && f.delay != nil {
		// A message entering an idle delayed link starts its transit now:
		// eligible 1+delay rounds out (max with any pending release, so
		// back-to-back bursts stay serialized). The sending node owns this
		// edge, so under sharded execution the write is shard-local.
		if d := f.delay[best]; d > 0 && n.queues[best].size == 1 {
			if r := int32(n.round) + 1 + d; r > f.release[best] {
				f.release[best] = r
			}
		}
	}
	if c.sh != nil {
		c.sh.active.add(best - c.sh.edgeLo)
	} else {
		n.active.add(best)
	}
}

// Ctx is the per-node view handed to protocol callbacks. Under sharded
// execution each shard worker owns one Ctx (sh non-nil), so activity and
// send bookkeeping stay shard-local.
type Ctx struct {
	net   *Network
	sh    *shard
	node  graph.NodeID
	inbox []Message
}

// Node returns the executing node's ID.
func (c *Ctx) Node() graph.NodeID { return c.node }

// Round returns the current round number (0 during Init).
func (c *Ctx) Round() int { return c.net.round }

// Inbox returns the messages delivered to this node this round. The slice
// is reused by the engine; protocols must not retain it across calls.
func (c *Ctx) Inbox() []Message { return c.inbox }

// Send enqueues a message to a neighbor; it is delivered no earlier than
// the next round, later under congestion. It is a free function because Go
// methods cannot be generic; the concrete payload type makes the
// encode a static call with no interface boxing.
func Send[V Payload](c *Ctx, to graph.NodeID, p V) {
	c.net.send(c, to, p.Kind(), p.Words(), p.Encode())
}

// RNG returns this node's persistent random stream.
func (c *Ctx) RNG() *rng.RNG { return c.net.nodeRNG[c.node] }

// Degree returns the executing node's degree.
func (c *Ctx) Degree() int { return c.net.g.Degree(c.node) }

// Neighbors returns the executing node's half-edges (local knowledge in the
// model: each node knows its neighbors' IDs). Callers must not modify it.
func (c *Ctx) Neighbors() []graph.Half { return c.net.g.Neighbors(c.node) }

// N returns the network size, which the model assumes nodes know.
func (c *Ctx) N() int { return c.net.g.N() }

// SetActive requests (or cancels) a Step call next round even if no
// messages arrive.
func (c *Ctx) SetActive(active bool) {
	n := c.net
	v := c.node
	if sh := c.sh; sh != nil {
		if active && !n.awake[v] {
			n.awake[v] = true
			sh.awakeCount++
			sh.awakeNodes = append(sh.awakeNodes, v)
		} else if !active && n.awake[v] {
			n.awake[v] = false
			sh.awakeCount--
		}
		return
	}
	if active && !n.awake[v] {
		n.awake[v] = true
		n.awakeCount++
		n.awakeNodes = append(n.awakeNodes, v)
	} else if !active && n.awake[v] {
		n.awake[v] = false
		n.awakeCount--
	}
}
