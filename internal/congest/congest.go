// Package congest simulates the CONGEST model of distributed computing used
// throughout the paper (Section 1.1): a synchronous network where, in each
// round, every node may send one O(log n)-bit message through each incident
// edge.
//
// The simulator is a deterministic discrete-event engine:
//
//   - Every undirected edge is two directed channels with a FIFO queue each.
//   - In each round, at most Cap messages (default 1) are delivered from
//     every directed queue; everything else waits. Congestion therefore
//     costs extra rounds exactly as in the paper's analysis (e.g. Lemma 2.1
//     charges Phase 1 O(λη log n) rounds because ~η log n tokens cross an
//     edge per walk step w.h.p.).
//   - Messages sent in round r are deliverable from round r+1 on.
//   - Nodes execute in increasing ID order within a round and draw
//     randomness from per-node streams derived from the network seed, so a
//     whole execution is reproducible.
//
// Protocols implement Proto and are run to quiescence (no queued messages,
// no active nodes) or until an optional Halter says the goal is reached.
// Node state persists wherever the protocol keeps it; the engine itself is
// stateless between runs except for per-node RNG streams, which continue
// across phases so that multi-phase algorithms remain reproducible.
package congest

import (
	"errors"
	"fmt"
	"sort"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// Payload is the content of a message. Words reports its size in O(log n)-
// bit units and must be >= 1; the engine uses it for traffic metrics. Every
// payload in this module is O(1) words, matching the CONGEST bound.
type Payload interface {
	Words() int
}

// Message is a payload in flight on a directed edge.
type Message struct {
	From, To graph.NodeID
	Payload  Payload
}

// Proto is a distributed protocol: per-node logic invoked by the engine.
// Init runs once for every node before round 1 (it may send and set
// activity); Step runs each round for every node that received messages or
// marked itself active.
type Proto interface {
	Init(ctx *Ctx)
	Step(ctx *Ctx)
}

// Halter is an optional interface for protocols whose goal is observable
// before quiescence (e.g. "some node verified the whole path"). The engine
// checks Halted after every round and stops the run when it returns true.
// This is a simulation-level observer: it consumes no rounds or messages.
type Halter interface {
	Halted() bool
}

// Result aggregates the cost of one or more protocol runs.
type Result struct {
	// Rounds is the number of synchronous rounds consumed.
	Rounds int
	// Messages is the number of messages delivered.
	Messages int64
	// Words is the total size of delivered messages in O(log n)-bit units.
	Words int64
	// MaxQueue is the deepest any directed-edge queue got.
	MaxQueue int
	// Dropped counts messages lost to crashed receivers (WithCrash).
	Dropped int64
}

// Add accumulates other into r (for summing across sequential phases).
func (r *Result) Add(other Result) {
	r.Rounds += other.Rounds
	r.Messages += other.Messages
	r.Words += other.Words
	r.Dropped += other.Dropped
	if other.MaxQueue > r.MaxQueue {
		r.MaxQueue = other.MaxQueue
	}
}

// ErrRoundLimit is returned when a protocol does not reach quiescence
// within the configured round budget.
var ErrRoundLimit = errors.New("congest: round limit exceeded")

// Network is a simulated CONGEST network over a fixed graph.
type Network struct {
	g       *graph.G
	cap     int
	capOf   []int32 // optional per-directed-edge capacity (overrides cap)
	nodeRNG []*rng.RNG

	// Directed-edge machinery: the j-th half-edge of node u has directed
	// index off[u]+j and carries messages u -> adj[u][j].To.
	off     []int32
	halfIdx []map[graph.NodeID][]int32 // per node: neighbor -> half positions

	queues   [][]Message
	active   []int32 // directed edges with queued messages (deduped via inActive)
	inActive []bool
	scratch  []int32 // reusable snapshot of active for delivery iteration

	inbox      [][]Message
	stepSet    []graph.NodeID
	inStep     []bool
	crashAt    []int          // per node: round from which it is crashed (-1 = never)
	awake      []bool         // nodes that requested Step without messages
	awakeNodes []graph.NodeID // lazily-compacted list of awake nodes
	awakeCount int

	round    int
	res      Result
	runErr   error
	maxRound int
}

// Option configures a Network.
type Option func(*Network)

// WithEdgeCap sets the number of messages each directed edge delivers per
// round (default 1, the CONGEST bound). Values > 1 model the large-capacity
// variant used in Theorem 3.8.
func WithEdgeCap(c int) Option {
	return func(n *Network) {
		if c >= 1 {
			n.cap = c
		}
	}
}

// WithEdgeCapFunc sets a per-edge capacity: capOf(from, to) messages per
// round on the directed edge from→to (minimum 1). This models Theorem
// 3.8's hard instance exactly: the path edges of G'_n get (arbitrarily)
// large capacity while the tree edges keep the CONGEST budget — and the
// lower bound still holds because the tree is the bottleneck.
func WithEdgeCapFunc(capOf func(from, to graph.NodeID) int) Option {
	return func(n *Network) {
		if capOf == nil {
			return
		}
		n.capOf = make([]int32, len(n.queues))
		for v := 0; v < n.g.N(); v++ {
			for j, h := range n.g.Neighbors(graph.NodeID(v)) {
				c := capOf(graph.NodeID(v), h.To)
				if c < 1 {
					c = 1
				}
				n.capOf[n.off[v]+int32(j)] = int32(c)
			}
		}
	}
}

// WithMaxRounds sets the per-run round budget (default 50,000,000).
func WithMaxRounds(r int) Option {
	return func(n *Network) {
		if r >= 1 {
			n.maxRound = r
		}
	}
}

// WithCrash schedules a crash-stop fault: from the given round of every
// run onward, node v neither executes nor receives — messages addressed
// to it are dropped (counted in Result.Dropped). The paper lists failure
// robustness as future work (Section 5); this hook provides the fault
// model for experimenting with it (see the failure-injection tests: the
// Las Vegas drivers detect token loss rather than returning a wrong
// sample).
func WithCrash(v graph.NodeID, round int) Option {
	return func(n *Network) {
		if v < 0 || int(v) >= len(n.crashAt) || round < 0 {
			return
		}
		n.crashAt[v] = round
	}
}

// NewNetwork builds a simulator over g, with per-node RNG streams derived
// from seed.
func NewNetwork(g *graph.G, seed uint64, opts ...Option) *Network {
	n := g.N()
	net := &Network{
		g:        g,
		cap:      1,
		maxRound: 50_000_000,
		nodeRNG:  make([]*rng.RNG, n),
		off:      make([]int32, n+1),
		halfIdx:  make([]map[graph.NodeID][]int32, n),
		inbox:    make([][]Message, n),
		inStep:   make([]bool, n),
		awake:    make([]bool, n),
		crashAt:  make([]int, n),
	}
	for v := range net.crashAt {
		net.crashAt[v] = -1
	}
	base := rng.New(seed)
	for v := 0; v < n; v++ {
		net.nodeRNG[v] = base.Stream(uint64(v))
		net.off[v+1] = net.off[v] + int32(g.Degree(graph.NodeID(v)))
		idx := make(map[graph.NodeID][]int32, g.Degree(graph.NodeID(v)))
		for j, h := range g.Neighbors(graph.NodeID(v)) {
			idx[h.To] = append(idx[h.To], net.off[v]+int32(j))
		}
		net.halfIdx[v] = idx
	}
	total := net.off[n]
	net.queues = make([][]Message, total)
	net.inActive = make([]bool, total)
	for _, opt := range opts {
		opt(net)
	}
	return net
}

// Graph returns the underlying topology.
func (n *Network) Graph() *graph.G { return n.g }

// NodeRNG returns node v's persistent random stream. Protocol code uses it
// through Ctx; tests may use it directly.
func (n *Network) NodeRNG(v graph.NodeID) *rng.RNG { return n.nodeRNG[v] }

// Run executes p until quiescence, a Halter stop, or the round budget.
// It returns the cost of this run; the Result is also retained so drivers
// can sum sequential phases.
func (n *Network) Run(p Proto) (Result, error) {
	n.reset()
	ctx := &Ctx{net: n}
	for v := 0; v < n.g.N(); v++ {
		ctx.node = graph.NodeID(v)
		ctx.inbox = nil
		p.Init(ctx)
		if n.runErr != nil {
			return n.res, n.runErr
		}
	}
	halter, _ := p.(Halter)
	if halter != nil && halter.Halted() {
		return n.res, nil
	}
	for !n.quiescent() {
		if n.round >= n.maxRound {
			return n.res, fmt.Errorf("%w after %d rounds", ErrRoundLimit, n.round)
		}
		n.round++
		n.res.Rounds = n.round
		n.deliver()
		n.step(p, ctx)
		if n.runErr != nil {
			return n.res, n.runErr
		}
		if halter != nil && halter.Halted() {
			break
		}
	}
	return n.res, nil
}

// reset clears transient run state (queues are empty between runs by
// construction: a run only ends at quiescence, halt, error or budget; on
// the latter three we still drop leftovers so the next run starts clean).
func (n *Network) reset() {
	for _, e := range n.active {
		n.queues[e] = nil
		n.inActive[e] = false
	}
	n.active = n.active[:0]
	for v := range n.awake {
		n.awake[v] = false
		n.inbox[v] = n.inbox[v][:0]
	}
	n.awakeNodes = n.awakeNodes[:0]
	n.awakeCount = 0
	n.stepSet = n.stepSet[:0]
	n.round = 0
	n.res = Result{}
	n.runErr = nil
}

func (n *Network) quiescent() bool {
	return len(n.active) == 0 && n.awakeCount == 0
}

// deliver moves up to cap messages per active directed edge into inboxes
// and rebuilds the step set.
func (n *Network) deliver() {
	sort.Slice(n.active, func(i, j int) bool { return n.active[i] < n.active[j] })
	edges := append(n.scratch[:0], n.active...)
	n.scratch = edges
	n.active = n.active[:0]
	for _, e := range edges {
		n.inActive[e] = false
		q := n.queues[e]
		if len(q) > n.res.MaxQueue {
			n.res.MaxQueue = len(q)
		}
		k := n.cap
		if n.capOf != nil {
			k = int(n.capOf[e])
		}
		if k > len(q) {
			k = len(q)
		}
		for _, m := range q[:k] {
			to := m.To
			if n.crashed(to) {
				n.res.Dropped++
				continue
			}
			n.inbox[to] = append(n.inbox[to], m)
			n.res.Messages++
			n.res.Words += int64(m.Payload.Words())
			if !n.inStep[to] {
				n.inStep[to] = true
				n.stepSet = append(n.stepSet, to)
			}
		}
		if k == len(q) {
			n.queues[e] = nil
		} else {
			n.queues[e] = q[k:]
			n.markActive(e)
		}
	}
	// Compact the awake list (SetActive(false) leaves stale entries) and
	// schedule the remaining awake nodes.
	live := n.awakeNodes[:0]
	for _, v := range n.awakeNodes {
		if !n.awake[v] {
			continue
		}
		if n.crashed(v) {
			// Crash-stop: the node can no longer keep itself awake, or the
			// run would never reach quiescence.
			n.awake[v] = false
			n.awakeCount--
			continue
		}
		live = append(live, v)
		if !n.inStep[v] {
			n.inStep[v] = true
			n.stepSet = append(n.stepSet, v)
		}
	}
	n.awakeNodes = live
}

// step invokes the protocol on every scheduled node in ID order.
func (n *Network) step(p Proto, ctx *Ctx) {
	nodes := n.stepSet
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	n.stepSet = n.stepSet[:0]
	for _, v := range nodes {
		n.inStep[v] = false
		if n.crashed(v) {
			n.inbox[v] = n.inbox[v][:0]
			continue
		}
		ctx.node = v
		ctx.inbox = n.inbox[v]
		p.Step(ctx)
		n.inbox[v] = n.inbox[v][:0]
		if n.runErr != nil {
			return
		}
	}
}

// crashed reports whether v has crash-stopped by the current round.
func (n *Network) crashed(v graph.NodeID) bool {
	return n.crashAt[v] >= 0 && n.round >= n.crashAt[v]
}

func (n *Network) markActive(e int32) {
	if !n.inActive[e] {
		n.inActive[e] = true
		n.active = append(n.active, e)
	}
}

// send validates and enqueues a message from u to a neighbor. With parallel
// edges the least-loaded one is used.
func (n *Network) send(from, to graph.NodeID, p Payload) {
	if n.runErr != nil {
		return
	}
	if p == nil || p.Words() < 1 {
		n.runErr = fmt.Errorf("congest: node %d sent an invalid payload", from)
		return
	}
	idxs := n.halfIdx[from][to]
	if len(idxs) == 0 {
		n.runErr = fmt.Errorf("congest: node %d sent to non-neighbor %d", from, to)
		return
	}
	best := idxs[0]
	for _, e := range idxs[1:] {
		if len(n.queues[e]) < len(n.queues[best]) {
			best = e
		}
	}
	n.queues[best] = append(n.queues[best], Message{From: from, To: to, Payload: p})
	n.markActive(best)
}

// Ctx is the per-node view handed to protocol callbacks.
type Ctx struct {
	net   *Network
	node  graph.NodeID
	inbox []Message
}

// Node returns the executing node's ID.
func (c *Ctx) Node() graph.NodeID { return c.node }

// Round returns the current round number (0 during Init).
func (c *Ctx) Round() int { return c.net.round }

// Inbox returns the messages delivered to this node this round. The slice
// is reused by the engine; protocols must not retain it across calls.
func (c *Ctx) Inbox() []Message { return c.inbox }

// Send enqueues a message to a neighbor; it is delivered no earlier than
// the next round, later under congestion.
func (c *Ctx) Send(to graph.NodeID, p Payload) { c.net.send(c.node, to, p) }

// RNG returns this node's persistent random stream.
func (c *Ctx) RNG() *rng.RNG { return c.net.nodeRNG[c.node] }

// Degree returns the executing node's degree.
func (c *Ctx) Degree() int { return c.net.g.Degree(c.node) }

// Neighbors returns the executing node's half-edges (local knowledge in the
// model: each node knows its neighbors' IDs). Callers must not modify it.
func (c *Ctx) Neighbors() []graph.Half { return c.net.g.Neighbors(c.node) }

// N returns the network size, which the model assumes nodes know.
func (c *Ctx) N() int { return c.net.g.N() }

// SetActive requests (or cancels) a Step call next round even if no
// messages arrive.
func (c *Ctx) SetActive(active bool) {
	n := c.net
	v := c.node
	if active && !n.awake[v] {
		n.awake[v] = true
		n.awakeCount++
		n.awakeNodes = append(n.awakeNodes, v)
	} else if !active && n.awake[v] {
		n.awake[v] = false
		n.awakeCount--
	}
}
