package congest

import (
	"context"
	"errors"
	"testing"

	"distwalk/internal/graph"
)

func TestRunAbortsOnCanceledContext(t *testing.T) {
	net := pathNet(t, 2, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net.SetContext(ctx)
	_, err := net.Run(pingpong{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunAbortsMidRunOnDeadline(t *testing.T) {
	net := pathNet(t, 2, 1, WithMaxRounds(1<<30))
	ctx, cancel := context.WithCancel(context.Background())
	net.SetContext(ctx)
	// Cancel from round ~1000 by piggybacking on the protocol: a wrapper
	// would race, so instead cancel after a bounded first run and verify
	// the second run aborts promptly.
	res, err := net.Run(&roundCounter{stopAt: 1000, cancel: cancel})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (rounds=%d), want context.Canceled", err, res.Rounds)
	}
	if res.Rounds < 1000 || res.Rounds > 1000+ctxCheckMask+1 {
		t.Fatalf("aborted at round %d, want within %d of 1000", res.Rounds, ctxCheckMask+1)
	}
	// The aborted run left a token in flight; the network must be cleanly
	// reusable for an uncancelled run.
	net.SetContext(nil)
	if _, err := net.Run(&burst{from: 0, to: 1, k: 3}); err != nil {
		t.Fatalf("run after abort: %v", err)
	}
}

// roundCounter keeps the pingpong alive and cancels the installed context
// once stopAt rounds have executed.
type roundCounter struct {
	stopAt int
	cancel context.CancelFunc
}

func (p *roundCounter) Init(ctx *Ctx) { pingpong{}.Init(ctx) }

func (p *roundCounter) Step(ctx *Ctx) {
	if ctx.Round() >= p.stopAt {
		p.cancel()
	}
	pingpong{}.Step(ctx)
}

func TestReseedMatchesFreshNetwork(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewNetwork(g, 99)
	pooled := NewNetwork(g, 1) // different seed, then reseeded
	// Burn some randomness on the pooled network so Reseed must fully
	// restore the streams, not just match an untouched network.
	pooled.NodeRNG(0).Uint64()
	pooled.Reseed(99)
	for v := 0; v < g.N(); v++ {
		a, b := fresh.NodeRNG(graph.NodeID(v)), pooled.NodeRNG(graph.NodeID(v))
		for i := 0; i < 8; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("node %d draw %d: fresh %d != reseeded %d", v, i, x, y)
			}
		}
	}
}

func TestSetMaxRounds(t *testing.T) {
	net := pathNet(t, 2, 1)
	net.SetMaxRounds(10)
	_, err := net.Run(pingpong{})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}
