package congest

import (
	"errors"
	"testing"

	"distwalk/internal/graph"
)

type intPayload int

func (intPayload) Words() int   { return 1 }
func (intPayload) Kind() uint16 { return 100 }
func (p intPayload) Encode() [PayloadWords]uint64 {
	return [PayloadWords]uint64{uint64(int64(p))}
}
func (intPayload) Decode(w [PayloadWords]uint64) intPayload {
	return intPayload(int64(w[0]))
}

// burst sends k messages from node `from` to node `to` during Init and
// records arrivals at `to`.
type burst struct {
	from, to  graph.NodeID
	k         int
	got       int
	lastRound int
}

func (p *burst) Init(ctx *Ctx) {
	if ctx.Node() != p.from {
		return
	}
	for i := 0; i < p.k; i++ {
		Send(ctx, p.to, intPayload(i))
	}
}

func (p *burst) Step(ctx *Ctx) {
	if ctx.Node() != p.to {
		return
	}
	p.got += len(ctx.Inbox())
	p.lastRound = ctx.Round()
}

func pathNet(t *testing.T, n int, seed uint64, opts ...Option) *Network {
	t.Helper()
	g, err := graph.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	return NewNetwork(g, seed, opts...)
}

func TestUnitCapacitySerializesBurst(t *testing.T) {
	net := pathNet(t, 2, 1)
	p := &burst{from: 0, to: 1, k: 5}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.got != 5 {
		t.Fatalf("delivered %d of 5", p.got)
	}
	// One message per round on the single edge: last delivery in round 5.
	if res.Rounds != 5 || p.lastRound != 5 {
		t.Fatalf("rounds=%d lastRound=%d, want 5, 5", res.Rounds, p.lastRound)
	}
	if res.Messages != 5 || res.Words != 5 {
		t.Fatalf("messages=%d words=%d, want 5, 5", res.Messages, res.Words)
	}
	if res.MaxQueue != 5 {
		t.Fatalf("max queue %d, want 5", res.MaxQueue)
	}
}

func TestEdgeCapSpeedsUpBurst(t *testing.T) {
	net := pathNet(t, 2, 1, WithEdgeCap(2))
	p := &burst{from: 0, to: 1, k: 5}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 { // ceil(5/2)
		t.Fatalf("rounds=%d, want 3", res.Rounds)
	}
}

func TestParallelEdgesDoubleCapacity(t *testing.T) {
	g := graph.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1)
	p := &burst{from: 0, to: 1, k: 6}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 { // 6 messages over 2 parallel edges
		t.Fatalf("rounds=%d, want 3", res.Rounds)
	}
}

// relay forwards a token along the path to measure per-hop latency.
type relay struct {
	hops     int
	lastNode graph.NodeID
	done     bool
}

func (p *relay) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		Send(ctx, 1, intPayload(0))
	}
}

func (p *relay) Step(ctx *Ctx) {
	v := ctx.Node()
	for range ctx.Inbox() {
		p.hops++
		p.lastNode = v
		// Forward away from 0 until the end of the path.
		next := v + 1
		if int(next) < ctx.N() {
			Send(ctx, next, intPayload(0))
		} else {
			p.done = true
		}
	}
}

func TestRelayLatencyOneHopPerRound(t *testing.T) {
	net := pathNet(t, 6, 2)
	p := &relay{}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.done || p.lastNode != 5 {
		t.Fatalf("token did not reach the end: done=%v last=%d", p.done, p.lastNode)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds=%d, want 5 (one hop per round)", res.Rounds)
	}
}

type noop struct{}

func (noop) Init(*Ctx) {}
func (noop) Step(*Ctx) {}

func TestEmptyProtocolZeroRounds(t *testing.T) {
	net := pathNet(t, 3, 3)
	res, err := net.Run(noop{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("empty run cost rounds=%d msgs=%d", res.Rounds, res.Messages)
	}
}

type badSender struct{}

func (badSender) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		Send(ctx, 2, intPayload(0)) // 0 and 2 are not adjacent on a path of 3
	}
}
func (badSender) Step(*Ctx) {}

func TestSendToNonNeighborFails(t *testing.T) {
	net := pathNet(t, 3, 4)
	if _, err := net.Run(badSender{}); err == nil {
		t.Fatal("send to non-neighbor accepted")
	}
}

// zeroWords violates the Payload contract (Words() must be >= 1).
type zeroWords struct{}

func (zeroWords) Words() int                            { return 0 }
func (zeroWords) Kind() uint16                          { return 101 }
func (zeroWords) Encode() [PayloadWords]uint64          { return [PayloadWords]uint64{} }
func (zeroWords) Decode([PayloadWords]uint64) zeroWords { return zeroWords{} }

type badPayloadSender struct{}

func (badPayloadSender) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		Send(ctx, 1, zeroWords{})
	}
}
func (badPayloadSender) Step(*Ctx) {}

func TestInvalidPayloadFails(t *testing.T) {
	net := pathNet(t, 2, 4)
	if _, err := net.Run(badPayloadSender{}); err == nil {
		t.Fatal("zero-word payload accepted")
	}
}

// pingpong bounces a token between nodes 0 and 1 forever.
type pingpong struct{}

func (pingpong) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		Send(ctx, 1, intPayload(0))
	}
}

func (pingpong) Step(ctx *Ctx) {
	for _, m := range ctx.Inbox() {
		Send(ctx, m.From, intPayload(0))
	}
}

func TestMaxRoundsLimit(t *testing.T) {
	net := pathNet(t, 2, 5, WithMaxRounds(50))
	_, err := net.Run(pingpong{})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("want ErrRoundLimit, got %v", err)
	}
}

// haltAfter ping-pongs but reports Halted once enough rounds passed.
type haltAfter struct {
	pingpong
	net   *Network
	limit int
}

func (h *haltAfter) Halted() bool { return h.net.res.Rounds >= h.limit }

func TestHalterStopsRun(t *testing.T) {
	net := pathNet(t, 2, 6)
	h := &haltAfter{net: net, limit: 7}
	res, err := net.Run(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 7 {
		t.Fatalf("rounds=%d, want halt at 7", res.Rounds)
	}
}

// selfTicker counts rounds it gets stepped while active, without messages.
type selfTicker struct {
	steps int
	quota int
}

func (p *selfTicker) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		ctx.SetActive(true)
	}
}

func (p *selfTicker) Step(ctx *Ctx) {
	if ctx.Node() != 0 {
		return
	}
	p.steps++
	if p.steps >= p.quota {
		ctx.SetActive(false)
	}
}

func TestSetActiveDrivesSteps(t *testing.T) {
	net := pathNet(t, 2, 7)
	p := &selfTicker{quota: 4}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.steps != 4 || res.Rounds != 4 {
		t.Fatalf("steps=%d rounds=%d, want 4, 4", p.steps, res.Rounds)
	}
}

// randomWalker forwards a token to a uniformly random neighbor `hops`
// times, recording the trajectory.
type randomWalker struct {
	hops int
	path []graph.NodeID
}

func (p *randomWalker) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		p.path = append(p.path, 0)
		if p.hops > 0 {
			hs := ctx.Neighbors()
			Send(ctx, hs[ctx.RNG().Intn(len(hs))].To, intPayload(p.hops-1))
		}
	}
}

func (p *randomWalker) Step(ctx *Ctx) {
	for _, m := range ctx.Inbox() {
		p.path = append(p.path, ctx.Node())
		rem := int(As[intPayload](m))
		if rem > 0 {
			hs := ctx.Neighbors()
			Send(ctx, hs[ctx.RNG().Intn(len(hs))].To, intPayload(rem-1))
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) []graph.NodeID {
		net := NewNetwork(g, seed)
		p := &randomWalker{hops: 200}
		if _, err := net.Run(p); err != nil {
			t.Fatal(err)
		}
		return p.path
	}
	a, b := run(99), run(99)
	if len(a) != len(b) || len(a) != 201 {
		t.Fatalf("path lengths %d, %d; want 201", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hop %d", i)
		}
	}
	c := run(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-hop walks")
	}
}

func TestNetworkReusableAcrossRuns(t *testing.T) {
	net := pathNet(t, 4, 8)
	for i := 0; i < 3; i++ {
		p := &burst{from: 0, to: 1, k: 3}
		res, err := net.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if p.got != 3 || res.Rounds != 3 {
			t.Fatalf("run %d: got=%d rounds=%d", i, p.got, res.Rounds)
		}
	}
}

func TestResultAdd(t *testing.T) {
	a := Result{Rounds: 3, Messages: 10, Words: 12, MaxQueue: 2}
	a.Add(Result{Rounds: 4, Messages: 1, Words: 1, MaxQueue: 5})
	want := Result{Rounds: 7, Messages: 11, Words: 13, MaxQueue: 5}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestNodeRNGStreamsDiffer(t *testing.T) {
	net := pathNet(t, 3, 11)
	a := net.NodeRNG(0).Uint64()
	b := net.NodeRNG(1).Uint64()
	if a == b {
		t.Fatal("node RNG streams collide")
	}
}
