package congest

import (
	"fmt"
	"testing"

	"distwalk/internal/graph"
)

// Engine micro-benchmarks. These isolate the simulator's own hot loop —
// scheduling, queueing, delivery — from algorithm logic, so allocation
// discipline and per-round overhead are visible directly (run with
// -benchmem; the acceptance bar for engine refactors is allocs/op).

// benchBurst floods k messages down one edge (queue churn, serialization).
type benchBurst struct {
	k   int
	got int
}

func (p *benchBurst) Init(ctx *Ctx) {
	if ctx.Node() != 0 {
		return
	}
	for i := 0; i < p.k; i++ {
		Send(ctx, 1, intPayload(i))
	}
}

func (p *benchBurst) Step(ctx *Ctx) {
	p.got += len(ctx.Inbox())
}

func BenchmarkEngineBurst(b *testing.B) {
	g, err := graph.Path(2)
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &benchBurst{k: 64}
		if _, err := net.Run(p); err != nil {
			b.Fatal(err)
		}
		if p.got != 64 {
			b.Fatalf("delivered %d of 64", p.got)
		}
	}
}

// benchToken forwards a single token for `hops` random steps — the
// steady-state shape of every walk protocol (1 active edge, 1 message per
// round, sparse step set).
type benchToken struct {
	hops int
}

func (p *benchToken) Init(ctx *Ctx) {
	if ctx.Node() != 0 {
		return
	}
	hs := ctx.Neighbors()
	Send(ctx, hs[ctx.RNG().Intn(len(hs))].To, intPayload(p.hops-1))
}

func (p *benchToken) Step(ctx *Ctx) {
	for _, m := range ctx.Inbox() {
		rem := int(As[intPayload](m))
		if rem <= 0 {
			continue
		}
		hs := ctx.Neighbors()
		Send(ctx, hs[ctx.RNG().Intn(len(hs))].To, intPayload(rem-1))
	}
}

func BenchmarkEngineTokenWalk(b *testing.B) {
	g, err := graph.Torus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Run(&benchToken{hops: 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFlood has every node broadcast to all neighbors for `rounds` rounds
// (dense active set: every edge busy every round).
type benchFlood struct {
	rounds int
}

func (p *benchFlood) Init(ctx *Ctx) {
	for _, h := range ctx.Neighbors() {
		Send(ctx, h.To, intPayload(p.rounds-1))
	}
}

func (p *benchFlood) Step(ctx *Ctx) {
	in := ctx.Inbox()
	if len(in) == 0 {
		return
	}
	rem := int(As[intPayload](in[0]))
	if rem <= 0 {
		return
	}
	for _, h := range ctx.Neighbors() {
		Send(ctx, h.To, intPayload(rem-1))
	}
}

func BenchmarkEngineFlood(b *testing.B) {
	g, err := graph.Torus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Run(&benchFlood{rounds: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTreeSweeps measures the tree primitives that Phase 2
// stitching leans on (4 sweeps per SAMPLE-DESTINATION call).
func BenchmarkEngineTreeSweeps(b *testing.B) {
	g, err := graph.Torus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(g, 1)
	tree, _, err := BuildBFSTree(net, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Broadcast(net, tree, intPayload(7), nil); err != nil {
			b.Fatal(err)
		}
		if _, _, err := Convergecast(net, tree,
			func(v graph.NodeID) intPayload { return intPayload(v) },
			func(_ graph.NodeID, a, c intPayload) intPayload { return a + c },
		); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBFSBuild(b *testing.B) {
	g, err := graph.Torus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	net := NewNetwork(g, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildBFSTree(net, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineShardedFlood measures the sharded round loop against the
// sequential engine on the same heavy-fan-out workload (every node
// forwarding every received token): the barrier + transfer-buffer overhead
// is visible at shards > 1 on one core, and the speedup on many.
func BenchmarkEngineShardedFlood(b *testing.B) {
	g, err := graph.Torus(32, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			net := NewNetwork(g, 1, WithShards(shards))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Reseed(1)
				p := (&stressProto{seeds: 4, hops: 64}).prepare(g.N())
				if _, err := net.Run(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
