package congest

import (
	"fmt"

	"distwalk/internal/graph"
)

// Tree is a rooted BFS spanning tree, the standard CONGEST communication
// scaffold (used by SAMPLE-DESTINATION, cover checks, and upcasts). It is
// produced by the distributed flooding protocol in BuildBFSTree; the struct
// aggregates what each node knows locally (its parent, children and depth)
// for the convenience of driver code.
type Tree struct {
	Root     graph.NodeID
	Parent   []graph.NodeID
	Children [][]graph.NodeID
	Depth    []int32
	// Height is the maximum depth, i.e. the eccentricity of the root.
	Height int
}

// Payload kinds local to the BFS protocol run.
const (
	kindAnnounce uint16 = 1
	kindChildAck uint16 = 2
)

type announce struct{ depth int32 }

func (announce) Words() int   { return 1 }
func (announce) Kind() uint16 { return kindAnnounce }
func (a announce) Encode() [PayloadWords]uint64 {
	return [PayloadWords]uint64{uint64(uint32(a.depth))}
}
func (announce) Decode(w [PayloadWords]uint64) announce {
	return announce{depth: int32(uint32(w[0]))}
}

type childAck struct{}

func (childAck) Words() int                           { return 1 }
func (childAck) Kind() uint16                         { return kindChildAck }
func (childAck) Encode() [PayloadWords]uint64         { return [PayloadWords]uint64{} }
func (childAck) Decode([PayloadWords]uint64) childAck { return childAck{} }

type bfsProto struct {
	root     graph.NodeID
	sc       *nodeScratch // stamp[v] == epoch marks v visited
	parent   []graph.NodeID
	children [][]graph.NodeID
	depth    []int32
}

func (p *bfsProto) visited(v graph.NodeID) bool { return p.sc.stamp[v] == p.sc.epoch }
func (p *bfsProto) visit(v graph.NodeID)        { p.sc.stamp[v] = p.sc.epoch }

func (p *bfsProto) Init(ctx *Ctx) {
	v := ctx.Node()
	if v != p.root {
		return
	}
	p.visit(v)
	p.depth[v] = 0
	for _, h := range ctx.Neighbors() {
		Send(ctx, h.To, announce{depth: 1})
	}
}

func (p *bfsProto) Step(ctx *Ctx) {
	v := ctx.Node()
	for _, m := range ctx.Inbox() {
		switch m.Kind {
		case kindAnnounce:
			if p.visited(v) {
				continue
			}
			pl := As[announce](m)
			p.visit(v)
			p.parent[v] = m.From
			p.depth[v] = pl.depth
			Send(ctx, m.From, childAck{})
			for _, h := range ctx.Neighbors() {
				if h.To != m.From {
					Send(ctx, h.To, announce{depth: pl.depth + 1})
				}
			}
		case kindChildAck:
			p.children[v] = append(p.children[v], m.From)
		}
	}
}

// BuildBFSTree runs the flooding BFS-tree protocol from root and returns
// the resulting tree and the run cost (O(D) rounds, O(m) messages). It
// fails if the graph is disconnected.
func BuildBFSTree(net *Network, root graph.NodeID) (*Tree, Result, error) {
	return BuildBFSTreeReuse(net, root, nil)
}

// BuildBFSTreeReuse is BuildBFSTree recycling the slabs of a retired Tree
// of the same network (pass nil for a fresh build). The recycled Tree must
// no longer be referenced by its previous owner: its arrays are
// overwritten in place. The build itself borrows the network's epoch-
// stamped node scratch for the visited set, so a warm rebuild allocates
// nothing.
func BuildBFSTreeReuse(net *Network, root graph.NodeID, recycle *Tree) (*Tree, Result, error) {
	n := net.Graph().N()
	if root < 0 || int(root) >= n {
		return nil, Result{}, fmt.Errorf("congest: BFS root %d out of range [0,%d)", root, n)
	}
	t := recycle
	if t == nil || len(t.Parent) != n || len(t.Children) != n || len(t.Depth) != n {
		t = &Tree{
			Parent:   make([]graph.NodeID, n),
			Children: make([][]graph.NodeID, n),
			Depth:    make([]int32, n),
		}
	} else {
		for v := range t.Children {
			t.Children[v] = t.Children[v][:0]
		}
	}
	t.Root = root
	t.Height = 0
	p := &bfsProto{
		root:     root,
		sc:       net.scratch(),
		parent:   t.Parent,
		children: t.Children,
		depth:    t.Depth,
	}
	for i := range p.parent {
		p.parent[i] = graph.None
	}
	res, err := net.Run(p)
	if err != nil {
		return nil, res, err
	}
	for v := 0; v < n; v++ {
		if !p.visited(graph.NodeID(v)) {
			return nil, res, fmt.Errorf("congest: BFS from %d did not reach node %d (graph disconnected?)", root, v)
		}
		if int(p.depth[v]) > t.Height {
			t.Height = int(p.depth[v])
		}
	}
	return t, res, nil
}

type broadcastProto[V WirePayload[V]] struct {
	t       *Tree
	payload V
	visit   func(graph.NodeID, V)
}

func (p *broadcastProto[V]) Init(ctx *Ctx) {
	v := ctx.Node()
	if v != p.t.Root {
		return
	}
	if p.visit != nil {
		p.visit(v, p.payload)
	}
	for _, c := range p.t.Children[v] {
		Send(ctx, c, p.payload)
	}
}

func (p *broadcastProto[V]) Step(ctx *Ctx) {
	v := ctx.Node()
	var z V
	for _, m := range ctx.Inbox() {
		if m.Kind != z.Kind() {
			continue
		}
		pl := z.Decode(m.W)
		if p.visit != nil {
			p.visit(v, pl)
		}
		for _, c := range p.t.Children[v] {
			Send(ctx, c, pl)
		}
	}
}

// Broadcast floods payload from the root to every node over tree edges
// (Height rounds). visit is called at every node, root included, when the
// payload arrives; it may be nil.
func Broadcast[V WirePayload[V]](net *Network, t *Tree, payload V, visit func(graph.NodeID, V)) (Result, error) {
	return net.Run(&broadcastProto[V]{t: t, payload: payload, visit: visit})
}

// convergecastProto keeps its per-node aggregates in the network's node
// scratch as encoded payload words (every V is a WirePayload, so
// Encode/Decode round-trips exactly — a value that survives a tree edge
// survives the scratch). A convergecast therefore allocates nothing per
// call; before the scratch, the two O(n) arrays here were the dominant
// per-stitch allocation of SAMPLE-DESTINATION.
type convergecastProto[V WirePayload[V]] struct {
	t       *Tree
	initVal func(graph.NodeID) V
	merge   func(graph.NodeID, V, V) V

	sc   *nodeScratch
	out  V
	done bool
}

func (p *convergecastProto[V]) Init(ctx *Ctx) {
	v := ctx.Node()
	p.sc.acc[v] = p.initVal(v).Encode()
	p.sc.pending[v] = int32(len(p.t.Children[v]))
	if p.sc.pending[v] == 0 {
		p.emit(ctx, v)
	}
}

func (p *convergecastProto[V]) Step(ctx *Ctx) {
	v := ctx.Node()
	var z V
	for _, m := range ctx.Inbox() {
		if m.Kind != z.Kind() {
			continue
		}
		p.sc.acc[v] = p.merge(v, z.Decode(p.sc.acc[v]), z.Decode(m.W)).Encode()
		p.sc.pending[v]--
		if p.sc.pending[v] == 0 {
			p.emit(ctx, v)
		}
	}
}

func (p *convergecastProto[V]) emit(ctx *Ctx, v graph.NodeID) {
	var z V
	if v == p.t.Root {
		p.out = z.Decode(p.sc.acc[v])
		p.done = true
		return
	}
	Send(ctx, p.t.Parent[v], z.Decode(p.sc.acc[v]))
}

// Convergecast aggregates a value up the tree in Height rounds: each node
// starts with initVal(node) and folds in each child's aggregate with
// merge(node, acc, childVal); the root's final aggregate is returned.
// merge must be associative-enough for the caller's purpose (children
// arrive in delivery order).
func Convergecast[V WirePayload[V]](
	net *Network,
	t *Tree,
	initVal func(graph.NodeID) V,
	merge func(graph.NodeID, V, V) V,
) (V, Result, error) {
	p := &convergecastProto[V]{t: t, initVal: initVal, merge: merge, sc: net.scratch()}
	res, err := net.Run(p)
	var zero V
	if err != nil {
		return zero, res, err
	}
	if !p.done {
		return zero, res, fmt.Errorf("congest: convergecast did not complete at root %d", t.Root)
	}
	return p.out, res, nil
}

type broadcastManyProto[V WirePayload[V]] struct {
	t     *Tree
	items []V
	visit func(graph.NodeID, V)
}

func (p *broadcastManyProto[V]) Init(ctx *Ctx) {
	v := ctx.Node()
	if v != p.t.Root {
		return
	}
	for _, it := range p.items {
		if p.visit != nil {
			p.visit(v, it)
		}
		for _, c := range p.t.Children[v] {
			Send(ctx, c, it)
		}
	}
}

func (p *broadcastManyProto[V]) Step(ctx *Ctx) {
	v := ctx.Node()
	var z V
	for _, m := range ctx.Inbox() {
		if m.Kind != z.Kind() {
			continue
		}
		pl := z.Decode(m.W)
		if p.visit != nil {
			p.visit(v, pl)
		}
		for _, c := range p.t.Children[v] {
			Send(ctx, c, pl)
		}
	}
}

// BroadcastMany floods a batch of payloads from the root to every node,
// pipelined one message per edge per round: O(len(items) + Height) rounds.
// visit is called at every node for every item; it may be nil.
func BroadcastMany[V WirePayload[V]](net *Network, t *Tree, items []V, visit func(graph.NodeID, V)) (Result, error) {
	return net.Run(&broadcastManyProto[V]{t: t, items: items, visit: visit})
}

type upcastProto[V WirePayload[V]] struct {
	t         *Tree
	items     func(graph.NodeID) []V
	collected []V
}

func (p *upcastProto[V]) Init(ctx *Ctx) {
	v := ctx.Node()
	for _, it := range p.items(v) {
		if v == p.t.Root {
			p.collected = append(p.collected, it)
		} else {
			Send(ctx, p.t.Parent[v], it)
		}
	}
}

func (p *upcastProto[V]) Step(ctx *Ctx) {
	v := ctx.Node()
	var z V
	for _, m := range ctx.Inbox() {
		if m.Kind != z.Kind() {
			continue
		}
		pl := z.Decode(m.W)
		if v == p.t.Root {
			p.collected = append(p.collected, pl)
		} else {
			Send(ctx, p.t.Parent[v], pl)
		}
	}
}

// Upcast streams every node's items to the root over tree edges, pipelined
// one message per edge per round (the standard upcast primitive; see
// Peleg's book). With a total of s items the run takes O(s + Height)
// rounds, which the engine's queueing measures naturally. Items arrive in
// a deterministic order.
func Upcast[V WirePayload[V]](net *Network, t *Tree, items func(graph.NodeID) []V) ([]V, Result, error) {
	p := &upcastProto[V]{t: t, items: items}
	res, err := net.Run(p)
	if err != nil {
		return nil, res, err
	}
	return p.collected, res, nil
}
