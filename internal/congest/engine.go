package congest

import (
	"errors"
	"fmt"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// ShardEngine is the server side of cluster mode: the transport layer of
// one shard — the per-directed-edge queues, fault-charging state and
// delivery counters for a contiguous node range — factored out of the
// Network so it can run in a separate process (cmd/distwalkd) behind the
// internal/wire protocol. The protocol layer (Init/Step, per-node RNG
// streams, awake bookkeeping) stays in the client process; each round the
// client pushes that round's sends to the engine owning the sender and
// asks every engine to deliver, merging the returned buffers in ascending
// shard order. Because engines own ascending contiguous edge ranges and
// deliver in ascending edge order, the merge reproduces the sequential
// engine's global directed-edge delivery order bit for bit — the same
// argument that makes the in-process sharded engine exact (see doc.go).
//
// A ShardEngine serves one client session: per-edge state (queue contents,
// drop-decision ordinals, delay release rounds) is session state, exactly
// like one pooled worker's Network in-process. Engines are not safe for
// concurrent use; cmd/distwalkd builds one per connection.
type ShardEngine struct {
	// net hosts the shared machinery the engine borrows from the
	// sequential engine — the flat half-edge index, the ring queues, the
	// compiled fault plan — so the two delivery bodies can never drift on
	// index layout or plan compilation. Its run loop is never used; its
	// round counter is slaved to the client's round via Push/Deliver.
	net *Network

	index  int
	nodeLo int32 // global node range [nodeLo, nodeHi)
	nodeHi int32
	edgeLo int32 // == off[nodeLo]; the engine owns edges [edgeLo, off[nodeHi])

	active *sched    // engine-local edge indices (global edge - edgeLo)
	out    []Message // deliver buffer, ascending edge order, reused

	res  Result
	loss lossInfo

	// Cumulative occupancy counters (survive RunBegin; exported via the
	// distwalkd expvar endpoint).
	runs      int64
	pushed    int64
	delivered int64
}

// Typed error taxonomy for the remote execution path. ErrShardPlan
// reports an invalid shard plan or index at engine construction;
// ErrBadPush a push frame that violates the protocol contract (sender
// outside the engine's range, non-neighbor destination, empty payload);
// ErrRemoteShard a remote engine that failed or vanished mid-run (the
// client wraps the transport cause, errors.Is-able through it).
var (
	// ErrShardPlan reports an invalid shard plan or shard index.
	ErrShardPlan = errors.New("congest: invalid shard plan")
	// ErrBadPush reports a remote push that violates the protocol
	// contract.
	ErrBadPush = errors.New("congest: invalid remote push")
	// ErrRemoteShard reports a failed remote shard engine.
	ErrRemoteShard = errors.New("congest: remote shard engine failure")
)

// PlanShards returns the S+1 node boundaries of the degree-balanced
// contiguous partition SetShards would build for s shards (s clamped to
// [1, n] the same way), so a cluster client and its remote engines agree
// on the plan without sharing a Network.
func PlanShards(g *graph.G, s int) []int32 {
	n := g.N()
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(graph.NodeID(v)))
	}
	return planShards(off, n, s)
}

// validBounds checks that bounds is a monotone cover of [0, n].
func validBounds(bounds []int32, n int) bool {
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != int32(n) {
		return false
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return false
		}
	}
	return true
}

// NewShardEngine builds the transport engine for shard index of the given
// plan over g: edgeCap messages per directed edge per round (minimum 1,
// the CONGEST bound) and an optional fault plan compiled exactly as
// Network.SetFaultPlan would. The bounds must be a monotone cover of
// [0, n] (PlanShards produces one); violations and an out-of-range index
// fail with ErrShardPlan, a bad plan with the usual ErrBadFault chain.
func NewShardEngine(g *graph.G, bounds []int32, index, edgeCap int, plan *fault.Plan) (*ShardEngine, error) {
	if !validBounds(bounds, g.N()) {
		return nil, fmt.Errorf("%w: bounds %v do not cover [0,%d]", ErrShardPlan, bounds, g.N())
	}
	if index < 0 || index >= len(bounds)-1 {
		return nil, fmt.Errorf("%w: shard index %d outside [0,%d)", ErrShardPlan, index, len(bounds)-1)
	}
	net := NewNetwork(g, 0)
	if edgeCap > 1 {
		net.cap = edgeCap
	}
	if plan != nil {
		if err := net.SetFaultPlan(plan); err != nil {
			return nil, err
		}
	}
	lo, hi := bounds[index], bounds[index+1]
	return &ShardEngine{
		net:    net,
		index:  index,
		nodeLo: lo,
		nodeHi: hi,
		edgeLo: net.off[lo],
		active: newSched(int(net.off[hi] - net.off[lo])),
	}, nil
}

// Shard reports the engine's shard index.
func (e *ShardEngine) Shard() int { return e.index }

// NodeRange reports the engine's node range [lo, hi).
func (e *ShardEngine) NodeRange() (lo, hi graph.NodeID) {
	return graph.NodeID(e.nodeLo), graph.NodeID(e.nodeHi)
}

// Active reports the number of edges with queued (or in-transit delayed)
// messages — this engine's contribution to the client's quiescence check,
// the exact analogue of the in-process shard's active.count.
func (e *ShardEngine) Active() int { return e.active.count }

// Stats reports the engine's cumulative occupancy counters: runs served,
// messages pushed and messages delivered.
func (e *ShardEngine) Stats() (runs, pushed, delivered int64) {
	return e.runs, e.pushed, e.delivered
}

// RunBegin resets the engine for a fresh run: leftover queues from an
// aborted run drain, counters and the first-loss record clear, the
// per-run fault decision state (drop ordinals, delay releases) resets —
// exactly the per-shard portion of resetSharded.
func (e *ShardEngine) RunBegin() {
	n := e.net
	e.active.drain(func(le int32) { n.queues[e.edgeLo+le].clear() })
	e.out = e.out[:0]
	e.res = Result{}
	e.loss = lossInfo{}
	n.round = 0
	if n.flt != nil {
		n.flt.resetRun()
	}
	e.runs++
}

// Push enqueues the client's sends for the given round, resolving each to
// a directed edge with the sequential engine's exact semantics: binary
// search of the sender's neighbor segment, least-loaded pick among
// parallel edges (ties to the first in adjacency order), and the
// delay-start release write for a message entering an idle slow link.
// The client has already validated the send at the protocol boundary
// (runErr semantics stay client-side); a send that still violates the
// contract here — sender outside the engine's range, non-neighbor
// destination, empty payload — is a protocol violation and fails the
// session with ErrBadPush.
//
// KEEP IN LOCKSTEP with Network.send (congest.go): the edge resolution,
// tie-break, delay-start write and activity mark must compute the same
// values or cluster runs diverge from in-process runs.
func (e *ShardEngine) Push(round int, msgs []Message) error {
	n := e.net
	n.round = round
	for i := range msgs {
		m := &msgs[i]
		from, to := m.From, m.To
		if from < graph.NodeID(e.nodeLo) || from >= graph.NodeID(e.nodeHi) {
			return fmt.Errorf("%w: sender %d outside shard %d range [%d,%d)",
				ErrBadPush, from, e.index, e.nodeLo, e.nodeHi)
		}
		if to < 0 || int(to) >= n.g.N() || m.words < 1 {
			return fmt.Errorf("%w: node %d sent an invalid message", ErrBadPush, from)
		}
		lo, hi := n.off[from], n.off[from+1]
		for lo < hi {
			mid := (lo + hi) >> 1
			if n.nbrTo[mid] < int32(to) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == n.off[from+1] || n.nbrTo[lo] != int32(to) {
			return fmt.Errorf("%w: node %d sent to non-neighbor %d", ErrBadPush, from, to)
		}
		best := n.nbrEdge[lo]
		for j := lo + 1; j < n.off[from+1] && n.nbrTo[j] == int32(to); j++ {
			ed := n.nbrEdge[j]
			if n.queues[ed].size < n.queues[best].size {
				best = ed
			}
		}
		n.queues[best].push(*m)
		if f := n.flt; f != nil && f.delay != nil {
			if d := f.delay[best]; d > 0 && n.queues[best].size == 1 {
				if r := int32(round) + 1 + d; r > f.release[best] {
					f.release[best] = r
				}
			}
		}
		e.active.add(best - e.edgeLo)
	}
	e.pushed += int64(len(msgs))
	return nil
}

// Deliver drains the engine's active edges for the given round in
// ascending edge order — this shard's slice of the global deterministic
// delivery order — charging delays, crash drops and lossy-link rolls in
// the canonical order and appending survivors to the returned buffer.
// The buffer is reused across rounds; callers must consume it before the
// next Deliver.
//
// KEEP IN LOCKSTEP with shard.deliverOut (shard.go) and Network.deliver
// (congest.go): this is the same per-edge drain with the transfer-buffer
// append replaced by a single wire buffer (the client is the only
// destination). Any semantic change to any of the three bodies must be
// mirrored in the others or the bit-identity contract breaks.
func (e *ShardEngine) Deliver(round int) []Message {
	n := e.net
	n.round = round
	e.out = e.out[:0]
	e.active.drain(func(le int32) {
		ei := e.edgeLo + le
		q := &n.queues[ei]
		if f := n.flt; f != nil && f.delay != nil && f.delay[ei] > 0 {
			if int32(round) < f.release[ei] {
				e.res.Faults.Delayed++
				e.active.add(le)
				return
			}
		}
		depth := int(q.size)
		if depth > e.res.MaxQueue {
			e.res.MaxQueue = depth
		}
		k := n.cap
		if n.capOf != nil {
			k = int(n.capOf[ei])
		}
		if k > depth {
			k = depth
		}
		for i := 0; i < k; i++ {
			m := q.at(int32(i))
			to := m.To
			if n.crashed(to) {
				e.res.Faults.Dropped++
				e.noteLoss(ei, m, false)
				continue
			}
			if f := n.flt; f != nil && f.drop != nil {
				if th := f.drop[ei]; th != 0 {
					f.seq[ei]++
					if fault.Roll(f.key, uint64(ei), f.seq[ei]) < th {
						e.res.Faults.LinkDropped++
						e.noteLoss(ei, m, true)
						continue
					}
				}
			}
			e.out = append(e.out, *m)
			e.res.Messages++
			e.res.Words += int64(m.words)
		}
		q.popN(int32(k))
		if q.size > 0 {
			e.active.add(le)
		}
		if f := n.flt; f != nil && f.delay != nil && f.delay[ei] > 0 {
			f.release[ei] = int32(round) + 1 + f.delay[ei]
		}
	})
	e.delivered += int64(len(e.out))
	return e.out
}

// noteLoss records a dropped message if it is the run's first loss; the
// engine-local twin of shard.noteLoss.
func (e *ShardEngine) noteLoss(ei int32, m *Message, link bool) {
	if e.loss.valid {
		return
	}
	e.loss = lossInfo{valid: true, link: link, round: int32(e.net.round), edge: ei, from: m.From, to: m.To}
}

// RunEnd returns the run's counters and first-loss record; the client
// merges them exactly as runSharded merges per-shard results (counters
// sum, MaxQueue maxes, losses pick the minimum (round, edge)).
func (e *ShardEngine) RunEnd() (Result, LossRecord) {
	return e.res, LossRecord{
		Valid: e.loss.valid,
		Link:  e.loss.link,
		Round: e.loss.round,
		Edge:  e.loss.edge,
		From:  e.loss.from,
		To:    e.loss.to,
	}
}

// LossRecord is the exported form of a shard engine's first-loss record,
// carried over the wire at run end and merged into the client network's
// request-level loss (see Network.LossError).
type LossRecord struct {
	Valid bool
	Link  bool // lossy-link drop (vs down-receiver drop)
	Round int32
	Edge  int32 // global directed-edge index, for the merge order
	From  graph.NodeID
	To    graph.NodeID
}

// MakeMessage constructs a Message explicitly; the wire codec uses it to
// rebuild messages on the far side of a connection (words is the payload
// size in O(log n)-bit units as declared by the sender's Payload).
func MakeMessage(from, to graph.NodeID, kind uint16, words int, w [PayloadWords]uint64) Message {
	return Message{From: from, To: to, Kind: kind, words: uint16(words), W: w}
}
