package congest

import (
	"context"
	"errors"
	"testing"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// --- Bit-identity: in-process vs remote (loopback) cluster execution ---

// runStressRemote mirrors runStress on a cluster client: the network's
// transport runs in a LoopbackShard group of s engines, built over the
// same plan a cluster of s distwalkd processes would serve.
func runStressRemote(t *testing.T, g *graph.G, s, edgeCap int, plan *fault.Plan, opts ...Option) (Result, *stressProto, error) {
	t.Helper()
	net := NewNetwork(g, 42, opts...)
	if plan != nil {
		// The client keeps the compiled plan too: crashed-node checks on
		// the awake list and the Crashed census stay client-side.
		if err := net.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	group, bounds, err := NewLoopbackGroup(g, s, edgeCap, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectRemote(group, bounds); err != nil {
		t.Fatal(err)
	}
	if net.Remote() != len(group) {
		t.Fatalf("Remote() = %d, want %d", net.Remote(), len(group))
	}
	p := (&stressProto{seeds: 3, hops: 40, awakeRounds: 12}).prepare(g.N())
	res, err := net.Run(p)
	return res, p, err
}

func TestRemoteIdentityEngine(t *testing.T) {
	for name, g := range stressGraphs(t) {
		t.Run(name, func(t *testing.T) {
			seqRes, seqP, err := runStress(t, g, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, engines := range []int{1, 2, 3, 4, 8} {
				res, p, err := runStressRemote(t, g, engines, 1, nil)
				if err != nil {
					t.Fatalf("engines=%d: %v", engines, err)
				}
				if res != seqRes {
					t.Fatalf("engines=%d: Result %+v != sequential %+v", engines, res, seqRes)
				}
				for v := range seqP.got {
					if p.got[v] != seqP.got[v] || p.sum[v] != seqP.sum[v] {
						t.Fatalf("engines=%d node %d: got %d/sum %d, sequential %d/%d",
							engines, v, p.got[v], p.sum[v], seqP.got[v], seqP.sum[v])
					}
				}
			}
		})
	}
}

func TestRemoteIdentityEdgeCapAndBudget(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("cap3", func(t *testing.T) {
		seqRes, seqP, err := runStress(t, g, 1, WithEdgeCap(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, engines := range []int{2, 4} {
			res, p, err := runStressRemote(t, g, engines, 3, nil)
			if err != nil {
				t.Fatalf("engines=%d: %v", engines, err)
			}
			if res != seqRes {
				t.Fatalf("engines=%d: Result %+v != sequential %+v", engines, res, seqRes)
			}
			for v := range seqP.got {
				if p.got[v] != seqP.got[v] || p.sum[v] != seqP.sum[v] {
					t.Fatalf("engines=%d node %d diverged", engines, v)
				}
			}
		}
	})
	t.Run("budget", func(t *testing.T) {
		seqRes, _, seqErr := runStress(t, g, 1, WithMaxRounds(9))
		if !errors.Is(seqErr, ErrRoundLimit) {
			t.Fatalf("sequential err = %v, want round limit", seqErr)
		}
		res, _, err := runStressRemote(t, g, 4, 1, nil, WithMaxRounds(9))
		if !errors.Is(err, ErrRoundLimit) {
			t.Fatalf("cluster err = %v, want round limit", err)
		}
		if res != seqRes {
			t.Fatalf("cluster Result %+v != sequential %+v", res, seqRes)
		}
	})
}

// TestRemoteIdentityFaultPlan drives the full fault surface — scripted
// crashes, churn windows, global and per-link loss, link delays — through
// the loopback cluster and requires counters, per-node state and the
// typed first-loss record to be bit-identical to the sequential engine.
func TestRemoteIdentityFaultPlan(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{
		Seed:     77,
		DropProb: 0.01,
		Crashes:  []fault.Crash{{Node: 11, Round: 6}},
		Churn:    []fault.Churn{{Node: 30, From: 3, To: 9}},
		LinkDrops: []fault.LinkDrop{
			{From: 1, To: 2, Prob: 0.5},
		},
		LinkDelays: []fault.LinkDelay{
			{From: 9, To: 10, Rounds: 3},
			{From: 17, To: 18, Rounds: 2},
		},
	}
	seqNet := NewNetwork(g, 42)
	if err := seqNet.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	seqP := (&stressProto{seeds: 3, hops: 40, awakeRounds: 12}).prepare(g.N())
	seqRes, seqErr := seqNet.Run(seqP)
	if seqErr != nil {
		t.Fatal(seqErr)
	}
	seqLoss := seqNet.LossError()
	if seqLoss == nil {
		t.Fatal("plan produced no loss; the identity check needs one")
	}
	for _, engines := range []int{2, 4} {
		net := NewNetwork(g, 42)
		if err := net.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		group, bounds, err := NewLoopbackGroup(g, engines, 1, plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.ConnectRemote(group, bounds); err != nil {
			t.Fatal(err)
		}
		p := (&stressProto{seeds: 3, hops: 40, awakeRounds: 12}).prepare(g.N())
		res, err := net.Run(p)
		if err != nil {
			t.Fatalf("engines=%d: %v", engines, err)
		}
		if res != seqRes {
			t.Fatalf("engines=%d: Result %+v != sequential %+v", engines, res, seqRes)
		}
		for v := range seqP.got {
			if p.got[v] != seqP.got[v] || p.sum[v] != seqP.sum[v] {
				t.Fatalf("engines=%d node %d diverged", engines, v)
			}
		}
		loss := net.LossError()
		if loss == nil || loss.Error() != seqLoss.Error() {
			t.Fatalf("engines=%d: LossError %v != sequential %v", engines, loss, seqLoss)
		}
	}
}

// TestRemoteReuse runs the same client+engine group through several runs
// and a Reseed, pinning that engines reset cleanly per run and the
// first-loss record stays request-scoped.
func TestRemoteReuse(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	seqNet := NewNetwork(g, 42)
	cluNet := NewNetwork(g, 42)
	group, bounds, err := NewLoopbackGroup(g, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluNet.ConnectRemote(group, bounds); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		seqP := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
		cluP := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
		seqRes, err1 := seqNet.Run(seqP)
		cluRes, err2 := cluNet.Run(cluP)
		if err1 != nil || err2 != nil {
			t.Fatalf("run %d: errs %v / %v", run, err1, err2)
		}
		if seqRes != cluRes {
			t.Fatalf("run %d: Result %+v != %+v", run, cluRes, seqRes)
		}
	}
	seqNet.Reseed(7)
	cluNet.Reseed(7)
	seqP := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
	cluP := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
	seqRes, _ := seqNet.Run(seqP)
	cluRes, _ := cluNet.Run(cluP)
	if seqRes != cluRes {
		t.Fatalf("post-Reseed: Result %+v != %+v", cluRes, seqRes)
	}
	for v := range seqP.got {
		if cluP.got[v] != seqP.got[v] || cluP.sum[v] != seqP.sum[v] {
			t.Fatalf("post-Reseed node %d diverged", v)
		}
	}
}

func TestRemoteContextCancel(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 42)
	group, bounds, err := NewLoopbackGroup(g, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectRemote(group, bounds); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net.SetContext(ctx)
	p := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
	if _, err := net.Run(p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A fresh run on the same group must recover: RunBegin drops the
	// aborted run's leftovers on every engine.
	net.SetContext(context.Background())
	seq := NewNetwork(g, 42)
	seqP := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
	seqRes, _ := seq.Run(seqP)
	p2 := (&stressProto{seeds: 2, hops: 15, awakeRounds: 4}).prepare(g.N())
	res, err := net.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if res != seqRes {
		t.Fatalf("post-abort Result %+v != sequential %+v", res, seqRes)
	}
}

func TestRemoteHalter(t *testing.T) {
	g, err := graph.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, engines := range []int{1, 3} {
		seq := NewNetwork(g, 42)
		hp := &haltAt{target: 9}
		seqRes, err1 := seq.Run(hp)
		net := NewNetwork(g, 42)
		group, bounds, gerr := NewLoopbackGroup(g, engines, 1, nil)
		if gerr != nil {
			t.Fatal(gerr)
		}
		if err := net.ConnectRemote(group, bounds); err != nil {
			t.Fatal(err)
		}
		hp2 := &haltAt{target: 9}
		res, err2 := net.Run(hp2)
		if err1 != nil || err2 != nil {
			t.Fatalf("errs %v / %v", err1, err2)
		}
		if res != seqRes {
			t.Fatalf("engines=%d: Result %+v != sequential %+v", engines, res, seqRes)
		}
	}
}

// --- Validation and protocol-violation paths ---

func TestConnectRemoteValidation(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	group, bounds, err := NewLoopbackGroup(g, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bounds-mismatch", func(t *testing.T) {
		net := NewNetwork(g, 1)
		if err := net.ConnectRemote(group, []int32{0, int32(g.N())}); !errors.Is(err, ErrShardPlan) {
			t.Fatalf("err = %v, want ErrShardPlan", err)
		}
	})
	t.Run("with-crash", func(t *testing.T) {
		net := NewNetwork(g, 1, WithCrash(3, 2))
		if err := net.ConnectRemote(group, bounds); !errors.Is(err, ErrShardPlan) {
			t.Fatalf("err = %v, want ErrShardPlan", err)
		}
	})
	t.Run("cap-func", func(t *testing.T) {
		net := NewNetwork(g, 1, WithEdgeCapFunc(func(from, to graph.NodeID) int { return 2 }))
		if err := net.ConnectRemote(group, bounds); !errors.Is(err, ErrShardPlan) {
			t.Fatalf("err = %v, want ErrShardPlan", err)
		}
	})
	t.Run("disconnect", func(t *testing.T) {
		net := NewNetwork(g, 1)
		if err := net.ConnectRemote(group, bounds); err != nil {
			t.Fatal(err)
		}
		if err := net.ConnectRemote(nil, nil); err != nil {
			t.Fatal(err)
		}
		if net.Remote() != 0 {
			t.Fatalf("Remote() = %d after disconnect", net.Remote())
		}
	})
}

func TestNewShardEngineValidation(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bounds := PlanShards(g, 2)
	if _, err := NewShardEngine(g, bounds, 2, 1, nil); !errors.Is(err, ErrShardPlan) {
		t.Fatalf("index out of range: err = %v, want ErrShardPlan", err)
	}
	if _, err := NewShardEngine(g, []int32{0, 3}, 0, 1, nil); !errors.Is(err, ErrShardPlan) {
		t.Fatalf("bad cover: err = %v, want ErrShardPlan", err)
	}
	if _, err := NewShardEngine(g, bounds, 0, 1, &fault.Plan{Crashes: []fault.Crash{{Node: 99, Round: 1}}}); !errors.Is(err, ErrBadFault) {
		t.Fatalf("bad plan: err = %v, want ErrBadFault", err)
	}
}

func TestShardEnginePushViolations(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bounds := PlanShards(g, 2)
	eng, err := NewShardEngine(g, bounds, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunBegin()
	lo, hi := eng.NodeRange()
	if lo != 0 || hi == 0 {
		t.Fatalf("NodeRange() = [%d,%d)", lo, hi)
	}
	outside := graph.NodeID(bounds[1]) // first node of shard 1
	cases := map[string][]Message{
		"outside-range": {MakeMessage(outside, 0, 1, 1, [PayloadWords]uint64{})},
		"non-neighbor":  {MakeMessage(0, 5, 1, 1, [PayloadWords]uint64{})}, // torus 4x4: 0's neighbors are 1,3,4,12
		"zero-words":    {MakeMessage(0, 1, 1, 0, [PayloadWords]uint64{})},
		"bad-dest":      {MakeMessage(0, 99, 1, 1, [PayloadWords]uint64{})},
	}
	for name, msgs := range cases {
		if err := eng.Push(1, msgs); !errors.Is(err, ErrBadPush) {
			t.Fatalf("%s: err = %v, want ErrBadPush", name, err)
		}
	}
	// A valid push still works after rejected ones.
	if err := eng.Push(1, []Message{MakeMessage(0, 1, 1, 1, [PayloadWords]uint64{42})}); err != nil {
		t.Fatal(err)
	}
	if eng.Active() != 1 {
		t.Fatalf("Active() = %d, want 1", eng.Active())
	}
	out := eng.Deliver(1)
	if len(out) != 1 || out[0].To != 1 || out[0].W[0] != 42 {
		t.Fatalf("Deliver: %+v", out)
	}
	res, loss := eng.RunEnd()
	if res.Messages != 1 || loss.Valid {
		t.Fatalf("RunEnd: %+v, %+v", res, loss)
	}
	if runs, pushed, delivered := eng.Stats(); runs != 1 || pushed != 1 || delivered != 1 {
		t.Fatalf("Stats: %d/%d/%d", runs, pushed, delivered)
	}
}
