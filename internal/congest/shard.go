package congest

import (
	"fmt"
	"sync"
	"time"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// Sharded execution: the network's nodes are partitioned into S contiguous,
// degree-balanced ranges ("shards"), and each round's per-node processing —
// edge delivery and protocol Step calls — runs on one worker goroutine per
// shard. The simulated execution stays bit-identical to the sequential
// engine (see the determinism argument in doc.go): cross-shard messages
// travel through per-(src,dst)-shard transfer buffers that the destination
// shard merges in ascending source-shard order at the round barrier, which
// reproduces the sequential engine's ascending-directed-edge delivery order
// exactly, because shards own contiguous ascending edge ranges.
//
// Sharding pays off when per-round work is large (big graphs, many tokens
// in flight); for small networks the barrier overhead dominates and S=1
// (the default, plain sequential path) is the right choice.

// shard is one worker's slice of the network: the node range [nodeLo,
// nodeHi), the contiguous directed-edge range starting at edgeLo, and the
// per-shard run state that replaces the sequential engine's global
// schedulers and counters.
type shard struct {
	net    *Network
	id     int
	nodeLo int32 // global node range [nodeLo, nodeHi)
	nodeHi int32
	edgeLo int32 // == off[nodeLo]; the shard owns edges [edgeLo, off[nodeHi])

	active  *sched // shard-local edge indices (global edge - edgeLo)
	stepSet *sched // shard-local node indices (global node - nodeLo)

	awakeNodes []graph.NodeID // this shard's awake list (global IDs)
	awakeCount int

	// out[d] buffers this shard's deliveries addressed to shard d this
	// round, in ascending-edge order; the destination merges all sources in
	// shard order at the barrier. Same-shard deliveries take the same route
	// so the merge order is uniform.
	out [][]Message

	res    Result   // per-shard counters, merged into Network.res at run end
	loss   lossInfo // this shard's first loss this run; merged by (round, edge)
	runErr error
	ctx    Ctx // this shard's protocol context (ctx.sh == this shard)

	// Cumulative occupancy counters (survive reset; see ShardStats).
	stepped   int64
	delivered int64
	waitNs    int64
}

// roundBarrier synchronizes the shard workers twice per round. The last
// arriver runs the serial section (round bookkeeping) under the barrier
// lock before releasing the others, so serial state is published to every
// worker with a single happens-before edge.
type roundBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	parties int
	arrived int
	gen     uint64
}

func (b *roundBarrier) init(parties int) {
	b.parties = parties
	b.cond.L = &b.mu
}

// wait blocks until all parties arrive; the last arriver runs serial (if
// non-nil) before waking the rest.
func (b *roundBarrier) wait(serial func()) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		if serial != nil {
			serial()
		}
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// planShards returns the S+1 node boundaries of a degree-balanced
// contiguous partition: boundary i is the smallest node v (≥ boundary i-1)
// whose half-edge prefix off[v] reaches i/S of the total, so every shard
// owns about the same number of directed edges. On edgeless graphs the
// split falls back to equal node counts. Shards may be empty (a star hub
// can hold more than 1/S of all edges by itself); empty shards simply idle.
func planShards(off []int32, n, s int) []int32 {
	bounds := make([]int32, s+1)
	bounds[s] = int32(n)
	total := int64(off[n])
	for i := 1; i < s; i++ {
		if total == 0 {
			bounds[i] = int32(i * n / s)
			continue
		}
		target := int32(total * int64(i) / int64(s))
		// Smallest v with off[v] >= target, at or after the previous bound.
		lo, hi := bounds[i-1], int32(n)
		for lo < hi {
			mid := (lo + hi) >> 1
			if off[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[i] = lo
	}
	return bounds
}

// SetShards partitions the network into s parallel shards (clamped to
// [1, n]); s = 1 restores the plain sequential engine. Repartitioning
// drops any in-flight messages left by an aborted run, exactly like the
// reset at the start of the next Run would. Not safe to call concurrently
// with Run.
func (n *Network) SetShards(s int) {
	nn := n.g.N()
	if s < 1 {
		s = 1
	}
	if s > nn {
		s = nn
	}
	n.drainAll()
	if s == 1 {
		n.sh = nil
		n.shardOf = nil
		return
	}
	n.applyShardBounds(planShards(n.off, nn, s))
}

// applyShardBounds rebuilds the shard workers over the given node
// boundaries (len s+1, bounds[0]==0, bounds[s]==n). Callers must have
// drained transient run state first. Factored out of SetShards so
// Reshape can keep an old partition's bounds (the incremental re-shard)
// while still rebuilding the off-dependent per-shard state.
func (n *Network) applyShardBounds(bounds []int32) {
	nn := n.g.N()
	s := len(bounds) - 1
	if n.shardOf == nil || len(n.shardOf) != nn {
		n.shardOf = make([]int32, nn)
	}
	n.sh = make([]*shard, s)
	for i := 0; i < s; i++ {
		lo, hi := bounds[i], bounds[i+1]
		sh := &shard{
			net:     n,
			id:      i,
			nodeLo:  lo,
			nodeHi:  hi,
			edgeLo:  n.off[lo],
			active:  newSched(int(n.off[hi] - n.off[lo])),
			stepSet: newSched(int(hi - lo)),
			out:     make([][]Message, s),
		}
		sh.ctx = Ctx{net: n, sh: sh}
		n.sh[i] = sh
		for v := lo; v < hi; v++ {
			n.shardOf[v] = int32(i)
		}
	}
}

// Shards reports the current shard count (1 = sequential).
func (n *Network) Shards() int {
	if len(n.sh) == 0 {
		return 1
	}
	return len(n.sh)
}

// drainAll clears transient run state in whichever execution mode left it:
// the sequential schedulers, every shard's schedulers (emptying the
// underlying edge queues), awake flags and inboxes. Used when switching
// shard layouts; the per-mode resets keep the hot paths lean.
func (n *Network) drainAll() {
	n.active.drain(func(e int32) { n.queues[e].clear() })
	n.stepSet.drain(func(int32) {})
	for _, sh := range n.sh {
		base := sh.edgeLo
		sh.active.drain(func(le int32) { n.queues[base+le].clear() })
		sh.stepSet.drain(func(int32) {})
		sh.awakeNodes = sh.awakeNodes[:0]
		sh.awakeCount = 0
	}
	for v := range n.awake {
		n.awake[v] = false
		n.inbox[v] = n.inbox[v][:0]
	}
	n.awakeNodes = n.awakeNodes[:0]
	n.awakeCount = 0
}

// resetSharded is reset() for the sharded engine: per-shard schedulers and
// counters clear, global per-node state sweeps, slabs keep capacity.
func (n *Network) resetSharded() {
	for _, sh := range n.sh {
		base := sh.edgeLo
		sh.active.drain(func(le int32) { n.queues[base+le].clear() })
		sh.stepSet.drain(func(int32) {})
		sh.awakeNodes = sh.awakeNodes[:0]
		sh.awakeCount = 0
		sh.res = Result{}
		sh.loss = lossInfo{}
		sh.runErr = nil
		for d := range sh.out {
			sh.out[d] = sh.out[d][:0]
		}
	}
	for v := range n.awake {
		n.awake[v] = false
		n.inbox[v] = n.inbox[v][:0]
	}
	n.round = 0
	n.res = Result{}
	n.runErr = nil
	if n.flt != nil {
		n.flt.resetRun()
	}
}

// shardRun is the shared control state of one sharded Run: the barrier and
// the serial verdict (stop/err) the last arriver publishes each round.
type shardRun struct {
	net    *Network
	halter Halter
	bar    roundBarrier
	stop   bool
	err    error
}

// advance is the serial section at the end of a round (and after Init): it
// decides, in the same order as the sequential engine's round loop, whether
// the run stops (error, halt, quiescence, budget, cancellation) and
// otherwise opens the next round. It runs under the barrier lock, so every
// worker observes the verdict after its wait returns.
func (sr *shardRun) advance() {
	n := sr.net
	for _, sh := range n.sh {
		if sh.runErr != nil {
			// With several shards erring in one round the lowest shard wins —
			// deterministic, though the message may differ from the
			// sequential engine's first-in-step-order error. Either way the
			// run aborts; errors here are protocol bugs, not outcomes.
			sr.err = sh.runErr
			sr.stop = true
			return
		}
	}
	if sr.halter != nil && sr.halter.Halted() {
		sr.stop = true
		return
	}
	quiescent := true
	for _, sh := range n.sh {
		if sh.active.count != 0 || sh.awakeCount != 0 {
			quiescent = false
			break
		}
	}
	if quiescent {
		sr.stop = true
		return
	}
	if n.round >= n.maxRound {
		sr.err = fmt.Errorf("%w after %d rounds", ErrRoundLimit, n.round)
		sr.stop = true
		return
	}
	if n.ctx != nil && n.round&ctxCheckMask == 0 {
		if err := n.ctx.Err(); err != nil {
			sr.err = fmt.Errorf("congest: run aborted at round %d: %w", n.round, err)
			sr.stop = true
			return
		}
	}
	n.round++
	n.res.Rounds = n.round
}

// runSharded executes p on the shard workers. The calling goroutine drives
// shard 0; shards 1..S-1 get a goroutine each for the duration of the run.
func (n *Network) runSharded(p Proto) (Result, error) {
	n.resetSharded()
	if n.ctx != nil {
		if err := n.ctx.Err(); err != nil {
			return n.res, fmt.Errorf("congest: run aborted before round 1: %w", err)
		}
	}
	halter, _ := p.(Halter)
	sr := &shardRun{net: n, halter: halter}
	sr.bar.init(len(n.sh))
	var wg sync.WaitGroup
	for _, sh := range n.sh[1:] {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.loop(sr, p)
		}(sh)
	}
	n.sh[0].loop(sr, p)
	wg.Wait()
	for _, sh := range n.sh {
		n.res.Add(sh.res) // shard Rounds are 0; counters sum, MaxQueue maxes
	}
	n.mergeLoss()
	if sr.err != nil {
		return n.res, sr.err
	}
	return n.res, nil
}

// loop is the per-shard worker body: Init over the shard's nodes, then the
// two-barrier round cadence — deliver queued messages outward, barrier,
// merge inbound transfers and step, barrier (with the serial round
// bookkeeping) — until the serial section calls the run over.
func (sh *shard) loop(sr *shardRun, p Proto) {
	ctx := &sh.ctx
	for v := sh.nodeLo; v < sh.nodeHi; v++ {
		ctx.node = graph.NodeID(v)
		ctx.inbox = nil
		p.Init(ctx)
		if sh.runErr != nil {
			break
		}
	}
	sh.barrier(sr)
	for !sr.stop {
		sh.deliverOut()
		sh.barrierNoSerial(sr)
		sh.deliverIn()
		sh.step(p)
		sh.barrier(sr)
	}
}

func (sh *shard) barrier(sr *shardRun) {
	t0 := time.Now()
	sr.bar.wait(sr.advance)
	sh.waitNs += time.Since(t0).Nanoseconds()
}

func (sh *shard) barrierNoSerial(sr *shardRun) {
	t0 := time.Now()
	sr.bar.wait(nil)
	sh.waitNs += time.Since(t0).Nanoseconds()
}

// deliverOut drains this shard's active edges in ascending order — the
// shard's slice of the global deterministic edge order — moving up to cap
// messages per edge into the per-destination-shard transfer buffers.
// Counters (Messages, Words, Faults, MaxQueue) are charged here, at the
// sending side, with exactly the sequential engine's values: every
// fault decision is per-edge state (delay release rounds, drop-decision
// ordinals) owned by this shard, so charging order across shards cannot
// change any decision (see internal/fault's determinism argument).
//
// KEEP IN LOCKSTEP with Network.deliver (congest.go): this is the same
// per-edge drain with the inbox append swapped for a transfer-buffer
// append; any semantic change to either body must be mirrored in the
// other or the bit-identity contract breaks.
func (sh *shard) deliverOut() {
	n := sh.net
	for d := range sh.out {
		sh.out[d] = sh.out[d][:0]
	}
	sh.active.drain(func(le int32) {
		e := sh.edgeLo + le
		q := &n.queues[e]
		if f := n.flt; f != nil && f.delay != nil && f.delay[e] > 0 {
			if int32(n.round) < f.release[e] {
				sh.res.Faults.Delayed++
				sh.active.add(le)
				return
			}
		}
		depth := int(q.size)
		if depth > sh.res.MaxQueue {
			sh.res.MaxQueue = depth
		}
		k := n.cap
		if n.capOf != nil {
			k = int(n.capOf[e])
		}
		if k > depth {
			k = depth
		}
		for i := 0; i < k; i++ {
			m := q.at(int32(i))
			to := m.To
			if n.crashed(to) {
				sh.res.Faults.Dropped++
				sh.noteLoss(e, m, false)
				continue
			}
			if f := n.flt; f != nil && f.drop != nil {
				if th := f.drop[e]; th != 0 {
					f.seq[e]++
					if fault.Roll(f.key, uint64(e), f.seq[e]) < th {
						sh.res.Faults.LinkDropped++
						sh.noteLoss(e, m, true)
						continue
					}
				}
			}
			d := n.shardOf[to]
			sh.out[d] = append(sh.out[d], *m)
			sh.res.Messages++
			sh.res.Words += int64(m.words)
		}
		q.popN(int32(k))
		if q.size > 0 {
			sh.active.add(le)
		}
		if f := n.flt; f != nil && f.delay != nil && f.delay[e] > 0 {
			f.release[e] = int32(n.round) + 1 + f.delay[e]
		}
	})
	// Compact this shard's awake list and schedule the survivors, exactly
	// like the sequential deliver does for the global list.
	live := sh.awakeNodes[:0]
	for _, v := range sh.awakeNodes {
		if !n.awake[v] {
			continue
		}
		if n.crashed(v) {
			n.awake[v] = false
			sh.awakeCount--
			continue
		}
		live = append(live, v)
		sh.stepSet.add(int32(v) - sh.nodeLo)
	}
	sh.awakeNodes = live
}

// deliverIn merges the transfer buffers addressed to this shard, visiting
// source shards in ascending order. Sources own ascending contiguous edge
// ranges and filled their buffers in ascending edge order, so the
// concatenation appends to each inbox in ascending global directed-edge
// order — byte for byte the sequential delivery order.
func (sh *shard) deliverIn() {
	n := sh.net
	for _, src := range n.sh {
		buf := src.out[sh.id]
		for i := range buf {
			m := &buf[i]
			n.inbox[m.To] = append(n.inbox[m.To], *m)
			sh.stepSet.add(int32(m.To) - sh.nodeLo)
		}
		sh.delivered += int64(len(buf))
	}
}

// step invokes the protocol on this shard's scheduled nodes in ascending
// ID order. Cross-shard step interleaving is unobservable to protocols
// that keep the model's locality discipline (each node touches only its
// own per-node state); the shard-identity stress tests pin this.
func (sh *shard) step(p Proto) {
	n := sh.net
	ctx := &sh.ctx
	sh.stepSet.drain(func(lv int32) {
		v := sh.nodeLo + lv
		node := graph.NodeID(v)
		if sh.runErr != nil || n.crashed(node) {
			n.inbox[v] = n.inbox[v][:0]
			return
		}
		ctx.node = node
		ctx.inbox = n.inbox[v]
		p.Step(ctx)
		n.inbox[v] = n.inbox[v][:0]
		sh.stepped++
	})
}

// ShardStats is a snapshot of the per-shard occupancy counters, cumulative
// since the network was built (they survive Run resets): protocol steps
// executed and messages merged per shard, plus the wall-clock time each
// shard spent waiting at (or synchronizing through) round barriers. With
// one shard (sequential mode) only Shards is set. Not safe to call
// concurrently with Run.
type ShardStats struct {
	Shards      int
	Stepped     []int64
	Delivered   []int64
	BarrierWait []time.Duration
}

// Occupancy returns each shard's fraction of the total protocol steps —
// 1/S everywhere is a perfectly balanced partition. Nil when no work ran.
func (st ShardStats) Occupancy() []float64 {
	var total int64
	for _, s := range st.Stepped {
		total += s
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(st.Stepped))
	for i, s := range st.Stepped {
		out[i] = float64(s) / float64(total)
	}
	return out
}

// Add accumulates other into st (for aggregating across pooled networks);
// st must be zero or have the same shard count.
func (st *ShardStats) Add(other ShardStats) {
	if other.Shards == 0 {
		return
	}
	if st.Shards == 0 {
		st.Shards = other.Shards
		st.Stepped = make([]int64, len(other.Stepped))
		st.Delivered = make([]int64, len(other.Delivered))
		st.BarrierWait = make([]time.Duration, len(other.BarrierWait))
	}
	for i := range other.Stepped {
		st.Stepped[i] += other.Stepped[i]
		st.Delivered[i] += other.Delivered[i]
		st.BarrierWait[i] += other.BarrierWait[i]
	}
}

// ShardStats snapshots the network's per-shard occupancy counters.
func (n *Network) ShardStats() ShardStats {
	st := ShardStats{Shards: n.Shards()}
	if len(n.sh) == 0 {
		return st
	}
	st.Stepped = make([]int64, len(n.sh))
	st.Delivered = make([]int64, len(n.sh))
	st.BarrierWait = make([]time.Duration, len(n.sh))
	for i, sh := range n.sh {
		st.Stepped[i] = sh.stepped
		st.Delivered[i] = sh.delivered
		st.BarrierWait[i] = time.Duration(sh.waitNs)
	}
	return st
}

// WithShards partitions the network into s parallel shards at
// construction; see SetShards.
func WithShards(s int) Option {
	return func(n *Network) { n.SetShards(s) }
}
