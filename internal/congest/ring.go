package congest

// ring is a growable FIFO queue of messages over a power-of-two backing
// slab. The old engine appended to a []Message and nil-ed it after
// delivery, re-allocating the moment the edge saw traffic again; a ring
// keeps its high-water capacity across rounds and runs, so steady-state
// enqueue/dequeue never allocates.
type ring struct {
	buf  []Message // len(buf) is 0 or a power of two
	head int32
	size int32
}

func (r *ring) push(m Message) {
	if int(r.size) == len(r.buf) {
		r.grow()
	}
	r.buf[(int(r.head)+int(r.size))&(len(r.buf)-1)] = m
	r.size++
}

// at returns the i-th queued message from the front (0 <= i < size).
func (r *ring) at(i int32) *Message {
	return &r.buf[(int(r.head)+int(i))&(len(r.buf)-1)]
}

// popN discards the k front messages (k <= size).
func (r *ring) popN(k int32) {
	r.size -= k
	if r.size == 0 {
		r.head = 0
		return
	}
	r.head = int32((int(r.head) + int(k)) & (len(r.buf) - 1))
}

// clear empties the queue, keeping the slab.
func (r *ring) clear() {
	r.head, r.size = 0, 0
}

func (r *ring) grow() {
	newCap := len(r.buf) * 2
	if newCap < 4 {
		newCap = 4
	}
	nb := make([]Message, newCap)
	for i := int32(0); i < r.size; i++ {
		nb[i] = *r.at(i)
	}
	r.buf = nb
	r.head = 0
}
