package congest

import (
	"sort"
	"testing"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

func buildTree(t *testing.T, g *graph.G, root graph.NodeID) (*Network, *Tree, Result) {
	t.Helper()
	net := NewNetwork(g, 42)
	tree, res, err := BuildBFSTree(net, root)
	if err != nil {
		t.Fatal(err)
	}
	return net, tree, res
}

func TestBFSTreeOnPath(t *testing.T) {
	g, err := graph.Path(6)
	if err != nil {
		t.Fatal(err)
	}
	_, tree, res := buildTree(t, g, 0)
	if tree.Height != 5 {
		t.Fatalf("height=%d, want 5", tree.Height)
	}
	for v := 1; v < 6; v++ {
		if tree.Parent[v] != graph.NodeID(v-1) || tree.Depth[v] != int32(v) {
			t.Fatalf("node %d: parent=%d depth=%d", v, tree.Parent[v], tree.Depth[v])
		}
	}
	if tree.Parent[0] != graph.None || tree.Depth[0] != 0 {
		t.Fatal("root bookkeeping wrong")
	}
	// Flooding a path takes height rounds (plus ack wash-up).
	if res.Rounds < 5 || res.Rounds > 8 {
		t.Fatalf("BFS rounds=%d, want ~5", res.Rounds)
	}
}

func TestBFSTreeDepthsMatchGraphBFS(t *testing.T) {
	g, err := graph.ConnectedER(40, 0.12, rng.New(5), 200)
	if err != nil {
		t.Fatal(err)
	}
	_, tree, _ := buildTree(t, g, 7)
	ref, err := g.BFS(7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if tree.Depth[v] != ref.Dist[v] {
			t.Fatalf("node %d: protocol depth %d != BFS dist %d", v, tree.Depth[v], ref.Dist[v])
		}
		p := tree.Parent[v]
		if v == 7 {
			continue
		}
		if p == graph.None || !g.HasEdge(graph.NodeID(v), p) {
			t.Fatalf("node %d has invalid parent %d", v, p)
		}
	}
}

func TestBFSTreeChildrenConsistent(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, tree, _ := buildTree(t, g, 3)
	// children lists must mirror parent pointers exactly.
	count := 0
	for v := 0; v < g.N(); v++ {
		for _, c := range tree.Children[v] {
			if tree.Parent[c] != graph.NodeID(v) {
				t.Fatalf("child %d of %d has parent %d", c, v, tree.Parent[c])
			}
			count++
		}
	}
	if count != g.N()-1 {
		t.Fatalf("tree has %d child links, want %d", count, g.N()-1)
	}
}

func TestBFSTreeDisconnectedFails(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1)
	if _, _, err := BuildBFSTree(net, 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBFSTreeBadRoot(t *testing.T) {
	g, _ := graph.Path(3)
	net := NewNetwork(g, 1)
	if _, _, err := BuildBFSTree(net, 9); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	net, tree, _ := buildTree(t, g, 0)
	var visited []graph.NodeID
	res, err := Broadcast(net, tree, intPayload(7), func(v graph.NodeID, p intPayload) {
		if p != 7 {
			t.Errorf("node %d received %d", v, p)
		}
		visited = append(visited, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != g.N() {
		t.Fatalf("visited %d of %d nodes", len(visited), g.N())
	}
	if res.Rounds != tree.Height {
		t.Fatalf("broadcast rounds=%d, want height=%d", res.Rounds, tree.Height)
	}
}

func TestConvergecastSums(t *testing.T) {
	g, err := graph.Grid(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	net, tree, _ := buildTree(t, g, 0)
	total, res, err := Convergecast(net, tree,
		func(v graph.NodeID) intPayload { return intPayload(int(v)) },
		func(_ graph.NodeID, acc, child intPayload) intPayload { return acc + child },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := g.N() * (g.N() - 1) / 2
	if int(total) != want {
		t.Fatalf("convergecast sum=%d, want %d", total, want)
	}
	if res.Rounds != tree.Height {
		t.Fatalf("convergecast rounds=%d, want height=%d", res.Rounds, tree.Height)
	}
}

func TestConvergecastSingleton(t *testing.T) {
	g, err := graph.Path(1)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1)
	tree, _, err := BuildBFSTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	total, res, err := Convergecast(net, tree,
		func(graph.NodeID) intPayload { return 5 },
		func(_ graph.NodeID, a, c intPayload) intPayload { return a + c },
	)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || res.Rounds != 0 {
		t.Fatalf("singleton convergecast total=%d rounds=%d", total, res.Rounds)
	}
}

func TestUpcastCollectsEverything(t *testing.T) {
	g, err := graph.BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	net, tree, _ := buildTree(t, g, 0)
	items, _, err := Upcast(net, tree, func(v graph.NodeID) []intPayload {
		return []intPayload{intPayload(v)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != g.N() {
		t.Fatalf("collected %d items, want %d", len(items), g.N())
	}
	got := make([]int, len(items))
	for i, it := range items {
		got[i] = int(it)
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing item %d (got %v)", i, got)
		}
	}
}

func TestUpcastPipelines(t *testing.T) {
	// s items from the far end of a path of depth d should take about
	// s + d - 1 rounds, not s*d.
	g, err := graph.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	net, tree, _ := buildTree(t, g, 0)
	const s = 20
	items, res, err := Upcast(net, tree, func(v graph.NodeID) []intPayload {
		if v == 9 {
			out := make([]intPayload, s)
			for i := range out {
				out[i] = intPayload(i)
			}
			return out
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != s {
		t.Fatalf("collected %d items, want %d", len(items), s)
	}
	want := s + 9 - 1
	if res.Rounds != want {
		t.Fatalf("upcast rounds=%d, want %d (pipelined)", res.Rounds, want)
	}
}

func TestUpcastNoItems(t *testing.T) {
	g, _ := graph.Path(4)
	net, tree, _ := buildTree(t, g, 0)
	items, res, err := Upcast(net, tree, func(graph.NodeID) []intPayload { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 || res.Rounds != 0 {
		t.Fatalf("empty upcast items=%d rounds=%d", len(items), res.Rounds)
	}
}
