package congest

// Topology reshaping for pooled, warm networks. A Service keeps one
// Network per worker and reuses its slabs across requests; when the
// graph mutates, throwing those networks away would pay the full
// NewNetwork cost per worker per mutation. Reshape instead rebuilds
// only the topology-derived state — the directed-edge index, the
// queues, the compiled fault plan and (when sharded) the partition —
// against the new graph, keeping the per-node slabs whose sizes depend
// only on n.
//
// Generation-stamped warm state: every network carries a topology
// generation (Generation/SetGeneration). The owner stamps it after each
// (re)shape, and a pooled worker compares the stamp against the current
// epoch when it prepares a request: a mismatch means the warm state
// describes a dead topology and must be reshaped before the run. The
// stamp is the network's only memory of "which epoch am I warm for" —
// the engine itself never consults it, so stamping is free on the hot
// path.

import (
	"fmt"

	"distwalk/internal/graph"
)

// ReshapeKind reports how much a Reshape had to rebuild.
type ReshapeKind int

const (
	// ReshapeNone: the new graph is the one already installed; nothing
	// was rebuilt (a pure generation bump, e.g. cache invalidation).
	ReshapeNone ReshapeKind = iota
	// ReshapeIncremental: the directed-edge index was rebuilt but the
	// existing shard partition's node bounds were kept — the mutation
	// left the per-shard edge balance within tolerance.
	ReshapeIncremental
	// ReshapeFull: the index was rebuilt and the shard partition was
	// re-planned from scratch (or the network is unsharded).
	ReshapeFull
)

// String returns the kind's name for stats and logs.
func (k ReshapeKind) String() string {
	switch k {
	case ReshapeNone:
		return "none"
	case ReshapeIncremental:
		return "incremental"
	default:
		return "full"
	}
}

// reshapeSlackNum/Den: an existing shard partition is kept after a
// mutation while its most loaded shard holds at most 5/4 (25% slack) of
// the ideal per-shard edge share — the same degree-balance measure
// planShards optimizes and ShardStats.Occupancy reports at run time.
// Beyond that the partition is re-planned (ReshapeFull).
const (
	reshapeSlackNum = 5
	reshapeSlackDen = 4
)

// Generation returns the topology generation this network was last
// stamped with (see SetGeneration).
func (n *Network) Generation() uint64 { return n.topoGen }

// SetGeneration stamps the network with a topology generation. The
// engine never reads the stamp; it exists so a pool owner can detect a
// warm network that predates the current epoch. Not safe to call
// concurrently with Run.
func (n *Network) SetGeneration(gen uint64) { n.topoGen = gen }

// Reshape points the network at a new topology, rebuilding the
// directed-edge index, the message queues, the compiled fault plan and
// — when sharded — the partition (bounds kept when the edge balance
// still holds, re-planned otherwise; see ReshapeKind). The node count
// must not change, and cluster-connected networks or ones with per-edge
// capacities (WithEdgeCapFunc) cannot be reshaped. Passing the graph
// already installed is a no-op (ReshapeNone).
//
// Reshape leaves the per-node RNG streams untouched: like SetShards it
// must be followed by Reseed before the next deterministic run (the
// service layer's prepare always reseeds).
//
// On a fault-plan recompile failure (the installed plan references an
// edge the new topology no longer has) the plan is left cleared and the
// error is returned; callers that validate plans against the new graph
// before mutating never hit this.
func (n *Network) Reshape(g2 *graph.G) (ReshapeKind, error) {
	switch {
	case g2 == nil:
		return ReshapeNone, fmt.Errorf("congest: Reshape with nil graph")
	case g2 == n.g:
		return ReshapeNone, nil
	case len(n.remote) > 0:
		return ReshapeNone, fmt.Errorf("congest: Reshape on a cluster-connected network")
	case n.capOf != nil:
		return ReshapeNone, fmt.Errorf("congest: Reshape with per-edge capacities installed")
	case g2.N() != n.g.N():
		return ReshapeNone, fmt.Errorf("congest: Reshape changes node count %d -> %d", n.g.N(), g2.N())
	}
	s := n.Shards()
	var oldBounds []int32
	if s > 1 {
		oldBounds = make([]int32, s+1)
		for i, sh := range n.sh {
			oldBounds[i] = sh.nodeLo
		}
		oldBounds[s] = n.sh[s-1].nodeHi
	}
	n.drainAll()
	n.g = g2
	n.buildIndex()
	if plan := n.FaultPlan(); plan != nil {
		n.flt = nil
		if err := n.SetFaultPlan(plan); err != nil {
			return ReshapeFull, fmt.Errorf("congest: fault plan invalid after reshape: %w", err)
		}
	}
	if s <= 1 {
		return ReshapeFull, nil
	}
	if boundsBalanced(n.off, oldBounds) {
		n.applyShardBounds(oldBounds)
		return ReshapeIncremental, nil
	}
	n.applyShardBounds(planShards(n.off, n.g.N(), s))
	return ReshapeFull, nil
}

// boundsBalanced reports whether the old node bounds still split the
// new edge prefix within the reshape slack: max per-shard edge count
// ≤ (slack)·total/S.
func boundsBalanced(off []int32, bounds []int32) bool {
	s := len(bounds) - 1
	total := int64(off[bounds[s]])
	if total == 0 {
		return true
	}
	var maxLoad int64
	for i := 0; i < s; i++ {
		if load := int64(off[bounds[i+1]] - off[bounds[i]]); load > maxLoad {
			maxLoad = load
		}
	}
	return maxLoad*reshapeSlackDen*int64(s) <= total*reshapeSlackNum
}
