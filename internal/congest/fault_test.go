package congest

import (
	"errors"
	"fmt"
	"testing"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// Engine-level fault injection: deterministic drops, delays and churn,
// charged identically by the sequential and sharded engines.

func TestLossyLinkDropsEverything(t *testing.T) {
	net := pathNet(t, 2, 1)
	if err := net.SetFaultPlan(&fault.Plan{
		Seed:      7,
		LinkDrops: []fault.LinkDrop{{From: 0, To: 1, Prob: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	p := &burst{from: 0, to: 1, k: 5}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.got != 0 {
		t.Fatalf("delivered %d across a prob-1 lossy link", p.got)
	}
	if res.Faults.LinkDropped != 5 {
		t.Fatalf("LinkDropped = %d, want 5", res.Faults.LinkDropped)
	}
	var mle *MessageLostError
	if err := net.LossError(); !errors.As(err, &mle) || mle.From != 0 || mle.To != 1 {
		t.Fatalf("LossError = %v, want MessageLostError for link 0->1", err)
	}
	// The reverse direction is untouched: faults are directed.
	net.Reseed(1)
	if net.LossError() != nil {
		t.Fatal("Reseed did not clear the loss record")
	}
	p2 := &burst{from: 1, to: 0, k: 5}
	if _, err := net.Run(p2); err != nil {
		t.Fatal(err)
	}
	if p2.got != 5 {
		t.Fatalf("reverse direction delivered %d, want 5", p2.got)
	}
}

// TestLossyLinkDeterministic pins the stateless drop sampler: the same
// (plan seed, traffic) drops the same messages, run after run.
func TestLossyLinkDeterministic(t *testing.T) {
	run := func() Result {
		net := pathNet(t, 2, 3)
		if err := net.SetFaultPlan(&fault.Plan{Seed: 11, DropProb: 0.5}); err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(&burst{from: 0, to: 1, k: 64})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same plan, different results:\n%+v\n%+v", a, b)
	}
	if a.Faults.LinkDropped == 0 || a.Faults.LinkDropped == 64 {
		t.Fatalf("prob-0.5 link dropped %d of 64 — sampler looks broken", a.Faults.LinkDropped)
	}
}

func TestLinkDelaySlowsDelivery(t *testing.T) {
	net := pathNet(t, 2, 1)
	if err := net.SetFaultPlan(&fault.Plan{
		LinkDelays: []fault.LinkDelay{{From: 0, To: 1, Rounds: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	p := &burst{from: 0, to: 1, k: 4}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// A delay-2 link serializes to one delivery per 3 rounds: deliveries
	// land at rounds 3, 6, 9, 12 instead of 1..4. Nothing is lost — a slow
	// link is slow, not lossy — and every skipped round is charged.
	if p.got != 4 {
		t.Fatalf("delivered %d, want 4 (delays must not lose messages)", p.got)
	}
	if p.lastRound != 12 {
		t.Fatalf("last delivery at round %d, want 12", p.lastRound)
	}
	if res.Faults.Delayed != 8 {
		t.Fatalf("Delayed = %d, want 8 (two skipped rounds per delivery)", res.Faults.Delayed)
	}
	if net.LossError() != nil {
		t.Fatalf("delay recorded a loss: %v", net.LossError())
	}
}

func TestChurnWindowDropsAndRecovers(t *testing.T) {
	net := pathNet(t, 2, 1)
	if err := net.SetFaultPlan(&fault.Plan{
		Churn: []fault.Churn{{Node: 1, From: 2, To: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	p := &burst{from: 0, to: 1, k: 6}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unit capacity delivers one message per round, rounds 1..6; the
	// receiver is down for rounds [2,4), so exactly two deliveries drop
	// and the link resumes when the node comes back.
	if p.got != 4 {
		t.Fatalf("delivered %d, want 4 (down window [2,4) eats 2)", p.got)
	}
	if p.lastRound != 6 {
		t.Fatalf("last delivery at round %d, want 6 (churned node must recover)", p.lastRound)
	}
	if res.Faults.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", res.Faults.Dropped)
	}
	if res.Faults.Crashed != 1 {
		t.Fatalf("Crashed census = %d, want 1 (high-water, including recovered churn)", res.Faults.Crashed)
	}
	var nce *NodeCrashedError
	if err := net.LossError(); !errors.As(err, &nce) || nce.Node != 1 || nce.Round != 2 {
		t.Fatalf("LossError = %v, want NodeCrashedError{Node:1, Round:2}", err)
	}
}

// TestFaultChargingShardIdentity is the fault half of the engine's
// bit-identity contract: a mixed plan (global loss, per-link overrides,
// a crash, a churn window, slow links) must produce identical Result
// counters, identical per-node receipt logs and the identical first-loss
// record at every shard count, because drop decisions are per-edge
// ordinal hashes and loss merging follows the same (round, edge) order
// as delivery.
func TestFaultChargingShardIdentity(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.RandomPlan(99, g, fault.Chaos{
		Crashes:    1,
		Churns:     2,
		MaxRound:   40,
		DropProb:   0.02,
		LossyLinks: 4,
		SlowLinks:  4,
	})
	digest := func(shards int) string {
		net := NewNetwork(g, 5, WithShards(shards))
		if err := net.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		p := (&stressProto{seeds: 2, hops: 16, awakeRounds: 24}).prepare(g.N())
		res, err := net.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("res=%+v got=%v sum=%v loss=%v", res, p.got, p.sum, net.LossError())
	}
	want := digest(1)
	for _, shards := range []int{2, 4, 8} {
		if got := digest(shards); got != want {
			t.Errorf("fault charging diverged at %d shards:\n  sequential: %s\n  sharded:    %s", shards, want, got)
		}
	}
}

func TestSetFaultPlanValidation(t *testing.T) {
	g, err := graph.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1)
	// Malformed plan: rejected with both the engine's ErrBadFault and the
	// plan package's ErrBadPlan visible to errors.Is.
	err = net.SetFaultPlan(&fault.Plan{DropProb: 2})
	if !errors.Is(err, ErrBadFault) || !errors.Is(err, fault.ErrBadPlan) {
		t.Fatalf("bad plan: err = %v, want ErrBadFault wrapping ErrBadPlan", err)
	}
	// Structurally valid plan naming a non-edge: only the engine knows the
	// adjacency, so this is its call to reject.
	err = net.SetFaultPlan(&fault.Plan{LinkDrops: []fault.LinkDrop{{From: 0, To: 3, Prob: 0.5}}})
	if !errors.Is(err, ErrBadFault) {
		t.Fatalf("non-edge lossy link: err = %v, want ErrBadFault", err)
	}
	err = net.SetFaultPlan(&fault.Plan{LinkDelays: []fault.LinkDelay{{From: 2, To: 0, Rounds: 1}}})
	if !errors.Is(err, ErrBadFault) {
		t.Fatalf("non-edge slow link: err = %v, want ErrBadFault", err)
	}
	// The WithFaultPlan option records the error and every Run fails.
	bad := NewNetwork(g, 1, WithFaultPlan(&fault.Plan{DropProb: -1}))
	if _, err := bad.Run(&burst{from: 0, to: 1, k: 1}); !errors.Is(err, ErrBadFault) {
		t.Fatalf("Run on misconfigured network = %v, want ErrBadFault", err)
	}
}

// TestFaultPlanClearedByNil pins the zero-cost contract from the other
// side: installing and then removing a plan leaves the network running
// bit-identically to one that never had it.
func TestFaultPlanClearedByNil(t *testing.T) {
	run := func(configure func(*Network)) Result {
		net := pathNet(t, 3, 9)
		configure(net)
		res, err := net.Run(&relayBurst{k: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(func(*Network) {})
	cleared := run(func(net *Network) {
		if err := net.SetFaultPlan(&fault.Plan{DropProb: 0.5, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if err := net.SetFaultPlan(nil); err != nil {
			t.Fatal(err)
		}
		if net.FaultPlan() != nil {
			t.Fatal("FaultPlan() not nil after clearing")
		}
	})
	if plain != cleared {
		t.Fatalf("cleared plan left a footprint:\nplain:   %+v\ncleared: %+v", plain, cleared)
	}
	if plain.Faults != (FaultStats{}) {
		t.Fatalf("fault-free run charged faults: %+v", plain.Faults)
	}
}
