package congest

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"distwalk/internal/graph"
)

// --- Partition planning ---

// offsetsOf builds the half-edge prefix array of g, exactly as NewNetwork
// does.
func offsetsOf(g *graph.G) []int32 {
	off := make([]int32, g.N()+1)
	for v := 0; v < g.N(); v++ {
		off[v+1] = off[v] + int32(g.Degree(graph.NodeID(v)))
	}
	return off
}

func TestPlanShardsInvariants(t *testing.T) {
	star, err := graph.Star(16)
	if err != nil {
		t.Fatal(err)
	}
	pathG, err := graph.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	// Edges plus isolated nodes: 0-1, rest isolated.
	iso := graph.New(6)
	iso.AddEdge(0, 1)
	edgeless := graph.New(5)

	cases := []struct {
		name   string
		g      *graph.G
		shards int
	}{
		{"path/2", pathG, 2},
		{"path/3", pathG, 3},
		{"path/10", pathG, 10}, // S == n
		{"star/4", star, 4},    // hub holds 15 of 30 half-edges
		{"star/2", star, 2},
		{"isolated/3", iso, 3},
		{"edgeless/2", edgeless, 2},
		{"edgeless/5", edgeless, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			off := offsetsOf(tc.g)
			n := tc.g.N()
			b := planShards(off, n, tc.shards)
			if len(b) != tc.shards+1 {
				t.Fatalf("got %d boundaries, want %d", len(b), tc.shards+1)
			}
			if b[0] != 0 || b[tc.shards] != int32(n) {
				t.Fatalf("boundaries %v do not cover [0,%d)", b, n)
			}
			for i := 1; i <= tc.shards; i++ {
				if b[i] < b[i-1] {
					t.Fatalf("boundaries %v not monotone", b)
				}
			}
			// Every node lands in exactly one shard by construction of
			// contiguous ranges; check the edge balance is within one
			// node's degree of the ideal split (up to the lumpiness of the
			// heaviest node, which a contiguous split cannot avoid).
			total := int64(off[n])
			if total == 0 {
				return
			}
			maxDeg := int64(0)
			for v := 0; v < n; v++ {
				if d := int64(tc.g.Degree(graph.NodeID(v))); d > maxDeg {
					maxDeg = d
				}
			}
			ideal := total / int64(tc.shards)
			for i := 0; i < tc.shards; i++ {
				load := int64(off[b[i+1]] - off[b[i]])
				if load > ideal+maxDeg {
					t.Errorf("shard %d carries %d half-edges, ideal %d, max degree %d (bounds %v)",
						i, load, ideal, maxDeg, b)
				}
			}
		})
	}
}

func TestSetShardsClamps(t *testing.T) {
	net := pathNet(t, 4, 1)
	net.SetShards(99) // S > n clamps to n
	if got := net.Shards(); got != 4 {
		t.Fatalf("Shards() = %d after SetShards(99) on n=4, want 4", got)
	}
	net.SetShards(0) // non-positive clamps to sequential
	if got := net.Shards(); got != 1 {
		t.Fatalf("Shards() = %d after SetShards(0), want 1", got)
	}
	net.SetShards(1) // S = 1 must take the sequential path
	if net.sh != nil {
		t.Fatal("SetShards(1) left shard workers installed; want the plain sequential engine")
	}
}

// --- Bit-identity: sequential vs sharded on synthetic engine workloads ---

// stressProto exercises every engine surface at once: fan-out floods,
// SetActive-driven steps, RNG consumption, and per-node receipt logs. Every
// node forwards each received token to a random neighbor for `hops` hops,
// and node 0 additionally stays awake for `awakeRounds` rounds emitting a
// fresh token each round.
type stressProto struct {
	seeds       int
	hops        int
	awakeRounds int

	got []int   // messages received per node (sized by prepare)
	sum []int64 // payload checksum per node
}

// prepare sizes the per-node logs; protocol state must exist before Run
// because sharded Init calls arrive concurrently.
func (p *stressProto) prepare(n int) *stressProto {
	p.got = make([]int, n)
	p.sum = make([]int64, n)
	return p
}

type tokenPayload struct{ hops, val int32 }

func (tokenPayload) Words() int   { return 2 }
func (tokenPayload) Kind() uint16 { return 7 }
func (p tokenPayload) Encode() [PayloadWords]uint64 {
	return [PayloadWords]uint64{Pack2(p.hops, p.val)}
}
func (tokenPayload) Decode(w [PayloadWords]uint64) tokenPayload {
	h, v := Unpack2(w[0])
	return tokenPayload{hops: h, val: v}
}

func (p *stressProto) Init(ctx *Ctx) {
	v := ctx.Node()
	if ctx.Degree() == 0 {
		return
	}
	for i := 0; i < p.seeds; i++ {
		nb := ctx.Neighbors()[ctx.RNG().Intn(ctx.Degree())].To
		Send(ctx, nb, tokenPayload{hops: int32(p.hops), val: int32(v)})
	}
	if v == 0 && p.awakeRounds > 0 {
		ctx.SetActive(true)
	}
}

func (p *stressProto) Step(ctx *Ctx) {
	v := ctx.Node()
	for _, m := range ctx.Inbox() {
		tk := As[tokenPayload](m)
		p.got[v]++
		p.sum[v] += int64(tk.val)*31 + int64(tk.hops)
		if tk.hops > 0 && ctx.Degree() > 0 {
			nb := ctx.Neighbors()[ctx.RNG().Intn(ctx.Degree())].To
			Send(ctx, nb, tokenPayload{hops: tk.hops - 1, val: tk.val + 1})
		}
	}
	if v == 0 && p.awakeRounds > 0 {
		if ctx.Round() >= p.awakeRounds {
			ctx.SetActive(false)
			return
		}
		if ctx.Degree() > 0 {
			nb := ctx.Neighbors()[ctx.RNG().Intn(ctx.Degree())].To
			Send(ctx, nb, tokenPayload{hops: 3, val: int32(ctx.Round())})
		}
	}
}

// stressGraphs builds the identity-test topologies: a torus (uniform), a
// star (one shard owns the hub), a multigraph with parallel edges, and a
// graph with isolated nodes.
func stressGraphs(t *testing.T) map[string]*graph.G {
	t.Helper()
	torus, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	star, err := graph.Star(33)
	if err != nil {
		t.Fatal(err)
	}
	multi := graph.New(6)
	for i := 0; i < 5; i++ {
		multi.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	multi.AddEdge(0, 1) // parallel edge: exercises the least-loaded tie-break
	multi.AddEdge(2, 3)
	multi.AddEdge(0, 5)
	iso := graph.New(12)
	for i := 0; i < 8; i++ {
		iso.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%8))
	}
	// Nodes 8..11 stay isolated: they must never step and never break the
	// partition.
	return map[string]*graph.G{"torus8x8": torus, "star33": star, "multi": multi, "isolated": iso}
}

func runStress(t *testing.T, g *graph.G, shards int, opts ...Option) (Result, *stressProto, error) {
	t.Helper()
	opts = append(opts, WithShards(shards))
	net := NewNetwork(g, 42, opts...)
	if shards > 1 && g.N() >= shards && net.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", net.Shards(), shards)
	}
	p := (&stressProto{seeds: 3, hops: 40, awakeRounds: 12}).prepare(g.N())
	res, err := net.Run(p)
	return res, p, err
}

func TestShardIdentityEngine(t *testing.T) {
	for name, g := range stressGraphs(t) {
		t.Run(name, func(t *testing.T) {
			seqRes, seqP, err := runStress(t, g, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 3, 4, 8} {
				res, p, err := runStress(t, g, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if res != seqRes {
					t.Fatalf("shards=%d: Result %+v != sequential %+v", shards, res, seqRes)
				}
				for v := range seqP.got {
					if p.got[v] != seqP.got[v] || p.sum[v] != seqP.sum[v] {
						t.Fatalf("shards=%d node %d: got %d/sum %d, sequential %d/%d",
							shards, v, p.got[v], p.sum[v], seqP.got[v], seqP.sum[v])
					}
				}
			}
		})
	}
}

func TestShardIdentityWithCrashAndCaps(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string][]Option{
		"crash":  {WithCrash(7, 5), WithCrash(20, 1)},
		"cap3":   {WithEdgeCap(3)},
		"capfn":  {WithEdgeCapFunc(func(from, to graph.NodeID) int { return 1 + int(from+to)%3 })},
		"budget": {WithMaxRounds(9)},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			seqRes, seqP, seqErr := runStress(t, g, 1, opts...)
			for _, shards := range []int{2, 4} {
				res, p, err := runStress(t, g, shards, opts...)
				if (err == nil) != (seqErr == nil) ||
					errors.Is(err, ErrRoundLimit) != errors.Is(seqErr, ErrRoundLimit) {
					t.Fatalf("shards=%d: err %v, sequential err %v", shards, err, seqErr)
				}
				if res != seqRes {
					t.Fatalf("shards=%d: Result %+v != sequential %+v", shards, res, seqRes)
				}
				if err != nil {
					continue // counters compared; per-node state undefined post-abort
				}
				for v := range seqP.got {
					if p.got[v] != seqP.got[v] || p.sum[v] != seqP.sum[v] {
						t.Fatalf("shards=%d node %d diverged", shards, v)
					}
				}
			}
		})
	}
}

// TestShardIdentityTreeProtocols runs the engine's own generic tree
// protocols (BFS build, broadcast, convergecast, upcast) sharded and
// compares everything observable against the sequential run.
func TestShardIdentityTreeProtocols(t *testing.T) {
	g, err := graph.Torus(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		tree    []graph.NodeID
		costs   [4]Result
		sum     int64
		upcount int
	}
	runAll := func(shards int) (outcome, error) {
		var o outcome
		net := NewNetwork(g, 99, WithShards(shards))
		tree, res, err := BuildBFSTree(net, 5)
		if err != nil {
			return o, err
		}
		o.costs[0] = res
		o.tree = append([]graph.NodeID(nil), tree.Parent...)
		res, err = Broadcast(net, tree, intPayload(11), nil)
		if err != nil {
			return o, err
		}
		o.costs[1] = res
		sum, res, err := Convergecast(net, tree,
			func(v graph.NodeID) intPayload { return intPayload(v) },
			func(_ graph.NodeID, a, c intPayload) intPayload { return a + c },
		)
		if err != nil {
			return o, err
		}
		o.costs[2] = res
		o.sum = int64(sum)
		items, res, err := Upcast(net, tree, func(v graph.NodeID) []intPayload {
			if v%3 == 0 {
				return []intPayload{intPayload(v), intPayload(v * 2)}
			}
			return nil
		})
		if err != nil {
			return o, err
		}
		o.costs[3] = res
		o.upcount = len(items)
		for _, it := range items {
			o.sum += int64(it)
		}
		return o, nil
	}
	seq, err := runAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		got, err := runAll(shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.costs != seq.costs || got.sum != seq.sum || got.upcount != seq.upcount {
			t.Fatalf("shards=%d: outcome %+v != sequential %+v", shards, got, seq)
		}
		for v := range seq.tree {
			if got.tree[v] != seq.tree[v] {
				t.Fatalf("shards=%d: BFS parent of %d is %d, sequential %d", shards, v, got.tree[v], seq.tree[v])
			}
		}
	}
}

// TestShardedReuseAndReshard pins that one network can run sharded, be
// repartitioned, and keep producing sequential-identical executions, and
// that Reseed keeps working across modes.
func TestShardedReuseAndReshard(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewNetwork(g, 7)
	refP := (&stressProto{seeds: 2, hops: 25}).prepare(g.N())
	refRes, err := ref.Run(refP)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 7, WithShards(3))
	for _, shards := range []int{3, 2, 1, 4} {
		net.SetShards(shards)
		net.Reseed(7)
		p := (&stressProto{seeds: 2, hops: 25}).prepare(g.N())
		res, err := net.Run(p)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res != refRes {
			t.Fatalf("shards=%d: Result %+v != reference %+v", shards, res, refRes)
		}
		for v := range refP.got {
			if p.got[v] != refP.got[v] {
				t.Fatalf("shards=%d node %d diverged after reshard", shards, v)
			}
		}
	}
}

func TestShardStatsOccupancy(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 3, WithShards(4))
	if _, err := net.Run((&stressProto{seeds: 4, hops: 30}).prepare(g.N())); err != nil {
		t.Fatal(err)
	}
	st := net.ShardStats()
	if st.Shards != 4 || len(st.Stepped) != 4 {
		t.Fatalf("ShardStats %+v, want 4 shards", st)
	}
	var stepped, delivered int64
	for i := range st.Stepped {
		stepped += st.Stepped[i]
		delivered += st.Delivered[i]
	}
	if stepped == 0 || delivered == 0 {
		t.Fatalf("no sharded work recorded: %+v", st)
	}
	occ := st.Occupancy()
	total := 0.0
	for _, f := range occ {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("occupancy %v does not sum to 1", occ)
	}
	// Aggregation across networks.
	var agg ShardStats
	agg.Add(st)
	agg.Add(st)
	if agg.Stepped[0] != 2*st.Stepped[0] {
		t.Fatalf("ShardStats.Add: got %d, want %d", agg.Stepped[0], 2*st.Stepped[0])
	}
	// Sequential networks report a single shard with no per-shard slices.
	seq := NewNetwork(g, 3)
	if sst := seq.ShardStats(); sst.Shards != 1 || sst.Stepped != nil {
		t.Fatalf("sequential ShardStats = %+v, want {Shards:1}", sst)
	}
}

func TestShardedErrorAborts(t *testing.T) {
	g, err := graph.Path(8)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1, WithShards(2))
	p := &badSend{from: 6, to: 1} // non-neighbor send from shard 1
	if _, err := net.Run(p); err == nil {
		t.Fatal("sharded run with invalid send did not fail")
	}
	// The network stays usable after the abort.
	net.Reseed(1)
	if _, err := net.Run((&stressProto{seeds: 1, hops: 5}).prepare(g.N())); err != nil {
		t.Fatalf("run after aborted sharded run: %v", err)
	}
}

// badSend sends to a non-neighbor during Init.
type badSend struct{ from, to graph.NodeID }

func (p *badSend) Init(ctx *Ctx) {
	if ctx.Node() == p.from {
		Send(ctx, p.to, intPayload(1))
	}
}
func (p *badSend) Step(*Ctx) {}

func TestShardedHalter(t *testing.T) {
	// The halting round must match the sequential engine exactly.
	g, err := graph.Path(30)
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) (Result, error) {
		net := NewNetwork(g, 5, WithShards(shards))
		p := &haltAt{target: 25}
		return net.Run(p)
	}
	seq, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		got, err := run(shards)
		if err != nil {
			t.Fatal(err)
		}
		if got != seq {
			t.Fatalf("shards=%d: halter Result %+v != sequential %+v", shards, got, seq)
		}
	}
}

// haltAt relays a token down the path and halts when it reaches target.
type haltAt struct {
	target graph.NodeID
	done   bool
}

func (p *haltAt) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		Send(ctx, 1, intPayload(0))
	}
}

func (p *haltAt) Step(ctx *Ctx) {
	v := ctx.Node()
	if len(ctx.Inbox()) == 0 {
		return
	}
	if v == p.target {
		p.done = true
		return
	}
	if int(v)+1 < ctx.N() {
		Send(ctx, v+1, intPayload(int(v)))
	}
}

func (p *haltAt) Halted() bool { return p.done }

func TestShardedContextCancel(t *testing.T) {
	g, err := graph.Cycle(16)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 2, WithShards(2))
	ctx, cancel := context.WithCancel(context.Background())
	net.SetContext(ctx)
	cancel()
	if _, err := net.Run((&stressProto{seeds: 1, hops: 1000}).prepare(g.N())); err == nil {
		t.Fatal("sharded run with canceled context did not fail")
	}
	net.SetContext(nil)
	net.Reseed(2)
	if _, err := net.Run((&stressProto{seeds: 1, hops: 5}).prepare(g.N())); err != nil {
		t.Fatalf("run after canceled sharded run: %v", err)
	}
}

func ExampleNetwork_SetShards() {
	g, _ := graph.Torus(8, 8)
	seq := NewNetwork(g, 1)
	shd := NewNetwork(g, 1, WithShards(4))
	p1 := (&stressProto{seeds: 2, hops: 20}).prepare(g.N())
	p2 := (&stressProto{seeds: 2, hops: 20}).prepare(g.N())
	a, _ := seq.Run(p1)
	b, _ := shd.Run(p2)
	fmt.Println(a == b)
	// Output: true
}
