package congest

import (
	"testing"

	"distwalk/internal/graph"
)

func TestPerEdgeCapacity(t *testing.T) {
	// Path 0-1-2 with capacity 4 on edge (0,1) and 1 on (1,2): a burst of
	// 8 messages relayed 0→1→2 drains the first hop in 2 rounds but the
	// second in 8.
	g, err := graph.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1, WithEdgeCapFunc(func(from, to graph.NodeID) int {
		if (from == 0 && to == 1) || (from == 1 && to == 0) {
			return 4
		}
		return 1
	}))
	p := &relayBurst{k: 8}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.got != 8 {
		t.Fatalf("delivered %d of 8", p.got)
	}
	// First message reaches node 2 at round 2; the rest are serialized on
	// the unit edge: last arrives at round 2+7 = 9.
	if res.Rounds != 9 {
		t.Fatalf("rounds=%d, want 9", res.Rounds)
	}

	// Control: both edges unit capacity → first hop also serializes, but
	// pipelining still gives the same last-arrival bound: round 1+8 = 9...
	// so distinguish with a wide first hop and k greater than path slack.
	unit := NewNetwork(g, 1)
	p2 := &relayBurst{k: 8}
	res2, err := unit.Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds < res.Rounds {
		t.Fatalf("unit-capacity run (%d) beat boosted run (%d)", res2.Rounds, res.Rounds)
	}
}

func TestPerEdgeCapacityClampsToOne(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1, WithEdgeCapFunc(func(graph.NodeID, graph.NodeID) int {
		return 0 // must clamp to 1, not stall forever
	}))
	p := &burst{from: 0, to: 1, k: 3}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.got != 3 || res.Rounds != 3 {
		t.Fatalf("got=%d rounds=%d, want 3, 3", p.got, res.Rounds)
	}
}

func TestNilCapFuncIgnored(t *testing.T) {
	g, _ := graph.Path(2)
	net := NewNetwork(g, 1, WithEdgeCapFunc(nil))
	p := &burst{from: 0, to: 1, k: 2}
	if _, err := net.Run(p); err != nil {
		t.Fatal(err)
	}
}

// relayBurst sends k messages 0→1 at Init; node 1 forwards each to 2.
type relayBurst struct {
	k   int
	got int
}

func (p *relayBurst) Init(ctx *Ctx) {
	if ctx.Node() == 0 {
		for i := 0; i < p.k; i++ {
			Send(ctx, 1, intPayload(i))
		}
	}
}

func (p *relayBurst) Step(ctx *Ctx) {
	switch ctx.Node() {
	case 1:
		for _, m := range ctx.Inbox() {
			Send(ctx, 2, As[intPayload](m))
		}
	case 2:
		p.got += len(ctx.Inbox())
	}
}

func TestBroadcastManyDeliversAll(t *testing.T) {
	g, err := graph.BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 3)
	tree, _, err := BuildBFSTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	items := []intPayload{10, 20, 30, 40, 50}
	got := make(map[graph.NodeID][]int)
	res, err := BroadcastMany(net, tree, items, func(v graph.NodeID, p intPayload) {
		got[v] = append(got[v], int(p))
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if len(got[graph.NodeID(v)]) != len(items) {
			t.Fatalf("node %d received %d of %d items", v, len(got[graph.NodeID(v)]), len(items))
		}
	}
	// Pipelined: len(items) + height - 1 rounds.
	want := len(items) + tree.Height - 1
	if res.Rounds != want {
		t.Fatalf("rounds=%d, want %d (pipelined)", res.Rounds, want)
	}
}

func TestBroadcastManyEmpty(t *testing.T) {
	g, _ := graph.Path(3)
	net := NewNetwork(g, 3)
	tree, _, err := BuildBFSTree(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BroadcastMany(net, tree, nil, func(graph.NodeID, intPayload) {
		t.Fatal("visited with no items")
	})
	if err != nil || res.Rounds != 0 {
		t.Fatalf("empty broadcast: rounds=%d err=%v", res.Rounds, err)
	}
}

func TestWordsMetricAccumulates(t *testing.T) {
	g, _ := graph.Path(2)
	net := NewNetwork(g, 1)
	p := &burst{from: 0, to: 1, k: 4}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Words != 4 { // intPayload.Words() == 1
		t.Fatalf("words=%d, want 4", res.Words)
	}
}

func TestCtxN(t *testing.T) {
	g, _ := graph.Path(5)
	net := NewNetwork(g, 1)
	var sawN int
	p := &funcProto{
		init: func(ctx *Ctx) {
			if ctx.Node() == 0 {
				sawN = ctx.N()
			}
		},
	}
	if _, err := net.Run(p); err != nil {
		t.Fatal(err)
	}
	if sawN != 5 {
		t.Fatalf("Ctx.N() = %d, want 5", sawN)
	}
}

// funcProto adapts closures to the Proto interface for tests.
type funcProto struct {
	init func(*Ctx)
	step func(*Ctx)
}

func (p *funcProto) Init(ctx *Ctx) {
	if p.init != nil {
		p.init(ctx)
	}
}

func (p *funcProto) Step(ctx *Ctx) {
	if p.step != nil {
		p.step(ctx)
	}
}
