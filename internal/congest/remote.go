package congest

import (
	"fmt"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// Cluster-mode client: the network's shards run as ShardEngines in other
// processes (cmd/distwalkd), reached through the RemoteShard transport
// below. The protocol layer — Init/Step, per-node RNG streams, the awake
// list — runs here, single-threaded like the sequential engine; the
// transport layer (edge queues, fault charging, delivery) runs remotely.
// Each round the client ships its sends to the engine owning the sender,
// asks every engine to deliver, and merges the returned buffers in
// ascending shard order — the exact deliverIn merge, so inboxes, RNG
// traces, counters and fault charging stay bit-identical to the
// in-process engines at the same shard plan (see the determinism argument
// in doc.go).

// RemoteShard is one remote shard engine as seen by the client: a
// strictly alternating request/reply transport over the engine's
// RunBegin/Push/Deliver/RunEnd state machine. The Send/Read split lets
// the round loop write to every engine before reading any reply, so the
// engines of a round work concurrently while the client stays
// single-threaded. LoopbackShard is the in-process reference
// implementation; internal/wire provides the TCP one.
type RemoteShard interface {
	// RunBegin resets the engine for a fresh run. Implementations may
	// buffer the request; it must be delivered before (or with) the next
	// SendPushes.
	RunBegin() error
	// SendPushes ships the round's sends from this engine's node range
	// (possibly none — the engine still needs the round's push barrier).
	SendPushes(round int, msgs []Message) error
	// ReadPushAck completes SendPushes, returning the engine's active
	// edge count — its contribution to the quiescence check.
	ReadPushAck() (active int, err error)
	// SendDeliver asks the engine to deliver the given round.
	SendDeliver(round int) error
	// ReadBuffer completes SendDeliver, appending the delivered messages
	// (ascending edge order) to buf and returning the extended slice.
	ReadBuffer(buf []Message) ([]Message, error)
	// FinishRun ends the run, returning the engine's counters and
	// first-loss record.
	FinishRun() (RemoteResult, error)
}

// RemoteResult is a shard engine's contribution to a run's Result: its
// delivery counters and its first-loss record.
type RemoteResult struct {
	Res  Result
	Loss LossRecord
}

// ConnectRemote switches the network to cluster execution over the given
// engine group: engine i owns the transport for nodes
// [bounds[i], bounds[i+1]) (PlanShards produces matching bounds). The
// network's own transport stays unused; any in-process shard layout is
// torn down. Cluster mode supports the uniform edge capacity and fault
// plans (shipped to the engines at dial time by the caller); the
// per-edge capacity table and WithCrash schedules are client-local
// constructs the engines never see, so a network using them refuses to
// connect. Pass an empty group to restore in-process execution.
func (n *Network) ConnectRemote(group []RemoteShard, bounds []int32) error {
	if len(group) == 0 {
		n.remote = nil
		n.remoteOf = nil
		n.pushBuf = nil
		return nil
	}
	if !validBounds(bounds, n.g.N()) || len(bounds) != len(group)+1 {
		return fmt.Errorf("%w: %d engines against bounds %v over [0,%d]",
			ErrShardPlan, len(group), bounds, n.g.N())
	}
	if n.hasCrash {
		return fmt.Errorf("%w: WithCrash schedules are not supported in cluster mode (use a fault plan)", ErrShardPlan)
	}
	if n.capOf != nil {
		return fmt.Errorf("%w: per-edge capacities are not supported in cluster mode", ErrShardPlan)
	}
	n.SetShards(1)
	n.remote = group
	n.remoteOf = make([]int32, n.g.N())
	for i := 0; i < len(group); i++ {
		for v := bounds[i]; v < bounds[i+1]; v++ {
			n.remoteOf[v] = int32(i)
		}
	}
	n.pushBuf = make([][]Message, len(group))
	return nil
}

// Remote reports the number of connected remote shard engines (0 =
// in-process execution).
func (n *Network) Remote() int { return len(n.remote) }

// remoteFail wraps a transport failure of engine i; errors.Is matches
// both ErrRemoteShard and the transport's own typed cause.
func remoteFail(i int, err error) error {
	return fmt.Errorf("%w: shard %d: %w", ErrRemoteShard, i, err)
}

// sendRemote is Send's cluster-mode body: the same validation (and
// runErr semantics) as the in-process path, with the queue push replaced
// by an append to the owning engine's push buffer. The least-loaded
// parallel-edge pick needs queue depths only the engine knows, so the
// send ships unresolved (from, to) and the engine resolves it with
// Network.send's exact tie-break.
func (n *Network) sendRemote(c *Ctx, to graph.NodeID, kind uint16, words int, w [PayloadWords]uint64) {
	from := c.node
	if n.runErr != nil {
		return
	}
	if words < 1 {
		n.runErr = fmt.Errorf("congest: node %d sent an invalid payload", from)
		return
	}
	lo, hi := n.off[from], n.off[from+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if n.nbrTo[mid] < int32(to) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == n.off[from+1] || n.nbrTo[lo] != int32(to) {
		n.runErr = fmt.Errorf("congest: node %d sent to non-neighbor %d", from, to)
		return
	}
	d := n.remoteOf[from]
	n.pushBuf[d] = append(n.pushBuf[d], Message{From: from, To: to, Kind: kind, words: uint16(words), W: w})
}

// flushPushes ships the buffered sends of the current round to every
// engine (writes first, then reads, so engines resolve concurrently) and
// returns the summed active edge count — the cluster analogue of
// summing sh.active.count over the in-process shards.
func (n *Network) flushPushes() (int, error) {
	for i, r := range n.remote {
		if err := r.SendPushes(n.round, n.pushBuf[i]); err != nil {
			return 0, remoteFail(i, err)
		}
	}
	active := 0
	for i, r := range n.remote {
		a, err := r.ReadPushAck()
		if err != nil {
			return 0, remoteFail(i, err)
		}
		active += a
		n.pushBuf[i] = n.pushBuf[i][:0]
	}
	return active, nil
}

// remoteDeliver runs one round's delivery: every engine drains its edge
// range for the current round, and the returned buffers merge here in
// ascending shard order — engines own ascending contiguous edge ranges
// and deliver in ascending edge order, so the concatenation appends to
// each inbox in ascending global directed-edge order, byte for byte the
// sequential delivery order (the deliverIn argument). The awake-list
// compaction then mirrors the in-process engines exactly.
func (n *Network) remoteDeliver() error {
	for i, r := range n.remote {
		if err := r.SendDeliver(n.round); err != nil {
			return remoteFail(i, err)
		}
	}
	for i, r := range n.remote {
		buf, err := r.ReadBuffer(n.recvBuf[:0])
		if err != nil {
			return remoteFail(i, err)
		}
		for j := range buf {
			m := &buf[j]
			n.inbox[m.To] = append(n.inbox[m.To], *m)
			n.stepSet.add(int32(m.To))
		}
		n.recvBuf = buf[:0]
	}
	live := n.awakeNodes[:0]
	for _, v := range n.awakeNodes {
		if !n.awake[v] {
			continue
		}
		if n.crashed(v) {
			n.awake[v] = false
			n.awakeCount--
			continue
		}
		live = append(live, v)
		n.stepSet.add(int32(v))
	}
	n.awakeNodes = live
	return nil
}

// remoteAdvance is the serial verdict at the end of a round (and after
// Init), in exactly shardRun.advance's order: protocol error, halt,
// quiescence, round budget, cancellation — otherwise the next round
// opens. active is the engines' summed active edge count from the
// round's push barrier.
func (n *Network) remoteAdvance(halter Halter, active int) (bool, error) {
	if n.runErr != nil {
		return true, n.runErr
	}
	if halter != nil && halter.Halted() {
		return true, nil
	}
	if active == 0 && n.awakeCount == 0 {
		return true, nil
	}
	if n.round >= n.maxRound {
		return true, fmt.Errorf("%w after %d rounds", ErrRoundLimit, n.round)
	}
	if n.ctx != nil && n.round&ctxCheckMask == 0 {
		if err := n.ctx.Err(); err != nil {
			return true, fmt.Errorf("congest: run aborted at round %d: %w", n.round, err)
		}
	}
	n.round++
	n.res.Rounds = n.round
	return false, nil
}

// finishRemote collects every engine's counters and first-loss record,
// merging them exactly as runSharded merges per-shard results: Result
// counters sum in shard order (MaxQueue maxes), losses keep the minimum
// (round, edge) unless an earlier run of this request already recorded
// one.
func (n *Network) finishRemote() error {
	var firstErr error
	// An earlier run of this request may already hold the request-level
	// first loss; this run's losses then never displace it (mergeLoss's
	// contract). Latch the flag before merging starts mutating n.loss.
	lossHeld := n.loss.valid
	for i, r := range n.remote {
		rr, err := r.FinishRun()
		if err != nil {
			if firstErr == nil {
				firstErr = remoteFail(i, err)
			}
			continue
		}
		n.res.Add(rr.Res)
		l := rr.Loss
		if !l.Valid || lossHeld {
			continue
		}
		if !n.loss.valid || l.Round < n.loss.round ||
			(l.Round == n.loss.round && l.Edge < n.loss.edge) {
			n.loss = lossInfo{valid: true, link: l.Link, round: l.Round, edge: l.Edge, from: l.From, to: l.To}
		}
	}
	return firstErr
}

// runRemote is the cluster-mode round loop; see Run. Structure and check
// order mirror runSharded: reset, cancellation pre-check, Init, then the
// push-barrier / verdict / deliver / step cadence with the serial
// verdict in shardRun.advance's exact order.
func (n *Network) runRemote(p Proto) (Result, error) {
	n.reset()
	for i := range n.pushBuf {
		n.pushBuf[i] = n.pushBuf[i][:0]
	}
	if n.ctx != nil {
		if err := n.ctx.Err(); err != nil {
			return n.res, fmt.Errorf("congest: run aborted before round 1: %w", err)
		}
	}
	for i, r := range n.remote {
		if err := r.RunBegin(); err != nil {
			return n.res, remoteFail(i, err)
		}
	}
	ctx := &Ctx{net: n}
	for v := 0; v < n.g.N(); v++ {
		ctx.node = graph.NodeID(v)
		ctx.inbox = nil
		p.Init(ctx)
		if n.runErr != nil {
			break
		}
	}
	halter, _ := p.(Halter)
	active, err := n.flushPushes()
	if err != nil {
		return n.res, err
	}
	for {
		stop, verdict := n.remoteAdvance(halter, active)
		if stop {
			if ferr := n.finishRemote(); verdict == nil && ferr != nil {
				verdict = ferr
			}
			return n.res, verdict
		}
		if err := n.remoteDeliver(); err != nil {
			return n.res, err
		}
		n.step(p, ctx)
		if active, err = n.flushPushes(); err != nil {
			return n.res, err
		}
	}
}

// LoopbackShard is the in-process reference implementation of
// RemoteShard: a ShardEngine called directly, with the request/reply
// split emulated by a one-slot mailbox. It documents the transport
// contract, anchors the wire implementation's identity tests (cluster
// execution must be bit-identical with either transport), and gives
// tests a cluster client with no processes or sockets involved.
type LoopbackShard struct {
	eng   *ShardEngine
	round int
}

// NewLoopbackGroup builds an in-process engine group over the same plan a
// cluster of s distwalkd processes would serve: PlanShards bounds, one
// ShardEngine per shard, each compiled against g with the given edge
// capacity and fault plan. It returns the group and the bounds to pass
// to ConnectRemote.
func NewLoopbackGroup(g *graph.G, s, edgeCap int, plan *fault.Plan) ([]RemoteShard, []int32, error) {
	bounds := PlanShards(g, s)
	group := make([]RemoteShard, len(bounds)-1)
	for i := range group {
		eng, err := NewShardEngine(g, bounds, i, edgeCap, plan)
		if err != nil {
			return nil, nil, err
		}
		group[i] = &LoopbackShard{eng: eng}
	}
	return group, bounds, nil
}

// Engine returns the underlying ShardEngine.
func (l *LoopbackShard) Engine() *ShardEngine { return l.eng }

// RunBegin implements RemoteShard.
func (l *LoopbackShard) RunBegin() error {
	l.eng.RunBegin()
	return nil
}

// SendPushes implements RemoteShard.
func (l *LoopbackShard) SendPushes(round int, msgs []Message) error {
	l.round = round
	return l.eng.Push(round, msgs)
}

// ReadPushAck implements RemoteShard.
func (l *LoopbackShard) ReadPushAck() (int, error) { return l.eng.Active(), nil }

// SendDeliver implements RemoteShard.
func (l *LoopbackShard) SendDeliver(round int) error {
	l.round = round
	return nil
}

// ReadBuffer implements RemoteShard.
func (l *LoopbackShard) ReadBuffer(buf []Message) ([]Message, error) {
	return append(buf, l.eng.Deliver(l.round)...), nil
}

// FinishRun implements RemoteShard.
func (l *LoopbackShard) FinishRun() (RemoteResult, error) {
	res, loss := l.eng.RunEnd()
	return RemoteResult{Res: res, Loss: loss}, nil
}

var _ RemoteShard = (*LoopbackShard)(nil)
