// Package congest simulates the CONGEST model of distributed computing used
// throughout the paper (Section 1.1): a synchronous network where, in each
// round, every node may send one O(log n)-bit message through each incident
// edge.
//
// The simulator is a deterministic discrete-event engine:
//
//   - Every undirected edge is two directed channels with a FIFO queue each.
//   - In each round, at most Cap messages (default 1) are delivered from
//     every directed queue; everything else waits. Congestion therefore
//     costs extra rounds exactly as in the paper's analysis (e.g. Lemma 2.1
//     charges Phase 1 O(λη log n) rounds because ~η log n tokens cross an
//     edge per walk step w.h.p.).
//   - Messages sent in round r are deliverable from round r+1 on.
//   - Nodes execute in increasing ID order within a round and draw
//     randomness from per-node streams derived from the network seed, so a
//     whole execution is reproducible.
//
// Protocols implement Proto and are run to quiescence (no queued messages,
// no active nodes) or until an optional Halter says the goal is reached.
// Node state persists wherever the protocol keeps it; the engine itself is
// stateless between runs except for per-node RNG streams, which continue
// across phases so that multi-phase algorithms remain reproducible.
//
// # Engine design notes
//
// Every algorithm in this reproduction executes through this engine's
// round loop, so its constant factors gate the largest n and ℓ the
// simulation can reach. The hot loop is organized around three rules, all
// of which preserve the simulated Result counters bit for bit (the golden
// tests at the repo root and in internal/pathverify pin this):
//
// Scheduling is sort-free. The active directed edges and the nodes
// scheduled to step are hierarchical bitsets (sched): add is O(1), and
// draining visits members in ascending index order by construction —
// which IS the deterministic ID order the model prescribes — instead of
// sorting an append-built slice with a comparator closure every round.
// Summary levels make a drain of m members cost O(m + log n) regardless
// of how sparse the round is, so a quiet network (one token in flight)
// pays nothing for the idle edges.
//
// Messages are word-encoded, not boxed. A Message carries its payload
// inline as up to PayloadWords uint64 words plus a protocol-defined Kind
// tag. Payload types pack themselves in Encode/Decode; the generic
// Send[V] makes the encode a static call on the concrete type. The old
// engine stored payloads in an interface field, which heap-allocated on
// every send (any non-pointer value boxed into an interface escapes) and
// made every queue a GC scan target. Word encoding also matches the
// model: a payload IS O(log n) bits, so it fits in O(1) machine words.
//
// Queues are rings over persistent slabs. Each directed edge owns a ring
// buffer whose power-of-two backing array survives rounds and runs at its
// high-water size; delivery pops in place. The old per-edge []Message
// slices were nil-ed after delivery and re-allocated the next time the
// edge carried traffic — the dominant allocation source in walk
// workloads, where the same few edges fill and drain every round. Send
// looks up the directed edge with a binary search in a flat sorted
// per-node neighbor index (nbrTo/nbrEdge) instead of a per-node
// map[NodeID][]int32; parallel edges sit contiguously in adjacency order,
// so the least-loaded tie-break picks the same edge the map index did.
//
// Determinism argument: delivery iterates edges in ascending directed
// index (drain order = old sorted order); within an edge, FIFO; node
// steps run in ascending node ID; Send validation, capacity clamping,
// crash handling and the Result counters are computed at the same points
// with the same values as the pre-rewrite engine. The engine itself
// consumes no randomness. Hence for a fixed seed the message trace, the
// RNG consumption and every Result field are identical to the original
// sort-and-box engine — verified by the golden counter tests.
//
// Allocation discipline: steady-state delivery is zero-alloc (engine
// micro-benchmarks hold at 2-6 allocs per whole run, from protocol state,
// vs 10^2-10^4 before). Growth paths (ring doubling, inbox append) are
// amortized and retain capacity; reset clears by draining, never by
// re-allocating.
//
// # Cancellation and pooling
//
// The round loop is context-aware: SetContext installs a context.Context
// that Run polls every ctxCheckMask+1 rounds (one pointer nil-check per
// round when no context is set, so the golden counters and the hot loop
// are unaffected). A run aborted by cancellation returns an error wrapping
// ctx.Err(), and the in-flight messages it leaves behind are dropped by
// the next Run's reset, so an aborted network is immediately reusable.
//
// Reseed re-derives the per-node RNG streams from a fresh seed using the
// same construction as NewNetwork. Together with the reset discipline this
// makes a Network poolable: the service layer (distwalk.Service) keeps one
// Network per worker and reseeds it with a request-key-derived seed before
// each request, which yields per-request determinism — the result of a
// request depends only on (graph, service seed, request key), never on
// which worker ran it or what ran on that worker before.
//
// # Tree-protocol scratch and the epoch-stamp trick
//
// The tree primitives used to allocate their per-node working arrays per
// call — Convergecast built two O(n) slices on every invocation, which in
// walk workloads means every SAMPLE-DESTINATION stitch. The Network now
// owns a single nodeScratch (stamp/acc/pending arrays sized once to n)
// that each tree-protocol run borrows via scratch(). "Clearing" it is one
// epoch increment: a slot is meaningful only while its stamp equals the
// current epoch, so stale state from the previous run is unreachable
// without ever sweeping the arrays (the rare uint32 wrap does one sweep).
// Convergecast keeps its per-node aggregates in the scratch as encoded
// payload words — every aggregate type is a WirePayload, so Encode/Decode
// round-trips exactly (any value that survives a tree edge already does) —
// and the BFS build marks visited nodes by stamping. One scratch suffices
// because the engine executes one Run at a time.
//
// # Sharded execution
//
// SetShards(S) (or the WithShards option) partitions the nodes into S
// contiguous ranges, degree-balanced over the flat half-edge index, and
// runs each round's per-node processing on one worker goroutine per shard
// (shard.go). A round becomes three phases: every shard drains its own
// active edges into per-(source, destination)-shard transfer buffers;
// a barrier; every shard merges its inbound buffers and steps its
// scheduled nodes; a second barrier, inside which one goroutine runs the
// serial round bookkeeping (quiescence, halters, budget, cancellation) in
// exactly the sequential engine's order.
//
// Determinism argument — why WithShards(S) is bit-identical to
// WithShards(1): the engine's only order-sensitive operation is inbox
// append order (protocols see Inbox() in delivery order, and RNG draws
// follow message handling). Sequential delivery iterates directed edges in
// ascending global index. Shards own contiguous ascending edge ranges, in
// shard order; each shard drains its own edges ascending; and the
// destination merges inbound buffers in ascending source-shard order. The
// concatenation (source shard ascending, edge ascending within shard) IS
// the global ascending edge order, so every node's inbox is byte-identical
// to the sequential engine's — the barrier merge order equals the global
// edge (and hence node) order. Node steps within a shard run in ascending
// ID order; steps in different shards interleave arbitrarily, which is
// unobservable because protocol state is per-node (each node's Step
// touches only its own slots of per-node stores, plus its own outgoing
// queues and RNG stream — the same locality the CONGEST model itself
// prescribes). Counters are charged at the sending side with sequential
// values: Messages/Words/Dropped are sums over shards, MaxQueue a max —
// all order-free merges. The engine's RNG consumption is nil, and per-node
// streams are consumed only by their owner's Init/Step. Hence Result
// counters, walk outputs and RNG traces are invariant in S, which the
// shard-identity stress tests (engine-level, pathverify, and full-stack
// under -race) pin at S = 2, 4, 8.
//
// Two caveats. Error paths diverge benignly: an invalid send aborts the
// run in both modes, but sharded execution finishes the round in other
// shards and reports the lowest-erring-shard's error rather than the
// first in step order (errors are protocol bugs, not outcomes). And
// protocols whose nodes share mutable state would race: the one shared
// scratch in this module's protocols (the GET-MORE-WALKS aggregation
// buffer) became per-node, and pathverify's first-verifier tie-break an
// atomic CAS-min, as part of introducing sharding.
//
// Wall-clock: sharding pays when per-round work is large (big graphs,
// many tokens in flight) and costs two barrier synchronizations per round
// when it is not; S=1 — the default — runs the unchanged sequential hot
// loop with zero overhead. ShardStats reports per-shard occupancy and
// barrier wait so imbalance is observable.
//
// # Cross-process boundary exchange (cluster mode)
//
// ConnectRemote replaces the in-process shard group with remote shard
// engines reached through the internal/wire protocol (distwalkd
// processes). The determinism argument above survives the process
// boundary unchanged, because the protocol is a transcription of the
// barrier discipline, not a relaxation of it:
//
//   - Each remote ShardEngine owns the same contiguous ascending
//     directed-edge range the in-process shard would own (the client
//     sends the identical PlanShards bounds in the handshake), and owns
//     only transport state: edge rings, fault charging, delivery
//     counters. Protocol state, per-node RNG streams, the awake list and
//     the round bookkeeping stay on the client, so the split moves
//     *where* edges drain without moving any order-sensitive decision.
//   - The push barrier is write-all-then-read-all: the client sends every
//     engine its round's boundary messages, then awaits every PushAck.
//     No engine's delivery can begin before the barrier completes, same
//     as the in-process phase structure.
//   - The delivery barrier returns each engine's inbound buffer as one
//     frame, messages in the engine's drain order — ascending edge index
//     within the engine's range, FIFO within an edge. The client merges
//     buffers in ascending engine (= shard) order; the concatenation is
//     the global ascending directed-edge order, so every inbox is
//     byte-identical to the sequential engine's, by the same argument as
//     the in-process merge. TCP may interleave frames from different
//     engines arbitrarily; the merge order is fixed by shard index, not
//     arrival time, so network timing is unobservable.
//   - Fault charging runs inside the engine that owns the edge, with the
//     same per-edge ordinal streams (pure functions of plan key, edge,
//     ordinal — no engine-side RNG), and the first-loss record merges by
//     minimal (round, edge) across engines, exactly as across shards.
//
// Hence Result counters, walk outputs, RNG traces, fault census and
// LossError are invariant across in-process sequential, WithShards(S)
// and a WithCluster S-engine deployment — pinned by the wire-level run
// identity tests (internal/wire) and the full-stack cluster suite
// (cluster_test.go) against real distwalkd processes at S = 2, 4.
//
// # Warm-reuse lifecycle
//
// Pooling now extends one layer above the engine. The protocol layer keeps
// its own per-node state (coupon shelves, hop logs, GET-MORE-WALKS flow
// ledgers — see internal/core's slab-backed netState) in flat growable
// slabs whose clear operations truncate rather than free. A pooled
// worker's lifecycle per request is therefore:
//
//	Reseed(derivedSeed)  -> fresh deterministic RNG streams
//	Walker.Reset(params) -> shelves truncate, cursors re-epoch,
//	                        tree slabs retire for recycling
//	serve request        -> steady-state allocation-free
//
// Reset restores the exact observable state of a freshly built walker, so
// warm reuse is invisible to the cost model: the golden counter tests and
// the service determinism stress tests pin that a worker's Nth request is
// bit-identical to the same request on a zero-history worker.
//
// # Generation-stamped warm state
//
// Warm reuse survives topology mutation through a generation stamp.
// Every Network carries an opaque uint64 set by its owner
// (SetGeneration/Generation — the engine never interprets it); the
// service layer stamps each pooled worker with the topology generation
// it was last built or reshaped for. On checkout it compares the stamp
// against the current generation: equal means the warm state is
// current and the request proceeds on the unchanged hot path (one
// integer compare — mutation support is zero-cost for static graphs,
// which the unchanged goldens and baselines prove); stale means the
// worker calls Reshape(g2) before serving.
//
// Reshape rebuilds exactly the structures that depend on the edge set
// — the directed-edge index (off/nbrTo/nbrEdge), the queue slab, the
// compiled fault plan — via the same buildIndex that NewNetwork uses,
// and leaves everything sized-to-n alone (per-node RNG stream slots,
// tree scratch, inboxes). It reports what the shard partition needed:
//
//   - ReshapeNone: same *graph.G pointer — only the stamp was behind
//     (an InvalidateCache generation bump publishes the same graph),
//     nothing rebuilds.
//   - ReshapeIncremental: the old contiguous node bounds still balance
//     the new edge distribution within the planner's slack (maxLoad*S
//     within 5/4 of mean), so the partition is kept and only the flat
//     index and rings rebuild. This is the common case for small edit
//     batches and keeps per-shard warm structures meaningful.
//   - ReshapeFull: the edit skewed per-shard load past the slack (or
//     the network is unsharded, where the distinction is vacuous), so
//     PlanShards re-partitions from scratch.
//
// Reshape refuses what cannot be reshaped in place: a nil or
// node-count-changing graph, a network attached to remote cluster
// engines (the service swaps the cluster plan instead; engines re-pin
// via the rotated handshake), and per-edge capacity functions (capOf
// closures may capture the old graph). An installed fault plan is
// recompiled against the new topology; a plan naming a now-removed
// link fails the reshape with ErrBadFault — the service validates
// plan-vs-edit before publishing, so hitting this in a worker is the
// defensive backstop, not a control path.
//
// Reshape must be followed by Reseed before serving: after
// Reshape(g2)+Reseed(s) the network is observably identical to
// NewNetwork(g2, s) — the same contract warm reuse already pinned,
// extended to the mutation axis. The generation stamp itself is owner
// state and survives Reshape untouched; the service re-stamps after a
// successful reshape so a failed one retries on the next checkout.
//
// # Fault injection and charging order
//
// SetFaultPlan installs a deterministic fault plan (internal/fault):
// crash-stop faults and churn windows (round-indexed node-down lookups),
// lossy links (per-message drop decisions) and slow links (per-edge fixed
// delays). All fault state lives behind one nil-checked pointer, so a
// network without a plan runs the unchanged hot loop — the zero-cost
// contract the goldens pin.
//
// Charging order within a directed edge's delivery, which both engines
// follow exactly:
//
//  1. Delay gate. A slow link whose release round is in the future skips
//     the whole burst, charges Faults.Delayed once per skipped round, and
//     re-activates the edge. Delay is inspected before anything is popped,
//     so FIFO order and MaxQueue sampling are unaffected.
//  2. Crash check. A message to a node that is down this round (crash or
//     churn window) is dropped and charged Faults.Dropped. Crash precedes
//     the loss roll: a message to a dead receiver never consumes a drop
//     ordinal, so adding a crash to a plan cannot shift the lossy-link
//     decisions of unrelated edges.
//  3. Loss roll. A lossy edge's surviving messages consume per-edge
//     decision ordinals, hashed statelessly from (plan key, edge,
//     ordinal) — fault.Roll. Dropped ones charge Faults.LinkDropped.
//
// Determinism under sharding follows from the same argument as delivery
// order: each directed edge is owned by exactly one shard and drained
// FIFO in ascending edge order, so its ordinal sequence — and therefore
// every drop decision — is identical at any shard count; delays are
// per-edge release rounds owned by the edge's shard; node-down lookups
// are pure functions of (node, round). The first-loss record (LossError)
// is merged across shards by minimal (round, edge), which is exactly the
// first loss the sequential drain order encounters. Faults.Crashed is a
// post-run census (high-water, including recovered churn nodes) computed
// once in the Run wrapper, identically for both engines.
//
// The loss record persists across a request's multiple engine runs and is
// cleared by Reseed — request scope, matching the service's per-request
// determinism contract. Protocols do not observe faults directly; the Las
// Vegas drivers detect the inconsistency a loss causes and fail, and
// internal/core's faultize boundary re-labels that detection error with
// the typed ErrNodeCrashed/ErrMessageLost carrying the recorded loss.
package congest
