package congest

import (
	"errors"
	"fmt"

	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// Typed fault taxonomy. ErrBadFault reports invalid fault configuration
// (WithCrash out of range, a malformed or non-edge-referencing plan);
// it is recorded on the Network at construction and returned by Run, so
// option application itself stays infallible. ErrNodeCrashed and
// ErrMessageLost are run-time outcomes: the protocol layer converts a
// run that stalled or came up short while the engine recorded a token
// loss into one of these (see Network.LossError), so drivers fail fast
// with a typed, retryable error instead of burning the round budget.
var (
	// ErrBadFault reports an invalid fault specification.
	ErrBadFault = errors.New("congest: invalid fault specification")
	// ErrNodeCrashed reports a protocol token lost to a crashed (down)
	// node. errors.As against *NodeCrashedError exposes the node and round.
	ErrNodeCrashed = errors.New("congest: node crashed")
	// ErrMessageLost reports a protocol message lost to a lossy link.
	// errors.As against *MessageLostError exposes the link and round.
	ErrMessageLost = errors.New("congest: message lost on lossy link")
)

// NodeCrashedError is the typed form of ErrNodeCrashed: the first
// message of the failed request that was dropped at a down receiver.
type NodeCrashedError struct {
	// Node is the down receiver the message was addressed to.
	Node graph.NodeID
	// Round is the simulated round of the loss.
	Round int
}

func (e *NodeCrashedError) Error() string {
	return fmt.Sprintf("congest: node %d crashed (message lost at round %d)", e.Node, e.Round)
}

// Unwrap makes the error match ErrNodeCrashed under errors.Is.
func (e *NodeCrashedError) Unwrap() error { return ErrNodeCrashed }

// MessageLostError is the typed form of ErrMessageLost: the first
// message of the failed request that a lossy link dropped.
type MessageLostError struct {
	// From, To identify the directed link that lost the message.
	From, To graph.NodeID
	// Round is the simulated round of the loss.
	Round int
}

func (e *MessageLostError) Error() string {
	return fmt.Sprintf("congest: message %d->%d lost on lossy link at round %d", e.From, e.To, e.Round)
}

// Unwrap makes the error match ErrMessageLost under errors.Is.
func (e *MessageLostError) Unwrap() error { return ErrMessageLost }

// FaultStats aggregates the injected-fault footprint of one or more runs.
// The zero value means no fault fired.
type FaultStats struct {
	// Dropped counts messages lost to down receivers (WithCrash nodes,
	// plan crashes and churn windows).
	Dropped int64
	// LinkDropped counts messages lost to lossy-link sampling.
	LinkDropped int64
	// Delayed counts delivery opportunities deferred by link delays (one
	// per edge per skipped round).
	Delayed int64
	// Crashed is the number of nodes that were down at some point during
	// the run. Like MaxQueue it is a high-water mark, not a sum: Add keeps
	// the maximum across phases.
	Crashed int
}

// add accumulates other into f; see Result.Add for the summing contract.
func (f *FaultStats) add(other FaultStats) {
	f.Dropped += other.Dropped
	f.LinkDropped += other.LinkDropped
	f.Delayed += other.Delayed
	if other.Crashed > f.Crashed {
		f.Crashed = other.Crashed
	}
}

// lossInfo records the first injected-fault message loss since the
// network was (re)seeded. The protocol layer turns it into the typed
// fault error for the whole request, so it persists across the several
// engine runs a request performs and is cleared by Reseed.
type lossInfo struct {
	valid bool
	link  bool // lossy-link drop (vs down-receiver drop)
	round int32
	edge  int32 // global directed-edge index, for the sharded merge order
	from  graph.NodeID
	to    graph.NodeID
}

// LossError returns a typed error describing the first message lost to
// an injected fault since the last Reseed (nil if none): a
// *NodeCrashedError for a message dropped at a down receiver, a
// *MessageLostError for a lossy-link drop. Protocol drivers call it to
// convert a stalled or incomplete run into a typed, retryable failure.
func (n *Network) LossError() error {
	if !n.loss.valid {
		return nil
	}
	if n.loss.link {
		return &MessageLostError{From: n.loss.from, To: n.loss.to, Round: int(n.loss.round)}
	}
	return &NodeCrashedError{Node: n.loss.to, Round: int(n.loss.round)}
}

// noteLoss records a dropped message if it is the request's first loss.
// Sequential-engine path; the sharded engine records per shard and
// merges at the round barrier (mergeLoss).
func (n *Network) noteLoss(e int32, m *Message, link bool) {
	if n.loss.valid {
		return
	}
	n.loss = lossInfo{valid: true, link: link, round: int32(n.round), edge: e, from: m.From, to: m.To}
}

// noteLoss is the shard-local twin of Network.noteLoss.
func (sh *shard) noteLoss(e int32, m *Message, link bool) {
	if sh.loss.valid {
		return
	}
	sh.loss = lossInfo{valid: true, link: link, round: int32(sh.net.round), edge: e, from: m.From, to: m.To}
}

// mergeLoss folds the per-shard first losses of a sharded run into the
// network's request-level record, picking the minimum (round, edge) —
// exactly the loss the sequential engine would have recorded first,
// since its drain visits edges in ascending index order within a round.
func (n *Network) mergeLoss() {
	if n.loss.valid {
		return // an earlier run of this request already lost a message
	}
	for _, sh := range n.sh {
		l := sh.loss
		if !l.valid {
			continue
		}
		if !n.loss.valid || l.round < n.loss.round ||
			(l.round == n.loss.round && l.edge < n.loss.edge) {
			n.loss = l
		}
	}
}

// faultState is a fault.Plan compiled against one network: per-node down
// schedules and per-edge drop thresholds / delays, plus the per-run
// decision state (drop ordinals, delay release rounds). All slices are
// indexed by global node/edge index; nil slices mean "no fault of that
// kind", so the fault-free hot path pays one nil check.
type faultState struct {
	plan *fault.Plan
	key  uint64 // plan decision key (fault.Key(plan.Seed))

	downFrom []int32       // per node: plan crash round (-1 = never)
	winOff   []int32       // per node: offsets into wins (len n+1)
	wins     []fault.Churn // churn windows grouped by node

	drop    []uint64 // per edge: drop threshold for fault.Roll draws
	seq     []uint64 // per edge: drop-decision ordinal (run state)
	delay   []int32  // per edge: fixed delay in rounds
	release []int32  // per edge: earliest delivery round (run state)
}

// resetRun clears the per-run decision state; compiled schedules stay.
func (f *faultState) resetRun() {
	if f.seq != nil {
		clear(f.seq)
	}
	if f.release != nil {
		clear(f.release)
	}
}

// down reports whether the plan has v down at the given round.
func (f *faultState) down(v graph.NodeID, round int) bool {
	if f.downFrom != nil && f.downFrom[v] >= 0 && int32(round) >= f.downFrom[v] {
		return true
	}
	if f.winOff != nil {
		for _, w := range f.wins[f.winOff[v]:f.winOff[v+1]] {
			if round >= w.From && round < w.To {
				return true
			}
		}
	}
	return false
}

// downEver reports whether the plan had v down at any round in [0, round].
func (f *faultState) downEver(v graph.NodeID, round int) bool {
	if f.downFrom != nil && f.downFrom[v] >= 0 && f.downFrom[v] <= int32(round) {
		return true
	}
	if f.winOff != nil {
		for _, w := range f.wins[f.winOff[v]:f.winOff[v+1]] {
			if w.From <= round {
				return true
			}
		}
	}
	return false
}

// downCount counts the nodes that were down at some point during the
// ended run — the Crashed high-water mark reported in Result.Faults.
func (n *Network) downCount() int {
	c := 0
	for v := range n.crashAt {
		down := n.crashAt[v] >= 0 && n.crashAt[v] <= n.round
		if !down && n.flt != nil {
			down = n.flt.downEver(graph.NodeID(v), n.round)
		}
		if down {
			c++
		}
	}
	return c
}

// SetFaultPlan installs (or, with nil, clears) a deterministic fault
// plan: scripted crashes and churn windows, lossy links and link delays,
// all charged into Result.Faults (see internal/fault for the plan model
// and the determinism argument). The plan is validated against the
// topology — out-of-range nodes, malformed windows or link entries that
// are not edges fail with an error wrapping ErrBadFault (and
// fault.ErrBadPlan where the plan itself is malformed). Not safe to call
// concurrently with Run.
func (n *Network) SetFaultPlan(p *fault.Plan) error {
	if p == nil {
		n.flt = nil
		return nil
	}
	if err := p.Validate(n.g.N()); err != nil {
		return fmt.Errorf("%w: %w", ErrBadFault, err)
	}
	f := &faultState{plan: p, key: fault.Key(p.Seed)}
	nn := n.g.N()
	if len(p.Crashes) > 0 {
		f.downFrom = make([]int32, nn)
		for v := range f.downFrom {
			f.downFrom[v] = -1
		}
		for _, c := range p.Crashes {
			if r := int32(c.Round); f.downFrom[c.Node] < 0 || r < f.downFrom[c.Node] {
				f.downFrom[c.Node] = r
			}
		}
	}
	if len(p.Churn) > 0 {
		f.winOff = make([]int32, nn+1)
		for _, w := range p.Churn {
			f.winOff[w.Node+1]++
		}
		for v := 0; v < nn; v++ {
			f.winOff[v+1] += f.winOff[v]
		}
		f.wins = make([]fault.Churn, len(p.Churn))
		fill := make([]int32, nn)
		for _, w := range p.Churn {
			f.wins[f.winOff[w.Node]+fill[w.Node]] = w
			fill[w.Node]++
		}
	}
	total := len(n.queues)
	if p.DropProb > 0 || len(p.LinkDrops) > 0 {
		f.drop = make([]uint64, total)
		if th := fault.Threshold(p.DropProb); th > 0 {
			for e := range f.drop {
				f.drop[e] = th
			}
		}
		for _, l := range p.LinkDrops {
			edges, err := n.linkEdges(l.From, l.To)
			if err != nil {
				return err
			}
			th := fault.Threshold(l.Prob)
			for _, e := range edges {
				f.drop[e] = th
			}
		}
		f.seq = make([]uint64, total)
	}
	if len(p.LinkDelays) > 0 {
		f.delay = make([]int32, total)
		for _, l := range p.LinkDelays {
			edges, err := n.linkEdges(l.From, l.To)
			if err != nil {
				return err
			}
			for _, e := range edges {
				if int32(l.Rounds) > f.delay[e] {
					f.delay[e] = int32(l.Rounds)
				}
			}
		}
		f.release = make([]int32, total)
	}
	n.flt = f
	return nil
}

// FaultPlan returns the installed fault plan (nil if none).
func (n *Network) FaultPlan() *fault.Plan {
	if n.flt == nil {
		return nil
	}
	return n.flt.plan
}

// linkEdges resolves the directed link from→to to its directed edge
// indices (several with parallel edges), or fails with ErrBadFault when
// the pair is not an edge of the graph.
func (n *Network) linkEdges(from, to graph.NodeID) ([]int32, error) {
	lo, hi := n.off[from], n.off[from+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if n.nbrTo[mid] < int32(to) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == n.off[from+1] || n.nbrTo[lo] != int32(to) {
		return nil, fmt.Errorf("%w: fault plan references %d->%d, which is not an edge", ErrBadFault, from, to)
	}
	var out []int32
	for j := lo; j < n.off[from+1] && n.nbrTo[j] == int32(to); j++ {
		out = append(out, n.nbrEdge[j])
	}
	return out, nil
}

// WithFaultPlan installs a fault plan at construction; see SetFaultPlan.
// An invalid plan is recorded on the network and returned by Run, like
// an invalid WithCrash.
func WithFaultPlan(p *fault.Plan) Option {
	return func(n *Network) {
		if err := n.SetFaultPlan(p); err != nil && n.optErr == nil {
			n.optErr = err
		}
	}
}
