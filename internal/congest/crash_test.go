package congest

import (
	"errors"
	"testing"

	"distwalk/internal/graph"
)

func TestCrashDropsMessages(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 crashes at round 3: of the 5 serialized messages, rounds 1-2
	// deliver and rounds 3-5 drop.
	net := NewNetwork(g, 1, WithCrash(1, 3))
	p := &burst{from: 0, to: 1, k: 5}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.got != 2 {
		t.Fatalf("delivered %d, want 2", p.got)
	}
	if res.Faults.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", res.Faults.Dropped)
	}
	if res.Faults.Crashed != 1 {
		t.Fatalf("crashed census %d, want 1", res.Faults.Crashed)
	}
	var nce *NodeCrashedError
	if err := net.LossError(); !errors.As(err, &nce) || nce.Node != 1 {
		t.Fatalf("LossError = %v, want NodeCrashedError for node 1", err)
	}
}

func TestCrashedNodeDoesNotStep(t *testing.T) {
	g, err := graph.Path(2)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1, WithCrash(0, 2))
	p := &selfTicker{quota: 100}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// SetActive in Init; steps at rounds 1 only (crashed from round 2),
	// and the run must still reach quiescence.
	if p.steps != 1 {
		t.Fatalf("crashed node stepped %d times, want 1", p.steps)
	}
	if res.Rounds > 3 {
		t.Fatalf("run did not quiesce promptly after crash: %d rounds", res.Rounds)
	}
}

func TestCrashAtRoundZeroSilencesNode(t *testing.T) {
	g, err := graph.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	// Relay 0→1→2 with node 1 dead from the start: nothing reaches 2.
	net := NewNetwork(g, 1, WithCrash(1, 0))
	p := &relayBurst{k: 4}
	res, err := net.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.got != 0 {
		t.Fatalf("delivered %d through a dead relay", p.got)
	}
	if res.Faults.Dropped != 4 {
		t.Fatalf("dropped %d, want 4", res.Faults.Dropped)
	}
}

// TestCrashInvalidArgsRejected pins the typed-error discipline for fault
// configuration: an out-of-range WithCrash is recorded on the network
// and fails every Run with ErrBadFault instead of being silently
// ignored (it used to be — a plan that never fires is worse than one
// that fails loudly).
func TestCrashInvalidArgsRejected(t *testing.T) {
	g, _ := graph.Path(2)
	for name, opt := range map[string]Option{
		"negative node":  WithCrash(-1, 5),
		"node too large": WithCrash(99, 5),
		"negative round": WithCrash(0, -1),
	} {
		t.Run(name, func(t *testing.T) {
			net := NewNetwork(g, 1, opt)
			_, err := net.Run(&burst{from: 0, to: 1, k: 1})
			if !errors.Is(err, ErrBadFault) {
				t.Fatalf("Run = %v, want ErrBadFault", err)
			}
		})
	}
	// A valid spec alongside an invalid one still fails: the first
	// configuration error wins and is sticky.
	net := NewNetwork(g, 1, WithCrash(1, 3), WithCrash(99, 5))
	if _, err := net.Run(&burst{from: 0, to: 1, k: 1}); !errors.Is(err, ErrBadFault) {
		t.Fatalf("Run = %v, want ErrBadFault", err)
	}
}

func TestBFSTreeDetectsCrashedNode(t *testing.T) {
	// A BFS build over a network with a dead node must fail loudly (the
	// node is unreachable), not hang or return a partial tree.
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(g, 1, WithCrash(5, 0))
	if _, _, err := BuildBFSTree(net, 0); err == nil {
		t.Fatal("BFS over a crashed node reported success")
	}
}
