package congest

import "math/bits"

// sched is a hierarchical bitset scheduler over a fixed universe [0, n).
// It replaces the old engine's append-then-sort.Slice scheduling: add is
// O(1) amortized and drain visits members in ascending index order — the
// deterministic ID-order execution the CONGEST simulation requires — by
// construction, with no comparator and no allocation.
//
// level[0] holds one bit per element; level[k][w] summarizes whether word
// w of level[k-1] is non-zero, so drain skips empty regions in O(1) per
// 64-element block and a drain of m members over a universe of n costs
// O(m + log n), independent of how sparse the active set is. The top level
// is always a single word.
type sched struct {
	level [][]uint64
	count int
}

func newSched(n int) *sched {
	s := &sched{}
	for {
		words := (n + 63) / 64
		if words < 1 {
			words = 1
		}
		s.level = append(s.level, make([]uint64, words))
		if words == 1 {
			return s
		}
		n = words
	}
}

// add inserts i, reporting whether it was newly added.
func (s *sched) add(i int32) bool {
	idx := int(i)
	w := idx >> 6
	mask := uint64(1) << uint(idx&63)
	if s.level[0][w]&mask != 0 {
		return false
	}
	s.level[0][w] |= mask
	s.count++
	for lv := 1; lv < len(s.level); lv++ {
		idx = w
		w = idx >> 6
		mask = uint64(1) << uint(idx&63)
		if s.level[lv][w]&mask != 0 {
			break
		}
		s.level[lv][w] |= mask
	}
	return true
}

// drain visits every member in ascending order, removing it first. The
// visit callback may re-add the member currently being visited (the
// engine's "leftover queue" case): its scheduler word has already been
// consumed this drain, so the re-add lands in the next drain, never twice
// in this one.
func (s *sched) drain(visit func(int32)) {
	if s.count == 0 {
		return
	}
	s.count = 0
	top := len(s.level) - 1
	if s.level[top][0] != 0 {
		s.drainWord(top, 0, visit)
	}
}

func (s *sched) drainWord(lv, wi int, visit func(int32)) {
	w := s.level[lv][wi]
	s.level[lv][wi] = 0
	base := wi << 6
	for w != 0 {
		idx := base + bits.TrailingZeros64(w)
		w &= w - 1
		if lv == 0 {
			visit(int32(idx))
		} else {
			s.drainWord(lv-1, idx, visit)
		}
	}
}
