package pathverify

import (
	"testing"
	"testing/quick"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

func TestIvSetInsertMerging(t *testing.T) {
	var s ivSet
	if _, changed := s.insert(iv{3, 5}); !changed {
		t.Fatal("fresh insert reported no change")
	}
	// Contained: no change.
	if _, changed := s.insert(iv{4, 4}); changed {
		t.Fatal("contained insert reported change")
	}
	// Sharing position 5: merge.
	m, changed := s.insert(iv{5, 9})
	if !changed || m != (iv{3, 9}) {
		t.Fatalf("merge gave %v changed=%v", m, changed)
	}
	// Adjacent but not sharing a position: stays separate.
	m, changed = s.insert(iv{1, 2})
	if !changed || m != (iv{1, 2}) {
		t.Fatalf("adjacent insert gave %v", m)
	}
	if len(s.list) != 2 {
		t.Fatalf("set has %d intervals, want 2", len(s.list))
	}
	// Bridge: [2,3] shares 2 with [1,2] and 3 with [3,9].
	m, changed = s.insert(iv{2, 3})
	if !changed || m != (iv{1, 9}) {
		t.Fatalf("bridge merge gave %v", m)
	}
	if len(s.list) != 1 {
		t.Fatalf("set has %d intervals after bridge, want 1", len(s.list))
	}
	if !s.has(iv{1, 9}) || s.has(iv{0, 9}) {
		t.Fatal("has() answers wrong")
	}
}

func TestIvSetInvalidInterval(t *testing.T) {
	var s ivSet
	if _, changed := s.insert(iv{5, 3}); changed {
		t.Fatal("inverted interval accepted")
	}
}

func TestQuickIvSetStaysDisjointSorted(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		r := rng.New(seed)
		var s ivSet
		for op := 0; op < int(opsRaw%40)+5; op++ {
			lo := int32(r.Intn(50))
			s.insert(iv{lo, lo + int32(r.Intn(8))})
			for i := 0; i < len(s.list); i++ {
				if s.list[i].lo > s.list[i].hi {
					return false
				}
				// Strictly separated: no shared or adjacent-shared position.
				if i > 0 && s.list[i-1].hi >= s.list[i].lo {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func pathOrder(n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i + 1)
	}
	return order
}

func TestVerifyOnPlainPath(t *testing.T) {
	const n = 24
	g, err := graph.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	net := congest.NewNetwork(g, 1)
	res, err := Verify(net, pathOrder(n), n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("valid path not verified")
	}
	// On a bare path information can only flow along P: Θ(ℓ) rounds.
	if res.Rounds < n/2-1 || res.Rounds > 3*n {
		t.Fatalf("path verification took %d rounds, want Θ(%d)", res.Rounds, n)
	}
}

func TestVerifyInputValidation(t *testing.T) {
	g, _ := graph.Path(4)
	net := congest.NewNetwork(g, 1)
	if _, err := Verify(net, []int32{1, 2}, 4); err == nil {
		t.Fatal("wrong order length accepted")
	}
	if _, err := Verify(net, []int32{1, 2, 2, 3}, 3); err == nil {
		t.Fatal("duplicate order accepted")
	}
	if _, err := Verify(net, []int32{1, 2, 0, 4}, 4); err == nil {
		t.Fatal("missing position accepted")
	}
	if _, err := Verify(net, []int32{1, 2, 3, 9}, 4); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	if _, err := Verify(net, pathOrder(4), 0); err == nil {
		t.Fatal("ell=0 accepted")
	}
}

func TestVerifyRejectsNonPathSequence(t *testing.T) {
	// Assign orders 1..4 to nodes that do NOT form a path: on a star, the
	// leaves are never adjacent, so the sequence cannot be verified and
	// the protocol must reach quiescence unverified.
	g, err := graph.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	order := []int32{0, 1, 2, 3, 4} // the four leaves in sequence
	net := congest.NewNetwork(g, 1)
	res, err := Verify(net, order, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("non-path sequence verified")
	}
}

func TestVerifyOnGnVerifies(t *testing.T) {
	lb, err := graph.NewLowerBound(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	order, err := GnOrder(lb, lb.PathLen)
	if err != nil {
		t.Fatal(err)
	}
	net := congest.NewNetwork(lb.G, 3)
	res, err := Verify(net, order, lb.PathLen)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("G_n path not verified")
	}
	// The lower bound: more than k = √(ℓ/log ℓ) rounds.
	if res.Rounds <= lb.K {
		t.Fatalf("verification in %d rounds beats the Ω(k)=%d lower bound?!", res.Rounds, lb.K)
	}
	// The tree must help: far fewer rounds than the bare-path Θ(ℓ).
	if res.Rounds >= lb.PathLen/2 {
		t.Fatalf("verification took %d rounds on ℓ=%d: tree gave no speedup", res.Rounds, lb.PathLen)
	}
}

func TestVerifyOnGnSqrtShape(t *testing.T) {
	// Doubling ℓ should scale rounds by ~√2..2^(3/4), far below the 2x of
	// a path. Compare ℓ and 4ℓ: expect a factor well below 4 on G_n.
	rounds := func(n int) (int, int) {
		lb, err := graph.NewLowerBound(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		order, err := GnOrder(lb, lb.PathLen)
		if err != nil {
			t.Fatal(err)
		}
		net := congest.NewNetwork(lb.G, 5)
		res, err := Verify(net, order, lb.PathLen)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatal("not verified")
		}
		return res.Rounds, lb.PathLen
	}
	r1, l1 := rounds(512)
	r4, l4 := rounds(2048)
	growth := float64(r4) / float64(r1)
	lenGrowth := float64(l4) / float64(l1)
	if growth >= 0.85*lenGrowth {
		t.Fatalf("rounds grew %.2fx for a %.2fx longer path — no sublinear shape", growth, lenGrowth)
	}
}

func TestForcedWalkFollowsPath(t *testing.T) {
	lb, err := graph.NewLowerBound(300, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	followed := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		res, err := ForcedWalk(lb, lb.PathLen-1, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.FollowedPath {
			followed++
			if res.End != lb.PathNode(lb.PathLen) {
				t.Fatalf("followed path but ended at %d", res.End)
			}
		}
	}
	// Theorem 3.7: deviation probability ≤ 1/n per walk.
	if followed < trials*97/100 {
		t.Fatalf("walk followed P only %d/%d times", followed, trials)
	}
}

func TestForcedWalkValidation(t *testing.T) {
	lb, err := graph.NewLowerBound(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ForcedWalk(lb, -1, rng.New(1)); err == nil {
		t.Fatal("negative steps accepted")
	}
	if _, err := ForcedWalk(lb, lb.PathLen+5, rng.New(1)); err == nil {
		t.Fatal("overlong walk accepted")
	}
	res, err := ForcedWalk(lb, 0, rng.New(1))
	if err != nil || !res.FollowedPath || res.End != lb.PathNode(1) {
		t.Fatalf("zero-step walk: %+v err=%v", res, err)
	}
}

func TestVerifyDeterministic(t *testing.T) {
	lb, err := graph.NewLowerBound(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	order, err := GnOrder(lb, lb.PathLen)
	if err != nil {
		t.Fatal(err)
	}
	run := func() int {
		net := congest.NewNetwork(lb.G, 9)
		res, err := Verify(net, order, lb.PathLen)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("verification rounds diverged: %d vs %d", a, b)
	}
}

// TestVerifierReuse exercises the warm-reuse path the Verifier exists
// for: one Verifier running many instances back to back must (a) return
// bit-identical results to one-shot Verify calls — the epoch-stamped sent
// sets, rewound queues and truncated interval sets may leak nothing
// between runs — and (b) stop allocating once its slabs reach their
// high-water marks.
func TestVerifierReuse(t *testing.T) {
	lb, err := graph.NewLowerBound(512, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := congest.NewNetwork(lb.G, 11)
	vf := NewVerifier(net)
	// Alternate two different instance sizes so run N's state (queues,
	// sent entries, interval sets from a longer path) would poison run
	// N+1 if any reset were incomplete.
	ells := []int{lb.PathLen, lb.PathLen / 2, lb.PathLen, lb.PathLen / 4, lb.PathLen}
	for round, ell := range ells {
		order, err := GnOrder(lb, ell)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := vf.Verify(order, ell)
		if err != nil {
			t.Fatalf("round %d (ell=%d): %v", round, ell, err)
		}
		fresh, err := Verify(congest.NewNetwork(lb.G, 11), order, ell)
		if err != nil {
			t.Fatal(err)
		}
		if *warm != *fresh {
			t.Fatalf("round %d (ell=%d): warm verifier diverged\nwarm:  %+v\nfresh: %+v",
				round, ell, warm, fresh)
		}
		if !warm.Verified {
			t.Fatalf("round %d (ell=%d): not verified", round, ell)
		}
	}
	// Allocation discipline: after the runs above settled the slabs,
	// further runs reuse everything (the bound covers the Result, the
	// engine's per-run bookkeeping and runtime noise, not per-node state,
	// which alone would be thousands).
	order, err := GnOrder(lb, lb.PathLen)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := vf.Verify(order, lb.PathLen); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 100 {
		t.Fatalf("warm Verify allocated %.0f times; Verifier slabs are not being reused", allocs)
	}
}

// TestVerifyShardIdentity pins that PATH-VERIFICATION runs bit-identically
// on the sharded engine — including the Verifier field, whose "first node
// in step order wins" tie-break is reproduced across concurrent shard
// steps by the CAS-min claim.
func TestVerifyShardIdentity(t *testing.T) {
	lb, err := graph.NewLowerBound(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	order, err := GnOrder(lb, lb.PathLen)
	if err != nil {
		t.Fatal(err)
	}
	seqNet := congest.NewNetwork(lb.G, 3)
	seq, err := NewVerifier(seqNet).Verify(order, lb.PathLen)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		net := congest.NewNetwork(lb.G, 3, congest.WithShards(shards))
		vf := NewVerifier(net)
		// Two back-to-back runs: slab reuse must stay shard-clean too.
		for run := 0; run < 2; run++ {
			net.Reseed(3)
			got, err := vf.Verify(order, lb.PathLen)
			if err != nil {
				t.Fatalf("shards=%d run %d: %v", shards, run, err)
			}
			if got.Verified != seq.Verified || got.Verifier != seq.Verifier ||
				got.Rounds != seq.Rounds || got.Cost != seq.Cost {
				t.Fatalf("shards=%d run %d: %+v != sequential %+v", shards, run, got, seq)
			}
		}
	}
}
