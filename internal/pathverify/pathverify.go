// Package pathverify implements the PATH-VERIFICATION problem of
// Section 3 (Definition 3.1) and the experiments around the paper's
// Ω(√(ℓ/log ℓ) + D) lower bound for distributed random walks:
//
//   - a natural distributed verification protocol in the paper's
//     token-forwarding class — nodes store, merge and selectively forward
//     verified segments [i, j], one O(log n)-bit interval per edge per
//     round — measured on the hard instance G_n (Definition 3.3), where
//     the measured round count exhibits the √ℓ shape of Theorem 3.2
//     despite the O(log n) diameter;
//   - the forced-walk experiment of Theorem 3.7: on the exponentially
//     weighted variant G'_n a random walk follows the path P with
//     probability ≥ 1 − 1/n, so a walk is as hard to certify as a path.
package pathverify

import (
	"fmt"
	"sync/atomic"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// ivMsg is one verified segment in flight; senderOrder is the sender's
// path position (0 for non-path nodes), which the receiver needs for the
// edge-witness extension rule. Everything is O(log n) bits.
type ivMsg struct {
	lo, hi      int32
	senderOrder int32
}

const kindIvMsg uint16 = 1

func (ivMsg) Words() int   { return 3 }
func (ivMsg) Kind() uint16 { return kindIvMsg }
func (m ivMsg) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{congest.Pack2(m.lo, m.hi), uint64(uint32(m.senderOrder))}
}
func (ivMsg) Decode(w [congest.PayloadWords]uint64) ivMsg {
	lo, hi := congest.Unpack2(w[0])
	return ivMsg{lo: lo, hi: hi, senderOrder: int32(uint32(w[1]))}
}

// Result reports a PATH-VERIFICATION run.
type Result struct {
	// Verified reports whether some node verified the whole path [1, ℓ].
	Verified bool
	// Verifier is the first node to verify it (undefined if !Verified).
	Verifier graph.NodeID
	// Rounds is the number of rounds until verification (or quiescence).
	Rounds int
	// Cost is the full simulated cost.
	Cost congest.Result
}

// sentKey identifies one deduplicated transmission: interval [lo, hi] to
// neighbor nbr (parallel edges to the same neighbor share the entry, as
// they should — resending a known interval on a second cable adds no
// information).
type sentKey struct {
	nbr    graph.NodeID
	lo, hi int32
}

// sentSet is an open-addressed, epoch-stamped set of sentKeys: a slot is
// live only when its stamp matches the verifier's current run epoch, so
// starting a new run clears every node's set for free. Slabs grow to the
// node's high-water mark and are never freed.
type sentSet struct {
	stamp []uint32
	keys  []sentKey
	live  int32 // entries added this epoch
}

func sentHash(k sentKey) uint64 {
	return rng.Mix64(uint64(uint32(k.lo))|uint64(uint32(k.hi))<<32) ^ rng.Mix64(uint64(uint32(k.nbr)))
}

// add inserts k for the given epoch, reporting whether it was absent.
func (s *sentSet) add(epoch uint32, k sentKey) bool {
	if len(s.keys) == 0 || 4*(int(s.live)+1) > 3*len(s.keys) {
		n := 2 * len(s.keys)
		if n < 8 {
			n = 8
		}
		stamp := make([]uint32, n)
		keys := make([]sentKey, n)
		for i, st := range s.stamp {
			if st != epoch {
				continue
			}
			j := sentHash(s.keys[i]) & uint64(n-1)
			for stamp[j] == epoch {
				j = (j + 1) & uint64(n-1)
			}
			stamp[j], keys[j] = epoch, s.keys[i]
		}
		s.stamp, s.keys = stamp, keys
	}
	i := sentHash(k) & uint64(len(s.keys)-1)
	for s.stamp[i] == epoch {
		if s.keys[i] == k {
			return false
		}
		i = (i + 1) & uint64(len(s.keys)-1)
	}
	s.stamp[i] = epoch
	s.keys[i] = k
	s.live++
	return true
}

// ivQueue is one neighbor's pending-interval outbox: entries pop by
// advancing head (never by reslicing items forward, which would abandon
// the consumed prefix's capacity), and a drained queue rewinds to its
// full backing array — so repeated runs really do stop allocating once
// the high-water mark is reached.
type ivQueue struct {
	items []iv
	head  int32
}

func (q *ivQueue) empty() bool { return int(q.head) >= len(q.items) }

// push appends; pop and reset rewind the queue whenever it drains, so an
// empty queue always sits at head 0 with its full capacity ahead.
func (q *ivQueue) push(x iv) {
	q.items = append(q.items, x)
}

func (q *ivQueue) pop() iv {
	x := q.items[q.head]
	q.head++
	if q.empty() {
		q.items = q.items[:0]
		q.head = 0
	}
	return x
}

func (q *ivQueue) reset() {
	q.items = q.items[:0]
	q.head = 0
}

// Verifier runs PATH-VERIFICATION instances over one network, owning all
// per-node working state as flat, reusable slabs: interval sets, pending
// outboxes laid out per directed half-edge (off[v]+i addresses node v's
// i-th neighbor queue), and the per-(neighbor, interval) send dedup as
// epoch-stamped open-addressed sets. Repeated Verify calls — the shape of
// the lower-bound experiments, which sweep ℓ on one instance — reuse
// everything and allocate only on high-water growth.
//
// A Verifier is not safe for concurrent use (it shares the network, which
// is single-threaded anyway).
type Verifier struct {
	net   *congest.Network
	off   []int32 // half-edge offsets: node v's queues are [off[v], off[v+1])
	sets  []ivSet
	out   []ivQueue
	sent  []sentSet
	seen  []bool // order-validation scratch, sized to the largest ℓ seen
	epoch uint32
}

// NewVerifier builds a Verifier over net.
func NewVerifier(net *congest.Network) *Verifier {
	g := net.Graph()
	n := g.N()
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(graph.NodeID(v)))
	}
	return &Verifier{
		net:  net,
		off:  off,
		sets: make([]ivSet, n),
		out:  make([]ivQueue, off[n]),
		sent: make([]sentSet, n),
	}
}

// proto is the verification protocol. Every node keeps a set of maximal
// verified intervals and an outbox per neighbor; each round it sends at
// most one interval per edge (the CONGEST budget). New information is
// produced by two sound rules:
//
//	merge:  intervals sharing a position combine (the class's rule);
//	extend: node v_{b+1} receiving [a, b] directly from v_b has witnessed
//	        the path edge (v_b, v_{b+1}) and verifies [a, b+1]
//	        (symmetrically at the front) — this is how Figure 1(b)'s
//	        node b turns "1" from a into [1, 2].
type proto struct {
	vf     *Verifier
	order  []int32 // 1-based path position per node, 0 if none
	target iv

	// verifier is the ID of the first node to verify the whole target, or
	// -1. Within the final round several nodes can verify; the sequential
	// engine records the first in step order, i.e. the smallest node ID,
	// which the atomic CAS-min reproduces exactly when steps run
	// concurrently on network shards (rounds never race: the run halts at
	// the end of the first verifying round).
	verifier atomic.Int64
}

func (p *proto) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	if o := p.order[v]; o > 0 {
		p.learn(ctx, iv{lo: o, hi: o})
	}
	p.flush(ctx)
}

func (p *proto) Step(ctx *congest.Ctx) {
	v := ctx.Node()
	myOrder := p.order[v]
	for _, m := range ctx.Inbox() {
		if m.Kind != kindIvMsg {
			continue
		}
		msg := congest.As[ivMsg](m)
		got := iv{lo: msg.lo, hi: msg.hi}
		// Edge-witness extension: the message came over a real edge from
		// the segment's endpoint, and this node is the next/previous path
		// position.
		if myOrder > 0 && msg.senderOrder > 0 {
			if msg.senderOrder == msg.hi && myOrder == msg.hi+1 {
				got.hi++
			} else if msg.senderOrder == msg.lo && myOrder == msg.lo-1 {
				got.lo--
			}
		}
		p.learn(ctx, got)
	}
	p.flush(ctx)
}

// learn inserts an interval; when it yields new information, the merged
// maximal interval is queued for every neighbor.
func (p *proto) learn(ctx *congest.Ctx, x iv) {
	v := ctx.Node()
	merged, changed := p.vf.sets[v].insert(x)
	if !changed {
		return
	}
	if merged.contains(p.target) {
		p.claim(v)
	}
	lo, hi := p.vf.off[v], p.vf.off[v+1]
	for e := lo; e < hi; e++ {
		p.vf.out[e].push(merged)
	}
}

// flush sends at most one useful interval per neighbor, skipping entries
// subsumed by later merges and deduplicating per (neighbor, interval).
func (p *proto) flush(ctx *congest.Ctx) {
	v := ctx.Node()
	hs := ctx.Neighbors()
	base := p.vf.off[v]
	pending := false
	for i, h := range hs {
		q := &p.vf.out[base+int32(i)]
		for !q.empty() {
			cand := p.vf.sets[v].maximalContaining(q.pop())
			if !p.vf.sent[v].add(p.vf.epoch, sentKey{nbr: h.To, lo: cand.lo, hi: cand.hi}) {
				continue
			}
			congest.Send(ctx, h.To, ivMsg{lo: cand.lo, hi: cand.hi, senderOrder: p.order[v]})
			break
		}
		if !q.empty() {
			pending = true
		}
	}
	ctx.SetActive(pending)
}

// claim records v as the verifier unless a smaller node ID already did.
func (p *proto) claim(v graph.NodeID) {
	for {
		old := p.verifier.Load()
		if old >= 0 && old <= int64(v) {
			return
		}
		if p.verifier.CompareAndSwap(old, int64(v)) {
			return
		}
	}
}

func (p *proto) Halted() bool { return p.verifier.Load() >= 0 }

// Verify runs the protocol. order[v] gives node v's 1-based path position
// (0 for nodes that are not part of the sequence); ell is the path length
// to verify. It returns the measured rounds and whether some node verified
// [1, ell]; with a valid path assignment verification always succeeds,
// while an invalid sequence reaches quiescence unverified.
func (vf *Verifier) Verify(order []int32, ell int) (*Result, error) {
	n := vf.net.Graph().N()
	if len(order) != n {
		return nil, fmt.Errorf("pathverify: order has %d entries, want %d", len(order), n)
	}
	if ell < 1 {
		return nil, fmt.Errorf("pathverify: ell must be >= 1, got %d", ell)
	}
	if len(vf.seen) < ell+1 {
		vf.seen = make([]bool, ell+1)
	}
	seen := vf.seen[:ell+1]
	clear(seen)
	assigned := 0
	for _, o := range order {
		if o < 0 || int(o) > ell {
			return nil, fmt.Errorf("pathverify: order %d out of range [0,%d]", o, ell)
		}
		if o > 0 {
			if seen[o] {
				return nil, fmt.Errorf("pathverify: duplicate order %d", o)
			}
			seen[o] = true
			assigned++
		}
	}
	if assigned != ell {
		return nil, fmt.Errorf("pathverify: %d of %d positions assigned", assigned, ell)
	}

	// Reset the run state: truncate slabs, bump the dedup epoch. O(n + m)
	// pointer-free writes, no allocation.
	for v := 0; v < n; v++ {
		vf.sets[v].list = vf.sets[v].list[:0]
		vf.sent[v].live = 0
	}
	for e := range vf.out {
		vf.out[e].reset()
	}
	vf.epoch++
	if vf.epoch == 0 { // wrapped: sweep stale stamps so they cannot collide
		for v := range vf.sent {
			clear(vf.sent[v].stamp)
		}
		vf.epoch = 1
	}

	p := &proto{
		vf:     vf,
		order:  order,
		target: iv{lo: 1, hi: int32(ell)},
	}
	p.verifier.Store(-1)
	cost, err := vf.net.Run(p)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Rounds: cost.Rounds,
		Cost:   cost,
	}
	if who := p.verifier.Load(); who >= 0 {
		out.Verified = true
		out.Verifier = graph.NodeID(who)
	}
	return out, nil
}

// Verify runs one PATH-VERIFICATION instance on net (a one-shot
// NewVerifier(net).Verify; loops over many instances should hold a
// Verifier and reuse its slabs).
func Verify(net *congest.Network, order []int32, ell int) (*Result, error) {
	return NewVerifier(net).Verify(order, ell)
}

// GnOrder builds the order assignment for verifying the first ell path
// positions of a lower-bound graph.
func GnOrder(lb *graph.LowerBound, ell int) ([]int32, error) {
	if ell < 1 || ell > lb.PathLen {
		return nil, fmt.Errorf("pathverify: ell %d out of [1,%d]", ell, lb.PathLen)
	}
	order := make([]int32, lb.G.N())
	for i := 1; i <= ell; i++ {
		order[lb.PathNode(i)] = int32(i)
	}
	return order, nil
}
