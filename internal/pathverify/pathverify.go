// Package pathverify implements the PATH-VERIFICATION problem of
// Section 3 (Definition 3.1) and the experiments around the paper's
// Ω(√(ℓ/log ℓ) + D) lower bound for distributed random walks:
//
//   - a natural distributed verification protocol in the paper's
//     token-forwarding class — nodes store, merge and selectively forward
//     verified segments [i, j], one O(log n)-bit interval per edge per
//     round — measured on the hard instance G_n (Definition 3.3), where
//     the measured round count exhibits the √ℓ shape of Theorem 3.2
//     despite the O(log n) diameter;
//   - the forced-walk experiment of Theorem 3.7: on the exponentially
//     weighted variant G'_n a random walk follows the path P with
//     probability ≥ 1 − 1/n, so a walk is as hard to certify as a path.
package pathverify

import (
	"fmt"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// ivMsg is one verified segment in flight; senderOrder is the sender's
// path position (0 for non-path nodes), which the receiver needs for the
// edge-witness extension rule. Everything is O(log n) bits.
type ivMsg struct {
	lo, hi      int32
	senderOrder int32
}

const kindIvMsg uint16 = 1

func (ivMsg) Words() int   { return 3 }
func (ivMsg) Kind() uint16 { return kindIvMsg }
func (m ivMsg) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{congest.Pack2(m.lo, m.hi), uint64(uint32(m.senderOrder))}
}
func (ivMsg) Decode(w [congest.PayloadWords]uint64) ivMsg {
	lo, hi := congest.Unpack2(w[0])
	return ivMsg{lo: lo, hi: hi, senderOrder: int32(uint32(w[1]))}
}

// Result reports a PATH-VERIFICATION run.
type Result struct {
	// Verified reports whether some node verified the whole path [1, ℓ].
	Verified bool
	// Verifier is the first node to verify it (undefined if !Verified).
	Verifier graph.NodeID
	// Rounds is the number of rounds until verification (or quiescence).
	Rounds int
	// Cost is the full simulated cost.
	Cost congest.Result
}

// proto is the verification protocol. Every node keeps a set of maximal
// verified intervals and an outbox per neighbor; each round it sends at
// most one interval per edge (the CONGEST budget). New information is
// produced by two sound rules:
//
//	merge:  intervals sharing a position combine (the class's rule);
//	extend: node v_{b+1} receiving [a, b] directly from v_b has witnessed
//	        the path edge (v_b, v_{b+1}) and verifies [a, b+1]
//	        (symmetrically at the front) — this is how Figure 1(b)'s
//	        node b turns "1" from a into [1, 2].
type proto struct {
	order  []int32 // 1-based path position per node, 0 if none
	target iv

	sets   []ivSet
	out    [][][]iv         // per node, per neighbor index: pending queue
	sent   []map[ivKey]bool // per node: intervals already sent, keyed with neighbor
	nbrIdx []map[graph.NodeID]int

	verified bool
	verifier graph.NodeID
}

type ivKey struct {
	nbr    graph.NodeID
	lo, hi int32
}

func (p *proto) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	hs := ctx.Neighbors()
	p.out[v] = make([][]iv, len(hs))
	p.nbrIdx[v] = make(map[graph.NodeID]int, len(hs))
	for i, h := range hs {
		p.nbrIdx[v][h.To] = i
	}
	p.sent[v] = make(map[ivKey]bool)
	if o := p.order[v]; o > 0 {
		p.learn(ctx, iv{lo: o, hi: o})
	}
	p.flush(ctx)
}

func (p *proto) Step(ctx *congest.Ctx) {
	v := ctx.Node()
	myOrder := p.order[v]
	for _, m := range ctx.Inbox() {
		if m.Kind != kindIvMsg {
			continue
		}
		msg := congest.As[ivMsg](m)
		got := iv{lo: msg.lo, hi: msg.hi}
		// Edge-witness extension: the message came over a real edge from
		// the segment's endpoint, and this node is the next/previous path
		// position.
		if myOrder > 0 && msg.senderOrder > 0 {
			if msg.senderOrder == msg.hi && myOrder == msg.hi+1 {
				got.hi++
			} else if msg.senderOrder == msg.lo && myOrder == msg.lo-1 {
				got.lo--
			}
		}
		p.learn(ctx, got)
	}
	p.flush(ctx)
}

// learn inserts an interval; when it yields new information, the merged
// maximal interval is queued for every neighbor.
func (p *proto) learn(ctx *congest.Ctx, x iv) {
	v := ctx.Node()
	merged, changed := p.sets[v].insert(x)
	if !changed {
		return
	}
	if merged.contains(p.target) && !p.verified {
		p.verified = true
		p.verifier = v
	}
	for i := range p.out[v] {
		p.out[v][i] = append(p.out[v][i], merged)
	}
}

// flush sends at most one useful interval per neighbor, skipping entries
// subsumed by later merges and deduplicating per (neighbor, interval).
func (p *proto) flush(ctx *congest.Ctx) {
	v := ctx.Node()
	hs := ctx.Neighbors()
	pending := false
	for i, h := range hs {
		q := p.out[v][i]
		for len(q) > 0 {
			cand := p.sets[v].maximalContaining(q[0])
			q = q[1:]
			key := ivKey{nbr: h.To, lo: cand.lo, hi: cand.hi}
			if p.sent[v][key] {
				continue
			}
			p.sent[v][key] = true
			congest.Send(ctx, h.To, ivMsg{lo: cand.lo, hi: cand.hi, senderOrder: p.order[v]})
			break
		}
		p.out[v][i] = q
		if len(q) > 0 {
			pending = true
		}
	}
	ctx.SetActive(pending)
}

func (p *proto) Halted() bool { return p.verified }

// Verify runs the protocol on net. order[v] gives node v's 1-based path
// position (0 for nodes that are not part of the sequence); ell is the
// path length to verify. It returns the measured rounds and whether some
// node verified [1, ell]; with a valid path assignment verification always
// succeeds, while an invalid sequence reaches quiescence unverified.
func Verify(net *congest.Network, order []int32, ell int) (*Result, error) {
	n := net.Graph().N()
	if len(order) != n {
		return nil, fmt.Errorf("pathverify: order has %d entries, want %d", len(order), n)
	}
	if ell < 1 {
		return nil, fmt.Errorf("pathverify: ell must be >= 1, got %d", ell)
	}
	seen := make(map[int32]bool, ell)
	for _, o := range order {
		if o < 0 || int(o) > ell {
			return nil, fmt.Errorf("pathverify: order %d out of range [0,%d]", o, ell)
		}
		if o > 0 {
			if seen[o] {
				return nil, fmt.Errorf("pathverify: duplicate order %d", o)
			}
			seen[o] = true
		}
	}
	if len(seen) != ell {
		return nil, fmt.Errorf("pathverify: %d of %d positions assigned", len(seen), ell)
	}
	p := &proto{
		order:  order,
		target: iv{lo: 1, hi: int32(ell)},
		sets:   make([]ivSet, n),
		out:    make([][][]iv, n),
		sent:   make([]map[ivKey]bool, n),
		nbrIdx: make([]map[graph.NodeID]int, n),
	}
	cost, err := net.Run(p)
	if err != nil {
		return nil, err
	}
	return &Result{
		Verified: p.verified,
		Verifier: p.verifier,
		Rounds:   cost.Rounds,
		Cost:     cost,
	}, nil
}

// GnOrder builds the order assignment for verifying the first ell path
// positions of a lower-bound graph.
func GnOrder(lb *graph.LowerBound, ell int) ([]int32, error) {
	if ell < 1 || ell > lb.PathLen {
		return nil, fmt.Errorf("pathverify: ell %d out of [1,%d]", ell, lb.PathLen)
	}
	order := make([]int32, lb.G.N())
	for i := 1; i <= ell; i++ {
		order[lb.PathNode(i)] = int32(i)
	}
	return order, nil
}
