package pathverify

import (
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// TestGoldenVerifyCounters pins the interval protocol's simulated cost on
// the hard instance G_n so engine refactors cannot silently change it
// (captured from the original sort-and-box engine; the rewritten engine
// must reproduce it exactly). The run is repeated to check determinism.
func TestGoldenVerifyCounters(t *testing.T) {
	want := congest.Result{Rounds: 28, Messages: 31538, Words: 94614, MaxQueue: 1}
	const wantVerifier = graph.NodeID(302)

	run := func() *Result {
		lb, err := graph.NewLowerBound(256, 0)
		if err != nil {
			t.Fatal(err)
		}
		order, err := GnOrder(lb, lb.PathLen)
		if err != nil {
			t.Fatal(err)
		}
		net := congest.NewNetwork(lb.G, 42)
		res, err := Verify(net, order, lb.PathLen)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for i := 0; i < 2; i++ {
		res := run()
		if !res.Verified || res.Verifier != wantVerifier {
			t.Fatalf("run %d: verified=%v verifier=%d, want true, %d", i, res.Verified, res.Verifier, wantVerifier)
		}
		if res.Cost != want {
			t.Fatalf("run %d: golden counters changed:\n got %+v\nwant %+v", i, res.Cost, want)
		}
	}
}
