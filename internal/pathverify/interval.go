package pathverify

// iv is a closed integer interval [lo, hi] of verified path positions.
type iv struct {
	lo, hi int32
}

func (a iv) contains(b iv) bool { return a.lo <= b.lo && b.hi <= a.hi }

// ivSet is a set of maximal verified intervals, kept sorted and disjoint
// (non-overlapping and non-touching after merging). Overlapping or
// touching-at-a-shared-position intervals merge per the verification rule
// of Section 3: [i1,j1] and [i2,j2] with i1 ≤ i2 ≤ j1 ≤ j2 verify [i1,j2].
//
// Note "touching" here means sharing a position (j1 == i2), not mere
// adjacency (j1+1 == i2): verifying across adjacent intervals requires
// witnessing the path edge between them, which is the extension rule in
// proto.go, not a set operation.
type ivSet struct {
	list []iv // sorted by lo
}

// insert adds x, merging with any intervals sharing at least one position,
// and returns the resulting maximal interval plus whether the set gained
// information (false if x was already covered).
func (s *ivSet) insert(x iv) (iv, bool) {
	if x.lo > x.hi {
		return x, false
	}
	merged := x
	out := s.list[:0]
	changed := true
	for _, cur := range s.list {
		switch {
		case cur.contains(merged):
			// Already known: keep everything as is.
			return cur, false
		case cur.hi < merged.lo || cur.lo > merged.hi:
			// Disjoint and not sharing a position.
			out = append(out, cur)
		default:
			// Shares at least one position: merge.
			if cur.lo < merged.lo {
				merged.lo = cur.lo
			}
			if cur.hi > merged.hi {
				merged.hi = cur.hi
			}
		}
	}
	// Re-insert in sorted position.
	pos := len(out)
	for i, cur := range out {
		if cur.lo > merged.lo {
			pos = i
			break
		}
	}
	out = append(out, iv{})
	copy(out[pos+1:], out[pos:])
	out[pos] = merged
	s.list = out
	return merged, changed
}

// maximalContaining returns the maximal interval containing x (which must
// share a position with one), or x itself if none does.
func (s *ivSet) maximalContaining(x iv) iv {
	for _, cur := range s.list {
		if cur.lo <= x.lo && x.hi <= cur.hi {
			return cur
		}
	}
	return x
}

// has reports whether the set covers [lo, hi] with a single interval.
func (s *ivSet) has(x iv) bool {
	for _, cur := range s.list {
		if cur.contains(x) {
			return true
		}
	}
	return false
}
