package pathverify

import (
	"fmt"
	"math"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// ForcedWalkResult reports one walk on the weighted graph G'_n.
type ForcedWalkResult struct {
	// FollowedPath reports whether every step took the next path edge.
	FollowedPath bool
	// DeviatedAt is the first step index that left the path (-1 if none).
	DeviatedAt int
	// End is the node the walk finished at.
	End graph.NodeID
}

// ForcedWalk simulates `steps` steps of the random walk on G'_n
// (Theorem 3.7): G_n with edge (v_i, v_{i+1}) reweighted to (2n)^{2i}.
// Started at v_1, the walk takes the next path edge with probability
// ≥ 1 − 1/n² per step, so it traces P w.h.p. — which is what reduces
// PATH-VERIFICATION to the random-walk problem.
//
// The weights (2n)^{2i} overflow any fixed-precision representation, so
// the step distribution is evaluated in the exponent domain: at v_i the
// relative weights are (2n)^0 for the forward edge, (2n)^{-2} for the
// backward edge and (2n)^{-2i} for the leaf edge — only ratios matter and
// they are tiny, so float64 evaluation is exact to ~1e-16.
func ForcedWalk(lb *graph.LowerBound, steps int, r *rng.RNG) (*ForcedWalkResult, error) {
	if steps < 0 || steps > lb.PathLen-1 {
		return nil, fmt.Errorf("pathverify: steps %d out of [0,%d]", steps, lb.PathLen-1)
	}
	n := float64(lb.G.N())
	base := 2 * n
	res := &ForcedWalkResult{FollowedPath: true, DeviatedAt: -1}
	cur := 1 // 1-based path position
	for s := 0; s < steps; s++ {
		next, onPath := forcedStep(lb, cur, base, r)
		if !onPath {
			res.FollowedPath = false
			res.DeviatedAt = s
			res.End = next
			return res, nil
		}
		cur++
	}
	res.End = lb.PathNode(cur)
	return res, nil
}

// forcedStep samples the next node from path position cur (1-based).
// It returns the landing node and whether the step followed the path
// forward.
func forcedStep(lb *graph.LowerBound, cur int, base float64, r *rng.RNG) (graph.NodeID, bool) {
	// Edge weights at v_cur, as exponents of `base`:
	//   forward  (v_cur, v_cur+1): 2·cur        -> relative exponent 0
	//   backward (v_cur-1, v_cur): 2·(cur-1)    -> relative exponent -2
	//   leaf edge:                 weight 1     -> relative exponent -2·cur
	type cand struct {
		node graph.NodeID
		rel  float64 // weight / forward weight
	}
	var cands []cand
	hasForward := cur < lb.PathLen
	if hasForward {
		cands = append(cands, cand{node: lb.PathNode(cur + 1), rel: 1})
	}
	if cur > 1 {
		cands = append(cands, cand{node: lb.PathNode(cur - 1), rel: math.Pow(base, -2)})
	}
	// Leaf u_i with i = ((cur-1) mod k')+1 is attached to v_cur.
	leaf := lb.Leaves[(cur-1)%lb.KPrime]
	cands = append(cands, cand{node: leaf, rel: math.Pow(base, -2*float64(cur))})
	if !hasForward {
		// At the path's end the backward edge dominates instead; rescale
		// so the largest relative weight is 1 for numerical stability.
		max := 0.0
		for _, c := range cands {
			if c.rel > max {
				max = c.rel
			}
		}
		for i := range cands {
			cands[i].rel /= max
		}
	}
	total := 0.0
	for _, c := range cands {
		total += c.rel
	}
	x := r.Float64() * total
	acc := 0.0
	pick := cands[len(cands)-1].node
	for _, c := range cands {
		acc += c.rel
		if x < acc {
			pick = c.node
			break
		}
	}
	return pick, hasForward && pick == lb.PathNode(cur+1)
}
