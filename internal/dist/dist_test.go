package dist

import (
	"math"
	"testing"

	"distwalk/internal/graph"
)

func path(t *testing.T, n int) *graph.G {
	t.Helper()
	g, err := graph.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPointAndUniform(t *testing.T) {
	p, err := Point(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sum() != 1 || p[2] != 1 {
		t.Fatalf("point mass wrong: %v", p)
	}
	if _, err := Point(4, 5); err == nil {
		t.Fatal("out-of-range point accepted")
	}
	u := Uniform(5)
	if math.Abs(u.Sum()-1) > 1e-12 || u[0] != 0.2 {
		t.Fatalf("uniform wrong: %v", u)
	}
}

func TestWalkDistPath(t *testing.T) {
	g := path(t, 3)
	// One step from the middle of a 3-path: 1/2 to each endpoint.
	p, err := WalkDist(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Vec{0.5, 0, 0.5}
	if p.L1(want) > 1e-12 {
		t.Fatalf("1-step dist = %v, want %v", p, want)
	}
	// Two steps from an endpoint return or reach the other endpoint.
	p, err = WalkDist(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want = Vec{0.5, 0, 0.5}
	if p.L1(want) > 1e-12 {
		t.Fatalf("2-step dist = %v, want %v", p, want)
	}
	if _, err := WalkDist(g, 0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestWeightedStepMatchesEdgeWeights(t *testing.T) {
	g := graph.New(3)
	if err := g.AddWeightedEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	p, err := WalkDist(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Vec{0, 0.75, 0.25}
	if p.L1(want) > 1e-12 {
		t.Fatalf("weighted step = %v, want %v", p, want)
	}
}

func TestStationaryIsFixedPoint(t *testing.T) {
	g, err := graph.Candy(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := Stationary(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi.Sum()-1) > 1e-12 {
		t.Fatalf("stationary mass %v", pi.Sum())
	}
	next, err := Step(g, pi)
	if err != nil {
		t.Fatal(err)
	}
	if d := pi.L1(next); d > 1e-12 {
		t.Fatalf("stationary moved by %v", d)
	}
}

func TestMHUniformIsFixedPoint(t *testing.T) {
	g, err := graph.Star(7)
	if err != nil {
		t.Fatal(err)
	}
	u := Uniform(g.N())
	next, err := MHStep(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if d := u.L1(next); d > 1e-12 {
		t.Fatalf("uniform moved by %v under MH", d)
	}
	p, err := MHWalkDist(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Sum()-1) > 1e-9 {
		t.Fatalf("MH mass %v", p.Sum())
	}
}

func TestIsolatedNodeErrors(t *testing.T) {
	g := graph.New(2) // no edges
	if _, err := WalkDist(g, 0, 1); err == nil {
		t.Fatal("walk from isolated node accepted")
	}
	if _, err := Stationary(g); err == nil {
		t.Fatal("stationary of edgeless graph accepted")
	}
}

func TestTVHalvesL1(t *testing.T) {
	p := Vec{1, 0}
	q := Vec{0, 1}
	if p.L1(q) != 2 || p.TV(q) != 1 {
		t.Fatalf("L1=%v TV=%v", p.L1(q), p.TV(q))
	}
}
