// Package dist provides exact (centralized) probability distributions over
// the nodes of a graph: t-step walk distributions, Metropolis-Hastings
// variants, and stationary/uniform/point vectors. The distributed
// algorithms are validated against these reference quantities (e.g. the
// chi-square endpoint tests and the mixing-time experiments).
//
// The transition semantics mirror graph.Step and graph.MHStep exactly:
// the simple walk moves along an incident edge chosen with probability
// proportional to its weight; the MH walk proposes the same way and
// accepts with probability min(1, W(u)/W(v)), staying put otherwise.
package dist

import (
	"fmt"
	"math"

	"distwalk/internal/graph"
)

// Vec is a probability vector (or more generally a signed measure) over
// the nodes 0..n-1 of a graph.
type Vec []float64

// Sum returns the total mass of the vector.
func (p Vec) Sum() float64 {
	s := 0.0
	for _, x := range p {
		s += x
	}
	return s
}

// L1 returns the ℓ₁ distance ‖p − q‖₁. The vectors must have equal length.
func (p Vec) L1(q Vec) float64 {
	d := 0.0
	for i, x := range p {
		d += math.Abs(x - q[i])
	}
	return d
}

// TV returns the total-variation distance, ‖p − q‖₁ / 2.
func (p Vec) TV(q Vec) float64 { return p.L1(q) / 2 }

// Uniform returns the uniform distribution over n nodes (empty for n <= 0).
func Uniform(n int) Vec {
	if n <= 0 {
		return Vec{}
	}
	u := make(Vec, n)
	for i := range u {
		u[i] = 1 / float64(n)
	}
	return u
}

// Point returns the point mass at node v.
func Point(n int, v graph.NodeID) (Vec, error) {
	if v < 0 || int(v) >= n {
		return nil, fmt.Errorf("dist: node %d out of range [0,%d)", v, n)
	}
	p := make(Vec, n)
	p[v] = 1
	return p, nil
}

// Stationary returns the stationary distribution of the simple random walk,
// π(v) = W(v)/ΣW where W is the weighted degree (deg(v)/2m unweighted).
func Stationary(g *graph.G) (Vec, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("dist: empty graph")
	}
	pi := make(Vec, n)
	total := 0.0
	for v := 0; v < n; v++ {
		w := g.WeightedDegree(graph.NodeID(v))
		pi[v] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: graph has no edges")
	}
	for v := range pi {
		pi[v] /= total
	}
	return pi, nil
}

// Step applies one step of the simple random walk to p: the returned vector
// is p·P where P(u→v) = Σ_{edges u~v} w(e)/W(u). It fails if any node
// carrying mass is isolated (its transition row is undefined).
func Step(g *graph.G, p Vec) (Vec, error) {
	if len(p) != g.N() {
		return nil, fmt.Errorf("dist: vector has %d entries, graph has %d nodes", len(p), g.N())
	}
	next := make(Vec, len(p))
	for u, mass := range p {
		if mass == 0 {
			continue
		}
		w := g.WeightedDegree(graph.NodeID(u))
		if w <= 0 {
			return nil, fmt.Errorf("dist: node %d is isolated but carries mass %v", u, mass)
		}
		for _, h := range g.Neighbors(graph.NodeID(u)) {
			next[h.To] += mass * h.W / w
		}
	}
	return next, nil
}

// MHStep applies one step of the Metropolis-Hastings walk with uniform
// target to p: propose a neighbor with probability proportional to edge
// weight, accept with probability min(1, W(u)/W(v)), otherwise stay.
func MHStep(g *graph.G, p Vec) (Vec, error) {
	if len(p) != g.N() {
		return nil, fmt.Errorf("dist: vector has %d entries, graph has %d nodes", len(p), g.N())
	}
	next := make(Vec, len(p))
	for u, mass := range p {
		if mass == 0 {
			continue
		}
		wu := g.WeightedDegree(graph.NodeID(u))
		if wu <= 0 {
			return nil, fmt.Errorf("dist: node %d is isolated but carries mass %v", u, mass)
		}
		stay := 0.0
		for _, h := range g.Neighbors(graph.NodeID(u)) {
			prop := h.W / wu
			acc := wu / g.WeightedDegree(h.To)
			if acc > 1 {
				acc = 1
			}
			next[h.To] += mass * prop * acc
			stay += mass * prop * (1 - acc)
		}
		next[u] += stay
	}
	return next, nil
}

// WalkDist returns the exact t-step simple-walk distribution from src.
func WalkDist(g *graph.G, src graph.NodeID, t int) (Vec, error) {
	return iterate(g, src, t, Step)
}

// MHWalkDist returns the exact t-step Metropolis-Hastings walk distribution
// from src (uniform target).
func MHWalkDist(g *graph.G, src graph.NodeID, t int) (Vec, error) {
	return iterate(g, src, t, MHStep)
}

func iterate(g *graph.G, src graph.NodeID, t int, step func(*graph.G, Vec) (Vec, error)) (Vec, error) {
	if t < 0 {
		return nil, fmt.Errorf("dist: negative walk length %d", t)
	}
	p, err := Point(g.N(), src)
	if err != nil {
		return nil, err
	}
	for i := 0; i < t; i++ {
		if p, err = step(g, p); err != nil {
			return nil, err
		}
	}
	return p, nil
}
