package spanning

import (
	"math"
	"testing"

	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
	"distwalk/internal/stats"
)

func newWalker(t *testing.T, g *graph.G, seed uint64) *core.Walker {
	t.Helper()
	w, err := core.NewWalker(g, seed, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRandomSpanningTreeIsSpanningTree(t *testing.T) {
	graphs := []struct {
		name string
		g    func() (*graph.G, error)
	}{
		{"K5", func() (*graph.G, error) { return graph.Complete(5) }},
		{"cycle7", func() (*graph.G, error) { return graph.Cycle(7) }},
		{"torus4x4", func() (*graph.G, error) { return graph.Torus(4, 4) }},
		{"candy(4,3)", func() (*graph.G, error) { return graph.Candy(4, 3) }},
		{"grid3x3", func() (*graph.G, error) { return graph.Grid(3, 3) }},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.g()
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 5; seed++ {
				w := newWalker(t, g, seed)
				res, err := RandomSpanningTree(w, 0, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := ValidateTree(g, 0, res.Parent); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Attempts < 1 || res.Phases < 1 {
					t.Fatalf("bookkeeping: %+v", res)
				}
			}
		})
	}
}

func TestRandomSpanningTreeSingleton(t *testing.T) {
	g := graph.New(1)
	w := newWalker(t, g, 1)
	res, err := RandomSpanningTree(w, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent[0] != graph.None {
		t.Fatal("singleton tree malformed")
	}
}

func TestRandomSpanningTreeBadRoot(t *testing.T) {
	g, _ := graph.Complete(3)
	w := newWalker(t, g, 1)
	if _, err := RandomSpanningTree(w, 9, Options{}); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestRandomSpanningTreeDeliver(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 3)
	res, err := RandomSpanningTree(w, 0, Options{Deliver: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(g, 0, res.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestValidateTreeRejectsBadTrees(t *testing.T) {
	g, _ := graph.Complete(4)
	cases := []struct {
		name   string
		parent []graph.NodeID
	}{
		{"wrong length", []graph.NodeID{graph.None, 0}},
		{"root has parent", []graph.NodeID{1, 0, 0, 0}},
		{"orphan", []graph.NodeID{graph.None, 0, 0, graph.None}},
		{"cycle", []graph.NodeID{graph.None, 2, 3, 1}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := ValidateTree(g, 0, tt.parent); err == nil {
				t.Fatal("bad tree accepted")
			}
		})
	}
	// Non-edge case needs a sparser graph.
	p, _ := graph.Path(4)
	if err := ValidateTree(p, 0, []graph.NodeID{graph.None, 0, 1, 0}); err == nil {
		t.Fatal("tree with non-edge accepted")
	}
}

func TestSpanningTreeCountKnownValues(t *testing.T) {
	tests := []struct {
		name string
		g    func() (*graph.G, error)
		want float64
	}{
		{"K3", func() (*graph.G, error) { return graph.Complete(3) }, 3},
		{"K4", func() (*graph.G, error) { return graph.Complete(4) }, 16}, // Cayley: 4^2
		{"K5", func() (*graph.G, error) { return graph.Complete(5) }, 125},
		{"C6", func() (*graph.G, error) { return graph.Cycle(6) }, 6},
		{"path5", func() (*graph.G, error) { return graph.Path(5) }, 1},
		{"star6", func() (*graph.G, error) { return graph.Star(6) }, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.g()
			if err != nil {
				t.Fatal(err)
			}
			got, err := SpanningTreeCount(g)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-6*tt.want+1e-9 {
				t.Fatalf("count = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSpanningTreeCountDisconnected(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := SpanningTreeCount(g)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("disconnected count = %v, want 0", c)
	}
}

func TestEnumerateTreesMatchesCount(t *testing.T) {
	for _, gen := range []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Complete(4) },
		func() (*graph.G, error) { return graph.Cycle(5) },
		func() (*graph.G, error) { return graph.Candy(3, 2) },
	} {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		keys, err := EnumerateTrees(g)
		if err != nil {
			t.Fatal(err)
		}
		count, err := SpanningTreeCount(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(len(keys))-count) > 0.5 {
			t.Fatalf("enumerated %d trees, matrix-tree says %v", len(keys), count)
		}
		seen := make(map[string]bool)
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate tree %q", k)
			}
			seen[k] = true
		}
	}
}

func TestWilsonUniformOnK4(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := EnumerateTrees(g)
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	r := rng.New(7)
	counts := make([]int, len(keys))
	const samples = 8000
	for i := 0; i < samples; i++ {
		parent, err := Wilson(g, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		j, ok := idx[TreeKey(parent)]
		if !ok {
			t.Fatalf("Wilson produced unknown tree %q", TreeKey(parent))
		}
		counts[j]++
	}
	p, err := stats.UniformityPValue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("Wilson not uniform on K4: %v (p=%v)", counts, p)
	}
}

func TestAldousBroderUniformOnK4(t *testing.T) {
	// Theorem 4.1: the distributed driver samples uniformly over the 16
	// spanning trees of K4. Start ℓ well above the cover time so the
	// fixed-horizon conditioning bias is negligible against this test.
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := EnumerateTrees(g)
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	counts := make([]int, len(keys))
	const samples = 3000
	for i := 0; i < samples; i++ {
		w := newWalker(t, g, uint64(i))
		res, err := RandomSpanningTree(w, 0, Options{StartLength: 64})
		if err != nil {
			t.Fatal(err)
		}
		j, ok := idx[TreeKey(res.Parent)]
		if !ok {
			t.Fatalf("driver produced unknown tree %q", TreeKey(res.Parent))
		}
		counts[j]++
	}
	p, err := stats.UniformityPValue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("Aldous-Broder driver not uniform on K4: %v (p=%v)", counts, p)
	}
}

func TestAldousBroderUniformOnCycle(t *testing.T) {
	// C5 has exactly 5 trees (drop one edge each).
	g, err := graph.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := EnumerateTrees(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("C5 has %d trees?", len(keys))
	}
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	counts := make([]int, len(keys))
	const samples = 2500
	for i := 0; i < samples; i++ {
		w := newWalker(t, g, uint64(10000+i))
		res, err := RandomSpanningTree(w, 0, Options{StartLength: 128})
		if err != nil {
			t.Fatal(err)
		}
		counts[idx[TreeKey(res.Parent)]]++
	}
	p, err := stats.UniformityPValue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("driver not uniform on C5: %v (p=%v)", counts, p)
	}
}

func TestRSTFasterThanNaiveSchedule(t *testing.T) {
	// Theorem 4.1's point: Õ(√(mD)) ≪ the O(mD) cover time. Compare
	// like-for-like: the naive token implementation of the same doubling
	// schedule costs Σ_phases walksPerPhase·ℓ rounds. At 16x16 the fast
	// walks already win by ~2x, and the margin grows with n (E7 sweeps
	// this).
	g, err := graph.Torus(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 5)
	res, err := RandomSpanningTree(w, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(g, 0, res.Parent); err != nil {
		t.Fatal(err)
	}
	perPhase := res.Attempts / res.Phases
	naive := 0
	for p, ell := 0, g.N(); p < res.Phases; p, ell = p+1, ell*2 {
		naive += perPhase * ell
	}
	if float64(res.Cost.Rounds) > 0.67*float64(naive) {
		t.Fatalf("RST cost %d rounds vs naive schedule %d — speedup below 1.5x",
			res.Cost.Rounds, naive)
	}
}
