package spanning

import (
	"fmt"
	"math"

	"distwalk/internal/graph"
)

// SpanningTreeCount returns the number of spanning trees of g by
// Kirchhoff's matrix-tree theorem: the determinant of any cofactor of the
// Laplacian. Parallel edges count as distinct trees; weights act as edge
// multiplicities (weighted tree count). The determinant is computed with
// partially-pivoted Gaussian elimination in float64, exact enough for the
// small graphs used in uniformity tests.
func SpanningTreeCount(g *graph.G) (float64, error) {
	n := g.N()
	if n == 0 {
		return 0, fmt.Errorf("spanning: empty graph")
	}
	if n == 1 {
		return 1, nil
	}
	// Reduced Laplacian: drop row/column 0.
	m := n - 1
	l := make([][]float64, m)
	for i := range l {
		l[i] = make([]float64, m)
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		u, v, w := int(e.U), int(e.V), e.W
		if u > 0 {
			l[u-1][u-1] += w
		}
		if v > 0 {
			l[v-1][v-1] += w
		}
		if u > 0 && v > 0 {
			l[u-1][v-1] -= w
			l[v-1][u-1] -= w
		}
	}
	det := 1.0
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(l[r][col]) > math.Abs(l[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(l[pivot][col]) < 1e-12 {
			return 0, nil // singular: disconnected graph, zero trees
		}
		if pivot != col {
			l[pivot], l[col] = l[col], l[pivot]
			det = -det
		}
		det *= l[col][col]
		for r := col + 1; r < m; r++ {
			f := l[r][col] / l[col][col]
			for c := col; c < m; c++ {
				l[r][c] -= f * l[col][c]
			}
		}
	}
	return det, nil
}

// EnumerateTrees lists the TreeKey of every spanning tree of g (unweighted
// simple graphs only; intended for tiny test graphs, cost O(C(m, n-1)·n)).
func EnumerateTrees(g *graph.G) ([]string, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("spanning: empty graph")
	}
	if g.M() > 24 {
		return nil, fmt.Errorf("spanning: enumeration supports at most 24 edges, got %d", g.M())
	}
	var keys []string
	need := n - 1
	edges := g.Edges()
	pick := make([]int, 0, need)
	var rec func(start int)
	rec = func(start int) {
		if len(pick) == need {
			if key, ok := treeOf(g, edges, pick); ok {
				keys = append(keys, key)
			}
			return
		}
		// Not enough remaining edges to finish.
		if len(edges)-start < need-len(pick) {
			return
		}
		for i := start; i < len(edges); i++ {
			pick = append(pick, i)
			rec(i + 1)
			pick = pick[:len(pick)-1]
		}
	}
	rec(0)
	return keys, nil
}

// treeOf checks whether the chosen edge subset forms a spanning tree and
// returns its canonical key.
func treeOf(g *graph.G, edges []graph.Edge, pick []int) (string, bool) {
	n := g.N()
	// Union-find over the chosen edges.
	uf := make([]int, n)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	parent := make([]graph.NodeID, n)
	for i := range parent {
		parent[i] = graph.None
	}
	for _, ei := range pick {
		e := edges[ei]
		ru, rv := find(int(e.U)), find(int(e.V))
		if ru == rv {
			return "", false // cycle
		}
		uf[ru] = rv
	}
	// n-1 acyclic edges over n nodes: a spanning tree. Root it at 0 to
	// reuse TreeKey.
	adj := make([][]graph.NodeID, n)
	for _, ei := range pick {
		e := edges[ei]
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	stack := []graph.NodeID{0}
	seen := make([]bool, n)
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				parent[u] = v
				stack = append(stack, u)
			}
		}
	}
	return TreeKey(parent), true
}
