// Package spanning implements the paper's first application (Section 4.1):
// a distributed algorithm that samples a uniformly random spanning tree
// (RST) in Õ(√(mD)) rounds by simulating the Aldous-Broder walk with the
// fast SINGLE-RANDOM-WALK machinery.
//
// The driver follows the paper exactly: starting from ℓ = n, each phase
// runs ⌈log₂ n⌉ walks of length ℓ from the root; a distributed cover check
// (O(D) rounds per walk) finds a walk that visited every node; if none
// covers, ℓ doubles. The covering walk is regenerated so every node knows
// its first-visit time and predecessor, and each non-root node outputs the
// edge of its first visit — the Aldous-Broder rule, whose output is a
// uniform spanning tree. Expected cover length is O(mD) (Aleliunas et
// al.), so the doubling stops at ℓ = O(mD) w.h.p. and the total cost is
// Õ(√(mD)) rounds (Theorem 4.1).
//
// Wilson's algorithm (wilson.go) provides a centralized exactly-uniform
// reference sampler, and Kirchhoff's matrix-tree theorem (count.go) the
// ground-truth tree counts, for the uniformity experiments.
package spanning

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/graph"
)

// ErrNoCover is wrapped by RandomSpanningTree when no walk up to MaxLength
// covered the graph — the doubling schedule ran out before the O(mD)
// expected cover time was reached, which indicates MaxLength was set far
// too low for the topology.
var ErrNoCover = errors.New("spanning: no covering walk within the length budget")

// Options tunes the RST driver. The zero value follows the paper.
type Options struct {
	// StartLength is the initial walk length ℓ (default n, as in the
	// paper). Raising it reduces the (vanishing) bias of conditioning on
	// covering within a fixed horizon.
	StartLength int
	// WalksPerPhase is the number of walks per doubling phase
	// (default ⌈log₂ n⌉).
	WalksPerPhase int
	// MaxLength caps ℓ (default 1024·m·D, far above the O(mD) expected
	// cover time).
	MaxLength int
	// Deliver additionally upcasts the n-1 tree edges to the root
	// (O(n + D) extra rounds — the paper's optional "additional O(n)
	// rounds ... to deliver the resulting tree").
	Deliver bool
}

// Result is a sampled spanning tree plus its cost.
type Result struct {
	Root graph.NodeID
	// Parent[v] is v's tree parent — the node from which the covering walk
	// first reached v (None for the root). Each node knows its own entry.
	Parent []graph.NodeID
	// WalkLength is the ℓ of the covering walk.
	WalkLength int
	// Phases is the number of doubling phases used.
	Phases int
	// Attempts is the total number of walks run.
	Attempts int
	// Cost is the total simulated cost.
	Cost congest.Result
}

type boolPayload bool

func (boolPayload) Words() int   { return 1 }
func (boolPayload) Kind() uint16 { return 1 }
func (b boolPayload) Encode() [congest.PayloadWords]uint64 {
	var w [congest.PayloadWords]uint64
	if b {
		w[0] = 1
	}
	return w
}
func (boolPayload) Decode(w [congest.PayloadWords]uint64) boolPayload {
	return boolPayload(w[0] != 0)
}

type edgeReport struct {
	child, parent graph.NodeID
}

func (edgeReport) Words() int   { return 2 }
func (edgeReport) Kind() uint16 { return 2 }
func (r edgeReport) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{congest.Pack2(int32(r.child), int32(r.parent))}
}
func (edgeReport) Decode(w [congest.PayloadWords]uint64) edgeReport {
	child, parent := congest.Unpack2(w[0])
	return edgeReport{child: graph.NodeID(child), parent: graph.NodeID(parent)}
}

// RandomSpanningTree samples a uniform spanning tree of w's graph rooted
// at root.
func RandomSpanningTree(w *core.Walker, root graph.NodeID, opt Options) (*Result, error) {
	g := w.Graph()
	n := g.N()
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("%w: root %d not in [0,%d)", core.ErrBadNode, root, n)
	}
	if n == 1 {
		return &Result{Root: root, Parent: []graph.NodeID{graph.None}}, nil
	}
	ell := opt.StartLength
	if ell <= 0 {
		ell = n
	}
	walksPerPhase := opt.WalksPerPhase
	if walksPerPhase <= 0 {
		walksPerPhase = int(math.Ceil(math.Log2(float64(n + 1))))
		if walksPerPhase < 1 {
			walksPerPhase = 1
		}
	}
	maxLen := opt.MaxLength
	if maxLen <= 0 {
		diam := 1
		if d, err := g.ApproxDiameter(); err == nil && d > 0 {
			diam = d
		}
		maxLen = 1024 * g.M() * diam
	}
	if ell > maxLen {
		maxLen = ell
	}

	out := &Result{Root: root, WalkLength: ell}
	sources := make([]graph.NodeID, walksPerPhase)
	for i := range sources {
		sources[i] = root
	}
	for ; ell <= maxLen; ell *= 2 {
		out.Phases++
		out.WalkLength = ell
		many, err := w.ManyRandomWalks(sources, ell)
		if err != nil {
			return nil, fmt.Errorf("spanning: phase ℓ=%d: %w", ell, err)
		}
		out.Cost.Add(many.Cost)
		out.Attempts += walksPerPhase
		// All candidate walks regenerate in one parallel replay pass
		// (Section 2.2's "takes time at most the time taken in Phase 1").
		traces, err := w.RegenerateMany(many.Walks)
		if err != nil {
			return nil, err
		}
		out.Cost.Add(traces[0].Cost)
		for _, trace := range traces {
			covered, res, err := coverCheck(w, trace)
			out.Cost.Add(res)
			if err != nil {
				return nil, err
			}
			if !covered {
				continue
			}
			// Aldous-Broder rule: each non-root node outputs its
			// first-visit edge. FirstVisitFrom is node-local knowledge.
			out.Parent = trace.FirstVisitFrom
			if opt.Deliver {
				res, err := deliver(w, out)
				out.Cost.Add(res)
				if err != nil {
					return nil, err
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: tried up to ℓ=%d (max %d)", ErrNoCover, ell/2, maxLen)
}

// coverCheck is the distributed AND over "was I visited?" — a single
// convergecast over the walker's BFS tree, O(D) rounds ("this can be
// easily checked in O(D) time", Section 4.1).
func coverCheck(w *core.Walker, trace *core.Trace) (bool, congest.Result, error) {
	tree := w.Tree()
	if tree == nil {
		return false, congest.Result{}, fmt.Errorf("spanning: walker has no BFS tree")
	}
	all, cost, err := congest.Convergecast(w.Network(), tree,
		func(v graph.NodeID) boolPayload { return trace.FirstVisitTime[v] >= 0 },
		func(_ graph.NodeID, acc, child boolPayload) boolPayload { return acc && child },
	)
	if err != nil {
		return false, cost, err
	}
	return bool(all), cost, nil
}

// deliver upcasts all tree edges to the root, pipelined: O(n + D) rounds.
func deliver(w *core.Walker, out *Result) (congest.Result, error) {
	tree := w.Tree()
	if tree == nil {
		return congest.Result{}, fmt.Errorf("spanning: walker has no BFS tree")
	}
	reports, cost, err := congest.Upcast(w.Network(), tree, func(v graph.NodeID) []edgeReport {
		if p := out.Parent[v]; p != graph.None {
			return []edgeReport{{child: v, parent: p}}
		}
		return nil
	})
	if err != nil {
		return cost, err
	}
	if len(reports) != w.Graph().N()-1 {
		return cost, fmt.Errorf("spanning: delivered %d edges, want %d", len(reports), w.Graph().N()-1)
	}
	return cost, nil
}

// ValidateTree checks that parent encodes a spanning tree of g rooted at
// root: every non-root has a parent joined by a real edge, and following
// parents always reaches the root (no cycles).
func ValidateTree(g *graph.G, root graph.NodeID, parent []graph.NodeID) error {
	n := g.N()
	if len(parent) != n {
		return fmt.Errorf("spanning: parent array has %d entries, want %d", len(parent), n)
	}
	if parent[root] != graph.None {
		return fmt.Errorf("spanning: root %d has parent %d", root, parent[root])
	}
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	state[root] = 2
	for v := 0; v < n; v++ {
		u := graph.NodeID(v)
		var path []graph.NodeID
		for state[u] == 0 {
			state[u] = 1
			path = append(path, u)
			p := parent[u]
			if p == graph.None {
				return fmt.Errorf("spanning: non-root %d has no parent", u)
			}
			if !g.HasEdge(u, p) {
				return fmt.Errorf("spanning: tree edge (%d,%d) not in graph", u, p)
			}
			u = p
		}
		if state[u] == 1 {
			return fmt.Errorf("spanning: cycle through node %d", u)
		}
		for _, x := range path {
			state[x] = 2
		}
	}
	return nil
}

// TreeKey returns a canonical identity for the tree encoded by parent,
// usable as a map key when counting tree frequencies.
func TreeKey(parent []graph.NodeID) string {
	edges := make([]string, 0, len(parent))
	for v, p := range parent {
		if p == graph.None {
			continue
		}
		a, b := graph.NodeID(v), p
		if a > b {
			a, b = b, a
		}
		edges = append(edges, strconv.Itoa(int(a))+"-"+strconv.Itoa(int(b)))
	}
	sort.Strings(edges)
	return strings.Join(edges, ",")
}
