package spanning

import (
	"math"
	"testing"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

func TestCoverTimeCompleteGraph(t *testing.T) {
	// K_n is the coupon collector: E[cover] = (n-1)·H_{n-1}.
	const n = 8
	g, err := graph.Complete(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateCoverTime(g, 0, 4000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for k := 1; k <= n-1; k++ {
		want += float64(n-1) / float64(k)
	}
	if math.Abs(got-want) > 0.06*want {
		t.Fatalf("K%d cover time %v, want ≈ %v", n, got, want)
	}
}

func TestCoverTimeCycle(t *testing.T) {
	// C_n: E[cover] = n(n-1)/2 exactly.
	const n = 9
	g, err := graph.Cycle(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateCoverTime(g, 0, 4000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n*(n-1)) / 2
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("C%d cover time %v, want ≈ %v", n, got, want)
	}
}

func TestCoverTimeRespectsMDBound(t *testing.T) {
	// Aleliunas et al.: E[cover] ≤ 2m(n-1), and the paper uses O(mD).
	// Check the O(mD)-scale bound with a generous constant on families
	// with very different shapes.
	gens := []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Torus(5, 5) },
		func() (*graph.G, error) { return graph.Candy(5, 10) },
		func() (*graph.G, error) { return graph.Star(20) },
	}
	for _, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		d, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		got, err := EstimateCoverTime(g, 0, 300, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		bound := 4 * float64(g.M()) * float64(max(d, 1))
		if got > bound {
			t.Fatalf("cover time %v exceeds 4·m·D = %v (n=%d m=%d D=%d)", got, bound, g.N(), g.M(), d)
		}
	}
}

func TestCoverTimeValidation(t *testing.T) {
	g, _ := graph.Complete(3)
	if _, err := EstimateCoverTime(g, 9, 10, rng.New(1)); err == nil {
		t.Fatal("bad root accepted")
	}
	if _, err := EstimateCoverTime(g, 0, 0, rng.New(1)); err == nil {
		t.Fatal("zero trials accepted")
	}
	single := graph.New(1)
	got, err := EstimateCoverTime(single, 0, 5, rng.New(1))
	if err != nil || got != 0 {
		t.Fatalf("singleton cover = %v, err=%v", got, err)
	}
	disc := graph.New(3)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateCoverTime(disc, 0, 5, rng.New(1)); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestRSTCoveringLengthTracksCoverTime(t *testing.T) {
	// The doubling driver should stop within a small factor of the true
	// cover time.
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := EstimateCoverTime(g, 0, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 9)
	res, err := RandomSpanningTree(w, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ℓ doubles from n: the covering length is at most ~4x the cover time
	// w.h.p. and at least cover-time scale.
	if float64(res.WalkLength) > 16*cover || float64(res.WalkLength) < cover/16 {
		t.Fatalf("covering length %d far from cover time %v", res.WalkLength, cover)
	}
}
