package spanning

import (
	"fmt"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// Wilson samples a uniformly random spanning tree rooted at root with
// Wilson's loop-erased random walk algorithm (centralized). It is the
// exactly-uniform reference sampler against which the distributed
// Aldous-Broder driver is validated: both feed the same chi-square test in
// the uniformity experiments.
func Wilson(g *graph.G, root graph.NodeID, r *rng.RNG) ([]graph.NodeID, error) {
	n := g.N()
	if root < 0 || int(root) >= n {
		return nil, fmt.Errorf("spanning: root %d out of range [0,%d)", root, n)
	}
	parent := make([]graph.NodeID, n)
	inTree := make([]bool, n)
	for v := range parent {
		parent[v] = graph.None
	}
	inTree[root] = true

	next := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		if inTree[v] {
			continue
		}
		// Random walk from v until the tree is hit, remembering only the
		// latest exit from each node (implicit loop erasure).
		u := graph.NodeID(v)
		for !inTree[u] {
			step, err := g.Step(r, u)
			if err != nil {
				return nil, fmt.Errorf("spanning: wilson walk stuck at %d: %w", u, err)
			}
			next[u] = step
			u = step
		}
		// Attach the loop-erased path.
		u = graph.NodeID(v)
		for !inTree[u] {
			inTree[u] = true
			parent[u] = next[u]
			u = next[u]
		}
	}
	return parent, nil
}
