package spanning

import (
	"fmt"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// EstimateCoverTime Monte-Carlo estimates the expected cover time of g
// from root — the quantity whose O(mD) bound (Aleliunas et al., cited in
// Section 4.1) drives the RST driver's doubling schedule. The walk is
// simulated locally: this is a centralized reference like Wilson's
// algorithm, used to validate and calibrate the distributed driver.
func EstimateCoverTime(g *graph.G, root graph.NodeID, trials int, r *rng.RNG) (float64, error) {
	n := g.N()
	if root < 0 || int(root) >= n {
		return 0, fmt.Errorf("spanning: root %d out of range [0,%d)", root, n)
	}
	if trials < 1 {
		return 0, fmt.Errorf("spanning: trials must be >= 1, got %d", trials)
	}
	if n == 1 {
		return 0, nil
	}
	if !g.Connected() {
		return 0, fmt.Errorf("spanning: cover time of a disconnected graph is infinite")
	}
	total := 0.0
	visited := make([]bool, n)
	for trial := 0; trial < trials; trial++ {
		for i := range visited {
			visited[i] = false
		}
		visited[root] = true
		remaining := n - 1
		cur := root
		steps := 0
		for remaining > 0 {
			next, err := g.Step(r, cur)
			if err != nil {
				return 0, err
			}
			cur = next
			steps++
			if !visited[cur] {
				visited[cur] = true
				remaining--
			}
		}
		total += float64(steps)
	}
	return total / float64(trials), nil
}
