package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distwalk/internal/core"
	"distwalk/internal/graph"
)

// stubExec is a test executor that records flushed batches and completes
// their members with empty results (or holds them until released).
type stubExec struct {
	mu      sync.Mutex
	batches []*Batch
	gate    chan struct{} // non-nil: exec blocks here before completing
}

func (e *stubExec) exec(b *Batch) {
	e.mu.Lock()
	e.batches = append(e.batches, b)
	gate := e.gate
	e.mu.Unlock()
	if gate != nil {
		<-gate
	}
	info := BatchInfo{Size: b.Size(), Seed: b.Seed, Reason: b.Reason}
	for _, p := range b.members {
		p.out <- Result{Walk: &core.WalkResult{Source: p.req.Source}, Batch: info}
	}
	if b.sched != nil {
		b.sched.noteExecuted(info)
	}
}

func (e *stubExec) snapshot() []*Batch {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Batch(nil), e.batches...)
}

func req(key uint64, source graph.NodeID, ell int) Request {
	return Request{Key: key, Source: source, Ell: ell, Params: core.DefaultParams()}
}

func TestBatchSeedCompositionSensitivity(t *testing.T) {
	a := BatchSeed(42, []uint64{1, 2, 3})
	if b := BatchSeed(42, []uint64{1, 2, 3}); b != a {
		t.Fatalf("same composition, different seeds: %d vs %d", a, b)
	}
	distinct := map[uint64]string{a: "{1,2,3}"}
	for name, keys := range map[string][]uint64{
		"{1,2}":     {1, 2},
		"{1,2,4}":   {1, 2, 4},
		"{1,2,3,3}": {1, 2, 3, 3},
		"{0}":       {0},
		"{0,0}":     {0, 0},
		"{}":        {},
	} {
		s := BatchSeed(42, keys)
		if prev, dup := distinct[s]; dup {
			t.Fatalf("composition %s collides with %s on seed %d", name, prev, s)
		}
		distinct[s] = name
	}
	if BatchSeed(7, []uint64{1, 2, 3}) == a {
		t.Fatal("service seed does not influence the batch seed")
	}
}

func TestFlushBySizeSortsAndSeeds(t *testing.T) {
	e := &stubExec{}
	s := New(42, Config{MaxBatch: 3, MaxDelay: time.Hour}, e.exec)
	defer s.Close()
	ctx := context.Background()
	var chans []<-chan Result
	for _, k := range []uint64{9, 4, 7} { // deliberately unsorted
		ch, err := s.Submit(ctx, req(k, graph.NodeID(k), 100))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	batches := e.snapshot()
	if len(batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(batches))
	}
	b := batches[0]
	if b.Size() != 3 || b.Reason != ReasonSize {
		t.Fatalf("batch size %d reason %v, want 3/size", b.Size(), b.Reason)
	}
	var keys []uint64
	for _, p := range b.members {
		keys = append(keys, p.req.Key)
	}
	if keys[0] != 4 || keys[1] != 7 || keys[2] != 9 {
		t.Fatalf("members not sorted by key: %v", keys)
	}
	if want := BatchSeed(42, []uint64{4, 7, 9}); b.Seed != want {
		t.Fatalf("batch seed %d, want BatchSeed over sorted keys %d", b.Seed, want)
	}
}

func TestFlushByDelay(t *testing.T) {
	e := &stubExec{}
	s := New(1, Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond}, e.exec)
	defer s.Close()
	ch, err := s.Submit(context.Background(), req(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Batch.Reason != ReasonDelay {
			t.Fatalf("flush reason %v, want delay", r.Batch.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delay window never flushed the lone request")
	}
}

func TestGroupingByCompatibleConfig(t *testing.T) {
	e := &stubExec{}
	s := New(1, Config{MaxBatch: 2, MaxDelay: time.Hour, MaxInFlight: 4}, e.exec)
	defer s.Close()
	ctx := context.Background()
	mh := core.DefaultParams()
	mh.Metropolis = true
	var chans []<-chan Result
	for _, r := range []Request{
		{Key: 1, Source: 0, Ell: 100, Params: core.DefaultParams()},
		{Key: 2, Source: 1, Ell: 200, Params: core.DefaultParams()}, // different ℓ
		{Key: 3, Source: 2, Ell: 100, Params: mh},                   // different params
		{Key: 4, Source: 3, Ell: 100, Params: core.DefaultParams()}, // completes group of key 1
		{Key: 5, Source: 4, Ell: 200, Params: core.DefaultParams()}, // completes group of key 2
		{Key: 6, Source: 5, Ell: 100, Params: mh},                   // completes group of key 3
	} {
		ch, err := s.Submit(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	batches := e.snapshot()
	if len(batches) != 3 {
		t.Fatalf("got %d batches, want 3 (one per compatibility group)", len(batches))
	}
	for _, b := range batches {
		if b.Size() != 2 {
			t.Fatalf("batch of size %d, want 2: incompatible requests coalesced", b.Size())
		}
		if b.members[0].req.Ell != b.Ell || b.members[1].req.Ell != b.Ell {
			t.Fatalf("batch ℓ=%d holds members with other lengths", b.Ell)
		}
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	e := &stubExec{gate: make(chan struct{})}
	s := New(1, Config{MaxBatch: 1, MaxDelay: time.Hour, QueueLimit: 2, MaxInFlight: 1}, e.exec)
	ctx := context.Background()
	// First submit flushes immediately (MaxBatch 1) and parks in exec.
	first, err := s.Submit(ctx, req(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	// The in-flight slot is taken, so these two queue up to the limit...
	var queued []<-chan Result
	for k := uint64(2); k <= 3; k++ {
		ch, err := s.Submit(ctx, req(k, 0, 100))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, ch)
	}
	// ...and the next is rejected with ErrQueueFull.
	if _, err := s.Submit(ctx, req(4, 0, 100)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(e.gate) // release the parked batch; the queue drains
	for _, ch := range append([]<-chan Result{first}, queued...) {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s.Close()
	st := s.Stats()
	if st.Rejected != 1 || st.Submitted != 3 {
		t.Fatalf("stats submitted/rejected = %d/%d, want 3/1", st.Submitted, st.Rejected)
	}
}

func TestCancelledMemberDroppedBeforeFlush(t *testing.T) {
	e := &stubExec{}
	s := New(42, Config{MaxBatch: 8, MaxDelay: 30 * time.Millisecond}, e.exec)
	defer s.Close()
	ctx := context.Background()
	a, err := s.Submit(ctx, req(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	c, err := s.Submit(cctx, req(2, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(ctx, req(3, 2, 100))
	if err != nil {
		t.Fatal(err)
	}
	cancel() // before the 30ms window flushes
	rc := <-c
	if !errors.Is(rc.Err, context.Canceled) {
		t.Fatalf("cancelled member err = %v, want context.Canceled", rc.Err)
	}
	ra, rb := <-a, <-b
	if ra.Err != nil || rb.Err != nil {
		t.Fatal(ra.Err, rb.Err)
	}
	if ra.Batch.Size != 2 {
		t.Fatalf("batch size %d, want 2 (cancelled member excluded)", ra.Batch.Size)
	}
	// The composition — and therefore the seed — is exactly the batch
	// that never contained the cancelled member.
	if want := BatchSeed(42, []uint64{1, 3}); ra.Batch.Seed != want {
		t.Fatalf("batch seed %d, want %d (seed over surviving keys only)", ra.Batch.Seed, want)
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats.Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestCancelObservedEagerly pins the cancellation watcher: a cancelled
// pending member must unblock immediately, not at the next flush
// trigger — here the only other trigger is an hour away.
func TestCancelObservedEagerly(t *testing.T) {
	e := &stubExec{}
	s := New(1, Config{MaxBatch: 8, MaxDelay: time.Hour}, e.exec)
	defer s.Close()
	cctx, cancel := context.WithCancel(context.Background())
	ch, err := s.Submit(cctx, req(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case r := <-ch:
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled pending member not dropped until the flush window — cancellation is not watched")
	}
}

// TestQueueReclaimsCancelledCapacity pins the backpressure fix: a queue
// full of cancelled members must not reject live submissions.
func TestQueueReclaimsCancelledCapacity(t *testing.T) {
	e := &stubExec{gate: make(chan struct{})}
	s := New(1, Config{MaxBatch: 1, MaxDelay: time.Hour, QueueLimit: 2, MaxInFlight: 1}, e.exec)
	ctx := context.Background()
	first, err := s.Submit(ctx, req(1, 0, 100)) // flushes, parks in exec
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	dead := make([]<-chan Result, 2)
	for i := range dead {
		ch, err := s.Submit(cctx, req(uint64(2+i), 0, 100))
		if err != nil {
			t.Fatal(err)
		}
		dead[i] = ch
	}
	// Queue is at its limit with members that are about to die.
	if _, err := s.Submit(ctx, req(9, 0, 100)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("pre-cancel: err = %v, want ErrQueueFull", err)
	}
	cancel()
	for _, ch := range dead {
		if r := <-ch; !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.Err)
		}
	}
	live, err := s.Submit(ctx, req(10, 0, 100))
	if err != nil {
		t.Fatalf("live submit after cancellations rejected: %v", err)
	}
	close(e.gate)
	for _, ch := range []<-chan Result{first, live} {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s.Close()
}

// TestQueueLimitBelowMaxBatchHonored: an explicit limit smaller than the
// batch size must bound the queue (and thus the batch) at that limit,
// not be silently replaced by the default.
func TestQueueLimitBelowMaxBatchHonored(t *testing.T) {
	e := &stubExec{}
	s := New(1, Config{MaxBatch: 8, MaxDelay: 20 * time.Millisecond, QueueLimit: 2}, e.exec)
	defer s.Close()
	ctx := context.Background()
	a, err := s.Submit(ctx, req(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(ctx, req(2, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, req(3, 0, 100)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull at the configured limit of 2", err)
	}
	for _, ch := range []<-chan Result{a, b} {
		r := <-ch
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Batch.Size != 2 || r.Batch.Reason != ReasonDelay {
			t.Fatalf("batch %+v, want size 2 flushed by delay", r.Batch)
		}
	}
}

func TestCloseAbortsPending(t *testing.T) {
	e := &stubExec{}
	s := New(1, Config{MaxBatch: 8, MaxDelay: time.Hour}, e.exec)
	ch, err := s.Submit(context.Background(), req(1, 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if r := <-ch; !errors.Is(r.Err, ErrBatchAborted) {
		t.Fatalf("pending member at close: err = %v, want ErrBatchAborted", r.Err)
	}
	if _, err := s.Submit(context.Background(), req(2, 0, 100)); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("submit after close: err = %v, want ErrSchedulerClosed", err)
	}
	if st := s.Stats(); st.Aborted != 1 {
		t.Fatalf("stats.Aborted = %d, want 1", st.Aborted)
	}
}

func TestSizeOverflowKeepsDueAndDrains(t *testing.T) {
	e := &stubExec{gate: make(chan struct{})}
	s := New(1, Config{MaxBatch: 2, MaxDelay: time.Hour, QueueLimit: 8, MaxInFlight: 1}, e.exec)
	ctx := context.Background()
	// 5 submissions: one batch of 2 flushes and parks; 3 overflow members
	// wait for the slot.
	var chans []<-chan Result
	for k := uint64(1); k <= 5; k++ {
		ch, err := s.Submit(ctx, req(k, 0, 100))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	close(e.gate)
	for _, ch := range chans {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	s.Close()
	// Drained as 2+2+1: the final lone member must not wait for a new
	// delay window — its window already expired with the size overflow.
	st := s.Stats()
	if st.Batches != 3 || st.BatchedWalks != 5 {
		t.Fatalf("batches/walks = %d/%d, want 3/5", st.Batches, st.BatchedWalks)
	}
	if st.Occupancy[1] != 2 || st.Occupancy[0] != 1 {
		t.Fatalf("occupancy = %v, want two size-2 and one size-1 batches", st.Occupancy)
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	e := &stubExec{}
	s := New(1, Config{MaxBatch: 1, MaxDelay: time.Hour}, e.exec)
	ch, err := s.Submit(context.Background(), req(1, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	st := s.Stats()
	st.Occupancy[0] = 999
	if s.Stats().Occupancy[0] == 999 {
		t.Fatal("Stats returned a live reference to the occupancy histogram")
	}
	s.Close()
}
