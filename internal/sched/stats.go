package sched

import "distwalk/internal/congest"

// Stats is a snapshot of the scheduler's counters (see Scheduler.Stats).
// All member counts are requests; Batches counts executions.
type Stats struct {
	// Submitted counts requests admitted to a queue.
	Submitted uint64
	// Rejected counts Submits refused with ErrQueueFull.
	Rejected uint64
	// Cancelled counts members dropped from a pending batch because
	// their context was done before flush.
	Cancelled uint64
	// Aborted counts members completed with ErrBatchAborted (execution
	// failure or scheduler close).
	Aborted uint64
	// Batches counts flushed batch executions; FlushBySize and
	// FlushByDelay attribute them to their trigger.
	Batches      uint64
	FlushBySize  uint64
	FlushByDelay uint64
	// Occupancy is the batch-size histogram: Occupancy[i] counts batches
	// that executed with i+1 members (length MaxBatch).
	Occupancy []uint64
	// BatchedWalks counts walks successfully executed inside batches
	// (every one delivered a result to its submitter); BatchCost sums
	// those batches' total simulated cost (walks, shared phases, traces).
	BatchedWalks uint64
	BatchCost    congest.Result
}

// AmortizedRounds returns the mean simulated rounds per batched walk —
// the number batching exists to push below the single-walk cost.
func (st Stats) AmortizedRounds() float64 {
	if st.BatchedWalks == 0 {
		return 0
	}
	return float64(st.BatchCost.Rounds) / float64(st.BatchedWalks)
}

// AmortizedMessages returns the mean simulated messages per batched walk.
func (st Stats) AmortizedMessages() float64 {
	if st.BatchedWalks == 0 {
		return 0
	}
	return float64(st.BatchCost.Messages) / float64(st.BatchedWalks)
}
