// Package sched is the batching scheduler that sits between the public
// distwalk.Service and its worker pool: it coalesces concurrent
// single-walk-shaped requests into shared MANY-RANDOM-WALKS executions,
// so that k requests in flight together cost Õ(min(√(kℓD)+k, k+ℓ))
// simulated rounds between them (Theorem 2.8) instead of k independent
// Õ(√(ℓD)) runs — the paper's amortization, applied across requests
// instead of within one.
//
// # Admission and grouping
//
// Submit places a request in the admission queue of its group. Two
// requests share a group exactly when a single MANY-RANDOM-WALKS run can
// serve both: same walk parameterization (η, λ/LambdaC, Theory,
// Metropolis, ...; the full core.Params), same round budget, and same walk
// length ℓ. The graph is fixed per service, so it never splits groups.
// Sources and the trace flag may differ freely within a group: sources
// become the batch's source list, and trace-requesting members share one
// RegenerateMany pass after the walks complete.
//
// # Flush policy
//
// A group flushes — its queued members are cut into a batch and handed to
// the executor — when either trigger fires:
//
//   - size: the queue reaches MaxBatch members (flushed immediately from
//     the submitting goroutine's Submit call);
//   - delay: MaxDelay has elapsed since the group's oldest member was
//     admitted (flushed from a timer).
//
// At most MaxInFlight batches execute concurrently (default: the worker
// pool size); further flushable groups wait, and members that overflow a
// size-triggered cut stay queued with their delay considered expired, so
// they flush as soon as an execution slot frees. Close aborts all queued
// members with ErrBatchAborted.
//
// # Determinism contract
//
// A batched execution is a pure function of (graph, service seed, batch
// composition): members are ordered by request key (ties by source, then
// admission order), the batch seed is derived by folding the sorted member
// keys into the service seed (BatchSeed), and the batch runs as one
// MANY-RANDOM-WALKS call on a network reseeded with that seed. Two batches
// with the same member set therefore produce bit-identical walks, costs
// and traces, no matter how the members arrived, which worker ran the
// batch, or what ran before it. Which members end up in one batch does
// depend on arrival timing — that is inherent to coalescing and is the
// only nondeterminism batching introduces. One caveat: request keys are
// identifiers, and the contract assumes they are distinct within a
// batch. Members sharing both key and source fall back to admission
// order for the final tie-break, so which duplicate receives which of
// the (identically distributed) walks can vary between runs even though
// the batch's seed, member multiset and total cost do not. The per-key deterministic path
// (result a function of (graph, seed, key) alone) remains the default for
// every unbatched call, including SubmitWalk on a service without
// WithBatching.
//
// Cancellation composes with this contract: a member whose context is
// cancelled while pending is dropped — and completed with its context
// error — before the batch's composition and seed are fixed, so the batch
// executes exactly as if the cancelled member had never been submitted,
// and the surviving members' results are unperturbed. After flush, the
// shared execution runs to completion regardless of individual members'
// contexts (one member must not be able to abort its batchmates); a
// member cancelled post-flush still receives its computed result.
//
// # Backpressure
//
// Each group's admission queue is bounded by QueueLimit. When executions
// cannot keep up — all MaxInFlight slots busy and the queue at its limit —
// Submit fails fast with ErrQueueFull instead of queueing unboundedly;
// callers shed load or retry. Rejections are counted in Stats.
//
// # Metrics
//
// Stats exposes the scheduler's counters: admissions, rejections,
// cancellations, aborts, flush reasons, a batch-occupancy histogram
// (Occupancy[i] = batches of size i+1), and the summed simulated cost of
// all batched executions, from which AmortizedRounds/AmortizedMessages
// report the per-walk amortized cost that batching is buying.
package sched
