package sched

import (
	"context"
	"errors"
	"fmt"

	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// Sentinel errors of the batching layer. distwalk re-exports ErrQueueFull
// and ErrBatchAborted; ErrSchedulerClosed is mapped to the service's own
// closed sentinel at the boundary.
var (
	// ErrQueueFull reports a Submit rejected because the request's group
	// already has QueueLimit members pending (backpressure).
	ErrQueueFull = errors.New("distwalk: batch queue full")
	// ErrBatchAborted reports a batched request that was completed without
	// executing its walk: the shared execution failed as a whole, or the
	// scheduler shut down while the request was pending.
	ErrBatchAborted = errors.New("distwalk: batch aborted")
	// ErrSchedulerClosed reports a Submit after Close.
	ErrSchedulerClosed = errors.New("sched: scheduler closed")
)

// Request is one walk-shaped admission: sample the endpoint of an
// Ell-step walk from Source (and regenerate it when Trace is set), under
// the given parameterization. Params, MaxRounds and Ell define the
// request's compatibility group; Key identifies the request within the
// batch seed derivation.
type Request struct {
	Key       uint64
	Source    graph.NodeID
	Ell       int
	Trace     bool
	Params    core.Params
	MaxRounds int
	// Topo identifies the topology epoch the request admitted under; it
	// joins the compatibility group so no batch ever mixes generations.
	// The scheduler only compares it (comparable, typically a pointer).
	Topo any
	// StaleAbort marks a request whose caller wants fail-fast semantics
	// across a topology mutation: AbortPending can evict it from the
	// admission queue. It deliberately does NOT join the compatibility
	// group — pin- and abort-mode requests on the same epoch batch
	// together.
	StaleAbort bool
}

// Result is one member's demultiplexed outcome. Exactly one Result is
// delivered per admitted request, always: on success Walk (and Trace when
// requested) are set; on failure Err wraps a sentinel (ErrBatchAborted,
// a context error for pre-flush cancellation, ...).
type Result struct {
	Walk  *core.WalkResult
	Trace *core.Trace
	Batch BatchInfo
	Err   error
}

// FlushReason records what triggered the batch that served a request.
type FlushReason uint8

const (
	// ReasonUnbatched marks a request executed alone on the per-key
	// deterministic path (no scheduler involved).
	ReasonUnbatched FlushReason = iota
	// ReasonSize marks a batch flushed by reaching MaxBatch members.
	ReasonSize
	// ReasonDelay marks a batch flushed by the MaxDelay window expiring.
	ReasonDelay
	// ReasonCached marks a request served from the service's result cache
	// (a stored entry or an in-flight leader's published result) without
	// an execution of its own.
	ReasonCached
)

func (r FlushReason) String() string {
	switch r {
	case ReasonSize:
		return "size"
	case ReasonDelay:
		return "delay"
	case ReasonCached:
		return "cached"
	default:
		return "unbatched"
	}
}

// BatchInfo describes the shared execution that served a request: how
// many walks rode together, the batch's derived seed, what flushed it,
// and the batch's total and amortized (per-walk) simulated cost.
type BatchInfo struct {
	Size      int
	Seed      uint64
	Reason    FlushReason
	Cost      congest.Result
	Amortized congest.Result
}

// pending is one admitted, not-yet-executed request.
type pending struct {
	req Request
	ctx context.Context
	seq uint64 // admission order; last-resort sort tie-break
	out chan Result
	// stop releases the context.AfterFunc cancellation watcher; called
	// when the member leaves the admission queue (flush, drop or close).
	stop func() bool
}

// release stops the member's cancellation watcher, if any.
func (p *pending) release() {
	if p.stop != nil {
		p.stop()
	}
}

// Batch is a flushed group, ready to execute on a worker's walker. The
// executor callback receives it, prepares a walker (network reseeded with
// Seed, walker Reset with Params) and calls Execute — or Abort if no
// walker could be prepared.
type Batch struct {
	Ell       int
	Params    core.Params
	MaxRounds int
	// Seed is the batch's network seed, BatchSeed over the sorted member
	// keys: determinism is per batch composition, not per member.
	Seed   uint64
	Reason FlushReason
	// Topo is the topology epoch shared by every member (part of the
	// compatibility group); the executor prepares its walker against it.
	Topo any

	sched   *Scheduler
	members []*pending
}

// Size returns the number of member requests in the batch.
func (b *Batch) Size() int { return len(b.members) }

// BatchSeed derives a batch's network seed from the service seed and the
// batch's member keys in sorted order, folding each key through the rng
// package's splittable stream construction. Same composition, same seed;
// any member added, dropped or renamed changes it. The member count is
// folded first so that e.g. {0} and {0,0} differ.
func BatchSeed(seed uint64, sortedKeys []uint64) uint64 {
	s := rng.New(seed).Stream(uint64(len(sortedKeys))).Uint64()
	for _, k := range sortedKeys {
		s = rng.New(s).Stream(k).Uint64()
	}
	return s
}

// ExecGroup is the single group-execution path shared by coalesced
// batches and the service's ManyRandomWalks entry point: one
// MANY-RANDOM-WALKS run for all sources, then one shared RegenerateMany
// pass for the walks selected by traceIdx (indices into sources; nil for
// none). The returned traces align with traceIdx. With partial set, walks
// killed by injected faults are reported per walk in ManyResult.Errs
// instead of failing the group; their trace slots (if any) stay nil.
func ExecGroup(w *core.Walker, sources []graph.NodeID, ell int, traceIdx []int, partial bool) (*core.ManyResult, []*core.Trace, error) {
	var many *core.ManyResult
	var err error
	if partial {
		many, err = w.ManyRandomWalksPartial(sources, ell)
	} else {
		many, err = w.ManyRandomWalks(sources, ell)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(traceIdx) == 0 {
		return many, nil, nil
	}
	walks := make([]*core.WalkResult, 0, len(traceIdx))
	live := make([]int, 0, len(traceIdx)) // positions in traceIdx whose walk completed
	for i, idx := range traceIdx {
		if many.Errs != nil && many.Errs[idx] != nil {
			continue
		}
		walks = append(walks, many.Walks[idx])
		live = append(live, i)
	}
	traces := make([]*core.Trace, len(traceIdx))
	if len(walks) > 0 {
		got, err := w.RegenerateMany(walks)
		if err != nil {
			return nil, nil, err
		}
		for j, i := range live {
			traces[i] = got[j]
		}
	}
	return many, traces, nil
}

// Execute runs the batch as one shared group execution on w and delivers
// every member's demultiplexed result: its own walk (endpoint, segments,
// per-walk cost), its trace when requested, and the batch's total and
// amortized cost. w must run on a network reseeded with b.Seed and have
// been Reset with b.Params — the executor callback's contract.
func (b *Batch) Execute(w *core.Walker) {
	sources := make([]graph.NodeID, len(b.members))
	var traceIdx []int
	for i, p := range b.members {
		sources[i] = p.req.Source
		if p.req.Trace {
			traceIdx = append(traceIdx, i)
		}
	}
	many, traces, err := ExecGroup(w, sources, b.Ell, traceIdx, false)
	if err != nil {
		b.Abort(err)
		return
	}
	cost := many.Cost
	traceOf := make(map[int]*core.Trace, len(traceIdx))
	for i, idx := range traceIdx {
		traceOf[idx] = traces[i]
		cost.Add(traces[i].Cost)
	}
	info := BatchInfo{
		Size:      len(b.members),
		Seed:      b.Seed,
		Reason:    b.Reason,
		Cost:      cost,
		Amortized: core.SplitCost(cost, len(b.members)),
	}
	for i, p := range b.members {
		p.out <- Result{Walk: many.Walks[i], Trace: traceOf[i], Batch: info}
	}
	if b.sched != nil {
		b.sched.noteExecuted(info)
	}
}

// Abort completes every member with cause wrapped in ErrBatchAborted. The
// executor calls it when the batch could not run (worker preparation
// failed, pool shutting down); Execute calls it when the shared run
// itself failed, so a member error is always errors.Is-able against both
// ErrBatchAborted and the underlying cause.
func (b *Batch) Abort(cause error) {
	for _, p := range b.members {
		p.out <- Result{Err: fmt.Errorf("%w (request %d): %w", ErrBatchAborted, p.req.Key, cause)}
	}
	if b.sched != nil {
		b.sched.noteAborted(len(b.members))
	}
}
