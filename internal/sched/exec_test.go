package sched

import (
	"context"
	"reflect"
	"testing"
	"time"

	"distwalk/internal/core"
	"distwalk/internal/graph"
)

func torus(t *testing.T) *graph.G {
	t.Helper()
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func walker(t *testing.T, g *graph.G, seed uint64) *core.Walker {
	t.Helper()
	w, err := core.NewWalker(g, seed, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestExecGroupMatchesManyRandomWalks pins the rewiring claim: the shared
// group-execution path without traces is bit-identical to a plain
// ManyRandomWalks call, so routing the service's batch entry point
// through it changes nothing.
func TestExecGroupMatchesManyRandomWalks(t *testing.T) {
	g := torus(t)
	sources := []graph.NodeID{0, 9, 17, 9}
	want, err := walker(t, g, 42).ManyRandomWalks(sources, 500)
	if err != nil {
		t.Fatal(err)
	}
	got, traces, err := ExecGroup(walker(t, g, 42), sources, 500, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if traces != nil {
		t.Fatal("traces requested by nobody")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExecGroup diverged from ManyRandomWalks:\n got %+v\nwant %+v", got, want)
	}
}

// TestExecGroupTraces checks the shared regeneration pass: traced members
// get a full replay of their own walk while the untraced run stays
// untouched.
func TestExecGroupTraces(t *testing.T) {
	g := torus(t)
	sources := []graph.NodeID{3, 11, 3}
	const ell = 400
	many, traces, err := ExecGroup(walker(t, g, 7), sources, ell, []int{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	for i, idx := range []int{0, 2} {
		tr, wr := traces[i], many.Walks[idx]
		if tr.FirstVisitTime[wr.Source] != 0 {
			t.Fatalf("trace %d: source first visit at %d, want 0", i, tr.FirstVisitTime[wr.Source])
		}
		positions := tr.Positions[wr.Destination]
		if len(positions) == 0 || positions[len(positions)-1] != int32(ell) {
			t.Fatalf("trace %d does not end at the walk's destination", i)
		}
	}
}

// realExec executes batches on a fresh walker seeded with the batch seed
// — the same preparation the service's pooled executor performs.
func realExec(t *testing.T, g *graph.G) func(*Batch) {
	return func(b *Batch) {
		w, err := core.NewWalker(g, b.Seed, b.Params)
		if err != nil {
			b.Abort(err)
			return
		}
		b.Execute(w)
	}
}

// TestBatchExecuteDemux runs a real coalesced batch end to end and checks
// the demultiplexed per-member results against a direct MANY-RANDOM-WALKS
// reference on the batch seed.
func TestBatchExecuteDemux(t *testing.T) {
	g := torus(t)
	const ell = 300
	s := New(42, Config{MaxBatch: 4, MaxDelay: time.Hour}, realExec(t, g))
	defer s.Close()
	ctx := context.Background()
	keys := []uint64{20, 5, 11, 8}
	sources := []graph.NodeID{1, 2, 3, 4}
	chans := make([]<-chan Result, len(keys))
	for i := range keys {
		ch, err := s.Submit(ctx, Request{
			Key: keys[i], Source: sources[i], Ell: ell,
			Trace: i == 0, Params: core.DefaultParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	results := make([]Result, len(chans))
	for i, ch := range chans {
		results[i] = <-ch
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
	}

	// Reference: members sorted by key are (5,2) (8,4) (11,3) (20,1).
	seed := BatchSeed(42, []uint64{5, 8, 11, 20})
	ref, err := walker(t, g, seed).ManyRandomWalks([]graph.NodeID{2, 4, 3, 1}, ell)
	if err != nil {
		t.Fatal(err)
	}
	refOf := map[uint64]*core.WalkResult{5: ref.Walks[0], 8: ref.Walks[1], 11: ref.Walks[2], 20: ref.Walks[3]}
	for i, r := range results {
		want := refOf[keys[i]]
		if r.Walk.Source != sources[i] {
			t.Fatalf("member %d: demuxed walk starts at %d, want %d", i, r.Walk.Source, sources[i])
		}
		if r.Walk.Destination != want.Destination || !reflect.DeepEqual(r.Walk.Segments, want.Segments) {
			t.Fatalf("member %d (key %d): demuxed walk diverged from the batch-seed reference", i, keys[i])
		}
		if r.Batch.Size != 4 || r.Batch.Seed != seed {
			t.Fatalf("member %d: batch info %+v, want size 4 seed %d", i, r.Batch, seed)
		}
		if (r.Trace != nil) != (i == 0) {
			t.Fatalf("member %d: trace presence wrong", i)
		}
	}
	// Amortization: the batch cost exceeds any per-walk share, and the
	// amortized share times k stays within the total.
	total := results[0].Batch.Cost
	am := results[0].Batch.Amortized
	if am.Rounds*4 > total.Rounds || am.Rounds <= 0 {
		t.Fatalf("amortized rounds %d inconsistent with total %d over 4 walks", am.Rounds, total.Rounds)
	}
	st := s.Stats()
	if st.BatchedWalks != 4 || st.BatchCost.Rounds != total.Rounds {
		t.Fatalf("stats cost accounting: %+v vs batch total %+v", st, total)
	}
}
