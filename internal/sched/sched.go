package sched

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"distwalk/internal/core"
)

// Defaults applied by Config.withDefaults.
const (
	DefaultMaxBatch = 8
	DefaultMaxDelay = 2 * time.Millisecond
)

// Config tunes the scheduler; zero values take the documented defaults.
type Config struct {
	// MaxBatch flushes a group as soon as it holds this many members
	// (default 8).
	MaxBatch int
	// MaxDelay flushes a non-empty group this long after its oldest
	// member was admitted (default 2ms): the latency a lone request pays
	// waiting for batchmates that never come.
	MaxDelay time.Duration
	// QueueLimit bounds each group's admission queue; Submit beyond it
	// fails with ErrQueueFull (default 4*MaxBatch). A limit below
	// MaxBatch is honored: the size trigger then never fires and batches
	// cap at QueueLimit members, flushed by the delay window.
	QueueLimit int
	// MaxInFlight bounds concurrently executing batches (default 1; the
	// service sets it to its worker-pool size).
	MaxInFlight int
}

func (c Config) withDefaults() Config {
	d := c
	if d.MaxBatch < 1 {
		d.MaxBatch = DefaultMaxBatch
	}
	if d.MaxDelay <= 0 {
		d.MaxDelay = DefaultMaxDelay
	}
	if d.QueueLimit < 1 {
		d.QueueLimit = 4 * d.MaxBatch
	}
	if d.MaxInFlight < 1 {
		d.MaxInFlight = 1
	}
	return d
}

// groupKey is the compatibility class of a request: one MANY-RANDOM-WALKS
// run can serve two requests iff their keys are equal (core.Params is a
// flat comparable struct).
type groupKey struct {
	params    core.Params
	maxRounds int
	ell       int
	topo      any
}

// group is one admission queue plus its flush-window state.
type group struct {
	key     groupKey
	members []*pending
	// due marks the delay window expired for the queued members (set by
	// the timer, and kept for members overflowing a size-triggered cut —
	// they have already waited a full window).
	due   bool
	epoch uint64 // guards stale timer fires; scheduler-unique per arming
	timer *time.Timer
}

// Scheduler coalesces requests into batches and hands them to exec. exec
// runs on a goroutine per batch, must block until the batch has executed
// (the scheduler counts the batch in flight until exec returns), and must
// deliver every member exactly once via Batch.Execute or Batch.Abort.
type Scheduler struct {
	cfg  Config
	seed uint64
	exec func(*Batch)

	mu       sync.Mutex
	groups   map[groupKey]*group
	inFlight int
	seq      uint64
	closed   bool
	st       Stats

	wg sync.WaitGroup
}

// New builds a scheduler deriving batch seeds from seed. See Config for
// the tuning and Scheduler for the exec contract.
func New(seed uint64, cfg Config, exec func(*Batch)) *Scheduler {
	c := cfg.withDefaults()
	return &Scheduler{
		cfg:    c,
		seed:   seed,
		exec:   exec,
		groups: make(map[groupKey]*group),
		st:     Stats{Occupancy: make([]uint64, c.MaxBatch)},
	}
}

// Submit admits req into its group's queue and returns the channel its
// single Result will be delivered on. It fails fast with ErrQueueFull
// when the group's queue is at its limit and with ErrSchedulerClosed
// after Close. ctx is watched only while the request is pending: if it is
// cancelled before the group flushes, the request is dropped from the
// batch (completing with the context error) and the batch runs as if it
// had never been submitted.
func (s *Scheduler) Submit(ctx context.Context, req Request) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w (request %d)", ErrSchedulerClosed, req.Key)
	}
	gk := groupKey{params: req.Params, maxRounds: req.MaxRounds, ell: req.Ell, topo: req.Topo}
	g := s.groups[gk]
	if g == nil {
		g = &group{key: gk}
		s.groups[gk] = g
	}
	// Reap members already cancelled before judging fullness, so a queue
	// of dead requests cannot reject a live one.
	g.members = s.dropCancelledLocked(g.members)
	if len(g.members) >= s.cfg.QueueLimit {
		s.st.Rejected++
		return nil, fmt.Errorf("%w: %d requests pending for this config (request %d)",
			ErrQueueFull, len(g.members), req.Key)
	}
	p := &pending{req: req, ctx: ctx, seq: s.seq, out: make(chan Result, 1)}
	s.seq++
	// Watch for cancellation while pending: the callback wakes the group
	// so the member is dropped (and its caller unblocked) immediately,
	// not at the next flush trigger.
	p.stop = context.AfterFunc(ctx, func() { s.onCancel(gk) })
	g.members = append(g.members, p)
	s.st.Submitted++
	if len(g.members) == 1 {
		s.armTimerLocked(g)
	}
	s.tryFlushLocked(g)
	return p.out, nil
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.Occupancy = append([]uint64(nil), s.st.Occupancy...)
	return st
}

// Close aborts all queued members with ErrBatchAborted, rejects further
// Submits, and waits for in-flight batches to finish executing. Safe to
// call more than once and concurrently with Submit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, g := range s.groups {
			if g.timer != nil {
				g.timer.Stop()
			}
			for _, p := range g.members {
				p.release()
				s.st.Aborted++
				p.out <- Result{Err: fmt.Errorf("%w: request %d still pending at close",
					ErrBatchAborted, p.req.Key)}
			}
		}
		s.groups = make(map[groupKey]*group)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// armTimerLocked starts g's delay window. Epochs are scheduler-unique, so
// a timer surviving its group (or an earlier arming) can never mark a
// later incarnation due.
func (s *Scheduler) armTimerLocked(g *group) {
	g.due = false
	s.seq++
	g.epoch = s.seq
	gk, epoch := g.key, g.epoch
	g.timer = time.AfterFunc(s.cfg.MaxDelay, func() { s.onDelay(gk, epoch) })
}

func (s *Scheduler) onDelay(gk groupKey, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.groups[gk]
	if s.closed || g == nil || g.epoch != epoch {
		return
	}
	g.due = true
	s.tryFlushLocked(g)
}

// onCancel is the pending-member cancellation watcher: waking the group
// makes tryFlushLocked drop the cancelled member(s) right away, so their
// callers unblock without waiting for the delay window.
func (s *Scheduler) onCancel(gk groupKey) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if g := s.groups[gk]; g != nil {
		s.tryFlushLocked(g)
	}
}

// retireLocked removes a drained group. A later Submit recreates it
// fresh; retiring also stops the pending timer so due state cannot leak.
func (s *Scheduler) retireLocked(g *group) {
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.due = false
	if s.groups[g.key] == g {
		delete(s.groups, g.key)
	}
}

// dropCancelledLocked completes and removes members whose context is
// already done, so they never enter a batch's composition.
func (s *Scheduler) dropCancelledLocked(members []*pending) []*pending {
	kept := members[:0]
	for _, p := range members {
		if err := p.ctx.Err(); err != nil {
			p.release()
			s.st.Cancelled++
			p.out <- Result{Err: fmt.Errorf("distwalk: request %d dropped from pending batch: %w",
				p.req.Key, err)}
			continue
		}
		kept = append(kept, p)
	}
	return kept
}

// tryFlushLocked cuts and launches as many batches from g as the flush
// policy (size reached, or delay due) and the in-flight cap allow.
// Cancelled members are dropped before each cut, so the batch's
// composition — and therefore its seed — is fixed only from live members.
func (s *Scheduler) tryFlushLocked(g *group) {
	for !s.closed {
		g.members = s.dropCancelledLocked(g.members)
		if len(g.members) == 0 {
			s.retireLocked(g)
			return
		}
		if s.inFlight >= s.cfg.MaxInFlight {
			return
		}
		reason := ReasonSize
		if len(g.members) < s.cfg.MaxBatch {
			if !g.due {
				return
			}
			reason = ReasonDelay
		}
		cut := min(len(g.members), s.cfg.MaxBatch)
		members := g.members[:cut:cut]
		for _, p := range members {
			// Post-flush cancellation is deliberately not observed: the
			// shared run completes for its surviving members regardless.
			p.release()
		}
		g.members = append([]*pending(nil), g.members[cut:]...)
		if len(g.members) == 0 {
			s.retireLocked(g)
		} else {
			// Overflow members rode the same admission burst; their delay
			// window counts as spent, so they flush as soon as a slot frees
			// instead of waiting out a fresh window.
			g.due = true
		}
		b := s.newBatchLocked(g.key, members, reason)
		s.inFlight++
		s.st.Batches++
		switch reason {
		case ReasonSize:
			s.st.FlushBySize++
		case ReasonDelay:
			s.st.FlushByDelay++
		}
		if cut-1 < len(s.st.Occupancy) {
			s.st.Occupancy[cut-1]++
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.exec(b)
			s.batchDone()
		}()
	}
}

// batchDone frees an execution slot and flushes whatever became eligible
// while it was busy (size-overflow members, delay-due groups).
func (s *Scheduler) batchDone() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inFlight--
	for _, g := range s.groups {
		s.tryFlushLocked(g)
		if s.inFlight >= s.cfg.MaxInFlight {
			return
		}
	}
}

// newBatchLocked fixes a cut's composition: members sorted by key (ties
// by source, then admission order), seed folded from the sorted keys.
func (s *Scheduler) newBatchLocked(gk groupKey, members []*pending, reason FlushReason) *Batch {
	sort.Slice(members, func(i, j int) bool {
		a, b := members[i], members[j]
		if a.req.Key != b.req.Key {
			return a.req.Key < b.req.Key
		}
		if a.req.Source != b.req.Source {
			return a.req.Source < b.req.Source
		}
		return a.seq < b.seq
	})
	keys := make([]uint64, len(members))
	for i, p := range members {
		keys[i] = p.req.Key
	}
	return &Batch{
		Ell:       gk.ell,
		Params:    gk.params,
		MaxRounds: gk.maxRounds,
		Seed:      BatchSeed(s.seed, keys),
		Reason:    reason,
		Topo:      gk.topo,
		sched:     s,
		members:   members,
	}
}

// AbortPending evicts queued (not yet flushed) members matching match,
// completing each with a Result whose Err wraps cause, and returns the
// number evicted. Batches already cut keep their composition — the epoch
// they admitted under executes them. The service uses this on topology
// mutation to fail fast the pending abort-mode members of the dead
// epoch; pin-mode members stay queued and execute against their pinned
// snapshot.
func (s *Scheduler) AbortPending(match func(Request) bool, cause error) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	n := 0
	for _, g := range s.groups {
		kept := g.members[:0]
		for _, p := range g.members {
			if !match(p.req) {
				kept = append(kept, p)
				continue
			}
			p.release()
			s.st.Aborted++
			n++
			p.out <- Result{Err: fmt.Errorf("distwalk: request %d dropped from pending batch: %w",
				p.req.Key, cause)}
		}
		g.members = kept
		if len(g.members) == 0 {
			s.retireLocked(g)
		}
	}
	return n
}

func (s *Scheduler) noteExecuted(info BatchInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.BatchedWalks += uint64(info.Size)
	s.st.BatchCost.Add(info.Cost)
}

func (s *Scheduler) noteAborted(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.st.Aborted += uint64(n)
}
