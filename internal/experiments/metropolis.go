package experiments

import (
	"math"

	"distwalk/internal/core"
	"distwalk/internal/dist"
	"distwalk/internal/graph"
)

// E12 — extension: Metropolis-Hastings walks. The paper focuses on the
// simple walk "for the sake of obtaining the best possible bounds" but
// notes its predecessor (Das Sarma et al., PODC 2009) handles the more
// general Metropolis-Hastings walk (Section 1.3). This implementation
// supports MH with uniform target through the same stitching machinery;
// the experiment shows (a) the sampled endpoints flatten to the uniform
// distribution on a degree-skewed graph where the simple walk stays
// degree-biased, and (b) stay steps are free, so the MH walk's round cost
// stays below its step count.
var e12 = Experiment{
	ID:    "E12",
	Title: "extension: Metropolis-Hastings uniform sampling",
	Claim: "stitched MH walks sample the uniform distribution on skewed graphs (PODC'09 generality, Section 1.3)",
	Run: func(cfg Config) error {
		// A candy graph: clique nodes have high degree, tail nodes low.
		g, err := graph.Candy(8, 8)
		if err != nil {
			return err
		}
		const (
			source = graph.NodeID(0)
			ell    = 400
		)
		samples := cfg.Scale.pick(2000, 6000, 20000)
		uniform := dist.Uniform(g.N())
		stationary, err := dist.Stationary(g)
		if err != nil {
			return err
		}

		t := newTable("walk", "TV(endpoints, uniform)", "TV(endpoints, degree-stationary)", "avg rounds/walk")
		for _, mh := range []bool{false, true} {
			label := "simple"
			prm := core.DefaultParams()
			if mh {
				label = "Metropolis-Hastings"
				prm.Metropolis = true
			}
			w, err := core.NewWalker(g, cfg.Seed, prm)
			if err != nil {
				return err
			}
			counts := make([]int, g.N())
			rounds := 0
			for i := 0; i < samples; i++ {
				res, err := w.SingleRandomWalk(source, ell)
				if err != nil {
					return err
				}
				counts[res.Destination]++
				rounds += res.Cost.Rounds
			}
			emp := make(dist.Vec, g.N())
			for v, c := range counts {
				emp[v] = float64(c) / float64(samples)
			}
			t.addRow(label, emp.TV(uniform), emp.TV(stationary),
				math.Round(float64(rounds)/float64(samples)))
		}
		t.print(cfg.Out)
		cfg.printf("shape: the simple walk tracks the degree distribution, MH tracks uniform\n\n")
		return nil
	},
}
