package experiments

import (
	"errors"
	"fmt"
	"math"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
	"distwalk/internal/pathverify"
	"distwalk/internal/rng"
	"distwalk/internal/stats"
)

// E6 — Section 3 (Theorems 3.2 and 3.7, Figures 3-5): on the hard
// instance G_n, PATH-VERIFICATION needs Ω(√(ℓ/log ℓ)) rounds even though
// the diameter is O(log n); and on the weighted variant G'_n a random walk
// follows the path w.h.p., transferring the bound to random walks. We run
// the natural interval-merging verifier on G_n across sizes: measured
// rounds must sit above the k = √(ℓ/log ℓ) bound, grow ≈ √ℓ, and stay far
// below the Θ(ℓ) a bare path needs — while D stays logarithmic. The
// forced-walk column reports how often the G'_n walk traced P exactly.
var e6 = Experiment{
	ID:    "E6",
	Title: "path-verification lower bound on G_n",
	Claim: "Ω(√(ℓ/log ℓ)) rounds on a D=O(log n) graph (Theorem 3.2); G'_n forces walks onto P (Theorem 3.7)",
	Run: func(cfg Config) error {
		maxN := cfg.Scale.pick(4096, 16384, 65536)
		t := newTable("ell(=n')", "D", "k=√(ℓ/logℓ)", "rounds", "rounds/√ℓ", "path-graph rounds")
		var ells, rounds []float64
		for n := maxN / 16; n <= maxN; n *= 4 {
			lb, err := graph.NewLowerBound(n, 0)
			if err != nil {
				return err
			}
			order, err := pathverify.GnOrder(lb, lb.PathLen)
			if err != nil {
				return err
			}
			net := congest.NewNetwork(lb.G, cfg.Seed)
			res, err := pathverify.Verify(net, order, lb.PathLen)
			if err != nil {
				return err
			}
			if !res.Verified {
				return errNotVerified
			}
			diam, err := lb.G.ApproxDiameter()
			if err != nil {
				return err
			}
			// Reference: the same verifier on a bare path needs Θ(ℓ)
			// rounds; run it only at the smallest size (it is the slow one,
			// that being the point).
			pathRounds := "≈ℓ (skipped)"
			if n == maxN/16 {
				pg, err := graph.Path(lb.PathLen)
				if err != nil {
					return err
				}
				pnet := congest.NewNetwork(pg, cfg.Seed)
				porder := make([]int32, lb.PathLen)
				for i := range porder {
					porder[i] = int32(i + 1)
				}
				pres, err := pathverify.Verify(pnet, porder, lb.PathLen)
				if err != nil {
					return err
				}
				pathRounds = fmt.Sprint(pres.Rounds)
			}
			sq := math.Sqrt(float64(lb.PathLen))
			t.addRow(lb.PathLen, diam, lb.K, res.Rounds, float64(res.Rounds)/sq, pathRounds)
			ells = append(ells, float64(lb.PathLen))
			rounds = append(rounds, float64(res.Rounds))
		}
		t.print(cfg.Out)
		slope, err := stats.LogLogSlope(ells, rounds)
		if err != nil {
			return err
		}
		cfg.printf("growth exponent on G_n: %.2f (want ≈0.5; bare path is 1.0)\n", slope)

		// Theorem 3.8: giving the PATH edges unbounded capacity does not
		// break the bound — the tree edges are the bottleneck. Re-run the
		// mid-size instance with huge capacity on P only.
		{
			n := maxN / 4
			lb, err := graph.NewLowerBound(n, 0)
			if err != nil {
				return err
			}
			order, err := pathverify.GnOrder(lb, lb.PathLen)
			if err != nil {
				return err
			}
			pathLen := lb.PathLen
			net := congest.NewNetwork(lb.G, cfg.Seed, congest.WithEdgeCapFunc(
				func(from, to graph.NodeID) int {
					if int(from) < pathLen && int(to) < pathLen {
						return 1 << 20 // "infinite" capacity on P's edges
					}
					return 1 // CONGEST budget on tree edges
				}))
			res, err := pathverify.Verify(net, order, lb.PathLen)
			if err != nil {
				return err
			}
			if !res.Verified {
				return errNotVerified
			}
			cfg.printf("Theorem 3.8 check (ℓ=%d): unbounded capacity on P still needs %d rounds (vs k=%d bound)\n",
				lb.PathLen, res.Rounds, lb.K)
		}

		// Forced walk on G'_n.
		lb, err := graph.NewLowerBound(maxN/16, 0)
		if err != nil {
			return err
		}
		r := rng.New(cfg.Seed)
		trials := cfg.Scale.pick(200, 500, 1000)
		followed := 0
		for i := 0; i < trials; i++ {
			res, err := pathverify.ForcedWalk(lb, lb.PathLen-1, r)
			if err != nil {
				return err
			}
			if res.FollowedPath {
				followed++
			}
		}
		cfg.printf("forced walk on G'_n (n=%d): followed P %d/%d times (want ≥ 1-1/n)\n\n",
			lb.G.N(), followed, trials)
		return nil
	},
}

var errNotVerified = errors.New("E6: verification did not complete")
