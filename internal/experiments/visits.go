package experiments

import (
	"fmt"
	"math"

	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// E3 — Lemma 2.6: in any ℓ-step walk (ℓ = O(m²)), no node y is visited
// more than Õ(d(y)·√ℓ) times w.h.p. We simulate walks (the lemma is about
// the walk process itself, so a local simulation suffices and lets ℓ grow
// large) and report max_y visits(y)/(d(y)·√(ℓ+1)·ln n), which must stay
// bounded by a small constant across graphs and lengths.
var e3 = Experiment{
	ID:    "E3",
	Title: "visit-count bound",
	Claim: "max visits to y ≤ O(d(y)·√ℓ·log n) for any ℓ-step walk (Lemma 2.6)",
	Run: func(cfg Config) error {
		trials := cfg.Scale.pick(5, 10, 20)
		maxEll := cfg.Scale.pick(100_000, 400_000, 1_600_000)
		families := []struct {
			name string
			g    func() (*graph.G, error)
		}{
			{"cycle(256)", func() (*graph.G, error) { return graph.Cycle(256) }},
			{"torus(16x16)", func() (*graph.G, error) { return graph.Torus(16, 16) }},
			{"candy(8,64)", func() (*graph.G, error) { return graph.Candy(8, 64) }},
			{"star(128)", func() (*graph.G, error) { return graph.Star(128) }},
		}
		t := newTable("graph", "ell", "max_y N(y)/(d(y)·√(ℓ+1)·ln n)")
		for _, fam := range families {
			g, err := fam.g()
			if err != nil {
				return err
			}
			r := rng.New(cfg.Seed).Stream(uint64(len(fam.name)))
			for ell := maxEll / 100; ell <= maxEll; ell *= 10 {
				worst := 0.0
				for trial := 0; trial < trials; trial++ {
					norm, err := normalizedMaxVisits(g, ell, r)
					if err != nil {
						return err
					}
					if norm > worst {
						worst = norm
					}
				}
				t.addRow(fam.name, ell, worst)
			}
		}
		t.print(cfg.Out)
		cfg.printf("shape: the normalized maximum stays O(1) across graphs and two decades of ℓ\n\n")
		return nil
	},
}

// normalizedMaxVisits simulates one ℓ-step walk from node 0 and returns
// max_y N(y)/(d(y)·√(ℓ+1)·ln n).
func normalizedMaxVisits(g *graph.G, ell int, r *rng.RNG) (float64, error) {
	visits := make([]int, g.N())
	cur := graph.NodeID(0)
	visits[cur]++
	for i := 0; i < ell; i++ {
		next, err := g.Step(r, cur)
		if err != nil {
			return 0, err
		}
		cur = next
		visits[cur]++
	}
	scale := math.Sqrt(float64(ell)+1) * math.Log(float64(g.N()))
	worst := 0.0
	for v, n := range visits {
		norm := float64(n) / (float64(g.Degree(graph.NodeID(v))) * scale)
		if norm > worst {
			worst = norm
		}
	}
	return worst, nil
}

// E4 — Lemma 2.7: a node visited t times in the walk appears as a
// connector at most ~t·polylog/λ times, thanks to the random short-walk
// lengths. We count connector appearances per node on stitched walks and
// report the worst ratio connectors(y)·λ/t(y).
var e4 = Experiment{
	ID:    "E4",
	Title: "connector-count bound",
	Claim: "a node visited t times is a connector ≤ t·(log n)²/λ times (Lemma 2.7)",
	Run: func(cfg Config) error {
		ell := cfg.Scale.pick(4096, 16384, 65536)
		lambda := cfg.Scale.pick(32, 64, 128)
		trials := cfg.Scale.pick(5, 10, 20)
		g, err := graph.Cycle(128)
		if err != nil {
			return err
		}
		cfg.printf("   graph: cycle(128), ℓ=%d, λ=%d, η=6\n", ell, lambda)
		logSq := math.Pow(math.Log2(float64(g.N())), 2)
		t := newTable("trial", "max_y connectors(y)·λ/(visits(y)·(log n)²)   (bound: 1)")
		done := 0
		for seed := cfg.Seed; done < trials; seed++ {
			// η=6 provisions enough coupons that refills (which defeat
			// retracing) are rare; skip the rare refill walk.
			prm := core.Params{Lambda: lambda, LambdaC: 1, Eta: 6}
			w, err := core.NewWalker(g, seed, prm)
			if err != nil {
				return err
			}
			res, err := w.SingleRandomWalk(0, ell)
			if err != nil {
				return err
			}
			if res.Refills > 0 {
				continue
			}
			visits, err := visitCounts(w, res)
			if err != nil {
				return err
			}
			connectors := make(map[graph.NodeID]int)
			for _, s := range res.Segments {
				connectors[s.Start]++
			}
			worst := 0.0
			for v, c := range connectors {
				tv := visits[v]
				if tv == 0 {
					tv = 1
				}
				ratio := float64(c) * float64(lambda) / (float64(tv) * logSq)
				if ratio > worst {
					worst = ratio
				}
			}
			t.addRow(done, worst)
			done++
		}
		t.print(cfg.Out)
		cfg.printf("shape: normalized connector share stays below 1 (Lemma 2.7's t·(log n)²/λ)\n\n")
		return nil
	},
}

// connectorStats runs one stitched walk with the given short-walk policy
// and returns its result (used by the E10 ablation).
func connectorStats(g *graph.G, seed uint64, ell, lambda int, fixed bool) (*core.WalkResult, error) {
	prm := core.Params{Lambda: lambda, LambdaC: 1, Eta: 1, FixedLength: fixed}
	w, err := core.NewWalker(g, seed, prm)
	if err != nil {
		return nil, err
	}
	return w.SingleRandomWalk(0, ell)
}

func visitCounts(w *core.Walker, res *core.WalkResult) ([]int, error) {
	trace, err := w.Regenerate(res)
	if err != nil {
		return nil, err
	}
	visits := make([]int, len(trace.Positions))
	for v := range trace.Positions {
		visits[v] = len(trace.Positions[v])
	}
	return visits, nil
}

// E10 — ablation of the paper's key fix (random short-walk lengths in
// [λ, 2λ−1], Lemma 2.7). On a cycle, fixed-length short walks make
// connector placement periodic: the same nodes recur as connectors,
// draining their coupons and triggering GET-MORE-WALKS; random lengths
// spread connectors out.
var e10 = Experiment{
	ID:    "E10",
	Title: "ablation: random vs fixed short-walk lengths",
	Claim: "random lengths in [λ,2λ-1] spread connectors; fixed lengths concentrate them (Lemma 2.7)",
	Run: func(cfg Config) error {
		ell := cfg.Scale.pick(4096, 16384, 65536)
		lambda := cfg.Scale.pick(32, 64, 128)
		trials := cfg.Scale.pick(5, 10, 20)
		g, err := graph.Cycle(64)
		if err != nil {
			return err
		}
		cfg.printf("   graph: cycle(64), ℓ=%d, λ=%d, η=1\n", ell, lambda)
		t := newTable("lengths", "avg refills/walk", "distinct connectors / stitches")
		for _, fixed := range []bool{false, true} {
			label := "random [λ,2λ)"
			if fixed {
				label = "fixed λ"
			}
			refills, distinct, stitches := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				res, err := connectorStats(g, cfg.Seed+uint64(trial), ell, lambda, fixed)
				if err != nil {
					return err
				}
				refills += res.Refills
				seen := make(map[graph.NodeID]bool)
				for _, s := range res.Segments {
					seen[s.Start] = true
				}
				distinct += len(seen)
				stitches += len(res.Segments)
			}
			t.addRow(label, float64(refills)/float64(trials),
				fmt.Sprintf("%.2f", float64(distinct)/float64(stitches)))
		}
		t.print(cfg.Out)
		cfg.printf("shape: fixed lengths refill more (coupon pools drain under periodic connectors)\n\n")
		return nil
	},
}

// E11 — ablation of degree-proportional provisioning: Phase 1 prepares
// η·deg(v) walks per node precisely because the visit bound (Lemma 2.6)
// scales with d(y). With uniform counts, hub nodes of a star exhaust
// their coupons and force refills.
var e11 = Experiment{
	ID:    "E11",
	Title: "ablation: degree-proportional vs uniform Phase 1 counts",
	Claim: "η·deg(v) walks per node match the d(y)-proportional visit bound (Lemma 2.6)",
	Run: func(cfg Config) error {
		ell := cfg.Scale.pick(2048, 8192, 32768)
		trials := cfg.Scale.pick(5, 10, 20)
		g, err := graph.Star(64)
		if err != nil {
			return err
		}
		cfg.printf("   graph: star(64), ℓ=%d\n", ell)
		t := newTable("phase-1 counts", "avg refills/walk", "avg rounds")
		for _, uniform := range []bool{false, true} {
			label := "η·deg(v) (paper)"
			if uniform {
				label = "η per node (DNP09)"
			}
			refills, rounds := 0, 0
			for trial := 0; trial < trials; trial++ {
				prm := core.DefaultParams()
				prm.UniformCounts = uniform
				w, err := core.NewWalker(g, cfg.Seed+uint64(trial), prm)
				if err != nil {
					return err
				}
				res, err := w.SingleRandomWalk(1, ell) // start at a leaf
				if err != nil {
					return err
				}
				refills += res.Refills
				rounds += res.Cost.Rounds
			}
			t.addRow(label, float64(refills)/float64(trials), float64(rounds)/float64(trials))
		}
		t.print(cfg.Out)
		cfg.printf("shape: uniform counts starve the hub and refill more\n\n")
		return nil
	},
}
