package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d is %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E7"); !ok {
		t.Fatal("E7 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"": Small, "small": Small, "medium": Medium, "large": Large} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("scale names wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("a", "b")
	tb.addRow(1, 2.5)
	tb.addRow("x", "y")
	var buf bytes.Buffer
	tb.print(&buf)
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "2.500") || !strings.Contains(out, "x") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
}

// TestAllExperimentsRun executes every experiment at small scale; this is
// the harness's own integration test and doubles as the generator of the
// reproduction tables (EXPERIMENTS.md quotes a run of cmd/walkbench).
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take ~30s at small scale")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := Config{Seed: 42, Scale: Small, Out: &buf}
			if err := Run(e, cfg); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}
