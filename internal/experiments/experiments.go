// Package experiments is the reproduction harness: one experiment per
// quantitative claim of the paper (see DESIGN.md section 3 for the full
// index). Each experiment generates its workload, runs the algorithms on
// the CONGEST simulator, and prints the table/series the claim is judged
// by; EXPERIMENTS.md records paper-vs-measured for every run.
//
// The same experiment bodies back cmd/walkbench and the root-level
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Scale selects the workload size. Small finishes in seconds per
// experiment and is the default everywhere; Medium/Large sharpen the
// asymptotic shapes at more cost.
type Scale int

// Scale values.
const (
	Small Scale = iota + 1
	Medium
	Large
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("experiments: unknown scale %q (want small|medium|large)", s)
}

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// pick returns the size for the current scale.
func (s Scale) pick(small, medium, large int) int {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}

// Config parameterizes an experiment run.
type Config struct {
	Seed  uint64
	Scale Scale
	Out   io.Writer
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// Experiment is one reproducible claim.
type Experiment struct {
	ID    string
	Title string
	// Claim is the paper statement being reproduced.
	Claim string
	Run   func(cfg Config) error
}

var registry = []Experiment{
	e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12,
}

// All returns every registered experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return less(out[i].ID, out[j].ID) })
	return out
}

// less orders E1 < E2 < ... < E10 < E11 numerically.
func less(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table renders aligned output rows.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table {
	return &table{headers: headers}
}

func (t *table) addRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) print(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

func header(cfg Config, e Experiment) {
	cfg.printf("== %s: %s (scale=%s, seed=%d)\n", e.ID, e.Title, cfg.Scale, cfg.Seed)
	cfg.printf("   claim: %s\n", e.Claim)
}

// Run executes e under cfg, printing the standard header first.
func Run(e Experiment, cfg Config) error {
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.Scale == 0 {
		cfg.Scale = Small
	}
	header(cfg, e)
	return e.Run(cfg)
}
