package experiments

import (
	"fmt"
	"math"

	"distwalk/internal/core"
	"distwalk/internal/dist"
	"distwalk/internal/graph"
	"distwalk/internal/stats"
)

// E1 — Theorem 2.5: SINGLE-RANDOM-WALK runs in Õ(√(ℓD)) rounds, beating
// both the naive O(ℓ) token walk and the PODC'09 Õ(ℓ^{2/3}D^{1/3})
// algorithm. We sweep ℓ on a torus and fit growth exponents; the shape to
// reproduce is slope(ours) ≈ 0.5 < slope(DNP09) ≈ 0.67 < slope(naive) = 1,
// with ours fastest at large ℓ.
var e1 = Experiment{
	ID:    "E1",
	Title: "single-walk round scaling in ℓ",
	Claim: "Õ(√(ℓD)) vs DNP09 Õ(ℓ^{2/3}D^{1/3}) vs naive O(ℓ) (Theorem 2.5)",
	Run: func(cfg Config) error {
		dim := cfg.Scale.pick(16, 24, 32)
		steps := cfg.Scale.pick(5, 6, 7)
		g, err := graph.Torus(dim, dim)
		if err != nil {
			return err
		}
		diam, err := g.Diameter()
		if err != nil {
			return err
		}
		cfg.printf("   graph: torus %dx%d (n=%d, m=%d, D=%d)\n", dim, dim, g.N(), g.M(), diam)

		t := newTable("ell", "fast(rounds)", "dnp09(rounds)", "naive(rounds)", "fast/naive")
		var ells, fast, dnp, naive []float64
		ell := 1024
		for i := 0; i < steps; i++ {
			fr, err := walkRounds(g, cfg.Seed+uint64(i), core.DefaultParams(), ell)
			if err != nil {
				return err
			}
			dr, err := walkRounds(g, cfg.Seed+uint64(i), core.DNP09Params(ell, diam), ell)
			if err != nil {
				return err
			}
			nr, err := naiveRounds(g, cfg.Seed+uint64(i), ell)
			if err != nil {
				return err
			}
			t.addRow(ell, fr, dr, nr, float64(fr)/float64(nr))
			ells = append(ells, float64(ell))
			fast = append(fast, float64(fr))
			dnp = append(dnp, float64(dr))
			naive = append(naive, float64(nr))
			ell *= 2
		}
		t.print(cfg.Out)
		sf, err := stats.LogLogSlope(ells, fast)
		if err != nil {
			return err
		}
		sd, err := stats.LogLogSlope(ells, dnp)
		if err != nil {
			return err
		}
		sn, err := stats.LogLogSlope(ells, naive)
		if err != nil {
			return err
		}
		cfg.printf("growth exponents: fast=%.2f (want ≈0.5)  dnp09=%.2f (want ≈0.67)  naive=%.2f (want ≈1.0)\n\n",
			sf, sd, sn)
		return nil
	},
}

// E2 — Theorem 2.5's D-dependence: at fixed ℓ, rounds grow like √D. Candy
// graphs (clique + path tail) vary D freely.
var e2 = Experiment{
	ID:    "E2",
	Title: "single-walk round scaling in D",
	Claim: "rounds ≈ √(ℓD) at fixed ℓ (Theorem 2.5); the naive walk is D-insensitive",
	Run: func(cfg Config) error {
		ell := cfg.Scale.pick(8192, 32768, 131072)
		clique := cfg.Scale.pick(12, 16, 20)
		t := newTable("D", "fast(rounds)", "naive(rounds)")
		var ds, fast []float64
		for _, tail := range []int{8, 16, 32, 64, 128} {
			g, err := graph.Candy(clique, tail)
			if err != nil {
				return err
			}
			diam := tail + 1
			fr, err := walkRounds(g, cfg.Seed, core.DefaultParams(), ell)
			if err != nil {
				return err
			}
			nr, err := naiveRounds(g, cfg.Seed, ell)
			if err != nil {
				return err
			}
			t.addRow(diam, fr, nr)
			ds = append(ds, float64(diam))
			fast = append(fast, float64(fr))
		}
		t.print(cfg.Out)
		slope, err := stats.LogLogSlope(ds, fast)
		if err != nil {
			return err
		}
		cfg.printf("growth exponent in D: %.2f (want ≈0.5)\n\n", slope)
		return nil
	},
}

// E5 — Theorem 2.8: k walks in Õ(min(√(kℓD)+k, k+ℓ)) rounds. Sweep k at
// fixed ℓ and compare with the all-naive token fallback.
var e5 = Experiment{
	ID:    "E5",
	Title: "many-walks round scaling in k",
	Claim: "k walks in Õ(min(√(kℓD)+k, k+ℓ)) rounds (Theorem 2.8)",
	Run: func(cfg Config) error {
		dim := cfg.Scale.pick(12, 16, 24)
		ell := cfg.Scale.pick(4096, 16384, 65536)
		g, err := graph.Torus(dim, dim)
		if err != nil {
			return err
		}
		cfg.printf("   graph: torus %dx%d, ℓ=%d\n", dim, dim, ell)
		t := newTable("k", "many(rounds)", "naive-k(rounds)", "many/naive")
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			sources := make([]graph.NodeID, k)
			for i := range sources {
				sources[i] = graph.NodeID(i % g.N())
			}
			w, err := core.NewWalker(g, cfg.Seed, core.DefaultParams())
			if err != nil {
				return err
			}
			res, err := w.ManyRandomWalks(sources, ell)
			if err != nil {
				return err
			}
			// Naive baseline: force the token fallback with λ > ℓ.
			nw, err := core.NewWalker(g, cfg.Seed, core.Params{Lambda: ell + 1, LambdaC: 1, Eta: 1})
			if err != nil {
				return err
			}
			nres, err := nw.ManyRandomWalks(sources, ell)
			if err != nil {
				return err
			}
			if !nres.NaiveFallback {
				return fmt.Errorf("E5: baseline did not fall back to naive")
			}
			t.addRow(k, res.Cost.Rounds, nres.Cost.Rounds,
				float64(res.Cost.Rounds)/float64(nres.Cost.Rounds))
		}
		t.print(cfg.Out)
		cfg.printf("shape: many-walk rounds grow ≈√k (plus k), staying below the naive token walks\n\n")
		return nil
	},
}

// E9 — the Las Vegas claim behind Theorem 2.5 (and Figure 2's stitching):
// the stitched walk's endpoint follows the exact ℓ-step distribution. TV
// distance to the exact distribution must shrink like 1/√samples.
var e9 = Experiment{
	ID:    "E9",
	Title: "endpoint distribution correctness",
	Claim: "SINGLE-RANDOM-WALK samples the exact ℓ-step distribution (Theorem 2.5, Las Vegas)",
	Run: func(cfg Config) error {
		g, err := graph.Candy(4, 2)
		if err != nil {
			return err
		}
		const (
			source = graph.NodeID(5)
			ell    = 30
		)
		exact, err := dist.WalkDist(g, source, ell)
		if err != nil {
			return err
		}
		w, err := core.NewWalker(g, cfg.Seed, core.Params{Lambda: 3, LambdaC: 1, Eta: 1})
		if err != nil {
			return err
		}
		t := newTable("samples", "TV(empirical, exact)", "1/sqrt(samples)")
		budget := cfg.Scale.pick(4000, 16000, 64000)
		counts := make([]int, g.N())
		done := 0
		for _, target := range []int{budget / 16, budget / 4, budget} {
			for ; done < target; done++ {
				res, err := w.SingleRandomWalk(source, ell)
				if err != nil {
					return err
				}
				counts[res.Destination]++
			}
			emp := make(dist.Vec, g.N())
			for v, c := range counts {
				emp[v] = float64(c) / float64(done)
			}
			t.addRow(done, emp.TV(exact), 1/math.Sqrt(float64(done)))
		}
		t.print(cfg.Out)
		cfg.printf("shape: TV falls with samples at the Monte-Carlo rate — the sampler is exact\n\n")
		return nil
	},
}

// walkRounds runs one SINGLE-RANDOM-WALK on a fresh walker and returns the
// total rounds.
func walkRounds(g *graph.G, seed uint64, prm core.Params, ell int) (int, error) {
	w, err := core.NewWalker(g, seed, prm)
	if err != nil {
		return 0, err
	}
	res, err := w.SingleRandomWalk(0, ell)
	if err != nil {
		return 0, err
	}
	return res.Cost.Rounds, nil
}

func naiveRounds(g *graph.G, seed uint64, ell int) (int, error) {
	w, err := core.NewWalker(g, seed, core.DefaultParams())
	if err != nil {
		return 0, err
	}
	res, err := w.NaiveWalk(0, ell)
	if err != nil {
		return 0, err
	}
	return res.Cost.Rounds, nil
}
