package experiments

import (
	"fmt"

	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
	"distwalk/internal/spanning"
	"distwalk/internal/spectral"
	"distwalk/internal/stats"

	"distwalk/internal/mixing"
)

// E7 — Theorem 4.1: the RST driver (a) produces uniformly distributed
// spanning trees, validated by chi-square against the exact matrix-tree
// counts with Wilson's algorithm as a control, and (b) costs far fewer
// rounds than naively token-walking the same cover schedule, with the
// margin growing in n.
var e7 = Experiment{
	ID:    "E7",
	Title: "random spanning tree: uniformity and rounds",
	Claim: "uniform spanning tree in Õ(√(mD)) rounds vs O(mD) cover time (Theorem 4.1)",
	Run: func(cfg Config) error {

		// (a) Uniformity on small graphs with known tree sets.
		samples := cfg.Scale.pick(1500, 4000, 10000)
		ut := newTable("graph", "#trees", "sampler", "chi² p-value")
		for _, fam := range []struct {
			name string
			g    func() (*graph.G, error)
		}{
			{"K4", func() (*graph.G, error) { return graph.Complete(4) }},
			{"C5", func() (*graph.G, error) { return graph.Cycle(5) }},
			{"candy(3,2)", func() (*graph.G, error) { return graph.Candy(3, 2) }},
		} {
			g, err := fam.g()
			if err != nil {
				return err
			}
			keys, err := spanning.EnumerateTrees(g)
			if err != nil {
				return err
			}
			idx := make(map[string]int, len(keys))
			for i, k := range keys {
				idx[k] = i
			}
			// Distributed Aldous-Broder driver.
			abCounts := make([]int, len(keys))
			for i := 0; i < samples; i++ {
				w, err := core.NewWalker(g, cfg.Seed+uint64(i), core.DefaultParams())
				if err != nil {
					return err
				}
				res, err := spanning.RandomSpanningTree(w, 0, spanning.Options{StartLength: 32 * g.M()})
				if err != nil {
					return err
				}
				j, ok := idx[spanning.TreeKey(res.Parent)]
				if !ok {
					return fmt.Errorf("E7: unknown tree on %s", fam.name)
				}
				abCounts[j]++
			}
			pAB, err := stats.UniformityPValue(abCounts)
			if err != nil {
				return err
			}
			// Wilson control.
			r := rng.New(cfg.Seed)
			wCounts := make([]int, len(keys))
			for i := 0; i < samples; i++ {
				parent, err := spanning.Wilson(g, 0, r)
				if err != nil {
					return err
				}
				wCounts[idx[spanning.TreeKey(parent)]]++
			}
			pW, err := stats.UniformityPValue(wCounts)
			if err != nil {
				return err
			}
			ut.addRow(fam.name, len(keys), "Aldous-Broder (distributed)", pAB)
			ut.addRow(fam.name, len(keys), "Wilson (control)", pW)
		}
		ut.print(cfg.Out)

		// (b) Round scaling.
		rt := newTable("graph", "coverLen", "RST rounds", "naive schedule", "speedup")
		maxDim := cfg.Scale.pick(16, 24, 32)
		for dim := 8; dim <= maxDim; dim += 4 {
			g, err := graph.Torus(dim, dim)
			if err != nil {
				return err
			}
			w, err := core.NewWalker(g, cfg.Seed, core.DefaultParams())
			if err != nil {
				return err
			}
			res, err := spanning.RandomSpanningTree(w, 0, spanning.Options{})
			if err != nil {
				return err
			}
			if err := spanning.ValidateTree(g, 0, res.Parent); err != nil {
				return err
			}
			perPhase := res.Attempts / res.Phases
			naive := 0
			for p, ell := 0, g.N(); p < res.Phases; p, ell = p+1, ell*2 {
				naive += perPhase * ell
			}
			rt.addRow(fmt.Sprintf("torus %dx%d", dim, dim), res.WalkLength,
				res.Cost.Rounds, naive, float64(naive)/float64(res.Cost.Rounds))
		}
		rt.print(cfg.Out)
		cfg.printf("shape: uniform p-values comparable to the exact sampler; speedup grows with n\n\n")
		return nil
	},
}

// E8 — Theorem 4.6: the decentralized estimate τ̃ brackets the true
// mixing time (τ_mix ≤ τ̃ ≤ τ^x(ε)) and costs far less than naively
// running K walks of length τ. Families span slow (cycle) to fast
// (expander) mixing; the RGG row shows the τ ≫ D gap the paper cites as
// the motivation (Section 1.2).
var e8 = Experiment{
	ID:    "E8",
	Title: "decentralized mixing-time estimation",
	Claim: "τ_mix ≤ τ̃ ≤ τ^x(ε) in Õ(n^{1/2}+n^{1/4}√(Dτ)) rounds (Theorem 4.6)",
	Run: func(cfg Config) error {
		t := newTable("graph", "D", "exact τ(loose)", "exact τ(tight)", "τ̃", "rounds", "naive K·τ̃")
		fams := []struct {
			name string
			g    func() (*graph.G, error)
		}{
			{"cycle(41)", func() (*graph.G, error) { return graph.Cycle(41) }},
			{"torus(5x5)", func() (*graph.G, error) { return graph.Torus(5, 5) }},
			{"4-regular(64)", func() (*graph.G, error) {
				return graph.ConnectedRandomRegular(64, 4, rng.New(cfg.Seed), 500)
			}},
			{"RGG(96)", func() (*graph.G, error) {
				return graph.ConnectedRGG(96, graph.RGGThresholdRadius(96), rng.New(cfg.Seed), 500)
			}},
		}
		for _, fam := range fams {
			g, err := fam.g()
			if err != nil {
				return err
			}
			diam, err := g.Diameter()
			if err != nil {
				return err
			}
			exLoose, err := spectral.MixingTimeFrom(g, 0, 0.7, 4_000_000)
			if err != nil {
				return err
			}
			exTight, err := spectral.MixingTimeFrom(g, 0, 0.05, 4_000_000)
			if err != nil {
				return err
			}
			w, err := core.NewWalker(g, cfg.Seed, core.DefaultParams())
			if err != nil {
				return err
			}
			est, err := mixing.EstimateTau(w, 0, mixing.Options{})
			if err != nil {
				return err
			}
			t.addRow(fam.name, diam, exLoose, exTight, est.Tau,
				est.Cost.Rounds, est.Samples*est.Tau)
		}
		t.print(cfg.Out)
		cfg.printf("shape: τ̃ lands between the loose and tight exact values; rounds ≪ K·τ̃;\n")
		cfg.printf("       the RGG row shows τ ≫ D (the motivation for walking past the diameter)\n\n")
		return nil
	},
}
