// Package fault defines deterministic fault plans for the simulated
// CONGEST engine: crash-stop faults, scripted churn windows, lossy links
// and fixed link delays, all drawn from a dedicated seeded decision
// stream so a given (plan seed, graph, request) reproduces bit-identical
// faults — sequentially and under any shard count. See doc.go for the
// determinism argument.
package fault

import (
	"errors"
	"fmt"
	"math"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// ErrBadPlan reports an invalid fault plan (node out of range, malformed
// window, probability outside [0,1], ...). The engine wraps it into its
// own typed fault-configuration error at installation time.
var ErrBadPlan = errors.New("fault: invalid fault plan")

// Crash is a crash-stop fault: from Round onward the node neither
// executes nor receives, permanently.
type Crash struct {
	Node  graph.NodeID
	Round int
}

// Churn is a scripted down window: the node is down for rounds
// [From, To) and resumes afterwards. A recovered node does not retain
// self-scheduled activity (SetActive) from before the window; it resumes
// stepping when the next message reaches it.
type Churn struct {
	Node     graph.NodeID
	From, To int
}

// LinkDrop sets the message-drop probability of the directed link
// From → To (all parallel edges of that link), overriding the plan's
// global DropProb. Faults are directed: add both orientations to make a
// link symmetrically lossy.
type LinkDrop struct {
	From, To graph.NodeID
	Prob     float64
}

// LinkDelay adds a fixed delay to the directed link From → To: a message
// entering an idle delayed link is delivered Rounds rounds later than the
// model's next-round delivery, and the link serializes to one delivery
// per 1+Rounds rounds while backed up (a slow link is also a narrow one).
type LinkDelay struct {
	From, To graph.NodeID
	Rounds   int
}

// Plan is a deterministic fault schedule. The zero value injects nothing.
// Seed feeds the plan's private decision stream (independent of the
// network seed and of every protocol RNG stream), so the same plan
// produces the same faults regardless of what runs on the network.
type Plan struct {
	// Seed drives the plan's random decisions (lossy-link sampling).
	Seed uint64
	// DropProb is the global per-message drop probability applied to every
	// directed edge (0 = lossless unless a LinkDrop says otherwise).
	DropProb float64
	// Crashes lists permanent crash-stop faults.
	Crashes []Crash
	// Churn lists temporary down windows.
	Churn []Churn
	// LinkDrops lists per-link drop-probability overrides.
	LinkDrops []LinkDrop
	// LinkDelays lists per-link fixed delays.
	LinkDelays []LinkDelay
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		(p.DropProb == 0 && len(p.Crashes) == 0 && len(p.Churn) == 0 &&
			len(p.LinkDrops) == 0 && len(p.LinkDelays) == 0)
}

// Validate checks the plan against a graph of n nodes: node IDs in
// [0, n), probabilities in [0, 1], non-negative rounds, well-formed churn
// windows. Whether a LinkDrop/LinkDelay endpoint pair is an actual edge
// is checked by the engine at installation, which owns the adjacency.
func (p *Plan) Validate(n int) error {
	checkNode := func(what string, v graph.NodeID) error {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("%w: %s node %d not in [0,%d)", ErrBadPlan, what, v, n)
		}
		return nil
	}
	for _, c := range p.Crashes {
		if err := checkNode("crash", c.Node); err != nil {
			return err
		}
		if c.Round < 0 {
			return fmt.Errorf("%w: crash of node %d at negative round %d", ErrBadPlan, c.Node, c.Round)
		}
	}
	for _, c := range p.Churn {
		if err := checkNode("churn", c.Node); err != nil {
			return err
		}
		if c.From < 0 || c.To <= c.From {
			return fmt.Errorf("%w: churn window [%d,%d) of node %d is malformed", ErrBadPlan, c.From, c.To, c.Node)
		}
	}
	if p.DropProb < 0 || p.DropProb > 1 || math.IsNaN(p.DropProb) {
		return fmt.Errorf("%w: drop probability %v outside [0,1]", ErrBadPlan, p.DropProb)
	}
	for _, l := range p.LinkDrops {
		if err := checkNode("lossy-link", l.From); err != nil {
			return err
		}
		if err := checkNode("lossy-link", l.To); err != nil {
			return err
		}
		if l.Prob < 0 || l.Prob > 1 || math.IsNaN(l.Prob) {
			return fmt.Errorf("%w: link %d->%d drop probability %v outside [0,1]", ErrBadPlan, l.From, l.To, l.Prob)
		}
	}
	for _, l := range p.LinkDelays {
		if err := checkNode("delayed-link", l.From); err != nil {
			return err
		}
		if err := checkNode("delayed-link", l.To); err != nil {
			return err
		}
		if l.Rounds < 0 {
			return fmt.Errorf("%w: link %d->%d negative delay %d", ErrBadPlan, l.From, l.To, l.Rounds)
		}
	}
	return nil
}

// Threshold converts a drop probability into the uint64 comparison
// threshold used against Roll draws: a message is dropped when its draw
// is < Threshold(prob). Resolution is the float64 mantissa (2^-53),
// far below any probability a plan would script.
func Threshold(prob float64) uint64 {
	if prob <= 0 {
		return 0
	}
	t := uint64(prob * (1 << 53))
	if t >= 1<<53 { // prob rounded to >= 1
		return math.MaxUint64
	}
	return t << 11
}

// Key derives the plan's decision key from its seed, domain-separated
// from the rng package's stream construction so a plan sharing its seed
// with the network cannot correlate with protocol randomness.
func Key(seed uint64) uint64 {
	return rng.Mix64(seed ^ 0xfa07a11e5eed1234)
}

// Roll returns the uniform 64-bit draw for the seq-th drop decision on
// directed edge e under the given decision key. It is a stateless,
// allocation-free hash (splitmix64 finalizers): the decision depends only
// on (key, edge, per-edge decision ordinal), never on global
// interleaving, which is what makes lossy links bit-identical between
// the sequential and sharded engines (each edge's deliveries form the
// same ordinal sequence in both).
func Roll(key, e, seq uint64) uint64 {
	return rng.Mix64(key ^ rng.Mix64(e+0x9e3779b97f4a7c15) ^ (seq+1)*0xd1342543de82ef95)
}

// Chaos tunes RandomPlan's fault mix. Zero fields inject nothing of that
// kind.
type Chaos struct {
	// Crashes is the number of permanent crash-stop faults.
	Crashes int
	// Churns is the number of temporary down windows.
	Churns int
	// MaxRound bounds fault onsets (and churn windows) to [0, MaxRound);
	// 0 defaults to 1000.
	MaxRound int
	// DropProb is the global per-message drop probability.
	DropProb float64
	// LossyLinks is the number of directed links given an elevated drop
	// probability (up to 50x DropProb, capped at 0.2).
	LossyLinks int
	// SlowLinks is the number of directed links given a fixed delay.
	SlowLinks int
	// MaxDelay bounds the per-link delays; 0 defaults to 4 rounds.
	MaxDelay int
}

// RandomPlan draws a randomized fault plan over g from seed: crash/churn
// victims, window bounds and link picks all come from one dedicated RNG
// stream, so the plan (and therefore the whole faulty execution) is a
// pure function of (seed, graph, tuning). The chaos suite uses it to
// sweep seeds; equal seeds must reproduce equal plans bit for bit.
func RandomPlan(seed uint64, g *graph.G, c Chaos) *Plan {
	r := rng.New(Key(seed)).Stream(0xc4a05)
	n := g.N()
	maxRound := c.MaxRound
	if maxRound <= 0 {
		maxRound = 1000
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 4
	}
	p := &Plan{Seed: seed, DropProb: c.DropProb}
	for i := 0; i < c.Crashes && n > 1; i++ {
		p.Crashes = append(p.Crashes, Crash{
			Node:  graph.NodeID(r.Intn(n)),
			Round: r.Intn(maxRound),
		})
	}
	for i := 0; i < c.Churns && n > 1; i++ {
		from := r.Intn(maxRound)
		p.Churn = append(p.Churn, Churn{
			Node: graph.NodeID(r.Intn(n)),
			From: from,
			To:   from + 1 + r.Intn(maxRound),
		})
	}
	pickLink := func() (graph.NodeID, graph.NodeID, bool) {
		v := graph.NodeID(r.Intn(n))
		nbrs := g.Neighbors(v)
		if len(nbrs) == 0 {
			return 0, 0, false
		}
		return v, nbrs[r.Intn(len(nbrs))].To, true
	}
	for i := 0; i < c.LossyLinks; i++ {
		from, to, ok := pickLink()
		if !ok {
			continue
		}
		prob := c.DropProb * float64(1+r.Intn(50))
		if prob > 0.2 {
			prob = 0.2
		}
		p.LinkDrops = append(p.LinkDrops, LinkDrop{From: from, To: to, Prob: prob})
	}
	for i := 0; i < c.SlowLinks; i++ {
		from, to, ok := pickLink()
		if !ok {
			continue
		}
		p.LinkDelays = append(p.LinkDelays, LinkDelay{From: from, To: to, Rounds: 1 + r.Intn(maxDelay)})
	}
	return p
}
