package fault

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"distwalk/internal/graph"
)

func TestPlanEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan is not Empty")
	}
	if !(&Plan{Seed: 7}).Empty() {
		t.Fatal("seed-only plan is not Empty")
	}
	for name, p := range map[string]*Plan{
		"drop prob": {DropProb: 0.1},
		"crash":     {Crashes: []Crash{{Node: 0, Round: 1}}},
		"churn":     {Churn: []Churn{{Node: 0, From: 1, To: 2}}},
		"lossy":     {LinkDrops: []LinkDrop{{From: 0, To: 1, Prob: 0.5}}},
		"slow":      {LinkDelays: []LinkDelay{{From: 0, To: 1, Rounds: 2}}},
	} {
		if p.Empty() {
			t.Errorf("%s plan reported Empty", name)
		}
	}
}

// TestPlanValidate is the construction-error table: every malformed plan
// fails with ErrBadPlan, every well-formed one passes.
func TestPlanValidate(t *testing.T) {
	const n = 8
	bad := map[string]*Plan{
		"crash node negative":  {Crashes: []Crash{{Node: -1, Round: 0}}},
		"crash node too large": {Crashes: []Crash{{Node: n, Round: 0}}},
		"crash round negative": {Crashes: []Crash{{Node: 1, Round: -3}}},
		"churn node":           {Churn: []Churn{{Node: 99, From: 0, To: 5}}},
		"churn empty window":   {Churn: []Churn{{Node: 1, From: 5, To: 5}}},
		"churn inverted":       {Churn: []Churn{{Node: 1, From: 5, To: 2}}},
		"churn negative from":  {Churn: []Churn{{Node: 1, From: -1, To: 2}}},
		"drop prob negative":   {DropProb: -0.01},
		"drop prob above one":  {DropProb: 1.01},
		"drop prob NaN":        {DropProb: math.NaN()},
		"link drop node":       {LinkDrops: []LinkDrop{{From: 0, To: n, Prob: 0.5}}},
		"link drop prob":       {LinkDrops: []LinkDrop{{From: 0, To: 1, Prob: 2}}},
		"link drop NaN":        {LinkDrops: []LinkDrop{{From: 0, To: 1, Prob: math.NaN()}}},
		"link delay node":      {LinkDelays: []LinkDelay{{From: -2, To: 1, Rounds: 1}}},
		"link delay negative":  {LinkDelays: []LinkDelay{{From: 0, To: 1, Rounds: -1}}},
	}
	for name, p := range bad {
		if err := p.Validate(n); !errors.Is(err, ErrBadPlan) {
			t.Errorf("%s: Validate = %v, want ErrBadPlan", name, err)
		}
	}
	good := &Plan{
		Seed:       3,
		DropProb:   0.05,
		Crashes:    []Crash{{Node: 0, Round: 0}, {Node: n - 1, Round: 1 << 20}},
		Churn:      []Churn{{Node: 3, From: 0, To: 1}},
		LinkDrops:  []LinkDrop{{From: 0, To: 1, Prob: 1}},
		LinkDelays: []LinkDelay{{From: 1, To: 0, Rounds: 0}},
	}
	if err := good.Validate(n); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestThreshold(t *testing.T) {
	if got := Threshold(0); got != 0 {
		t.Fatalf("Threshold(0) = %d, want 0", got)
	}
	if got := Threshold(-1); got != 0 {
		t.Fatalf("Threshold(-1) = %d, want 0", got)
	}
	if got := Threshold(1); got != math.MaxUint64 {
		t.Fatalf("Threshold(1) = %d, want MaxUint64", got)
	}
	half := Threshold(0.5)
	if half < 1<<62 || half > 1<<63 {
		t.Fatalf("Threshold(0.5) = %d, not near 2^63", half)
	}
	// Monotone in prob: more loss, higher threshold.
	prev := uint64(0)
	for _, p := range []float64{1e-9, 0.001, 0.01, 0.1, 0.5, 0.9, 0.999} {
		th := Threshold(p)
		if th <= prev {
			t.Fatalf("Threshold not strictly increasing at %v: %d <= %d", p, th, prev)
		}
		prev = th
	}
}

// TestRollUniformity spot-checks that Roll draws hit a threshold at about
// the configured rate — the property the drop sampler relies on.
func TestRollUniformity(t *testing.T) {
	key := Key(42)
	const draws = 200000
	for _, prob := range []float64{0.1, 0.5} {
		th := Threshold(prob)
		hits := 0
		for seq := uint64(0); seq < draws; seq++ {
			if Roll(key, 17, seq) < th {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-prob) > 0.01 {
			t.Errorf("Roll hit rate %v for prob %v", got, prob)
		}
	}
}

// TestRollDeterministic pins the statelessness contract: the decision for
// (key, edge, ordinal) never depends on call order, and distinct edges
// or seeds decorrelate.
func TestRollDeterministic(t *testing.T) {
	key := Key(9)
	if Roll(key, 3, 5) != Roll(key, 3, 5) {
		t.Fatal("Roll is not a pure function")
	}
	if Roll(key, 3, 5) == Roll(key, 4, 5) {
		t.Fatal("Roll ignores the edge")
	}
	if Roll(key, 3, 5) == Roll(key, 3, 6) {
		t.Fatal("Roll ignores the ordinal")
	}
	if Key(9) == Key(10) {
		t.Fatal("Key ignores the seed")
	}
}

func TestRandomPlanReproducible(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	spec := Chaos{Crashes: 2, Churns: 2, DropProb: 0.01, LossyLinks: 3, SlowLinks: 3}
	a := RandomPlan(123, g, spec)
	b := RandomPlan(123, g, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	c := RandomPlan(124, g, spec)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if a.Empty() {
		t.Fatal("chaos plan with faults came out empty")
	}
	if err := a.Validate(g.N()); err != nil {
		t.Fatalf("RandomPlan emitted an invalid plan: %v", err)
	}
	// Link picks must be actual edges (RandomPlan samples adjacency).
	for _, l := range a.LinkDrops {
		if !hasEdge(g, l.From, l.To) {
			t.Fatalf("lossy link %d->%d is not an edge", l.From, l.To)
		}
	}
	for _, l := range a.LinkDelays {
		if !hasEdge(g, l.From, l.To) {
			t.Fatalf("slow link %d->%d is not an edge", l.From, l.To)
		}
	}
}

func hasEdge(g *graph.G, from, to graph.NodeID) bool {
	for _, nb := range g.Neighbors(from) {
		if nb.To == to {
			return true
		}
	}
	return false
}
