// Package fault — design notes.
//
// # Why plans, not callbacks
//
// The engine's determinism contract says a run is a pure function of
// (graph, seed, protocol). Fault injection must not weaken that: the
// whole point of reproducing a failure is replaying it. So faults are
// declared up front as a Plan — data, not code — and every random
// decision the plan requires is derived from the plan's own seed,
// independent of the network seed and of every per-node protocol stream.
// Installing a plan perturbs exactly the deliveries it scripts; it never
// shifts protocol RNG consumption, so a fault-free plan (or no plan) is
// bit-identical to the unfaulted engine.
//
// # The plan-determinism argument
//
// Deterministic faults under sharded execution are the subtle part. The
// engine's sharded mode delivers each round in per-shard parallel: shard
// workers drain their own contiguous directed-edge ranges concurrently,
// and cross-shard messages merge in ascending source-shard order at the
// round barrier (see internal/congest/doc.go). A naive shared fault RNG
// consumed at delivery time would be racy AND schedule-dependent — two
// shards interleave arbitrarily, so draw order would differ run to run.
//
// Instead, every lossy-link decision is a stateless hash (Roll) of
//
//	(plan key, directed edge index, per-edge delivery ordinal)
//
// The per-edge ordinal is maintained by whichever engine owns the edge:
// sequentially that is the single engine loop, sharded it is the one
// shard whose contiguous range contains the edge — an edge is never
// shared, so the counter needs no synchronization. Both engines drain
// any given edge's queue in the same order (FIFO per edge, ascending
// edge order per round), so the ordinal sequence observed by edge e is
// identical in both modes, and therefore so is every drop decision and
// every FaultStats counter, at any shard count. Crash and churn
// decisions are round-indexed lookups with no randomness at delivery
// time, so they are trivially schedule-independent; delays are per-edge
// release-round state owned by the edge's shard, same argument as the
// ordinals.
//
// The first-loss record (which the protocol layer turns into typed
// ErrNodeCrashed/ErrMessageLost errors) is merged across shards by
// minimizing (round, edge index) — exactly the sequential engine's
// first-in-drain-order loss, because the sequential drain visits edges
// in ascending index order within a round.
//
// # Delay semantics
//
// A LinkDelay models a slow link, not a reordering one: messages on a
// delayed edge stay FIFO. An edge with delay d delivers a message no
// earlier than d rounds after the model's next-round delivery, and while
// backed up serializes to one delivery burst per 1+d rounds — a slow
// link is also a narrow one. Skipped delivery opportunities are counted
// in FaultStats.Delayed, and the round loop stays live (the edge remains
// scheduled), so delays can never deadlock a run: the release round is
// always reached.
package fault
