package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"distwalk/internal/congest"
)

// handshakeTimeout bounds the dial-time exchange; once a session is
// established the round cadence has no deadline (a run's lifetime is the
// client's business — cancellation surfaces between rounds).
const handshakeTimeout = 30 * time.Second

// countConn counts bytes through a net.Conn (for the per-engine traffic
// stats the Service aggregates and the server metrics distwalkd exports).
type countConn struct {
	net.Conn
	r, w *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.r.Add(int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.w.Add(int64(n))
	return n, err
}

// EngineStats is a snapshot of one engine connection's cumulative
// traffic counters.
type EngineStats struct {
	// Addr is the engine's dial address; Shard its index in the plan.
	Addr  string
	Shard int
	// Runs counts runs begun; Rounds delivery rounds requested.
	Runs   int64
	Rounds int64
	// MsgsOut counts messages pushed to the engine, MsgsIn messages
	// delivered back; BytesOut/BytesIn the raw wire traffic.
	MsgsOut  int64
	MsgsIn   int64
	BytesOut int64
	BytesIn  int64
}

// Add accumulates other into s (for aggregating across pooled workers).
func (s *EngineStats) Add(other EngineStats) {
	if s.Addr == "" {
		s.Addr, s.Shard = other.Addr, other.Shard
	}
	s.Runs += other.Runs
	s.Rounds += other.Rounds
	s.MsgsOut += other.MsgsOut
	s.MsgsIn += other.MsgsIn
	s.BytesOut += other.BytesOut
	s.BytesIn += other.BytesIn
}

// EngineConn is a client session with one remote shard engine: the TCP
// implementation of congest.RemoteShard. It is single-goroutine like the
// cluster client that owns it; one Service worker holds one EngineConn
// per engine.
type EngineConn struct {
	addr  string
	shard int
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	rbuf  []byte // frame read buffer, reused
	sbuf  []byte // frame encode buffer, reused

	stats    EngineStats
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

var _ congest.RemoteShard = (*EngineConn)(nil)

// DialEngine connects to a distwalkd engine and performs the handshake
// for h. A server-side rejection surfaces as a *RemoteError that
// errors.Is-matches the wire sentinel for its code (ErrGeneration,
// ErrShardIndex, ...).
func DialEngine(addr string, h Hello) (*EngineConn, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &EngineConn{addr: addr, shard: h.Shard, conn: conn}
	c.stats.Addr = addr
	c.stats.Shard = h.Shard
	cc := countConn{Conn: conn, r: &c.bytesIn, w: &c.bytesOut}
	c.br = bufio.NewReaderSize(cc, 1<<16)
	c.bw = bufio.NewWriterSize(cc, 1<<16)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	deadline := time.Now().Add(handshakeTimeout)
	conn.SetDeadline(deadline)
	c.sbuf = encodeHello(c.sbuf[:0], h)
	if err := writeFrame(c.bw, FrameHello, c.sbuf); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake write: %w", addr, err)
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake write: %w", addr, err)
	}
	t, payload, err := c.readReply()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w", addr, err)
	}
	if t != FrameWelcome {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w: unexpected frame type %d", addr, ErrBadFrame, t)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w", addr, err)
	}
	if w.Version != Version || w.Shard != h.Shard {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w: welcome for version %d shard %d",
			addr, ErrBadFrame, w.Version, w.Shard)
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// readReply reads one frame, converting a server Error frame into a
// *RemoteError.
func (c *EngineConn) readReply() (FrameType, []byte, error) {
	t, payload, err := readFrame(c.br, c.rbuf)
	if cap(payload) > cap(c.rbuf) {
		c.rbuf = payload[:0]
	}
	if err != nil {
		return t, nil, err
	}
	if t == FrameError {
		re, derr := decodeError(payload)
		if derr != nil {
			return t, nil, derr
		}
		return t, nil, re
	}
	return t, payload, nil
}

// Addr reports the engine's dial address; Shard its shard index.
func (c *EngineConn) Addr() string { return c.addr }

// Shard reports the engine's shard index in the cluster plan.
func (c *EngineConn) Shard() int { return c.shard }

// Stats snapshots the connection's cumulative traffic counters.
func (c *EngineConn) Stats() EngineStats {
	s := c.stats
	s.BytesIn = c.bytesIn.Load()
	s.BytesOut = c.bytesOut.Load()
	return s
}

// RunBegin implements congest.RemoteShard. The frame is buffered and
// flushed with the run's first push barrier, saving a round trip.
func (c *EngineConn) RunBegin() error {
	c.stats.Runs++
	return writeFrame(c.bw, FrameRunBegin, nil)
}

// SendPushes implements congest.RemoteShard.
func (c *EngineConn) SendPushes(round int, msgs []congest.Message) error {
	c.sbuf = encodePush(c.sbuf[:0], round, msgs)
	c.stats.MsgsOut += int64(len(msgs))
	if err := writeFrame(c.bw, FramePush, c.sbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadPushAck implements congest.RemoteShard.
func (c *EngineConn) ReadPushAck() (int, error) {
	t, payload, err := c.readReply()
	if err != nil {
		return 0, err
	}
	if t != FramePushAck {
		return 0, fmt.Errorf("%w: expected push-ack, got frame type %d", ErrBadFrame, t)
	}
	return decodePushAck(payload)
}

// SendDeliver implements congest.RemoteShard.
func (c *EngineConn) SendDeliver(round int) error {
	c.stats.Rounds++
	c.sbuf = encodeDeliver(c.sbuf[:0], round)
	if err := writeFrame(c.bw, FrameDeliver, c.sbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadBuffer implements congest.RemoteShard.
func (c *EngineConn) ReadBuffer(buf []congest.Message) ([]congest.Message, error) {
	t, payload, err := c.readReply()
	if err != nil {
		return buf, err
	}
	if t != FrameBuffer {
		return buf, fmt.Errorf("%w: expected buffer, got frame type %d", ErrBadFrame, t)
	}
	out, err := decodeBuffer(payload, buf)
	c.stats.MsgsIn += int64(len(out) - len(buf))
	return out, err
}

// FinishRun implements congest.RemoteShard.
func (c *EngineConn) FinishRun() (congest.RemoteResult, error) {
	if err := writeFrame(c.bw, FrameRunEnd, nil); err != nil {
		return congest.RemoteResult{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return congest.RemoteResult{}, err
	}
	t, payload, err := c.readReply()
	if err != nil {
		return congest.RemoteResult{}, err
	}
	if t != FrameRunResult {
		return congest.RemoteResult{}, fmt.Errorf("%w: expected run-result, got frame type %d", ErrBadFrame, t)
	}
	return decodeRunResult(payload)
}

// Close sends a best-effort Goodbye and closes the connection.
func (c *EngineConn) Close() error {
	if writeFrame(c.bw, FrameGoodbye, nil) == nil {
		c.bw.Flush()
	}
	return c.conn.Close()
}
