package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distwalk/internal/congest"
)

// Session timing defaults; DialConfig zero values resolve to these.
const (
	// DefaultHandshakeTimeout bounds the TCP dial plus the Hello/Welcome
	// exchange when DialConfig leaves HandshakeTimeout unset.
	DefaultHandshakeTimeout = 30 * time.Second
	// DefaultHeartbeatTimeout bounds one idle Ping/Pong exchange when
	// neither HeartbeatTimeout nor RoundTimeout is set.
	DefaultHeartbeatTimeout = 10 * time.Second
)

// Engine-loss taxonomy. Mid-session I/O failures on an EngineConn wrap
// these sentinels, so callers can tell a dead peer from a server-side
// rejection (*RemoteError / ErrEngine) and react — reconnect, fail over —
// instead of string matching.
var (
	// ErrEngineTimeout reports an engine that did not answer within the
	// session's per-exchange deadline (round trip or heartbeat). Every
	// ErrEngineTimeout also matches ErrEngineLost.
	ErrEngineTimeout = errors.New("wire: engine deadline exceeded")
	// ErrEngineLost reports an engine session that is no longer usable:
	// deadline expiry, EOF or connection reset, a missed heartbeat, or a
	// protocol violation mid-session. The session must be closed and
	// redialed; it cannot carry another run.
	ErrEngineLost = errors.New("wire: engine session lost")
)

// EngineLostError is the typed form of a dead engine session: which
// engine, whether the loss was a deadline expiry, and the underlying
// cause. It matches ErrEngineLost (and ErrEngineTimeout when Timeout)
// under errors.Is; the cause chain stays errors.Is-able too.
type EngineLostError struct {
	Addr    string
	Shard   int
	Timeout bool
	Cause   error
}

func (e *EngineLostError) Error() string {
	kind := "lost"
	if e.Timeout {
		kind = "timed out"
	}
	return fmt.Sprintf("wire: engine %s (shard %d) %s: %v", e.Addr, e.Shard, kind, e.Cause)
}

// Unwrap exposes the sentinel(s) plus the underlying cause.
func (e *EngineLostError) Unwrap() []error {
	errs := make([]error, 0, 3)
	if e.Timeout {
		errs = append(errs, ErrEngineTimeout)
	}
	errs = append(errs, ErrEngineLost)
	if e.Cause != nil {
		errs = append(errs, e.Cause)
	}
	return errs
}

// isTimeout reports whether err is a net.Error deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// DialConfig tunes an engine session's failure detection. The zero value
// reproduces a deadline-free, heartbeat-free session (handshake timeout
// aside), which is what DialEngine uses.
type DialConfig struct {
	// HandshakeTimeout bounds the TCP dial plus the Hello/Welcome
	// exchange (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// RoundTimeout is the per-exchange I/O deadline armed before every
	// Push/Deliver/RunResult round trip: an engine that does not answer
	// within it fails the run with ErrEngineTimeout instead of hanging
	// the client forever. 0 = no deadline. Callers can retune it per run
	// with SetRoundTimeout.
	RoundTimeout time.Duration
	// HeartbeatInterval starts an idle heartbeat on the session: while no
	// run holds the session (see Reserve), the client pings the engine
	// every interval and treats a failed Ping/Pong as a lost engine.
	// 0 = no heartbeat.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one Ping/Pong exchange (0 = RoundTimeout,
	// or DefaultHeartbeatTimeout if that is unset too).
	HeartbeatTimeout time.Duration
	// OnHeartbeatMiss, if set, is called (from the heartbeat goroutine,
	// at most once per session) when an idle ping fails; the session is
	// already marked broken and its connection closed by then.
	OnHeartbeatMiss func(error)
}

// countConn counts bytes through a net.Conn (for the per-engine traffic
// stats the Service aggregates and the server metrics distwalkd exports).
type countConn struct {
	net.Conn
	r, w *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.r.Add(int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.w.Add(int64(n))
	return n, err
}

// EngineStats is a snapshot of one engine connection's cumulative
// traffic counters.
type EngineStats struct {
	// Addr is the engine's dial address; Shard its index in the plan.
	Addr  string
	Shard int
	// Runs counts runs begun; Rounds delivery rounds requested.
	Runs   int64
	Rounds int64
	// MsgsOut counts messages pushed to the engine, MsgsIn messages
	// delivered back; BytesOut/BytesIn the raw wire traffic.
	MsgsOut  int64
	MsgsIn   int64
	BytesOut int64
	BytesIn  int64
}

// Add accumulates other into s (for aggregating across pooled workers).
func (s *EngineStats) Add(other EngineStats) {
	if s.Addr == "" {
		s.Addr, s.Shard = other.Addr, other.Shard
	}
	s.Runs += other.Runs
	s.Rounds += other.Rounds
	s.MsgsOut += other.MsgsOut
	s.MsgsIn += other.MsgsIn
	s.BytesOut += other.BytesOut
	s.BytesIn += other.BytesIn
}

// EngineConn is a client session with one remote shard engine: the TCP
// implementation of congest.RemoteShard. The round cadence is
// single-goroutine like the cluster client that owns it; one Service
// worker holds one EngineConn per engine. The only concurrent party is
// the optional idle heartbeat, excluded from runs by the Reserve/Release
// session lock.
type EngineConn struct {
	addr  string
	shard int
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	rbuf  []byte // frame read buffer, reused
	sbuf  []byte // frame encode buffer, reused

	// mu is the session lock: the run path holds it from Reserve to
	// Release; the idle heartbeat TryLocks around each ping and backs off
	// whenever a run is in flight.
	mu      sync.Mutex
	roundTO atomic.Int64 // per-exchange deadline, nanoseconds (0 = none)
	hbTO    time.Duration
	nonce   uint64 // heartbeat nonce, under mu
	broken  atomic.Bool
	closed  atomic.Bool
	hbStop  chan struct{}

	stats    EngineStats
	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

var _ congest.RemoteShard = (*EngineConn)(nil)

// DialEngine connects to a distwalkd engine with the default DialConfig:
// a handshake timeout but no round deadline and no heartbeat (the
// pre-resilience behavior). A server-side rejection surfaces as a
// *RemoteError that errors.Is-matches the wire sentinel for its code
// (ErrGeneration, ErrShardIndex, ...).
func DialEngine(addr string, h Hello) (*EngineConn, error) {
	return DialEngineConfig(addr, h, DialConfig{})
}

// DialEngineConfig connects to a distwalkd engine and performs the
// handshake for h under cfg's timing policy, starting the idle heartbeat
// if configured.
func DialEngineConfig(addr string, h Hello, cfg DialConfig) (*EngineConn, error) {
	hsTO := cfg.HandshakeTimeout
	if hsTO <= 0 {
		hsTO = DefaultHandshakeTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, hsTO)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &EngineConn{addr: addr, shard: h.Shard, conn: conn}
	c.stats.Addr = addr
	c.stats.Shard = h.Shard
	cc := countConn{Conn: conn, r: &c.bytesIn, w: &c.bytesOut}
	c.br = bufio.NewReaderSize(cc, 1<<16)
	c.bw = bufio.NewWriterSize(cc, 1<<16)
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(time.Now().Add(hsTO))
	c.sbuf = encodeHello(c.sbuf[:0], h)
	if err := writeFrame(c.bw, FrameHello, c.sbuf); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake write: %w", addr, err)
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake write: %w", addr, err)
	}
	t, payload, err := c.readReply()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w", addr, err)
	}
	if t != FrameWelcome {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w: unexpected frame type %d", addr, ErrBadFrame, t)
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w", addr, err)
	}
	if w.Version != Version || w.Shard != h.Shard {
		conn.Close()
		return nil, fmt.Errorf("wire: %s: handshake: %w: welcome for version %d shard %d",
			addr, ErrBadFrame, w.Version, w.Shard)
	}
	conn.SetDeadline(time.Time{})
	c.roundTO.Store(int64(cfg.RoundTimeout))
	c.hbTO = cfg.HeartbeatTimeout
	if cfg.HeartbeatInterval > 0 {
		c.hbStop = make(chan struct{})
		go c.heartbeat(cfg.HeartbeatInterval, cfg.OnHeartbeatMiss)
	}
	return c, nil
}

// readReply reads one frame, converting a server Error frame into a
// *RemoteError.
func (c *EngineConn) readReply() (FrameType, []byte, error) {
	t, payload, err := readFrame(c.br, c.rbuf)
	if cap(payload) > cap(c.rbuf) {
		c.rbuf = payload[:0]
	}
	if err != nil {
		return t, nil, err
	}
	if t == FrameError {
		re, derr := decodeError(payload)
		if derr != nil {
			return t, nil, derr
		}
		return t, nil, re
	}
	return t, payload, nil
}

// fail marks the session broken — it can never carry another run — and
// wraps err in the engine-loss taxonomy.
func (c *EngineConn) fail(err error) error {
	c.broken.Store(true)
	var le *EngineLostError
	if errors.As(err, &le) {
		return err
	}
	return &EngineLostError{Addr: c.addr, Shard: c.shard, Timeout: isTimeout(err), Cause: err}
}

// arm applies a per-exchange deadline ahead of the next blocking
// write/read pair; d <= 0 leaves the connection deadline-free.
func (c *EngineConn) arm(d time.Duration) {
	if d > 0 {
		c.conn.SetDeadline(time.Now().Add(d))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
}

func (c *EngineConn) armRound() { c.arm(time.Duration(c.roundTO.Load())) }

// SetRoundTimeout retunes the per-exchange I/O deadline (0 disables).
// Safe to call between exchanges; the Service arms every session with the
// request's effective deadline before each cluster run.
func (c *EngineConn) SetRoundTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.roundTO.Store(int64(d))
}

// Reserve takes the session lock for a run, excluding the idle heartbeat
// until Release. The Service brackets every cluster run with these; the
// RemoteShard methods themselves do not lock (error paths may skip
// FinishRun, so the bracket must outlive any single method).
func (c *EngineConn) Reserve() { c.mu.Lock() }

// Release returns the session to idle (heartbeat resumes).
func (c *EngineConn) Release() { c.mu.Unlock() }

// Broken reports whether the session has failed and must be redialed.
func (c *EngineConn) Broken() bool { return c.broken.Load() }

// Addr reports the engine's dial address; Shard its shard index.
func (c *EngineConn) Addr() string { return c.addr }

// Shard reports the engine's shard index in the cluster plan.
func (c *EngineConn) Shard() int { return c.shard }

// Stats snapshots the connection's cumulative traffic counters.
func (c *EngineConn) Stats() EngineStats {
	s := c.stats
	s.BytesIn = c.bytesIn.Load()
	s.BytesOut = c.bytesOut.Load()
	return s
}

// RunBegin implements congest.RemoteShard. The frame is buffered and
// flushed with the run's first push barrier, saving a round trip.
func (c *EngineConn) RunBegin() error {
	c.stats.Runs++
	if err := writeFrame(c.bw, FrameRunBegin, nil); err != nil {
		return c.fail(err)
	}
	return nil
}

// SendPushes implements congest.RemoteShard.
func (c *EngineConn) SendPushes(round int, msgs []congest.Message) error {
	c.armRound()
	c.sbuf = encodePush(c.sbuf[:0], round, msgs)
	c.stats.MsgsOut += int64(len(msgs))
	if err := writeFrame(c.bw, FramePush, c.sbuf); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

// ReadPushAck implements congest.RemoteShard.
func (c *EngineConn) ReadPushAck() (int, error) {
	c.armRound()
	t, payload, err := c.readReply()
	if err != nil {
		return 0, c.fail(err)
	}
	if t != FramePushAck {
		return 0, c.fail(fmt.Errorf("%w: expected push-ack, got frame type %d", ErrBadFrame, t))
	}
	n, err := decodePushAck(payload)
	if err != nil {
		return 0, c.fail(err)
	}
	return n, nil
}

// SendDeliver implements congest.RemoteShard.
func (c *EngineConn) SendDeliver(round int) error {
	c.armRound()
	c.stats.Rounds++
	c.sbuf = encodeDeliver(c.sbuf[:0], round)
	if err := writeFrame(c.bw, FrameDeliver, c.sbuf); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

// ReadBuffer implements congest.RemoteShard.
func (c *EngineConn) ReadBuffer(buf []congest.Message) ([]congest.Message, error) {
	c.armRound()
	t, payload, err := c.readReply()
	if err != nil {
		return buf, c.fail(err)
	}
	if t != FrameBuffer {
		return buf, c.fail(fmt.Errorf("%w: expected buffer, got frame type %d", ErrBadFrame, t))
	}
	out, err := decodeBuffer(payload, buf)
	c.stats.MsgsIn += int64(len(out) - len(buf))
	if err != nil {
		return out, c.fail(err)
	}
	return out, nil
}

// FinishRun implements congest.RemoteShard.
func (c *EngineConn) FinishRun() (congest.RemoteResult, error) {
	c.armRound()
	if err := writeFrame(c.bw, FrameRunEnd, nil); err != nil {
		return congest.RemoteResult{}, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return congest.RemoteResult{}, c.fail(err)
	}
	t, payload, err := c.readReply()
	if err != nil {
		return congest.RemoteResult{}, c.fail(err)
	}
	if t != FrameRunResult {
		return congest.RemoteResult{}, c.fail(fmt.Errorf("%w: expected run-result, got frame type %d", ErrBadFrame, t))
	}
	res, err := decodeRunResult(payload)
	if err != nil {
		return congest.RemoteResult{}, c.fail(err)
	}
	return res, nil
}

// Ping runs one heartbeat exchange: a Ping frame carrying a fresh nonce,
// answered by a Pong echoing it, under the heartbeat deadline. The caller
// must hold the session (Reserve, or be its only user); the idle
// heartbeat goroutine is the normal caller.
func (c *EngineConn) Ping() error {
	to := c.hbTO
	if to <= 0 {
		if rt := time.Duration(c.roundTO.Load()); rt > 0 {
			to = rt
		} else {
			to = DefaultHeartbeatTimeout
		}
	}
	c.arm(to)
	c.nonce++
	n := c.nonce
	c.sbuf = encodePing(c.sbuf[:0], n)
	if err := writeFrame(c.bw, FramePing, c.sbuf); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	t, payload, err := c.readReply()
	if err != nil {
		return c.fail(err)
	}
	if t != FramePong {
		return c.fail(fmt.Errorf("%w: expected pong, got frame type %d", ErrBadFrame, t))
	}
	got, err := decodePing(payload)
	if err != nil {
		return c.fail(err)
	}
	if got != n {
		return c.fail(fmt.Errorf("%w: pong nonce %d, want %d", ErrBadFrame, got, n))
	}
	return nil
}

// heartbeat is the idle liveness loop: every interval, if no run holds
// the session, one Ping/Pong exchange. A run in flight is its own
// liveness signal (its exchanges carry deadlines), so the loop simply
// skips ticks it cannot lock. A failed ping marks the session broken,
// closes the connection and reports the miss once — unless Close already
// raced it, in which case the failure is just the teardown.
func (c *EngineConn) heartbeat(interval time.Duration, onMiss func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
		}
		if !c.mu.TryLock() {
			continue
		}
		if c.broken.Load() || c.closed.Load() {
			c.mu.Unlock()
			return
		}
		err := c.Ping()
		c.mu.Unlock()
		if err != nil {
			if c.closed.Load() {
				return
			}
			c.conn.Close()
			if onMiss != nil {
				onMiss(err)
			}
			return
		}
	}
}

// Close stops the heartbeat, sends a best-effort Goodbye (only when the
// session is idle and healthy — a broken or busy session just drops the
// connection) and closes it. Idempotent and safe concurrently with the
// heartbeat and with a run holding the session: an in-flight exchange
// unblocks with a connection error.
func (c *EngineConn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.hbStop != nil {
		close(c.hbStop)
	}
	if c.mu.TryLock() {
		if !c.broken.Load() {
			c.arm(time.Second)
			if writeFrame(c.bw, FrameGoodbye, nil) == nil {
				c.bw.Flush()
			}
		}
		c.mu.Unlock()
	}
	return c.conn.Close()
}
