package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// FuzzReadFrame pins the decoder's safety contract: any byte stream —
// truncated, oversized, corrupt, or adversarial — either parses into a
// known frame or fails with a typed error. It must never panic and never
// allocate proportionally to a lying length or count field.
func FuzzReadFrame(f *testing.F) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		f.Fatalf("graph: %v", err)
	}
	seed := func(t FrameType, payload []byte) {
		var b bytes.Buffer
		if err := writeFrame(&b, t, payload); err != nil {
			f.Fatalf("seed frame %d: %v", t, err)
		}
		f.Add(b.Bytes())
	}
	seed(FrameHello, encodeHello(nil, HelloFor(g, 2, 0, 1, 42, testPlan())))
	seed(FrameHello, encodeHello(nil, HelloFor(g, 4, 3, 2, 0, nil)))
	seed(FrameWelcome, encodeWelcome(nil, Welcome{Version: Version, Shard: 1, PID: 99}))
	seed(FrameError, encodeError(nil, CodeGeneration, "generation mismatch"))
	seed(FrameRunBegin, nil)
	seed(FramePush, encodePush(nil, 3, []congest.Message{
		congest.MakeMessage(0, 1, 7, 1, [congest.PayloadWords]uint64{42}),
		congest.MakeMessage(2, 3, 1, 4, [congest.PayloadWords]uint64{1, 2, 3, 4}),
	}))
	seed(FramePushAck, encodePushAck(nil, 12))
	seed(FrameDeliver, encodeDeliver(nil, 4))
	seed(FrameBuffer, encodeBuffer(nil, []congest.Message{
		congest.MakeMessage(1, 0, 7, 1, [congest.PayloadWords]uint64{9}),
	}))
	seed(FrameRunEnd, nil)
	seed(FrameRunResult, encodeRunResult(nil, congest.RemoteResult{
		Res:  congest.Result{Rounds: 5, Messages: 10, Words: 10, MaxQueue: 2},
		Loss: congest.LossRecord{Valid: true, Round: 3, Edge: 7, From: 1, To: 2},
	}))
	seed(FramePing, encodePing(nil, 0xdeadbeefcafe))
	seed(FramePong, encodePing(nil, 0))
	// Hand-crafted hostile headers: inflated length, unknown type, zero
	// body, and a short ping (7 of 8 nonce bytes).
	f.Add([]byte{0, 0, 0, 8, byte(FramePing), 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, byte(FramePush), 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for i := 0; i < 64; i++ { // bound work per input
			_, _, err := readFrameAndKeep(r, &buf)
			if err == nil {
				continue
			}
			if err == io.EOF {
				return
			}
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooBig) &&
				!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
				!errors.Is(err, ErrVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
	})
}

// readFrameAndKeep is the fuzz body's ReadFrame wrapper, reusing the read
// buffer across frames the way real sessions do.
func readFrameAndKeep(r io.Reader, buf *[]byte) (FrameType, any, error) {
	t, v, err := ReadFrame(r, *buf)
	return t, v, err
}
