package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// Server is the distwalkd session host: it accepts engine sessions, runs
// the handshake (pinning the first graph generation it serves; a session
// offering a strictly newer generation ordinal rotates the pin), and
// drives one congest.ShardEngine per connection through the
// RunBegin/Push/Deliver/RunEnd state machine. Sessions are independent —
// each client worker holds its own session per engine, exactly as each
// pooled worker holds its own Network in-process.
type Server struct {
	cfg ServerConfig
	m   Metrics

	mu        sync.Mutex
	ln        net.Listener
	sessions  map[*session]struct{}
	closing   bool
	pinned    bool
	pinDigest uint64
	pinGen    uint64

	wg sync.WaitGroup
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// PinShard restricts the server to one shard index (-1 = serve any);
	// a Hello for a different shard is rejected with CodeShardIndex.
	PinShard int
	// HandshakeTimeout bounds the Hello/Welcome exchange
	// (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// IdleTimeout reaps half-dead sessions: a session that sends no frame
	// for this long after the handshake is closed and counted in
	// Metrics.IdleReaped. 0 = never. Set it above the clients' heartbeat
	// interval, so live-but-idle sessions keep themselves alive.
	IdleTimeout time.Duration
}

// Metrics is the server's cumulative counter set, exported by distwalkd
// through expvar. All fields are atomics; Snapshot returns a plain map.
type Metrics struct {
	Sessions       atomic.Int64 // sessions accepted
	ActiveSessions atomic.Int64 // sessions currently open
	Runs           atomic.Int64 // engine runs begun
	Rounds         atomic.Int64 // delivery rounds served
	MsgsIn         atomic.Int64 // messages pushed by clients
	MsgsOut        atomic.Int64 // messages delivered to clients
	BytesIn        atomic.Int64 // raw bytes read
	BytesOut       atomic.Int64 // raw bytes written
	Rejects        atomic.Int64 // error frames sent
	Pings          atomic.Int64 // heartbeats answered
	IdleReaped     atomic.Int64 // sessions closed by the idle timeout
}

// Snapshot returns the counters as a map (expvar.Func-friendly).
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"sessions":        m.Sessions.Load(),
		"active_sessions": m.ActiveSessions.Load(),
		"runs":            m.Runs.Load(),
		"rounds":          m.Rounds.Load(),
		"msgs_in":         m.MsgsIn.Load(),
		"msgs_out":        m.MsgsOut.Load(),
		"bytes_in":        m.BytesIn.Load(),
		"bytes_out":       m.BytesOut.Load(),
		"rejects":         m.Rejects.Load(),
		"pings":           m.Pings.Load(),
		"idle_reaped":     m.IdleReaped.Load(),
	}
}

// NewServer builds a session host.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg, sessions: make(map[*session]struct{})}
}

// Metrics returns the server's counter set.
func (s *Server) Metrics() *Metrics { return &s.m }

// Serve accepts sessions on ln until Shutdown or Close. It returns nil
// on a clean shutdown, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("wire: serve: %w", ErrShuttingDown)
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.m.Sessions.Add(1)
		s.m.ActiveSessions.Add(1)
		sess := &session{srv: s, conn: conn}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			s.m.ActiveSessions.Add(-1)
			continue
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
			s.m.ActiveSessions.Add(-1)
		}()
	}
}

// Shutdown drains the server: the listener closes, idle sessions (no run
// in flight) close immediately, and sessions inside a run are allowed to
// finish it — the next RunEnd completes the run's result exchange and
// then closes the session. Shutdown blocks until every session is gone.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closing = true
	if s.ln != nil {
		s.ln.Close()
	}
	for sess := range s.sessions {
		if !sess.inRun {
			sess.conn.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Close force-closes every session and the listener without draining.
func (s *Server) Close() {
	s.mu.Lock()
	s.closing = true
	if s.ln != nil {
		s.ln.Close()
	}
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// session is one client connection: handshake state plus the engine it
// drives. inRun is guarded by the server mutex (the shutdown path reads
// it).
type session struct {
	srv   *Server
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	rbuf  []byte
	sbuf  []byte
	msgs  []congest.Message
	eng   *congest.ShardEngine
	inRun bool
}

// setRun flips the in-run flag; leaving a run reports whether the server
// is draining and the session should close now.
func (ss *session) setRun(v bool) (closing bool) {
	ss.srv.mu.Lock()
	ss.inRun = v
	closing = ss.srv.closing
	ss.srv.mu.Unlock()
	return closing && !v
}

// sendErr emits a typed Error frame (best effort) and counts it.
func (ss *session) sendErr(code uint16, msg string) {
	ss.srv.m.Rejects.Add(1)
	ss.sbuf = encodeError(ss.sbuf[:0], code, msg)
	if writeFrame(ss.bw, FrameError, ss.sbuf) == nil {
		ss.bw.Flush()
	}
}

// rejectCode maps a handshake decode failure to its wire code.
func rejectCode(err error) uint16 {
	switch {
	case errors.Is(err, ErrBadMagic):
		return CodeBadMagic
	case errors.Is(err, ErrVersion):
		return CodeVersion
	default:
		return CodeBadFrame
	}
}

func (ss *session) run() {
	defer ss.conn.Close()
	srv := ss.srv
	cc := countConn{Conn: ss.conn, r: &srv.m.BytesIn, w: &srv.m.BytesOut}
	ss.br = bufio.NewReaderSize(cc, 1<<16)
	ss.bw = bufio.NewWriterSize(cc, 1<<16)
	if tc, ok := ss.conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if !ss.handshake() {
		return
	}
	ss.conn.SetDeadline(time.Time{})
	idle := srv.cfg.IdleTimeout
	for {
		if idle > 0 {
			ss.conn.SetDeadline(time.Now().Add(idle))
		}
		t, payload, err := readFrame(ss.br, ss.rbuf)
		if cap(payload) > cap(ss.rbuf) {
			ss.rbuf = payload[:0]
		}
		if err != nil {
			if idle > 0 && isTimeout(err) {
				srv.m.IdleReaped.Add(1)
			}
			return // EOF, peer vanished, timed out, or garbage: session over
		}
		switch t {
		case FrameRunBegin:
			if len(payload) != 0 {
				ss.sendErr(CodeBadFrame, "run-begin carries no payload")
				return
			}
			ss.eng.RunBegin()
			srv.m.Runs.Add(1)
			ss.setRun(true)
		case FramePush:
			round, msgs, derr := decodePush(payload, ss.msgs[:0])
			ss.msgs = msgs[:0]
			if derr != nil {
				ss.sendErr(CodeBadFrame, derr.Error())
				return
			}
			if perr := ss.eng.Push(round, msgs); perr != nil {
				ss.sendErr(CodeBadFrame, perr.Error())
				return
			}
			srv.m.MsgsIn.Add(int64(len(msgs)))
			ss.sbuf = encodePushAck(ss.sbuf[:0], ss.eng.Active())
			if writeFrame(ss.bw, FramePushAck, ss.sbuf) != nil || ss.bw.Flush() != nil {
				return
			}
		case FrameDeliver:
			round, derr := decodeDeliver(payload)
			if derr != nil {
				ss.sendErr(CodeBadFrame, derr.Error())
				return
			}
			out := ss.eng.Deliver(round)
			srv.m.Rounds.Add(1)
			srv.m.MsgsOut.Add(int64(len(out)))
			ss.sbuf = encodeBuffer(ss.sbuf[:0], out)
			if writeFrame(ss.bw, FrameBuffer, ss.sbuf) != nil || ss.bw.Flush() != nil {
				return
			}
		case FrameRunEnd:
			res, loss := ss.eng.RunEnd()
			ss.sbuf = encodeRunResult(ss.sbuf[:0], congest.RemoteResult{Res: res, Loss: loss})
			if writeFrame(ss.bw, FrameRunResult, ss.sbuf) != nil || ss.bw.Flush() != nil {
				return
			}
			if ss.setRun(false) {
				return // drained: this was the in-flight run
			}
		case FramePing:
			nonce, derr := decodePing(payload)
			if derr != nil {
				ss.sendErr(CodeBadFrame, derr.Error())
				return
			}
			srv.m.Pings.Add(1)
			ss.sbuf = encodePing(ss.sbuf[:0], nonce)
			if writeFrame(ss.bw, FramePong, ss.sbuf) != nil || ss.bw.Flush() != nil {
				return
			}
		case FrameGoodbye:
			return
		default:
			ss.sendErr(CodeBadFrame, fmt.Sprintf("unexpected frame type %d", t))
			return
		}
	}
}

// handshake runs the Hello/Welcome exchange, reporting success.
func (ss *session) handshake() bool {
	srv := ss.srv
	hsTO := srv.cfg.HandshakeTimeout
	if hsTO <= 0 {
		hsTO = DefaultHandshakeTimeout
	}
	ss.conn.SetDeadline(time.Now().Add(hsTO))
	t, payload, err := readFrame(ss.br, ss.rbuf)
	if cap(payload) > cap(ss.rbuf) {
		ss.rbuf = payload[:0]
	}
	if err != nil {
		return false
	}
	if t != FrameHello {
		ss.sendErr(CodeBadFrame, fmt.Sprintf("expected hello, got frame type %d", t))
		return false
	}
	h, err := decodeHello(payload)
	if err != nil {
		ss.sendErr(rejectCode(err), err.Error())
		return false
	}
	if h.N < 0 || h.N > 1<<28 {
		ss.sendErr(CodeBadFrame, fmt.Sprintf("implausible node count %d", h.N))
		return false
	}
	g := graph.New(h.N)
	for _, e := range h.Edges {
		if err := g.AddWeightedEdge(e.U, e.V, e.W); err != nil {
			ss.sendErr(CodeBadFrame, err.Error())
			return false
		}
	}
	if got := GraphDigest(g); got != h.Digest {
		ss.sendErr(CodeGeneration, fmt.Sprintf("topology digest %016x does not match declared generation %016x", got, h.Digest))
		return false
	}
	srv.mu.Lock()
	switch {
	case srv.closing:
		srv.mu.Unlock()
		ss.sendErr(CodeShuttingDown, "engine is draining")
		return false
	case !srv.pinned:
		srv.pinned = true
		srv.pinDigest = h.Digest
		srv.pinGen = h.Gen
	case srv.pinDigest == h.Digest:
		// Same topology; the generation ordinal is irrelevant (a pure
		// cache-epoch bump does not change the digest).
	case h.Gen > srv.pinGen:
		// The client mutated its graph: a strictly newer generation
		// rotates the pin. Sessions already running keep their own
		// engines (built at their handshake) and finish undisturbed.
		srv.pinDigest = h.Digest
		srv.pinGen = h.Gen
	default:
		pin, gen := srv.pinDigest, srv.pinGen
		srv.mu.Unlock()
		ss.sendErr(CodeGeneration, fmt.Sprintf("engine serves generation %d (digest %016x), session offered generation %d (digest %016x)",
			gen, pin, h.Gen, h.Digest))
		return false
	}
	srv.mu.Unlock()
	if h.Shard < 0 || h.Shard >= len(h.Bounds)-1 {
		ss.sendErr(CodeShardIndex, fmt.Sprintf("shard index %d outside plan of %d shards", h.Shard, len(h.Bounds)-1))
		return false
	}
	if srv.cfg.PinShard >= 0 && h.Shard != srv.cfg.PinShard {
		ss.sendErr(CodeShardIndex, fmt.Sprintf("engine is pinned to shard %d, session asked for %d", srv.cfg.PinShard, h.Shard))
		return false
	}
	eng, err := congest.NewShardEngine(g, h.Bounds, h.Shard, h.EdgeCap, h.Plan)
	if err != nil {
		ss.sendErr(CodeBadPlan, err.Error())
		return false
	}
	ss.eng = eng
	ss.sbuf = encodeWelcome(ss.sbuf[:0], Welcome{Version: Version, Shard: h.Shard, PID: os.Getpid()})
	if writeFrame(ss.bw, FrameWelcome, ss.sbuf) != nil || ss.bw.Flush() != nil {
		return false
	}
	return true
}
