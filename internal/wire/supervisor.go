package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// EngineHealth is a supervised engine's client-side health state.
type EngineHealth int32

const (
	// EngineHealthy: the last dial succeeded and no loss has been
	// reported since.
	EngineHealthy EngineHealth = iota
	// EngineReconnecting: a session loss or dial failure was recorded;
	// redials proceed under the backoff schedule (the first one
	// immediately after a loss).
	EngineReconnecting
	// EngineQuarantined: the circuit breaker tripped after too many
	// consecutive dial failures; dials fail fast until the cooldown
	// passes, then one probe dial decides between recovery and another
	// quarantine window.
	EngineQuarantined
)

func (h EngineHealth) String() string {
	switch h {
	case EngineHealthy:
		return "healthy"
	case EngineReconnecting:
		return "reconnecting"
	case EngineQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("EngineHealth(%d)", int32(h))
}

// Supervisor backoff/breaker defaults; SupervisorConfig zero values
// resolve to these.
const (
	DefaultBackoffBase     = 100 * time.Millisecond
	DefaultBackoffMax      = 5 * time.Second
	DefaultQuarantineAfter = 8
	DefaultQuarantineFor   = 30 * time.Second
)

// SupervisorConfig configures one engine's Supervisor.
type SupervisorConfig struct {
	// Addr is the engine's dial address; Hello the pinned handshake
	// (graph digest included) re-sent verbatim on every reconnect, so a
	// restarted engine serving a different generation is rejected rather
	// than silently adopted.
	Addr  string
	Hello Hello
	// Dial is the session timing policy for every dial.
	Dial DialConfig
	// BackoffBase/BackoffMax bound the capped exponential redial backoff:
	// the k-th consecutive failure schedules the next dial after
	// min(BackoffMax, BackoffBase << (k-1)), jittered to [d/2, d].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QuarantineAfter is the consecutive-failure count that trips the
	// breaker; QuarantineFor how long it stays open.
	QuarantineAfter int
	QuarantineFor   time.Duration
}

// Supervisor owns one engine address's client-side lifecycle: it dials
// sessions on demand, counts losses and heartbeat misses, schedules
// reconnects with capped exponential backoff + jitter, and quarantines an
// address that keeps failing behind a small circuit breaker. One
// Supervisor serves all pooled workers' sessions with that engine; it is
// safe for concurrent use.
type Supervisor struct {
	cfg SupervisorConfig

	reconnects atomic.Int64
	hbMisses   atomic.Int64

	mu          sync.Mutex
	state       EngineHealth
	consecutive int       // dial failures since the last success
	nextTry     time.Time // dials before this fail fast
	connected   bool      // ever dialed successfully (reconnect counting)
}

// NewSupervisor builds a supervisor, resolving zero config values to the
// package defaults.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = cfg.BackoffBase
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = DefaultQuarantineAfter
	}
	if cfg.QuarantineFor <= 0 {
		cfg.QuarantineFor = DefaultQuarantineFor
	}
	return &Supervisor{cfg: cfg}
}

// Addr reports the supervised engine's dial address.
func (sv *Supervisor) Addr() string { return sv.cfg.Addr }

// State reports the engine's current health.
func (sv *Supervisor) State() EngineHealth {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.state
}

// Reconnects reports how many times a session was re-established after
// the engine had been connected before.
func (sv *Supervisor) Reconnects() int64 { return sv.reconnects.Load() }

// HeartbeatMisses reports how many idle heartbeats found the engine dead.
func (sv *Supervisor) HeartbeatMisses() int64 { return sv.hbMisses.Load() }

// Acquire dials a fresh session, re-handshaking with the pinned Hello.
// Inside a backoff or quarantine window it fails fast (an EngineLostError
// matching ErrEngineLost) without touching the network; outside one it
// dials, and the outcome drives the breaker: success resets it, failure
// extends the backoff and eventually quarantines the address. Concurrent
// Acquires may dial concurrently — each worker gets its own session.
func (sv *Supervisor) Acquire() (*EngineConn, error) {
	sv.mu.Lock()
	if sv.state != EngineHealthy && time.Now().Before(sv.nextTry) {
		st, wait, k := sv.state, time.Until(sv.nextTry), sv.consecutive
		sv.mu.Unlock()
		return nil, &EngineLostError{Addr: sv.cfg.Addr, Shard: sv.cfg.Hello.Shard,
			Cause: fmt.Errorf("engine %s: next dial in %v (%d consecutive dial failures)",
				st, wait.Round(time.Millisecond), k)}
	}
	// Snapshot the handshake under the lock: UpdateHello may rotate it
	// concurrently and a dial must use one coherent Hello.
	hello := sv.cfg.Hello
	dial := sv.cfg.Dial
	sv.mu.Unlock()

	userMiss := dial.OnHeartbeatMiss
	dial.OnHeartbeatMiss = func(err error) {
		sv.NoteHeartbeatMiss(err)
		if userMiss != nil {
			userMiss(err)
		}
	}
	c, err := DialEngineConfig(sv.cfg.Addr, hello, dial)

	sv.mu.Lock()
	defer sv.mu.Unlock()
	if err != nil {
		sv.consecutive++
		sv.state = EngineReconnecting
		sv.nextTry = time.Now().Add(backoffDelay(sv.consecutive, sv.cfg.BackoffBase, sv.cfg.BackoffMax))
		if sv.consecutive >= sv.cfg.QuarantineAfter {
			sv.state = EngineQuarantined
			sv.nextTry = time.Now().Add(sv.cfg.QuarantineFor)
		}
		var le *EngineLostError
		if errors.As(err, &le) {
			return nil, err
		}
		return nil, &EngineLostError{Addr: sv.cfg.Addr, Shard: sv.cfg.Hello.Shard,
			Timeout: isTimeout(err), Cause: err}
	}
	// A reconnect is a dial that repairs a recorded loss — pooled workers
	// each dialing their own session of a healthy engine is just fan-out.
	if sv.connected && sv.state != EngineHealthy {
		sv.reconnects.Add(1)
	}
	sv.connected = true
	sv.state = EngineHealthy
	sv.consecutive = 0
	sv.nextTry = time.Time{}
	return c, nil
}

// UpdateHello rotates the handshake future dials send — the topology
// mutation path installs the new graph's Hello (fresh digest, bumped
// generation ordinal) here so reconnects re-pin the engine instead of
// being rejected forever. Sessions already established are untouched;
// they keep executing against the engines their own handshake built.
func (sv *Supervisor) UpdateHello(h Hello) {
	sv.mu.Lock()
	sv.cfg.Hello = h
	sv.mu.Unlock()
}

// NoteLoss records a session loss (EOF, deadline, protocol violation on
// an established session): the engine leaves Healthy and the next Acquire
// dials immediately — only dial failures themselves back off.
func (sv *Supervisor) NoteLoss(err error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.state == EngineHealthy {
		sv.state = EngineReconnecting
		sv.nextTry = time.Time{}
	}
}

// NoteHeartbeatMiss counts a missed idle heartbeat and records the loss.
// Sessions dialed through Acquire report their misses here automatically.
func (sv *Supervisor) NoteHeartbeatMiss(err error) {
	sv.hbMisses.Add(1)
	sv.NoteLoss(err)
}

// backoffDelay is the capped exponential backoff with jitter: the k-th
// consecutive failure (1-based) waits uniformly in [d/2, d] for
// d = min(max, base << (k-1)). Jitter keeps a worker pool's redials of a
// shared engine from synchronizing into thundering-herd probes.
func backoffDelay(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(rand.Int63n(int64(half)+1))
	}
	return d
}
