package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

func testGraph(t *testing.T) *graph.G {
	t.Helper()
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	return g
}

func testPlan() *fault.Plan {
	return &fault.Plan{
		Seed:     77,
		DropProb: 0.01,
		Crashes:  []fault.Crash{{Node: 11, Round: 6}},
		Churn:    []fault.Churn{{Node: 3, From: 2, To: 9}},
		LinkDrops: []fault.LinkDrop{
			{From: 1, To: 2, Prob: 0.5},
		},
		LinkDelays: []fault.LinkDelay{
			{From: 9, To: 10, Rounds: 3},
			{From: 7, To: 8, Rounds: 2},
		},
	}
}

func testMsgs() []congest.Message {
	return []congest.Message{
		congest.MakeMessage(0, 1, 7, 1, [congest.PayloadWords]uint64{42}),
		congest.MakeMessage(3, 2, 9, 4, [congest.PayloadWords]uint64{1, 2, 3, 1<<64 - 1}),
		congest.MakeMessage(15, 14, 0, 2, [congest.PayloadWords]uint64{0, 5, 0, 0}),
	}
}

func TestHelloRoundTrip(t *testing.T) {
	g := testGraph(t)
	for name, plan := range map[string]*fault.Plan{"plan": testPlan(), "no-plan": nil} {
		t.Run(name, func(t *testing.T) {
			h := HelloFor(g, 3, 1, 2, 12345, plan)
			got, err := decodeHello(encodeHello(nil, h))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, h) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
			}
		})
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	h := HelloFor(testGraph(t), 2, 0, 1, 1, nil)
	b := encodeHello(nil, h)

	bad := append([]byte(nil), b...)
	bad[0] ^= 0xff
	if _, err := decodeHello(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("corrupt magic: got %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), b...)
	bad[4] ^= 0xff // version is the u16 after the magic
	if _, err := decodeHello(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("corrupt version: got %v, want ErrVersion", err)
	}
}

func TestHelloRejectsInflatedCounts(t *testing.T) {
	h := HelloFor(testGraph(t), 2, 0, 1, 1, testPlan())
	b := encodeHello(nil, h)
	// The edge count sits right after magic+version+seed+digest+gen+n.
	const edgeCountOff = 4 + 2 + 8 + 8 + 8 + 4
	bad := append([]byte(nil), b...)
	bad[edgeCountOff] = 0xff
	bad[edgeCountOff+1] = 0xff
	bad[edgeCountOff+2] = 0xff
	bad[edgeCountOff+3] = 0x7f
	if _, err := decodeHello(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("inflated edge count: got %v, want ErrBadFrame", err)
	}
	// Truncating anywhere must fail typed, never panic or over-allocate.
	for cut := 0; cut < len(b); cut += 7 {
		if _, err := decodeHello(b[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	w := Welcome{Version: Version, Shard: 3, PID: 4242}
	got, err := decodeWelcome(encodeWelcome(nil, w))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != w {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, w)
	}
	if _, err := decodeWelcome(encodeWelcome(nil, w)[:5]); err == nil {
		t.Fatal("truncated welcome decoded")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	re, err := decodeError(encodeError(nil, CodeGeneration, "nope"))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if re.Code != CodeGeneration || re.Msg != "nope" {
		t.Fatalf("round trip mismatch: %+v", re)
	}
	if !errors.Is(re, ErrGeneration) {
		t.Fatal("RemoteError does not unwrap to its sentinel")
	}

	// Oversized messages are clipped at encode time, not rejected.
	long := strings.Repeat("x", 1<<13)
	re, err = decodeError(encodeError(nil, CodeInternal, long))
	if err != nil {
		t.Fatalf("decode clipped: %v", err)
	}
	if len(re.Msg) != 1<<12 {
		t.Fatalf("clipped message length %d, want %d", len(re.Msg), 1<<12)
	}

	// A length field pointing past the payload is typed.
	bad := encodeError(nil, CodeInternal, "hi")
	bad[2] = 0xff
	if _, err := decodeError(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("inflated message length: got %v, want ErrBadFrame", err)
	}
}

func TestRemoteErrorUnwrapTaxonomy(t *testing.T) {
	cases := map[uint16]error{
		CodeBadMagic:     ErrBadMagic,
		CodeVersion:      ErrVersion,
		CodeGeneration:   ErrGeneration,
		CodeShardIndex:   ErrShardIndex,
		CodeBadPlan:      ErrBadPlan,
		CodeShuttingDown: ErrShuttingDown,
		CodeBadFrame:     ErrBadFrame,
		CodeInternal:     ErrEngine,
		999:              ErrEngine,
	}
	for code, want := range cases {
		if re := (&RemoteError{Code: code, Msg: "x"}); !errors.Is(re, want) {
			t.Errorf("code %d does not unwrap to %v", code, want)
		}
	}
}

func TestPushRoundTrip(t *testing.T) {
	msgs := testMsgs()
	round, got, err := decodePush(encodePush(nil, 17, msgs), nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if round != 17 || !reflect.DeepEqual(got, msgs) {
		t.Fatalf("round trip mismatch: round %d msgs %+v", round, got)
	}

	// Empty pushes (the round barrier with no sends) round-trip too.
	round, got, err = decodePush(encodePush(nil, 3, nil), nil)
	if err != nil || round != 3 || len(got) != 0 {
		t.Fatalf("empty push: round %d msgs %v err %v", round, got, err)
	}

	// Inflated count fails typed before allocating.
	bad := encodePush(nil, 1, msgs)
	bad[4], bad[5], bad[6], bad[7] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := decodePush(bad, nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("inflated push count: got %v, want ErrBadFrame", err)
	}
}

func TestBufferRoundTrip(t *testing.T) {
	msgs := testMsgs()
	got, err := decodeBuffer(encodeBuffer(nil, msgs), nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, msgs) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// decodeBuffer appends to its destination slice.
	pre := []congest.Message{congest.MakeMessage(5, 4, 1, 1, [congest.PayloadWords]uint64{})}
	got, err = decodeBuffer(encodeBuffer(nil, msgs), pre)
	if err != nil || len(got) != len(pre)+len(msgs) {
		t.Fatalf("append decode: len %d err %v", len(got), err)
	}
}

func TestScalarFramesRoundTrip(t *testing.T) {
	if a, err := decodePushAck(encodePushAck(nil, 12345)); err != nil || a != 12345 {
		t.Fatalf("push-ack: %d %v", a, err)
	}
	if r, err := decodeDeliver(encodeDeliver(nil, 678)); err != nil || r != 678 {
		t.Fatalf("deliver: %d %v", r, err)
	}
	if _, err := decodePushAck([]byte{1, 2}); err == nil {
		t.Fatal("short push-ack decoded")
	}
	if _, err := decodeDeliver([]byte{1, 2, 3, 4, 5}); !errors.Is(err, ErrBadFrame) {
		t.Fatal("trailing bytes in deliver accepted")
	}
}

func TestRunResultRoundTrip(t *testing.T) {
	cases := map[string]congest.RemoteResult{
		"clean": {
			Res: congest.Result{Rounds: 9, Messages: 100, Words: 220, MaxQueue: 3},
		},
		"faulty": {
			Res: congest.Result{
				Rounds: 40, Messages: 7, Words: 7, MaxQueue: 1,
				Faults: congest.FaultStats{Dropped: 3, LinkDropped: 2, Delayed: 5, Crashed: 1},
			},
			Loss: congest.LossRecord{Valid: true, Link: true, Round: 12, Edge: 34, From: 1, To: 2},
		},
	}
	for name, rr := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := decodeRunResult(encodeRunResult(nil, rr))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got != rr {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rr)
			}
		})
	}
}

func TestGraphDigest(t *testing.T) {
	g1 := testGraph(t)
	g2 := testGraph(t)
	if GraphDigest(g1) != GraphDigest(g2) {
		t.Fatal("identical topologies digest differently")
	}
	g3, _ := graph.Torus(4, 4)
	if err := g3.AddWeightedEdge(0, 5, 2.5); err != nil {
		t.Fatalf("add edge: %v", err)
	}
	if GraphDigest(g1) == GraphDigest(g3) {
		t.Fatal("extra edge not reflected in digest")
	}
	g4 := graph.New(16)
	for _, e := range g1.Edges() {
		w := e.W
		if e.U == 0 {
			w *= 2 // same topology, one weight changed
		}
		if err := g4.AddWeightedEdge(e.U, e.V, w); err != nil {
			t.Fatalf("add edge: %v", err)
		}
	}
	if GraphDigest(g1) == GraphDigest(g4) {
		t.Fatal("weight change not reflected in digest")
	}
}

// TestReadFrameRoundTrips drives the exported frame reader over one valid
// encoding of every frame type.
func TestReadFrameRoundTrips(t *testing.T) {
	g := testGraph(t)
	frames := []struct {
		t       FrameType
		payload []byte
	}{
		{FrameHello, encodeHello(nil, HelloFor(g, 2, 1, 1, 9, testPlan()))},
		{FrameWelcome, encodeWelcome(nil, Welcome{Version: Version, Shard: 1, PID: 7})},
		{FrameError, encodeError(nil, CodeShardIndex, "bad shard")},
		{FrameRunBegin, nil},
		{FramePush, encodePush(nil, 4, testMsgs())},
		{FramePushAck, encodePushAck(nil, 11)},
		{FrameDeliver, encodeDeliver(nil, 5)},
		{FrameBuffer, encodeBuffer(nil, testMsgs())},
		{FrameRunEnd, nil},
		{FrameRunResult, encodeRunResult(nil, congest.RemoteResult{Res: congest.Result{Rounds: 2}})},
		{FrameGoodbye, nil},
	}
	var stream bytes.Buffer
	for _, f := range frames {
		if err := writeFrame(&stream, f.t, f.payload); err != nil {
			t.Fatalf("write frame %d: %v", f.t, err)
		}
	}
	r := bytes.NewReader(stream.Bytes())
	var buf []byte
	for _, f := range frames {
		ft, v, err := ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", f.t, err)
		}
		if ft != f.t {
			t.Fatalf("frame type %d, want %d", ft, f.t)
		}
		_ = v
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestReadFrameErrors(t *testing.T) {
	read := func(b []byte) error {
		_, _, err := ReadFrame(bytes.NewReader(b), nil)
		return err
	}
	hdr := func(body uint32, t FrameType) []byte {
		return []byte{byte(body >> 24), byte(body >> 16), byte(body >> 8), byte(body), byte(t)}
	}

	if err := read(hdr(0, 0)[:4]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero-length body: %v", err)
	}
	if err := read(hdr(MaxFrame+1, FramePush)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized body: %v", err)
	}
	if err := read([]byte{0, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if err := read(hdr(100, FramePush)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated body: %v", err)
	}
	// A stream claiming a huge (but legal) frame and delivering nothing
	// must fail truncated without committing to the full allocation.
	if err := read(hdr(MaxFrame, FramePush)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated max frame: %v", err)
	}
	if err := read(hdr(1, 200)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown frame type: %v", err)
	}
	if err := read(append(hdr(2, FrameRunBegin), 0xaa)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("payload on empty frame: %v", err)
	}

	var huge bytes.Buffer
	if err := writeFrame(&huge, FramePush, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("writer accepted oversized frame: %v", err)
	}
}
