package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"distwalk/internal/congest"
	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// Payload codecs: fixed-width little-endian fields behind a bounds-checked
// cursor. Every variable-length section validates its count against the
// bytes actually present before allocating, so corrupt counts fail with
// ErrBadFrame instead of over-allocating.

// Protocol identity, carried in every Hello.
const (
	// Magic is the protocol magic number ("DWK1").
	Magic = 0x44574b31
	// Version is the protocol version; both ends must match exactly.
	// Version 2 added Hello.Gen (the topology generation ordinal that
	// lets a mutated client rotate the server's pinned digest).
	Version = 2
)

// Handshake rejection taxonomy: the server answers a bad Hello with an
// Error frame carrying one of these codes, and the client surfaces it as
// a *RemoteError that errors.Is-matches the corresponding sentinel.
const (
	CodeBadMagic     uint16 = 1
	CodeVersion      uint16 = 2
	CodeGeneration   uint16 = 3
	CodeShardIndex   uint16 = 4
	CodeBadPlan      uint16 = 5
	CodeShuttingDown uint16 = 6
	CodeBadFrame     uint16 = 7
	CodeInternal     uint16 = 8
)

// Typed handshake/session errors (see RemoteError).
var (
	// ErrBadMagic reports a Hello without the protocol magic.
	ErrBadMagic = errors.New("wire: bad protocol magic")
	// ErrVersion reports a protocol version mismatch.
	ErrVersion = errors.New("wire: protocol version mismatch")
	// ErrGeneration reports a graph generation (topology digest) that
	// conflicts with the one the server is already serving.
	ErrGeneration = errors.New("wire: graph generation mismatch")
	// ErrShardIndex reports a shard index outside the handshake's plan,
	// or one the server is pinned against.
	ErrShardIndex = errors.New("wire: shard index out of range")
	// ErrBadPlan reports a handshake whose shard bounds or fault plan the
	// engine rejected.
	ErrBadPlan = errors.New("wire: invalid shard or fault plan")
	// ErrShuttingDown reports a server draining toward exit.
	ErrShuttingDown = errors.New("wire: engine shutting down")
	// ErrEngine reports a remote engine failure not covered by a more
	// specific sentinel.
	ErrEngine = errors.New("wire: engine failure")
)

// RemoteError is a typed rejection received from the far side as an
// Error frame. errors.Is matches both the sentinel for its code
// (ErrVersion, ErrGeneration, ErrShardIndex, ...) and the catch-all
// ErrEngine, so callers can dispatch precisely or coarsely.
type RemoteError struct {
	Code uint16
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: engine rejected session (code %d): %s", e.Code, e.Msg)
}

// Unwrap exposes the code's sentinel plus the ErrEngine catch-all.
func (e *RemoteError) Unwrap() []error {
	var s error
	switch e.Code {
	case CodeBadMagic:
		s = ErrBadMagic
	case CodeVersion:
		s = ErrVersion
	case CodeGeneration:
		s = ErrGeneration
	case CodeShardIndex:
		s = ErrShardIndex
	case CodeBadPlan:
		s = ErrBadPlan
	case CodeShuttingDown:
		s = ErrShuttingDown
	case CodeBadFrame:
		s = ErrBadFrame
	default:
		return []error{ErrEngine}
	}
	return []error{s, ErrEngine}
}

type congestMessage = congest.Message

// dec is a bounds-checked little-endian cursor; underflow latches fail
// and reads return zero, so decoders check once at the end.
type dec struct {
	b    []byte
	off  int
	fail bool
}

func (d *dec) u8() uint8 {
	if d.off+1 > len(d.b) {
		d.fail = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.off+2 > len(d.b) {
		d.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// rem reports the bytes left, for count-vs-capacity validation.
func (d *dec) rem() int { return len(d.b) - d.off }

// done fails unless the payload decoded cleanly and completely.
func (d *dec) done(what string) error {
	if d.fail {
		return fmt.Errorf("%w: truncated %s payload", ErrBadFrame, what)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes in %s payload", ErrBadFrame, len(d.b)-d.off, what)
	}
	return nil
}

func putU8(b []byte, v uint8) []byte   { return append(b, v) }
func putU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// GraphDigest fingerprints a topology (FNV-1a 64 over the node count and
// the weighted edge list, in insertion order). The handshake carries it
// alongside the generation ordinal: a distwalkd process pins the
// (digest, generation) pair of the first session it serves and refuses
// sessions for any other digest — unless the session offers a strictly
// newer generation, which rotates the pin (see Hello.Gen) — so one
// cluster never silently mixes topologies.
func GraphDigest(g *graph.G) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	edges := g.Edges()
	mix(uint64(g.N()))
	mix(uint64(len(edges)))
	for _, e := range edges {
		mix(uint64(uint32(e.U)))
		mix(uint64(uint32(e.V)))
		mix(math.Float64bits(e.W))
	}
	return h
}

// Hello is the handshake: protocol identity, the graph generation and
// full weighted topology, the shard plan and this session's shard index,
// the engine edge capacity, the request-derivation seed (informational),
// and the fault plan the engine must charge.
type Hello struct {
	Seed   uint64
	Digest uint64
	// Gen is the client's topology generation ordinal. The server pins
	// (Digest, Gen) from the first session it serves; a later Hello with
	// a strictly greater Gen rotates the pin to its digest (the client
	// mutated its graph), while a different digest at the same or older
	// Gen is rejected with CodeGeneration.
	Gen     uint64
	N       int
	Edges   []graph.Edge
	Bounds  []int32
	Shard   int
	EdgeCap int
	Plan    *fault.Plan
}

// HelloFor builds the Hello a client sends for one shard of a cluster
// over g: PlanShards bounds for `engines` shards and the graph's digest.
// Gen is left zero; callers serving epoch-versioned topologies stamp it
// before dialing.
func HelloFor(g *graph.G, engines, shard, edgeCap int, seed uint64, plan *fault.Plan) Hello {
	return Hello{
		Seed:    seed,
		Digest:  GraphDigest(g),
		N:       g.N(),
		Edges:   g.Edges(),
		Bounds:  congest.PlanShards(g, engines),
		Shard:   shard,
		EdgeCap: edgeCap,
		Plan:    plan,
	}
}

const (
	edgeWire      = 16 // u32 u, u32 v, f64 w
	msgWire       = 44 // u32 from, u32 to, u16 kind, u16 words, 4×u64 payload
	crashWire     = 8
	churnWire     = 12
	linkDropWire  = 16
	linkDelayWire = 12
)

func encodeHello(b []byte, h Hello) []byte {
	b = putU32(b, Magic)
	b = putU16(b, Version)
	b = putU64(b, h.Seed)
	b = putU64(b, h.Digest)
	b = putU64(b, h.Gen)
	b = putU32(b, uint32(h.N))
	b = putU32(b, uint32(len(h.Edges)))
	for _, e := range h.Edges {
		b = putU32(b, uint32(e.U))
		b = putU32(b, uint32(e.V))
		b = putU64(b, math.Float64bits(e.W))
	}
	b = putU32(b, uint32(len(h.Bounds)))
	for _, v := range h.Bounds {
		b = putU32(b, uint32(v))
	}
	b = putU32(b, uint32(h.Shard))
	b = putU32(b, uint32(h.EdgeCap))
	if h.Plan == nil {
		return putU8(b, 0)
	}
	p := h.Plan
	b = putU8(b, 1)
	b = putU64(b, p.Seed)
	b = putU64(b, math.Float64bits(p.DropProb))
	b = putU32(b, uint32(len(p.Crashes)))
	for _, c := range p.Crashes {
		b = putU32(b, uint32(c.Node))
		b = putU32(b, uint32(c.Round))
	}
	b = putU32(b, uint32(len(p.Churn)))
	for _, c := range p.Churn {
		b = putU32(b, uint32(c.Node))
		b = putU32(b, uint32(c.From))
		b = putU32(b, uint32(c.To))
	}
	b = putU32(b, uint32(len(p.LinkDrops)))
	for _, l := range p.LinkDrops {
		b = putU32(b, uint32(l.From))
		b = putU32(b, uint32(l.To))
		b = putU64(b, math.Float64bits(l.Prob))
	}
	b = putU32(b, uint32(len(p.LinkDelays)))
	for _, l := range p.LinkDelays {
		b = putU32(b, uint32(l.From))
		b = putU32(b, uint32(l.To))
		b = putU32(b, uint32(l.Rounds))
	}
	return b
}

func decodeHello(p []byte) (Hello, error) {
	d := &dec{b: p}
	var h Hello
	if magic := d.u32(); !d.fail && magic != Magic {
		return h, fmt.Errorf("%w: 0x%08x", ErrBadMagic, magic)
	}
	if v := d.u16(); !d.fail && v != Version {
		return h, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	h.Seed = d.u64()
	h.Digest = d.u64()
	h.Gen = d.u64()
	h.N = int(d.u32())
	m := int(d.u32())
	if d.fail || m > d.rem()/edgeWire {
		return h, fmt.Errorf("%w: hello edge count %d exceeds payload", ErrBadFrame, m)
	}
	h.Edges = make([]graph.Edge, m)
	for i := range h.Edges {
		h.Edges[i] = graph.Edge{
			U: graph.NodeID(int32(d.u32())),
			V: graph.NodeID(int32(d.u32())),
			W: math.Float64frombits(d.u64()),
		}
	}
	nb := int(d.u32())
	if d.fail || nb > d.rem()/4 {
		return h, fmt.Errorf("%w: hello bounds count %d exceeds payload", ErrBadFrame, nb)
	}
	h.Bounds = make([]int32, nb)
	for i := range h.Bounds {
		h.Bounds[i] = int32(d.u32())
	}
	h.Shard = int(int32(d.u32()))
	h.EdgeCap = int(int32(d.u32()))
	if d.u8() != 0 {
		pl := &fault.Plan{}
		pl.Seed = d.u64()
		pl.DropProb = math.Float64frombits(d.u64())
		nc := int(d.u32())
		if d.fail || nc > d.rem()/crashWire {
			return h, fmt.Errorf("%w: hello crash count %d exceeds payload", ErrBadFrame, nc)
		}
		pl.Crashes = make([]fault.Crash, nc)
		for i := range pl.Crashes {
			pl.Crashes[i] = fault.Crash{Node: graph.NodeID(int32(d.u32())), Round: int(int32(d.u32()))}
		}
		nw := int(d.u32())
		if d.fail || nw > d.rem()/churnWire {
			return h, fmt.Errorf("%w: hello churn count %d exceeds payload", ErrBadFrame, nw)
		}
		pl.Churn = make([]fault.Churn, nw)
		for i := range pl.Churn {
			pl.Churn[i] = fault.Churn{
				Node: graph.NodeID(int32(d.u32())),
				From: int(int32(d.u32())),
				To:   int(int32(d.u32())),
			}
		}
		nd := int(d.u32())
		if d.fail || nd > d.rem()/linkDropWire {
			return h, fmt.Errorf("%w: hello link-drop count %d exceeds payload", ErrBadFrame, nd)
		}
		pl.LinkDrops = make([]fault.LinkDrop, nd)
		for i := range pl.LinkDrops {
			pl.LinkDrops[i] = fault.LinkDrop{
				From: graph.NodeID(int32(d.u32())),
				To:   graph.NodeID(int32(d.u32())),
				Prob: math.Float64frombits(d.u64()),
			}
		}
		nl := int(d.u32())
		if d.fail || nl > d.rem()/linkDelayWire {
			return h, fmt.Errorf("%w: hello link-delay count %d exceeds payload", ErrBadFrame, nl)
		}
		pl.LinkDelays = make([]fault.LinkDelay, nl)
		for i := range pl.LinkDelays {
			pl.LinkDelays[i] = fault.LinkDelay{
				From:   graph.NodeID(int32(d.u32())),
				To:     graph.NodeID(int32(d.u32())),
				Rounds: int(int32(d.u32())),
			}
		}
		h.Plan = pl
	}
	if err := d.done("hello"); err != nil {
		return h, err
	}
	return h, nil
}

// Welcome is the server's handshake acceptance.
type Welcome struct {
	Version uint16
	Shard   int
	PID     int
}

func encodeWelcome(b []byte, w Welcome) []byte {
	b = putU16(b, w.Version)
	b = putU32(b, uint32(w.Shard))
	b = putU32(b, uint32(w.PID))
	return b
}

func decodeWelcome(p []byte) (Welcome, error) {
	d := &dec{b: p}
	w := Welcome{
		Version: d.u16(),
		Shard:   int(int32(d.u32())),
		PID:     int(int32(d.u32())),
	}
	if err := d.done("welcome"); err != nil {
		return w, err
	}
	return w, nil
}

func encodeError(b []byte, code uint16, msg string) []byte {
	b = putU16(b, code)
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	b = putU16(b, uint16(len(msg)))
	return append(b, msg...)
}

func decodeError(p []byte) (*RemoteError, error) {
	d := &dec{b: p}
	code := d.u16()
	n := int(d.u16())
	if d.fail || n > d.rem() {
		return nil, fmt.Errorf("%w: error message length %d exceeds payload", ErrBadFrame, n)
	}
	msg := string(d.b[d.off : d.off+n])
	d.off += n
	if err := d.done("error"); err != nil {
		return nil, err
	}
	return &RemoteError{Code: code, Msg: msg}, nil
}

func encodeMsgs(b []byte, msgs []congest.Message) []byte {
	for i := range msgs {
		m := &msgs[i]
		b = putU32(b, uint32(m.From))
		b = putU32(b, uint32(m.To))
		b = putU16(b, m.Kind)
		b = putU16(b, uint16(m.Words()))
		for _, w := range m.W {
			b = putU64(b, w)
		}
	}
	return b
}

func (d *dec) msgs(count int, into []congest.Message) []congest.Message {
	for i := 0; i < count; i++ {
		from := graph.NodeID(int32(d.u32()))
		to := graph.NodeID(int32(d.u32()))
		kind := d.u16()
		words := int(d.u16())
		var w [congest.PayloadWords]uint64
		for j := range w {
			w[j] = d.u64()
		}
		into = append(into, congest.MakeMessage(from, to, kind, words, w))
	}
	return into
}

func encodePush(b []byte, round int, msgs []congest.Message) []byte {
	b = putU32(b, uint32(round))
	b = putU32(b, uint32(len(msgs)))
	return encodeMsgs(b, msgs)
}

func decodePush(p []byte, into []congest.Message) (int, []congest.Message, error) {
	d := &dec{b: p}
	round := int(int32(d.u32()))
	count := int(d.u32())
	if d.fail || count > d.rem()/msgWire {
		return 0, into, fmt.Errorf("%w: push count %d exceeds payload", ErrBadFrame, count)
	}
	into = d.msgs(count, into)
	if err := d.done("push"); err != nil {
		return 0, into, err
	}
	return round, into, nil
}

func encodePushAck(b []byte, active int) []byte { return putU32(b, uint32(active)) }

func decodePushAck(p []byte) (int, error) {
	d := &dec{b: p}
	active := int(int32(d.u32()))
	if err := d.done("push-ack"); err != nil {
		return 0, err
	}
	return active, nil
}

func encodeDeliver(b []byte, round int) []byte { return putU32(b, uint32(round)) }

func decodeDeliver(p []byte) (int, error) {
	d := &dec{b: p}
	round := int(int32(d.u32()))
	if err := d.done("deliver"); err != nil {
		return 0, err
	}
	return round, nil
}

// encodePing encodes a heartbeat nonce; the same codec serves Ping and
// Pong (a Pong echoes the Ping's nonce verbatim).
func encodePing(b []byte, nonce uint64) []byte { return putU64(b, nonce) }

func decodePing(p []byte) (uint64, error) {
	d := &dec{b: p}
	nonce := d.u64()
	if err := d.done("ping"); err != nil {
		return 0, err
	}
	return nonce, nil
}

func encodeBuffer(b []byte, msgs []congest.Message) []byte {
	b = putU32(b, uint32(len(msgs)))
	return encodeMsgs(b, msgs)
}

func decodeBuffer(p []byte, into []congest.Message) ([]congest.Message, error) {
	d := &dec{b: p}
	count := int(d.u32())
	if d.fail || count > d.rem()/msgWire {
		return into, fmt.Errorf("%w: buffer count %d exceeds payload", ErrBadFrame, count)
	}
	into = d.msgs(count, into)
	if err := d.done("buffer"); err != nil {
		return into, err
	}
	return into, nil
}

func encodeRunResult(b []byte, r congest.RemoteResult) []byte {
	b = putU32(b, uint32(r.Res.Rounds))
	b = putU64(b, uint64(r.Res.Messages))
	b = putU64(b, uint64(r.Res.Words))
	b = putU32(b, uint32(r.Res.MaxQueue))
	b = putU64(b, uint64(r.Res.Faults.Dropped))
	b = putU64(b, uint64(r.Res.Faults.LinkDropped))
	b = putU64(b, uint64(r.Res.Faults.Delayed))
	b = putU32(b, uint32(r.Res.Faults.Crashed))
	if r.Loss.Valid {
		b = putU8(b, 1)
	} else {
		b = putU8(b, 0)
	}
	if r.Loss.Link {
		b = putU8(b, 1)
	} else {
		b = putU8(b, 0)
	}
	b = putU32(b, uint32(r.Loss.Round))
	b = putU32(b, uint32(r.Loss.Edge))
	b = putU32(b, uint32(r.Loss.From))
	b = putU32(b, uint32(r.Loss.To))
	return b
}

func decodeRunResult(p []byte) (congest.RemoteResult, error) {
	d := &dec{b: p}
	var r congest.RemoteResult
	r.Res.Rounds = int(int32(d.u32()))
	r.Res.Messages = int64(d.u64())
	r.Res.Words = int64(d.u64())
	r.Res.MaxQueue = int(int32(d.u32()))
	r.Res.Faults.Dropped = int64(d.u64())
	r.Res.Faults.LinkDropped = int64(d.u64())
	r.Res.Faults.Delayed = int64(d.u64())
	r.Res.Faults.Crashed = int(int32(d.u32()))
	r.Loss.Valid = d.u8() != 0
	r.Loss.Link = d.u8() != 0
	r.Loss.Round = int32(d.u32())
	r.Loss.Edge = int32(d.u32())
	r.Loss.From = graph.NodeID(int32(d.u32()))
	r.Loss.To = graph.NodeID(int32(d.u32()))
	if err := d.done("run-result"); err != nil {
		return r, err
	}
	return r, nil
}
