package wire

import (
	"bufio"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"distwalk/internal/congest"
	"distwalk/internal/fault"
	"distwalk/internal/graph"
)

// startServer spins up a Server on a loopback listener and tears it down
// with the test.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// tokenPayload is the test protocol's message: a hop budget and a value,
// exercising RNG-driven routing so identity failures show up immediately.
type tokenPayload struct{ hops, val int32 }

func (p tokenPayload) Kind() uint16 { return 7 }
func (p tokenPayload) Words() int   { return 1 }
func (p tokenPayload) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{congest.Pack2(p.hops, p.val)}
}
func (tokenPayload) Decode(w [congest.PayloadWords]uint64) tokenPayload {
	h, v := congest.Unpack2(w[0])
	return tokenPayload{hops: h, val: v}
}

// tokenProto floods random-walking tokens from seed nodes and tallies the
// per-node receipt history; any divergence between transports perturbs
// the RNG streams and shows up in got.
type tokenProto struct {
	seeds []graph.NodeID
	hops  int32
	got   []int64
}

func newTokenProto(n int, seeds []graph.NodeID, hops int32) *tokenProto {
	return &tokenProto{seeds: seeds, hops: hops, got: make([]int64, n)}
}

func randNbr(c *congest.Ctx) graph.NodeID {
	nbrs := c.Neighbors()
	return nbrs[c.RNG().Intn(len(nbrs))].To
}

func (p *tokenProto) Init(c *congest.Ctx) {
	for _, s := range p.seeds {
		if c.Node() == s {
			congest.Send(c, randNbr(c), tokenPayload{hops: p.hops, val: int32(s)})
		}
	}
}

func (p *tokenProto) Step(c *congest.Ctx) {
	for _, m := range c.Inbox() {
		tk := congest.As[tokenPayload](m)
		p.got[c.Node()] += int64(tk.val)*31 + int64(tk.hops)
		if tk.hops > 0 {
			congest.Send(c, randNbr(c), tokenPayload{hops: tk.hops - 1, val: tk.val})
		}
	}
}

// dialGroup dials one EngineConn per shard of a cluster plan against a
// single server and returns the RemoteShard group plus its bounds.
func dialGroup(t *testing.T, addr string, g *graph.G, engines, edgeCap int, plan *fault.Plan) ([]congest.RemoteShard, []int32, []*EngineConn) {
	t.Helper()
	bounds := congest.PlanShards(g, engines)
	group := make([]congest.RemoteShard, len(bounds)-1)
	conns := make([]*EngineConn, len(bounds)-1)
	for i := range group {
		h := HelloFor(g, len(bounds)-1, i, edgeCap, 42, plan)
		c, err := DialEngine(addr, h)
		if err != nil {
			t.Fatalf("dial shard %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		group[i] = c
		conns[i] = c
	}
	return group, bounds, conns
}

// TestClusterRunIdentityTCP is the wire-level identity anchor: the same
// workload through real TCP sessions against a live Server must match the
// sequential engine bit for bit — Result counters, per-node receipt
// history, and run error.
func TestClusterRunIdentityTCP(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	seeds := []graph.NodeID{0, 7, 13, 20, 35}
	const hops = 40

	run := func(n *congest.Network) (congest.Result, error, []int64) {
		p := newTokenProto(g.N(), seeds, hops)
		res, err := n.Run(p)
		return res, err, p.got
	}

	seqNet := congest.NewNetwork(g, 42)
	wantRes, wantErr, wantGot := run(seqNet)
	if wantErr != nil {
		t.Fatalf("sequential run: %v", wantErr)
	}

	for _, engines := range []int{1, 2, 4} {
		_, addr := startServer(t, ServerConfig{PinShard: -1})
		group, bounds, conns := dialGroup(t, addr, g, engines, 1, nil)
		n := congest.NewNetwork(g, 42)
		if err := n.ConnectRemote(group, bounds); err != nil {
			t.Fatalf("%d engines: connect: %v", engines, err)
		}
		// Three runs back to back: session reuse must not leak state.
		for rep := 0; rep < 3; rep++ {
			n.Reseed(42)
			res, err, got := run(n)
			if err != nil {
				t.Fatalf("%d engines rep %d: %v", engines, rep, err)
			}
			if res != wantRes {
				t.Fatalf("%d engines rep %d: result %+v, want %+v", engines, rep, res, wantRes)
			}
			if !reflect.DeepEqual(got, wantGot) {
				t.Fatalf("%d engines rep %d: per-node receipts diverge", engines, rep)
			}
		}
		for _, c := range conns {
			st := c.Stats()
			if st.Runs != 3 || st.BytesOut == 0 || st.BytesIn == 0 {
				t.Fatalf("%d engines: implausible conn stats %+v", engines, st)
			}
		}
	}
}

// TestClusterRunIdentityTCPFaultPlan repeats the identity check under a
// seeded fault plan: drop rolls, crash schedules, churn, link faults and
// the first-loss record must all survive the wire.
func TestClusterRunIdentityTCPFaultPlan(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	plan := &fault.Plan{
		Seed:       77,
		DropProb:   0.02,
		Crashes:    []fault.Crash{{Node: 11, Round: 6}},
		Churn:      []fault.Churn{{Node: 30, From: 3, To: 9}},
		LinkDrops:  []fault.LinkDrop{{From: 1, To: 2, Prob: 0.5}},
		LinkDelays: []fault.LinkDelay{{From: 9, To: 10, Rounds: 3}},
	}
	seeds := []graph.NodeID{0, 7, 13, 20, 35}
	const hops = 40

	seqNet := congest.NewNetwork(g, 42)
	if err := seqNet.SetFaultPlan(plan); err != nil {
		t.Fatalf("fault plan: %v", err)
	}
	seqProto := newTokenProto(g.N(), seeds, hops)
	wantRes, wantErr := seqNet.Run(seqProto)
	if wantErr != nil {
		t.Fatalf("sequential run: %v", wantErr)
	}
	wantLoss := seqNet.LossError()
	if wantRes.Faults == (congest.FaultStats{}) {
		t.Fatal("fault plan charged nothing; workload too small to prove identity")
	}

	for _, engines := range []int{2, 4} {
		_, addr := startServer(t, ServerConfig{PinShard: -1})
		group, bounds, _ := dialGroup(t, addr, g, engines, 1, plan)
		n := congest.NewNetwork(g, 42)
		if err := n.SetFaultPlan(plan); err != nil {
			t.Fatalf("fault plan: %v", err)
		}
		if err := n.ConnectRemote(group, bounds); err != nil {
			t.Fatalf("connect: %v", err)
		}
		p := newTokenProto(g.N(), seeds, hops)
		res, err := n.Run(p)
		if err != nil {
			t.Fatalf("%d engines: %v", engines, err)
		}
		if res != wantRes {
			t.Fatalf("%d engines: result %+v, want %+v", engines, res, wantRes)
		}
		if !reflect.DeepEqual(p.got, seqProto.got) {
			t.Fatalf("%d engines: per-node receipts diverge under faults", engines)
		}
		gotLoss := n.LossError()
		switch {
		case (wantLoss == nil) != (gotLoss == nil):
			t.Fatalf("%d engines: loss %v, want %v", engines, gotLoss, wantLoss)
		case wantLoss != nil && wantLoss.Error() != gotLoss.Error():
			t.Fatalf("%d engines: loss %q, want %q", engines, gotLoss, wantLoss)
		}
	}
}

func TestHandshakeRejections(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	srv, addr := startServer(t, ServerConfig{PinShard: -1})

	t.Run("corrupt digest", func(t *testing.T) {
		h := HelloFor(g, 2, 0, 1, 1, nil)
		h.Digest ^= 1
		if _, err := DialEngine(addr, h); !errors.Is(err, ErrGeneration) {
			t.Fatalf("got %v, want ErrGeneration", err)
		}
	})

	t.Run("shard out of range", func(t *testing.T) {
		h := HelloFor(g, 2, 0, 1, 1, nil)
		h.Shard = 5
		if _, err := DialEngine(addr, h); !errors.Is(err, ErrShardIndex) {
			t.Fatalf("got %v, want ErrShardIndex", err)
		}
	})

	t.Run("bad bounds", func(t *testing.T) {
		h := HelloFor(g, 2, 0, 1, 1, nil)
		h.Bounds = []int32{0, 1} // does not cover [0, 16)
		if _, err := DialEngine(addr, h); !errors.Is(err, ErrBadPlan) {
			t.Fatalf("got %v, want ErrBadPlan", err)
		}
	})

	t.Run("generation pin", func(t *testing.T) {
		// A healthy session pins the generation...
		c, err := DialEngine(addr, HelloFor(g, 2, 0, 1, 1, nil))
		if err != nil {
			t.Fatalf("first dial: %v", err)
		}
		defer c.Close()
		// ...and a session for a different topology is refused.
		g2, _ := graph.Torus(4, 4)
		if err := g2.AddWeightedEdge(0, 5, 2); err != nil {
			t.Fatalf("add edge: %v", err)
		}
		if _, err := DialEngine(addr, HelloFor(g2, 2, 0, 1, 1, nil)); !errors.Is(err, ErrGeneration) {
			t.Fatalf("got %v, want ErrGeneration", err)
		}
	})

	t.Run("raw magic and version", func(t *testing.T) {
		for name, mangle := range map[string]func([]byte){
			"magic":   func(b []byte) { b[0] ^= 0xff },
			"version": func(b []byte) { b[4] ^= 0xff },
		} {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("%s: dial: %v", name, err)
			}
			payload := encodeHello(nil, HelloFor(g, 2, 0, 1, 1, nil))
			mangle(payload)
			bw := bufio.NewWriter(conn)
			if err := writeFrame(bw, FrameHello, payload); err != nil || bw.Flush() != nil {
				t.Fatalf("%s: write: %v", name, err)
			}
			ft, v, err := ReadFrame(bufio.NewReader(conn), nil)
			if err != nil || ft != FrameError {
				t.Fatalf("%s: reply frame %d err %v", name, ft, err)
			}
			re := v.(*RemoteError)
			want := map[string]uint16{"magic": CodeBadMagic, "version": CodeVersion}[name]
			if re.Code != want {
				t.Fatalf("%s: code %d, want %d", name, re.Code, want)
			}
			conn.Close()
		}
	})

	if rejects := srv.Metrics().Rejects.Load(); rejects < 6 {
		t.Fatalf("reject counter %d, want >= 6", rejects)
	}
}

func TestPinnedShardServer(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	_, addr := startServer(t, ServerConfig{PinShard: 1})
	if _, err := DialEngine(addr, HelloFor(g, 2, 0, 1, 1, nil)); !errors.Is(err, ErrShardIndex) {
		t.Fatalf("pinned server accepted shard 0: %v", err)
	}
	c, err := DialEngine(addr, HelloFor(g, 2, 1, 1, 1, nil))
	if err != nil {
		t.Fatalf("pinned server refused its own shard: %v", err)
	}
	c.Close()
}

// TestShutdownDrain pins the graceful-drain contract: a run in flight
// finishes through RunEnd, new sessions are refused, idle sessions close,
// and Shutdown returns once every session is gone.
func TestShutdownDrain(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	srv, addr := startServer(t, ServerConfig{PinShard: -1})
	h := HelloFor(g, 1, 0, 1, 1, nil)

	busy, err := DialEngine(addr, h)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer busy.Close()
	idle, err := DialEngine(addr, h)
	if err != nil {
		t.Fatalf("dial idle: %v", err)
	}
	defer idle.Close()

	// Put the first session mid-run: past the push barrier of round 0.
	if err := busy.RunBegin(); err != nil {
		t.Fatalf("run begin: %v", err)
	}
	if err := busy.SendPushes(0, []congest.Message{
		congest.MakeMessage(0, 1, 7, 1, [congest.PayloadWords]uint64{1}),
	}); err != nil {
		t.Fatalf("push: %v", err)
	}
	if _, err := busy.ReadPushAck(); err != nil {
		t.Fatalf("push ack: %v", err)
	}

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()

	// The drain must not complete while the run is in flight.
	select {
	case <-done:
		t.Fatal("shutdown returned with a run in flight")
	case <-time.After(50 * time.Millisecond):
	}

	// New sessions are refused while draining.
	if _, err := DialEngine(addr, h); err == nil {
		t.Fatal("dial succeeded during drain")
	}

	// The in-flight run completes normally...
	if err := busy.SendDeliver(1); err != nil {
		t.Fatalf("deliver: %v", err)
	}
	if buf, err := busy.ReadBuffer(nil); err != nil || len(buf) != 1 {
		t.Fatalf("buffer: %d msgs, err %v", len(buf), err)
	}
	rr, err := busy.FinishRun()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if rr.Res.Messages != 1 {
		t.Fatalf("drained run result %+v, want 1 message", rr.Res)
	}

	// ...and the drain then finishes (idle session force-closed).
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not return after the run finished")
	}

	// The drained session is closed: the next run fails.
	if err := busy.RunBegin(); err == nil {
		if err := busy.SendPushes(0, nil); err == nil {
			if _, err := busy.ReadPushAck(); err == nil {
				t.Fatal("session usable after drain")
			}
		}
	}
}

// TestSessionBadFrames pins the server's typed rejection of protocol
// violations inside an established session.
func TestSessionBadFrames(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	for name, tc := range map[string]struct {
		drive func(c *EngineConn) error
	}{
		"push outside shard": {func(c *EngineConn) error {
			if err := c.RunBegin(); err != nil {
				return err
			}
			// Node 15 belongs to shard 1 of a 2-shard plan; shard 0 must
			// refuse to carry its sends.
			if err := c.SendPushes(0, []congest.Message{
				congest.MakeMessage(15, 14, 7, 1, [congest.PayloadWords]uint64{}),
			}); err != nil {
				return err
			}
			_, err := c.ReadPushAck()
			return err
		}},
		"goodbye then push": {func(c *EngineConn) error {
			if err := writeFrame(c.bw, FrameGoodbye, nil); err != nil {
				return err
			}
			if err := c.SendPushes(0, nil); err != nil {
				return err
			}
			_, err := c.ReadPushAck()
			return err
		}},
	} {
		t.Run(name, func(t *testing.T) {
			_, addr := startServer(t, ServerConfig{PinShard: -1})
			c, err := DialEngine(addr, HelloFor(g, 2, 0, 1, 1, nil))
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer c.Close()
			if err := tc.drive(c); err == nil {
				t.Fatal("protocol violation accepted")
			}
		})
	}
}

// TestServerMetrics sanity-checks the counter plumbing end to end.
func TestServerMetrics(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	srv, addr := startServer(t, ServerConfig{PinShard: -1})
	group, bounds, _ := dialGroup(t, addr, g, 2, 1, nil)
	n := congest.NewNetwork(g, 42)
	if err := n.ConnectRemote(group, bounds); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, err := n.Run(newTokenProto(g.N(), []graph.NodeID{0, 5}, 10)); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := srv.Metrics().Snapshot()
	for _, key := range []string{"sessions", "runs", "rounds", "msgs_in", "msgs_out", "bytes_in", "bytes_out"} {
		if snap[key] <= 0 {
			t.Fatalf("metric %s = %d, want > 0 (snapshot %v)", key, snap[key], snap)
		}
	}
	if snap["active_sessions"] != 2 {
		t.Fatalf("active_sessions = %d, want 2", snap["active_sessions"])
	}
}
