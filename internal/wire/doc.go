// Package wire is the cluster-mode transport: a length-prefixed TCP
// protocol that lets the congest package's shard engines run as separate
// processes (cmd/distwalkd) while the simulated execution stays
// bit-identical to the in-process engines.
//
// # Session model
//
// One connection is one session: a client worker (one pooled Service
// network) driving one remote ShardEngine. A cluster of S engines serving
// W workers therefore carries W×S sessions; sessions share nothing but
// the server process, mirroring the in-process design where every pooled
// worker owns its own Network. A session is strictly synchronous — the
// client writes one request frame and reads exactly one reply (RunBegin
// and Goodbye, which have no reply, are the exceptions) — so neither end
// ever needs to multiplex.
//
// # Framing
//
// Every frame is:
//
//	u32be  body length (1 ≤ len ≤ MaxFrame, counts the type byte)
//	u8     frame type
//	...    payload (fixed-width little-endian fields)
//
// A reader validates the length before allocating and reads the body in
// bounded chunks, so corrupt or hostile length fields cannot balloon
// memory; payload decoders validate every count field against the bytes
// actually present. All decode failures are typed (ErrBadFrame,
// ErrFrameTooBig, ErrTruncated) and never panic — the fuzz target in
// fuzz_test.go pins this.
//
// # Handshake
//
// The client opens with Hello: protocol magic and version, the graph
// generation (GraphDigest over the weighted topology), the full edge
// list, the shard plan (PlanShards bounds), the session's shard index,
// the engine edge capacity, the service seed (informational) and the
// fault plan the engine must charge. The server verifies the digest
// against the shipped topology, pins the first generation it serves
// (later sessions offering a different generation are rejected with
// CodeGeneration), checks the shard index against the plan and any
// -shard pin (CodeShardIndex), compiles the engine (bad plans fail with
// CodeBadPlan) and answers Welcome. Any rejection is an Error frame
// carrying a typed code; the client surfaces it as a *RemoteError whose
// Unwrap matches the corresponding sentinel (ErrGeneration,
// ErrShardIndex, ...).
//
// # Round cadence
//
// A run is:
//
//	RunBegin                        (no reply; engine resets)
//	repeat per round r = 0, 1, ...:
//	  Push{r, sends}  → PushAck{active}
//	  ... client decides: quiesce/halt/budget/cancel? ...
//	  Deliver{r+1}    → Buffer{delivered messages}
//	RunEnd            → RunResult{counters, first loss}
//
// Push ships the round's sends from the engine's node range unresolved
// (from, to, kind, words, payload); the engine resolves the least-loaded
// parallel-edge pick and the delay-start write with Network.send's exact
// semantics, and acks with its active edge count — its contribution to
// the client's quiescence verdict. Deliver drains the engine's edge
// range for the round in ascending edge order, charging faults in the
// canonical delay → crash → loss order, and returns the surviving
// messages. The client writes the round's frames to all S engines before
// reading any reply, so engines work concurrently; replies merge in
// ascending shard order, which reproduces the sequential engine's global
// ascending-directed-edge delivery order (engines own ascending
// contiguous edge ranges). RunResult returns the engine's Result
// counters and first-loss record, merged client-side exactly as the
// in-process sharded run merges its shards.
//
// # Liveness: deadlines, heartbeats, idle reaping
//
// Every exchange on an established session runs under a per-round I/O
// deadline (DialConfig.RoundTimeout; the Service derives it from the
// request context, floored so slow-but-alive engines are not misread as
// dead). A blown deadline — hung process, network partition — fails the
// exchange with an *EngineLostError matching both ErrEngineTimeout and
// ErrEngineLost; connection losses (EOF, reset, a SIGKILLed daemon)
// match only ErrEngineLost. Either way the session is marked broken and
// must be discarded: the round loop writes to all engines before reading
// replies, so after a mid-run failure the client cannot know which
// frames the surviving sessions consumed.
//
// While a session is idle, the client sends Ping{nonce} frames on a
// fixed cadence (DialConfig.HeartbeatInterval) and the server answers
// Pong{nonce}; a missed or mismatched pong reports the engine dead
// through OnHeartbeatMiss without waiting for the next request to trip a
// deadline. Heartbeats never interleave with a run — a run in flight is
// its own liveness signal, so the ticker skips while the session lock is
// held. Symmetrically, a server configured with an IdleTimeout reaps
// sessions that neither run nor ping (distwalkd -idle-timeout; set it
// above the clients' heartbeat interval so heartbeating sessions live
// forever).
//
// # Reconnection
//
// A Supervisor owns one engine address's client-side lifecycle. Session
// losses mark the engine reconnecting and the next Acquire redials
// immediately; failed dials back off on a capped exponential schedule
// with jitter (so a worker pool's redials do not synchronize), and too
// many consecutive dial failures quarantine the address behind a circuit
// breaker that fails fast until a cooldown passes. Every redial re-sends
// the original Hello verbatim — digest pin included — so a restarted
// engine serving a different graph generation is rejected, never
// silently adopted. The supervisor counts reconnects (dials that repair
// a recorded loss) and heartbeat misses for the Service's stats surface.
//
// # Shutdown
//
// A draining server (SIGINT/SIGTERM in distwalkd) closes its listener
// and idle sessions immediately, and lets sessions inside a run finish
// it: the run's RunEnd completes the result exchange, then the session
// closes. New handshakes during the drain are rejected with
// CodeShuttingDown.
package wire
