package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Framing: every frame is a 4-byte big-endian body length followed by the
// body — a 1-byte frame type and the type's payload. The length counts
// the type byte, so it is always >= 1; bodies above MaxFrame are a
// protocol violation on both ends (the reader refuses before allocating,
// the writer refuses before sending).

const (
	// MaxFrame is the maximum frame body size (type byte + payload).
	// 64 MiB bounds a Push/Buffer frame to ~1.5M messages, far above any
	// round this module produces, while keeping a malicious length field
	// from committing the reader to an absurd allocation.
	MaxFrame = 1 << 26

	// readChunk bounds how much readFrame allocates ahead of the bytes
	// actually received, so a truncated stream with an inflated length
	// field cannot balloon memory.
	readChunk = 1 << 16
)

// FrameType tags a frame body.
type FrameType uint8

// The protocol's frame types; see doc.go for the session state machine.
const (
	FrameHello     FrameType = 1  // client → server: handshake
	FrameWelcome   FrameType = 2  // server → client: handshake accepted
	FrameError     FrameType = 3  // server → client: typed rejection; session over
	FrameRunBegin  FrameType = 4  // client → server: reset engine for a run (no reply)
	FramePush      FrameType = 5  // client → server: one round's sends
	FramePushAck   FrameType = 6  // server → client: active edge count
	FrameDeliver   FrameType = 7  // client → server: deliver one round
	FrameBuffer    FrameType = 8  // server → client: delivered messages
	FrameRunEnd    FrameType = 9  // client → server: finish the run
	FrameRunResult FrameType = 10 // server → client: counters + first loss
	FrameGoodbye   FrameType = 11 // client → server: clean close
	FramePing      FrameType = 12 // client → server: idle heartbeat (u64 nonce)
	FramePong      FrameType = 13 // server → client: heartbeat echo (same nonce)
)

// Typed framing errors. Decoding failures never panic and never allocate
// proportionally to a corrupt length or count field; they return one of
// these (possibly wrapped with context).
var (
	// ErrFrameTooBig reports a frame body above MaxFrame (either side).
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	// ErrBadFrame reports a malformed frame: zero-length body, a payload
	// that fails to decode, trailing bytes, or an unexpected frame type.
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrTruncated reports a stream that ended inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
)

// writeFrame emits one frame. The caller flushes any buffering.
func writeFrame(w io.Writer, t FrameType, payload []byte) error {
	body := 1 + len(payload)
	if body > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, body)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(body))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, reusing buf's backing array when it is big
// enough; the returned payload aliases the (possibly grown) buffer, which
// the caller should retain for the next call. The payload is read in
// readChunk steps so a truncated stream claiming a huge frame allocates
// no more than what actually arrived (plus one chunk).
func readFrame(r io.Reader, buf []byte) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, buf[:0], fmt.Errorf("%w: short header", ErrTruncated)
		}
		return 0, buf[:0], err // clean EOF between frames stays io.EOF
	}
	body := binary.BigEndian.Uint32(hdr[:4])
	if body == 0 {
		return 0, buf[:0], fmt.Errorf("%w: zero-length body", ErrBadFrame)
	}
	if body > MaxFrame {
		return 0, buf[:0], fmt.Errorf("%w: %d bytes", ErrFrameTooBig, body)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, buf[:0], fmt.Errorf("%w: missing frame type", ErrTruncated)
	}
	plen := int(body) - 1
	buf = buf[:0]
	for len(buf) < plen {
		k := plen - len(buf)
		if k > readChunk {
			k = readChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			// Wrap the cause too: the server's idle reaper classifies
			// deadline expiries (net.Error timeouts) behind ErrTruncated.
			return 0, buf[:0], fmt.Errorf("%w: body ended at %d of %d bytes: %w", ErrTruncated, start, plen, err)
		}
	}
	return FrameType(hdr[4]), buf, nil
}

// ReadFrame is the exported form of the frame reader, for tests and the
// fuzz target: it parses one frame from r and fully decodes the payload
// of every known frame type, returning a typed error (never panicking)
// on truncated, oversized or corrupt input. Unknown frame types fail
// with ErrBadFrame.
func ReadFrame(r io.Reader, buf []byte) (FrameType, any, error) {
	t, payload, err := readFrame(r, buf)
	if err != nil {
		return t, nil, err
	}
	var v any
	switch t {
	case FrameHello:
		v, err = decodeHello(payload)
	case FrameWelcome:
		v, err = decodeWelcome(payload)
	case FrameError:
		v, err = decodeError(payload)
	case FrameRunBegin, FrameRunEnd, FrameGoodbye:
		if len(payload) != 0 {
			err = fmt.Errorf("%w: unexpected payload on frame type %d", ErrBadFrame, t)
		}
	case FramePush:
		var round int
		var msgs []congestMessage
		round, msgs, err = decodePush(payload, nil)
		v = pushFrame{Round: round, Msgs: msgs}
	case FramePushAck:
		v, err = decodePushAck(payload)
	case FrameDeliver:
		v, err = decodeDeliver(payload)
	case FrameBuffer:
		var msgs []congestMessage
		msgs, err = decodeBuffer(payload, nil)
		v = msgs
	case FrameRunResult:
		v, err = decodeRunResult(payload)
	case FramePing, FramePong:
		v, err = decodePing(payload)
	default:
		err = fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, t)
	}
	if err != nil {
		return t, nil, err
	}
	return t, v, nil
}

// pushFrame is ReadFrame's decoded form of a Push frame.
type pushFrame struct {
	Round int
	Msgs  []congestMessage
}
