package wire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// The resilience suite pins the failure-detection layer in isolation:
// heartbeat frames, per-exchange deadlines, the loss taxonomy, the idle
// reaper, and the supervisor's backoff/breaker state machine. The chaos
// suite at the repo root covers the same machinery end to end against
// real daemon processes.

// fakeEngine accepts sessions, answers the handshake verbatim, and then
// follows mode: "silent" keeps reading frames but never replies (a hung
// engine), "vanish" closes right after the welcome (a dying engine),
// "echo" answers pings like a real server.
func fakeEngine(t *testing.T, mode string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				_, payload, err := readFrame(br, nil)
				if err != nil {
					return
				}
				h, err := decodeHello(payload)
				if err != nil {
					return
				}
				sb := encodeWelcome(nil, Welcome{Version: Version, Shard: h.Shard, PID: 1})
				if writeFrame(bw, FrameWelcome, sb) != nil || bw.Flush() != nil {
					return
				}
				switch mode {
				case "vanish":
					return
				case "silent":
					io.Copy(io.Discard, br)
				case "echo":
					var buf []byte
					for {
						ft, p, err := readFrame(br, buf)
						buf = p[:0]
						if err != nil || ft != FramePing {
							return
						}
						if writeFrame(bw, FramePong, p) != nil || bw.Flush() != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func testHello(t *testing.T) Hello {
	t.Helper()
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatalf("torus: %v", err)
	}
	return HelloFor(g, 1, 0, 1, 42, nil)
}

// TestPingPong drives heartbeat exchanges against a real Server and
// checks both the round trips and the server-side counter.
func TestPingPong(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{PinShard: -1})
	c, err := DialEngine(addr, testHello(t))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if got := srv.Metrics().Pings.Load(); got != 3 {
		t.Fatalf("server answered %d pings, want 3", got)
	}
	if c.Broken() {
		t.Fatal("session marked broken after successful pings")
	}
	// A session that pinged is still a working engine session.
	if err := c.RunBegin(); err != nil {
		t.Fatalf("run begin after pings: %v", err)
	}
	if err := c.SendPushes(0, nil); err != nil {
		t.Fatalf("push after pings: %v", err)
	}
	if _, err := c.ReadPushAck(); err != nil {
		t.Fatalf("push ack after pings: %v", err)
	}
	if _, err := c.FinishRun(); err != nil {
		t.Fatalf("finish after pings: %v", err)
	}
}

// TestRoundDeadlineTimesOut pins the headline fix: a hung engine fails
// the exchange with ErrEngineTimeout within the round deadline instead of
// blocking forever.
func TestRoundDeadlineTimesOut(t *testing.T) {
	addr := fakeEngine(t, "silent")
	c, err := DialEngineConfig(addr, testHello(t), DialConfig{RoundTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.RunBegin(); err != nil {
		t.Fatalf("run begin: %v", err)
	}
	if err := c.SendPushes(0, nil); err != nil {
		t.Fatalf("push: %v", err)
	}
	start := time.Now()
	_, err = c.ReadPushAck()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("push ack from a silent engine succeeded")
	}
	if !errors.Is(err, ErrEngineTimeout) || !errors.Is(err, ErrEngineLost) {
		t.Fatalf("err = %v, want ErrEngineTimeout (and ErrEngineLost)", err)
	}
	var le *EngineLostError
	if !errors.As(err, &le) || !le.Timeout || le.Addr != addr {
		t.Fatalf("err = %#v, want *EngineLostError{Timeout: true, Addr: %s}", err, addr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, want ~150ms", elapsed)
	}
	if !c.Broken() {
		t.Fatal("timed-out session not marked broken")
	}
}

// TestEngineLostOnEOF pins the taxonomy for a dying engine: connection
// gone is ErrEngineLost but NOT ErrEngineTimeout.
func TestEngineLostOnEOF(t *testing.T) {
	addr := fakeEngine(t, "vanish")
	c, err := DialEngineConfig(addr, testHello(t), DialConfig{RoundTimeout: time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.RunBegin(); err != nil {
		t.Fatalf("run begin: %v", err)
	}
	// The write may land in kernel buffers; the read must surface the loss.
	c.SendPushes(0, nil)
	_, err = c.ReadPushAck()
	if err == nil {
		t.Fatal("push ack from a closed engine succeeded")
	}
	if !errors.Is(err, ErrEngineLost) {
		t.Fatalf("err = %v, want ErrEngineLost", err)
	}
	if errors.Is(err, ErrEngineTimeout) {
		t.Fatalf("EOF classified as timeout: %v", err)
	}
	if !c.Broken() {
		t.Fatal("lost session not marked broken")
	}
}

// TestHeartbeatDetectsDeadEngine: an idle session with heartbeats learns
// its engine died without any run in flight, reports the miss once, and
// marks itself broken.
func TestHeartbeatDetectsDeadEngine(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{PinShard: -1})
	miss := make(chan error, 4)
	c, err := DialEngineConfig(addr, testHello(t), DialConfig{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		OnHeartbeatMiss:   func(err error) { miss <- err },
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	srv.Close() // force-close every session; the next ping must fail
	select {
	case err := <-miss:
		if !errors.Is(err, ErrEngineLost) {
			t.Fatalf("miss error = %v, want ErrEngineLost", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("heartbeat never reported the dead engine")
	}
	if !c.Broken() {
		t.Fatal("missed-heartbeat session not marked broken")
	}
	select {
	case err := <-miss:
		t.Fatalf("second miss reported for one session: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestIdleTimeoutReapsSilentSessions: the server-side reaper closes a
// session that neither runs nor pings, while a heartbeating session on
// the same server stays alive well past the idle window.
func TestIdleTimeoutReapsSilentSessions(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{PinShard: -1, IdleTimeout: 200 * time.Millisecond})
	h := testHello(t)
	beat, err := DialEngineConfig(addr, h, DialConfig{
		HeartbeatInterval: 40 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
	})
	if err != nil {
		t.Fatalf("dial heartbeating: %v", err)
	}
	defer beat.Close()
	mute, err := DialEngine(addr, h)
	if err != nil {
		t.Fatalf("dial mute: %v", err)
	}
	defer mute.Close()

	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().IdleReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Metrics().IdleReaped.Load(); got != 1 {
		t.Fatalf("reaped %d sessions, want 1 (the heartbeating one must survive)", got)
	}
	// The heartbeating session outlived several idle windows and still runs.
	beat.Reserve()
	defer beat.Release()
	if err := beat.RunBegin(); err != nil {
		t.Fatalf("run begin on heartbeating session: %v", err)
	}
	if err := beat.SendPushes(0, nil); err != nil {
		t.Fatalf("push: %v", err)
	}
	if _, err := beat.ReadPushAck(); err != nil {
		t.Fatalf("heartbeating session died under the reaper: %v", err)
	}
	if _, err := beat.FinishRun(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	// The mute session is gone: its next exchange fails typed.
	mute.RunBegin()
	mute.SendPushes(0, nil)
	if _, err := mute.ReadPushAck(); !errors.Is(err, ErrEngineLost) {
		t.Fatalf("reaped session's next exchange = %v, want ErrEngineLost", err)
	}
}

// TestSupervisorReconnectAndBreaker walks the supervisor through the full
// lifecycle: healthy acquire → engine death → immediate redial →
// backed-off fail-fast → quarantine → engine restart on the same port →
// recovery with a counted reconnect and the digest-pinned handshake.
func TestSupervisorReconnectAndBreaker(t *testing.T) {
	srv, addr := startServer(t, ServerConfig{PinShard: -1})
	sv := NewSupervisor(SupervisorConfig{
		Addr:            addr,
		Hello:           testHello(t),
		BackoffBase:     10 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		QuarantineAfter: 3,
		QuarantineFor:   300 * time.Millisecond,
	})
	c, err := sv.Acquire()
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if sv.State() != EngineHealthy {
		t.Fatalf("state after acquire = %v, want healthy", sv.State())
	}
	c.Close()
	srv.Close() // engine dies; the listener port is now free

	sv.NoteLoss(errors.New("synthetic loss"))
	if sv.State() != EngineReconnecting {
		t.Fatalf("state after loss = %v, want reconnecting", sv.State())
	}
	// The first redial is immediate (no backoff window yet) but fails:
	// nothing listens. Keep dialing until the breaker trips.
	deadline := time.Now().Add(10 * time.Second)
	for sv.State() != EngineQuarantined {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped; state %v", sv.State())
		}
		if _, err := sv.Acquire(); err == nil {
			t.Fatal("acquire succeeded with no listener")
		} else if !errors.Is(err, ErrEngineLost) {
			t.Fatalf("acquire err = %v, want ErrEngineLost", err)
		}
		time.Sleep(15 * time.Millisecond)
	}
	// Inside the quarantine window every acquire fails fast.
	if _, err := sv.Acquire(); !errors.Is(err, ErrEngineLost) {
		t.Fatalf("quarantined acquire = %v, want fail-fast ErrEngineLost", err)
	}

	// Restart the engine on the same address; after the cooldown the
	// probe dial recovers the supervisor.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	srv2 := NewServer(ServerConfig{PinShard: -1})
	go srv2.Serve(ln)
	t.Cleanup(srv2.Close)

	deadline = time.Now().Add(10 * time.Second)
	for {
		c, err = sv.Acquire()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never recovered: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer c.Close()
	if sv.State() != EngineHealthy {
		t.Fatalf("state after recovery = %v, want healthy", sv.State())
	}
	if got := sv.Reconnects(); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
	// The re-handshake pinned the same digest: the session works.
	c.Reserve()
	defer c.Release()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping on reconnected session: %v", err)
	}
}

// TestBackoffDelayBounds pins the jittered capped exponential schedule:
// attempt k waits in [d/2, d] for d = min(max, base << (k-1)).
func TestBackoffDelayBounds(t *testing.T) {
	const base, cap = 100 * time.Millisecond, 5 * time.Second
	for k := 1; k <= 12; k++ {
		want := base << (k - 1)
		if k > 7 { // 100ms << 6 = 6.4s > cap
			want = cap
		}
		if want > cap {
			want = cap
		}
		for i := 0; i < 32; i++ {
			d := backoffDelay(k, base, cap)
			if d < want/2 || d > want {
				t.Fatalf("backoffDelay(%d) = %v outside [%v, %v]", k, d, want/2, want)
			}
		}
	}
}

// TestEngineLostErrorUnwrap pins the multi-unwrap contract the service
// layer depends on: timeout losses match both sentinels, plain losses
// only ErrEngineLost, and the cause chain stays visible.
func TestEngineLostErrorUnwrap(t *testing.T) {
	cause := errors.New("boom")
	to := &EngineLostError{Addr: "x", Shard: 1, Timeout: true, Cause: cause}
	if !errors.Is(to, ErrEngineTimeout) || !errors.Is(to, ErrEngineLost) || !errors.Is(to, cause) {
		t.Fatalf("timeout loss unwrap broken: %v", to)
	}
	plain := &EngineLostError{Addr: "x", Shard: 1, Cause: cause}
	if errors.Is(plain, ErrEngineTimeout) {
		t.Fatalf("plain loss matches ErrEngineTimeout: %v", plain)
	}
	if !errors.Is(plain, ErrEngineLost) || !errors.Is(plain, cause) {
		t.Fatalf("plain loss unwrap broken: %v", plain)
	}
	// Losses are remote-shard failures to congest and therefore
	// ErrClusterEngine to the public surface.
	wrapped := congestRemoteFail(plain)
	if !errors.Is(wrapped, congest.ErrRemoteShard) || !errors.Is(wrapped, ErrEngineLost) {
		t.Fatalf("service-layer wrap broken: %v", wrapped)
	}
}

// congestRemoteFail mirrors congest's remoteFail wrapping, keeping the
// cross-package taxonomy pinned here.
func congestRemoteFail(err error) error {
	return errors.Join(congest.ErrRemoteShard, err)
}
