// Package spectral computes exact spectral quantities of small graphs —
// the second eigenvalue λ₂ of the walk's transition matrix, the spectral
// gap 1−λ₂, Cheeger-style conductance brackets, and the exact mixing time
// τ^x(ε) — as ground truth for the decentralized estimator of Section 4.2.
//
// The paper relates these quantities as (Section 4.2, citing Jerrum &
// Sinclair): 1/(1−λ₂) ≤ τ_mix ≤ log n/(1−λ₂) and
// Θ(1−λ₂) ≤ Φ ≤ Θ(√(1−λ₂)).
package spectral

import (
	"fmt"
	"math"

	"distwalk/internal/dist"
	"distwalk/internal/graph"
)

// maxEigN caps the dense eigensolver's input size; beyond this the O(n³)
// Jacobi sweeps get slow and callers should rely on MixingTimeFrom instead.
const maxEigN = 2000

// TransitionSpectrum returns the eigenvalues of the random-walk transition
// matrix P = D⁻¹A in non-increasing order. P is similar to the symmetric
// N = D^{-1/2} A D^{-1/2}, so its spectrum is real; we diagonalize N with
// cyclic Jacobi rotations.
func TransitionSpectrum(g *graph.G) ([]float64, error) {
	n := g.N()
	switch {
	case n == 0:
		return nil, fmt.Errorf("spectral: empty graph")
	case n > maxEigN:
		return nil, fmt.Errorf("spectral: n=%d exceeds dense eigensolver cap %d", n, maxEigN)
	}
	for v := 0; v < n; v++ {
		if g.Degree(graph.NodeID(v)) == 0 {
			return nil, fmt.Errorf("spectral: node %d is isolated", v)
		}
	}
	// Build N = D^{-1/2} A D^{-1/2} with weighted degrees.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		s := e.W / math.Sqrt(g.WeightedDegree(e.U)*g.WeightedDegree(e.V))
		a[e.U][e.V] += s
		a[e.V][e.U] += s
	}
	eig, err := SymEig(a)
	if err != nil {
		return nil, err
	}
	return eig, nil
}

// SpectralGap returns 1 − λ₂ where λ₂ is the second-largest eigenvalue of
// the transition matrix.
func SpectralGap(g *graph.G) (float64, error) {
	eig, err := TransitionSpectrum(g)
	if err != nil {
		return 0, err
	}
	if len(eig) < 2 {
		return 1, nil
	}
	return 1 - eig[1], nil
}

// CheegerBounds returns the conductance bracket implied by the spectral
// gap: gap/2 ≤ Φ ≤ √(2·gap) (the discrete Cheeger inequality).
func CheegerBounds(gap float64) (lo, hi float64) {
	if gap < 0 {
		gap = 0
	}
	return gap / 2, math.Sqrt(2 * gap)
}

// MixingTimeBracket returns the τ_mix bracket implied by the spectral gap
// (Section 4.2): 1/gap ≤ τ_mix ≤ ln(n)/gap. It returns an error for a
// non-positive gap (disconnected or bipartite graph).
func MixingTimeBracket(gap float64, n int) (lo, hi float64, err error) {
	if gap <= 0 {
		return 0, 0, fmt.Errorf("spectral: non-positive gap %v", gap)
	}
	return 1 / gap, math.Log(float64(n)) / gap, nil
}

// MixingTimeFrom computes the exact τ^x(ε) = min{t : ||π_x(t) − π||₁ < ε}
// (Definition 4.3) by iterating the exact walk distribution, up to tMax
// steps. Monotonicity of the ℓ₁ distance (Lemma 4.4) makes the returned
// value well-defined.
func MixingTimeFrom(g *graph.G, x graph.NodeID, eps float64, tMax int) (int, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("spectral: eps must be positive, got %v", eps)
	}
	pi, err := dist.Stationary(g)
	if err != nil {
		return 0, err
	}
	p, err := dist.Point(g.N(), x)
	if err != nil {
		return 0, err
	}
	for t := 0; t <= tMax; t++ {
		if p.L1(pi) < eps {
			return t, nil
		}
		if p, err = dist.Step(g, p); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("spectral: walk from %d not %v-mixed within %d steps (bipartite graph?)", x, eps, tMax)
}

// MixingTime returns max_x τ^x(ε), the paper's τ_mix when ε = 1/2e.
func MixingTime(g *graph.G, eps float64, tMax int) (int, error) {
	worst := 0
	for x := 0; x < g.N(); x++ {
		t, err := MixingTimeFrom(g, graph.NodeID(x), eps, tMax)
		if err != nil {
			return 0, err
		}
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// EpsMix is the ε defining the paper's τ_mix (Definition 4.3: τ^x(1/2e)).
const EpsMix = 1 / (2 * math.E)
