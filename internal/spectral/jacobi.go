package spectral

import (
	"fmt"
	"math"
	"sort"
)

// SymEig returns the eigenvalues of the symmetric matrix a in
// non-increasing order, computed with the cyclic Jacobi rotation method.
// The input is modified in place. Convergence is quadratic; for the sizes
// used here (n ≤ 2000) a handful of sweeps suffice.
func SymEig(a [][]float64) ([]float64, error) {
	eig, _, err := symEig(a, false)
	return eig, err
}

// SymEigVec is SymEig but additionally returns the orthonormal
// eigenvectors: vecs[k] is the eigenvector for the k-th returned
// eigenvalue.
func SymEigVec(a [][]float64) ([]float64, [][]float64, error) {
	return symEig(a, true)
}

func symEig(a [][]float64, wantVecs bool) ([]float64, [][]float64, error) {
	n := len(a)
	for i, row := range a {
		if len(row) != n {
			return nil, nil, fmt.Errorf("spectral: matrix is not square (row %d has %d cols, want %d)", i, len(row), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9 {
				return nil, nil, fmt.Errorf("spectral: matrix is not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// vecs accumulates the product of rotations: columns converge to the
	// eigenvectors of the original matrix.
	var vecs [][]float64
	if wantVecs {
		vecs = make([][]float64, n)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			vecs[i][i] = 1
		}
	}
	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				rotate(a, vecs, p, q)
			}
		}
	}
	if off := offDiagNorm(a); off > 1e-7 {
		return nil, nil, fmt.Errorf("spectral: Jacobi did not converge (off-diagonal norm %v)", off)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return a[order[i]][order[i]] > a[order[j]][order[j]] })
	eig := make([]float64, n)
	var outVecs [][]float64
	if wantVecs {
		outVecs = make([][]float64, n)
	}
	for k, idx := range order {
		eig[k] = a[idx][idx]
		if wantVecs {
			col := make([]float64, n)
			for r := 0; r < n; r++ {
				col[r] = vecs[r][idx]
			}
			outVecs[k] = col
		}
	}
	return eig, outVecs, nil
}

// rotate zeroes a[p][q] with a Givens rotation applied symmetrically,
// accumulating the rotation into vecs when non-nil.
func rotate(a, vecs [][]float64, p, q int) {
	apq := a[p][q]
	if apq == 0 {
		return
	}
	theta := (a[q][q] - a[p][p]) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	tau := s / (1 + c)

	app, aqq := a[p][p], a[q][q]
	a[p][p] = app - t*apq
	a[q][q] = aqq + t*apq
	a[p][q] = 0
	a[q][p] = 0
	for i := range a {
		if i == p || i == q {
			continue
		}
		aip, aiq := a[i][p], a[i][q]
		a[i][p] = aip - s*(aiq+tau*aip)
		a[p][i] = a[i][p]
		a[i][q] = aiq + s*(aip-tau*aiq)
		a[q][i] = a[i][q]
	}
	if vecs != nil {
		for i := range vecs {
			vip, viq := vecs[i][p], vecs[i][q]
			vecs[i][p] = vip - s*(viq+tau*vip)
			vecs[i][q] = viq + s*(vip-tau*viq)
		}
	}
}

func offDiagNorm(a [][]float64) float64 {
	sum := 0.0
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			sum += a[i][j] * a[i][j]
		}
	}
	return math.Sqrt(sum)
}
