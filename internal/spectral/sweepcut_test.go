package spectral

import (
	"math"
	"testing"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

func TestSymEigVecOrthonormalAndCorrect(t *testing.T) {
	// [[2,1],[1,2]]: eigenpairs (3, [1,1]/√2) and (1, [1,-1]/√2).
	eig, vecs, err := SymEigVec([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-3) > 1e-9 || math.Abs(eig[1]-1) > 1e-9 {
		t.Fatalf("eig = %v", eig)
	}
	// First vector ∝ [1,1].
	if math.Abs(math.Abs(vecs[0][0])-1/math.Sqrt2) > 1e-9 ||
		math.Abs(vecs[0][0]-vecs[0][1]) > 1e-9 {
		t.Fatalf("top vector = %v", vecs[0])
	}
	// Orthogonality.
	dot := vecs[0][0]*vecs[1][0] + vecs[0][1]*vecs[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Fatalf("vectors not orthogonal: dot=%v", dot)
	}
}

func TestSymEigVecResidual(t *testing.T) {
	// Verify A·v = λ·v on a random symmetric matrix.
	r := rng.New(3)
	const n = 12
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			x := r.Float64() - 0.5
			a[i][j] = x
			a[j][i] = x
		}
	}
	orig := make([][]float64, n)
	for i := range orig {
		orig[i] = append([]float64(nil), a[i]...)
	}
	eig, vecs, err := SymEigVec(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			av := 0.0
			for j := 0; j < n; j++ {
				av += orig[i][j] * vecs[k][j]
			}
			if math.Abs(av-eig[k]*vecs[k][i]) > 1e-7 {
				t.Fatalf("residual at eigenpair %d row %d: %v vs %v", k, i, av, eig[k]*vecs[k][i])
			}
		}
	}
}

func TestConductanceBarbell(t *testing.T) {
	// Two K5s joined by one edge: the natural cut has boundary 1 and
	// volume 21 per side (20 clique half-edges + 1 bridge endpoint).
	g, err := graph.Barbell(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	inS := make([]bool, g.N())
	for v := 0; v < 5; v++ {
		inS[v] = true
	}
	phi, err := Conductance(g, inS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-1.0/21) > 1e-12 {
		t.Fatalf("Φ = %v, want 1/21", phi)
	}
}

func TestConductanceValidation(t *testing.T) {
	g, _ := graph.Complete(4)
	if _, err := Conductance(g, []bool{true}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if _, err := Conductance(g, make([]bool, 4)); err == nil {
		t.Fatal("empty cut accepted")
	}
}

func TestSweepCutFindsBarbellBottleneck(t *testing.T) {
	// The sweep cut over the second eigenvector must find the bridge.
	g, err := graph.Barbell(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	cut, phi, err := SweepCut(g)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one side of the barbell.
	count := 0
	for _, in := range cut {
		if in {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("sweep cut has %d nodes, want 6", count)
	}
	exact, err := Conductance(g, cut)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-exact) > 1e-12 {
		t.Fatalf("reported Φ=%v, recomputed %v", phi, exact)
	}
}

func TestSweepCutRespectsCheeger(t *testing.T) {
	// Φ(sweep cut) ≤ √(2·gap) on assorted graphs.
	gens := []func() (*graph.G, error){
		func() (*graph.G, error) { return graph.Cycle(17) },
		func() (*graph.G, error) { return graph.Candy(6, 6) },
		func() (*graph.G, error) { return graph.ConnectedRandomRegular(24, 4, rng.New(5), 200) },
		func() (*graph.G, error) { return graph.Torus(4, 5) },
	}
	for _, gen := range gens {
		g, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		gap, err := SpectralGap(g)
		if err != nil {
			t.Fatal(err)
		}
		_, phi, err := SweepCut(g)
		if err != nil {
			t.Fatal(err)
		}
		if phi > math.Sqrt(2*gap)+1e-9 {
			t.Fatalf("Cheeger violated: Φ=%v > √(2·%v)", phi, gap)
		}
		if phi < gap/2-1e-9 {
			t.Fatalf("easy direction violated: Φ=%v < gap/2=%v", phi, gap/2)
		}
	}
}

func TestSweepCutValidation(t *testing.T) {
	if _, _, err := SweepCut(graph.New(1)); err == nil {
		t.Fatal("singleton accepted")
	}
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SweepCut(g); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSweepCutBracketsMixingEstimate(t *testing.T) {
	// The decentralized τ̃-derived conductance bracket (Section 4.2) must
	// contain the sweep cut's conductance up to its documented looseness.
	g, err := graph.Barbell(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, phi, err := SweepCut(g)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := SpectralGap(g)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := CheegerBounds(gap)
	if phi < lo-1e-9 || phi > hi+1e-9 {
		t.Fatalf("Φ=%v outside Cheeger bracket [%v, %v]", phi, lo, hi)
	}
}
