package spectral

import (
	"math"
	"testing"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

func TestSymEigDiagonal(t *testing.T) {
	a := [][]float64{{3, 0}, {0, -1}}
	eig, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if eig[0] != 3 || eig[1] != -1 {
		t.Fatalf("eig = %v", eig)
	}
}

func TestSymEig2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	eig, err := SymEig([][]float64{{2, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-3) > 1e-9 || math.Abs(eig[1]-1) > 1e-9 {
		t.Fatalf("eig = %v, want [3 1]", eig)
	}
}

func TestSymEigRejectsAsymmetric(t *testing.T) {
	if _, err := SymEig([][]float64{{1, 2}, {0, 1}}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	if _, err := SymEig([][]float64{{1, 2}}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestTransitionSpectrumCompleteGraph(t *testing.T) {
	// K_n has transition eigenvalues 1 and -1/(n-1) (n-1 fold).
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := TransitionSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-9 {
		t.Fatalf("top eigenvalue %v, want 1", eig[0])
	}
	for _, l := range eig[1:] {
		if math.Abs(l+0.25) > 1e-9 {
			t.Fatalf("eig = %v, want -0.25 repeated", eig)
		}
	}
}

func TestTransitionSpectrumCycle(t *testing.T) {
	// C_n has eigenvalues cos(2πk/n).
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := TransitionSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cos(2 * math.Pi / 6)
	if math.Abs(eig[1]-want) > 1e-9 {
		t.Fatalf("λ₂ = %v, want %v", eig[1], want)
	}
	// Bipartite: bottom eigenvalue is -1.
	if math.Abs(eig[len(eig)-1]+1) > 1e-9 {
		t.Fatalf("λ_min = %v, want -1", eig[len(eig)-1])
	}
}

func TestSpectralGapOrdersFamilies(t *testing.T) {
	// Expanders have much larger gaps than cycles of the same size.
	cyc, err := graph.Cycle(24)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := graph.ConnectedRandomRegular(24, 4, rng.New(1), 200)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := SpectralGap(cyc)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := SpectralGap(exp)
	if err != nil {
		t.Fatal(err)
	}
	if ge < 4*gc {
		t.Fatalf("expander gap %v not ≫ cycle gap %v", ge, gc)
	}
}

func TestCheegerBounds(t *testing.T) {
	lo, hi := CheegerBounds(0.5)
	if lo != 0.25 || math.Abs(hi-1) > 1e-12 {
		t.Fatalf("bounds = (%v, %v)", lo, hi)
	}
	lo, hi = CheegerBounds(-1)
	if lo != 0 || hi != 0 {
		t.Fatalf("negative gap bounds = (%v, %v)", lo, hi)
	}
}

func TestMixingTimeBracket(t *testing.T) {
	lo, hi, err := MixingTimeBracket(0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-10) > 1e-9 || math.Abs(hi-math.Log(100)*10) > 1e-9 {
		t.Fatalf("bracket = (%v, %v)", lo, hi)
	}
	if _, _, err := MixingTimeBracket(0, 10); err == nil {
		t.Fatal("zero gap accepted")
	}
}

func TestMixingTimeFromCompleteGraph(t *testing.T) {
	// On K_n the walk is within ε of stationary after one step.
	g, err := graph.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := MixingTimeFrom(g, 0, EpsMix, 100)
	if err != nil {
		t.Fatal(err)
	}
	if tm > 2 {
		t.Fatalf("K10 mixing time = %d, want <= 2", tm)
	}
}

func TestMixingTimeRespectsSpectralBracket(t *testing.T) {
	g, err := graph.ConnectedRandomRegular(30, 4, rng.New(7), 200)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := SpectralGap(g)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := MixingTime(g, EpsMix, 10000)
	if err != nil {
		t.Fatal(err)
	}
	_, hi, err := MixingTimeBracket(gap, g.N())
	if err != nil {
		t.Fatal(err)
	}
	// The ln(n)/gap upper bound holds up to small constants; allow slack 3x.
	if float64(tm) > 3*hi+3 {
		t.Fatalf("measured τ=%d far above spectral bound %v", tm, hi)
	}
}

func TestMixingTimeFromBipartiteFails(t *testing.T) {
	g, err := graph.Cycle(8) // bipartite: plain walk never mixes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MixingTimeFrom(g, 0, EpsMix, 2000); err == nil {
		t.Fatal("bipartite graph reported a mixing time")
	}
}

func TestMixingTimeFromRejectsBadEps(t *testing.T) {
	g, _ := graph.Complete(4)
	if _, err := MixingTimeFrom(g, 0, 0, 10); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestMixingTimeCycleGrowsQuadratically(t *testing.T) {
	// τ_mix of an odd cycle grows ~n²; check the ratio between n=9 and
	// n=27 is near 9.
	t9, err := mixOdd(t, 9)
	if err != nil {
		t.Fatal(err)
	}
	t27, err := mixOdd(t, 27)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(t27) / float64(t9)
	if ratio < 5 || ratio > 14 {
		t.Fatalf("τ(27)/τ(9) = %v, want ≈ 9", ratio)
	}
}

func mixOdd(t *testing.T, n int) (int, error) {
	t.Helper()
	g, err := graph.Cycle(n)
	if err != nil {
		return 0, err
	}
	return MixingTimeFrom(g, 0, EpsMix, 100000)
}
