package spectral

import (
	"fmt"
	"math"
	"sort"

	"distwalk/internal/graph"
)

// This file answers the paper's closing question — "Can these techniques
// be useful for estimating the second eigenvector of the transition matrix
// (useful for sparse cuts)?" — on the reference side: the exact second
// eigenvector, the sweep cut it induces, and the exact conductance of a
// cut. Cheeger's inequality guarantees the sweep cut's conductance is at
// most √(2·gap), which the tests verify against the decentralized
// estimator's brackets.

// Conductance returns Φ(S) = w(∂S) / min(vol(S), vol(V∖S)) for the cut
// given by inS. It errors on trivial cuts (empty or full).
func Conductance(g *graph.G, inS []bool) (float64, error) {
	if len(inS) != g.N() {
		return 0, fmt.Errorf("spectral: cut has %d entries, want %d", len(inS), g.N())
	}
	var volS, volRest, boundary float64
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if inS[e.U] != inS[e.V] {
			boundary += e.W
		}
	}
	for v := 0; v < g.N(); v++ {
		w := g.WeightedDegree(graph.NodeID(v))
		if inS[v] {
			volS += w
		} else {
			volRest += w
		}
	}
	minVol := math.Min(volS, volRest)
	if minVol == 0 {
		return 0, fmt.Errorf("spectral: trivial cut")
	}
	return boundary / minVol, nil
}

// SweepCut computes the classic spectral partition: nodes are ordered by
// the degree-normalized second eigenvector of the transition matrix, and
// the prefix with the smallest conductance is returned, together with
// that conductance. By Cheeger's inequality it satisfies
// Φ(cut) ≤ √(2·(1−λ₂)).
func SweepCut(g *graph.G) ([]bool, float64, error) {
	n := g.N()
	if n < 2 {
		return nil, 0, fmt.Errorf("spectral: sweep cut needs n >= 2")
	}
	if !g.Connected() {
		return nil, 0, fmt.Errorf("spectral: graph is disconnected")
	}
	vec, err := SecondEigenvector(g)
	if err != nil {
		return nil, 0, err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vec[order[i]] > vec[order[j]] })

	// Sweep: evaluate the conductance of every prefix incrementally.
	inS := make([]bool, n)
	totalVol := 0.0
	for v := 0; v < n; v++ {
		totalVol += g.WeightedDegree(graph.NodeID(v))
	}
	var volS, boundary float64
	bestPhi := math.Inf(1)
	bestK := 0
	for k := 0; k < n-1; k++ {
		v := graph.NodeID(order[k])
		inS[v] = true
		volS += g.WeightedDegree(v)
		// Adding v flips the boundary status of each incident edge.
		for _, h := range g.Neighbors(v) {
			if inS[h.To] {
				boundary -= h.W
			} else {
				boundary += h.W
			}
		}
		minVol := math.Min(volS, totalVol-volS)
		if minVol <= 0 {
			continue
		}
		if phi := boundary / minVol; phi < bestPhi {
			bestPhi = phi
			bestK = k + 1
		}
	}
	out := make([]bool, n)
	for k := 0; k < bestK; k++ {
		out[order[k]] = true
	}
	return out, bestPhi, nil
}

// SecondEigenvector returns the second eigenvector of the transition
// matrix P = D⁻¹A (the Fiedler direction of the walk), degree-normalized
// so that sweep ordering is the standard D^{-1/2}-scaled one.
func SecondEigenvector(g *graph.G) ([]float64, error) {
	n := g.N()
	switch {
	case n == 0:
		return nil, fmt.Errorf("spectral: empty graph")
	case n > maxEigN:
		return nil, fmt.Errorf("spectral: n=%d exceeds dense eigensolver cap %d", n, maxEigN)
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		wu, wv := g.WeightedDegree(e.U), g.WeightedDegree(e.V)
		if wu == 0 || wv == 0 {
			return nil, fmt.Errorf("spectral: isolated endpoint on edge %d", i)
		}
		s := e.W / math.Sqrt(wu*wv)
		a[e.U][e.V] += s
		a[e.V][e.U] += s
	}
	_, vecs, err := SymEigVec(a)
	if err != nil {
		return nil, err
	}
	// Transform the symmetric eigenvector back: P's eigenvector is
	// D^{-1/2} times N's.
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		out[v] = vecs[1][v] / math.Sqrt(g.WeightedDegree(graph.NodeID(v)))
	}
	return out, nil
}
