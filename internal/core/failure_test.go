package core

import (
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// Failure injection (the paper's Section 5 lists robustness as future
// work): the important property today is that the Las Vegas drivers
// *detect* token loss — they error out rather than returning a sample
// from the wrong distribution.

func TestNaiveWalkDetectsTokenLoss(t *testing.T) {
	// A cycle forces every long walk through node 2; crash it mid-run.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the walker's network with a crash injected.
	w.net = congest.NewNetwork(g, 3, congest.WithCrash(2, 0))
	if _, err := w.SingleRandomWalk(0, 3); err == nil {
		// ℓ=3 uses the naive path; with node 2 dead the tree build or the
		// token must fail.
		t.Fatal("walk over a crashed node reported success")
	}
}

func TestStitchedWalkDetectsCrashDuringPhase2(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 5, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Crash a node well after the BFS/Phase 1 bursts so the failure lands
	// mid-stitching; on a torus every node is on some walk's path with
	// high probability, and the convergecast through it must stall.
	w.net = congest.NewNetwork(g, 5, congest.WithCrash(7, 40), congest.WithMaxRounds(20000))
	if _, err := w.SingleRandomWalk(0, 2000); err == nil {
		t.Fatal("stitched walk with a mid-run crash reported success")
	}
}
