package core

import (
	"errors"
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// Failure injection (the paper's Section 5 lists robustness as future
// work): the Las Vegas drivers *detect* token loss — they error out
// rather than returning a sample from the wrong distribution — and the
// faultize boundary re-labels the detection error with the typed
// ErrNodeCrashed carrying which node died.

func TestNaiveWalkDetectsTokenLoss(t *testing.T) {
	// A cycle forces every long walk through node 2; crash it mid-run.
	g, err := graph.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the walker's network with a crash injected.
	w.net = congest.NewNetwork(g, 3, congest.WithCrash(2, 0))
	_, err = w.SingleRandomWalk(0, 3)
	if err == nil {
		// ℓ=3 uses the naive path; with node 2 dead the tree build or the
		// token must fail.
		t.Fatal("walk over a crashed node reported success")
	}
	if !errors.Is(err, congest.ErrNodeCrashed) {
		t.Fatalf("error %v does not wrap ErrNodeCrashed", err)
	}
	var nce *congest.NodeCrashedError
	if !errors.As(err, &nce) || nce.Node != 2 {
		t.Fatalf("error %v does not identify crashed node 2", err)
	}
}

func TestStitchedWalkDetectsCrashDuringPhase2(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 5, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Crash a node well after the BFS/Phase 1 bursts so the failure lands
	// mid-stitching; on a torus every node is on some walk's path with
	// high probability, and the convergecast through it must stall.
	w.net = congest.NewNetwork(g, 5, congest.WithCrash(7, 40), congest.WithMaxRounds(20000))
	_, err = w.SingleRandomWalk(0, 2000)
	if err == nil {
		t.Fatal("stitched walk with a mid-run crash reported success")
	}
	// The stall burns the round budget, but the typed crash error — not
	// ErrBudgetExceeded — must surface: the budget overrun is a symptom.
	if !errors.Is(err, congest.ErrNodeCrashed) {
		t.Fatalf("error %v does not wrap ErrNodeCrashed", err)
	}
	if errors.Is(err, congest.ErrRoundLimit) {
		t.Fatalf("error %v still matches ErrRoundLimit; the fault should re-label it", err)
	}
}
