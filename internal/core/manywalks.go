package core

import (
	"fmt"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// ManyResult describes k walks computed by MANY-RANDOM-WALKS.
type ManyResult struct {
	// Destinations[i] is the endpoint of the walk from sources[i].
	Destinations []graph.NodeID
	// Walks holds the per-walk composition; shared costs (tree, Phase 1,
	// batched notifications) appear only in Cost.
	Walks []*WalkResult
	// Lambda is the short-walk base length used (0 on the naive path).
	Lambda int
	// NaiveFallback reports that λ > ℓ made token forwarding optimal, so
	// all k walks ran as parallel naive tokens (Õ(k+ℓ) rounds).
	NaiveFallback bool
	// Refills counts GET-MORE-WALKS invocations across all walks.
	Refills int
	// Cost is the total simulated cost of the batch.
	Cost congest.Result
	// Errs holds per-walk failures in partial-results mode
	// (ManyRandomWalksPartial): Errs[i] is nil iff walk i completed. Nil
	// in all-or-nothing mode.
	Errs []error
	// Failed counts non-nil entries of Errs.
	Failed int
}

// fail charges a per-walk error to walk i in partial-results mode. The
// walk's destination becomes graph.None; any stitched prefix remains on
// Walks[i] for inspection.
func (m *ManyResult) fail(i int, err error) {
	m.Errs[i] = err
	m.Failed++
	m.Destinations[i] = graph.None
	if m.Walks[i] != nil {
		m.Walks[i].Destination = graph.None
	}
}

// ManyRandomWalks computes k independent ℓ-step walks from the given (not
// necessarily distinct) sources in Õ(min(√(kℓD)+k, k+ℓ)) rounds
// (Theorem 2.8): one Phase 1 provisions short walks of length
// λ = Θ(√(kℓD)+k), then the walks are stitched one at a time; if λ > ℓ the
// k walks run as parallel naive tokens instead.
func (w *Walker) ManyRandomWalks(sources []graph.NodeID, ell int) (*ManyResult, error) {
	if err := w.acquire(); err != nil {
		return nil, err
	}
	defer w.release()
	res, err := w.manyRandomWalks(sources, ell, false)
	if err != nil {
		return nil, w.faultize(err)
	}
	return res, nil
}

// ManyRandomWalksPartial is ManyRandomWalks with per-walk failure
// isolation: when a fault (crashed node, lost message) kills individual
// walks, the surviving walks still complete and the casualties are
// reported in ManyResult.Errs instead of failing the whole batch.
// Shared-phase failures (BFS tree, Phase 1, cancellation, walker misuse)
// still abort everything — with no short walks provisioned there is
// nothing to salvage.
func (w *Walker) ManyRandomWalksPartial(sources []graph.NodeID, ell int) (*ManyResult, error) {
	if err := w.acquire(); err != nil {
		return nil, err
	}
	defer w.release()
	res, err := w.manyRandomWalks(sources, ell, true)
	if err != nil {
		return nil, w.faultize(err)
	}
	return res, nil
}

func (w *Walker) manyRandomWalks(sources []graph.NodeID, ell int, partial bool) (*ManyResult, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: no sources")
	}
	for _, s := range sources {
		if err := w.checkNode(s); err != nil {
			return nil, err
		}
	}
	if ell < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, ell)
	}
	out := &ManyResult{
		Destinations: make([]graph.NodeID, len(sources)),
		Walks:        make([]*WalkResult, len(sources)),
	}
	if partial {
		out.Errs = make([]error, len(sources))
	}
	if ell == 0 {
		for i, s := range sources {
			out.Destinations[i] = s
			out.Walks[i] = &WalkResult{Source: s, Destination: s}
		}
		return out, nil
	}
	if w.g.N() == 1 {
		return nil, fmt.Errorf("%w: cannot walk on a single-node graph", ErrGraphTooSmall)
	}

	treeRes, err := w.ensureTree(sources[0])
	if err != nil {
		return nil, err
	}
	out.Cost.Add(treeRes)
	diam := w.tree.Height
	if diam < 1 {
		diam = 1
	}
	lam := w.prm.lambdaMany(len(sources), ell, diam, w.g.N())

	if lam > ell {
		// "If λ > ℓ then run the naive random walk algorithm, i.e., the
		// sources find walks of length ℓ simultaneously by sending tokens."
		out.NaiveFallback = true
		return out, w.naiveMany(out, sources, ell, partial)
	}
	out.Lambda = lam

	extra := make(map[graph.NodeID]int, len(sources))
	for _, s := range sources {
		extra[s]++
	}
	p1, err := w.ensurePhase1(lam, extra)
	if err != nil {
		return nil, err
	}
	out.Cost.Add(p1)

	// Stitch the k walks one at a time (as in the paper), but defer every
	// walk's ≤2λ-step naive tail so all k tails run concurrently below.
	tails := make([]tailSpec, len(sources))
	for i, s := range sources {
		wr := &WalkResult{Source: s, Destination: s, Length: ell, Lambda: lam}
		cur, completed, err := w.stitchSegments(wr, s, ell, lam)
		if err != nil {
			werr := fmt.Errorf("core: walk %d from %d: %w", i, s, err)
			if !partial || abortive(err) {
				return nil, werr
			}
			out.Walks[i] = wr
			out.Cost.Add(wr.Cost)
			out.Refills += wr.Refills
			out.fail(i, w.faultize(werr))
			tails[i] = tailSpec{start: graph.None}
			continue
		}
		tails[i] = tailSpec{start: cur, steps: int32(ell - completed)}
		out.Walks[i] = wr
		out.Destinations[i] = wr.Destination
		out.Refills += wr.Refills
		out.Cost.Add(wr.Cost)
	}
	if err := w.runTails(out, tails, partial); err != nil {
		return nil, err
	}
	return out, w.notifyAll(out, sources)
}

// tailSpec is one deferred naive tail: steps hops remaining from start.
// start == graph.None marks a walk already failed in partial mode; it
// gets no tail token.
type tailSpec struct {
	start graph.NodeID
	steps int32
}

// runTails completes every walk's remaining steps with simultaneous token
// forwarding — O(max tail + congestion) rounds instead of the sum. In
// partial mode a tail whose token vanished (lost to a fault) is charged
// to its walk; otherwise it fails the batch.
func (w *Walker) runTails(out *ManyResult, tails []tailSpec, partial bool) error {
	p := &naiveManyProto{
		w:     w,
		steps: make([]int32, len(tails)),
		start: make(map[int64]int, len(tails)),
		dest:  make([]graph.NodeID, len(tails)),
	}
	wids := make([]int64, len(tails))
	for i, tl := range tails {
		if tl.start == graph.None {
			wids[i] = -1
			continue
		}
		wid := w.st.newWalkID(tl.start)
		wids[i] = wid
		p.start[wid] = i
		p.walkIDs = append(p.walkIDs, wid)
		p.steps[i] = tl.steps
		p.dest[i] = graph.None
	}
	res, err := w.net.Run(p)
	out.Cost.Add(res)
	if err != nil {
		return err
	}
	for i, tl := range tails {
		if tl.start == graph.None {
			continue
		}
		if p.dest[i] == graph.None {
			if partial {
				out.fail(i, w.faultize(fmt.Errorf("core: tail %d did not complete", i)))
				continue
			}
			return fmt.Errorf("core: tail %d did not complete", i)
		}
		wr := out.Walks[i]
		wr.Segments = append(wr.Segments, Segment{
			Start:  tl.start,
			End:    p.dest[i],
			WalkID: wids[i],
			Length: int(tl.steps),
		})
		wr.Destination = p.dest[i]
		out.Destinations[i] = p.dest[i]
	}
	return nil
}

// naiveMany walks all k tokens simultaneously (the k+ℓ regime).
func (w *Walker) naiveMany(out *ManyResult, sources []graph.NodeID, ell int, partial bool) error {
	p := &naiveManyProto{
		w:     w,
		steps: make([]int32, len(sources)),
		start: make(map[int64]int, len(sources)),
		dest:  make([]graph.NodeID, len(sources)),
	}
	for i, s := range sources {
		wid := w.st.newWalkID(s)
		p.start[wid] = i
		p.walkIDs = append(p.walkIDs, wid)
		p.steps[i] = int32(ell)
		p.dest[i] = graph.None
	}
	res, err := w.net.Run(p)
	out.Cost.Add(res)
	if err != nil {
		return err
	}
	for i, s := range sources {
		wr := &WalkResult{Source: s, Destination: p.dest[i], Length: ell, Naive: true}
		if p.dest[i] == graph.None {
			if partial {
				out.Walks[i] = wr
				out.fail(i, w.faultize(fmt.Errorf("core: naive walk %d did not complete", i)))
				continue
			}
			return fmt.Errorf("core: naive walk %d did not complete", i)
		}
		wr.Segments = []Segment{{
			Start:  s,
			End:    p.dest[i],
			WalkID: p.walkIDs[i],
			Length: ell,
		}}
		out.Destinations[i] = p.dest[i]
		out.Walks[i] = wr
	}
	return w.notifyAll(out, sources)
}

// notifyAll delivers every walk's destination back to its source in
// O(k + D) rounds: the destinations upcast (walk, dest) reports to the
// root, which floods them back down, both pipelined.
func (w *Walker) notifyAll(out *ManyResult, sources []graph.NodeID) error {
	perNode := make(map[graph.NodeID][]destReport, len(sources))
	for i := range sources {
		if out.Errs != nil && out.Errs[i] != nil {
			continue // failed walk: no destination to announce
		}
		wr := out.Walks[i]
		last := wr.Segments[len(wr.Segments)-1]
		perNode[wr.Destination] = append(perNode[wr.Destination], destReport{
			walkID: last.WalkID,
			dest:   wr.Destination,
			deg:    int32(w.g.Degree(wr.Destination)),
		})
	}
	reports, res, err := congest.Upcast(w.net, w.tree, func(u graph.NodeID) []destReport {
		return perNode[u]
	})
	out.Cost.Add(res)
	if err != nil {
		return err
	}
	if want := len(sources) - out.Failed; len(reports) != want {
		return fmt.Errorf("core: %d of %d destination reports arrived", len(reports), want)
	}
	res, err = congest.BroadcastMany(w.net, w.tree, reports, nil)
	out.Cost.Add(res)
	return err
}

// naiveManyProto forwards k tokens (of possibly different lengths)
// simultaneously; the engine's per-edge queues charge any congestion
// between them.
type naiveManyProto struct {
	w       *Walker
	steps   []int32 // per walk index
	walkIDs []int64
	start   map[int64]int // walkID -> walk index
	dest    []graph.NodeID
}

func (p *naiveManyProto) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	// Iterate the ordered slice, not the map: map order would make RNG
	// consumption (and thus the whole run) non-deterministic. The walk
	// index comes from the start map — walkIDs is sparse when partial
	// mode dropped failed walks before the tail run.
	for _, wid := range p.walkIDs {
		if walkOwner(wid) != v {
			continue
		}
		idx := p.start[wid]
		steps := p.steps[idx]
		if steps == 0 {
			p.dest[idx] = v
			continue
		}
		p.forward(ctx, naiveToken{walkID: wid, remaining: steps, total: steps})
	}
}

func (p *naiveManyProto) Step(ctx *congest.Ctx) {
	for _, m := range ctx.Inbox() {
		if m.Kind != kindNaiveToken {
			continue
		}
		t := congest.As[naiveToken](m)
		if _, mine := p.start[t.walkID]; !mine {
			continue
		}
		p.forward(ctx, t)
	}
}

func (p *naiveManyProto) forward(ctx *congest.Ctx, t naiveToken) {
	v := ctx.Node()
	next, rem := p.w.advanceToken(ctx, t.remaining)
	if next == graph.None {
		p.dest[p.start[t.walkID]] = v
		return
	}
	p.w.st.recordHop(v, t.walkID, next)
	t.remaining = rem
	congest.Send(ctx, next, t)
}
