package core

import (
	"testing"

	"distwalk/internal/dist"
	"distwalk/internal/graph"
)

func TestBreakdownSumsToTotal(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 3, DefaultParams())
	res, err := w.SingleRandomWalk(0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	sum := b.TreeBuild + b.Phase1 + b.Stitch + b.Refill + b.Tail + b.Report
	if sum != res.Cost.Rounds {
		t.Fatalf("breakdown sums to %d, total is %d (%+v)", sum, res.Cost.Rounds, b)
	}
	if b.TreeBuild == 0 || b.Phase1 == 0 || b.Stitch == 0 || b.Tail == 0 {
		t.Fatalf("expected all main stages to cost rounds: %+v", b)
	}
}

func TestPrepareBuildsTree(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 5, DefaultParams())
	if w.Tree() != nil {
		t.Fatal("tree exists before Prepare")
	}
	res, err := w.Prepare(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("tree build cost no rounds")
	}
	if w.Tree() == nil || w.Tree().Root != 3 {
		t.Fatal("tree not rooted at 3")
	}
	// Idempotent for the same source.
	res, err = w.Prepare(3)
	if err != nil || res.Rounds != 0 {
		t.Fatalf("re-prepare cost %d rounds, err=%v", res.Rounds, err)
	}
	if _, err := w.Prepare(99); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestTheoryParamsDegradeGracefully(t *testing.T) {
	// The paper's constants make λ ≫ ℓ at this scale: the walk must fall
	// back to the naive token and still sample correctly.
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{Theory: true, Eta: 1}
	w := newWalker(t, g, 7, prm)
	res, err := w.SingleRandomWalk(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Naive {
		t.Fatalf("theory constants should exceed ℓ=500 (λ=%d)", res.Lambda)
	}
	if res.Destination < 0 || int(res.Destination) >= g.N() {
		t.Fatalf("bad destination %d", res.Destination)
	}
}

func TestWalkOnMultigraph(t *testing.T) {
	// A doubled edge must be taken twice as often: compare against the
	// exact distribution, which accounts for multiplicity.
	g := graph.New(3)
	for i := 0; i < 2; i++ {
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	const (
		ell     = 5
		samples = 3000
	)
	exact, err := dist.WalkDist(g, 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 11, DefaultParams())
	counts := make([]int, g.N())
	for i := 0; i < samples; i++ {
		res, err := w.NaiveWalk(0, ell)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Destination]++
	}
	checkDistribution(t, counts, exact)
}

func TestWalkOnWeightedGraph(t *testing.T) {
	// Float weights must drive the step distribution (a triangle with one
	// heavy edge), through the full stitched machinery.
	g := graph.New(3)
	if err := g.AddWeightedEdge(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	const (
		ell     = 20
		samples = 3000
	)
	exact, err := dist.WalkDist(g, 0, ell)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 13, Params{Lambda: 3, LambdaC: 1, Eta: 2})
	counts := make([]int, g.N())
	for i := 0; i < samples; i++ {
		res, err := w.SingleRandomWalk(0, ell)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Destination]++
	}
	checkDistribution(t, counts, exact)
}

func TestManyWalksRefillAccounting(t *testing.T) {
	// Starved inventory: batch refills must be counted in ManyResult.
	g, err := graph.Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{Lambda: 2, LambdaC: 1, Eta: 1, UniformCounts: true}
	w := newWalker(t, g, 17, prm)
	res, err := w.ManyRandomWalks([]graph.NodeID{0, 0, 0, 0}, 60)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, wr := range res.Walks {
		sum += wr.Refills
	}
	if sum != res.Refills {
		t.Fatalf("refill accounting: per-walk sum %d != total %d", sum, res.Refills)
	}
}

func TestRegenerateManyValidation(t *testing.T) {
	g, _ := graph.Complete(4)
	w := newWalker(t, g, 19, DefaultParams())
	if _, err := w.RegenerateMany(nil); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, err := w.RegenerateMany([]*WalkResult{nil}); err == nil {
		t.Fatal("nil entry accepted")
	}
	res, err := w.NaiveWalk(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The same walk twice shares walk IDs — must be rejected, not
	// silently corrupted.
	if _, err := w.RegenerateMany([]*WalkResult{res, res}); err == nil {
		t.Fatal("duplicate walk accepted")
	}
}

func TestRegenerateManyTraces(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 23, DefaultParams())
	many, err := w.ManyRandomWalks([]graph.NodeID{0, 7, 13}, 400)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := w.RegenerateMany(many.Walks)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("got %d traces", len(traces))
	}
	for i, tr := range traces {
		reconstruct(t, g, tr, many.Walks[i])
	}
}
