package core

import "errors"

// Sentinel errors of the walk layer. Every failure returned by Walker
// methods wraps one of these (or a graph/congest sentinel), so callers can
// dispatch with errors.Is instead of string matching.
var (
	// ErrBadNode reports a node ID outside [0, n).
	ErrBadNode = errors.New("core: node out of range")
	// ErrBadLength reports a negative walk length.
	ErrBadLength = errors.New("core: negative walk length")
	// ErrGraphTooSmall reports an operation that needs at least two nodes
	// (a walk cannot leave a single-node graph).
	ErrGraphTooSmall = errors.New("core: graph too small")
	// ErrBadParams reports an invalid Params value.
	ErrBadParams = errors.New("core: invalid params")
	// ErrConcurrentUse reports two overlapping calls into one Walker. A
	// Walker is deliberately single-threaded (its per-node netState is one
	// shared simulation); the guard turns silent state corruption into a
	// clean error. Use distwalk.Service for concurrency.
	ErrConcurrentUse = errors.New("core: walker is not safe for concurrent use")
	// ErrNoRegen reports a regeneration request the hop records cannot
	// serve (Metropolis-Hastings walks leave no trail for stay steps).
	ErrNoRegen = errors.New("core: walk cannot be regenerated")
)
