// Package core implements the distributed random-walk algorithms of
// "Efficient Distributed Random Walks with Applications" (Das Sarma,
// Nanongkai, Pandurangan, Tetali; PODC 2010) on a simulated CONGEST
// network:
//
//   - SINGLE-RANDOM-WALK (Algorithm 1): sample the endpoint of an ℓ-step
//     walk in Õ(√(ℓD)) rounds by preparing short walks of random length in
//     [λ, 2λ−1] (Phase 1) and stitching them at connector nodes (Phase 2).
//   - SAMPLE-DESTINATION (Algorithm 3): uniform sampling of an unused
//     short-walk coupon via BFS-tree convergecast in O(D) rounds.
//   - GET-MORE-WALKS (Algorithm 2): count-aggregated refill of a node's
//     short walks, with reservoir sampling giving each new walk an
//     independent uniform length without per-walk control messages.
//   - MANY-RANDOM-WALKS: k walks in Õ(min(√(kℓD)+k, k+ℓ)) rounds.
//   - Walk regeneration (Section 2.2): every node learns its position(s)
//     in the sampled walk, enabling the random-spanning-tree application.
//   - The naive ℓ-round token walk and the PODC 2009 Õ(ℓ^{2/3}D^{1/3})
//     parameterization, as baselines.
//
// All algorithms run on internal/congest and report exact round/message
// costs. Correctness is Las Vegas: the sampled endpoint follows the true
// ℓ-step walk distribution regardless of parameter choices; parameters
// only affect the round complexity.
package core
