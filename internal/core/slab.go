package core

import (
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// Slab-backed per-node stores for the protocol layer. The walk protocols
// used to keep per-node Go maps (coupons by owner, GET-MORE-WALKS flow
// ledgers, hop indexes) that were allocated on first touch and thrown away
// per request; at service scale the map machinery — bucket allocation,
// hashing boxed keys, GC scanning — dominated the per-walk cost once the
// engine itself went zero-alloc. These shelves replace the maps with one
// shared open-addressed slot table (slotTable) over growable slabs:
//
//   - The slot table is a []int32 of slab-index+1 values (0 = empty)
//     probed linearly from a mixed hash; clearing is a memclr, never a
//     free.
//   - Values live in parallel slabs appended in insertion order; clearing
//     truncates to :0, so capacity survives across requests (warm reuse).
//   - Entries are never deleted individually (the protocols only ever add,
//     mutate in place, or clear wholesale), which keeps linear probing
//     exact without tombstones.
//
// Determinism: lookups are by exact key, lists preserve append order and
// swap-remove semantics, and nothing here iterates a table in hash order
// on an RNG- or message-relevant path — so a flat store behaves bit-
// identically to the map it replaced (see TestCouponShelfMatchesReference
// and friends).

// slabKey is a key usable in a slotTable: comparable for probe equality,
// self-hashing (via rng.Mix64) for probe starts.
type slabKey interface {
	comparable
	hash() uint64
}

// ownerKey / walkKey adapt the shelves' primitive key types to slabKey.
type (
	ownerKey graph.NodeID
	walkKey  int64
)

func (k ownerKey) hash() uint64 { return rng.Mix64(uint64(uint32(k))) }
func (k walkKey) hash() uint64  { return rng.Mix64(uint64(k)) }
func (k gmwKey) hash() uint64 {
	return rng.Mix64(uint64(k.batch)) ^ rng.Mix64(uint64(uint32(k.step))<<32|uint64(uint32(k.nbr)))
}

// slotTable is the shared open-addressed index of the shelves: it maps a
// key to an index into the owner's parallel key/value slabs. The caller
// owns the key slab (keys[i] is the key of slab entry i); the table only
// stores slot positions, so clearing it is a memclr and growth rehashes
// from the slab, allocating nothing but the new table.
type slotTable[K slabKey] struct {
	slots []int32 // slab index + 1, 0 = empty
}

// find returns the slab index of k, or -1.
func (t *slotTable[K]) find(keys []K, k K) int {
	if len(t.slots) == 0 {
		return -1
	}
	for i := k.hash() & uint64(len(t.slots)-1); ; i = (i + 1) & uint64(len(t.slots)-1) {
		v := t.slots[i]
		if v == 0 {
			return -1
		}
		if keys[v-1] == k {
			return int(v - 1)
		}
	}
}

// add indexes keys[idx] (which the caller just appended), growing to keep
// the load factor under 3/4 (rehashing every slab entry on growth).
func (t *slotTable[K]) add(keys []K, idx int) {
	if len(t.slots) == 0 || 4*(idx+1) > 3*len(t.slots) {
		n := 2 * len(t.slots)
		if n < 8 {
			n = 8
		}
		t.slots = make([]int32, n)
		for j := 0; j < idx; j++ {
			t.place(keys[j].hash(), int32(j+1))
		}
	}
	t.place(keys[idx].hash(), int32(idx+1))
}

// place writes v at the first free slot of h's probe sequence.
func (t *slotTable[K]) place(h uint64, v int32) {
	i := h & uint64(len(t.slots)-1)
	for t.slots[i] != 0 {
		i = (i + 1) & uint64(len(t.slots)-1)
	}
	t.slots[i] = v
}

func (t *slotTable[K]) clear() { clear(t.slots) }

// --- couponShelf: one node's unused coupons, grouped by owner ---

// couponShelf stores a node's coupons bucketed by owner. owners and lists
// are parallel slabs in first-touch order. Bucket lists keep exact append
// order, and removal is the same swap-remove the map-based store used, so
// the uniform coupon sampling of SAMPLE-DESTINATION consumes RNG
// identically.
type couponShelf struct {
	tab    slotTable[ownerKey]
	owners []ownerKey
	lists  [][]coupon
}

// bucket returns the slab index of owner's list, or -1. With create it
// inserts an empty bucket.
func (s *couponShelf) bucket(owner graph.NodeID, create bool) int {
	idx := s.tab.find(s.owners, ownerKey(owner))
	if idx >= 0 || !create {
		return idx
	}
	idx = len(s.owners)
	s.owners = append(s.owners, ownerKey(owner))
	if idx < cap(s.lists) {
		s.lists = s.lists[:idx+1] // recycle the truncated bucket's capacity
	} else {
		s.lists = append(s.lists, nil)
	}
	s.tab.add(s.owners, idx)
	return idx
}

func (s *couponShelf) add(c coupon) {
	idx := s.bucket(c.owner, true)
	s.lists[idx] = append(s.lists[idx], c)
}

// get returns owner's coupon list (nil if none), in append order.
func (s *couponShelf) get(owner graph.NodeID) []coupon {
	idx := s.bucket(owner, false)
	if idx < 0 {
		return nil
	}
	return s.lists[idx]
}

// take removes the coupon with the given walkID from owner's list by
// swap-remove, reporting whether it was present. The scan is linear in
// the node's local coupons for that owner — O(local), exactly like the
// map-backed store (and unlike a global scan, which the protocols never
// need: every node only touches its own shelf).
func (s *couponShelf) take(owner graph.NodeID, walkID int64) bool {
	idx := s.bucket(owner, false)
	if idx < 0 {
		return false
	}
	list := s.lists[idx]
	for i, c := range list {
		if c.walkID == walkID {
			list[i] = list[len(list)-1]
			s.lists[idx] = list[:len(list)-1]
			return true
		}
	}
	return false
}

// clear empties the shelf keeping every slab's capacity: bucket lists and
// the owner slab truncate, the slot table memclrs.
func (s *couponShelf) clear() {
	for i := range s.lists {
		s.lists[i] = s.lists[i][:0]
	}
	s.lists = s.lists[:0]
	s.owners = s.owners[:0]
	s.tab.clear()
}

// --- gmwShelf: one node's GET-MORE-WALKS flow ledger ---

// gmwRec is one aggregated flow record: how many tokens of `key.batch`
// this node routed to key.nbr arriving with hop counter key.step (sent),
// and how many of them earlier backward retraces already claimed (used).
type gmwRec struct {
	sent int32
	used int32
}

// gmwShelf stores a node's flow records with open-addressed lookup on the
// (batch, step, nbr) triple; keys and records are parallel slabs.
type gmwShelf struct {
	tab  slotTable[gmwKey]
	keys []gmwKey
	recs []gmwRec
}

// rec returns the record for key, inserting a zero record when create is
// set; nil otherwise.
func (s *gmwShelf) rec(key gmwKey, create bool) *gmwRec {
	idx := s.tab.find(s.keys, key)
	if idx < 0 {
		if !create {
			return nil
		}
		idx = len(s.keys)
		s.keys = append(s.keys, key)
		s.recs = append(s.recs, gmwRec{})
		s.tab.add(s.keys, idx)
	}
	return &s.recs[idx]
}

func (s *gmwShelf) clear() {
	s.keys = s.keys[:0]
	s.recs = s.recs[:0]
	s.tab.clear()
}

// --- hopShelf: one node's hop log and its lazy per-walk index ---

// hopShelf keeps the node's flat departure log (the hottest per-message
// write of Phase 1 stays a plain append) plus the lazily-built per-walk
// FIFO view regeneration replays. Successor lists are slabs reused across
// clears; replay cursors are epoch-stamped so starting a new replay pass
// costs nothing (see netState.beginReplay).
type hopShelf struct {
	log     []hopRec
	indexed int32 // how much of log is folded into the index

	tab    slotTable[walkKey]
	walks  []walkKey
	nexts  [][]graph.NodeID
	cursor []int32
	cstamp []uint32
}

// walkSlot returns the slab index of walkID's successor list, or -1; with
// create it inserts an empty one.
func (s *hopShelf) walkSlot(walkID int64, create bool) int {
	idx := s.tab.find(s.walks, walkKey(walkID))
	if idx >= 0 || !create {
		return idx
	}
	idx = len(s.walks)
	s.walks = append(s.walks, walkKey(walkID))
	if idx < cap(s.nexts) {
		s.nexts = s.nexts[:idx+1]
	} else {
		s.nexts = append(s.nexts, nil)
	}
	s.cursor = append(s.cursor, 0)
	s.cstamp = append(s.cstamp, 0)
	s.tab.add(s.walks, idx)
	return idx
}

// ensureIndexed folds any log entries appended since the last call into
// the per-walk successor lists. No hops are recorded while replays run,
// so lists stay stable for the duration of a replay pass.
func (s *hopShelf) ensureIndexed() {
	if int(s.indexed) == len(s.log) {
		return
	}
	for _, r := range s.log[s.indexed:] {
		idx := s.walkSlot(r.walkID, true)
		s.nexts[idx] = append(s.nexts[idx], r.next)
	}
	s.indexed = int32(len(s.log))
}

// replayNext pops the next recorded successor of walkID in FIFO order.
// Cursors reset lazily per replay epoch: a stale stamp means this walk's
// cursor has not been touched this pass and starts at 0.
func (s *hopShelf) replayNext(walkID int64, epoch uint32) (graph.NodeID, bool) {
	s.ensureIndexed()
	idx := s.walkSlot(walkID, false)
	if idx < 0 {
		return graph.None, false
	}
	if s.cstamp[idx] != epoch {
		s.cstamp[idx] = epoch
		s.cursor[idx] = 0
	}
	c := s.cursor[idx]
	if int(c) >= len(s.nexts[idx]) {
		return graph.None, false
	}
	s.cursor[idx] = c + 1
	return s.nexts[idx][c], true
}

func (s *hopShelf) clear() {
	s.log = s.log[:0]
	s.indexed = 0
	for i := range s.nexts {
		s.nexts[i] = s.nexts[i][:0]
	}
	s.nexts = s.nexts[:0]
	s.walks = s.walks[:0]
	s.cursor = s.cursor[:0]
	s.cstamp = s.cstamp[:0]
	s.tab.clear()
}
