package core

import (
	"testing"

	"distwalk/internal/graph"
	"distwalk/internal/stats"
)

// plantCoupons installs coupons owned by `owner` at the given holders.
func plantCoupons(w *Walker, owner graph.NodeID, holders []graph.NodeID) []int64 {
	ids := make([]int64, len(holders))
	for i, h := range holders {
		id := w.st.newWalkID(h)
		w.st.addCoupon(h, coupon{owner: owner, walkID: id, length: 5})
		ids[i] = id
	}
	return ids
}

func TestSampleDestinationUniform(t *testing.T) {
	// 6 coupons spread unevenly over the graph (3 on one node) must each
	// be sampled with probability 1/6 — Lemma 2.4 / Lemma A.2.
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	const owner = graph.NodeID(4)
	holders := []graph.NodeID{0, 0, 0, 2, 7, 4}

	counts := make(map[int64]int)
	const trials = 6000
	for trial := 0; trial < trials; trial++ {
		w := newWalker(t, g, uint64(trial), DefaultParams())
		if _, err := w.ensureTree(owner); err != nil {
			t.Fatal(err)
		}
		ids := plantCoupons(w, owner, holders)
		res, _, err := w.sampleDestination(owner)
		if err != nil {
			t.Fatal(err)
		}
		if !res.found {
			t.Fatal("sample found nothing")
		}
		// Identify which planted coupon was drawn by position.
		found := false
		for i, id := range ids {
			if id == res.walkID {
				if res.dest != holders[i] {
					t.Fatalf("coupon %d reported holder %d, want %d", id, res.dest, holders[i])
				}
				counts[int64(i)]++
				found = true
			}
		}
		if !found {
			t.Fatalf("sampled unknown coupon %d", res.walkID)
		}
	}
	obs := make([]int, len(holders))
	for i := range obs {
		obs[i] = counts[int64(i)]
	}
	p, err := stats.UniformityPValue(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("coupon sampling not uniform: counts=%v p=%v", obs, p)
	}
}

func TestSampleDestinationDeletesCoupon(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 9, DefaultParams())
	const owner = graph.NodeID(0)
	if _, err := w.ensureTree(owner); err != nil {
		t.Fatal(err)
	}
	plantCoupons(w, owner, []graph.NodeID{3, 5})
	seen := make(map[int64]bool)
	for i := 0; i < 2; i++ {
		res, _, err := w.sampleDestination(owner)
		if err != nil {
			t.Fatal(err)
		}
		if !res.found {
			t.Fatalf("draw %d found nothing", i)
		}
		if seen[res.walkID] {
			t.Fatalf("coupon %d drawn twice (not deleted)", res.walkID)
		}
		seen[res.walkID] = true
	}
	res, _, err := w.sampleDestination(owner)
	if err != nil {
		t.Fatal(err)
	}
	if res.found {
		t.Fatal("third draw from two coupons succeeded")
	}
}

func TestSampleDestinationEmpty(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 10, DefaultParams())
	if _, err := w.ensureTree(0); err != nil {
		t.Fatal(err)
	}
	res, cost, err := w.sampleDestination(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.found {
		t.Fatal("found coupons in an empty store")
	}
	if cost.Rounds == 0 {
		t.Fatal("empty sampling should still cost sweeps")
	}
}

func TestSampleDestinationIgnoresOtherOwners(t *testing.T) {
	g, err := graph.Torus(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 11, DefaultParams())
	if _, err := w.ensureTree(0); err != nil {
		t.Fatal(err)
	}
	plantCoupons(w, 1, []graph.NodeID{2, 3}) // owned by node 1, not 0
	res, _, err := w.sampleDestination(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.found {
		t.Fatal("sampled another owner's coupon")
	}
}

func TestSampleDestinationCostIsTreeBound(t *testing.T) {
	// Each of the four sweeps is at most Height (plus the request depth):
	// total must be O(D), far below n for a long path.
	g, err := graph.Path(60)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 12, DefaultParams())
	if _, err := w.ensureTree(0); err != nil {
		t.Fatal(err)
	}
	plantCoupons(w, 30, []graph.NodeID{10, 50})
	_, cost, err := w.sampleDestination(30)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Rounds > 5*w.tree.Height+5 {
		t.Fatalf("sampling cost %d rounds exceeds 5·height=%d", cost.Rounds, 5*w.tree.Height)
	}
}
