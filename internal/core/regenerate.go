package core

import (
	"fmt"
	"slices"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// Trace is the result of regenerating a walk (Section 2.2, "Regenerating
// the entire random walk"): every node knows its position(s) in the
// ℓ-step walk. The arrays aggregate per-node local knowledge for driver
// convenience: Positions[v] is known to v, and so on.
type Trace struct {
	// Positions[v] lists the walk positions (0..ℓ) at which the walk was
	// at v, in increasing order. Position 0 is the source.
	Positions [][]int32
	// FirstVisitTime[v] is the first position at which the walk was at v,
	// or -1 if the walk never visited v.
	FirstVisitTime []int32
	// FirstVisitFrom[v] is the node the walk arrived from on its first
	// visit to v (None for the source). This is exactly the edge the
	// Aldous-Broder spanning-tree rule outputs (Section 4.1).
	FirstVisitFrom []graph.NodeID
	// Covered reports whether every node was visited.
	Covered bool
	// Cost is the simulated cost of the regeneration pass.
	Cost congest.Result
}

// regenToken replays one recorded segment hop by hop; pos is the global
// walk position upon arrival.
type regenToken struct {
	walkID int64
	pos    int32
}

func (regenToken) Words() int   { return 2 }
func (regenToken) Kind() uint16 { return kindRegenToken }
func (t regenToken) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(t.walkID), uint64(uint32(t.pos))}
}
func (regenToken) Decode(w [congest.PayloadWords]uint64) regenToken {
	return regenToken{walkID: int64(w[0]), pos: int32(uint32(w[1]))}
}

type regenEmit struct {
	walkID   int64
	startPos int32
}

type regenProto struct {
	w     *Walker
	emits map[graph.NodeID][]regenEmit

	// traceOf routes each walk's visits to its own trace; walk IDs are
	// network-unique, so many walks replay concurrently in one run.
	traceOf map[int64]*Trace
}

func (p *regenProto) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	for _, e := range p.emits[v] {
		p.advance(ctx, e.walkID, e.startPos)
	}
}

func (p *regenProto) Step(ctx *congest.Ctx) {
	v := ctx.Node()
	for _, m := range ctx.Inbox() {
		if m.Kind != kindRegenToken {
			continue
		}
		t := congest.As[regenToken](m)
		if tr := p.traceOf[t.walkID]; tr != nil {
			tr.record(v, t.pos, m.From)
		}
		p.advance(ctx, t.walkID, t.pos)
	}
}

// advance forwards the replay token along the next recorded hop, if any
// remain at this node for this walk. Hop records are consumed FIFO via the
// state's epoch-stamped replay cursors (reset for the whole network by the
// beginReplay in regenerateMany): the replay arrives in the same temporal
// order the original walk left.
func (p *regenProto) advance(ctx *congest.Ctx, walkID int64, pos int32) {
	v := ctx.Node()
	next, ok := p.w.st.replayNext(v, walkID)
	if !ok {
		return // segment ends here
	}
	congest.Send(ctx, next, regenToken{walkID: walkID, pos: pos + 1})
}

// record notes that the walk was at v at position pos, arriving from
// `from`. Replay passes deliver visits out of position order (parallel
// forward segments, backward refill retraces), so first-visit bookkeeping
// keeps the minimum position rather than the first arrival.
func (tr *Trace) record(v graph.NodeID, pos int32, from graph.NodeID) {
	tr.Positions[v] = append(tr.Positions[v], pos)
	if tr.FirstVisitTime[v] < 0 || pos < tr.FirstVisitTime[v] {
		tr.FirstVisitTime[v] = pos
		tr.FirstVisitFrom[v] = from
	}
}

// Regenerate replays a completed walk so that every node learns its
// position(s) in it, in time comparable to Phase 1 (Section 2.2). Phase 1
// and tail segments replay forward in parallel, one message per recorded
// hop; GET-MORE-WALKS segments (rare — w.h.p. absent, Theorem 2.5) are
// retraced backward through their recorded flow counts, one at a time so
// the without-replacement claims stay exact.
func (w *Walker) Regenerate(res *WalkResult) (*Trace, error) {
	if err := w.acquire(); err != nil {
		return nil, err
	}
	defer w.release()
	traces, err := w.regenerateMany([]*WalkResult{res})
	if err != nil {
		return nil, w.faultize(err)
	}
	return traces[0], nil
}

// RegenerateMany regenerates several walks in a single parallel replay
// pass (the walks must have distinct walk IDs, which holds for any walks
// produced by one Walker). Applications that need every walk's trace —
// like the spanning-tree cover search over ⌈log n⌉ candidate walks — pay
// roughly one walk's replay rounds for all of them, keeping regeneration
// within the Phase 1 budget as Section 2.2 claims.
func (w *Walker) RegenerateMany(walks []*WalkResult) ([]*Trace, error) {
	if err := w.acquire(); err != nil {
		return nil, err
	}
	defer w.release()
	traces, err := w.regenerateMany(walks)
	if err != nil {
		return nil, w.faultize(err)
	}
	return traces, nil
}

func (w *Walker) regenerateMany(walks []*WalkResult) ([]*Trace, error) {
	if len(walks) == 0 {
		return nil, fmt.Errorf("core: no walks to regenerate")
	}
	if w.prm.Metropolis {
		return nil, fmt.Errorf("%w: Metropolis-Hastings stay steps leave no hop trail", ErrNoRegen)
	}
	n := w.g.N()
	type refillAt struct {
		seg      Segment
		startPos int32
		trace    *Trace
	}
	var refills []refillAt
	traces := make([]*Trace, len(walks))
	emits := make(map[graph.NodeID][]regenEmit)
	traceOf := make(map[int64]*Trace)
	for i, res := range walks {
		if res == nil {
			return nil, fmt.Errorf("core: nil walk result (index %d)", i)
		}
		trace := &Trace{
			Positions:      make([][]int32, n),
			FirstVisitTime: make([]int32, n),
			FirstVisitFrom: make([]graph.NodeID, n),
		}
		for v := range trace.FirstVisitTime {
			trace.FirstVisitTime[v] = -1
			trace.FirstVisitFrom[v] = graph.None
		}
		// The source knows it is position 0.
		trace.Positions[res.Source] = append(trace.Positions[res.Source], 0)
		trace.FirstVisitTime[res.Source] = 0
		traces[i] = trace

		pos := int32(0)
		for _, s := range res.Segments {
			if s.FromRefill {
				refills = append(refills, refillAt{seg: s, startPos: pos, trace: trace})
			} else {
				if traceOf[s.WalkID] != nil {
					return nil, fmt.Errorf("core: walk ID %d regenerated twice", s.WalkID)
				}
				emits[s.Start] = append(emits[s.Start], regenEmit{walkID: s.WalkID, startPos: pos})
				traceOf[s.WalkID] = trace
			}
			pos += int32(s.Length)
		}
		if int(pos) != res.Length {
			return nil, fmt.Errorf("core: segments sum to %d, walk length is %d", pos, res.Length)
		}
	}

	w.st.beginReplay()
	p := &regenProto{
		w:       w,
		emits:   emits,
		traceOf: traceOf,
	}
	cost, err := w.net.Run(p)
	traces[0].Cost = cost
	if err != nil {
		return nil, err
	}
	for _, r := range refills {
		res, err := w.retraceRefill(r.seg, r.startPos, r.trace)
		traces[0].Cost.Add(res)
		if err != nil {
			return nil, err
		}
	}
	// Replays interleave arrival order; each node sorts its own position
	// list (local work is free in the model). Then check per-walk
	// invariants: ℓ+1 recorded positions, ending at the destination.
	for i, trace := range traces {
		res := walks[i]
		total := 0
		for v := range trace.Positions {
			slices.Sort(trace.Positions[v])
			total += len(trace.Positions[v])
		}
		if total != res.Length+1 {
			return nil, fmt.Errorf("core: regeneration of walk %d recorded %d positions, want %d",
				i, total, res.Length+1)
		}
		if last := trace.Positions[res.Destination]; len(last) == 0 ||
			last[len(last)-1] != int32(res.Length) {
			return nil, fmt.Errorf("core: regeneration of walk %d did not end at destination %d",
				i, res.Destination)
		}
		trace.Covered = true
		for v := range trace.FirstVisitTime {
			if trace.FirstVisitTime[v] < 0 {
				trace.Covered = false
				break
			}
		}
	}
	return traces, nil
}
