package core

import (
	"errors"
	"sync"
	"testing"

	"distwalk/internal/graph"
)

// The Walker is documented as single-threaded; the in-use guard must turn
// overlapping calls into ErrConcurrentUse instead of corrupting netState.

func guardWalker(t *testing.T) *Walker {
	t.Helper()
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 21, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGuardRejectsOverlappingCalls(t *testing.T) {
	w := guardWalker(t)
	// Deterministic check: claim the walker as an in-flight call would,
	// then verify every exported entry point refuses.
	if err := w.acquire(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.SingleRandomWalk(0, 8); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("SingleRandomWalk err = %v, want ErrConcurrentUse", err)
	}
	if _, err := w.NaiveWalk(0, 8); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("NaiveWalk err = %v, want ErrConcurrentUse", err)
	}
	if _, err := w.ManyRandomWalks([]graph.NodeID{0}, 8); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("ManyRandomWalks err = %v, want ErrConcurrentUse", err)
	}
	if _, err := w.Prepare(0); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("Prepare err = %v, want ErrConcurrentUse", err)
	}
	if _, err := w.RegenerateMany(nil); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("RegenerateMany err = %v, want ErrConcurrentUse", err)
	}
	w.release()
	// Released: calls work again.
	if _, err := w.SingleRandomWalk(0, 8); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestGuardUnderRacingGoroutines(t *testing.T) {
	w := guardWalker(t)
	// Hammer the walker from many goroutines. Every call must either
	// succeed or fail with ErrConcurrentUse — and the walker must stay
	// consistent enough that a final serial walk still works. Run under
	// -race this also proves the guard synchronizes the state it protects.
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := w.SingleRandomWalk(graph.NodeID(i), 64)
			errs[i] = err
		}(i)
	}
	wg.Wait()
	ok := 0
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrConcurrentUse):
		default:
			t.Fatalf("goroutine %d: unexpected error %v", i, err)
		}
	}
	if ok == 0 {
		t.Fatal("no call ever acquired the walker")
	}
	if _, err := w.SingleRandomWalk(0, 64); err != nil {
		t.Fatalf("serial walk after the race: %v", err)
	}
}
