package core

import (
	"fmt"
	"math"
)

// Params tunes the walk algorithms. The zero value is NOT ready to use;
// call DefaultParams (or fill the fields) so that multipliers are positive.
type Params struct {
	// LambdaC scales the short-walk base length: λ = ⌈LambdaC·√(ℓ·D)⌉.
	// The paper's analysis sets λ = 24·√(ℓD)·(log n)³ (proof of Theorem
	// 2.5), which is asymptotically right but so conservative that λ > ℓ on
	// any laptop-scale instance, degenerating to the naive walk. The
	// default LambdaC = 1 keeps the √(ℓD) shape; GET-MORE-WALKS supplies
	// any short walks the dropped polylog factor would have pre-provisioned,
	// so correctness is unaffected (the algorithm is Las Vegas).
	LambdaC float64
	// Lambda overrides λ directly when positive (used by tests/ablations).
	Lambda int
	// Eta is the number of Phase 1 short walks per unit of degree
	// (η in the paper; each node prepares η·deg(v) walks). Default 1.
	Eta int
	// Theory applies the paper's constants verbatim:
	// λ = 24·√(ℓD)·(log₂ n)³ with η = 1.
	Theory bool
	// FixedLength makes every short walk exactly λ long instead of uniform
	// in [λ, 2λ−1]. This reverts the paper's key fix for connector
	// periodicity (Lemma 2.7) and is the PODC 2009 behaviour; exposed for
	// the E10 ablation.
	FixedLength bool
	// UniformCounts gives every node exactly η short walks instead of
	// η·deg(v) (the PODC 2009 behaviour; E11 ablation).
	UniformCounts bool
	// PerCallBFS rebuilds a BFS tree rooted at the current connector on
	// every SAMPLE-DESTINATION call, as Algorithm 3 does literally, instead
	// of reusing the tree rooted at the source. Both cost Θ(D) rounds per
	// call.
	PerCallBFS bool
	// Metropolis samples the Metropolis-Hastings walk with uniform target
	// distribution instead of the simple walk — the generalization the
	// PODC 2009 predecessor supports (Section 1.3). Stays consume walk
	// steps but no messages. Endpoint sampling (single and many walks) is
	// fully supported; Regenerate is not (stay steps leave no hop trail),
	// matching this paper's focus on the simple walk for its applications.
	Metropolis bool
}

// DefaultParams returns the practical parameterization used throughout the
// experiments: λ = √(ℓD), η = 1, random short-walk lengths,
// degree-proportional Phase 1 counts.
func DefaultParams() Params {
	return Params{LambdaC: 1, Eta: 1}
}

// DNP09Params returns the parameterization of the earlier Das Sarma-
// Nanongkai-Pandurangan (PODC 2009) algorithm, the paper's baseline:
// fixed-length short walks, uniform per-node counts, and λ, η chosen to
// balance the O(ηλ + ℓD/λ + ℓ/η) bound at Õ(ℓ^{2/3}D^{1/3}):
// λ = (ℓD²)^{1/3}, η = (ℓ/D)^{1/3}.
func DNP09Params(ell, diam int) Params {
	if ell < 1 {
		ell = 1
	}
	if diam < 1 {
		diam = 1
	}
	l := float64(ell)
	d := float64(diam)
	lambda := int(math.Ceil(math.Cbrt(l * d * d)))
	eta := int(math.Ceil(math.Cbrt(l / d)))
	if lambda < 1 {
		lambda = 1
	}
	if eta < 1 {
		eta = 1
	}
	return Params{
		Lambda:        lambda,
		LambdaC:       1,
		Eta:           eta,
		FixedLength:   true,
		UniformCounts: true,
	}
}

// Validate reports whether p is a usable parameterization; failures wrap
// ErrBadParams. The service layer validates options before building its
// worker pool.
func (p Params) Validate() error { return p.validate() }

func (p Params) validate() error {
	if p.Lambda == 0 && p.LambdaC <= 0 && !p.Theory {
		return fmt.Errorf("%w: need positive LambdaC or Lambda (use DefaultParams)", ErrBadParams)
	}
	if p.Eta < 1 {
		return fmt.Errorf("%w: need Eta >= 1, got %d", ErrBadParams, p.Eta)
	}
	if p.Lambda < 0 {
		return fmt.Errorf("%w: negative Lambda %d", ErrBadParams, p.Lambda)
	}
	return nil
}

// lambda returns the short-walk base length for a single ℓ-step walk on a
// graph with n nodes and (estimated) diameter diam.
func (p Params) lambda(ell, diam, n int) int {
	if p.Lambda > 0 {
		return p.Lambda
	}
	if diam < 1 {
		diam = 1
	}
	if p.Theory {
		lg := math.Log2(float64(max(n, 2)))
		return ceilPos(24 * math.Sqrt(float64(ell)*float64(diam)) * lg * lg * lg)
	}
	return ceilPos(p.LambdaC * math.Sqrt(float64(ell)*float64(diam)))
}

// lambdaMany returns λ for k simultaneous walks (Theorem 2.8): practical
// form c·(√(kℓD)+k); theory form (24√(kℓD+1)·log n + k)(log n)².
func (p Params) lambdaMany(k, ell, diam, n int) int {
	if p.Lambda > 0 {
		return p.Lambda
	}
	if diam < 1 {
		diam = 1
	}
	kl := float64(k) * float64(ell) * float64(diam)
	if p.Theory {
		lg := math.Log2(float64(max(n, 2)))
		return ceilPos((24*math.Sqrt(kl+1)*lg + float64(k)) * lg * lg)
	}
	return ceilPos(p.LambdaC * (math.Sqrt(kl) + float64(k)))
}

func ceilPos(x float64) int {
	v := int(math.Ceil(x))
	if v < 1 {
		return 1
	}
	return v
}
