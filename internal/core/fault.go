package core

import (
	"context"
	"errors"
	"fmt"

	"distwalk/internal/congest"
)

// Fault awareness: the engine records the first message lost to an
// injected fault (crash-stop, churn window, lossy link) per request. A
// protocol that loses a token to a fault does not return a wrong sample
// — the Las Vegas drivers detect the inconsistency (missing coupon,
// unfinished tail, unreachable BFS node, stalled convergecast) and fail.
// faultize converts those detection errors into the typed fault error at
// every Walker entry point, so callers (and the Service retry policy)
// dispatch on ErrNodeCrashed/ErrMessageLost instead of parsing protocol
// internals, and a walk through a dead node fails fast as "node crashed"
// rather than surfacing as a round-budget overrun.

// faultize rewrites err as the request's typed fault error when the
// walker's network recorded a token loss since its last reseed. Caller
// bugs (validation sentinels), context cancellation and already-typed
// fault errors pass through untouched; the original detection error is
// kept as text so nothing is hidden, but only the fault sentinel is
// errors.Is-able — in particular a budget overrun caused by a loss no
// longer matches ErrRoundLimit.
func (w *Walker) faultize(err error) error {
	if err == nil {
		return nil
	}
	le := w.net.LossError()
	if le == nil {
		return err
	}
	switch {
	case errors.Is(err, congest.ErrNodeCrashed), errors.Is(err, congest.ErrMessageLost),
		errors.Is(err, congest.ErrBadFault):
		return err
	case errors.Is(err, ErrBadNode), errors.Is(err, ErrBadLength), errors.Is(err, ErrBadParams),
		errors.Is(err, ErrGraphTooSmall), errors.Is(err, ErrConcurrentUse), errors.Is(err, ErrNoRegen):
		return err
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return err
	}
	return fmt.Errorf("%w; request failed: %v", le, err)
}

// Faultize converts err through the walker network's recorded token loss
// (see faultize). Exported for drivers that run congest primitives
// directly on the walker's network — the spanning-tree and mixing
// applications broadcast/convergecast outside the Walker methods, so the
// Service applies this at its own boundary.
func Faultize(w *Walker, err error) error { return w.faultize(err) }

// abortive reports errors that must abort a partial-results batch as a
// whole instead of being charged to one walk: cancellation (the caller
// is gone) and walker misuse.
func abortive(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrConcurrentUse)
}
