package core

import (
	"fmt"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// Backward retracing of GET-MORE-WALKS segments.
//
// A refill batch moves as count-aggregated bundles (Algorithm 2), so there
// are no per-token hop records to replay forward. There are, however,
// per-node flow records: every node knows how many batch tokens it routed
// to each neighbor at each step (recorded locally during the refill, at no
// message cost). Because the batch's tokens are exchangeable and choose
// neighbors i.i.d., the conditional law of a specific token's trajectory
// given all flow counts is exactly the backward chain
//
//	P(pred = x | token at u with hop counter s) ∝ flow(x → u, arriving s),
//
// sampled without replacement across retraces (earlier claims decrement
// the available flow, keeping joint retraces of several coupons from one
// batch exact). The protocol walks backward from the coupon's holder:
// query all neighbors for their remaining flow (1 round), collect replies
// (1 round), sample the predecessor and claim one unit from it (1 round),
// repeat — O(1) rounds per hop and one message per involved edge. Each
// visited node learns its walk position, exactly like forward replay.

type gmwQuery struct {
	batch int64
	step  int32
}

func (gmwQuery) Words() int   { return 2 }
func (gmwQuery) Kind() uint16 { return kindGMWQuery }
func (q gmwQuery) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(q.batch), uint64(uint32(q.step))}
}
func (gmwQuery) Decode(w [congest.PayloadWords]uint64) gmwQuery {
	return gmwQuery{batch: int64(w[0]), step: int32(uint32(w[1]))}
}

type gmwReply struct {
	batch int64
	step  int32
	count int32
}

func (gmwReply) Words() int   { return 3 }
func (gmwReply) Kind() uint16 { return kindGMWReply }
func (r gmwReply) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(r.batch), congest.Pack2(r.step, r.count)}
}
func (gmwReply) Decode(w [congest.PayloadWords]uint64) gmwReply {
	step, count := congest.Unpack2(w[1])
	return gmwReply{batch: int64(w[0]), step: step, count: count}
}

type gmwClaim struct {
	batch int64
	step  int32 // the claimed flow's arrival step
	pos   int32 // walk position of the claiming node
}

func (gmwClaim) Words() int   { return 3 }
func (gmwClaim) Kind() uint16 { return kindGMWClaim }
func (c gmwClaim) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(c.batch), congest.Pack2(c.step, c.pos)}
}
func (gmwClaim) Decode(w [congest.PayloadWords]uint64) gmwClaim {
	step, pos := congest.Unpack2(w[1])
	return gmwClaim{batch: int64(w[0]), step: step, pos: pos}
}

// backwardProto retraces one refill segment.
type backwardProto struct {
	w   *Walker
	seg Segment
	// startPos is the segment's first walk position (held by seg.Start).
	startPos int32
	trace    *Trace

	// pending tracks the node currently collecting neighbor replies.
	// Queries go out once per distinct neighbor (flow records are keyed by
	// neighbor, so parallel edges share one ledger entry).
	pending struct {
		node      graph.NodeID
		step      int32
		pos       int32
		nbrs      []graph.NodeID // distinct, in adjacency order
		counts    []int32        // -1 until the neighbor replied
		remaining int
		active    bool
	}
	done bool
	err  error
}

func (p *backwardProto) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	if v != p.seg.End {
		return
	}
	p.query(ctx, int32(p.seg.Length), p.startPos+int32(p.seg.Length))
}

func (p *backwardProto) Step(ctx *congest.Ctx) {
	v := ctx.Node()
	for _, m := range ctx.Inbox() {
		switch m.Kind {
		case kindGMWQuery:
			// "How many batch tokens did you route to me (arriving at hop
			// counter step) that are still unclaimed?" — the ledger at this
			// node is keyed by the asking neighbor.
			msg := congest.As[gmwQuery](m)
			key := gmwKey{batch: msg.batch, step: msg.step, nbr: m.From}
			congest.Send(ctx, m.From, gmwReply{
				batch: msg.batch,
				step:  msg.step,
				count: p.w.st.gmwAvailable(v, key),
			})
		case kindGMWReply:
			p.onReply(ctx, m.From, congest.As[gmwReply](m))
		case kindGMWClaim:
			p.onClaim(ctx, m.From, congest.As[gmwClaim](m))
		}
	}
}

// query starts a backward hop: node v (at walk position pos, hop counter
// step) asks every distinct neighbor for its remaining flow toward v.
// Neighbor dedup uses the state's epoch-stamped mark scratch and the reply
// slots are reused slices, so a long retrace allocates nothing per hop.
func (p *backwardProto) query(ctx *congest.Ctx, step, pos int32) {
	v := ctx.Node()
	p.pending.node = v
	p.pending.step = step
	p.pending.pos = pos
	p.pending.nbrs = p.pending.nbrs[:0]
	p.w.st.beginMark()
	for _, h := range ctx.Neighbors() {
		if p.w.st.markNode(h.To) {
			continue
		}
		p.pending.nbrs = append(p.pending.nbrs, h.To)
	}
	p.pending.counts = p.pending.counts[:0]
	for range p.pending.nbrs {
		p.pending.counts = append(p.pending.counts, -1)
	}
	p.pending.remaining = len(p.pending.nbrs)
	p.pending.active = true
	for _, nbr := range p.pending.nbrs {
		congest.Send(ctx, nbr, gmwQuery{batch: p.seg.Batch, step: step})
	}
}

func (p *backwardProto) onReply(ctx *congest.Ctx, from graph.NodeID, msg gmwReply) {
	v := ctx.Node()
	if !p.pending.active || p.pending.node != v || msg.step != p.pending.step {
		return
	}
	for i, nbr := range p.pending.nbrs {
		if nbr == from {
			if p.pending.counts[i] >= 0 {
				return // duplicate reply
			}
			p.pending.counts[i] = msg.count
			p.pending.remaining--
			break
		}
	}
	if p.pending.remaining > 0 {
		return
	}
	// All replies in: sample the predecessor proportionally to flow.
	total := int64(0)
	for _, c := range p.pending.counts {
		total += int64(c)
	}
	if total <= 0 {
		p.err = fmt.Errorf("core: backward retrace stuck at node %d step %d (no recorded flow)", v, p.pending.step)
		p.done = true
		return
	}
	x := int64(ctx.RNG().Uint64n(uint64(total)))
	acc := int64(0)
	pred := p.pending.nbrs[len(p.pending.nbrs)-1]
	for i, c := range p.pending.counts {
		acc += int64(c)
		if x < acc {
			pred = p.pending.nbrs[i]
			break
		}
	}
	// This node now knows its position and first-visit predecessor.
	p.trace.record(v, p.pending.pos, pred)
	p.pending.active = false
	congest.Send(ctx, pred, gmwClaim{batch: p.seg.Batch, step: p.pending.step, pos: p.pending.pos})
}

func (p *backwardProto) onClaim(ctx *congest.Ctx, from graph.NodeID, msg gmwClaim) {
	v := ctx.Node()
	p.w.st.claimGMW(v, gmwKey{batch: msg.batch, step: msg.step, nbr: from})
	prevStep := msg.step - 1
	prevPos := msg.pos - 1
	if prevStep == 0 {
		// The batch originated here: this must be the segment's start, and
		// its position is recorded by the preceding segment (or the walk
		// source), so the retrace is complete.
		if v != p.seg.Start {
			p.err = fmt.Errorf("core: backward retrace ended at %d, want %d", v, p.seg.Start)
		} else if prevPos != p.startPos {
			p.err = fmt.Errorf("core: backward retrace position %d, want %d", prevPos, p.startPos)
		}
		p.done = true
		return
	}
	p.query(ctx, prevStep, prevPos)
}

func (p *backwardProto) Halted() bool { return p.done }

// retraceRefill regenerates one GET-MORE-WALKS segment starting at walk
// position startPos, recording visits into trace.
func (w *Walker) retraceRefill(seg Segment, startPos int32, trace *Trace) (congest.Result, error) {
	p := &backwardProto{w: w, seg: seg, startPos: startPos, trace: trace}
	res, err := w.net.Run(p)
	if err != nil {
		return res, err
	}
	if p.err != nil {
		return res, p.err
	}
	if !p.done {
		return res, fmt.Errorf("core: backward retrace of segment %d->%d did not finish", seg.Start, seg.End)
	}
	return res, nil
}
