package core

import (
	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// walkToken carries one Phase 1 short walk: the walk ID (which encodes the
// owner), the hops still to take, and the total length (stored in the
// coupon at the destination). All O(log n) bits, as in Section 2.1: "Each
// node simply sends η tokens containing the source ID and the desired
// length. The nodes keep forwarding these tokens with decreased desired
// walk length".
type walkToken struct {
	walkID    int64
	remaining int32
	total     int32
}

func (walkToken) Words() int   { return 3 }
func (walkToken) Kind() uint16 { return kindWalkToken }
func (t walkToken) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(t.walkID), congest.Pack2(t.remaining, t.total)}
}
func (walkToken) Decode(w [congest.PayloadWords]uint64) walkToken {
	rem, total := congest.Unpack2(w[1])
	return walkToken{walkID: int64(w[0]), remaining: rem, total: total}
}

// phase1Proto performs Phase 1 of SINGLE-RANDOM-WALK: every node v starts
// η·deg(v) independent short walks (η with UniformCounts), each of length
// λ + r with r uniform in [0, λ−1] (exactly λ with FixedLength). Each
// forwarding node records the successor so the walk can be retraced later;
// the destination stores a coupon. The engine's per-edge queues charge the
// congestion this phase is known for (Lemma 2.1: O(λη log n) rounds
// w.h.p.).
type phase1Proto struct {
	w      *Walker
	lambda int32
	// extra adds walks at walk sources: Lemma 2.6's visit bound carries a
	// "+k" term precisely because the k sources are each used as a
	// connector once per walk they start, on top of the d(y)√(kℓ)
	// stationary visits — so sources provision k extra short walks.
	extra map[graph.NodeID]int
}

func (p *phase1Proto) Init(ctx *congest.Ctx) {
	v := ctx.Node()
	if ctx.Degree() == 0 {
		return
	}
	count := p.w.prm.Eta
	if !p.w.prm.UniformCounts {
		count *= ctx.Degree()
	}
	count += p.extra[v]
	for i := 0; i < count; i++ {
		total := p.lambda
		if !p.w.prm.FixedLength {
			total += int32(ctx.RNG().Intn(int(p.lambda)))
		}
		wid := p.w.st.newWalkID(v)
		p.forward(ctx, walkToken{walkID: wid, remaining: total, total: total})
	}
}

func (p *phase1Proto) Step(ctx *congest.Ctx) {
	for _, m := range ctx.Inbox() {
		if m.Kind != kindWalkToken {
			continue
		}
		p.forward(ctx, congest.As[walkToken](m))
	}
}

// forward takes walk steps of the token at the executing node until it
// either moves to a neighbor or finishes here (stay steps of the
// Metropolis-Hastings variant are free: they consume walk steps but no
// messages), storing the coupon when the walk completes.
func (p *phase1Proto) forward(ctx *congest.Ctx, t walkToken) {
	v := ctx.Node()
	next, rem := p.w.advanceToken(ctx, t.remaining)
	if next == graph.None {
		p.w.st.addCoupon(v, coupon{
			owner:  walkOwner(t.walkID),
			walkID: t.walkID,
			length: t.total,
		})
		return
	}
	p.w.st.recordHop(v, t.walkID, next)
	t.remaining = rem
	congest.Send(ctx, next, t)
}
