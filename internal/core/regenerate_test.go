package core

import (
	"testing"

	"distwalk/internal/graph"
)

// reconstruct builds the full node sequence of a walk from a Trace and
// verifies basic integrity along the way.
func reconstruct(t *testing.T, g *graph.G, tr *Trace, res *WalkResult) []graph.NodeID {
	t.Helper()
	seq := make([]graph.NodeID, res.Length+1)
	for i := range seq {
		seq[i] = graph.None
	}
	for v := range tr.Positions {
		for _, pos := range tr.Positions[v] {
			if pos < 0 || int(pos) > res.Length {
				t.Fatalf("position %d out of range [0,%d]", pos, res.Length)
			}
			if seq[pos] != graph.None {
				t.Fatalf("position %d claimed by both %d and %d", pos, seq[pos], v)
			}
			seq[pos] = graph.NodeID(v)
		}
	}
	for i, v := range seq {
		if v == graph.None {
			t.Fatalf("position %d unclaimed", i)
		}
		if i > 0 && !g.HasEdge(seq[i-1], v) {
			t.Fatalf("positions %d->%d use non-edge (%d,%d)", i-1, i, seq[i-1], v)
		}
	}
	if seq[0] != res.Source || seq[res.Length] != res.Destination {
		t.Fatalf("walk runs %d..%d, want %d..%d", seq[0], seq[res.Length], res.Source, res.Destination)
	}
	return seq
}

func TestRegenerateStitchedWalk(t *testing.T) {
	g := kite(t)
	// Find a seed whose stitched walk needed no refills (plenty exist with
	// η=4); refill walks are covered by TestRegenerateRefusesRefillSegments.
	var (
		w   *Walker
		res *WalkResult
	)
	for seed := uint64(0); seed < 20; seed++ {
		w = newWalker(t, g, seed, Params{Lambda: 4, LambdaC: 1, Eta: 4})
		r, err := w.SingleRandomWalk(5, 60)
		if err != nil {
			t.Fatal(err)
		}
		if r.Refills == 0 && len(r.Segments) > 2 {
			res = r
			break
		}
	}
	if res == nil {
		t.Fatal("no refill-free stitched walk in 20 seeds")
	}
	tr, err := w.Regenerate(res)
	if err != nil {
		t.Fatal(err)
	}
	seq := reconstruct(t, g, tr, res)

	// First-visit bookkeeping must match the reconstructed sequence.
	firstSeen := make(map[graph.NodeID]int)
	for i, v := range seq {
		if _, ok := firstSeen[v]; !ok {
			firstSeen[v] = i
		}
	}
	for v, want := range firstSeen {
		if int(tr.FirstVisitTime[v]) != want {
			t.Fatalf("first visit of %d = %d, want %d", v, tr.FirstVisitTime[v], want)
		}
		if want > 0 && tr.FirstVisitFrom[v] != seq[want-1] {
			t.Fatalf("first-visit edge of %d from %d, want %d", v, tr.FirstVisitFrom[v], seq[want-1])
		}
	}
	if tr.FirstVisitFrom[res.Source] != graph.None {
		t.Fatal("source has a first-visit predecessor")
	}
}

func TestRegenerateNaiveWalk(t *testing.T) {
	g := kite(t)
	w := newWalker(t, g, 7, DefaultParams())
	res, err := w.NaiveWalk(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Regenerate(res)
	if err != nil {
		t.Fatal(err)
	}
	reconstruct(t, g, tr, res)
}

func TestRegenerateCoverFlag(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 9, DefaultParams())
	// A long walk on K4 covers it w.h.p.
	res, err := w.NaiveWalk(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Regenerate(res)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Covered {
		t.Fatal("200-step walk on K4 did not cover")
	}
	// A 1-step walk cannot cover 4 nodes.
	res1, err := w.NaiveWalk(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr1, err := w.Regenerate(res1)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Covered {
		t.Fatal("1-step walk covered K4")
	}
}

func TestRegenerateRefillSegmentsBackward(t *testing.T) {
	// GET-MORE-WALKS segments have no hop records; they retrace backward
	// through the recorded flow counts. Starve the inventory so refills
	// are guaranteed, then verify the regenerated sequence is a valid walk
	// matching the stitched endpoints.
	g := kite(t)
	prm := Params{Lambda: 2, LambdaC: 1, Eta: 1, UniformCounts: true}
	w := newWalker(t, g, 11, prm)
	checked := 0
	for i := 0; i < 20; i++ {
		res, err := w.SingleRandomWalk(0, 80)
		if err != nil {
			t.Fatal(err)
		}
		hasRefill := false
		for _, s := range res.Segments {
			if s.FromRefill {
				hasRefill = true
			}
		}
		tr, err := w.Regenerate(res)
		if err != nil {
			t.Fatal(err)
		}
		seq := reconstruct(t, g, tr, res)
		// Every stitched segment boundary must appear at its position.
		pos := 0
		for _, s := range res.Segments {
			if seq[pos] != s.Start {
				t.Fatalf("segment start %d at position %d, trace says %d", s.Start, pos, seq[pos])
			}
			pos += s.Length
			if seq[pos] != s.End {
				t.Fatalf("segment end %d at position %d, trace says %d", s.End, pos, seq[pos])
			}
		}
		if hasRefill {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("starved inventory produced no refill walks to check")
	}
}

func TestRegenerateManyRefillCouponsFromOneBatch(t *testing.T) {
	// Several coupons of the same batch used by one walk must retrace
	// consistently (the without-replacement claims).
	g, err := graph.Complete(6)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{Lambda: 3, LambdaC: 1, Eta: 1, UniformCounts: true}
	w := newWalker(t, g, 17, prm)
	for i := 0; i < 10; i++ {
		res, err := w.SingleRandomWalk(0, 120)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := w.Regenerate(res)
		if err != nil {
			t.Fatal(err)
		}
		reconstruct(t, g, tr, res)
	}
}

func TestRegenerateNilResult(t *testing.T) {
	w := newWalker(t, kite(t), 1, DefaultParams())
	if _, err := w.Regenerate(nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestRegenerateCostComparableToWalk(t *testing.T) {
	// Section 2.2: regeneration costs no more than Phase 1-scale work.
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 13, DefaultParams())
	res, err := w.SingleRandomWalk(0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refills > 0 {
		t.Skip("refills present")
	}
	tr, err := w.Regenerate(res)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cost.Rounds > res.Cost.Rounds {
		t.Fatalf("regeneration (%d rounds) cost more than the walk (%d rounds)",
			tr.Cost.Rounds, res.Cost.Rounds)
	}
}
