package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// Segment is one stitched piece of a completed walk: a short walk (or the
// final naive tail) from Start to End of the given length.
type Segment struct {
	Start  graph.NodeID
	End    graph.NodeID
	WalkID int64
	Length int
	// FromRefill marks segments minted by GET-MORE-WALKS; they are
	// retraced backward through the recorded token-count flows of the
	// batch identified by Batch, instead of by forward hop replay.
	FromRefill bool
	Batch      int64
}

// Breakdown attributes rounds to the stages of SINGLE-RANDOM-WALK.
type Breakdown struct {
	// TreeBuild is the BFS-tree construction (charged to the first walk
	// from a given source).
	TreeBuild int
	// Phase1 is the short-walk preparation (charged when (re)provisioned).
	Phase1 int
	// Stitch covers all SAMPLE-DESTINATION sweeps.
	Stitch int
	// Refill covers GET-MORE-WALKS invocations.
	Refill int
	// Tail is the final ≤2λ-step naive completion (or the whole walk when
	// the naive fallback applies).
	Tail int
	// Report is the destination-to-source notification.
	Report int
}

// WalkResult describes one completed ℓ-step walk.
type WalkResult struct {
	Source      graph.NodeID
	Destination graph.NodeID
	Length      int
	// Lambda is the short-walk base length λ used.
	Lambda int
	// Naive reports that the walk fell back to pure token forwarding
	// because 2λ > ℓ (short walks would overshoot).
	Naive bool
	// Refills counts GET-MORE-WALKS invocations during this walk.
	Refills int
	// Segments lists the stitched pieces in walk order.
	Segments []Segment
	// Cost is the total simulated cost of this walk.
	Cost congest.Result
	// Breakdown attributes Cost.Rounds to algorithm stages.
	Breakdown Breakdown
}

// Walker runs the paper's walk algorithms over one simulated network. A
// Walker may run many walks; unused short-walk coupons persist between
// walks exactly as in MANY-RANDOM-WALKS (Phase 1 provisions once, Phase 2
// stitches per walk and refills on demand).
//
// A Walker is NOT safe for concurrent use: its per-node netState is one
// shared simulation, and interleaving two walks would corrupt coupon
// inventories and hop logs. Every exported method holds an atomic in-use
// flag for its duration and returns an error wrapping ErrConcurrentUse if
// another call is already in flight, instead of corrupting state. For
// concurrent workloads use distwalk.Service, which multiplexes requests
// over a pool of independent walkers.
type Walker struct {
	g   *graph.G
	net *congest.Network
	prm Params
	st  *netState

	tree     *congest.Tree
	spare    *congest.Tree // retired by Reset; its slabs are recycled by ensureTree
	lambda   int           // λ of the current coupon inventory (0 = none)
	prepared bool

	// gmwOut[v] is node v's (neighbor, arrival step) aggregation scratch
	// for GET-MORE-WALKS token processing, reused across refills. It is
	// per-node (not one shared buffer) because several nodes process token
	// bundles in the same round, which under sharded execution means
	// concurrently; lazily sized on the first refill.
	gmwOut [][]gmwFlow

	busy atomic.Bool // in-use flag; see ErrConcurrentUse
}

// NewWalker builds a Walker over g with the given parameters; seed drives
// all randomness (same seed, same execution).
func NewWalker(g *graph.G, seed uint64, prm Params) (*Walker, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("%w: walker needs a non-empty graph", ErrGraphTooSmall)
	}
	if err := prm.validate(); err != nil {
		return nil, err
	}
	return &Walker{
		g:   g,
		net: congest.NewNetwork(g, seed),
		prm: prm,
		st:  newNetState(g.N()),
	}, nil
}

// NewWalkerOn builds a Walker over an existing simulated network. The
// caller controls the network's seed (NewNetwork or Network.Reseed);
// walker state (coupons, hop logs, walk IDs) starts fresh. This is the
// pooling constructor: distwalk.Service keeps one Network per worker and
// builds a throwaway Walker on it per request.
func NewWalkerOn(net *congest.Network, prm Params) (*Walker, error) {
	if net == nil {
		return nil, fmt.Errorf("core: NewWalkerOn needs a non-nil network")
	}
	g := net.Graph()
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("%w: walker needs a non-empty graph", ErrGraphTooSmall)
	}
	if err := prm.validate(); err != nil {
		return nil, err
	}
	return &Walker{g: g, net: net, prm: prm, st: newNetState(g.N())}, nil
}

// SetContext installs ctx on the underlying network: any simulated run
// started afterwards aborts (with an error matching context.Canceled or
// context.DeadlineExceeded) once ctx is done. Pass nil to clear.
func (w *Walker) SetContext(ctx context.Context) { w.net.SetContext(ctx) }

// Reset returns the walker to the observable state of a freshly built one
// — empty coupon inventories, hop logs, flow ledgers and walk-ID counters,
// no BFS tree — while keeping every slab's capacity, and installs prm as
// the walker's parameters. Any previously returned Tree is invalidated
// (its arrays are recycled by the next tree build).
//
// This is the warm-pooling half of NewWalkerOn: distwalk.Service keeps one
// Walker per worker and Resets it per request instead of reallocating, so
// sequential requests run allocation-free in steady state. Combined with
// Network.Reseed the execution stays bit-identical to a fresh walker on a
// fresh network — determinism is a function of (graph, seed, request),
// never of what the walker served before.
func (w *Walker) Reset(prm Params) error {
	if err := w.acquire(); err != nil {
		return err
	}
	defer w.release()
	if err := prm.validate(); err != nil {
		return err
	}
	w.prm = prm
	w.st.reset()
	if w.tree != nil {
		w.spare = w.tree
		w.tree = nil
	}
	w.lambda = 0
	w.prepared = false
	return nil
}

// acquire claims the walker for one exported call; it fails instead of
// blocking because overlapping calls are a caller bug, not a scheduling
// problem.
func (w *Walker) acquire() error {
	if w.busy.Swap(true) {
		return fmt.Errorf("%w (overlapping call)", ErrConcurrentUse)
	}
	return nil
}

func (w *Walker) release() { w.busy.Store(false) }

// Graph returns the underlying topology.
func (w *Walker) Graph() *graph.G { return w.g }

// Network exposes the simulator (for metric access in the harness).
func (w *Walker) Network() *congest.Network { return w.net }

// Tree returns the walker's current BFS tree (nil before the first walk).
// Applications reuse it for their own broadcasts and convergecasts.
func (w *Walker) Tree() *congest.Tree { return w.tree }

// Prepare builds the BFS tree rooted at source (a no-op if it already is),
// returning the round cost. Applications call it when they need tree
// primitives before the first walk.
func (w *Walker) Prepare(source graph.NodeID) (congest.Result, error) {
	if err := w.acquire(); err != nil {
		return congest.Result{}, err
	}
	defer w.release()
	if err := w.checkNode(source); err != nil {
		return congest.Result{}, err
	}
	res, err := w.ensureTree(source)
	return res, w.faultize(err)
}

// SingleRandomWalk samples the destination of an ℓ-step simple random walk
// from source (Algorithm 1, SINGLE-RANDOM-WALK) and returns the walk's
// composition and exact simulated cost. The returned destination is an
// exact sample of the ℓ-step walk distribution (Theorem 2.5: Las Vegas).
func (w *Walker) SingleRandomWalk(source graph.NodeID, ell int) (*WalkResult, error) {
	if err := w.acquire(); err != nil {
		return nil, err
	}
	defer w.release()
	res, err := w.singleRandomWalk(source, ell)
	if err != nil {
		return nil, w.faultize(err)
	}
	return res, nil
}

func (w *Walker) singleRandomWalk(source graph.NodeID, ell int) (*WalkResult, error) {
	if err := w.checkNode(source); err != nil {
		return nil, err
	}
	if ell < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, ell)
	}
	out := &WalkResult{Source: source, Destination: source, Length: ell}
	if ell == 0 {
		return out, nil
	}
	if w.g.N() == 1 {
		return nil, fmt.Errorf("%w: cannot walk on a single-node graph", ErrGraphTooSmall)
	}
	treeRes, err := w.ensureTree(source)
	if err != nil {
		return nil, err
	}
	out.Cost.Add(treeRes)
	out.Breakdown.TreeBuild = treeRes.Rounds

	diam := w.tree.Height
	if diam < 1 {
		diam = 1
	}
	lam := w.prm.lambda(ell, diam, w.g.N())
	out.Lambda = lam

	if 2*lam > ell {
		// Short walks would overshoot ℓ: the naive walk is optimal here
		// (cf. MANY-RANDOM-WALKS, which falls back when λ > ℓ).
		out.Naive = true
		if err := w.naiveTail(out, source, ell); err != nil {
			return nil, err
		}
		return out, w.report(out)
	}

	p1, err := w.ensurePhase1(lam, map[graph.NodeID]int{source: 1})
	if err != nil {
		return nil, err
	}
	out.Cost.Add(p1)
	out.Breakdown.Phase1 = p1.Rounds

	if err := w.stitch(out, source, ell, lam); err != nil {
		return nil, err
	}
	return out, w.report(out)
}

// stitch runs Phase 2: repeatedly sample an unused short walk at the
// current connector and jump to its destination, until fewer than 2λ steps
// remain; then finish naively.
func (w *Walker) stitch(out *WalkResult, source graph.NodeID, ell, lam int) error {
	cur, completed, err := w.stitchSegments(out, source, ell, lam)
	if err != nil {
		return err
	}
	return w.naiveTail(out, cur, ell-completed)
}

// stitchSegments runs the stitching loop of Phase 2 and stops when fewer
// than 2λ steps remain, returning the final connector and completed step
// count. The ≤2λ-step naive tail is left to the caller: SINGLE-RANDOM-WALK
// runs it immediately, MANY-RANDOM-WALKS defers all k tails and runs them
// concurrently (sequential tails of Θ(λ)=Θ(√(kℓD)) steps each would cost
// k√(kℓD) rounds and break Theorem 2.8's bound).
func (w *Walker) stitchSegments(out *WalkResult, source graph.NodeID, ell, lam int) (graph.NodeID, int, error) {
	cur := source
	completed := 0
	for completed <= ell-2*lam {
		pick, cost, err := w.sampleDestination(cur)
		out.Cost.Add(cost)
		out.Breakdown.Stitch += cost.Rounds
		if err != nil {
			return cur, completed, err
		}
		if !pick.found {
			// The connector exhausted its coupons: GET-MORE-WALKS
			// (Algorithm 1, Phase 2 lines 7-9).
			gres, err := w.getMoreWalks(cur, ell, lam)
			out.Cost.Add(gres)
			out.Breakdown.Refill += gres.Rounds
			out.Refills++
			if err != nil {
				return cur, completed, err
			}
			pick, cost, err = w.sampleDestination(cur)
			out.Cost.Add(cost)
			out.Breakdown.Stitch += cost.Rounds
			if err != nil {
				return cur, completed, err
			}
			if !pick.found {
				return cur, completed, fmt.Errorf("core: no coupon at %d even after GET-MORE-WALKS", cur)
			}
		}
		out.Segments = append(out.Segments, Segment{
			Start:      cur,
			End:        pick.dest,
			WalkID:     pick.walkID,
			Length:     int(pick.length),
			FromRefill: pick.refill,
			Batch:      pick.batch,
		})
		completed += int(pick.length)
		cur = pick.dest
	}
	return cur, completed, nil
}

// naiveTail walks the remaining steps by token forwarding and records the
// final segment and destination.
func (w *Walker) naiveTail(out *WalkResult, from graph.NodeID, steps int) error {
	dest, wid, res, err := w.naiveSegment(from, steps)
	out.Cost.Add(res)
	out.Breakdown.Tail += res.Rounds
	if err != nil {
		return err
	}
	out.Segments = append(out.Segments, Segment{
		Start:  from,
		End:    dest,
		WalkID: wid,
		Length: steps,
	})
	out.Destination = dest
	return nil
}

// report notifies the source of the destination over the BFS tree.
func (w *Walker) report(out *WalkResult) error {
	last := out.Segments[len(out.Segments)-1]
	res, err := w.reportToSource(w.tree, out.Destination, last.WalkID)
	out.Cost.Add(res)
	out.Breakdown.Report += res.Rounds
	return err
}

// NaiveWalk runs the paper's O(ℓ)-round baseline: pure token forwarding
// plus the destination report. It shares the Walker's BFS tree so the
// comparison with SINGLE-RANDOM-WALK is infrastructure-for-infrastructure.
func (w *Walker) NaiveWalk(source graph.NodeID, ell int) (*WalkResult, error) {
	if err := w.acquire(); err != nil {
		return nil, err
	}
	defer w.release()
	res, err := w.naiveWalk(source, ell)
	if err != nil {
		return nil, w.faultize(err)
	}
	return res, nil
}

func (w *Walker) naiveWalk(source graph.NodeID, ell int) (*WalkResult, error) {
	if err := w.checkNode(source); err != nil {
		return nil, err
	}
	if ell < 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, ell)
	}
	out := &WalkResult{Source: source, Destination: source, Length: ell, Naive: true}
	if ell == 0 {
		return out, nil
	}
	if w.g.N() == 1 {
		return nil, fmt.Errorf("%w: cannot walk on a single-node graph", ErrGraphTooSmall)
	}
	treeRes, err := w.ensureTree(source)
	if err != nil {
		return nil, err
	}
	out.Cost.Add(treeRes)
	out.Breakdown.TreeBuild = treeRes.Rounds
	if err := w.naiveTail(out, source, ell); err != nil {
		return nil, err
	}
	return out, w.report(out)
}

// ensureTree (re)builds the BFS tree when the source changes; reuse across
// walks from the same source is free. A tree retired by Reset donates its
// slabs to the rebuild, so warm workers pay no tree allocation either.
func (w *Walker) ensureTree(source graph.NodeID) (congest.Result, error) {
	if w.tree != nil && w.tree.Root == source {
		return congest.Result{}, nil
	}
	tree, res, err := congest.BuildBFSTreeReuse(w.net, source, w.spare)
	if err != nil {
		return res, fmt.Errorf("core: %w", err)
	}
	w.spare = nil
	w.tree = tree
	return res, nil
}

// ensurePhase1 provisions short walks of base length lam if the current
// inventory was built for a different λ (or not at all); extra adds walks
// at the upcoming walks' sources (the "+k" of Lemma 2.6). Hop records of
// earlier inventories are kept so previously returned walks remain
// retraceable.
func (w *Walker) ensurePhase1(lam int, extra map[graph.NodeID]int) (congest.Result, error) {
	if w.prepared && w.lambda == lam {
		return congest.Result{}, nil
	}
	w.st.clearCoupons()
	res, err := w.net.Run(&phase1Proto{w: w, lambda: int32(lam), extra: extra})
	if err != nil {
		return res, fmt.Errorf("core: phase 1: %w", err)
	}
	w.prepared = true
	w.lambda = lam
	return res, nil
}

// advanceToken draws walk steps at the executing node until the token
// moves or finishes in place. It returns the move target and the steps
// remaining after the move, or (None, 0) if the token's steps ran out at
// the current node. For the simple walk a step always moves; with
// Params.Metropolis stay steps are consumed locally (no message, no
// round — a token that stays sends nothing).
func (w *Walker) advanceToken(ctx *congest.Ctx, remaining int32) (graph.NodeID, int32) {
	v := ctx.Node()
	for remaining > 0 {
		if !w.prm.Metropolis {
			// graph.Step samples edges weight-proportionally (uniform on
			// unweighted graphs); err is impossible here, v has degree >= 1.
			next, _ := w.g.Step(ctx.RNG(), v)
			return next, remaining - 1
		}
		next, err := w.g.MHStep(ctx.RNG(), v)
		if err != nil || next != v {
			return next, remaining - 1
		}
		remaining-- // stayed: one walk step, no message
	}
	return graph.None, 0
}

func (w *Walker) checkNode(v graph.NodeID) error {
	if v < 0 || int(v) >= w.g.N() {
		return fmt.Errorf("%w: node %d not in [0,%d)", ErrBadNode, v, w.g.N())
	}
	return nil
}
