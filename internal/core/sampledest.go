package core

import (
	"fmt"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// This file implements SAMPLE-DESTINATION (Algorithm 3): the connector v
// samples one of its unused short-walk coupons uniformly at random from
// wherever they are stored in the network, in O(D) rounds, and the chosen
// coupon is deleted so it is never re-stitched.
//
// Algorithm 3 rebuilds a BFS tree rooted at v per invocation; by default we
// reuse the tree rooted at the walk's source and add a request sweep from v
// to the root (same Θ(D) round cost; Params.PerCallBFS restores the
// literal behaviour). The sweeps are:
//
//  1. request: v tells the root it needs a sample (depth(v) rounds),
//  2. announce: the root broadcasts "sampling for owner v" (height rounds),
//  3. sample:  convergecast in which each node offers a uniform local pick
//     of its coupons for v with its count, and every inner node keeps a
//     child's candidate with probability proportional to its count —
//     exactly the weighted tree sampling of Algorithm 3, which is uniform
//     over all coupons (Lemma A.2 / Lemma 2.4),
//  4. result: the root broadcasts the chosen coupon; its holder deletes it
//     (Sweep 3 of Algorithm 3) and the new connector learns it holds the
//     walk token.

// sampleRequest travels from the connector to the root (sweep 1).
type sampleRequest struct {
	owner graph.NodeID
}

func (sampleRequest) Words() int   { return 1 }
func (sampleRequest) Kind() uint16 { return kindSampleRequest }
func (r sampleRequest) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(uint32(r.owner))}
}
func (sampleRequest) Decode(w [congest.PayloadWords]uint64) sampleRequest {
	return sampleRequest{owner: graph.NodeID(uint32(w[0]))}
}

// sampleAnnounce is flooded down the tree (sweep 2).
type sampleAnnounce struct {
	owner graph.NodeID
}

func (sampleAnnounce) Words() int   { return 1 }
func (sampleAnnounce) Kind() uint16 { return kindSampleAnnounce }
func (a sampleAnnounce) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(uint32(a.owner))}
}
func (sampleAnnounce) Decode(w [congest.PayloadWords]uint64) sampleAnnounce {
	return sampleAnnounce{owner: graph.NodeID(uint32(w[0]))}
}

// sampleCand is a weighted candidate in the convergecast (sweep 3).
type sampleCand struct {
	count  int64
	walkID int64
	dest   graph.NodeID
	length int32
	refill bool
	batch  int64
}

func (sampleCand) Words() int   { return 4 }
func (sampleCand) Kind() uint16 { return kindSampleCand }
func (c sampleCand) Encode() [congest.PayloadWords]uint64 {
	// length is a short-walk length (non-negative, far below 2^31), so its
	// top packed bit is free to carry the refill flag.
	w3 := congest.Pack2(int32(c.dest), c.length)
	if c.refill {
		w3 |= 1 << 63
	}
	return [congest.PayloadWords]uint64{uint64(c.count), uint64(c.walkID), uint64(c.batch), w3}
}
func (sampleCand) Decode(w [congest.PayloadWords]uint64) sampleCand {
	dest, length := congest.Unpack2(w[3] &^ (1 << 63))
	return sampleCand{
		count:  int64(w[0]),
		walkID: int64(w[1]),
		batch:  int64(w[2]),
		dest:   graph.NodeID(dest),
		length: length,
		refill: w[3]>>63 != 0,
	}
}

// sampleResult is flooded down the tree (sweep 4). found=false means the
// owner has no unused coupons left and must call GET-MORE-WALKS.
type sampleResult struct {
	owner  graph.NodeID
	walkID int64
	dest   graph.NodeID
	length int32
	found  bool
	refill bool
	batch  int64
}

func (sampleResult) Words() int   { return 4 }
func (sampleResult) Kind() uint16 { return kindSampleResult }
func (r sampleResult) Encode() [congest.PayloadWords]uint64 {
	w3 := uint64(uint32(r.length))
	if r.found {
		w3 |= 1 << 62
	}
	if r.refill {
		w3 |= 1 << 63
	}
	return [congest.PayloadWords]uint64{
		uint64(r.walkID), uint64(r.batch), congest.Pack2(int32(r.owner), int32(r.dest)), w3,
	}
}
func (sampleResult) Decode(w [congest.PayloadWords]uint64) sampleResult {
	owner, dest := congest.Unpack2(w[2])
	return sampleResult{
		walkID: int64(w[0]),
		batch:  int64(w[1]),
		owner:  graph.NodeID(owner),
		dest:   graph.NodeID(dest),
		length: int32(uint32(w[3])),
		found:  w[3]>>62&1 != 0,
		refill: w[3]>>63 != 0,
	}
}

// sampleDestination runs the four sweeps for connector v and returns the
// sampled coupon (if any) plus the exact round cost.
func (w *Walker) sampleDestination(v graph.NodeID) (sampleResult, congest.Result, error) {
	var cost congest.Result

	tree := w.tree
	if w.prm.PerCallBFS {
		// Algorithm 3 sweep 1: fresh BFS tree rooted at the connector.
		t, res, err := congest.BuildBFSTree(w.net, v)
		cost.Add(res)
		if err != nil {
			return sampleResult{}, cost, fmt.Errorf("sample-destination: %w", err)
		}
		tree = t
	} else {
		// Request sweep: v -> root along parent pointers (depth(v) rounds).
		_, res, err := congest.Upcast(w.net, tree, func(u graph.NodeID) []sampleRequest {
			if u == v {
				return []sampleRequest{{owner: v}}
			}
			return nil
		})
		cost.Add(res)
		if err != nil {
			return sampleResult{}, cost, fmt.Errorf("sample-destination request: %w", err)
		}
	}

	// Announce sweep: every node learns whose coupons are being sampled.
	res, err := congest.Broadcast(w.net, tree, sampleAnnounce{owner: v}, nil)
	cost.Add(res)
	if err != nil {
		return sampleResult{}, cost, fmt.Errorf("sample-destination announce: %w", err)
	}

	// Sample sweep: weighted reservoir over the tree.
	pick, res, err := congest.Convergecast(w.net, tree,
		func(u graph.NodeID) sampleCand {
			local := w.st.localCoupons(u, v)
			if len(local) == 0 {
				return sampleCand{}
			}
			c := local[w.net.NodeRNG(u).Intn(len(local))]
			return sampleCand{
				count:  int64(len(local)),
				walkID: c.walkID,
				dest:   u,
				length: c.length,
				refill: c.refill,
				batch:  c.batch,
			}
		},
		func(u graph.NodeID, acc, child sampleCand) sampleCand {
			total := acc.count + child.count
			if total == 0 {
				return sampleCand{}
			}
			keep := acc
			if int64(w.net.NodeRNG(u).Uint64n(uint64(total))) < child.count {
				keep = child
			}
			keep.count = total
			return keep
		},
	)
	cost.Add(res)
	if err != nil {
		return sampleResult{}, cost, fmt.Errorf("sample-destination convergecast: %w", err)
	}

	out := sampleResult{
		owner:  v,
		walkID: pick.walkID,
		dest:   pick.dest,
		length: pick.length,
		found:  pick.count > 0,
		refill: pick.refill,
		batch:  pick.batch,
	}
	// Result sweep: the coupon holder deletes it; v (and the new connector)
	// learn the outcome.
	res, err = congest.Broadcast(w.net, tree, out, func(u graph.NodeID, r sampleResult) {
		if r.found && u == r.dest {
			w.st.takeCoupon(u, r.owner, r.walkID)
		}
	})
	cost.Add(res)
	if err != nil {
		return sampleResult{}, cost, fmt.Errorf("sample-destination result: %w", err)
	}
	return out, cost, nil
}
