package core

// Payload kind tags for this package's protocols. Kinds only need to be
// distinct within a single engine run, but keeping one flat namespace per
// package makes collisions impossible as protocols evolve.
const (
	kindWalkToken uint16 = iota + 1
	kindNaiveToken
	kindDestReport
	kindRegenToken
	kindSampleRequest
	kindSampleAnnounce
	kindSampleCand
	kindSampleResult
	kindGMWMsg
	kindGMWQuery
	kindGMWReply
	kindGMWClaim
)
