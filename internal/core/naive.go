package core

import (
	"fmt"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// naiveToken is the classic token walk: "The walk of length ℓ is performed
// by sending a token for ℓ steps, picking a random neighbor with each
// step" (Section 1.2). It is both the paper's baseline and the final
// ≤ 2λ-step tail of SINGLE-RANDOM-WALK (Algorithm 1, Phase 2 line 14).
type naiveToken struct {
	walkID    int64
	remaining int32
	total     int32
}

func (naiveToken) Words() int   { return 3 }
func (naiveToken) Kind() uint16 { return kindNaiveToken }
func (t naiveToken) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(t.walkID), congest.Pack2(t.remaining, t.total)}
}
func (naiveToken) Decode(w [congest.PayloadWords]uint64) naiveToken {
	rem, total := congest.Unpack2(w[1])
	return naiveToken{walkID: int64(w[0]), remaining: rem, total: total}
}

// destReport carries the walk outcome to the source over the BFS tree.
// The destination includes its own degree so the receiver can compute the
// stationary mass π(dest) = deg/2m locally (used by the mixing-time
// estimator, Section 4.2).
type destReport struct {
	walkID int64
	dest   graph.NodeID
	deg    int32
}

func (destReport) Words() int   { return 3 }
func (destReport) Kind() uint16 { return kindDestReport }
func (r destReport) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(r.walkID), congest.Pack2(int32(r.dest), r.deg)}
}
func (destReport) Decode(w [congest.PayloadWords]uint64) destReport {
	dest, deg := congest.Unpack2(w[1])
	return destReport{walkID: int64(w[0]), dest: graph.NodeID(dest), deg: deg}
}

type naiveProto struct {
	w      *Walker
	start  graph.NodeID
	walkID int64
	steps  int32

	dest    graph.NodeID
	arrived bool
}

func (p *naiveProto) Init(ctx *congest.Ctx) {
	if ctx.Node() != p.start {
		return
	}
	if p.steps == 0 {
		p.dest = p.start
		p.arrived = true
		return
	}
	p.forward(ctx, naiveToken{walkID: p.walkID, remaining: p.steps, total: p.steps})
}

func (p *naiveProto) Step(ctx *congest.Ctx) {
	for _, m := range ctx.Inbox() {
		if m.Kind != kindNaiveToken {
			continue
		}
		t := congest.As[naiveToken](m)
		if t.walkID != p.walkID {
			continue
		}
		p.forward(ctx, t)
	}
}

func (p *naiveProto) forward(ctx *congest.Ctx, t naiveToken) {
	v := ctx.Node()
	next, rem := p.w.advanceToken(ctx, t.remaining)
	if next == graph.None {
		p.dest = v
		p.arrived = true
		return
	}
	p.w.st.recordHop(v, t.walkID, next)
	t.remaining = rem
	congest.Send(ctx, next, t)
}

// naiveSegment walks `steps` hops from start by token forwarding, recording
// hops for later regeneration, and returns the destination plus cost.
func (w *Walker) naiveSegment(start graph.NodeID, steps int) (graph.NodeID, int64, congest.Result, error) {
	p := &naiveProto{
		w:      w,
		start:  start,
		walkID: w.st.newWalkID(start),
		steps:  int32(steps),
	}
	res, err := w.net.Run(p)
	if err != nil {
		return graph.None, 0, res, err
	}
	if !p.arrived {
		return graph.None, 0, res, fmt.Errorf("core: naive walk of %d steps from %d did not complete", steps, start)
	}
	return p.dest, p.walkID, res, nil
}

// reportToSource sends (walkID, dest) from the destination to the tree
// root over tree edges (depth(dest) rounds). With the tree rooted at the
// walk's source this completes 1-RW-SoD: the source outputs the
// destination's ID.
func (w *Walker) reportToSource(tree *congest.Tree, dest graph.NodeID, walkID int64) (congest.Result, error) {
	reports, res, err := congest.Upcast(w.net, tree, func(u graph.NodeID) []destReport {
		if u == dest {
			return []destReport{{walkID: walkID, dest: dest, deg: int32(w.g.Degree(dest))}}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if len(reports) != 1 || reports[0].dest != dest {
		return res, fmt.Errorf("core: destination report lost (got %d reports)", len(reports))
	}
	return res, nil
}
