package core

import (
	"testing"

	"distwalk/internal/dist"
	"distwalk/internal/graph"
	"distwalk/internal/stats"
)

func TestGetMoreWalksMintsCoupons(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 3, DefaultParams())
	const (
		owner  = graph.NodeID(5)
		ell    = 100
		lambda = 10
	)
	res, err := w.getMoreWalks(owner, ell, lambda)
	if err != nil {
		t.Fatal(err)
	}
	total := w.st.couponTotal(owner)
	if total != ell/lambda {
		t.Fatalf("minted %d coupons, want %d", total, ell/lambda)
	}
	if res.Rounds < lambda || res.Rounds > 4*lambda {
		t.Fatalf("GET-MORE-WALKS took %d rounds, want ≈ 2λ = %d", res.Rounds, 2*lambda)
	}
	for v := range w.st.coupons {
		for _, c := range w.st.localCoupons(graph.NodeID(v), owner) {
			if !c.refill {
				t.Fatal("refill coupon not marked")
			}
			if int(c.length) < lambda || int(c.length) > 2*lambda-1 {
				t.Fatalf("coupon length %d outside [λ, 2λ-1] = [%d, %d]", c.length, lambda, 2*lambda-1)
			}
		}
	}
}

func TestGetMoreWalksLengthsUniform(t *testing.T) {
	// Reservoir sampling (Algorithm 2 + Lemma 2.4): lengths must be
	// uniform on [λ, 2λ-1]. Mint a large batch and chi-square the lengths.
	g, err := graph.Complete(8)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 7, DefaultParams())
	const (
		owner  = graph.NodeID(0)
		lambda = 8
		batch  = 8000 // ell/lambda tokens
	)
	if _, err := w.getMoreWalks(owner, batch*lambda, lambda); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, lambda) // index length-λ
	for v := range w.st.coupons {
		for _, c := range w.st.localCoupons(graph.NodeID(v), owner) {
			counts[int(c.length)-lambda]++
		}
	}
	totalCoupons := 0
	for _, c := range counts {
		totalCoupons += c
	}
	if totalCoupons != batch {
		t.Fatalf("minted %d coupons, want %d", totalCoupons, batch)
	}
	p, err := stats.UniformityPValue(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("refill lengths not uniform: %v (p=%v)", counts, p)
	}
}

func TestGetMoreWalksMinimumBatch(t *testing.T) {
	g, err := graph.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 9, DefaultParams())
	// ell < lambda still mints at least one walk.
	if _, err := w.getMoreWalks(0, 3, 10); err != nil {
		t.Fatal(err)
	}
	if total := w.st.couponTotal(0); total != 1 {
		t.Fatalf("minted %d coupons, want 1", total)
	}
}

func TestGetMoreWalksEndpointDistribution(t *testing.T) {
	// A refill walk of uniform length in [λ,2λ-1] from v must land like a
	// true random walk of that length. Marginalize: compare empirical
	// endpoints against the average of the exact distributions over
	// lengths λ..2λ-1.
	g, err := graph.Candy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		owner  = graph.NodeID(5)
		lambda = 4
		batch  = 6000
	)
	w := newWalker(t, g, 11, DefaultParams())
	if _, err := w.getMoreWalks(owner, batch*lambda, lambda); err != nil {
		t.Fatal(err)
	}
	exact := make([]float64, g.N())
	for l := lambda; l < 2*lambda; l++ {
		d, err := dist.WalkDist(g, owner, l)
		if err != nil {
			t.Fatal(err)
		}
		for v := range exact {
			exact[v] += d[v] / float64(lambda)
		}
	}
	counts := make([]int, g.N())
	for v := range w.st.coupons {
		counts[v] = len(w.st.localCoupons(graph.NodeID(v), owner))
	}
	var obs []int
	var exp []float64
	for v := range counts {
		if exact[v] < 1e-12 {
			if counts[v] > 0 {
				t.Fatalf("impossible refill endpoint %d", v)
			}
			continue
		}
		obs = append(obs, counts[v])
		exp = append(exp, exact[v])
	}
	sum := 0.0
	for _, e := range exp {
		sum += e
	}
	for i := range exp {
		exp[i] /= sum
	}
	stat, df, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := stats.ChiSquarePValue(stat, df)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("refill endpoints off: obs=%v exp=%v p=%v", obs, exp, p)
	}
}
