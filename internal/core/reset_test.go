package core

import (
	"reflect"
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// TestWalkerResetMatchesFresh pins the warm-pooling contract at the walker
// level: Reset + Reseed must reproduce a fresh walker's execution bit for
// bit — destinations, segment composition, and the full simulated cost —
// across every algorithm family, even after the walker served a completely
// different workload first.
func TestWalkerResetMatchesFresh(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	run := func(w *Walker) []*WalkResult {
		t.Helper()
		var out []*WalkResult
		single, err := w.SingleRandomWalk(3, 512)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, single)
		many, err := w.ManyRandomWalks([]graph.NodeID{0, 5, 9}, 256)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, many.Walks...)
		naive, err := w.NaiveWalk(7, 200)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, naive)
		tr, err := w.Regenerate(single)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.FirstVisitTime, mustRegen(t, w, single).FirstVisitTime) {
			t.Fatal("regeneration is not deterministic within one walker")
		}
		return out
	}

	freshNet := congest.NewNetwork(g, seed)
	fresh, err := NewWalkerOn(freshNet, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh)

	warmNet := congest.NewNetwork(g, 12345)
	warm, err := NewWalkerOn(warmNet, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the warm walker with an unrelated workload (different seed,
	// different sources and lengths, Metropolis params).
	if _, err := warm.ManyRandomWalks([]graph.NodeID{1, 1, 2, 3}, 300); err != nil {
		t.Fatal(err)
	}
	mh := DefaultParams()
	mh.Metropolis = true
	if err := warm.Reset(mh); err != nil {
		t.Fatal(err)
	}
	warmNet.Reseed(777)
	if _, err := warm.SingleRandomWalk(0, 128); err != nil {
		t.Fatal(err)
	}
	// Now reset onto the reference request.
	if err := warm.Reset(DefaultParams()); err != nil {
		t.Fatal(err)
	}
	warmNet.Reseed(seed)
	got := run(warm)

	if len(got) != len(want) {
		t.Fatalf("warm run produced %d walks, fresh %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("walk %d diverged after Reset:\nwarm  %+v\nfresh %+v", i, got[i], want[i])
		}
	}
}

func mustRegen(t *testing.T, w *Walker, res *WalkResult) *Trace {
	t.Helper()
	tr, err := w.Regenerate(res)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWalkerResetValidatesParams: Reset is the per-request param switch of
// the service layer, so it must reject unusable parameterizations exactly
// like the constructors do.
func TestWalkerResetValidatesParams(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 1, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(Params{}); err == nil {
		t.Fatal("Reset accepted the zero Params")
	}
	// The failed Reset must not have released a broken state: the walker
	// still runs with its previous parameters.
	if _, err := w.SingleRandomWalk(0, 64); err != nil {
		t.Fatalf("walker unusable after rejected Reset: %v", err)
	}
}
