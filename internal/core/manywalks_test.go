package core

import (
	"testing"

	"distwalk/internal/dist"
	"distwalk/internal/graph"
	"distwalk/internal/stats"
)

func TestManyRandomWalksBasic(t *testing.T) {
	g, err := graph.Torus(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 3, DefaultParams())
	sources := []graph.NodeID{0, 5, 11, 0}
	res, err := w.ManyRandomWalks(sources, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Destinations) != len(sources) || len(res.Walks) != len(sources) {
		t.Fatalf("result sizes: %d dests, %d walks", len(res.Destinations), len(res.Walks))
	}
	for i, wres := range res.Walks {
		if wres.Source != sources[i] {
			t.Fatalf("walk %d source %d, want %d", i, wres.Source, sources[i])
		}
		total := 0
		for _, s := range wres.Segments {
			total += s.Length
		}
		if total != 500 {
			t.Fatalf("walk %d sums to %d", i, total)
		}
		if wres.Destination != res.Destinations[i] {
			t.Fatal("destination mismatch between Walks and Destinations")
		}
	}
}

func TestManyRandomWalksValidation(t *testing.T) {
	g, _ := graph.Torus(3, 3)
	w := newWalker(t, g, 1, DefaultParams())
	if _, err := w.ManyRandomWalks(nil, 10); err == nil {
		t.Fatal("empty sources accepted")
	}
	if _, err := w.ManyRandomWalks([]graph.NodeID{77}, 10); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := w.ManyRandomWalks([]graph.NodeID{0}, -2); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestManyRandomWalksZeroLength(t *testing.T) {
	g, _ := graph.Torus(3, 3)
	w := newWalker(t, g, 1, DefaultParams())
	res, err := w.ManyRandomWalks([]graph.NodeID{2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destinations[0] != 2 || res.Destinations[1] != 4 {
		t.Fatalf("zero-length walks moved: %v", res.Destinations)
	}
}

func TestManyRandomWalksNaiveFallback(t *testing.T) {
	// Large k with tiny ℓ forces λ > ℓ: the k+ℓ regime.
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 7, DefaultParams())
	sources := make([]graph.NodeID, 40)
	for i := range sources {
		sources[i] = graph.NodeID(i % g.N())
	}
	res, err := w.ManyRandomWalks(sources, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NaiveFallback {
		t.Fatal("expected naive fallback for k=40, ℓ=5")
	}
	// Õ(k+ℓ): must be far below k·ℓ (sequential naive).
	if res.Cost.Rounds > 4*(len(sources)+5)+4*5 {
		t.Fatalf("naive-many cost %d rounds, want O(k+ℓ)", res.Cost.Rounds)
	}
	for i, d := range res.Destinations {
		if d < 0 || int(d) >= g.N() {
			t.Fatalf("walk %d has bad destination %d", i, d)
		}
	}
}

func TestManyRandomWalksEndpointDistribution(t *testing.T) {
	// k walks from the same source must each follow the exact ℓ-step
	// distribution.
	g, err := graph.Candy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		source = graph.NodeID(5)
		ell    = 20
		k      = 20
		trials = 150
	)
	exact, err := dist.WalkDist(g, source, ell)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, g.N())
	for trial := 0; trial < trials; trial++ {
		w := newWalker(t, g, uint64(1000+trial), Params{Lambda: 4, LambdaC: 1, Eta: 1})
		sources := make([]graph.NodeID, k)
		for i := range sources {
			sources[i] = source
		}
		res, err := w.ManyRandomWalks(sources, ell)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Destinations {
			counts[d]++
		}
	}
	var obs []int
	var exp []float64
	for v, p := range exact {
		if p < 1e-12 {
			continue
		}
		obs = append(obs, counts[v])
		exp = append(exp, p)
	}
	sum := 0.0
	for _, e := range exp {
		sum += e
	}
	for i := range exp {
		exp[i] /= sum
	}
	stat, df, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := stats.ChiSquarePValue(stat, df)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("many-walk endpoints off: p=%v obs=%v", p, obs)
	}
}

func TestManyWalksScaleSublinearlyInK(t *testing.T) {
	// Theorem 2.8: √(kℓD)+k grows much slower than k·√(ℓD).
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const ell = 3000
	run := func(k int) int {
		w := newWalker(t, g, 99, DefaultParams())
		sources := make([]graph.NodeID, k)
		res, err := w.ManyRandomWalks(sources, ell)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Rounds
	}
	r1 := run(1)
	r16 := run(16)
	if r16 > 10*r1 {
		t.Fatalf("16 walks cost %d rounds vs %d for one — not sublinear in k", r16, r1)
	}
}

func TestManyWalksDeterministic(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []graph.NodeID {
		w := newWalker(t, g, 1234, DefaultParams())
		res, err := w.ManyRandomWalks([]graph.NodeID{1, 2, 3}, 300)
		if err != nil {
			t.Fatal(err)
		}
		return res.Destinations
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}
