package core

import (
	"testing"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

func TestSplitCost(t *testing.T) {
	c := congest.Result{
		Rounds: 10, Messages: 103, Words: 205, MaxQueue: 7,
		Faults: congest.FaultStats{Dropped: 9, LinkDropped: 6, Delayed: 5, Crashed: 2},
	}
	if got := SplitCost(c, 1); got != c {
		t.Fatalf("k=1 must be identity, got %+v", got)
	}
	got := SplitCost(c, 4)
	want := congest.Result{
		Rounds: 2, Messages: 25, Words: 51, MaxQueue: 7,
		Faults: congest.FaultStats{Dropped: 2, LinkDropped: 1, Delayed: 1, Crashed: 2},
	}
	if got != want {
		t.Fatalf("SplitCost = %+v, want %+v", got, want)
	}
	if got.Rounds*4 > c.Rounds || got.Messages*4 > c.Messages {
		t.Fatal("shares sum above the total")
	}
}

func TestManyResultCostDemux(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(g, 42, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.ManyRandomWalks([]graph.NodeID{0, 9, 18, 27}, 400)
	if err != nil {
		t.Fatal(err)
	}
	am := m.AmortizedCost()
	if am.Rounds <= 0 || am.Rounds > m.Cost.Rounds {
		t.Fatalf("amortized rounds %d outside (0, total %d]", am.Rounds, m.Cost.Rounds)
	}
	shared := m.SharedCost()
	if shared.Rounds < 0 || shared.Messages < 0 || shared.Words < 0 {
		t.Fatalf("shared cost went negative: %+v", shared)
	}
	// total = shared + Σ per-walk, exactly.
	sum := shared
	for _, wr := range m.Walks {
		sum.Rounds += wr.Cost.Rounds
		sum.Messages += wr.Cost.Messages
		sum.Words += wr.Cost.Words
	}
	if sum.Rounds != m.Cost.Rounds || sum.Messages != m.Cost.Messages || sum.Words != m.Cost.Words {
		t.Fatalf("shared + per-walk = %+v, total %+v", sum, m.Cost)
	}
}
