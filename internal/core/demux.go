package core

import "distwalk/internal/congest"

// Demultiplexing hooks for multi-source results: a MANY-RANDOM-WALKS
// batch computes k walks in one shared execution, and the batching layer
// (internal/sched) hands each submitter its own walk plus a fair share of
// the batch's cost. These helpers define that attribution in one place.

// SplitCost returns c divided evenly across k walks — the amortized
// per-walk share of a shared execution. Rounds, messages, words and the
// summable fault counters divide (integer floor, so shares are
// deterministic and never sum above the total); MaxQueue and
// Faults.Crashed are high-water marks, not sums, and carry over as is.
func SplitCost(c congest.Result, k int) congest.Result {
	if k <= 1 {
		return c
	}
	return congest.Result{
		Rounds:   c.Rounds / k,
		Messages: c.Messages / int64(k),
		Words:    c.Words / int64(k),
		MaxQueue: c.MaxQueue,
		Faults: congest.FaultStats{
			Dropped:     c.Faults.Dropped / int64(k),
			LinkDropped: c.Faults.LinkDropped / int64(k),
			Delayed:     c.Faults.Delayed / int64(k),
			Crashed:     c.Faults.Crashed,
		},
	}
}

// AmortizedCost returns the batch's total cost split evenly across its
// walks: the per-walk price of running them together, the quantity
// Theorem 2.8 bounds by Õ(min(√(kℓD)+k, k+ℓ))/k.
func (m *ManyResult) AmortizedCost() congest.Result {
	if len(m.Walks) == 0 {
		return m.Cost
	}
	return SplitCost(m.Cost, len(m.Walks))
}

// SharedCost returns the part of the batch's cost attributed to no single
// walk: the BFS tree, Phase 1 short-walk preparation, the concurrent
// tails and the batched destination notifications. Per-walk stitching
// costs live on Walks[i].Cost; total = shared + Σ per-walk.
func (m *ManyResult) SharedCost() congest.Result {
	shared := m.Cost
	for _, w := range m.Walks {
		shared.Rounds -= w.Cost.Rounds
		shared.Messages -= w.Cost.Messages
		shared.Words -= w.Cost.Words
		shared.Faults.Dropped -= w.Cost.Faults.Dropped
		shared.Faults.LinkDropped -= w.Cost.Faults.LinkDropped
		shared.Faults.Delayed -= w.Cost.Faults.Delayed
	}
	return shared
}
