package core

import (
	"math"
	"testing"

	"distwalk/internal/dist"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

func mhParams(lambda int) Params {
	return Params{Lambda: lambda, LambdaC: 1, Eta: 1, Metropolis: true}
}

func TestMHStepStationaryIsUniform(t *testing.T) {
	// The MH chain with uniform target must have the uniform distribution
	// as a fixed point even on very irregular graphs.
	g, err := graph.Star(8)
	if err != nil {
		t.Fatal(err)
	}
	u := dist.Uniform(g.N())
	next, err := dist.MHStep(g, u)
	if err != nil {
		t.Fatal(err)
	}
	if d := u.L1(next); d > 1e-12 {
		t.Fatalf("uniform moved by %v under MH step", d)
	}
}

func TestMHWalkDistMassPreserved(t *testing.T) {
	g, err := graph.Candy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := dist.MHWalkDist(g, 0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Sum()-1) > 1e-9 {
		t.Fatalf("mass = %v", p.Sum())
	}
	if _, err := dist.MHWalkDist(g, 0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestMHNaiveWalkDistribution(t *testing.T) {
	// The distributed naive MH walk must match the exact MH distribution.
	g, err := graph.Candy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		source  = graph.NodeID(0)
		ell     = 6
		samples = 3000
	)
	exact, err := dist.MHWalkDist(g, source, ell)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams()
	prm.Metropolis = true
	w := newWalker(t, g, 41, prm)
	counts := make([]int, g.N())
	for i := 0; i < samples; i++ {
		res, err := w.NaiveWalk(source, ell)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Destination]++
	}
	checkDistribution(t, counts, exact)
}

func TestMHStitchedWalkDistribution(t *testing.T) {
	// The full stitched machinery (Phase 1 + SAMPLE-DESTINATION + refills
	// + tail) with Metropolis steps must sample the exact MH ℓ-step
	// distribution — the Las Vegas property carries over.
	g, err := graph.Candy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		source  = graph.NodeID(5)
		ell     = 30
		samples = 3000
	)
	exact, err := dist.MHWalkDist(g, source, ell)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 43, mhParams(3))
	counts := make([]int, g.N())
	stitched := 0
	for i := 0; i < samples; i++ {
		res, err := w.SingleRandomWalk(source, ell)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Naive {
			stitched++
		}
		counts[res.Destination]++
	}
	if stitched == 0 {
		t.Fatal("no walk engaged stitching")
	}
	checkDistribution(t, counts, exact)
}

func TestMHWalkConvergesToUniform(t *testing.T) {
	// On the star — where the simple walk concentrates half its mass on
	// the hub — the MH walk's endpoints must become uniform.
	g, err := graph.Star(9)
	if err != nil {
		t.Fatal(err)
	}
	const (
		ell     = 60
		samples = 4500
	)
	prm := DefaultParams()
	prm.Metropolis = true
	w := newWalker(t, g, 47, prm)
	counts := make([]int, g.N())
	for i := 0; i < samples; i++ {
		res, err := w.SingleRandomWalk(1, ell)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Destination]++
	}
	// Compare against exact (which is ~uniform at this ℓ).
	exact, err := dist.MHWalkDist(g, 1, ell)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, counts, exact)
	// And confirm the exact distribution itself is near uniform.
	if d := exact.TV(dist.Uniform(g.N())); d > 0.02 {
		t.Fatalf("MH walk not near uniform at ℓ=%d: TV=%v", ell, d)
	}
}

func TestMHManyWalks(t *testing.T) {
	g, err := graph.Torus(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams()
	prm.Metropolis = true
	w := newWalker(t, g, 51, prm)
	res, err := w.ManyRandomWalks([]graph.NodeID{0, 3, 7}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Destinations {
		if d < 0 || int(d) >= g.N() {
			t.Fatalf("walk %d bad destination %d", i, d)
		}
	}
}

func TestMHStaysAreFree(t *testing.T) {
	// On a star, the MH walk from the hub stays put with high probability
	// each step (acceptance 1/(n-1)); since stays send no messages, a long
	// walk must cost far fewer rounds than its length.
	g, err := graph.Star(32)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams()
	prm.Metropolis = true
	w := newWalker(t, g, 53, prm)
	const ell = 4000
	res, err := w.NaiveWalk(0, ell)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Rounds > ell/2 {
		t.Fatalf("MH walk with mostly-stay steps cost %d rounds for ℓ=%d", res.Cost.Rounds, ell)
	}
}

func TestMHRegenerateUnsupported(t *testing.T) {
	g, err := graph.Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	prm := DefaultParams()
	prm.Metropolis = true
	w := newWalker(t, g, 57, prm)
	res, err := w.SingleRandomWalk(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Regenerate(res); err == nil {
		t.Fatal("MH regeneration should be rejected")
	}
}

func TestMHDeterministic(t *testing.T) {
	g, err := graph.Candy(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() graph.NodeID {
		w := newWalker(t, g, 61, mhParams(4))
		res, err := w.SingleRandomWalk(0, 100)
		if err != nil {
			t.Fatal(err)
		}
		return res.Destination
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("MH walks diverged: %d vs %d", a, b)
	}
}

func TestGraphMHStepAcceptance(t *testing.T) {
	// Uniform-target MH on a star: the hub (W=15) always accepts a move
	// to a leaf (min(1, 15/1) = 1); a leaf accepts its only proposal (the
	// hub) with probability min(1, 1/15) and otherwise stays — that
	// stickiness is exactly what flattens the stationary distribution.
	g, err := graph.Star(16)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12345)
	for i := 0; i < 200; i++ {
		next, err := g.MHStep(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if next == 0 {
			t.Fatal("hub stayed despite acceptance 1")
		}
	}
	stays := 0
	const draws = 3000
	for i := 0; i < draws; i++ {
		next, err := g.MHStep(r, 3)
		if err != nil {
			t.Fatal(err)
		}
		switch next {
		case 3:
			stays++
		case 0:
			// moved to the hub, fine
		default:
			t.Fatalf("leaf stepped to non-neighbor %d", next)
		}
	}
	frac := float64(stays) / draws
	if math.Abs(frac-14.0/15) > 0.03 {
		t.Fatalf("leaf stay fraction %v, want ≈ %v", frac, 14.0/15)
	}
}
