package core

import (
	"sort"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// gmwMsg is the count-aggregated token bundle of GET-MORE-WALKS
// (Algorithm 2): "it sends only the source ID and a count to each
// neighbor" — one O(log n)-bit message per edge per step regardless of how
// many of the batch's tokens cross it, which is what makes Lemma 2.2's
// O(λ) bound congestion-free. steps is the number of hops the bundled
// tokens have completed so far.
type gmwMsg struct {
	batch int64 // encodes the owner (walkOwner) and the refill instance
	count int32
	steps int32
}

func (gmwMsg) Words() int   { return 3 }
func (gmwMsg) Kind() uint16 { return kindGMWMsg }
func (t gmwMsg) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(t.batch), congest.Pack2(t.count, t.steps)}
}
func (gmwMsg) Decode(w [congest.PayloadWords]uint64) gmwMsg {
	count, steps := congest.Unpack2(w[1])
	return gmwMsg{batch: int64(w[0]), count: count, steps: steps}
}

// gmwProto refills the exhausted connector v with ⌊ℓ/λ⌋ fresh short walks.
// Tokens walk λ fixed steps and are then extended by reservoir sampling:
// at extension step i (i = steps−λ), each token stops independently with
// probability 1/(λ−i), which makes the final length uniform on [λ, 2λ−1]
// (Lemma 2.4) without ever sending per-token lengths.
type gmwProto struct {
	w      *Walker
	owner  graph.NodeID
	batch  int64
	count  int
	lambda int32
}

func (p *gmwProto) Init(ctx *congest.Ctx) {
	if ctx.Node() != p.owner || p.count == 0 {
		return
	}
	p.processTokens(ctx, int32(p.count), 0)
}

func (p *gmwProto) Step(ctx *congest.Ctx) {
	for _, m := range ctx.Inbox() {
		if m.Kind != kindGMWMsg {
			continue
		}
		t := congest.As[gmwMsg](m)
		if t.batch != p.batch {
			continue
		}
		p.processTokens(ctx, t.count, t.steps)
	}
}

// gmwOut groups outgoing tokens by (neighbor, arrival step): with the
// simple walk every token of a bundle leaves at the same step, so this is
// one message per neighbor exactly as Algorithm 2 requires; Metropolis
// stays can spread a bundle over a few arrival steps, still aggregated.
type gmwOut struct {
	nbr   graph.NodeID
	steps int32
}

// processTokens walks each of `count` tokens (having completed `steps`
// hops and currently at the executing node) forward: reservoir stop
// checks at every step ≥ λ, stay steps consumed locally, moves
// aggregated into per-(neighbor, step) messages.
func (p *gmwProto) processTokens(ctx *congest.Ctx, count, steps int32) {
	v := ctx.Node()
	out := make(map[gmwOut]int32)
	for j := int32(0); j < count; j++ {
		p.walkOne(ctx, steps, out)
	}
	// Deterministic send order: by neighbor, then arrival step.
	keys := make([]gmwOut, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].nbr != keys[j].nbr {
			return keys[i].nbr < keys[j].nbr
		}
		return keys[i].steps < keys[j].steps
	})
	for _, key := range keys {
		c := out[key]
		p.w.st.recordGMWSend(v, gmwKey{batch: p.batch, step: key.steps, nbr: key.nbr}, c)
		congest.Send(ctx, key.nbr, gmwMsg{batch: p.batch, count: c, steps: key.steps})
	}
}

// walkOne advances a single token: stop with probability 1/(λ−i) at each
// step s = λ+i (uniform length on [λ, 2λ−1], Lemma 2.4), otherwise take a
// walk step; Metropolis stays advance s without leaving the node.
func (p *gmwProto) walkOne(ctx *congest.Ctx, s int32, out map[gmwOut]int32) {
	v := ctx.Node()
	for {
		if s >= p.lambda {
			if ctx.RNG().Intn(int(2*p.lambda-s)) == 0 {
				p.w.st.addCoupon(v, coupon{
					owner:  p.owner,
					walkID: p.w.st.newWalkID(v),
					length: s,
					refill: true,
					batch:  p.batch,
				})
				return
			}
		}
		if p.w.prm.Metropolis {
			next, err := p.w.g.MHStep(ctx.RNG(), v)
			if err == nil && next == v {
				s++ // stayed: walk step consumed locally
				continue
			}
			if err == nil {
				out[gmwOut{nbr: next, steps: s + 1}]++
			}
			return
		}
		if next, err := p.w.g.Step(ctx.RNG(), v); err == nil {
			out[gmwOut{nbr: next, steps: s + 1}]++
		}
		return
	}
}

// getMoreWalks runs GET-MORE-WALKS(v): Θ(ℓ/λ) new walks owned by v.
func (w *Walker) getMoreWalks(v graph.NodeID, ell, lambda int) (congest.Result, error) {
	count := ell / lambda
	if count < 1 {
		count = 1
	}
	p := &gmwProto{
		w:      w,
		owner:  v,
		batch:  w.st.newWalkID(v),
		count:  count,
		lambda: int32(lambda),
	}
	return w.net.Run(p)
}
