package core

import (
	"slices"

	"distwalk/internal/congest"
	"distwalk/internal/graph"
)

// gmwMsg is the count-aggregated token bundle of GET-MORE-WALKS
// (Algorithm 2): "it sends only the source ID and a count to each
// neighbor" — one O(log n)-bit message per edge per step regardless of how
// many of the batch's tokens cross it, which is what makes Lemma 2.2's
// O(λ) bound congestion-free. steps is the number of hops the bundled
// tokens have completed so far.
type gmwMsg struct {
	batch int64 // encodes the owner (walkOwner) and the refill instance
	count int32
	steps int32
}

func (gmwMsg) Words() int   { return 3 }
func (gmwMsg) Kind() uint16 { return kindGMWMsg }
func (t gmwMsg) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{uint64(t.batch), congest.Pack2(t.count, t.steps)}
}
func (gmwMsg) Decode(w [congest.PayloadWords]uint64) gmwMsg {
	count, steps := congest.Unpack2(w[1])
	return gmwMsg{batch: int64(w[0]), count: count, steps: steps}
}

// gmwProto refills the exhausted connector v with ⌊ℓ/λ⌋ fresh short walks.
// Tokens walk λ fixed steps and are then extended by reservoir sampling:
// at extension step i (i = steps−λ), each token stops independently with
// probability 1/(λ−i), which makes the final length uniform on [λ, 2λ−1]
// (Lemma 2.4) without ever sending per-token lengths.
type gmwProto struct {
	w      *Walker
	owner  graph.NodeID
	batch  int64
	count  int
	lambda int32
}

func (p *gmwProto) Init(ctx *congest.Ctx) {
	if ctx.Node() != p.owner || p.count == 0 {
		return
	}
	p.processTokens(ctx, int32(p.count), 0)
}

func (p *gmwProto) Step(ctx *congest.Ctx) {
	for _, m := range ctx.Inbox() {
		if m.Kind != kindGMWMsg {
			continue
		}
		t := congest.As[gmwMsg](m)
		if t.batch != p.batch {
			continue
		}
		p.processTokens(ctx, t.count, t.steps)
	}
}

// gmwFlow groups outgoing tokens by (neighbor, arrival step): with the
// simple walk every token of a bundle leaves at the same step, so this is
// one message per neighbor exactly as Algorithm 2 requires; Metropolis
// stays can spread a bundle over a few arrival steps, still aggregated.
// Moves collect one entry each in the walker's reusable buffer and are
// folded after the send-order sort brings equal pairs together — no
// throwaway map, no per-token scans.
type gmwFlow struct {
	nbr   graph.NodeID
	steps int32
	count int32
}

// processTokens walks each of `count` tokens (having completed `steps`
// hops and currently at the executing node) forward: reservoir stop
// checks at every step ≥ λ, stay steps consumed locally, moves
// aggregated into per-(neighbor, step) messages.
func (p *gmwProto) processTokens(ctx *congest.Ctx, count, steps int32) {
	v := ctx.Node()
	out := p.w.gmwOut[v][:0]
	for j := int32(0); j < count; j++ {
		out = p.walkOne(ctx, steps, out)
	}
	// Deterministic send order: by neighbor, then arrival step (the same
	// order the map-based aggregation sorted its keys into). walkOne
	// appends one entry per move, so after the sort equal (nbr, steps)
	// pairs are adjacent and fold into one record in a single pass —
	// O(c log c) per bundle regardless of the node's degree.
	slices.SortFunc(out, func(a, b gmwFlow) int {
		if a.nbr != b.nbr {
			return int(a.nbr) - int(b.nbr)
		}
		return int(a.steps) - int(b.steps)
	})
	for i := 0; i < len(out); {
		f := out[i]
		for i++; i < len(out) && out[i].nbr == f.nbr && out[i].steps == f.steps; i++ {
			f.count += out[i].count
		}
		p.w.st.recordGMWSend(v, gmwKey{batch: p.batch, step: f.steps, nbr: f.nbr}, f.count)
		congest.Send(ctx, f.nbr, gmwMsg{batch: p.batch, count: f.count, steps: f.steps})
	}
	p.w.gmwOut[v] = out[:0]
}

// walkOne advances a single token: stop with probability 1/(λ−i) at each
// step s = λ+i (uniform length on [λ, 2λ−1], Lemma 2.4), otherwise take a
// walk step; Metropolis stays advance s without leaving the node. Moves
// accumulate into out, which is returned (it may grow).
func (p *gmwProto) walkOne(ctx *congest.Ctx, s int32, out []gmwFlow) []gmwFlow {
	v := ctx.Node()
	for {
		if s >= p.lambda {
			if ctx.RNG().Intn(int(2*p.lambda-s)) == 0 {
				p.w.st.addCoupon(v, coupon{
					owner:  p.owner,
					walkID: p.w.st.newWalkID(v),
					length: s,
					refill: true,
					batch:  p.batch,
				})
				return out
			}
		}
		if p.w.prm.Metropolis {
			next, err := p.w.g.MHStep(ctx.RNG(), v)
			if err == nil && next == v {
				s++ // stayed: walk step consumed locally
				continue
			}
			if err == nil {
				out = append(out, gmwFlow{nbr: next, steps: s + 1, count: 1})
			}
			return out
		}
		if next, err := p.w.g.Step(ctx.RNG(), v); err == nil {
			out = append(out, gmwFlow{nbr: next, steps: s + 1, count: 1})
		}
		return out
	}
}

// getMoreWalks runs GET-MORE-WALKS(v): Θ(ℓ/λ) new walks owned by v.
func (w *Walker) getMoreWalks(v graph.NodeID, ell, lambda int) (congest.Result, error) {
	count := ell / lambda
	if count < 1 {
		count = 1
	}
	if w.gmwOut == nil {
		w.gmwOut = make([][]gmwFlow, w.g.N())
	}
	p := &gmwProto{
		w:      w,
		owner:  v,
		batch:  w.st.newWalkID(v),
		count:  count,
		lambda: int32(lambda),
	}
	return w.net.Run(p)
}
