package core

import (
	"testing"

	"distwalk/internal/dist"
	"distwalk/internal/graph"
	"distwalk/internal/stats"
)

// kite returns a small non-regular, non-bipartite graph with D=3 whose
// walk distributions are distinctive: K4 on {0..3} with a path 0-4-5.
func kite(t *testing.T) *graph.G {
	t.Helper()
	g, err := graph.Candy(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newWalker(t *testing.T, g *graph.G, seed uint64, prm Params) *Walker {
	t.Helper()
	w, err := NewWalker(g, seed, prm)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWalkerValidation(t *testing.T) {
	if _, err := NewWalker(nil, 1, DefaultParams()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewWalker(graph.New(0), 1, DefaultParams()); err == nil {
		t.Fatal("empty graph accepted")
	}
	g, _ := graph.Path(3)
	if _, err := NewWalker(g, 1, Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
}

func TestZeroLengthWalk(t *testing.T) {
	w := newWalker(t, kite(t), 1, DefaultParams())
	res, err := w.SingleRandomWalk(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination != 2 || res.Cost.Rounds != 0 || len(res.Segments) != 0 {
		t.Fatalf("zero walk: %+v", res)
	}
}

func TestWalkInputValidation(t *testing.T) {
	w := newWalker(t, kite(t), 1, DefaultParams())
	if _, err := w.SingleRandomWalk(99, 5); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := w.SingleRandomWalk(0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
	single := newWalker(t, graph.New(1), 1, DefaultParams())
	if _, err := single.SingleRandomWalk(0, 3); err == nil {
		t.Fatal("walk on singleton accepted")
	}
}

func TestWalkOnDisconnectedGraphFails(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 1, DefaultParams())
	if _, err := w.SingleRandomWalk(0, 10); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSegmentsComposeWalk(t *testing.T) {
	w := newWalker(t, kite(t), 7, DefaultParams())
	res, err := w.SingleRandomWalk(5, 40)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	cur := graph.NodeID(5)
	for _, s := range res.Segments {
		if s.Start != cur {
			t.Fatalf("segment starts at %d, want %d", s.Start, cur)
		}
		if s.Length < 1 {
			t.Fatalf("segment length %d", s.Length)
		}
		total += s.Length
		cur = s.End
	}
	if total != 40 {
		t.Fatalf("segments sum to %d, want 40", total)
	}
	if cur != res.Destination {
		t.Fatalf("last segment ends at %d, destination is %d", cur, res.Destination)
	}
}

func TestStitchingEngagesForLongWalks(t *testing.T) {
	w := newWalker(t, kite(t), 3, DefaultParams())
	res, err := w.SingleRandomWalk(5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Naive {
		t.Fatal("long walk fell back to naive")
	}
	if len(res.Segments) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(res.Segments))
	}
	// Short-walk segment lengths must lie in [λ, 2λ-1].
	for _, s := range res.Segments[:len(res.Segments)-1] {
		if s.Length < res.Lambda || s.Length > 2*res.Lambda-1 {
			t.Fatalf("segment length %d outside [%d, %d]", s.Length, res.Lambda, 2*res.Lambda-1)
		}
	}
}

func TestNaiveFallbackForShortWalks(t *testing.T) {
	w := newWalker(t, kite(t), 3, DefaultParams())
	res, err := w.SingleRandomWalk(5, 3) // 2λ > 3 on this graph
	if err != nil {
		t.Fatal(err)
	}
	if !res.Naive || len(res.Segments) != 1 {
		t.Fatalf("short walk should be naive: %+v", res)
	}
}

func TestWalkIDsDistinct(t *testing.T) {
	w := newWalker(t, kite(t), 11, Params{Lambda: 3, LambdaC: 1, Eta: 1})
	res, err := w.SingleRandomWalk(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, s := range res.Segments {
		if seen[s.WalkID] {
			t.Fatalf("walk ID %d reused", s.WalkID)
		}
		seen[s.WalkID] = true
	}
}

func TestDeterministicWalks(t *testing.T) {
	run := func(seed uint64) (graph.NodeID, int) {
		w := newWalker(t, kite(t), seed, DefaultParams())
		res, err := w.SingleRandomWalk(5, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res.Destination, res.Cost.Rounds
	}
	d1, r1 := run(21)
	d2, r2 := run(21)
	if d1 != d2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
	}
}

func TestRefillsTriggeredByTinyInventory(t *testing.T) {
	// λ=2 with one short walk per node (uniform counts) exhausts coupons
	// immediately; GET-MORE-WALKS must kick in and the walk still complete.
	prm := Params{Lambda: 2, LambdaC: 1, Eta: 1, UniformCounts: true}
	w := newWalker(t, kite(t), 5, prm)
	res, err := w.SingleRandomWalk(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refills == 0 {
		t.Fatal("expected refills with a starved inventory")
	}
	total := 0
	for _, s := range res.Segments {
		total += s.Length
	}
	if total != 120 {
		t.Fatalf("segments sum to %d, want 120", total)
	}
}

func TestEndpointDistributionMatchesExact(t *testing.T) {
	// The whole point of Theorem 2.5: the stitched walk is an exact sample.
	// Force heavy stitching with λ=3 and compare the empirical endpoint
	// distribution of 3000 walks with the exact 30-step distribution.
	g := kite(t)
	const (
		source  = graph.NodeID(5)
		ell     = 30
		samples = 3000
	)
	exact, err := dist.WalkDist(g, source, ell)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{Lambda: 3, LambdaC: 1, Eta: 1}
	w := newWalker(t, g, 31, prm)
	counts := make([]int, g.N())
	for i := 0; i < samples; i++ {
		res, err := w.SingleRandomWalk(source, ell)
		if err != nil {
			t.Fatal(err)
		}
		if res.Naive {
			t.Fatal("walk unexpectedly naive")
		}
		counts[res.Destination]++
	}
	checkDistribution(t, counts, exact)
}

func TestNaiveWalkDistributionMatchesExact(t *testing.T) {
	g := kite(t)
	const (
		source  = graph.NodeID(0)
		ell     = 5
		samples = 3000
	)
	exact, err := dist.WalkDist(g, source, ell)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 37, DefaultParams())
	counts := make([]int, g.N())
	for i := 0; i < samples; i++ {
		res, err := w.NaiveWalk(source, ell)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Destination]++
	}
	checkDistribution(t, counts, exact)
}

// checkDistribution chi-square-tests observed counts against exact
// probabilities, pooling zero-probability cells.
func checkDistribution(t *testing.T, counts []int, exact dist.Vec) {
	t.Helper()
	var obs []int
	var exp []float64
	for v, p := range exact {
		if p < 1e-12 {
			if counts[v] != 0 {
				t.Fatalf("impossible endpoint %d sampled %d times", v, counts[v])
			}
			continue
		}
		obs = append(obs, counts[v])
		exp = append(exp, p)
	}
	// Renormalize (pooled cells carry no mass anyway).
	sum := 0.0
	for _, p := range exp {
		sum += p
	}
	for i := range exp {
		exp[i] /= sum
	}
	stat, df, err := stats.ChiSquare(obs, exp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := stats.ChiSquarePValue(stat, df)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("endpoint distribution rejected: chi2=%v df=%d p=%v obs=%v exp=%v",
			stat, df, p, obs, exp)
	}
}

func TestFasterThanNaiveOnLongWalks(t *testing.T) {
	// Theorem 2.5 in action: Õ(√(ℓD)) ≪ ℓ on a moderate torus.
	g, err := graph.Torus(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	const ell = 12000
	fast := newWalker(t, g, 41, DefaultParams())
	fres, err := fast.SingleRandomWalk(0, ell)
	if err != nil {
		t.Fatal(err)
	}
	slow := newWalker(t, g, 41, DefaultParams())
	nres, err := slow.NaiveWalk(0, ell)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Cost.Rounds < ell {
		t.Fatalf("naive rounds %d below ℓ=%d?", nres.Cost.Rounds, ell)
	}
	if fres.Cost.Rounds*2 > nres.Cost.Rounds {
		t.Fatalf("fast walk %d rounds not ≪ naive %d rounds", fres.Cost.Rounds, nres.Cost.Rounds)
	}
}

func TestCouponsPersistAcrossWalks(t *testing.T) {
	// A second walk from the same source must not pay Phase 1 again.
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 43, DefaultParams())
	first, err := w.SingleRandomWalk(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := w.SingleRandomWalk(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if first.Breakdown.Phase1 == 0 {
		t.Fatal("first walk did not pay Phase 1")
	}
	if second.Breakdown.Phase1 != 0 {
		t.Fatalf("second walk re-paid Phase 1 (%d rounds)", second.Breakdown.Phase1)
	}
	if second.Breakdown.TreeBuild != 0 {
		t.Fatal("second walk re-paid the tree build")
	}
}

func TestPerCallBFSOption(t *testing.T) {
	prm := DefaultParams()
	prm.PerCallBFS = true
	w := newWalker(t, kite(t), 47, prm)
	res, err := w.SingleRandomWalk(5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Destination < 0 || int(res.Destination) >= 6 {
		t.Fatalf("bad destination %d", res.Destination)
	}
}

func TestDNP09ParameterizationWalks(t *testing.T) {
	g, err := graph.Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const ell = 2000
	w := newWalker(t, g, 53, DNP09Params(ell, 8))
	res, err := w.SingleRandomWalk(0, ell)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Segments {
		total += s.Length
	}
	if total != ell {
		t.Fatalf("DNP09 walk sums to %d, want %d", total, ell)
	}
}
