package core

import (
	"distwalk/internal/graph"
)

// coupon is an unused short walk: it lives at the walk's destination node
// and names the owner (the walk's start), so that SAMPLE-DESTINATION can
// sample it and stitching can jump to it. "Only the destination of each of
// these walks is aware of its source" (Section 2.1).
type coupon struct {
	owner  graph.NodeID
	walkID int64
	length int32
	// refill marks coupons minted by GET-MORE-WALKS, whose trajectories
	// are recorded as aggregate counts (batch identifies the refill) and
	// retraced backward; Phase 1 coupons replay forward via hop records.
	refill bool
	batch  int64
}

// gmwKey identifies one aggregated GET-MORE-WALKS flow record at a node:
// "tokens of `batch` that I sent to `nbr`, arriving there with hop counter
// `step`".
type gmwKey struct {
	batch int64
	step  int32
	nbr   graph.NodeID
}

// hopRec is one recorded walk departure: walk walkID left this node
// towards next.
type hopRec struct {
	walkID int64
	next   graph.NodeID
}

// netState is the per-node persistent state of the walk system: short-walk
// coupons, hop records for retracing, and local walk-ID sequencing. Indexed
// by node; each node only ever touches its own slot, preserving the
// locality discipline of the model.
type netState struct {
	// coupons[v][owner] lists unused coupons held at v for walks started
	// at owner.
	coupons []map[graph.NodeID][]coupon
	// hopLog[v] records walk departures from v in visit order. Recording a
	// hop is the hottest per-message operation of Phase 1 and the naive
	// walks, so it is a plain append; the per-walk FIFO view that
	// regeneration needs is folded into hopIdx lazily (hopIndexed[v] marks
	// how much of the log is already indexed). Walk-time stays hash-free
	// and the indexing cost is paid once, only by walks that are actually
	// regenerated.
	hopLog     [][]hopRec
	hopIdx     []map[int64][]graph.NodeID
	hopIndexed []int32
	// gmwSent[v] counts v's count-aggregated GET-MORE-WALKS token flows;
	// gmwUsed[v] counts how many of each flow earlier backward retraces
	// consumed (sampling without replacement keeps joint retraces exact).
	gmwSent []map[gmwKey]int32
	gmwUsed []map[gmwKey]int32
	// seq[v] is v's local counter for minting walk IDs.
	seq []uint32
}

func newNetState(n int) *netState {
	return &netState{
		coupons:    make([]map[graph.NodeID][]coupon, n),
		hopLog:     make([][]hopRec, n),
		hopIdx:     make([]map[int64][]graph.NodeID, n),
		hopIndexed: make([]int32, n),
		gmwSent:    make([]map[gmwKey]int32, n),
		gmwUsed:    make([]map[gmwKey]int32, n),
		seq:        make([]uint32, n),
	}
}

// recordGMWSend remembers that node at routed `count` tokens of `batch`
// toward nbr, arriving there with hop counter step.
func (s *netState) recordGMWSend(at graph.NodeID, key gmwKey, count int32) {
	if s.gmwSent[at] == nil {
		s.gmwSent[at] = make(map[gmwKey]int32)
	}
	s.gmwSent[at][key] += count
}

// gmwAvailable returns how many tokens of the flow remain unclaimed by
// backward retraces.
func (s *netState) gmwAvailable(at graph.NodeID, key gmwKey) int32 {
	return s.gmwSent[at][key] - s.gmwUsed[at][key]
}

// claimGMW consumes one token of the flow.
func (s *netState) claimGMW(at graph.NodeID, key gmwKey) {
	if s.gmwUsed[at] == nil {
		s.gmwUsed[at] = make(map[gmwKey]int32)
	}
	s.gmwUsed[at][key]++
}

// newWalkID mints a network-unique walk ID at node v.
func (s *netState) newWalkID(v graph.NodeID) int64 {
	id := int64(v)<<32 | int64(s.seq[v])
	s.seq[v]++
	return id
}

// walkOwner extracts the minting node from a walk ID.
func walkOwner(walkID int64) graph.NodeID { return graph.NodeID(walkID >> 32) }

func (s *netState) addCoupon(at graph.NodeID, c coupon) {
	if s.coupons[at] == nil {
		s.coupons[at] = make(map[graph.NodeID][]coupon)
	}
	s.coupons[at][c.owner] = append(s.coupons[at][c.owner], c)
}

// takeCoupon removes the coupon with the given walkID owned by owner from
// node at, reporting whether it was present.
func (s *netState) takeCoupon(at, owner graph.NodeID, walkID int64) bool {
	list := s.coupons[at][owner]
	for i, c := range list {
		if c.walkID == walkID {
			list[i] = list[len(list)-1]
			s.coupons[at][owner] = list[:len(list)-1]
			return true
		}
	}
	return false
}

// localCoupons returns node at's unused coupons owned by owner.
func (s *netState) localCoupons(at, owner graph.NodeID) []coupon {
	return s.coupons[at][owner]
}

// recordHop remembers that walk walkID left node at towards next.
func (s *netState) recordHop(at graph.NodeID, walkID int64, next graph.NodeID) {
	s.hopLog[at] = append(s.hopLog[at], hopRec{walkID: walkID, next: next})
}

// hopsOf returns the recorded successors of walkID at node at, in visit
// order, indexing any log entries appended since the last call. No hops
// are recorded while regeneration replays run, so returned slices stay
// valid for the duration of a replay.
func (s *netState) hopsOf(at graph.NodeID, walkID int64) []graph.NodeID {
	log := s.hopLog[at]
	if int(s.hopIndexed[at]) < len(log) {
		idx := s.hopIdx[at]
		if idx == nil {
			idx = make(map[int64][]graph.NodeID)
			s.hopIdx[at] = idx
		}
		for _, r := range log[s.hopIndexed[at]:] {
			idx[r.walkID] = append(idx[r.walkID], r.next)
		}
		s.hopIndexed[at] = int32(len(log))
	}
	return s.hopIdx[at][walkID]
}

// couponTotal counts all unused coupons in the network owned by owner
// (test/diagnostic helper; protocols count locally instead).
func (s *netState) couponTotal(owner graph.NodeID) int {
	total := 0
	for _, m := range s.coupons {
		total += len(m[owner])
	}
	return total
}
