package core

import (
	"distwalk/internal/graph"
)

// coupon is an unused short walk: it lives at the walk's destination node
// and names the owner (the walk's start), so that SAMPLE-DESTINATION can
// sample it and stitching can jump to it. "Only the destination of each of
// these walks is aware of its source" (Section 2.1).
type coupon struct {
	owner  graph.NodeID
	walkID int64
	length int32
	// refill marks coupons minted by GET-MORE-WALKS, whose trajectories
	// are recorded as aggregate counts (batch identifies the refill) and
	// retraced backward; Phase 1 coupons replay forward via hop records.
	refill bool
	batch  int64
}

// gmwKey identifies one aggregated GET-MORE-WALKS flow record at a node:
// "tokens of `batch` that I sent to `nbr`, arriving there with hop counter
// `step`".
type gmwKey struct {
	batch int64
	step  int32
	nbr   graph.NodeID
}

// hopRec is one recorded walk departure: walk walkID left this node
// towards next.
type hopRec struct {
	walkID int64
	next   graph.NodeID
}

// netState is the per-node persistent state of the walk system: short-walk
// coupons, hop records for retracing, GET-MORE-WALKS flow ledgers, and
// local walk-ID sequencing. Indexed by node; each node only ever touches
// its own slot, preserving the locality discipline of the model.
//
// All three per-node stores are flat, slab-backed shelves (see slab.go)
// rather than Go maps: lookups are open-addressed over int32 slot tables,
// values live in growable slabs, and clearing truncates instead of
// freeing. Together with reset this makes the whole structure warm-
// reusable: a pooled worker serves request after request without
// reallocating any of it, and the simulated execution stays bit-identical
// to a freshly built state (the shelves preserve append order, swap-remove
// semantics and exact-key lookup of the old maps).
type netState struct {
	// coupons[v] shelves the unused coupons held at v, bucketed by owner.
	coupons []couponShelf
	// hops[v] is v's departure log plus the lazily-indexed per-walk FIFO
	// view regeneration replays. Recording a hop is the hottest
	// per-message operation of Phase 1 and the naive walks, so it stays a
	// plain append; the indexing cost is paid once, only by walks that are
	// actually regenerated.
	hops []hopShelf
	// gmw[v] is v's count-aggregated GET-MORE-WALKS flow ledger: tokens
	// sent per (batch, step, nbr) and how many of each flow earlier
	// backward retraces consumed (sampling without replacement keeps joint
	// retraces exact).
	gmw []gmwShelf
	// seq[v] is v's local counter for minting walk IDs.
	seq []uint32

	// replayEpoch stamps hop-replay cursors: beginReplay bumps it, which
	// lazily resets every cursor without touching the slabs.
	replayEpoch uint32
	// mark/markEpoch is a reusable node-marking scratch (epoch-stamped
	// visited set) for protocol steps that need a small dedup — e.g. the
	// backward retrace's distinct-neighbor query fan-out.
	mark      []uint32
	markEpoch uint32
}

func newNetState(n int) *netState {
	return &netState{
		coupons: make([]couponShelf, n),
		hops:    make([]hopShelf, n),
		gmw:     make([]gmwShelf, n),
		seq:     make([]uint32, n),
		mark:    make([]uint32, n),
	}
}

// reset returns the state to that of a freshly built netState — empty
// shelves, zeroed walk-ID counters — while keeping every slab's capacity.
// This is what lets a pooled worker's walker serve many sequential
// requests warm: same observable behaviour as newNetState(n), none of the
// allocation.
func (s *netState) reset() {
	for v := range s.coupons {
		s.coupons[v].clear()
		s.hops[v].clear()
		s.gmw[v].clear()
	}
	clear(s.seq)
	// Epoch counters deliberately survive: stamps from before the reset
	// are stale by construction.
}

// clearCoupons empties every node's coupon shelf (Phase 1 re-provisioning
// drops the previous inventory; hop logs are kept so previously returned
// walks remain retraceable).
func (s *netState) clearCoupons() {
	for v := range s.coupons {
		s.coupons[v].clear()
	}
}

// recordGMWSend remembers that node at routed `count` tokens of `key.batch`
// toward key.nbr, arriving there with hop counter key.step.
func (s *netState) recordGMWSend(at graph.NodeID, key gmwKey, count int32) {
	s.gmw[at].rec(key, true).sent += count
}

// gmwAvailable returns how many tokens of the flow remain unclaimed by
// backward retraces.
func (s *netState) gmwAvailable(at graph.NodeID, key gmwKey) int32 {
	r := s.gmw[at].rec(key, false)
	if r == nil {
		return 0
	}
	return r.sent - r.used
}

// claimGMW consumes one token of the flow.
func (s *netState) claimGMW(at graph.NodeID, key gmwKey) {
	s.gmw[at].rec(key, true).used++
}

// newWalkID mints a network-unique walk ID at node v.
func (s *netState) newWalkID(v graph.NodeID) int64 {
	id := int64(v)<<32 | int64(s.seq[v])
	s.seq[v]++
	return id
}

// walkOwner extracts the minting node from a walk ID.
func walkOwner(walkID int64) graph.NodeID { return graph.NodeID(walkID >> 32) }

func (s *netState) addCoupon(at graph.NodeID, c coupon) {
	s.coupons[at].add(c)
}

// takeCoupon removes the coupon with the given walkID owned by owner from
// node at, reporting whether it was present. The scan is linear in node
// at's coupons for that owner — O(local state), never O(network) — and
// swap-remove keeps list order identical to the old map-backed store.
func (s *netState) takeCoupon(at, owner graph.NodeID, walkID int64) bool {
	return s.coupons[at].take(owner, walkID)
}

// localCoupons returns node at's unused coupons owned by owner.
func (s *netState) localCoupons(at, owner graph.NodeID) []coupon {
	return s.coupons[at].get(owner)
}

// recordHop remembers that walk walkID left node at towards next.
func (s *netState) recordHop(at graph.NodeID, walkID int64, next graph.NodeID) {
	h := &s.hops[at]
	h.log = append(h.log, hopRec{walkID: walkID, next: next})
}

// beginReplay starts a new replay pass: every hop cursor in the network
// lazily resets to the front of its walk's recorded successors.
func (s *netState) beginReplay() {
	s.replayEpoch++
	if s.replayEpoch == 0 { // wrapped: stale stamps could collide
		for v := range s.hops {
			clear(s.hops[v].cstamp)
		}
		s.replayEpoch = 1
	}
}

// replayNext consumes the next recorded successor of walkID at node at,
// in the FIFO order the original walk departed (indexing any log entries
// appended since the last replay). ok=false means the walk's recorded
// segment ends at this node.
func (s *netState) replayNext(at graph.NodeID, walkID int64) (next graph.NodeID, ok bool) {
	return s.hops[at].replayNext(walkID, s.replayEpoch)
}

// hopsOf returns the recorded successors of walkID at node at, in visit
// order (diagnostic/test view of the replay index).
func (s *netState) hopsOf(at graph.NodeID, walkID int64) []graph.NodeID {
	h := &s.hops[at]
	h.ensureIndexed()
	idx := h.walkSlot(walkID, false)
	if idx < 0 {
		return nil
	}
	return h.nexts[idx]
}

// beginMark starts a fresh node-marking scratch epoch.
func (s *netState) beginMark() {
	s.markEpoch++
	if s.markEpoch == 0 {
		clear(s.mark)
		s.markEpoch = 1
	}
}

// markNode marks v in the current scratch epoch, reporting whether it was
// already marked.
func (s *netState) markNode(v graph.NodeID) bool {
	if s.mark[v] == s.markEpoch {
		return true
	}
	s.mark[v] = s.markEpoch
	return false
}

// couponTotal counts all unused coupons in the network owned by owner
// (test/diagnostic helper; protocols count locally instead). It visits
// each node's shelf once and reads only that owner's bucket, so the cost
// is O(n) table probes — independent of how many coupons other owners
// hold.
func (s *netState) couponTotal(owner graph.NodeID) int {
	total := 0
	for v := range s.coupons {
		total += len(s.coupons[v].get(owner))
	}
	return total
}
