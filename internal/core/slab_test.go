package core

import (
	"testing"

	"distwalk/internal/graph"
	"distwalk/internal/rng"
)

// Property tests pinning the flat slab-backed stores to the map-based
// reference semantics they replaced. The protocols' determinism (and the
// golden counter tests) depend on three behavioural contracts:
//
//   - coupon buckets preserve exact append order, and take is the same
//     swap-remove the old map store used;
//   - GMW flow records accumulate per exact (batch, step, nbr) key;
//   - hop replay pops recorded successors FIFO, and a new replay epoch
//     resets every cursor.
//
// Each test drives the flat store and a plain map model through the same
// randomized op sequence and demands identical observations throughout.

func TestCouponShelfMatchesReference(t *testing.T) {
	const (
		nodes  = 7
		owners = 9
		ops    = 20000
	)
	r := rng.New(1)
	st := newNetState(nodes)
	ref := make([]map[graph.NodeID][]coupon, nodes)

	refTake := func(at, owner graph.NodeID, walkID int64) bool {
		list := ref[at][owner]
		for i, c := range list {
			if c.walkID == walkID {
				list[i] = list[len(list)-1]
				ref[at][owner] = list[:len(list)-1]
				return true
			}
		}
		return false
	}
	checkLocal := func(at, owner graph.NodeID) {
		got := st.localCoupons(at, owner)
		want := ref[at][owner]
		if len(got) != len(want) {
			t.Fatalf("localCoupons(%d, %d): %d coupons, want %d", at, owner, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("localCoupons(%d, %d)[%d] = %+v, want %+v (order must match)", at, owner, i, got[i], want[i])
			}
		}
	}

	nextID := int64(0)
	var ids []int64 // pool of IDs that may or may not still be stored
	for op := 0; op < ops; op++ {
		at := graph.NodeID(r.Intn(nodes))
		owner := graph.NodeID(r.Intn(owners))
		switch r.Intn(10) {
		case 0, 1, 2, 3: // add
			nextID++
			c := coupon{owner: owner, walkID: nextID, length: int32(r.Intn(64)), refill: r.Intn(2) == 0, batch: int64(r.Intn(5))}
			st.addCoupon(at, c)
			if ref[at] == nil {
				ref[at] = make(map[graph.NodeID][]coupon)
			}
			ref[at][owner] = append(ref[at][owner], c)
			ids = append(ids, nextID)
		case 4, 5, 6: // take a (possibly absent) coupon
			if len(ids) == 0 {
				continue
			}
			id := ids[r.Intn(len(ids))]
			got := st.takeCoupon(at, owner, id)
			want := refTake(at, owner, id)
			if got != want {
				t.Fatalf("takeCoupon(%d, %d, %d) = %v, want %v", at, owner, id, got, want)
			}
		case 7, 8: // read
			checkLocal(at, owner)
			gotTotal := st.couponTotal(owner)
			wantTotal := 0
			for v := range ref {
				wantTotal += len(ref[v][owner])
			}
			if gotTotal != wantTotal {
				t.Fatalf("couponTotal(%d) = %d, want %d", owner, gotTotal, wantTotal)
			}
		case 9: // occasional wholesale clear (Phase 1 re-provisioning)
			if r.Intn(50) == 0 {
				st.clearCoupons()
				for v := range ref {
					ref[v] = nil
				}
			}
		}
	}
	for v := 0; v < nodes; v++ {
		for o := 0; o < owners; o++ {
			checkLocal(graph.NodeID(v), graph.NodeID(o))
		}
	}
}

func TestGMWShelfMatchesReference(t *testing.T) {
	const (
		nodes = 5
		ops   = 20000
	)
	r := rng.New(2)
	st := newNetState(nodes)
	sent := make([]map[gmwKey]int32, nodes)
	used := make([]map[gmwKey]int32, nodes)
	for v := range sent {
		sent[v] = make(map[gmwKey]int32)
		used[v] = make(map[gmwKey]int32)
	}

	randKey := func() gmwKey {
		return gmwKey{
			batch: int64(r.Intn(6)),
			step:  int32(r.Intn(8)),
			nbr:   graph.NodeID(r.Intn(nodes)),
		}
	}
	for op := 0; op < ops; op++ {
		at := graph.NodeID(r.Intn(nodes))
		key := randKey()
		switch r.Intn(4) {
		case 0, 1:
			c := int32(1 + r.Intn(7))
			st.recordGMWSend(at, key, c)
			sent[at][key] += c
		case 2:
			if sent[at][key] > used[at][key] { // claims follow positive replies
				st.claimGMW(at, key)
				used[at][key]++
			}
		case 3:
			got := st.gmwAvailable(at, key)
			want := sent[at][key] - used[at][key]
			if got != want {
				t.Fatalf("gmwAvailable(%d, %+v) = %d, want %d", at, key, got, want)
			}
		}
	}
	for v := 0; v < nodes; v++ {
		for key, s := range sent[v] {
			if got := st.gmwAvailable(graph.NodeID(v), key); got != s-used[v][key] {
				t.Fatalf("final gmwAvailable(%d, %+v) = %d, want %d", v, key, got, s-used[v][key])
			}
		}
	}
}

func TestHopShelfReplayMatchesReference(t *testing.T) {
	const (
		nodes = 6
		walks = 12
		ops   = 5000
	)
	r := rng.New(3)
	st := newNetState(nodes)
	ref := make([]map[int64][]graph.NodeID, nodes)
	for v := range ref {
		ref[v] = make(map[int64][]graph.NodeID)
	}
	for op := 0; op < ops; op++ {
		at := graph.NodeID(r.Intn(nodes))
		wid := int64(r.Intn(walks))
		next := graph.NodeID(r.Intn(nodes))
		st.recordHop(at, wid, next)
		ref[at][wid] = append(ref[at][wid], next)
	}
	// Two replay passes over interleaved (node, walk) cursors: each pass
	// must pop every list FIFO from the start.
	for pass := 0; pass < 2; pass++ {
		st.beginReplay()
		cursors := make(map[[2]int64]int)
		for i := 0; i < 4*ops; i++ {
			at := graph.NodeID(r.Intn(nodes))
			wid := int64(r.Intn(walks))
			ck := [2]int64{int64(at), wid}
			next, ok := st.replayNext(at, wid)
			want := ref[at][wid]
			c := cursors[ck]
			if c < len(want) {
				if !ok || next != want[c] {
					t.Fatalf("pass %d: replayNext(%d, %d) = (%d, %v), want (%d, true)", pass, at, wid, next, ok, want[c])
				}
				cursors[ck] = c + 1
			} else if ok {
				t.Fatalf("pass %d: replayNext(%d, %d) returned %d after the list was exhausted", pass, at, wid, next)
			}
		}
	}
	// hopsOf view matches the reference lists exactly.
	for v := 0; v < nodes; v++ {
		for wid := int64(0); wid < walks; wid++ {
			got := st.hopsOf(graph.NodeID(v), wid)
			want := ref[v][wid]
			if len(got) != len(want) {
				t.Fatalf("hopsOf(%d, %d): %d hops, want %d", v, wid, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("hopsOf(%d, %d)[%d] = %d, want %d", v, wid, i, got[i], want[i])
				}
			}
		}
	}
}

// TestNetStateResetMatchesFresh pins the warm-reuse contract at the store
// level: after arbitrary use plus reset, every observation matches a
// freshly built netState driven through the same subsequent ops.
func TestNetStateResetMatchesFresh(t *testing.T) {
	const nodes = 5
	warm := newNetState(nodes)
	// Dirty the warm state thoroughly.
	r := rng.New(4)
	for i := 0; i < 3000; i++ {
		at := graph.NodeID(r.Intn(nodes))
		warm.addCoupon(at, coupon{owner: graph.NodeID(r.Intn(nodes)), walkID: int64(i)})
		warm.recordHop(at, int64(r.Intn(9)), graph.NodeID(r.Intn(nodes)))
		warm.recordGMWSend(at, gmwKey{batch: int64(r.Intn(3)), step: int32(r.Intn(4)), nbr: graph.NodeID(r.Intn(nodes))}, 1)
		warm.newWalkID(at)
	}
	warm.reset()
	fresh := newNetState(nodes)

	// Drive both through identical ops and compare all observations.
	r = rng.New(5)
	for i := 0; i < 3000; i++ {
		at := graph.NodeID(r.Intn(nodes))
		owner := graph.NodeID(r.Intn(nodes))
		wid := int64(r.Intn(9))
		key := gmwKey{batch: int64(r.Intn(3)), step: int32(r.Intn(4)), nbr: owner}
		switch r.Intn(6) {
		case 0:
			a, b := warm.newWalkID(at), fresh.newWalkID(at)
			if a != b {
				t.Fatalf("newWalkID(%d): warm %d, fresh %d", at, a, b)
			}
			c := coupon{owner: owner, walkID: a}
			warm.addCoupon(at, c)
			fresh.addCoupon(at, c)
		case 1:
			warm.recordHop(at, wid, owner)
			fresh.recordHop(at, wid, owner)
		case 2:
			warm.recordGMWSend(at, key, 2)
			fresh.recordGMWSend(at, key, 2)
		case 3:
			if a, b := warm.gmwAvailable(at, key), fresh.gmwAvailable(at, key); a != b {
				t.Fatalf("gmwAvailable: warm %d, fresh %d", a, b)
			}
		case 4:
			aw := warm.localCoupons(at, owner)
			fr := fresh.localCoupons(at, owner)
			if len(aw) != len(fr) {
				t.Fatalf("localCoupons: warm %d, fresh %d", len(aw), len(fr))
			}
			for i := range aw {
				if aw[i] != fr[i] {
					t.Fatalf("localCoupons[%d]: warm %+v, fresh %+v", i, aw[i], fr[i])
				}
			}
		case 5:
			warm.beginReplay()
			fresh.beginReplay()
			a, aok := warm.replayNext(at, wid)
			b, bok := fresh.replayNext(at, wid)
			if a != b || aok != bok {
				t.Fatalf("replayNext: warm (%d, %v), fresh (%d, %v)", a, aok, b, bok)
			}
		}
	}
}
