package core

import (
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"zero value", Params{}},
		{"zero eta", Params{LambdaC: 1}},
		{"negative lambda", Params{LambdaC: 1, Eta: 1, Lambda: -3}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.validate(); err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}

func TestLambdaFormula(t *testing.T) {
	p := DefaultParams()
	// λ = ceil(√(ℓD)): ℓ=100, D=4 -> 20.
	if got := p.lambda(100, 4, 1000); got != 20 {
		t.Fatalf("lambda(100,4) = %d, want 20", got)
	}
	// Scaled by LambdaC.
	p.LambdaC = 2
	if got := p.lambda(100, 4, 1000); got != 40 {
		t.Fatalf("lambda with c=2 = %d, want 40", got)
	}
	// Override wins.
	p.Lambda = 7
	if got := p.lambda(100, 4, 1000); got != 7 {
		t.Fatalf("lambda override = %d, want 7", got)
	}
}

func TestLambdaTheoryConstantsHuge(t *testing.T) {
	p := Params{Theory: true, Eta: 1}
	practical := Params{LambdaC: 1, Eta: 1}
	lt := p.lambda(10000, 10, 1024)
	lp := practical.lambda(10000, 10, 1024)
	// 24·(log2 1024)³ = 24000: theory λ is 4 orders larger.
	if lt < 1000*lp {
		t.Fatalf("theory λ=%d not ≫ practical λ=%d", lt, lp)
	}
}

func TestLambdaAtLeastOne(t *testing.T) {
	p := DefaultParams()
	if got := p.lambda(1, 1, 2); got < 1 {
		t.Fatalf("lambda = %d, want >= 1", got)
	}
	if got := p.lambdaMany(1, 1, 0, 2); got < 1 {
		t.Fatalf("lambdaMany = %d, want >= 1", got)
	}
}

func TestLambdaManyGrowsWithK(t *testing.T) {
	p := DefaultParams()
	l1 := p.lambdaMany(1, 1000, 10, 100)
	l16 := p.lambdaMany(16, 1000, 10, 100)
	if l16 <= l1 {
		t.Fatalf("λ(k=16)=%d not > λ(k=1)=%d", l16, l1)
	}
	// λ(k) ≈ √k·λ(1) + k.
	if l16 > 5*l1+16 {
		t.Fatalf("λ(k=16)=%d grows too fast vs λ(1)=%d", l16, l1)
	}
}

func TestDNP09Params(t *testing.T) {
	p := DNP09Params(1000, 10)
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if !p.FixedLength || !p.UniformCounts {
		t.Fatal("DNP09 must use fixed lengths and uniform counts")
	}
	// λ = (ℓD²)^{1/3} = (100000)^{1/3} ≈ 47, η = (ℓ/D)^{1/3} ≈ 5.
	if p.Lambda < 40 || p.Lambda > 55 {
		t.Fatalf("DNP09 λ = %d, want ≈ 47", p.Lambda)
	}
	if p.Eta < 4 || p.Eta > 6 {
		t.Fatalf("DNP09 η = %d, want ≈ 5", p.Eta)
	}
}

func TestDNP09ParamsDegenerateInputs(t *testing.T) {
	p := DNP09Params(0, 0)
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	if p.Lambda < 1 || p.Eta < 1 {
		t.Fatalf("degenerate DNP09 params: λ=%d η=%d", p.Lambda, p.Eta)
	}
}
