package mixing

import (
	"math"
	"testing"

	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/rng"
	"distwalk/internal/spectral"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		pi   float64
		want int
	}{
		{1.0, 0},
		{0.6, 0},   // log2(1/0.6) ≈ 0.74
		{0.4, 1},   // log2(2.5) ≈ 1.3
		{0.1, 3},   // log2(10) ≈ 3.3
		{1e-30, 9}, // clamped
	}
	for _, tt := range cases {
		if got := BucketOf(tt.pi, 2, 10); got != tt.want {
			t.Fatalf("BucketOf(%v) = %d, want %d", tt.pi, got, tt.want)
		}
	}
	if BucketOf(0, 2, 10) != 0 || BucketOf(0.5, 1, 10) != 0 {
		t.Fatal("degenerate inputs should map to bucket 0")
	}
}

// uniformSetup builds buckets and samplers for the uniform distribution
// over n items (a regular graph's stationary distribution).
func uniformSetup(n int) []Bucket {
	pi := 1 / float64(n)
	maxB := 20
	buckets := make([]Bucket, maxB)
	j := BucketOf(pi, 2, maxB)
	buckets[j] = Bucket{Mass: 1, Mass2: pi, Count: int64(n)}
	return buckets
}

func TestIdentityStatisticLowForTrueSamples(t *testing.T) {
	const n = 64
	r := rng.New(1)
	buckets := uniformSetup(n)
	samples := make([]Sample, 200)
	for i := range samples {
		samples[i] = Sample{Node: graph.NodeID(r.Intn(n)), Pi: 1.0 / n}
	}
	stat, err := IdentityL1Estimate(samples, buckets, 2)
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseFloor(buckets, len(samples))
	if stat > 3*noise+0.05 {
		t.Fatalf("true samples scored %v, noise floor %v", stat, noise)
	}
}

func TestIdentityStatisticHighForConcentratedSamples(t *testing.T) {
	// All mass on one node of a 64-node uniform reference: L1 ≈ 2.
	const n = 64
	buckets := uniformSetup(n)
	samples := make([]Sample, 200)
	for i := range samples {
		samples[i] = Sample{Node: 7, Pi: 1.0 / n}
	}
	stat, err := IdentityL1Estimate(samples, buckets, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stat < 1 {
		t.Fatalf("concentrated samples scored only %v", stat)
	}
}

func TestIdentityStatisticDetectsHalfSupport(t *testing.T) {
	// Samples uniform over half the items: true L1 = 1. The within-bucket
	// collision term must detect this even though bucket masses match.
	const n = 64
	r := rng.New(3)
	buckets := uniformSetup(n)
	samples := make([]Sample, 400)
	for i := range samples {
		samples[i] = Sample{Node: graph.NodeID(r.Intn(n / 2)), Pi: 1.0 / n}
	}
	stat, err := IdentityL1Estimate(samples, buckets, 2)
	if err != nil {
		t.Fatal(err)
	}
	noise := NoiseFloor(buckets, len(samples))
	if stat < noise+0.3 {
		t.Fatalf("half-support distribution scored %v (noise %v)", stat, noise)
	}
}

func TestIdentityStatisticValidation(t *testing.T) {
	if _, err := IdentityL1Estimate(nil, uniformSetup(4), 2); err == nil {
		t.Fatal("no samples accepted")
	}
	if _, err := IdentityL1Estimate([]Sample{{Node: 0, Pi: 0.5}}, nil, 2); err == nil {
		t.Fatal("no buckets accepted")
	}
}

func newWalker(t *testing.T, g *graph.G, seed uint64) *core.Walker {
	t.Helper()
	w, err := core.NewWalker(g, seed, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEstimateTauBracketsExactOnExpander(t *testing.T) {
	g, err := graph.ConnectedRandomRegular(48, 4, rng.New(7), 300)
	if err != nil {
		t.Fatal(err)
	}
	exactLoose, err := spectral.MixingTimeFrom(g, 0, 0.7, 100000)
	if err != nil {
		t.Fatal(err)
	}
	exactTight, err := spectral.MixingTimeFrom(g, 0, 0.02, 100000)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 11)
	est, err := EstimateTau(w, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Tau < exactLoose/2 || est.Tau > 4*exactTight+8 {
		t.Fatalf("τ̃=%d outside plausible bracket [%d/2, 4·%d]", est.Tau, exactLoose, exactTight)
	}
	if est.Tests < 1 || est.Samples < 1 {
		t.Fatalf("bookkeeping: %+v", est)
	}
}

func TestEstimateTauSeparatesFamilies(t *testing.T) {
	// An odd cycle mixes in Θ(n²); an expander in Θ(log n). The estimates
	// must reflect the gap.
	cyc, err := graph.Cycle(33)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := graph.ConnectedRandomRegular(33, 4, rng.New(5), 300)
	if err != nil {
		t.Fatal(err)
	}
	wc := newWalker(t, cyc, 13)
	ec, err := EstimateTau(wc, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	we := newWalker(t, exp, 13)
	ee, err := EstimateTau(we, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ec.Tau < 4*ee.Tau {
		t.Fatalf("cycle τ̃=%d not ≫ expander τ̃=%d", ec.Tau, ee.Tau)
	}
}

func TestEstimateTauGapBracketContainsTruth(t *testing.T) {
	g, err := graph.ConnectedRandomRegular(40, 4, rng.New(9), 300)
	if err != nil {
		t.Fatal(err)
	}
	gap, err := spectral.SpectralGap(g)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 17)
	est, err := EstimateTau(w, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The bracket is loose by design; verify it is sane and contains the
	// truth within a factor 4 margin.
	if est.GapLo > est.GapHi {
		t.Fatalf("inverted gap bracket [%v, %v]", est.GapLo, est.GapHi)
	}
	if gap < est.GapLo/4 || gap > 4*est.GapHi {
		t.Fatalf("true gap %v outside 4x-widened bracket [%v, %v]", gap, est.GapLo, est.GapHi)
	}
	if est.CondLo > est.CondHi {
		t.Fatalf("inverted conductance bracket [%v, %v]", est.CondLo, est.CondHi)
	}
}

func TestEstimateTauDeterministic(t *testing.T) {
	g, err := graph.ConnectedRandomRegular(30, 4, rng.New(21), 300)
	if err != nil {
		t.Fatal(err)
	}
	run := func() int {
		w := newWalker(t, g, 23)
		est, err := EstimateTau(w, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return est.Tau
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("estimates diverged: %d vs %d", a, b)
	}
}

func TestEstimateTauTinyGraphRejected(t *testing.T) {
	w := newWalker(t, graph.New(1), 1)
	if _, err := EstimateTau(w, 0, Options{}); err == nil {
		t.Fatal("singleton accepted")
	}
}

func TestEstimateTauRoundsSublinearInTau(t *testing.T) {
	// Theorem 4.6: cost Õ(√n + n^{1/4}√(Dτ)) — on a slow-mixing cycle this
	// is far below the naive K·τ.
	g, err := graph.Cycle(41)
	if err != nil {
		t.Fatal(err)
	}
	w := newWalker(t, g, 29)
	est, err := EstimateTau(w, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := spectral.MixingTimeFrom(g, 0, spectral.EpsMix, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	naive := est.Samples * exact // K walks of length τ, token-forwarded one by one
	if est.Cost.Rounds >= naive {
		t.Fatalf("estimator cost %d not below naive %d", est.Cost.Rounds, naive)
	}
	_ = math.Sqrt // keep math imported for future tuning
}
