// Package mixing implements the paper's second application (Section 4.2):
// fully decentralized estimation of the mixing time τ^x_mix of the
// network, and through it brackets on the spectral gap and conductance.
//
// Given a source x, the estimator repeatedly runs K = Õ(√n) random walks
// of length ℓ with MANY-RANDOM-WALKS, compares the endpoint sample against
// the stationary distribution with the bucketing comparator of Batu et al.
// (Theorem 4.5), and doubles ℓ until the comparison passes; monotonicity of
// ||π_x(t) − π||₁ (Lemma 4.4) then lets a binary search pin down the
// estimate. Total cost Õ(n^{1/2} + n^{1/4}·√(D·τ^x)) rounds (Theorem 4.6).
package mixing

import (
	"errors"
	"fmt"
	"math"

	"distwalk/internal/congest"
	"distwalk/internal/core"
	"distwalk/internal/graph"
	"distwalk/internal/spectral"
)

// ErrNoMixing is wrapped by EstimateTau when no tested walk length up to
// MaxEll passes the closeness test — on a connected graph this indicates
// bipartiteness (the walk distribution never converges).
var ErrNoMixing = errors.New("mixing: no tested length passed the closeness test")

// Options tunes the estimator; the zero value uses the defaults below.
type Options struct {
	// Samples is K, the walks per tested length (default ⌈6·√n⌉).
	Samples int
	// Eps is the target ℓ₁ closeness: the estimate τ̃ is the smallest
	// tested ℓ whose sample passes the ε test (default 1/2e, the paper's
	// τ_mix definition).
	Eps float64
	// BucketRatio is the geometric ratio between bucket boundaries
	// (default 2: buckets of within-factor-2 stationary mass).
	BucketRatio float64
	// MaxEll caps the doubling search (default 4·n³, far beyond any
	// connected non-bipartite graph's mixing time at default ε).
	MaxEll int
	// Debug prints each tested (ℓ, statistic, threshold) to stdout.
	Debug bool
}

// Estimate is the estimator's output.
type Estimate struct {
	Source graph.NodeID
	// Tau is τ̃: the smallest tested walk length that passed the
	// closeness test. It satisfies τ_mix ≤ τ̃ ≤ τ^x(ε') w.h.p. for the
	// comparator's (ε, ε') pair (Theorem 4.6).
	Tau int
	// LastFail is the largest tested length that failed (0 if ℓ=1 passed):
	// together with Tau it brackets the transition.
	LastFail int
	// Samples is K, walks per tested length.
	Samples int
	// Tests is the number of lengths tested.
	Tests int
	// GapLo, GapHi bracket the spectral gap 1−λ₂ via
	// 1/(1−λ₂) ≤ τ_mix ≤ log n/(1−λ₂).
	GapLo, GapHi float64
	// CondLo, CondHi bracket the conductance via Cheeger's inequality.
	CondLo, CondHi float64
	// Cost is the total simulated cost.
	Cost congest.Result
}

type floatPayload float64

func (floatPayload) Words() int   { return 2 }
func (floatPayload) Kind() uint16 { return 1 }
func (f floatPayload) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{math.Float64bits(float64(f))}
}
func (floatPayload) Decode(w [congest.PayloadWords]uint64) floatPayload {
	return floatPayload(math.Float64frombits(w[0]))
}

type bucketPayload Bucket

func (bucketPayload) Words() int   { return 5 }
func (bucketPayload) Kind() uint16 { return 2 }
func (b bucketPayload) Encode() [congest.PayloadWords]uint64 {
	return [congest.PayloadWords]uint64{
		math.Float64bits(b.Mass), math.Float64bits(b.Mass2), uint64(b.Count),
	}
}
func (bucketPayload) Decode(w [congest.PayloadWords]uint64) bucketPayload {
	return bucketPayload{
		Mass:  math.Float64frombits(w[0]),
		Mass2: math.Float64frombits(w[1]),
		Count: int64(w[2]),
	}
}

// EstimateTau runs the decentralized mixing-time estimation from source x.
func EstimateTau(w *core.Walker, x graph.NodeID, opt Options) (*Estimate, error) {
	g := w.Graph()
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("%w: mixing estimation needs n >= 2, got %d", core.ErrGraphTooSmall, n)
	}
	if opt.Samples <= 0 {
		opt.Samples = int(math.Ceil(6 * math.Sqrt(float64(n))))
	}
	if opt.Eps <= 0 {
		opt.Eps = spectral.EpsMix
	}
	if opt.BucketRatio <= 1 {
		opt.BucketRatio = 2
	}
	if opt.MaxEll <= 0 {
		opt.MaxEll = 4 * n * n * n
	}
	out := &Estimate{Source: x, Samples: opt.Samples}

	res, err := w.Prepare(x)
	out.Cost.Add(res)
	if err != nil {
		return nil, err
	}
	buckets, res, err := bucketSetup(w, opt.BucketRatio)
	out.Cost.Add(res)
	if err != nil {
		return nil, err
	}
	threshold := opt.Eps + 2*NoiseFloor(buckets, opt.Samples)

	test := func(ell int) (bool, error) {
		out.Tests++
		stat, err := sampleStat(w, x, ell, opt, buckets, out)
		if err != nil {
			return false, err
		}
		if opt.Debug {
			fmt.Printf("mixing: ℓ=%d stat=%.4f threshold=%.4f\n", ell, stat, threshold)
		}
		return stat <= threshold, nil
	}

	// Doubling phase: find the first power of two that passes.
	lastFail := 0
	ell := 1
	for {
		if ell > opt.MaxEll {
			return nil, fmt.Errorf("%w: no ℓ ≤ %d passed at ε=%v (bipartite graph?)", ErrNoMixing, opt.MaxEll, opt.Eps)
		}
		pass, err := test(ell)
		if err != nil {
			return nil, err
		}
		if pass {
			break
		}
		lastFail = ell
		ell *= 2
	}
	// Binary search in (lastFail, ell]: monotonicity (Lemma 4.4) makes the
	// transition well-defined up to sampling noise.
	lo, hi := lastFail+1, ell
	for lo < hi {
		mid := (lo + hi) / 2
		pass, err := test(mid)
		if err != nil {
			return nil, err
		}
		if pass {
			hi = mid
		} else {
			if mid > lastFail {
				lastFail = mid
			}
			lo = mid + 1
		}
	}
	out.Tau = lo
	out.LastFail = lastFail

	// Spectral-gap and conductance brackets (Section 4.2 closing remarks).
	if out.Tau > 0 {
		out.GapLo = 1 / float64(out.Tau)
		out.GapHi = math.Log(float64(n)) / float64(out.Tau)
		if out.GapHi > 1 {
			out.GapHi = 1
		}
		out.CondLo, _ = spectral.CheegerBounds(out.GapLo)
		_, out.CondHi = spectral.CheegerBounds(out.GapHi)
	}
	return out, nil
}

// bucketSetup computes the exact per-bucket stationary statistics with
// distributed convergecasts: first Σdeg = 2m (so each node knows its own
// π), then per bucket (Σπ, Σπ², count) — O(#buckets·D) rounds total.
func bucketSetup(w *core.Walker, ratio float64) ([]Bucket, congest.Result, error) {
	g := w.Graph()
	tree := w.Tree()
	var cost congest.Result

	degSum, res, err := congest.Convergecast(w.Network(), tree,
		func(v graph.NodeID) floatPayload { return floatPayload(g.WeightedDegree(v)) },
		func(_ graph.NodeID, a, c floatPayload) floatPayload { return a + c },
	)
	cost.Add(res)
	if err != nil {
		return nil, cost, err
	}
	res, err = congest.Broadcast(w.Network(), tree, degSum, nil)
	cost.Add(res)
	if err != nil {
		return nil, cost, err
	}
	total := float64(degSum)
	if total <= 0 {
		return nil, cost, fmt.Errorf("mixing: graph has no edges")
	}

	// π_min ≥ (min degree)/2m bounds the number of non-empty buckets.
	maxBuckets := int(math.Ceil(math.Log(total)/math.Log(ratio))) + 2
	if maxBuckets > 64 {
		maxBuckets = 64
	}
	buckets := make([]Bucket, maxBuckets)
	for j := 0; j < maxBuckets; j++ {
		b, res, err := congest.Convergecast(w.Network(), tree,
			func(v graph.NodeID) bucketPayload {
				pi := g.WeightedDegree(v) / total
				if BucketOf(pi, ratio, maxBuckets) != j {
					return bucketPayload{}
				}
				return bucketPayload{Mass: pi, Mass2: pi * pi, Count: 1}
			},
			func(_ graph.NodeID, a, c bucketPayload) bucketPayload {
				return bucketPayload{
					Mass:  a.Mass + c.Mass,
					Mass2: a.Mass2 + c.Mass2,
					Count: a.Count + c.Count,
				}
			},
		)
		cost.Add(res)
		if err != nil {
			return nil, cost, err
		}
		buckets[j] = Bucket(b)
	}
	return buckets, cost, nil
}

// sampleStat draws K endpoints of ℓ-walks from x and evaluates the
// identity statistic. Endpoint reports carry the destination's degree, so
// the source computes each sample's π locally.
func sampleStat(w *core.Walker, x graph.NodeID, ell int, opt Options, buckets []Bucket, out *Estimate) (float64, error) {
	g := w.Graph()
	sources := make([]graph.NodeID, opt.Samples)
	for i := range sources {
		sources[i] = x
	}
	many, err := w.ManyRandomWalks(sources, ell)
	if err != nil {
		return 0, err
	}
	out.Cost.Add(many.Cost)

	total := 0.0
	for v := 0; v < g.N(); v++ {
		total += g.WeightedDegree(graph.NodeID(v))
	}
	samples := make([]Sample, len(many.Destinations))
	for i, d := range many.Destinations {
		samples[i] = Sample{Node: d, Pi: g.WeightedDegree(d) / total}
	}
	return IdentityL1Estimate(samples, buckets, opt.BucketRatio)
}
