package mixing

import (
	"fmt"
	"math"

	"distwalk/internal/graph"
)

// This file implements the distribution-identity comparator of Batu,
// Fischer, Fortnow, Kumar, Rubinfeld and White (FOCS 2001) — Theorem 4.5
// of the paper — in the form used by the decentralized mixing-time
// estimator: the reference distribution is the stationary π, which every
// node knows locally (π(v) = deg(v)/2m), and the tested distribution X is
// the ℓ-step walk distribution observed through K = Õ(√n) endpoint
// samples.
//
// Nodes are partitioned into buckets of geometrically comparable π mass.
// Across buckets the empirical bucket masses are compared to the exact
// ones; within a bucket j the ℓ₂ distance between the conditional sample
// distribution X_j and the conditional reference q_j = π|B_j /Q_j is
// estimated from sample collisions — the standard unbiased estimators
//
//	E[collisions]/C(K_j,2) = ||X_j||₂²  and  E_s[q_j(s)] = ⟨X_j, q_j⟩,
//
// giving ||X_j−q_j||₂² = ||X_j||₂² − 2⟨X_j,q_j⟩ + ||q_j||₂², which
// converts to an ℓ₁ bound via Cauchy-Schwarz: ||·||₁ ≤ √|B_j|·||·||₂.
// The total statistic is
//
//	Σ_j |K_j/K − Q_j|  +  Σ_j min(Q_j,K_j/K)·√|B_j|·d₂(j),
//
// an estimate (up to sampling noise) of ||X − π||₁.

// Bucket is the exact per-bucket reference data, aggregated distributedly
// by convergecast: total π mass, total π² mass, and the node count.
type Bucket struct {
	Mass  float64
	Mass2 float64
	Count int64
}

// Sample is one walk-endpoint observation: the node and its stationary
// mass (computable by the receiver from the degree carried in the
// destination report).
type Sample struct {
	Node graph.NodeID
	Pi   float64
}

// BucketOf maps a stationary mass to its bucket: ⌊log_ratio(1/π)⌋ clamped
// to [0, maxBuckets).
func BucketOf(pi, ratio float64, maxBuckets int) int {
	if pi <= 0 || ratio <= 1 || maxBuckets < 1 {
		return 0
	}
	j := int(math.Floor(math.Log(1/pi) / math.Log(ratio)))
	if j < 0 {
		j = 0
	}
	if j >= maxBuckets {
		j = maxBuckets - 1
	}
	return j
}

// IdentityL1Estimate computes the bucketed L1 statistic described above.
// buckets[j] must describe bucket j exactly; each sample is assigned to
// BucketOf(sample.Pi, ratio, len(buckets)).
func IdentityL1Estimate(samples []Sample, buckets []Bucket, ratio float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("mixing: no samples")
	}
	if len(buckets) == 0 {
		return 0, fmt.Errorf("mixing: no buckets")
	}
	k := float64(len(samples))
	perBucket := make([][]Sample, len(buckets))
	for _, s := range samples {
		j := BucketOf(s.Pi, ratio, len(buckets))
		perBucket[j] = append(perBucket[j], s)
	}
	total := 0.0
	for j, b := range buckets {
		kj := float64(len(perBucket[j]))
		wj := kj / k
		// Across-bucket mass mismatch.
		total += math.Abs(wj - b.Mass)
		if b.Count == 0 || len(perBucket[j]) < 2 {
			continue
		}
		// Within-bucket ℓ₂ identity estimate.
		var collisions, dot float64
		group := perBucket[j]
		for a := 0; a < len(group); a++ {
			dot += group[a].Pi / b.Mass
			for c := a + 1; c < len(group); c++ {
				if group[a].Node == group[c].Node {
					collisions++
				}
			}
		}
		pairs := kj * (kj - 1) / 2
		x2 := collisions / pairs
		xq := dot / kj
		q2 := b.Mass2 / (b.Mass * b.Mass)
		d2 := x2 - 2*xq + q2
		if d2 < 0 {
			d2 = 0 // estimator noise can dip below zero
		}
		weight := math.Min(b.Mass, wj)
		total += weight * math.Sqrt(float64(b.Count)) * math.Sqrt(d2)
	}
	return total, nil
}

// NoiseFloor estimates the expected value of the statistic when X == π:
// binomial noise in the bucket masses plus the within-bucket estimator's
// standard error. Thresholds are set relative to it.
func NoiseFloor(buckets []Bucket, k int) float64 {
	if k < 2 {
		return 1
	}
	noise := 0.0
	for _, b := range buckets {
		if b.Count == 0 {
			continue
		}
		// Bucket-mass binomial deviation. Clamp against float drift: the
		// full bucket's mass can sum to 1+2e-16 and make 1-mass negative.
		mass := math.Min(math.Max(b.Mass, 0), 1)
		noise += math.Sqrt(mass * (1 - mass) / float64(k))
		// Within-bucket term: with X=q the ℓ₂² estimate fluctuates by
		// ~||q_j||₂²·√(2/pairs); after √ and the √|B_j| scaling this is
		// approximately √|B_j|·||q_j||₂·(2/pairs)^{1/4}.
		kj := b.Mass * float64(k) // expected samples in bucket
		if kj < 2 {
			continue
		}
		pairs := kj * (kj - 1) / 2
		q2 := b.Mass2 / (b.Mass * b.Mass)
		noise += b.Mass * math.Sqrt(float64(b.Count)) * math.Sqrt(math.Sqrt(2/pairs)*q2)
	}
	return noise
}
