package graph

import (
	"errors"
	"testing"

	"distwalk/internal/rng"
)

// The connected-sample generators promise typed retry-exhaustion errors:
// errors.Is against ErrRetryExhausted (and ErrDisconnected when that was
// the per-attempt failure), errors.As against *RetryError for the budget.

func TestConnectedERRetryExhaustion(t *testing.T) {
	// p=0 on n=3 can never be connected: every attempt fails.
	_, err := ConnectedER(3, 0, rng.New(1), 7)
	if err == nil {
		t.Fatal("ConnectedER(p=0) succeeded")
	}
	if !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("err %v does not match ErrRetryExhausted", err)
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err %v does not match ErrDisconnected", err)
	}
	if !Disconnected(err) {
		t.Fatalf("Disconnected(%v) = false", err)
	}
	var retry *RetryError
	if !errors.As(err, &retry) {
		t.Fatalf("err %v is not a *RetryError", err)
	}
	if retry.Tries != 7 {
		t.Fatalf("Tries = %d, want 7", retry.Tries)
	}
}

func TestConnectedRGGRetryExhaustion(t *testing.T) {
	// A radius far below the ~sqrt(ln n / pi n) threshold leaves isolated
	// points in every attempt.
	_, err := ConnectedRGG(64, 0.001, rng.New(2), 5)
	if !errors.Is(err, ErrRetryExhausted) || !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err %v does not match ErrRetryExhausted+ErrDisconnected", err)
	}
}

func TestConnectedRandomRegularRetryExhaustion(t *testing.T) {
	// 1-regular graphs are perfect matchings: disconnected for n > 2, so
	// every attempt fails the connectivity check.
	_, err := ConnectedRandomRegular(8, 1, rng.New(3), 4)
	if !errors.Is(err, ErrRetryExhausted) || !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err %v does not match ErrRetryExhausted+ErrDisconnected", err)
	}
	var retry *RetryError
	if !errors.As(err, &retry) || retry.Tries != 4 {
		t.Fatalf("err %v: want *RetryError with Tries=4", err)
	}
}

func TestConnectedGeneratorsSurfaceParamErrorsImmediately(t *testing.T) {
	// Parameter errors cannot improve with retries; they must pass through
	// unwrapped rather than consuming the budget.
	_, err := ConnectedER(0, 0.5, rng.New(1), 1000)
	if err == nil || errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("ConnectedER(n=0): got %v, want a bare parameter error", err)
	}
	_, err = ConnectedRandomRegular(5, 3, rng.New(1), 1000) // n*d odd
	if err == nil || errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("ConnectedRandomRegular(5,3): got %v, want a bare parameter error", err)
	}
}
