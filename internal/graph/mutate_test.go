package graph

import (
	"errors"
	"math"
	"testing"
)

func editTorus(t *testing.T) *G {
	t.Helper()
	g, err := Torus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// snapshotAdj deep-copies one adjacency list so a later comparison can
// prove the original graph was not touched.
func snapshotAdj(g *G, v NodeID) []Half {
	return append([]Half(nil), g.adj[v]...)
}

func TestApplyEditsBasics(t *testing.T) {
	g := editTorus(t)
	pre0 := snapshotAdj(g, 0)
	pre1 := snapshotAdj(g, 1)
	preM := g.M()

	g2, err := g.ApplyEdits(
		[]EdgeEdit{{U: 0, V: 1}},
		[]EdgeEdit{{U: 0, V: 27, W: 2}, {U: 5, V: 40}},
	)
	if err != nil {
		t.Fatal(err)
	}

	// The original is untouched (copy-on-write contract).
	if g.M() != preM {
		t.Fatalf("original edge count changed: %d -> %d", preM, g.M())
	}
	for i, h := range g.adj[0] {
		if h != pre0[i] {
			t.Fatalf("original adj[0][%d] changed: %+v -> %+v", i, pre0[i], h)
		}
	}
	for i, h := range g.adj[1] {
		if h != pre1[i] {
			t.Fatalf("original adj[1][%d] changed: %+v -> %+v", i, pre1[i], h)
		}
	}

	// The derived graph reflects the edits.
	if g2.M() != preM+1 {
		t.Fatalf("derived edge count = %d, want %d", g2.M(), preM+1)
	}
	if hasEdge(g2, 0, 1) {
		t.Fatal("removed edge (0,1) still present in derived graph")
	}
	if !hasEdge(g2, 0, 27) || !hasEdge(g2, 5, 40) {
		t.Fatal("added edges missing from derived graph")
	}
	if !g2.Weighted() {
		t.Fatal("adding a weight-2 edge did not mark the derived graph weighted")
	}
	wantW0 := g.WeightedDegree(0) - 1 + 2
	if math.Abs(g2.WeightedDegree(0)-wantW0) > 1e-12 {
		t.Fatalf("derived wdeg(0) = %v, want %v", g2.WeightedDegree(0), wantW0)
	}
}

func hasEdge(g *G, u, v NodeID) bool {
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// TestApplyEditsSharesUntouchedSegments pins the COW mechanics: adjacency
// lists of nodes no edit touches are shared backing arrays, not copies.
func TestApplyEditsSharesUntouchedSegments(t *testing.T) {
	g := editTorus(t)
	g2, err := g.ApplyEdits([]EdgeEdit{{U: 0, V: 1}}, []EdgeEdit{{U: 2, V: 20}})
	if err != nil {
		t.Fatal(err)
	}
	// Node 40 is far from every edit: its list must be aliased.
	if &g.adj[40][0] != &g2.adj[40][0] {
		t.Fatal("untouched adjacency segment was copied instead of shared")
	}
	// Touched nodes must NOT alias, or edits would leak into the original.
	for _, v := range []NodeID{0, 1, 2, 20} {
		if len(g.adj[v]) > 0 && len(g2.adj[v]) > 0 && &g.adj[v][0] == &g2.adj[v][0] {
			t.Fatalf("touched node %d still shares its adjacency backing array", v)
		}
	}
}

// TestApplyEditsIndexIntegrity checks the swap-remove bookkeeping: after a
// batch that forces edge-slot reuse, every half-edge's E index points at a
// dense edge whose endpoints and weight match the half.
func TestApplyEditsIndexIntegrity(t *testing.T) {
	g := editTorus(t)
	g2, err := g.ApplyEdits(
		[]EdgeEdit{{U: 0, V: 1}, {U: 0, V: 8}, {U: 10, V: 11}},
		[]EdgeEdit{{U: 0, V: 63, W: 3}, {U: 1, V: 62}},
	)
	if err != nil {
		t.Fatal(err)
	}
	checkIndex(t, g2)
}

func checkIndex(t *testing.T, g *G) {
	t.Helper()
	seen := make([]int, g.M())
	for v := range g.adj {
		for _, h := range g.adj[v] {
			if h.E < 0 || int(h.E) >= g.M() {
				t.Fatalf("adj[%d] half %+v has out-of-range edge index (m=%d)", v, h, g.M())
			}
			e := g.edges[h.E]
			u := NodeID(v)
			if !((e.U == u && e.V == h.To) || (e.V == u && e.U == h.To)) {
				t.Fatalf("adj[%d] half %+v disagrees with edges[%d] = %+v", v, h, h.E, e)
			}
			if e.W != h.W {
				t.Fatalf("adj[%d] half weight %v disagrees with edges[%d] weight %v", v, h.W, h.E, e.W)
			}
			seen[h.E]++
		}
	}
	for e, c := range seen {
		if c != 2 {
			t.Fatalf("edges[%d] referenced by %d halves, want 2", e, c)
		}
	}
}

func TestApplyEditsWeightedRecompute(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("setup: graph should be weighted")
	}
	// Removing the only non-unit edge must clear the weighted flag; node 2
	// keeps a replacement edge so it is not isolated.
	g2, err := g.ApplyEdits([]EdgeEdit{{U: 1, V: 2, W: 5}}, []EdgeEdit{{U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weighted() {
		t.Fatal("derived graph still weighted after removing the only weighted edge")
	}
}

func TestApplyEditsParallelEdges(t *testing.T) {
	g := editTorus(t)
	// Add two parallel (0,1) edges on top of the torus edge, then remove
	// one: exactly two (0,1) edges must survive.
	g2, err := g.ApplyEdits(nil, []EdgeEdit{{U: 0, V: 1}, {U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := g2.ApplyEdits([]EdgeEdit{{U: 0, V: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n01 := 0
	for _, h := range g3.adj[0] {
		if h.To == 1 {
			n01++
		}
	}
	if n01 != 2 {
		t.Fatalf("(0,1) multiplicity after add two / remove one = %d, want 2", n01)
	}
	checkIndex(t, g3)
}

func TestApplyEditsErrors(t *testing.T) {
	g := editTorus(t)
	cases := []struct {
		name     string
		rem, add []EdgeEdit
	}{
		{"self-loop add", nil, []EdgeEdit{{U: 3, V: 3}}},
		{"out-of-range add", nil, []EdgeEdit{{U: 0, V: 64}}},
		{"negative weight add", nil, []EdgeEdit{{U: 0, V: 2, W: -1}}},
		{"missing removal", []EdgeEdit{{U: 0, V: 2}}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := g.ApplyEdits(tc.rem, tc.add); !errors.Is(err, ErrEdit) {
				t.Fatalf("err = %v, want ErrEdit", err)
			}
		})
	}

	t.Run("isolation", func(t *testing.T) {
		p, err := Path(3)
		if err != nil {
			t.Fatal(err)
		}
		// Removing (0,1) strands node 0.
		if _, err := p.ApplyEdits([]EdgeEdit{{U: 0, V: 1}}, nil); !errors.Is(err, ErrEdit) {
			t.Fatalf("isolating edit: err = %v, want ErrEdit", err)
		}
	})

	t.Run("all-or-nothing", func(t *testing.T) {
		preM := g.M()
		// Valid add + invalid removal in one batch: nothing applies.
		if _, err := g.ApplyEdits([]EdgeEdit{{U: 0, V: 2}}, []EdgeEdit{{U: 0, V: 27}}); !errors.Is(err, ErrEdit) {
			t.Fatalf("mixed batch: err = %v, want ErrEdit", err)
		}
		if g.M() != preM || hasEdge(g, 0, 27) {
			t.Fatal("failed batch mutated the original graph")
		}
	})
}
