package graph

import (
	"fmt"
	"math"
)

// LowerBound is the hard instance G_n of Definition 3.3 (Figure 3): a path
// P = v_1 v_2 ... v_{n'} with a complete binary tree T of k' leaves laid
// over it, leaf u_i connected to every path node v_{jk'+i}. The tree gives
// G_n diameter O(log n) while the PATH-VERIFICATION problem on P still
// needs Ω(√(ℓ/log ℓ)) rounds (Theorem 3.2): tree edges near the root are a
// bandwidth bottleneck between the left and right halves of P's residue
// classes.
type LowerBound struct {
	G *G
	// PathLen is n': the padded path length (k' divides n', n' >= n).
	PathLen int
	// K is the parameter k of Theorem 3.2 (#rounds lower bound).
	K int
	// KPrime is k': the number of tree leaves, a power of two with
	// k'/2 <= 4k < k'.
	KPrime int
	// Root is the tree root x; Leaves are u_1..u_{k'} left to right.
	Root   NodeID
	Leaves []NodeID
}

// NewLowerBound builds G_n for a desired path length n and parameter k.
// Pass k <= 0 to use the canonical k = sqrt(n / log2 n) of Theorem 3.7.
func NewLowerBound(n, k int) (*LowerBound, error) {
	if n < 4 {
		return nil, fmt.Errorf("graph: lower-bound graph needs n >= 4, got %d", n)
	}
	if k <= 0 {
		k = DefaultLowerBoundK(n)
	}
	// k' is a power of two with k'/2 <= 4k < k'.
	kp := 1
	for kp <= 4*k {
		kp *= 2
	}
	if kp < 4 {
		kp = 4
	}
	np := ((n + kp - 1) / kp) * kp // smallest multiple of k' that is >= n
	treeSize := 2*kp - 1
	g := New(np + treeSize)

	// Path nodes are 0..np-1 (v_{i+1} in the paper's 1-based indexing).
	for i := 0; i+1 < np; i++ {
		mustAdd(g, NodeID(i), NodeID(i+1))
	}
	// Tree nodes in heap order: graph id np+t for heap index t; root t=0;
	// children of t are 2t+1, 2t+2; leaves are t in [kp-1, 2kp-2].
	for t := 1; t < treeSize; t++ {
		mustAdd(g, NodeID(np+(t-1)/2), NodeID(np+t))
	}
	leaves := make([]NodeID, kp)
	for i := 0; i < kp; i++ {
		leaves[i] = NodeID(np + kp - 1 + i)
	}
	// Leaf u_i (1-based) attaches to v_{jk'+i} for all valid j, i.e. path
	// index jk'+i-1 in 0-based coordinates.
	for i := 1; i <= kp; i++ {
		for p := i - 1; p < np; p += kp {
			mustAdd(g, leaves[i-1], NodeID(p))
		}
	}
	return &LowerBound{
		G:       g,
		PathLen: np,
		K:       k,
		KPrime:  kp,
		Root:    NodeID(np),
		Leaves:  leaves,
	}, nil
}

// DefaultLowerBoundK returns the canonical k = sqrt(n / log2 n) used in
// Theorems 3.2 and 3.7 (rounded to at least 1).
func DefaultLowerBoundK(n int) int {
	if n < 4 {
		return 1
	}
	k := int(math.Sqrt(float64(n) / math.Log2(float64(n))))
	if k < 1 {
		k = 1
	}
	return k
}

// PathNode returns v_{i} for 1-based path position i in [1, PathLen].
func (lb *LowerBound) PathNode(i int) NodeID { return NodeID(i - 1) }

// LeftBreakpoints returns the breakpoints for the left subtree: path
// positions jk'+k'/2+k+1 (1-based, Section 3.1). These nodes cannot be
// reached from the left-leaf attachment points by walking at most k steps
// along P.
func (lb *LowerBound) LeftBreakpoints() []NodeID {
	return lb.breakpoints(lb.KPrime/2 + lb.K + 1)
}

// RightBreakpoints returns the breakpoints for the right subtree: path
// positions jk'+k+1 (1-based).
func (lb *LowerBound) RightBreakpoints() []NodeID {
	return lb.breakpoints(lb.K + 1)
}

func (lb *LowerBound) breakpoints(offset int) []NodeID {
	var out []NodeID
	for p := offset; p <= lb.PathLen; p += lb.KPrime {
		out = append(out, lb.PathNode(p))
	}
	return out
}
