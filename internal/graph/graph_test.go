package graph

import (
	"math"
	"testing"
	"testing/quick"

	"distwalk/internal/rng"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("bad degrees: %d %d", g.Degree(1), g.Degree(0))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge answers wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New(2)
	for _, pair := range [][2]NodeID{{0, 2}, {-1, 0}, {5, 7}} {
		if err := g.AddEdge(pair[0], pair[1]); err == nil {
			t.Fatalf("edge %v accepted", pair)
		}
	}
}

func TestAddWeightedEdgeRejectsNonPositive(t *testing.T) {
	g := New(2)
	if err := g.AddWeightedEdge(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := g.AddWeightedEdge(0, 1, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestParallelEdges(t *testing.T) {
	g := New(2)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if g.M() != 3 || g.Degree(0) != 3 {
		t.Fatalf("multigraph not preserved: m=%d deg=%d", g.M(), g.Degree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDegree(t *testing.T) {
	g := New(3)
	if err := g.AddWeightedEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := g.WeightedDegree(1); got != 3.0 {
		t.Fatalf("weighted degree = %v, want 3", got)
	}
	if !g.Weighted() {
		t.Fatal("graph should report weighted")
	}
}

func TestUnweightedStepUniform(t *testing.T) {
	g := New(4)
	for _, v := range []NodeID{1, 2, 3} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(1)
	counts := make(map[NodeID]int)
	const draws = 30000
	for i := 0; i < draws; i++ {
		v, err := g.Step(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	for _, v := range []NodeID{1, 2, 3} {
		if math.Abs(float64(counts[v])-draws/3.0) > 400 {
			t.Fatalf("neighbor %d drawn %d times, want ~%d", v, counts[v], draws/3)
		}
	}
}

func TestWeightedStepProportional(t *testing.T) {
	g := New(3)
	if err := g.AddWeightedEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddWeightedEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	hits := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		v, err := g.Step(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v == 1 {
			hits++
		}
	}
	if frac := float64(hits) / draws; math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("weight-3 neighbor taken %.3f of the time, want ~0.75", frac)
	}
}

func TestStepIsolatedNode(t *testing.T) {
	g := New(2)
	if _, err := g.Step(rng.New(3), 0); err == nil {
		t.Fatal("step from isolated node succeeded")
	}
}

func TestMinMaxDegree(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.MinDegree() != 1 || g.MaxDegree() != 4 {
		t.Fatalf("star degrees: min=%d max=%d", g.MinDegree(), g.MaxDegree())
	}
	if New(0).MinDegree() != 0 || New(0).MaxDegree() != 0 {
		t.Fatal("empty graph degrees should be 0")
	}
}

func TestEdgesCopyIsDetached(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	es := g.Edges()
	es[0].U = 1
	if g.Edge(0).U != 0 {
		t.Fatal("Edges() exposed internal state")
	}
}

func TestQuickDegreeSumTwiceEdges(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw % 60)
		r := rng.New(seed)
		g := New(n)
		added := 0
		for i := 0; i < m; i++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			if u == v {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return false
			}
			added++
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(NodeID(v))
		}
		return sum == 2*added && g.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStepStaysOnNeighbors(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 3
		r := rng.New(seed)
		g, err := Cycle(n)
		if err != nil {
			return false
		}
		v := NodeID(r.Intn(n))
		u, err := g.Step(r, v)
		if err != nil {
			return false
		}
		return g.HasEdge(v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
