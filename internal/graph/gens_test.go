package graph

import (
	"testing"

	"distwalk/internal/rng"
)

func TestGeneratorSizes(t *testing.T) {
	tests := []struct {
		name       string
		g          func() (*G, error)
		wantN      int
		wantM      int
		wantDegMin int
		wantDegMax int
	}{
		{"path5", func() (*G, error) { return Path(5) }, 5, 4, 1, 2},
		{"path1", func() (*G, error) { return Path(1) }, 1, 0, 0, 0},
		{"cycle7", func() (*G, error) { return Cycle(7) }, 7, 7, 2, 2},
		{"K6", func() (*G, error) { return Complete(6) }, 6, 15, 5, 5},
		{"star9", func() (*G, error) { return Star(9) }, 9, 8, 1, 8},
		{"bintree7", func() (*G, error) { return BinaryTree(7) }, 7, 6, 1, 3},
		{"grid3x4", func() (*G, error) { return Grid(3, 4) }, 12, 17, 2, 4},
		{"torus3x5", func() (*G, error) { return Torus(3, 5) }, 15, 30, 4, 4},
		{"hypercube3", func() (*G, error) { return Hypercube(3) }, 8, 12, 3, 3},
		{"candy(4,3)", func() (*G, error) { return Candy(4, 3) }, 7, 9, 1, 4},
		{"barbell(3,2)", func() (*G, error) { return Barbell(3, 2) }, 8, 9, 2, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.g()
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tt.wantN || g.M() != tt.wantM {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", g.N(), g.M(), tt.wantN, tt.wantM)
			}
			if g.MinDegree() != tt.wantDegMin || g.MaxDegree() != tt.wantDegMax {
				t.Fatalf("deg range [%d,%d], want [%d,%d]",
					g.MinDegree(), g.MaxDegree(), tt.wantDegMin, tt.wantDegMax)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.N() > 1 && !g.Connected() {
				t.Fatal("generator produced a disconnected graph")
			}
		})
	}
}

func TestGeneratorArgumentValidation(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*G, error)
	}{
		{"path0", func() (*G, error) { return Path(0) }},
		{"cycle2", func() (*G, error) { return Cycle(2) }},
		{"complete0", func() (*G, error) { return Complete(0) }},
		{"star1", func() (*G, error) { return Star(1) }},
		{"bintree0", func() (*G, error) { return BinaryTree(0) }},
		{"grid0x3", func() (*G, error) { return Grid(0, 3) }},
		{"torus2x3", func() (*G, error) { return Torus(2, 3) }},
		{"hypercube0", func() (*G, error) { return Hypercube(0) }},
		{"candy1", func() (*G, error) { return Candy(1, 2) }},
		{"candyNegPath", func() (*G, error) { return Candy(3, -1) }},
		{"barbell1", func() (*G, error) { return Barbell(1, 0) }},
		{"erNeg", func() (*G, error) { return ER(0, 0.5, rng.New(1)) }},
		{"erBadP", func() (*G, error) { return ER(5, 1.5, rng.New(1)) }},
		{"rggBadRadius", func() (*G, error) { return RGG(5, 0, rng.New(1)) }},
		{"regularOdd", func() (*G, error) { return RandomRegular(5, 3, rng.New(1)) }},
		{"regularDTooBig", func() (*G, error) { return RandomRegular(4, 4, rng.New(1)) }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.f(); err == nil {
				t.Fatal("invalid arguments accepted")
			}
		})
	}
}

func TestERDensity(t *testing.T) {
	r := rng.New(5)
	g, err := ER(100, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	// E[m] = C(100,2) * 0.1 = 495; allow +-5 sigma (sigma ~ 21).
	if g.M() < 390 || g.M() > 600 {
		t.Fatalf("ER(100, 0.1) has %d edges, want ~495", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedERIsConnected(t *testing.T) {
	g, err := ConnectedER(50, 0.12, rng.New(7), 200)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("ConnectedER returned a disconnected graph")
	}
}

func TestRandomRegularIsRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 3}} {
		g, err := RandomRegular(tc.n, tc.d, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(NodeID(v)) != tc.d {
				t.Fatalf("n=%d d=%d: node %d has degree %d", tc.n, tc.d, v, g.Degree(NodeID(v)))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConnectedRandomRegular(t *testing.T) {
	g, err := ConnectedRandomRegular(30, 3, rng.New(13), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("not connected")
	}
}

func TestRGGEdgesRespectRadius(t *testing.T) {
	// Statistical check through structure: with a generous radius the RGG
	// on few points should be connected and valid.
	g, err := ConnectedRGG(60, RGGThresholdRadius(60), rng.New(17), 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("ConnectedRGG returned disconnected graph")
	}
	if g.M() == 0 {
		t.Fatal("RGG has no edges")
	}
}

func TestRGGThresholdRadius(t *testing.T) {
	if r := RGGThresholdRadius(1); r != 1 {
		t.Fatalf("degenerate radius = %v, want 1", r)
	}
	if r := RGGThresholdRadius(1000); r <= 0 || r >= 1 {
		t.Fatalf("radius for n=1000 = %v out of (0,1)", r)
	}
}

func TestCandyDiameterScalesWithPath(t *testing.T) {
	for _, pathLen := range []int{0, 5, 20} {
		g, err := Candy(6, pathLen)
		if err != nil {
			t.Fatal(err)
		}
		d, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		want := pathLen + 1
		if pathLen == 0 {
			want = 1
		}
		if d != want {
			t.Fatalf("candy(6,%d) diameter = %d, want %d", pathLen, d, want)
		}
	}
}
