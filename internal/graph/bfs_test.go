package graph

import (
	"testing"
	"testing/quick"

	"distwalk/internal/rng"
)

func TestBFSPathDistances(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if res.Dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	if res.Eccentricity() != 4 {
		t.Fatalf("eccentricity = %d, want 4", res.Eccentricity())
	}
	if res.Farthest() != 4 {
		t.Fatalf("farthest = %d, want 4", res.Farthest())
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	res, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != -1 || res.Parent[2] != None {
		t.Fatal("unreachable node not marked")
	}
	if len(res.Order) != 2 {
		t.Fatalf("order has %d nodes, want 2", len(res.Order))
	}
}

func TestBFSErrors(t *testing.T) {
	if _, err := New(0).BFS(0); err == nil {
		t.Fatal("BFS on empty graph succeeded")
	}
	if _, err := New(2).BFS(5); err == nil {
		t.Fatal("BFS from out-of-range source succeeded")
	}
}

func TestPathTo(t *testing.T) {
	g, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	p := res.PathTo(2)
	if len(p) != 3 || p[0] != 0 || p[2] != 2 {
		t.Fatalf("path to 2 = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path %v uses a non-edge", p)
		}
	}
	if res.PathTo(None) != nil {
		t.Fatal("PathTo(None) should be nil")
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    func() *G
		want bool
	}{
		{"empty", func() *G { return New(0) }, false},
		{"singleton", func() *G { return New(1) }, true},
		{"two isolated", func() *G { return New(2) }, false},
		{"path", func() *G { g, _ := Path(4); return g }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g().Connected(); got != tt.want {
				t.Fatalf("Connected = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDiameterKnownFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    func() (*G, error)
		want int
	}{
		{"path10", func() (*G, error) { return Path(10) }, 9},
		{"cycle10", func() (*G, error) { return Cycle(10) }, 5},
		{"cycle9", func() (*G, error) { return Cycle(9) }, 4},
		{"K5", func() (*G, error) { return Complete(5) }, 1},
		{"star8", func() (*G, error) { return Star(8) }, 2},
		{"grid4x5", func() (*G, error) { return Grid(4, 5) }, 7},
		{"torus4x4", func() (*G, error) { return Torus(4, 4) }, 4},
		{"hypercube4", func() (*G, error) { return Hypercube(4) }, 4},
		{"candy(5,7)", func() (*G, error) { return Candy(5, 7) }, 8},
		{"barbell(4,3)", func() (*G, error) { return Barbell(4, 3) }, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.g()
			if err != nil {
				t.Fatal(err)
			}
			d, err := g.Diameter()
			if err != nil {
				t.Fatal(err)
			}
			if d != tt.want {
				t.Fatalf("diameter = %d, want %d", d, tt.want)
			}
		})
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Diameter(); !Disconnected(err) {
		t.Fatalf("want disconnected error, got %v", err)
	}
	if _, err := g.ApproxDiameter(); !Disconnected(err) {
		t.Fatalf("want disconnected error, got %v", err)
	}
}

func TestApproxDiameterLowerBoundsExact(t *testing.T) {
	r := rng.New(99)
	for i := 0; i < 10; i++ {
		g, err := ConnectedER(30, 0.15, r, 100)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := g.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		approx, err := g.ApproxDiameter()
		if err != nil {
			t.Fatal(err)
		}
		if approx > exact {
			t.Fatalf("approx %d exceeds exact %d", approx, exact)
		}
		if approx*2 < exact {
			t.Fatalf("double sweep too weak: approx=%d exact=%d", approx, exact)
		}
	}
}

func TestQuickBFSTreeEdgesExist(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		r := rng.New(seed)
		g, err := ConnectedER(n, 0.2, r, 200)
		if err != nil {
			return true // no connected sample at this size; skip
		}
		res, err := g.BFS(NodeID(r.Intn(n)))
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			p := res.Parent[v]
			if p == None {
				continue
			}
			if !g.HasEdge(NodeID(v), p) {
				return false
			}
			if res.Dist[v] != res.Dist[p]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBFSSymmetricDistance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g, err := ConnectedER(25, 0.2, r, 200)
		if err != nil {
			return true
		}
		u := NodeID(r.Intn(25))
		v := NodeID(r.Intn(25))
		fromU, err := g.BFS(u)
		if err != nil {
			return false
		}
		fromV, err := g.BFS(v)
		if err != nil {
			return false
		}
		return fromU.Dist[v] == fromV.Dist[u]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
