package graph

import (
	"math"
	"testing"
)

func TestLowerBoundStructure(t *testing.T) {
	lb, err := NewLowerBound(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := lb.G
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// k' must be the smallest power of two with 4k < k'.
	if lb.KPrime != 16 {
		t.Fatalf("k' = %d, want 16 for k=3", lb.KPrime)
	}
	if lb.PathLen%lb.KPrime != 0 || lb.PathLen < 100 {
		t.Fatalf("n' = %d must be a multiple of k'=%d and >= 100", lb.PathLen, lb.KPrime)
	}
	if g.N() != lb.PathLen+2*lb.KPrime-1 {
		t.Fatalf("total nodes = %d, want n' + 2k'-1 = %d", g.N(), lb.PathLen+2*lb.KPrime-1)
	}
	if len(lb.Leaves) != lb.KPrime {
		t.Fatalf("leaf count = %d, want %d", len(lb.Leaves), lb.KPrime)
	}
	if !g.Connected() {
		t.Fatal("G_n is disconnected")
	}
}

func TestLowerBoundLeafAttachment(t *testing.T) {
	lb, err := NewLowerBound(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf u_i must attach to exactly n'/k' path nodes: v_{jk'+i}.
	per := lb.PathLen / lb.KPrime
	for i, leaf := range lb.Leaves {
		pathNbrs := 0
		for _, h := range lb.G.Neighbors(leaf) {
			if int(h.To) < lb.PathLen {
				pathNbrs++
				if (int(h.To))%lb.KPrime != i {
					t.Fatalf("leaf u_%d attached to path index %d (mod %d = %d)",
						i+1, h.To, lb.KPrime, int(h.To)%lb.KPrime)
				}
			}
		}
		if pathNbrs != per {
			t.Fatalf("leaf u_%d has %d path attachments, want %d", i+1, pathNbrs, per)
		}
	}
}

func TestLowerBoundDiameterLogarithmic(t *testing.T) {
	// Theorem 3.2: G_n has diameter O(log n). Check a couple of sizes.
	for _, n := range []int{128, 512, 2048} {
		lb, err := NewLowerBound(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		d, err := lb.G.Diameter()
		if err != nil {
			t.Fatal(err)
		}
		bound := 4*int(math.Log2(float64(lb.G.N()))) + 4
		if d > bound {
			t.Fatalf("n=%d: diameter %d exceeds O(log n) bound %d", n, d, bound)
		}
	}
}

func TestLowerBoundBreakpointCounts(t *testing.T) {
	// Lemma 3.4: at least n/4k breakpoints on each side.
	lb, err := NewLowerBound(400, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := lb.PathLen / (4 * lb.K)
	if got := len(lb.LeftBreakpoints()); got < want/2 {
		t.Fatalf("left breakpoints = %d, want >= %d", got, want/2)
	}
	if got := len(lb.RightBreakpoints()); got < want/2 {
		t.Fatalf("right breakpoints = %d, want >= %d", got, want/2)
	}
}

func TestLowerBoundBreakpointsFarFromOppositeLeaves(t *testing.T) {
	// A right breakpoint v_{jk'+k+1} must be more than k path-steps away
	// from every attachment point of the right half's leaves... verify the
	// defining property directly: its 1-based index mod k' is k+1, so the
	// nearest right-leaf attachment (index mod k' in (k'/2, k']) is more
	// than k away along P.
	lb, err := NewLowerBound(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, bp := range lb.RightBreakpoints() {
		pos := int(bp) + 1 // 1-based
		if (pos-1)%lb.KPrime != lb.K {
			t.Fatalf("right breakpoint at %d has residue %d, want %d",
				pos, (pos-1)%lb.KPrime, lb.K)
		}
	}
	for _, bp := range lb.LeftBreakpoints() {
		pos := int(bp) + 1
		if (pos-1)%lb.KPrime != lb.KPrime/2+lb.K {
			t.Fatalf("left breakpoint at %d has wrong residue", pos)
		}
	}
}

func TestLowerBoundDefaultK(t *testing.T) {
	if k := DefaultLowerBoundK(2); k != 1 {
		t.Fatalf("DefaultLowerBoundK(2) = %d, want 1", k)
	}
	k := DefaultLowerBoundK(10000)
	want := int(math.Sqrt(10000 / math.Log2(10000)))
	if k != want {
		t.Fatalf("DefaultLowerBoundK(10000) = %d, want %d", k, want)
	}
}

func TestLowerBoundRejectsTinyN(t *testing.T) {
	if _, err := NewLowerBound(2, 1); err == nil {
		t.Fatal("tiny n accepted")
	}
}
