package graph

import (
	"errors"
	"fmt"
	"math"

	"distwalk/internal/rng"
)

// This file implements the graph families used throughout the paper's
// analysis and in our experiments:
//
//   - line/cycle: the tight case for the visit bound of Lemma 2.6 ("this
//     bound is tight in general (e.g., consider a line and a walk of
//     length n)") and the worst case for connector periodicity (Lemma 2.7).
//   - torus/grid: moderate-diameter sparse graphs, the workhorse for the
//     Õ(√(ℓD)) scaling experiments.
//   - candy (clique+path), barbell: families whose diameter is a free
//     parameter at (roughly) fixed m, used for the D-dependence sweep.
//   - random geometric graphs: the paper's motivating family for mixing-
//     time estimation (τ_mix can exceed D by Ω(√n), Section 1.2).
//   - random regular / Erdős–Rényi: expanders, the "rapidly mixing" regime.
//   - hypercube, complete, star, binary tree: classical references.
//
// The lower-bound construction G_n (Definition 3.3) lives in lowerbound.go.

// Path returns the path v0-v1-...-v(n-1).
func Path(n int) (*G, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: path needs n >= 1, got %d", n)
	}
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(g, NodeID(i), NodeID(i+1))
	}
	return g, nil
}

// Cycle returns the n-cycle. Requires n >= 3.
func Cycle(n int) (*G, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		mustAdd(g, NodeID(i), NodeID((i+1)%n))
	}
	return g, nil
}

// Complete returns the complete graph K_n.
func Complete(n int) (*G, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: complete graph needs n >= 1, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(g, NodeID(i), NodeID(j))
		}
	}
	return g, nil
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) (*G, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	g := New(n)
	for i := 1; i < n; i++ {
		mustAdd(g, 0, NodeID(i))
	}
	return g, nil
}

// BinaryTree returns the complete binary tree on n nodes in heap order
// (children of i are 2i+1 and 2i+2).
func BinaryTree(n int) (*G, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: binary tree needs n >= 1, got %d", n)
	}
	g := New(n)
	for i := 1; i < n; i++ {
		mustAdd(g, NodeID((i-1)/2), NodeID(i))
	}
	return g, nil
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) (*G, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid needs positive dims, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g, nil
}

// Torus returns the rows x cols torus (grid with wraparound). Both
// dimensions must be >= 3 so that no parallel edges arise.
func Torus(rows, cols int) (*G, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs dims >= 3, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustAdd(g, id(r, c), id(r, (c+1)%cols))
			mustAdd(g, id(r, c), id((r+1)%rows, c))
		}
	}
	return g, nil
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) (*G, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of [1,24]", dim)
	}
	n := 1 << dim
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if u > v {
				mustAdd(g, NodeID(v), NodeID(u))
			}
		}
	}
	return g, nil
}

// Candy returns a "candy" (lollipop) graph: a clique on cliqueSize nodes
// with a path of pathLen extra nodes attached to clique node 0. Its
// diameter is pathLen + 1 (for cliqueSize >= 2), so at a fixed edge budget
// the family trades diameter against density — the knob for the
// D-dependence experiment E2.
func Candy(cliqueSize, pathLen int) (*G, error) {
	if cliqueSize < 2 {
		return nil, fmt.Errorf("graph: candy needs cliqueSize >= 2, got %d", cliqueSize)
	}
	if pathLen < 0 {
		return nil, fmt.Errorf("graph: candy needs pathLen >= 0, got %d", pathLen)
	}
	g := New(cliqueSize + pathLen)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			mustAdd(g, NodeID(i), NodeID(j))
		}
	}
	prev := NodeID(0)
	for i := 0; i < pathLen; i++ {
		next := NodeID(cliqueSize + i)
		mustAdd(g, prev, next)
		prev = next
	}
	return g, nil
}

// Barbell returns two cliques of size cliqueSize joined by a path of
// pathLen intermediate nodes (pathLen == 0 joins the cliques directly).
func Barbell(cliqueSize, pathLen int) (*G, error) {
	if cliqueSize < 2 {
		return nil, fmt.Errorf("graph: barbell needs cliqueSize >= 2, got %d", cliqueSize)
	}
	if pathLen < 0 {
		return nil, fmt.Errorf("graph: barbell needs pathLen >= 0, got %d", pathLen)
	}
	n := 2*cliqueSize + pathLen
	g := New(n)
	clique := func(off int) {
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				mustAdd(g, NodeID(off+i), NodeID(off+j))
			}
		}
	}
	clique(0)
	clique(cliqueSize + pathLen)
	prev := NodeID(0)
	for i := 0; i < pathLen; i++ {
		next := NodeID(cliqueSize + i)
		mustAdd(g, prev, next)
		prev = next
	}
	mustAdd(g, prev, NodeID(cliqueSize+pathLen))
	return g, nil
}

// ER returns an Erdős–Rényi G(n, p) sample. The result may be
// disconnected; use ConnectedER to resample until connected.
func ER(n int, p float64, r *rng.RNG) (*G, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: ER needs n >= 1, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: ER needs p in [0,1], got %v", p)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				mustAdd(g, NodeID(i), NodeID(j))
			}
		}
	}
	return g, nil
}

// ConnectedER resamples G(n, p) until a connected graph is found, up to
// maxTries attempts.
func ConnectedER(n int, p float64, r *rng.RNG, maxTries int) (*G, error) {
	return retryConnected(fmt.Sprintf("ER(n=%d, p=%v)", n, p), maxTries, func() (*G, error) { return ER(n, p, r) })
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// configuration (pairing) model with rejection of loops and parallel edges.
// n*d must be even and d < n.
func RandomRegular(n, d int, r *rng.RNG) (*G, error) {
	switch {
	case n < 1 || d < 1:
		return nil, fmt.Errorf("graph: random regular needs n,d >= 1, got n=%d d=%d", n, d)
	case n*d%2 != 0:
		return nil, fmt.Errorf("graph: random regular needs n*d even, got n=%d d=%d", n, d)
	case d >= n:
		return nil, fmt.Errorf("graph: random regular needs d < n, got n=%d d=%d", n, d)
	}
	const maxTries = 2000
	for try := 0; try < maxTries; try++ {
		if g := tryPairing(n, d, r); g != nil {
			return g, nil
		}
	}
	return nil, &RetryError{
		Op:    fmt.Sprintf("random regular pairing (n=%d d=%d)", n, d),
		Tries: maxTries,
		Last:  errNoSimplePairing,
	}
}

func tryPairing(n, d int, r *rng.RNG) *G {
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := New(n)
	seen := make(map[[2]NodeID]bool, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil
		}
		key := [2]NodeID{u, v}
		if u > v {
			key = [2]NodeID{v, u}
		}
		if seen[key] {
			return nil
		}
		seen[key] = true
		mustAdd(g, u, v)
	}
	return g
}

// ConnectedRandomRegular resamples a random d-regular graph until connected.
func ConnectedRandomRegular(n, d int, r *rng.RNG, maxTries int) (*G, error) {
	return retryConnected(fmt.Sprintf("random regular(n=%d, d=%d)", n, d), maxTries, func() (*G, error) { return RandomRegular(n, d, r) })
}

// RGG returns a random geometric graph: n points uniform in the unit
// square, edges between pairs within Euclidean distance radius. This is
// the paper's motivating ad-hoc-network model (Section 1.2), whose mixing
// time can exceed the diameter by a polynomial factor.
func RGG(n int, radius float64, r *rng.RNG) (*G, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: RGG needs n >= 1, got %d", n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("graph: RGG needs radius > 0, got %v", radius)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	g := New(n)
	// Grid-bucket the points so edge generation is near-linear for the
	// connectivity-threshold radii used in practice.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int)
	cellOf := func(i int) [2]int {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], i)
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						mustAdd(g, NodeID(i), NodeID(j))
					}
				}
			}
		}
	}
	return g, nil
}

// ConnectedRGG resamples a random geometric graph until connected. The
// connectivity threshold is radius ~ sqrt(ln n / (pi n)); pass a radius
// comfortably above it to keep the retry count low.
func ConnectedRGG(n int, radius float64, r *rng.RNG, maxTries int) (*G, error) {
	return retryConnected(fmt.Sprintf("RGG(n=%d, r=%v)", n, radius), maxTries, func() (*G, error) { return RGG(n, radius, r) })
}

// RGGThresholdRadius returns a radius moderately above the connectivity
// threshold for an n-point RGG, suitable for ConnectedRGG.
func RGGThresholdRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return 1.5 * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
}

func retryConnected(op string, maxTries int, gen func() (*G, error)) (*G, error) {
	if maxTries < 1 {
		maxTries = 1
	}
	var lastErr error
	for i := 0; i < maxTries; i++ {
		g, err := gen()
		if err != nil {
			// Parameter errors cannot improve with retries; surface them
			// immediately rather than burning the budget.
			var retry *RetryError
			if !errors.As(err, &retry) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if g.Connected() {
			return g, nil
		}
		lastErr = ErrDisconnected
	}
	return nil, &RetryError{Op: op, Tries: maxTries, Last: lastErr}
}

// mustAdd adds an edge produced by a generator; generators only produce
// in-range loop-free edges, so a failure here is a bug in the generator.
func mustAdd(g *G, u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic("graph: generator produced invalid edge: " + err.Error())
	}
}
