// Package graph implements the undirected (optionally weighted) multigraphs
// on which the distributed random-walk algorithms run.
//
// The representation is an adjacency list of half-edges. Parallel edges are
// allowed (the CONGEST model of the paper treats weighted graphs as
// unweighted multigraphs, cf. Section 3.2), self-loops are not: the simple
// random walk of the paper moves to a uniformly random neighbor, and every
// graph family used in the evaluation is loop-free.
//
// All randomized operations take an explicit *rng.RNG so that simulations
// are reproducible from a single seed.
package graph

import (
	"errors"
	"fmt"

	"distwalk/internal/rng"
)

// NodeID identifies a vertex. Vertices of a graph with n nodes are numbered
// 0..n-1, matching the paper's convention of distinct identities {1..n} up
// to an offset.
type NodeID int32

// None is the sentinel "no node" value (absent parent, unvisited, ...).
const None NodeID = -1

// Half is a half-edge: one endpoint's view of an undirected edge.
type Half struct {
	To NodeID
	W  float64
	E  int32 // index into the graph's edge list
}

// Edge is an undirected edge with endpoints U < V unless added otherwise.
type Edge struct {
	U, V NodeID
	W    float64
}

// G is an undirected multigraph. The zero value is unusable; construct with
// New.
type G struct {
	adj      [][]Half
	edges    []Edge
	wdeg     []float64
	weighted bool // true if any edge weight differs from 1
}

// New returns an empty graph on n vertices (0..n-1).
func New(n int) *G {
	if n < 0 {
		n = 0
	}
	return &G{
		adj:  make([][]Half, n),
		wdeg: make([]float64, n),
	}
}

// N returns the number of vertices.
func (g *G) N() int { return len(g.adj) }

// M returns the number of undirected edges (parallel edges counted
// separately).
func (g *G) M() int { return len(g.edges) }

// AddEdge adds an unweighted (weight-1) undirected edge between u and v.
func (g *G) AddEdge(u, v NodeID) error { return g.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge adds an undirected edge between u and v with weight w > 0.
// Self-loops are rejected: the paper's simple random walk has no
// stay-in-place move.
func (g *G) AddWeightedEdge(u, v NodeID, w float64) error {
	switch {
	case u == v:
		return fmt.Errorf("graph: self-loop at node %d", u)
	case !g.valid(u) || !g.valid(v):
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N())
	case w <= 0:
		return fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", u, v, w)
	}
	e := int32(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Half{To: v, W: w, E: e})
	g.adj[v] = append(g.adj[v], Half{To: u, W: w, E: e})
	g.wdeg[u] += w
	g.wdeg[v] += w
	if w != 1 {
		g.weighted = true
	}
	return nil
}

// Weighted reports whether any edge has weight != 1.
func (g *G) Weighted() bool { return g.weighted }

// Degree returns the number of half-edges at v (parallel edges counted).
func (g *G) Degree(v NodeID) int { return len(g.adj[v]) }

// WeightedDegree returns the total weight of edges incident to v.
func (g *G) WeightedDegree(v NodeID) float64 { return g.wdeg[v] }

// Neighbors returns v's half-edges. The returned slice is owned by the
// graph; callers must not modify it.
func (g *G) Neighbors(v NodeID) []Half { return g.adj[v] }

// Edge returns the i-th edge.
func (g *G) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list.
func (g *G) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// HasEdge reports whether at least one edge joins u and v.
func (g *G) HasEdge(u, v NodeID) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, h := range g.adj[a] {
		if h.To == b {
			return true
		}
	}
	return false
}

// Step performs one step of the simple random walk from v: an incident edge
// is chosen with probability proportional to its weight (uniformly for
// unweighted graphs) and the opposite endpoint is returned. It returns an
// error if v has no neighbors.
func (g *G) Step(r *rng.RNG, v NodeID) (NodeID, error) {
	h, err := g.StepEdge(r, v)
	if err != nil {
		return None, err
	}
	return h.To, nil
}

// MHStep performs one step of the Metropolis-Hastings walk with uniform
// target distribution: propose a neighbor with probability proportional to
// the edge weight, accept with probability min(1, W(v)/W(u)) where W is
// the weighted degree, otherwise stay at v. The chain's stationary
// distribution is uniform over nodes regardless of the degree profile —
// the generalization the PODC 2009 predecessor algorithm supports
// (Section 1.3 of the paper). The returned node may equal v (a stay).
func (g *G) MHStep(r *rng.RNG, v NodeID) (NodeID, error) {
	h, err := g.StepEdge(r, v)
	if err != nil {
		return None, err
	}
	ratio := g.wdeg[v] / g.wdeg[h.To]
	if ratio >= 1 || r.Float64() < ratio {
		return h.To, nil
	}
	return v, nil
}

// StepEdge is Step but returns the chosen half-edge.
func (g *G) StepEdge(r *rng.RNG, v NodeID) (Half, error) {
	hs := g.adj[v]
	if len(hs) == 0 {
		return Half{}, fmt.Errorf("graph: node %d is isolated", v)
	}
	if !g.weighted {
		return hs[r.Intn(len(hs))], nil
	}
	target := r.Float64() * g.wdeg[v]
	acc := 0.0
	for _, h := range hs {
		acc += h.W
		if target < acc {
			return h, nil
		}
	}
	return hs[len(hs)-1], nil // numerical edge case: target == wdeg
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *G) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, hs := range g.adj[1:] {
		if len(hs) < min {
			min = len(hs)
		}
	}
	return min
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *G) MaxDegree() int {
	max := 0
	for _, hs := range g.adj {
		if len(hs) > max {
			max = len(hs)
		}
	}
	return max
}

// Validate checks structural invariants (degree sum, endpoint symmetry,
// weight caches). It is O(n + m) and intended for tests and generators.
func (g *G) Validate() error {
	halves := 0
	for v, hs := range g.adj {
		wsum := 0.0
		for _, h := range hs {
			if !g.valid(h.To) {
				return fmt.Errorf("graph: node %d has neighbor %d out of range", v, h.To)
			}
			if int(h.E) >= len(g.edges) {
				return fmt.Errorf("graph: node %d references edge %d out of range", v, h.E)
			}
			e := g.edges[h.E]
			if (e.U != NodeID(v) && e.V != NodeID(v)) || (e.U != h.To && e.V != h.To) {
				return fmt.Errorf("graph: half-edge at %d disagrees with edge %d", v, h.E)
			}
			wsum += h.W
		}
		if diff := wsum - g.wdeg[v]; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("graph: node %d cached weighted degree %v != %v", v, g.wdeg[v], wsum)
		}
		halves += len(hs)
	}
	if halves != 2*len(g.edges) {
		return fmt.Errorf("graph: %d half-edges for %d edges", halves, len(g.edges))
	}
	return nil
}

// errEmpty is returned by traversals on graphs with no vertices.
var errEmpty = errors.New("graph: empty graph")

func (g *G) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.adj) }
