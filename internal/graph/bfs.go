package graph

// BFSResult holds the output of a breadth-first search.
type BFSResult struct {
	Source NodeID
	// Dist[v] is the hop distance from Source, or -1 if unreachable.
	Dist []int32
	// Parent[v] is v's predecessor on a shortest path from Source
	// (None for the source and unreachable nodes).
	Parent []NodeID
	// Order lists reachable nodes in non-decreasing distance.
	Order []NodeID
}

// BFS runs a breadth-first search from src.
func (g *G) BFS(src NodeID) (*BFSResult, error) {
	if g.N() == 0 {
		return nil, errEmpty
	}
	if !g.valid(src) {
		return nil, errOutOfRange(src, g.N())
	}
	res := &BFSResult{
		Source: src,
		Dist:   make([]int32, g.N()),
		Parent: make([]NodeID, g.N()),
		Order:  make([]NodeID, 0, g.N()),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = None
	}
	res.Dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		for _, h := range g.adj[v] {
			if res.Dist[h.To] < 0 {
				res.Dist[h.To] = res.Dist[v] + 1
				res.Parent[h.To] = v
				queue = append(queue, h.To)
			}
		}
	}
	return res, nil
}

// Eccentricity returns the maximum distance from the reachable nodes in
// r, i.e. the depth of the BFS tree.
func (r *BFSResult) Eccentricity() int {
	ecc := int32(0)
	for _, d := range r.Dist {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}

// Farthest returns a node at maximum distance from the source.
func (r *BFSResult) Farthest() NodeID {
	far, fd := r.Source, int32(0)
	for v, d := range r.Dist {
		if d > fd {
			far, fd = NodeID(v), d
		}
	}
	return far
}

// PathTo reconstructs the shortest path from the BFS source to v, inclusive
// of both endpoints. It returns nil if v is unreachable.
func (r *BFSResult) PathTo(v NodeID) []NodeID {
	if int(v) >= len(r.Dist) || v < 0 || r.Dist[v] < 0 {
		return nil
	}
	path := make([]NodeID, 0, r.Dist[v]+1)
	for u := v; u != None; u = r.Parent[u] {
		path = append(path, u)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Connected reports whether the graph is connected. Empty graphs are
// considered disconnected; single-vertex graphs connected.
func (g *G) Connected() bool {
	if g.N() == 0 {
		return false
	}
	res, err := g.BFS(0)
	if err != nil {
		return false
	}
	return len(res.Order) == g.N()
}

// Diameter computes the exact diameter by all-pairs BFS. It is O(n·m) and
// intended for small and medium graphs; use ApproxDiameter for large ones.
// It returns an error if the graph is empty or disconnected.
func (g *G) Diameter() (int, error) {
	if g.N() == 0 {
		return 0, errEmpty
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		res, err := g.BFS(NodeID(v))
		if err != nil {
			return 0, err
		}
		if len(res.Order) != g.N() {
			return 0, errDisconnected
		}
		if e := res.Eccentricity(); e > diam {
			diam = e
		}
	}
	return diam, nil
}

// ApproxDiameter estimates the diameter with the classic double-sweep
// heuristic: BFS from node 0, then BFS from the farthest node found. The
// result is a lower bound on the true diameter and is exact on trees; on
// the regular families used in the experiments it is within a factor 2.
func (g *G) ApproxDiameter() (int, error) {
	if g.N() == 0 {
		return 0, errEmpty
	}
	first, err := g.BFS(0)
	if err != nil {
		return 0, err
	}
	if len(first.Order) != g.N() {
		return 0, errDisconnected
	}
	second, err := g.BFS(first.Farthest())
	if err != nil {
		return 0, err
	}
	return second.Eccentricity(), nil
}
