package graph

// Copy-on-write edge mutation. ApplyEdits derives a new graph from an
// existing one without touching the original: the outer adjacency array,
// the edge list and the weighted-degree cache are copied (O(n + m) slice
// headers and scalars), but the per-node half-edge segments are shared
// with the source graph and cloned only for nodes an edit actually
// touches. The source graph therefore stays fully usable — in-flight
// walks pinned to it keep executing against an immutable topology while
// new requests admit against the derived one.
//
// Removal uses swap-remove on the edge list: the last edge fills the
// removed slot and the (at most two) nodes referencing it have their E
// indices rewritten. This keeps edge indices dense without shifting the
// indices of every later edge, so untouched adjacency segments remain
// valid — and shareable — verbatim.

import (
	"errors"
	"fmt"
)

// ErrEdit reports an invalid edge edit: endpoints out of range, a
// self-loop, a negative weight, a removal with no matching edge, or an
// edit that would leave a node isolated. Errors returned by ApplyEdits
// match it under errors.Is.
var ErrEdit = errors.New("graph: invalid edge edit")

// EdgeEdit names one undirected edge to add or remove. For additions, W
// is the edge weight (0 means 1, the unweighted convention; negative is
// an error). For removals, W is ignored and the lowest-index edge
// joining U and V (either orientation) is removed — with parallel edges
// this is the earliest-inserted survivor.
type EdgeEdit struct {
	U, V NodeID
	W    float64
}

// ApplyEdits returns a new graph equal to g with the removals applied
// (in order) and then the additions (in order). g itself is never
// modified. The result shares the half-edge segments of every node no
// edit touched. An invalid edit fails the whole batch with an error
// wrapping ErrEdit and g's derived graph is discarded; ApplyEdits is
// all-or-nothing.
//
// Edits that leave any touched node with degree 0 are rejected: the
// walk protocols have no move from an isolated node, so allowing one
// would trade a construction-time error for a run-time one on every
// request that lands there.
func (g *G) ApplyEdits(remove, add []EdgeEdit) (*G, error) {
	n := g.N()
	out := &G{
		adj:   make([][]Half, n),
		edges: make([]Edge, len(g.edges)),
		wdeg:  make([]float64, n),
	}
	copy(out.adj, g.adj)
	copy(out.edges, g.edges)
	copy(out.wdeg, g.wdeg)

	// owned marks nodes whose half-edge segment has been cloned and may
	// be modified in place; untouched nodes keep sharing g's segment.
	owned := make(map[NodeID]bool, 2*(len(remove)+len(add)))
	own := func(v NodeID) {
		if owned[v] {
			return
		}
		out.adj[v] = append([]Half(nil), out.adj[v]...)
		owned[v] = true
	}

	for i, ed := range remove {
		if err := checkEndpoints(out, ed.U, ed.V); err != nil {
			return nil, fmt.Errorf("remove[%d]: %w", i, err)
		}
		// Lowest-index edge joining the endpoints, scanning the smaller
		// adjacency side. E values are not sorted within a segment after
		// earlier swap-removes, so take the minimum over all matches.
		u, v := ed.U, ed.V
		if len(out.adj[u]) > len(out.adj[v]) {
			u, v = v, u
		}
		re := int32(-1)
		for _, h := range out.adj[u] {
			if h.To == v && (re < 0 || h.E < re) {
				re = h.E
			}
		}
		if re < 0 {
			return nil, fmt.Errorf("remove[%d]: %w: no edge (%d,%d)", i, ErrEdit, ed.U, ed.V)
		}
		w := out.edges[re].W
		own(u)
		own(v)
		dropHalf(out.adj[u], &out.adj[u], re)
		dropHalf(out.adj[v], &out.adj[v], re)
		out.wdeg[u] -= w
		out.wdeg[v] -= w
		// Swap-remove: the last edge moves into slot re; rewrite its two
		// halves' E indices.
		last := int32(len(out.edges) - 1)
		if re != last {
			moved := out.edges[last]
			out.edges[re] = moved
			own(moved.U)
			own(moved.V)
			retagHalf(out.adj[moved.U], last, re)
			retagHalf(out.adj[moved.V], last, re)
		}
		out.edges = out.edges[:last]
	}

	for i, ed := range add {
		if err := checkEndpoints(out, ed.U, ed.V); err != nil {
			return nil, fmt.Errorf("add[%d]: %w", i, err)
		}
		w := ed.W
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("add[%d]: %w: edge (%d,%d) has negative weight %v", i, ErrEdit, ed.U, ed.V, w)
		}
		own(ed.U)
		own(ed.V)
		e := int32(len(out.edges))
		out.edges = append(out.edges, Edge{U: ed.U, V: ed.V, W: w})
		out.adj[ed.U] = append(out.adj[ed.U], Half{To: ed.V, W: w, E: e})
		out.adj[ed.V] = append(out.adj[ed.V], Half{To: ed.U, W: w, E: e})
		out.wdeg[ed.U] += w
		out.wdeg[ed.V] += w
	}

	for v := range owned {
		if len(out.adj[v]) == 0 {
			return nil, fmt.Errorf("%w: edits leave node %d isolated", ErrEdit, v)
		}
	}
	// Recompute rather than inherit: removals may have deleted the only
	// non-unit-weight edges, and a stale weighted flag would change
	// StepEdge's sampling path (breaking bit-identity with an equivalent
	// freshly built graph).
	out.weighted = false
	for _, e := range out.edges {
		if e.W != 1 {
			out.weighted = true
			break
		}
	}
	return out, nil
}

func checkEndpoints(g *G, u, v NodeID) error {
	switch {
	case u == v:
		return fmt.Errorf("%w: self-loop at node %d", ErrEdit, u)
	case !g.valid(u) || !g.valid(v):
		return fmt.Errorf("%w: edge (%d,%d) out of range [0,%d)", ErrEdit, u, v, g.N())
	}
	return nil
}

// dropHalf removes the single half with edge index e from hs (which the
// caller owns), writing the shortened slice to dst.
func dropHalf(hs []Half, dst *[]Half, e int32) {
	for j, h := range hs {
		if h.E == e {
			*dst = append(hs[:j], hs[j+1:]...)
			return
		}
	}
}

// retagHalf rewrites the E index of the single half in hs tagged from
// to the new index to.
func retagHalf(hs []Half, from, to int32) {
	for j := range hs {
		if hs[j].E == from {
			hs[j].E = to
			return
		}
	}
}
